// Figure 8 (a-d): validation-accuracy curves for Egeria vs the freezing baselines.
//
// Paper: at matched speedups, Egeria reaches the full-training target on all four
// tasks while AutoFreeze loses 1.5% (ResNet-50) / 2.1% (DeepLab) and Skip-Conv 2.6%
// / 3%; on machine translation they lose 0.3/0.62 perplexity; on BERT fine-tuning
// AutoFreeze is close to Egeria (its home turf).
//
// Protocol: per task run {baseline, Egeria, AutoFreeze, Skip-Conv}; the baselines'
// thresholds are set aggressively so they freeze at least as much as Egeria (the
// paper tunes them to the same training time).
#include <cstdio>

#include "bench/workloads.h"

namespace egeria {
namespace {

struct SystemRun {
  std::string name;
  TrainResult result;
};

void RunTask(const char* title, bench::Workload (*make)(uint64_t), uint64_t seed) {
  std::printf("\n-- %s --\n", title);
  std::vector<SystemRun> runs;
  {
    bench::Workload w = make(seed);
    runs.push_back({"baseline", bench::RunSystem(w, "baseline")});
  }
  {
    bench::Workload w = make(seed);
    runs.push_back({"egeria", bench::RunSystem(w, "egeria")});
  }
  {
    bench::Workload w = make(seed);
    AutoFreezeConfig cfg;
    cfg.eval_interval = 10;
    cfg.window = 3;
    cfg.threshold_frac = 0.8;
    AutoFreezeHook hook(cfg);
    runs.push_back({"autofreeze", bench::RunSystem(w, "baseline", &hook)});
  }
  {
    bench::Workload w = make(seed);
    SkipConvConfig cfg;
    cfg.eval_interval = 10;
    cfg.window = 3;
    cfg.threshold_frac = 1.0;
    SkipConvHook hook(cfg);
    runs.push_back({"skipconv", bench::RunSystem(w, "baseline", &hook)});
  }

  std::vector<std::string> headers{"epoch"};
  for (const auto& r : runs) {
    headers.push_back(r.name);
  }
  Table curve(headers);
  const size_t epochs = runs[0].result.epochs.size();
  for (size_t e = 0; e < epochs; ++e) {
    std::vector<std::string> row{std::to_string(e + 1)};
    for (const auto& r : runs) {
      row.push_back(Table::Num(r.result.epochs[e].val.display, 3));
    }
    curve.AddRow(row);
  }
  curve.Print();

  Table summary({"system", "final", "delta vs baseline", "train s", "frozen stages"});
  const double base_final = runs[0].result.final_metric.display;
  for (const auto& r : runs) {
    summary.AddRow(
        {r.name, Table::Num(r.result.final_metric.display, 3),
         Table::Num(r.result.final_metric.display - base_final, 3),
         Table::Num(r.result.total_train_seconds, 1),
         std::to_string(r.result.final_frontier)});
  }
  summary.Print();
}

bench::Workload MakeR50(uint64_t seed) { return bench::MakeResNet50Workload(seed, 12); }
bench::Workload MakeDl(uint64_t seed) { return bench::MakeDeepLabWorkload(seed, 12); }
bench::Workload MakeTr(uint64_t seed) {
  return bench::MakeTransformerWorkload(false, seed, 14);
}
bench::Workload MakeQa(uint64_t seed) { return bench::MakeBertWorkload(seed, 8); }

int Main() {
  std::printf("== Figure 8: accuracy curves, Egeria vs freezing baselines ==\n");
  std::printf("Paper: Egeria matches full training; AutoFreeze/Skip-Conv lose accuracy at\n"
              "matched speedup (except AutoFreeze on BERT fine-tuning).\n");
  RunTask("(a) ResNet-50 image classification [acc]", MakeR50, 61);
  RunTask("(b) DeepLabv3 semantic segmentation [mIoU]", MakeDl, 62);
  RunTask("(c) Transformer-Base machine translation [ppl, lower better]", MakeTr, 63);
  RunTask("(d) BERT span-QA fine-tuning [F1]", MakeQa, 64);
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
