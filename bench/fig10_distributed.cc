// Figure 10: distributed data-parallel training performance.
//
// Paper: on the 5-node/2xV100 cluster, Egeria beats both the vanilla framework and
// ByteScheduler (which only reschedules communication); Egeria composes with
// ByteScheduler, and the frozen layers' excluded traffic adds up to ~5% for
// ResNet-50 on top of the compute saving.
//
// Protocol: per-stage compute costs and gradient sizes are measured on the real
// single-node model, then fed into the discrete-event iteration simulator under the
// leaf-spine/ring-all-reduce network model. A real 2-worker threaded run with actual
// all-reduce validates the traffic reduction.
//
// `fig10_distributed --transport=tcp` additionally launches worlds of 2/3/4
// egeria_worker OS processes over the TCP ring transport and reports the
// MEASURED all-reduce seconds per iteration at each freeze frontier, next to
// the NetworkModel projection for the same payload — the paper's "frozen
// layers leave synchronization" claim as wall-clock numbers on a real wire.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/workloads.h"
#include "src/distributed/comm_scheduler.h"
#include "src/distributed/dist_trainer.h"
#include "src/distributed/network_model.h"
#include "src/distributed/process_launcher.h"
#include "src/util/timer.h"

namespace egeria {
namespace {

// Measures per-stage compute (fp+bp proportionally attributed) and gradient bytes.
std::vector<StageCost> MeasureStages(bench::Workload& w, int iters) {
  DataLoader loader(*w.train, w.cfg.batch_size, true, w.cfg.seed);
  Sgd opt(0.9F, 0.0F);
  WallTimer fp_timer;
  double fp_total = 0.0;
  double bp_total = 0.0;
  for (int i = 0; i < iters; ++i) {
    Batch batch = loader.GetBatch(i % loader.NumBatches());
    w.model->SetBatch(batch);
    fp_timer.Reset();
    Tensor logits = w.model->ForwardFrom(0, batch.input);
    fp_total += fp_timer.ElapsedSeconds();
    LossResult loss = TaskLoss(w.cfg.task, logits, batch);
    w.model->ZeroGrad();
    fp_timer.Reset();
    w.model->BackwardTo(0, loss.grad);
    bp_total += fp_timer.ElapsedSeconds();
    opt.Step(w.model->ParamsFrom(0), 0.01F);
  }
  fp_total /= iters;
  bp_total /= iters;
  // Attribute compute proportionally to stage parameter mass (documented
  // approximation; the totals are real measurements).
  const int n = w.model->NumStages();
  std::vector<StageCost> stages(static_cast<size_t>(n));
  int64_t total_params = w.model->TotalParamCount();
  for (int i = 0; i < n; ++i) {
    const double frac = static_cast<double>(w.model->StageParamCount(i)) /
                        static_cast<double>(total_params);
    stages[static_cast<size_t>(i)].fp_seconds = fp_total * frac;
    stages[static_cast<size_t>(i)].bp_seconds = bp_total * frac;
    stages[static_cast<size_t>(i)].grad_bytes =
        w.model->StageParamCount(i) * static_cast<int64_t>(sizeof(float));
  }
  return stages;
}

void SimTable(const char* label, const std::vector<StageCost>& stages, int frozen) {
  std::printf("\n-- %s (frozen prefix: %d stages) --\n", label, frozen);
  Table table({"cluster", "baseline it/s", "bytescheduler it/s", "egeria it/s",
               "egeria+BS it/s", "egeria traffic cut"});
  for (int nodes : {2, 3, 4, 5}) {
    ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.gpus_per_node = 2;
    // Communication-relevant regime: the paper's 40 Gbps NICs against GPU-scale
    // compute; our CPU stage times are large, so scale bandwidth down to keep the
    // compute:communication ratio comparable.
    cluster.inter_node_gbps = 0.05;
    cluster.intra_node_gbps = 0.4;
    NetworkModel net(cluster);
    const auto fifo = SimulateIteration(stages, net, CommPolicy::kFifo, 0);
    const auto bs = SimulateIteration(stages, net, CommPolicy::kByteScheduler, 0);
    const auto eg = SimulateIteration(stages, net, CommPolicy::kFifo, frozen, true);
    const auto eg_bs =
        SimulateIteration(stages, net, CommPolicy::kByteScheduler, frozen, true);
    const double traffic_cut = 1.0 - eg.comm_seconds / fifo.comm_seconds;
    table.AddRow({std::to_string(nodes) + "x2",
                  Table::Num(1.0 / fifo.iteration_seconds, 2),
                  Table::Num(1.0 / bs.iteration_seconds, 2),
                  Table::Num(1.0 / eg.iteration_seconds, 2),
                  Table::Num(1.0 / eg_bs.iteration_seconds, 2),
                  Table::Pct(traffic_cut)});
  }
  table.Print();
}

// Resolves the worker binary: $EGERIA_WORKER_BIN, else next to this binary.
std::string WorkerBinary() {
  if (const char* env = std::getenv("EGERIA_WORKER_BIN")) {
    return env;
  }
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    const size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      return dir.substr(0, slash) + "/egeria_worker";
    }
  }
  return "./egeria_worker";
}

// One multi-process run of `world` ranks; fills wall seconds, cleans its logs.
bool RunTcpWorld(const std::string& worker, int world, bool overlap,
                 SpawnResult* out, double* wall_s) {
  SpawnOptions options;
  options.worker_binary = worker;
  options.world = world;
  options.common_args = {"--workload=fig10", "--egeria=1",
                         overlap ? "--overlap=1" : "--overlap=0"};
  char tmpl[] = "/tmp/egeria-fig10-XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return false;
  }
  options.log_dir = tmpl;
  options.timeout_s = 600.0;
  WallTimer timer;
  *out = SpawnWorld(options);
  *wall_s = timer.ElapsedSeconds();
  for (const std::string& log : out->log_paths) {
    unlink(log.c_str());
  }
  unlink((options.log_dir + "/rendezvous").c_str());
  rmdir(options.log_dir.c_str());
  if (!out->ok) {
    std::fprintf(stderr, "world %d (overlap=%d) failed: %s\n", world,
                 overlap ? 1 : 0, out->error.c_str());
    return false;
  }
  return true;
}

// Multi-process measurement: worlds of real OS processes over the TCP ring.
int TcpMain() {
  std::printf("== Figure 10 (measured): egeria_worker processes over the TCP ring ==\n");
  std::printf("Each row is one freeze-frontier segment of a real multi-process training\n"
              "run: measured mean all-reduce seconds per iteration on rank 0's wire,\n"
              "split into comm HIDDEN behind backward (the bucketed overlap win) and\n"
              "comm EXPOSED past it, next to the NetworkModel projection for the same\n"
              "payload. Each world also reruns with --overlap=0 (the sequential round)\n"
              "to show the wall-clock saving and the bitwise-identical replica hash.\n"
              "(Measured time includes peer skew — a rank blocked on a slower neighbor\n"
              "counts the wait — so tiny payloads bottom out at a latency+skew floor\n"
              "instead of tracking bytes all the way down.)\n");
  const std::string worker = WorkerBinary();
  for (int world : {2, 3, 4}) {
    SpawnResult run;
    SpawnResult seq;
    double wall_overlap = 0.0;
    double wall_seq = 0.0;
    if (!RunTcpWorld(worker, world, /*overlap=*/true, &run, &wall_overlap) ||
        !RunTcpWorld(worker, world, /*overlap=*/false, &seq, &wall_seq)) {
      return 1;
    }
    ClusterConfig cluster;
    cluster.num_nodes = world;
    cluster.gpus_per_node = 1;
    NetworkModel net(cluster);
    std::printf("\n-- world %d (%d OS processes, wall %.1fs overlapped / %.1fs sequential) --\n",
                world, world, wall_overlap, wall_seq);
    Table table({"iter", "frontier", "payload B/iter", "measured allreduce s/iter",
                 "hidden s/iter", "exposed s/iter", "projected s/iter (net model)"});
    for (const auto& ev : run.reshard_timeline) {
      const long long payload = std::atoll(ev.at("payload_bytes").c_str());
      table.AddRow({ev.at("iter"), ev.at("frontier"), std::to_string(payload),
                    ev.at("allreduce_s_per_iter"), ev.at("comm_hidden_s_per_iter"),
                    ev.at("comm_exposed_s_per_iter"),
                    Table::Num(net.AllReduceSeconds(payload), 6)});
    }
    table.Print();
    const auto& r0 = run.rank_results[0];
    std::printf("final frontier %s | replica hash %s | rank0 wire bytes %s | "
                "total allreduce %ss (hidden %ss, exposed %ss)\n",
                r0.at("final_frontier").c_str(), r0.at("params_hash").c_str(),
                r0.at("wire_bytes").c_str(), r0.at("allreduce_seconds").c_str(),
                r0.at("comm_hidden_seconds").c_str(),
                r0.at("comm_exposed_seconds").c_str());
    bool consistent = true;
    for (const auto& rr : run.rank_results) {
      consistent = consistent && rr.at("params_hash") == r0.at("params_hash");
    }
    std::printf("replicas bitwise-consistent across processes: %s\n",
                consistent ? "yes" : "NO");
    const auto& s0 = seq.rank_results[0];
    const double iters = std::atof(r0.at("iterations").c_str());
    if (iters > 0) {
      std::printf("overlap vs sequential: %.4f vs %.4f wall s/iter (%.1f%% faster), "
                  "weights bitwise-identical: %s\n",
                  wall_overlap / iters, wall_seq / iters,
                  100.0 * (1.0 - wall_overlap / wall_seq),
                  r0.at("params_hash") == s0.at("params_hash") ? "yes" : "NO");
    }
  }
  return 0;
}

int Main() {
  std::printf("== Figure 10: distributed training performance ==\n");
  std::printf("Paper: Egeria > ByteScheduler > baseline; Egeria composes with BS; frozen\n"
              "layers cut synchronization traffic.\n");

  {
    bench::Workload w = bench::MakeResNet50Workload(81, 4);
    auto stages = MeasureStages(w, 6);
    SimTable("ResNet-50 (measured stage costs)", stages,
             std::max(1, w.model->NumStages() / 3));
  }
  {
    bench::Workload w = bench::MakeTransformerWorkload(false, 82, 4);
    auto stages = MeasureStages(w, 6);
    SimTable("Transformer-Base (measured stage costs)", stages,
             std::max(1, w.model->NumStages() / 2));
  }

  // Real threaded 2-worker validation of the traffic reduction, run through both
  // transports: the ZeRO-1 ring (default) and the sequential reference reducer.
  // Same reduction contract -> identical weights, but the ring moves 2(W-1)/W of
  // the payload per link instead of the star's 2(W-1), and each rank holds only
  // its shard of the optimizer state — shrinking further as stages freeze.
  std::printf("\n-- Real 2-worker all-reduce validation (ring-sharded vs reference) --\n");
  auto make_model = []() -> std::unique_ptr<ChainModel> {
    Rng rng(83);
    CifarResNetConfig mcfg;
    mcfg.blocks_per_stage = 1;
    mcfg.base_width = 6;
    mcfg.num_classes = 4;
    return PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                              PartitionConfig{.target_modules = 4});
  };
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.num_samples = 256;
  dcfg.height = 10;
  dcfg.width = 10;
  dcfg.noise_std = 0.5F;
  SyntheticImageDataset train(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 64;
  SyntheticImageDataset val(vcfg);
  DistTrainConfig cfg;
  cfg.world = 2;
  cfg.epochs = bench::ScaledEpochs(16);
  cfg.batch_size = 8;
  cfg.task.kind = TaskKind::kClassification;
  cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
  cfg.enable_egeria = true;
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 4;
  cfg.egeria.window_w = 3;
  cfg.egeria.tolerance_coef = 0.4;
  cfg.egeria.enable_cache = false;
  cfg.egeria.ref_update_evals = 2;
  cfg.reducer = DistTrainConfig::Reducer::kRingSharded;
  DistTrainResult r = TrainDataParallel(make_model, train, val, cfg);
  cfg.reducer = DistTrainConfig::Reducer::kSequentialReference;
  DistTrainResult ref = TrainDataParallel(make_model, train, val, cfg);

  std::printf("replicas consistent: %s | final acc: %.3f | frozen frontier: %d\n",
              r.replicas_consistent ? "yes" : "NO", r.final_display, r.final_frontier);
  std::printf("ring weights bitwise-match reference reducer: %s\n",
              r.params_hash == ref.params_hash ? "yes" : "NO");
  std::printf("gradient traffic: %lld bytes vs %lld full-model bytes (%.1f%% saved)\n",
              static_cast<long long>(r.bytes_synced),
              static_cast<long long>(r.bytes_full_model),
              100.0 * (1.0 - static_cast<double>(r.bytes_synced) /
                                 static_cast<double>(r.bytes_full_model)));
  // Total bytes moved is 2(W-1) x payload for both transports; the ring's win is
  // the bottleneck link: every rank carries wire/W, while the star concentrates
  // the whole 2(W-1) x payload on rank 0's link.
  std::printf("ring wire bytes: %lld total, %lld per rank link "
              "(star pushes %lld through rank 0 alone; %dx the ring's busiest link)\n",
              static_cast<long long>(r.wire_bytes),
              static_cast<long long>(r.wire_bytes / cfg.world),
              static_cast<long long>(2 * (cfg.world - 1) * r.bytes_synced),
              cfg.world);
  std::printf("freeze->reshard timeline (payload and per-rank optimizer state):\n");
  for (const DistReshardEvent& ev : r.reshard_events) {
    std::printf("  iter %4lld frontier %d: active %lld elems, payload %lld B/iter, "
                "opt state %lld B/rank\n",
                static_cast<long long>(ev.iter), ev.frontier,
                static_cast<long long>(ev.active_elems),
                static_cast<long long>(ev.payload_bytes_per_iter),
                static_cast<long long>(ev.opt_state_bytes_per_rank));
  }
  return 0;
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      return egeria::TcpMain();
    }
  }
  return egeria::Main();
}
