// Figure 12: hyperparameter sensitivity (n, W, T coefficient).
//
// Paper: following the guideline balances accuracy and speed. Halving W (10->5) or
// doubling the T coefficient (0.2->0.4) freezes eagerly and hurts accuracy for
// little speed; doubling W or n trains longer with no accuracy gain; halving the T
// coefficient to 0.1 virtually disables freezing; n twice as frequent adds no gain.
#include <cstdio>

#include "bench/workloads.h"

namespace egeria {
namespace {

int Main() {
  std::printf("== Figure 12: sensitivity to n, W, and the tolerance coefficient ==\n");
  std::printf("Paper: guideline values balance accuracy and speedup; aggressive settings\n"
              "trade accuracy, conservative ones forfeit speedup.\n\n");

  struct Variant {
    const char* label;
    double n_mult;
    double w_mult;
    double t_mult;
  };
  const Variant variants[] = {
      {"chosen (guideline)", 1.0, 1.0, 1.0},
      {"n x2 (infrequent)", 2.0, 1.0, 1.0},
      {"n /2 (frequent)", 0.5, 1.0, 1.0},
      {"W x2", 1.0, 2.0, 1.0},
      {"W /2 (eager)", 1.0, 0.5, 1.0},
      {"T coef x2 (eager)", 1.0, 1.0, 2.0},
      {"T coef /2 (strict)", 1.0, 1.0, 0.5},
  };

  TrainResult base;
  {
    bench::Workload w = bench::MakeResNet56Workload(/*seed=*/111, /*epochs=*/16);
    base = bench::RunSystem(w, "baseline");
  }
  Table table({"config", "final acc", "delta", "train s", "speedup", "frozen", "evals"});
  table.AddRow({"no freeze", Table::Pct(base.final_metric.display), "-",
                Table::Num(base.total_train_seconds, 1), "1.00x", "0", "0"});

  for (const auto& v : variants) {
    bench::Workload w = bench::MakeResNet56Workload(111, 16);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.eval_interval_n =
        std::max<int64_t>(2, static_cast<int64_t>(cfg.egeria.eval_interval_n * v.n_mult));
    cfg.egeria.window_w =
        std::max(2, static_cast<int>(cfg.egeria.window_w * v.w_mult));
    cfg.egeria.tolerance_coef *= v.t_mult;
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    TrainResult r = trainer.Run();
    table.AddRow({v.label, Table::Pct(r.final_metric.display),
                  Table::Num((r.final_metric.display - base.final_metric.display) * 100, 2) + "pp",
                  Table::Num(r.total_train_seconds, 1),
                  Table::Num(base.total_train_seconds / r.total_train_seconds, 2) + "x",
                  std::to_string(r.final_frontier),
                  std::to_string(r.evals_submitted)});
  }
  table.Print();
  std::printf("\nShape: the guideline row keeps baseline accuracy with a clear speedup;\n"
              "eager variants freeze more but dent accuracy; strict/infrequent variants\n"
              "approach baseline time with no accuracy gain.\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
