// Table 1: end-to-end time-to-accuracy (TTA) speedups.
//
// Paper: Egeria reaches each baseline's converged accuracy 19%-43% faster across 7
// models (ResNet-50 28%, MobileNetV2 22%, ResNet-56 23%, DeepLabv3 21%,
// Transformer-Base 43%, Transformer-Tiny 19%, BERT fine-tune 41%), plus distributed
// rows (27-33% / 33-43% at 2x2-5x2).
//
// Protocol here: run the baseline to convergence, set the accuracy target to the
// baseline's own converged score, then measure Egeria's TTA against the baseline's.
// Distributed rows come from the communication-schedule simulation fed with the
// measured single-node compute split and the measured frozen fraction.
#include <cstdio>

#include "bench/workloads.h"
#include "src/distributed/comm_scheduler.h"
#include "src/distributed/network_model.h"

namespace egeria {
namespace {

struct RowResult {
  std::string name;
  double baseline_tta = 0.0;
  double egeria_tta = 0.0;
  double baseline_acc = 0.0;
  double egeria_acc = 0.0;
  std::string unit;
  int frozen_frontier = 0;
  int num_stages = 0;
  // Feature-store accounting from the Egeria run: residual frozen-prefix
  // forward seconds (populate/miss iterations) and iterations served.
  double frozen_fp_seconds = 0.0;
  int64_t fp_skips = 0;
};

RowResult RunPair(bench::Workload (*make)(uint64_t, int), uint64_t seed, int epochs,
                  double target_slack) {
  bench::Workload wb = make(seed, epochs);
  TrainResult base = bench::RunSystem(wb, "baseline");
  // Target: fraction of the baseline's best score (paper: "converged validation
  // accuracy" of baseline training).
  const double target = base.best_metric.score >= 0
                            ? base.best_metric.score * target_slack
                            : base.best_metric.score / target_slack;

  bench::Workload we = make(seed, epochs);
  we.cfg.target_score = target;
  TrainConfig cfg = we.cfg;
  cfg.enable_egeria = true;
  Trainer egeria_trainer(*we.model, *we.train, *we.val, cfg);
  TrainResult eg = egeria_trainer.Run();

  // Baseline TTA against the same target.
  double base_tta = base.total_train_seconds;
  for (const auto& e : base.epochs) {
    if (e.val.score >= target) {
      base_tta = e.cum_train_seconds;
      break;
    }
  }
  RowResult r;
  r.baseline_tta = base_tta;
  r.egeria_tta = eg.reached_target ? eg.tta_seconds : eg.total_train_seconds;
  r.baseline_acc = base.final_metric.display;
  r.egeria_acc = eg.final_metric.display;
  r.unit = base.final_metric.unit;
  r.frozen_frontier = eg.final_frontier;
  r.num_stages = we.model->NumStages();
  r.frozen_fp_seconds = eg.frozen_fp_seconds;
  r.fp_skips = eg.fp_skip_count;
  return r;
}

// Adapters with uniform signatures.
bench::Workload MakeTransformerBase(uint64_t seed, int epochs) {
  return bench::MakeTransformerWorkload(false, seed, epochs);
}
bench::Workload MakeTransformerTiny(uint64_t seed, int epochs) {
  return bench::MakeTransformerWorkload(true, seed, epochs);
}
bench::Workload MakeBert(uint64_t seed, int epochs) {
  return bench::MakeBertWorkload(seed, epochs);
}

int Main() {
  std::printf("== Table 1: time-to-accuracy speedups (Egeria vs baseline) ==\n");
  std::printf("Paper speedups: R50 28%% | MBv2 22%% | R56 23%% | DLv3 21%% | TrBase 43%% |\n"
              "               TrTiny 19%% | BERT 41%%\n\n");

  struct Entry {
    const char* label;
    const char* paper;
    bench::Workload (*make)(uint64_t, int);
    uint64_t seed;
    int epochs;
  };
  const Entry entries[] = {
      // Seeds are the calibrated task instances whose baselines converge with
      // margin inside the schedule (DESIGN.md: paper-scale models always do; at
      // micro-scale some instances keep improving to the last epoch, where
      // freezing anything is unprofitable by construction).
      {"ResNet-50 (1x2)", "28%", bench::MakeResNet50Workload, 4, 14},
      {"MobileNetV2", "22%", bench::MakeMobileNetWorkload, 5, 16},
      {"ResNet-56", "23%", bench::MakeResNet56Workload, 3, 16},
      {"DeepLabv3", "21%", bench::MakeDeepLabWorkload, 6, 14},
      {"Transformer-Base (4x2)", "43%", MakeTransformerBase, 7, 18},
      {"Transformer-Tiny (1x8)", "19%", MakeTransformerTiny, 7, 16},
      {"BERT fine-tune", "41%", MakeBert, 8, 16},
  };

  Table table({"model", "paper speedup", "measured speedup", "baseline TTA s",
               "egeria TTA s", "baseline metric", "egeria metric", "frozen stages",
               "frozen-fp s", "fp skips"});
  RowResult resnet50_row;
  RowResult transformer_row;
  for (const auto& e : entries) {
    RowResult r = RunPair(e.make, e.seed, e.epochs, 0.995);
    const double speedup = 1.0 - r.egeria_tta / r.baseline_tta;
    table.AddRow({e.label, e.paper, Table::Pct(speedup), Table::Num(r.baseline_tta, 1),
                  Table::Num(r.egeria_tta, 1),
                  Table::Num(r.baseline_acc, 3) + " " + r.unit,
                  Table::Num(r.egeria_acc, 3) + " " + r.unit,
                  std::to_string(r.frozen_frontier) + "/" + std::to_string(r.num_stages),
                  Table::Num(r.frozen_fp_seconds, 2), std::to_string(r.fp_skips)});
    if (std::string(e.label).rfind("ResNet-50", 0) == 0) {
      resnet50_row = r;
    }
    if (std::string(e.label).rfind("Transformer-Base", 0) == 0) {
      transformer_row = r;
    }
  }
  table.Print();

  // Distributed rows (paper: R50 27-33% at 2x2-5x2; TrBase 33-43%): per-iteration
  // speedup from the cost-model simulation with the measured frozen frontier,
  // composed with the measured single-node TTA ratio.
  std::printf("\n-- Distributed scaling rows (cost-model simulation) --\n");
  Table dist({"model", "cluster", "iter-time speedup (sim)", "paper"});
  auto sim_row = [&](const char* label, const RowResult& row, int nodes,
                     const char* paper) {
    // CNN-like split: param-proportional compute and bytes across stages.
    std::vector<StageCost> stages(static_cast<size_t>(row.num_stages));
    for (int i = 0; i < row.num_stages; ++i) {
      stages[static_cast<size_t>(i)].fp_seconds = 0.004;
      stages[static_cast<size_t>(i)].bp_seconds = 0.008;
      stages[static_cast<size_t>(i)].grad_bytes = 400000;
    }
    ClusterConfig cluster;
    cluster.num_nodes = nodes;
    cluster.gpus_per_node = 2;
    NetworkModel net(cluster);
    const auto full = SimulateIteration(stages, net, CommPolicy::kFifo, 0);
    const auto frozen = SimulateIteration(stages, net, CommPolicy::kFifo,
                                          row.frozen_frontier, /*cached=*/true);
    dist.AddRow({label, std::to_string(nodes) + "x2",
                 Table::Pct(1.0 - frozen.iteration_seconds / full.iteration_seconds),
                 paper});
  };
  for (int nodes : {2, 3, 5}) {
    sim_row("ResNet-50", resnet50_row, nodes, "27-33%");
  }
  for (int nodes : {2, 5}) {
    sim_row("Transformer-Base", transformer_row, nodes, "33-43%");
  }
  dist.Print();
  std::printf("\nShape to check: every row shows a positive speedup at (near-)baseline\n"
              "accuracy; Transformer rows benefit most (balanced front/deep layers).\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
