// Shared workload factories for the figure/table benches.
//
// Every workload is a CPU-scaled stand-in that preserves the paper counterpart's
// *structure* (stage layout, parameter distribution across depth, schedule shape);
// see DESIGN.md S1 for the substitution table. EGERIA_BENCH_SCALE (float, default 1)
// scales epoch counts for quick smoke runs.
#ifndef EGERIA_BENCH_WORKLOADS_H_
#define EGERIA_BENCH_WORKLOADS_H_

#include <cstdlib>
#include <memory>
#include <string>

#include "src/baselines/freeze_baselines.h"
#include "src/core/module_partitioner.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_image.h"
#include "src/data/synthetic_seg.h"
#include "src/data/synthetic_text.h"
#include "src/models/bert.h"
#include "src/models/deeplab.h"
#include "src/models/mobilenetv2.h"
#include "src/models/resnet.h"
#include "src/models/transformer.h"
#include "src/optim/lr_scheduler.h"
#include "src/util/table.h"

namespace egeria {
namespace bench {

inline double BenchScale() {
  const char* env = std::getenv("EGERIA_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  const double v = std::atof(env);
  return (v > 0.01 && v <= 4.0) ? v : 1.0;
}

inline int ScaledEpochs(int epochs) {
  const int e = static_cast<int>(epochs * BenchScale());
  return e < 2 ? 2 : e;
}

// A complete runnable workload: model + data + training config.
struct Workload {
  std::unique_ptr<ChainModel> model;
  std::unique_ptr<Dataset> train;
  std::unique_ptr<Dataset> val;
  TrainConfig cfg;
  PartitionSummary partition;
  std::string name;
};

// ---- Image classification (CIFAR-style ResNet-56 structure) ----
inline Workload MakeResNet56Workload(uint64_t seed = 3, int epochs = 16) {
  Workload w;
  w.name = "ResNet-56/CIFAR";
  Rng rng(seed);
  CifarResNetConfig mcfg;
  mcfg.blocks_per_stage = 9;  // 56-layer structure
  mcfg.base_width = 4;
  mcfg.num_classes = 10;
  w.model = PartitionIntoChain("resnet56", BuildCifarResNetBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 7}, &w.partition);
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.num_samples = 512;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.35F;
  dcfg.seed = 100 + seed;
  w.train = std::make_unique<SyntheticImageDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 128;
  w.val = std::make_unique<SyntheticImageDataset>(vcfg);

  w.cfg.epochs = ScaledEpochs(epochs);
  w.cfg.batch_size = 16;
  w.cfg.task.kind = TaskKind::kClassification;
  const int64_t ipe = 512 / 16;
  w.cfg.lr_schedule = std::make_shared<StepDecayLr>(
      0.07F, 0.1F,
      std::vector<int64_t>{ipe * w.cfg.epochs * 5 / 8, ipe * w.cfg.epochs * 13 / 16});
  w.cfg.val_batches = 6;
  w.cfg.seed = seed;
  w.cfg.egeria.eval_interval_n = 12;
  w.cfg.egeria.window_w = 4;
  w.cfg.egeria.max_bootstrap_iters = ipe * 2;
  w.cfg.egeria.ref_update_evals = 2;  // CV: converges early; aggressive refresh safe
  return w;
}

// ---- ResNet-50 structure (bottlenecks, ImageNet-style stand-in) ----
inline Workload MakeResNet50Workload(uint64_t seed = 4, int epochs = 12) {
  Workload w;
  w.name = "ResNet-50/ImageNet*";
  Rng rng(seed);
  BottleneckResNetConfig mcfg;
  mcfg.stage_blocks = {2, 2, 2, 2};
  mcfg.base_width = 4;
  mcfg.num_classes = 10;
  w.model = PartitionIntoChain("resnet50", BuildBottleneckResNetBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 6}, &w.partition);
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.num_samples = 384;
  dcfg.height = 16;
  dcfg.width = 16;
  dcfg.noise_std = 0.55F;
  dcfg.seed = 200 + seed;
  w.train = std::make_unique<SyntheticImageDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 96;
  w.val = std::make_unique<SyntheticImageDataset>(vcfg);

  w.cfg.epochs = ScaledEpochs(epochs);
  w.cfg.batch_size = 16;
  w.cfg.task.kind = TaskKind::kClassification;
  const int64_t ipe = 384 / 16;
  w.cfg.lr_schedule = std::make_shared<StepDecayLr>(
      0.08F, 0.1F, std::vector<int64_t>{ipe * w.cfg.epochs * 2 / 3});
  w.cfg.val_batches = 6;
  w.cfg.seed = seed;
  w.cfg.egeria.eval_interval_n = 10;
  w.cfg.egeria.window_w = 4;
  w.cfg.egeria.max_bootstrap_iters = ipe * 2;
  w.cfg.egeria.ref_update_evals = 2;
  return w;
}

// ---- MobileNetV2 ----
inline Workload MakeMobileNetWorkload(uint64_t seed = 5, int epochs = 14) {
  Workload w;
  w.name = "MobileNetV2/CIFAR";
  Rng rng(seed);
  MobileNetV2Config mcfg;
  mcfg.channel_divisor = 4;
  mcfg.num_classes = 10;
  w.model = PartitionIntoChain("mbv2", BuildMobileNetV2Blocks(mcfg, rng),
                               PartitionConfig{.target_modules = 6}, &w.partition);
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.num_samples = 384;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.noise_std = 0.35F;
  dcfg.seed = 300 + seed;
  w.train = std::make_unique<SyntheticImageDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 96;
  w.val = std::make_unique<SyntheticImageDataset>(vcfg);

  w.cfg.epochs = ScaledEpochs(epochs);
  w.cfg.batch_size = 16;
  w.cfg.task.kind = TaskKind::kClassification;
  const int64_t ipe = 384 / 16;
  w.cfg.lr_schedule = std::make_shared<StepDecayLr>(
      0.06F, 0.1F, std::vector<int64_t>{ipe * w.cfg.epochs * 2 / 3});
  w.cfg.val_batches = 6;
  w.cfg.seed = seed;
  w.cfg.egeria.eval_interval_n = 10;
  w.cfg.egeria.window_w = 4;
  w.cfg.egeria.max_bootstrap_iters = ipe * 2;
  w.cfg.egeria.ref_update_evals = 2;
  return w;
}

// ---- DeepLabv3 segmentation ----
inline Workload MakeDeepLabWorkload(uint64_t seed = 6, int epochs = 12) {
  Workload w;
  w.name = "DeepLabv3/VOC*";
  Rng rng(seed);
  DeepLabConfig mcfg;
  mcfg.backbone_blocks_per_stage = 2;
  mcfg.base_width = 6;
  mcfg.num_classes = 5;
  mcfg.output_h = 12;
  mcfg.output_w = 12;
  w.model = PartitionIntoChain("deeplab", BuildDeepLabBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 5}, &w.partition);
  SyntheticSegConfig dcfg;
  dcfg.num_classes = 5;
  dcfg.num_samples = 256;
  dcfg.height = 12;
  dcfg.width = 12;
  dcfg.seed = 400 + seed;
  w.train = std::make_unique<SyntheticSegDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 64;
  w.val = std::make_unique<SyntheticSegDataset>(vcfg);

  w.cfg.epochs = ScaledEpochs(epochs);
  w.cfg.batch_size = 16;
  w.cfg.task.kind = TaskKind::kSegmentation;
  w.cfg.task.num_classes = 5;
  const int64_t ipe = 256 / 16;
  w.cfg.lr_schedule = std::make_shared<StepDecayLr>(
      0.06F, 0.1F, std::vector<int64_t>{ipe * w.cfg.epochs * 2 / 3});
  w.cfg.val_batches = 4;
  w.cfg.seed = seed;
  w.cfg.egeria.eval_interval_n = 8;
  w.cfg.egeria.window_w = 4;
  w.cfg.egeria.max_bootstrap_iters = ipe * 2;
  w.cfg.egeria.ref_update_evals = 2;
  return w;
}

// ---- Transformer machine translation ----
inline Workload MakeTransformerWorkload(bool tiny, uint64_t seed = 7, int epochs = 14) {
  if (tiny) {
    epochs += 10;  // The tiny model needs more passes to converge.
  }
  Workload w;
  w.name = tiny ? "Transformer-Tiny/WMT*" : "Transformer-Base/WMT*";
  Rng rng(seed);
  TransformerConfig mcfg;
  mcfg.vocab = 32;
  mcfg.dim = tiny ? 16 : 32;
  mcfg.heads = 4;
  mcfg.ffn_dim = tiny ? 32 : 64;
  mcfg.num_encoder_layers = tiny ? 2 : 4;
  mcfg.num_decoder_layers = tiny ? 2 : 4;
  mcfg.max_len = 16;
  auto model = std::make_unique<TransformerChainModel>("mt", mcfg, rng);
  for (int i = 0; i < model->NumStages(); ++i) {
    w.partition.module_names.push_back(model->StageName(i));
    w.partition.module_params.push_back(model->StageParamCount(i));
    w.partition.blocks_per_module.push_back(1);
  }
  w.model = std::move(model);
  SyntheticTranslationConfig dcfg;
  dcfg.vocab = 32;
  dcfg.seq_len = 10;
  dcfg.num_samples = 768;
  dcfg.seed = 500 + seed;
  w.train = std::make_unique<SyntheticTranslationDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 128;
  w.val = std::make_unique<SyntheticTranslationDataset>(vcfg);

  w.cfg.epochs = ScaledEpochs(epochs);
  w.cfg.batch_size = 16;
  w.cfg.task.kind = TaskKind::kTranslation;
  w.cfg.optimizer = TrainConfig::Optim::kAdam;
  w.cfg.weight_decay = 0.0F;
  w.cfg.lr_schedule = std::make_shared<InverseSqrtLr>(3e-3F, 100);
  w.cfg.val_batches = 6;
  w.cfg.seed = seed;
  w.cfg.egeria.eval_interval_n = 12;
  w.cfg.egeria.window_w = 4;
  w.cfg.egeria.quant_mode = QuantMode::kDynamic;
  w.cfg.egeria.max_bootstrap_iters = 96;
  w.cfg.egeria.ref_update_evals = 8;  // MT improves late; stale-ref sawtooth guards
  return w;
}

// ---- BERT fine-tuning on span QA ----
// Builds a "pre-trained" encoder by training briefly on a disjoint QA sample stream,
// then fine-tunes (the paper's SQuAD setup: fine-tuning converges fast and freezing
// suffers less).
inline Workload MakeBertWorkload(uint64_t seed = 8, int epochs = 8,
                                 bool pretrain = true) {
  Workload w;
  w.name = "BERT/SQuAD*";
  Rng rng(seed);
  BertConfig mcfg;
  mcfg.vocab = 32;
  mcfg.dim = 24;
  mcfg.heads = 4;
  mcfg.ffn_dim = 48;
  mcfg.num_layers = 4;
  mcfg.max_len = 20;
  w.model = PartitionIntoChain("bert", BuildBertBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 6}, &w.partition);
  SyntheticQaConfig dcfg;
  dcfg.vocab = 32;
  dcfg.seq_len = 16;
  dcfg.num_samples = 512;
  dcfg.seed = 600 + seed;
  w.train = std::make_unique<SyntheticQaDataset>(dcfg);
  auto vcfg = dcfg;
  vcfg.sample_salt = 1000000;
  vcfg.num_samples = 128;
  w.val = std::make_unique<SyntheticQaDataset>(vcfg);

  w.cfg.epochs = ScaledEpochs(epochs);
  w.cfg.batch_size = 16;
  w.cfg.task.kind = TaskKind::kQa;
  w.cfg.optimizer = TrainConfig::Optim::kAdam;
  w.cfg.weight_decay = 0.0F;
  const int64_t ipe = 512 / 16;
  w.cfg.lr_schedule =
      std::make_shared<LinearDecayLr>(1e-3F, ipe * w.cfg.epochs);
  w.cfg.val_batches = 6;
  w.cfg.seed = seed;
  w.cfg.egeria.eval_interval_n = 16;
  w.cfg.egeria.window_w = 3;
  w.cfg.egeria.tolerance_coef = 0.4;  // Fine-tuning: fronts converge almost at once.
  w.cfg.egeria.quant_mode = QuantMode::kDynamic;
  w.cfg.egeria.max_bootstrap_iters = 16;  // Fine-tuning: short critical period.
  w.cfg.egeria.ref_update_evals = 4;

  if (pretrain) {
    // "Pre-training": a few epochs on a disjoint sample stream of the same task.
    SyntheticQaConfig pcfg = dcfg;
    pcfg.sample_salt = 7777777;
    SyntheticQaDataset pre(pcfg);
    TrainConfig pretrain_cfg = w.cfg;
    pretrain_cfg.epochs = ScaledEpochs(2);
    pretrain_cfg.enable_egeria = false;
    pretrain_cfg.lr_schedule = std::make_shared<ConstantLr>(2e-3F);
    Trainer warmup(*w.model, pre, *w.val, pretrain_cfg);
    warmup.Run();
  }
  return w;
}

// Runs a workload with the given system; "egeria", "baseline", or a FreezeHook.
inline TrainResult RunSystem(Workload& w, const std::string& system,
                             FreezeHook* hook = nullptr) {
  TrainConfig cfg = w.cfg;
  cfg.enable_egeria = (system == "egeria");
  Trainer trainer(*w.model, *w.train, *w.val, cfg);
  if (hook != nullptr) {
    trainer.SetFreezeHook(hook);
  }
  return trainer.Run();
}

}  // namespace bench
}  // namespace egeria

#endif  // EGERIA_BENCH_WORKLOADS_H_
