// Checkpoint overhead probe: what does fault tolerance cost per snapshot?
//
// Measures, for the shared dist workloads (tiny + fig10 geometry):
//   - in-memory capture (ExportModelState clone) — the ONLY cost the async
//     save path (ckpt/async_writer.h) leaves on the training hot path; the
//     serialize-to-disk below runs on the background writer
//   - state-dict export + save (model weights + BN stats, v2 checksummed)
//   - manifest hash + commit
//   - full verified restore (LoadCheckpoint + LoadModelState)
//   - egeria_ckpt-style verification (re-hash every file)
// and prints bytes + wall milliseconds + effective MB/s, so the checkpoint
// interval can be chosen against measured iteration times (a snapshot that
// costs ~one iteration is safe to take every few hundred; with async saves
// only the capture row counts against the iteration).
//
// Usage: ckpt_overhead [--rounds=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/state_dict.h"
#include "src/distributed/dist_workload.h"
#include "src/tensor/serialize.h"
#include "src/util/timer.h"

namespace egeria {
namespace {

namespace fs = std::filesystem;

double MedianOf(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

void BenchWorkload(const std::string& name, int rounds) {
  DistWorkload w = MakeDistWorkload(name);
  std::unique_ptr<ChainModel> model = w.make_model();
  int64_t state_bytes = 0;
  for (const auto& [entry_name, tensor] : CollectModelState(*model)) {
    (void)entry_name;
    state_bytes += tensor->NumEl() * static_cast<int64_t>(sizeof(float));
  }

  const std::string root =
      (fs::temp_directory_path() / ("egeria-ckpt-bench-" + name)).string();
  fs::remove_all(root);

  std::vector<double> capture_ms;
  std::vector<double> save_ms;
  std::vector<double> commit_ms;
  std::vector<double> load_ms;
  std::vector<double> verify_ms;
  int64_t file_bytes = 0;
  for (int r = 0; r < rounds; ++r) {
    CkptManifest m;
    m.kind = "trainer";
    m.iter = r;
    m.dir = CheckpointStepDir(root, r);
    EnsureDir(m.dir);

    WallTimer t;
    Checkpoint captured = ExportModelState(*model);
    capture_ms.push_back(t.ElapsedSeconds() * 1e3);
    captured.clear();

    t.Reset();
    SaveModelState(m.dir + "/model.state", *model);
    save_ms.push_back(t.ElapsedSeconds() * 1e3);

    t.Reset();
    AddManifestFile(m, "model.state");
    CommitManifest(m);
    commit_ms.push_back(t.ElapsedSeconds() * 1e3);
    file_bytes = m.files[0].bytes;

    t.Reset();
    std::unique_ptr<ChainModel> dst = w.make_model();
    LoadModelStateFile(m.dir + "/model.state", *dst);
    load_ms.push_back(t.ElapsedSeconds() * 1e3);

    t.Reset();
    std::string error;
    VerifyCheckpointFiles(m, &error);
    verify_ms.push_back(t.ElapsedSeconds() * 1e3);
  }
  fs::remove_all(root);

  const double capture = MedianOf(capture_ms);
  const double save = MedianOf(save_ms);
  const double commit = MedianOf(commit_ms);
  const double load = MedianOf(load_ms);
  const double verify = MedianOf(verify_ms);
  const double mb = static_cast<double>(file_bytes) / (1024.0 * 1024.0);
  std::printf("%-8s state=%8lld B  file=%8lld B  capture=%6.3f ms  "
              "save=%7.3f ms (%7.1f MB/s)  commit=%6.3f ms  load=%7.3f ms  "
              "verify=%6.3f ms\n",
              name.c_str(), static_cast<long long>(state_bytes),
              static_cast<long long>(file_bytes), capture, save,
              save > 0 ? mb / (save / 1e3) : 0.0, commit, load, verify);
}

int Main(int argc, char** argv) {
  int rounds = 9;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else {
      std::fprintf(stderr, "usage: ckpt_overhead [--rounds=N]\n");
      return 2;
    }
  }
  std::printf("checkpoint overhead (median of %d rounds)\n", rounds);
  BenchWorkload("tiny", rounds);
  BenchWorkload("fig10", rounds);
  return 0;
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) { return egeria::Main(argc, argv); }
