// Robustness-tax bench: what do frame checksums + sequence numbers and the
// heartbeat failure detector cost on the fig10 TCP allreduce path?
//
// Default mode reproduces the acceptance measurement (ISSUE/ROADMAP: frame
// integrity must add < 2% to measured allreduce s/iter on the fig10 TCP
// bench): it spawns real egeria_worker OS processes training the fig10
// workload over the TCP ring — the same protocol as
// `fig10_distributed --transport=tcp` — once with `--integrity=0` and once
// with `--integrity=1` (the production default: the TCP transport's native
// in-pump framing, 8-byte [seq][kind][src] header + FrameDigest64 trailer on
// every frame, hashing interleaved with the socket pump; see tcp_transport.h),
// and compares rank 0's measured allreduce seconds per iteration. Like the
// fig10 bench itself, the measurement includes peer skew: a rank blocked on a
// slower neighbor counts the wait, which is what synchronization actually
// costs a data-parallel run. A second comparison prices the failure
// detector: `--hb-interval=0` against the worker's default heartbeat.
//
// Noise protocol: on a shared host the absolute s/iter of any single run
// drifts by tens of percent over tens of seconds (other tenants), which
// swamps a percent-level overhead if the configs are timed in separate
// blocks. So the bench runs --repeats ROUNDS of (off, on, hb-off)
// back-to-back — within one round the configs see nearly the same host —
// takes each round's paired overhead ratio, and reports the MEDIAN round.
// The printed s/iter values are each config's across-round minimum (its
// least-contended sample); the overhead percentages come from the paired
// medians, which is why they are not exactly the ratio of the printed
// minima.
//
//   EGERIA_INTEGRITY_BENCH world=.. payload_bytes=.. iters=..
//       off_s_per_iter=.. on_s_per_iter=.. overhead_pct=..
//   EGERIA_HEARTBEAT_BENCH world=.. hb_off_s_per_iter=.. hb_on_s_per_iter=..
//       overhead_pct=..
//
// --mode=loop is the diagnostic microbench: a world of rank THREADS runs a
// tight reduce-scatter/all-gather loop over a fig10-sized flat payload with
// no training compute between collectives. That strips out the skew waits and
// exposes the raw per-byte tax of the framing — useful for optimizing the
// pump, but NOT the acceptance number: on a single-core host the loopback
// "wire" is itself CPU copies, so a back-to-back collective loop charges every
// hashed byte at full price no matter how the hashing is scheduled.
//
// Flags: --world=N (default 3), --mode=train|loop (default train),
// --epochs=N (train mode, default 8), --repeats=N (train mode, default 5),
// --elems=N (loop mode payload; default 0 = the fig10 model's actual flat
// parameter count), --iters=N (loop mode, default 30).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/distributed/allreduce.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/flat_view.h"
#include "src/distributed/process_launcher.h"
#include "src/distributed/transport/tcp_transport.h"
#include "src/models/chain_model.h"
#include "src/nn/module.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace egeria {
namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  *out = arg + prefix.size();
  return true;
}

// Resolves the worker binary: $EGERIA_WORKER_BIN, else next to this binary.
std::string WorkerBinary() {
  if (const char* env = std::getenv("EGERIA_WORKER_BIN")) {
    return env;
  }
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    const size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      return dir.substr(0, slash) + "/egeria_worker";
    }
  }
  return "./egeria_worker";
}

// One fig10 TCP training run; returns rank 0's measured allreduce seconds per
// iteration (including peer skew, as the fig10 bench measures it).
double TrainAllreduceSecondsPerIter(int world, int epochs, bool integrity,
                                    double hb_interval_s) {
  SpawnOptions options;
  options.worker_binary = WorkerBinary();
  options.world = world;
  // Same configuration as `fig10_distributed --transport=tcp` (the bench the
  // acceptance budget is defined on), plus the integrity/heartbeat knobs.
  options.common_args = {"--workload=fig10", "--egeria=1",
                         "--epochs=" + std::to_string(epochs),
                         "--integrity=" + std::string(integrity ? "1" : "0"),
                         "--hb-interval=" + std::to_string(hb_interval_s)};
  char tmpl[] = "/tmp/egeria-integrity-bench-XXXXXX";
  EGERIA_CHECK_MSG(mkdtemp(tmpl) != nullptr, "mkdtemp failed");
  options.log_dir = tmpl;
  options.timeout_s = 600.0;
  const SpawnResult run = SpawnWorld(options);
  EGERIA_CHECK_MSG(run.ok, "fig10 bench world failed: " + run.error);
  const auto& r0 = run.rank_results[0];
  const double seconds = std::atof(r0.at("allreduce_seconds").c_str());
  const long long iters = std::atoll(r0.at("iterations").c_str());
  EGERIA_CHECK(iters > 0);
  for (const std::string& log : run.log_paths) {
    unlink(log.c_str());
  }
  unlink((options.log_dir + "/rendezvous").c_str());
  rmdir(options.log_dir.c_str());
  return seconds / static_cast<double>(iters);
}

double Median(std::vector<double> v) {
  EGERIA_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

int TrainMain(int world, int epochs, int repeats) {
  const int64_t elems = MakeDistWorkload("fig10").make_model()->TotalParamCount();
  // Paired rounds, median overhead ratio (see the header comment).
  double off = 0.0;   // integrity off, default heartbeat
  double on = 0.0;    // integrity on (production default), default heartbeat
  double hb_off = 0.0;  // integrity on, heartbeat disabled
  std::vector<double> integrity_pcts;
  std::vector<double> hb_pcts;
  for (int i = 0; i < repeats; ++i) {
    const double a = TrainAllreduceSecondsPerIter(world, epochs, false, 2.0);
    const double b = TrainAllreduceSecondsPerIter(world, epochs, true, 2.0);
    const double c = TrainAllreduceSecondsPerIter(world, epochs, true, 0.0);
    integrity_pcts.push_back((b - a) / a * 100.0);
    hb_pcts.push_back((b - c) / c * 100.0);
    if (i == 0 || a < off) {
      off = a;
    }
    if (i == 0 || b < on) {
      on = b;
    }
    if (i == 0 || c < hb_off) {
      hb_off = c;
    }
  }
  const double pct = Median(integrity_pcts);
  std::printf(
      "EGERIA_INTEGRITY_BENCH world=%d payload_bytes=%lld iters=%d "
      "off_s_per_iter=%.6f on_s_per_iter=%.6f overhead_pct=%.2f\n",
      world, static_cast<long long>(elems * 4), epochs,
      off, on, pct);
  // Heartbeat tax with integrity at the production default (on).
  const double hb_on = on;
  const double hb_pct = Median(hb_pcts);
  std::printf(
      "EGERIA_HEARTBEAT_BENCH world=%d hb_off_s_per_iter=%.6f "
      "hb_on_s_per_iter=%.6f overhead_pct=%.2f\n",
      world, hb_off, hb_on, hb_pct);
  return 0;
}

// Diagnostic tight loop (no training compute): one full collective round per
// "iteration" at world scale over TCP threads; returns rank 0's wall seconds
// per iteration (averaged over `iters` after `warmup` untimed rounds).
double MeasureSecondsPerIter(int world, int64_t elems, int iters, int warmup,
                             bool integrity) {
  char tmpl[] = "/tmp/egeria-integrity-bench-XXXXXX";
  EGERIA_CHECK_MSG(mkdtemp(tmpl) != nullptr, "mkdtemp failed");
  const std::string rendezvous = std::string(tmpl) + "/rendezvous";
  double rank0_seconds = 0.0;
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      TcpTransportOptions opts;
      opts.rank = r;
      opts.world = world;
      opts.rendezvous_file = rendezvous;
      opts.frame_integrity = integrity;
      std::unique_ptr<Transport> base = MakeTcpTransport(opts);
      Transport& transport = *base;

      Parameter param("bench", Tensor::Zeros({elems}));
      for (int64_t i = 0; i < elems; ++i) {
        param.grad.At(i) = static_cast<float>((r + 1) * 0.001F + i % 97);
      }
      std::vector<Parameter*> params = {&param};
      FlatParamView grads(params, FlatParamView::Field::kGrad);
      FlatParamView values(params, FlatParamView::Field::kValue);
      RingAllReducer ring(transport);

      WallTimer timer;
      for (int it = 0; it < warmup + iters; ++it) {
        if (it == warmup) {
          EGERIA_CHECK(transport.Barrier().ok());
          timer.Reset();
        }
        EGERIA_CHECK(ring.ReduceScatterAverage(grads, nullptr).ok());
        EGERIA_CHECK(ring.AllGather(values).ok());
      }
      if (r == 0) {
        rank0_seconds = timer.ElapsedSeconds();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  unlink(rendezvous.c_str());
  rmdir(tmpl);
  return rank0_seconds / iters;
}

int LoopMain(int world, int64_t elems, int iters) {
  if (elems == 0) {
    elems = MakeDistWorkload("fig10").make_model()->TotalParamCount();
  }
  const int warmup = 3;
  const double off = MeasureSecondsPerIter(world, elems, iters, warmup, false);
  const double on = MeasureSecondsPerIter(world, elems, iters, warmup, true);
  const double overhead_pct = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  std::printf(
      "EGERIA_INTEGRITY_LOOP world=%d payload_bytes=%lld iters=%d "
      "off_s_per_iter=%.6f on_s_per_iter=%.6f overhead_pct=%.2f\n",
      world, static_cast<long long>(elems * 4), iters, off, on, overhead_pct);
  return 0;
}

int Main(int argc, char** argv) {
  int world = 3;
  int64_t elems = 0;  // 0 = the fig10 model's actual flat parameter count
  int iters = 30;
  int epochs = 8;
  int repeats = 5;
  std::string mode = "train";
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "world", &v)) {
      world = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "elems", &v)) {
      elems = std::atoll(v.c_str());
    } else if (FlagValue(argv[i], "iters", &v)) {
      iters = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "epochs", &v)) {
      epochs = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "repeats", &v)) {
      repeats = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "mode", &v)) {
      mode = v;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  EGERIA_CHECK(world >= 2 && elems >= 0 && iters > 0 && epochs > 0 &&
               repeats > 0);
  if (mode == "loop") {
    return LoopMain(world, elems, iters);
  }
  if (mode != "train") {
    std::fprintf(stderr, "unknown --mode=%s (train|loop)\n", mode.c_str());
    return 2;
  }
  return TrainMain(world, epochs, repeats);
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) { return egeria::Main(argc, argv); }
