// Microbenchmarks of the compute kernels and metrics (google-benchmark).
//
// Reproduces two paper claims quantitatively:
//  - SP loss is much cheaper than PWCCA ("~10x lower overhead", S3);
//  - the int8 reference forward is faster than fp32 (Table 2's speed column).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/metrics/pwcca.h"
#include "src/metrics/sp_loss.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/quant/quantized_modules.h"
#include "src/tensor/gemm.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace egeria {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  // items_per_second * 2 = FLOP/s (each item is one multiply-add).
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

// fp16-storage GEMM (fp16 weights x fp32 activations, the inference layout).
void BM_MatMulFp16(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  std::vector<_Float16> bh(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n * n; ++i) {
    bh[static_cast<size_t>(i)] = static_cast<_Float16>(b.Data()[i]);
  }
  Tensor c = Tensor::Uninitialized({n, n});
  for (auto _ : state) {
    Gemm(a.Data(), bh.data(), c.Data(), n, n, n, false, false, false);
    benchmark::DoNotOptimize(c.Data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulFp16)->Arg(256);

// int8 dot4 GEMM into exact int32 (requantization excluded: that cost is
// measured end-to-end by the conv/linear benches below).
void BM_MatMulInt8(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  std::vector<int8_t> a(static_cast<size_t>(n * n));
  std::vector<int8_t> b(static_cast<size_t>(n * n));
  for (auto& v : a) {
    v = static_cast<int8_t>(static_cast<int>(rng.NextBelow(255)) - 127);
  }
  for (auto& v : b) {
    v = static_cast<int8_t>(static_cast<int>(rng.NextBelow(255)) - 127);
  }
  std::vector<int32_t> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    Gemm(a.data(), b.data(), c.data(), n, n, n, false, false, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulInt8)->Arg(256);

void BM_ConvForwardFloat(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv("c", 16, 16, 3, rng);
  conv.SetTraining(false);
  Tensor x = Tensor::Randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}
BENCHMARK(BM_ConvForwardFloat);

void BM_ConvForwardInt8(benchmark::State& state) {
  Rng rng(2);
  Conv2d fp("c", 16, 16, 3, rng);
  QuantConv2d conv(fp, QuantMode::kStatic);
  Tensor x = Tensor::Randn({8, 16, 16, 16}, rng);
  conv.Forward(x);  // calibration
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}
BENCHMARK(BM_ConvForwardInt8);

void BM_ConvForwardFp16(benchmark::State& state) {
  Rng rng(2);
  Conv2d fp("c", 16, 16, 3, rng);
  Fp16Conv2d conv(fp);
  Tensor x = Tensor::Randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}
BENCHMARK(BM_ConvForwardFp16);

void BM_LinearForwardFloat(benchmark::State& state) {
  Rng rng(3);
  Linear fc("l", 256, 256, rng);
  fc.SetTraining(false);
  Tensor x = Tensor::Randn({32, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.Forward(x));
  }
}
BENCHMARK(BM_LinearForwardFloat);

void BM_LinearForwardInt8(benchmark::State& state) {
  Rng rng(3);
  Linear fp("l", 256, 256, rng);
  QuantLinear fc(fp, QuantMode::kDynamic);
  Tensor x = Tensor::Randn({32, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fc.Forward(x));
  }
}
BENCHMARK(BM_LinearForwardInt8);

// SP loss vs PWCCA on the same activation pair — the paper's ~10x cost claim.
void BM_SpLoss(benchmark::State& state) {
  Rng rng(4);
  Tensor a = Tensor::Randn({16, 32, 8, 8}, rng);
  Tensor b = Tensor::Randn({16, 32, 8, 8}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpLoss(a, b));
  }
}
BENCHMARK(BM_SpLoss);

void BM_Pwcca(benchmark::State& state) {
  Rng rng(4);
  Tensor a = ActivationsToSamples(Tensor::Randn({16, 32, 8, 8}, rng));
  Tensor b = ActivationsToSamples(Tensor::Randn({16, 32, 8, 8}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PwccaDistance(a, b));
  }
}
BENCHMARK(BM_Pwcca);

}  // namespace
}  // namespace egeria
