// Figure 11: freezing/unfreezing decisions across ResNet-56 training.
//
// Paper: the partitioner splits heavy layer3 (75% of parameters) finer than light
// layer1/layer2; Egeria gradually freezes modules, the 100th/150th-epoch LR drops
// unfreeze everything, and refreezing is much faster (halved window). Rendered here
// as the module partition table plus the frontier timeline with active-parameter
// percentages.
#include <cstdio>

#include "bench/workloads.h"

namespace egeria {
namespace {

int Main() {
  std::printf("== Figure 11: freezing/unfreezing timeline (ResNet-56) ==\n");
  std::printf("Paper: param-balanced modules; freeze cascade; unfreeze at LR drops;\n"
              "faster refreeze afterwards.\n\n");

  bench::Workload w = bench::MakeResNet56Workload(/*seed=*/91, /*epochs=*/20);

  // Partition layout (the paper's module split by parameter mass).
  int64_t total_params = 0;
  for (int64_t m : w.partition.module_params) {
    total_params += m;
  }
  Table layout({"module", "blocks", "params", "% of model"});
  for (size_t i = 0; i < w.partition.module_names.size(); ++i) {
    layout.AddRow({w.partition.module_names[i],
                   std::to_string(w.partition.blocks_per_module[i]),
                   std::to_string(w.partition.module_params[i]),
                   Table::Pct(static_cast<double>(w.partition.module_params[i]) /
                              static_cast<double>(total_params))});
  }
  layout.Print();

  TrainResult r = bench::RunSystem(w, "egeria");

  // Active-parameter share per frontier value.
  auto active_fraction = [&](int frontier) {
    int64_t active = 0;
    for (size_t i = static_cast<size_t>(frontier); i < w.partition.module_params.size();
         ++i) {
      active += w.partition.module_params[i];
    }
    return static_cast<double>(active) / static_cast<double>(total_params);
  };

  std::printf("\n-- Decision timeline --\n");
  Table timeline({"iter", "epoch", "event", "frontier", "active params"});
  for (const auto& e : r.freeze_events) {
    timeline.AddRow({std::to_string(e.iter), std::to_string(e.epoch),
                     e.unfreeze ? "UNFREEZE ALL" : "freeze",
                     std::to_string(e.frontier_after),
                     Table::Pct(active_fraction(e.frontier_after))});
  }
  timeline.Print();

  // Refreeze speed: time from the first unfreeze to the next freeze vs time from
  // training start to the first freeze.
  int64_t first_freeze = -1;
  int64_t first_unfreeze = -1;
  int64_t refreeze = -1;
  for (const auto& e : r.freeze_events) {
    if (!e.unfreeze && first_freeze < 0) {
      first_freeze = e.iter;
    } else if (e.unfreeze && first_freeze >= 0 && first_unfreeze < 0) {
      first_unfreeze = e.iter;
    } else if (!e.unfreeze && first_unfreeze >= 0 && refreeze < 0) {
      refreeze = e.iter;
    }
  }
  std::printf("\nfinal acc=%.3f | final frontier=%d/%d | fp skips=%lld\n",
              r.final_metric.display, r.final_frontier, w.model->NumStages(),
              static_cast<long long>(r.fp_skip_count));
  if (first_freeze > 0 && refreeze > 0) {
    std::printf("first freeze after %lld iters; refreeze after unfreeze took %lld iters "
                "(paper: refreezing is faster due to halved W)\n",
                static_cast<long long>(first_freeze),
                static_cast<long long>(refreeze - first_unfreeze));
  }
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
