// Figure 2: prematurely freezing layers with transfer-learning techniques hurts
// final accuracy in general training.
//
// Paper: fixing ResNet-56 layer modules at the 20th/50th epoch degrades final
// accuracy by up to ~2%; a gradient-based metric tuned to ~20% speedup loses ~1%.
// Here: the same protocol on the scaled workload — static freezes of successively
// deeper prefixes at 1/8 and 1/3 of the schedule, plus an aggressive gradient-norm
// policy, against the no-freeze baseline.
#include <cstdio>

#include "bench/workloads.h"

namespace egeria {
namespace {

int Main() {
  std::printf("== Figure 2: premature freezing hurts final accuracy ==\n");
  std::printf("Paper: static freeze @20/50ep loses up to ~2%% acc; gradient metric ~1%%.\n\n");

  Table table({"system", "final acc", "delta vs baseline", "train s", "speedup"});

  bench::Workload base = bench::MakeResNet56Workload(/*seed=*/21);
  TrainResult baseline = bench::RunSystem(base, "baseline");
  table.AddRow({"no freeze", Table::Pct(baseline.final_metric.display),
                "-", Table::Num(baseline.total_train_seconds, 1), "1.00x"});

  struct StaticCase {
    const char* label;
    int epoch_frac_num;  // freeze at epochs * num / den
    int epoch_frac_den;
    int depth_frac_num;  // freeze stages [0, stages * num / den]
    int depth_frac_den;
  };
  const StaticCase cases[] = {
      {"freeze half @1/8", 1, 8, 1, 2},
      {"freeze half @1/3", 1, 3, 1, 2},
      {"freeze 2/3 @1/8", 1, 8, 2, 3},
  };
  for (const auto& c : cases) {
    bench::Workload w = bench::MakeResNet56Workload(21);
    const int stage = std::max(
        0, std::min(w.model->NumStages() - 2,
                    w.model->NumStages() * c.depth_frac_num / c.depth_frac_den - 1));
    StaticFreezeHook hook(w.cfg.epochs * c.epoch_frac_num / c.epoch_frac_den, stage);
    TrainResult r = bench::RunSystem(w, "baseline", &hook);
    table.AddRow({c.label, Table::Pct(r.final_metric.display),
                  Table::Num((r.final_metric.display - baseline.final_metric.display) * 100, 2) + "pp",
                  Table::Num(r.total_train_seconds, 1),
                  Table::Num(baseline.total_train_seconds / r.total_train_seconds, 2) + "x"});
  }

  {
    bench::Workload w = bench::MakeResNet56Workload(21);
    AutoFreezeConfig acfg;
    acfg.eval_interval = 12;
    acfg.window = 4;
    acfg.threshold_frac = 0.7;  // Tuned toward the paper's ~20% speedup point.
    AutoFreezeHook hook(acfg);
    TrainResult r = bench::RunSystem(w, "baseline", &hook);
    table.AddRow({"gradient metric", Table::Pct(r.final_metric.display),
                  Table::Num((r.final_metric.display - baseline.final_metric.display) * 100, 2) + "pp",
                  Table::Num(r.total_train_seconds, 1),
                  Table::Num(baseline.total_train_seconds / r.total_train_seconds, 2) + "x"});
  }

  table.Print();
  std::printf("\nExpected shape: every premature-freezing row trades accuracy (negative\n"
              "delta) for its speedup, matching the paper's ~1-2pp losses.\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
