// Figure 9: performance breakdown — backward-freezing only vs adding FP caching.
//
// Paper: on single-node training the speedup decomposes into skipped BP of frozen
// layers (the bulk) plus prefetching cached FP results (<10%, larger for CNNs than
// for language models).
//
// `--smoke` runs a small deterministic static-freeze pair (feature store off/on)
// and prints a machine-parseable FIG09_SMOKE line with the frozen-forward seconds
// eliminated by the store in steady state (epochs after the populate pass). CI
// records saved_s as the advisory frozen_forward_saved_s trajectory metric.
#include <cstdio>
#include <cstring>

#include "bench/workloads.h"
#include "src/obs/metrics.h"

namespace egeria {
namespace {

// Per-run attribution of the registry's process-wide instruments: snapshot the
// frozen-forward histogram sum and skip counter before a run, read them again
// after, and the delta is that run's share. The Trainer feeds these from the
// same obs::ScopedPhase clock reads that fill TrainResult, so the table's
// frozen-fp columns come straight from "trainer.frozen_fp_s" / "cache.fp_skips"
// rather than bespoke accumulators.
struct MetricsDelta {
  double frozen_fp_s0 = obs::HistogramSum("trainer.frozen_fp_s");
  int64_t fp_skips0 = obs::CounterValue("cache.fp_skips");
  double FrozenFpSeconds() const {
    return obs::HistogramSum("trainer.frozen_fp_s") - frozen_fp_s0;
  }
  int64_t FpSkips() const { return obs::CounterValue("cache.fp_skips") - fp_skips0; }
};

void RunModel(const char* label, bench::Workload (*make)(uint64_t), uint64_t seed,
              Table& table) {
  TrainResult base;
  {
    bench::Workload w = make(seed);
    base = bench::RunSystem(w, "baseline");
  }
  TrainResult freeze_only;
  double freeze_only_frozen_fp_s = 0.0;
  {
    bench::Workload w = make(seed);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.enable_cache = false;
    Trainer t(*w.model, *w.train, *w.val, cfg);
    MetricsDelta delta;
    freeze_only = t.Run();
    freeze_only_frozen_fp_s = delta.FrozenFpSeconds();
  }
  TrainResult freeze_cache;
  double freeze_cache_frozen_fp_s = 0.0;
  int64_t freeze_cache_fp_skips = 0;
  {
    bench::Workload w = make(seed);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.enable_cache = true;
    Trainer t(*w.model, *w.train, *w.val, cfg);
    MetricsDelta delta;
    freeze_cache = t.Run();
    freeze_cache_frozen_fp_s = delta.FrozenFpSeconds();
    freeze_cache_fp_skips = delta.FpSkips();
  }
  const double bp_gain = 1.0 - freeze_only.total_train_seconds / base.total_train_seconds;
  const double total_gain =
      1.0 - freeze_cache.total_train_seconds / base.total_train_seconds;
  table.AddRow({label, Table::Num(base.total_train_seconds, 1),
                Table::Num(freeze_only.total_train_seconds, 1),
                Table::Num(freeze_cache.total_train_seconds, 1), Table::Pct(bp_gain),
                Table::Pct(total_gain - bp_gain),
                // Seconds spent computing the frozen prefix: without the store
                // every post-freeze iteration pays it; with the store only the
                // populate pass does.
                Table::Num(freeze_only_frozen_fp_s, 2),
                Table::Num(freeze_cache_frozen_fp_s, 2),
                std::to_string(freeze_cache_fp_skips)});
}

bench::Workload MakeR56(uint64_t seed) { return bench::MakeResNet56Workload(seed, 16); }
bench::Workload MakeTr(uint64_t seed) {
  return bench::MakeTransformerWorkload(false, seed, 14);
}

// Small deterministic workload for the smoke pair: static freeze at epoch 1,
// so epochs >= 2 are pure steady state for the feature store.
bench::Workload MakeSmokeWorkload() {
  bench::Workload w = bench::MakeResNet56Workload(/*seed=*/91, /*epochs=*/6);
  w.cfg.epochs = 6;  // Undo EGERIA_BENCH_SCALE: the smoke needs its epoch layout.
  w.cfg.train_samples_limit = 256;
  w.cfg.enable_egeria = true;
  // Neutralize the controller: plasticity never evaluates, the StaticFreezeHook
  // owns the frontier. (Same pattern as the trainer integration tests.)
  w.cfg.egeria.eval_interval_n = int64_t{1} << 20;
  w.cfg.egeria.max_bootstrap_iters = -1;
  return w;
}

int SmokeMain() {
  constexpr int kFreezeEpoch = 1;
  constexpr int kFreezeStage = 4;  // frontier 5 of 7 stages
  TrainResult off;
  {
    bench::Workload w = MakeSmokeWorkload();
    TrainConfig cfg = w.cfg;
    cfg.egeria.enable_cache = false;
    StaticFreezeHook hook(kFreezeEpoch, kFreezeStage);
    Trainer t(*w.model, *w.train, *w.val, cfg);
    t.SetFreezeHook(&hook);
    off = t.Run();
  }
  TrainResult on;
  {
    bench::Workload w = MakeSmokeWorkload();
    TrainConfig cfg = w.cfg;
    cfg.egeria.enable_cache = true;
    StaticFreezeHook hook(kFreezeEpoch, kFreezeStage);
    Trainer t(*w.model, *w.train, *w.val, cfg);
    t.SetFreezeHook(&hook);
    on = t.Run();
  }
  // Steady state excludes the populate epoch (kFreezeEpoch itself): the store
  // must fill before it can serve.
  double off_s = 0.0;
  double on_s = 0.0;
  int64_t skips = 0;
  for (const auto& e : off.epochs) {
    if (e.epoch > kFreezeEpoch) {
      off_s += e.frozen_fp_seconds;
    }
  }
  for (const auto& e : on.epochs) {
    if (e.epoch > kFreezeEpoch) {
      on_s += e.frozen_fp_seconds;
      skips += e.fp_skips;
    }
  }
  const double saved = off_s - on_s;
  const double frac = off_s > 0.0 ? saved / off_s : 0.0;
  std::printf("FIG09_SMOKE frozen_fp_store_off_s=%.6f frozen_fp_store_on_s=%.6f "
              "saved_s=%.6f saved_frac=%.4f fp_skips=%lld\n",
              off_s, on_s, saved, frac, static_cast<long long>(skips));
  if (skips == 0) {
    std::printf("FIG09_SMOKE_ERROR store never served a batch\n");
    return 1;
  }
  if (frac < 0.80) {
    std::printf("FIG09_SMOKE_ERROR steady-state frozen-forward elimination %.1f%% < 80%%\n",
                frac * 100.0);
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return SmokeMain();
    }
  }
  std::printf("== Figure 9: breakdown of freezing (BP skip) vs FP caching ==\n");
  std::printf("Paper: FP caching adds <10%%, contributing more for CNNs than for NLP.\n\n");
  Table table({"model", "baseline s", "freeze-only s", "freeze+cache s", "BP-skip gain",
               "FP-cache gain", "frozen-fp off s", "frozen-fp on s", "fp skips"});
  RunModel("ResNet-56 (CNN)", MakeR56, 71, table);
  RunModel("Transformer-Base (NLP)", MakeTr, 72, table);
  table.Print();
  std::printf("\nShape: BP-skip gain dominates; FP-cache adds a smaller increment, larger\n"
              "for the CNN than for the Transformer (whose decoder still runs forward).\n"
              "The frozen-fp columns show the store collapsing frozen forward time to\n"
              "the populate pass.\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) { return egeria::Main(argc, argv); }
