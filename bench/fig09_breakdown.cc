// Figure 9: performance breakdown — backward-freezing only vs adding FP caching.
//
// Paper: on single-node training the speedup decomposes into skipped BP of frozen
// layers (the bulk) plus prefetching cached FP results (<10%, larger for CNNs than
// for language models).
#include <cstdio>

#include "bench/workloads.h"

namespace egeria {
namespace {

void RunModel(const char* label, bench::Workload (*make)(uint64_t), uint64_t seed,
              Table& table) {
  TrainResult base;
  {
    bench::Workload w = make(seed);
    base = bench::RunSystem(w, "baseline");
  }
  TrainResult freeze_only;
  {
    bench::Workload w = make(seed);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.enable_cache = false;
    Trainer t(*w.model, *w.train, *w.val, cfg);
    freeze_only = t.Run();
  }
  TrainResult freeze_cache;
  {
    bench::Workload w = make(seed);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.enable_cache = true;
    Trainer t(*w.model, *w.train, *w.val, cfg);
    freeze_cache = t.Run();
  }
  const double bp_gain = 1.0 - freeze_only.total_train_seconds / base.total_train_seconds;
  const double total_gain =
      1.0 - freeze_cache.total_train_seconds / base.total_train_seconds;
  table.AddRow({label, Table::Num(base.total_train_seconds, 1),
                Table::Num(freeze_only.total_train_seconds, 1),
                Table::Num(freeze_cache.total_train_seconds, 1), Table::Pct(bp_gain),
                Table::Pct(total_gain - bp_gain),
                std::to_string(freeze_cache.fp_skip_count)});
}

bench::Workload MakeR56(uint64_t seed) { return bench::MakeResNet56Workload(seed, 16); }
bench::Workload MakeTr(uint64_t seed) {
  return bench::MakeTransformerWorkload(false, seed, 14);
}

int Main() {
  std::printf("== Figure 9: breakdown of freezing (BP skip) vs FP caching ==\n");
  std::printf("Paper: FP caching adds <10%%, contributing more for CNNs than for NLP.\n\n");
  Table table({"model", "baseline s", "freeze-only s", "freeze+cache s", "BP-skip gain",
               "FP-cache gain", "fp skips"});
  RunModel("ResNet-56 (CNN)", MakeR56, 71, table);
  RunModel("Transformer-Base (NLP)", MakeTr, 72, table);
  table.Print();
  std::printf("\nShape: BP-skip gain dominates; FP-cache adds a smaller increment, larger\n"
              "for the CNN than for the Transformer (whose decoder still runs forward).\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
