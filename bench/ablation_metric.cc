// Ablation: the plasticity metric (design choice, paper S4.2.1).
//
// Egeria chooses SP loss over (a) direct tensor differences (FitNets-style, what the
// Skip-Conv gate reduces to) and (b) gradient norms (AutoFreeze-style) because the
// b x b similarity structure captures semantic agreement. This ablation swaps only
// the metric inside the same freezing policy (same smoothing, slope test, tolerance
// rule) and compares final accuracy and speed on the ResNet-56 workload.
#include <cstdio>

#include "bench/workloads.h"
#include "src/core/freezing_policy.h"
#include "src/metrics/gradient_metrics.h"
#include "src/metrics/sp_loss.h"
#include "src/quant/quantized_modules.h"

namespace egeria {
namespace {

enum class MetricKind { kSpLoss, kFitNets, kGradNorm };

// A FreezeHook that reimplements Algorithm 1 with a pluggable metric: SP loss or
// FitNets-L2 against an int8 reference snapshot, or the stage gradient norm.
class MetricAblationHook : public FreezeHook {
 public:
  MetricAblationHook(MetricKind kind, const EgeriaConfig& cfg, int num_stages)
      : kind_(kind), policy_(cfg, num_stages, /*annealing=*/true), cfg_(cfg) {}

  void OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) override {
    (void)batch;
    if (auto d = policy_.OnLr(trainer.config().lr_schedule->LrAt(iter), iter)) {
      trainer.UnfreezeAll(iter);
      return;
    }
    if (iter % cfg_.eval_interval_n != 0 || iter < cfg_.max_bootstrap_iters) {
      return;
    }
    const int frontier = trainer.frontier();
    if (frontier > policy_.MaxFreezable()) {
      return;
    }
    // Refresh the reference periodically, as the controller would.
    if (kind_ != MetricKind::kGradNorm &&
        (reference_ == nullptr || ++evals_since_refresh_ >= cfg_.ref_update_evals)) {
      Int8Factory factory(QuantMode::kStatic);
      reference_ = trainer.model().CloneForInference(factory);
      evals_since_refresh_ = 0;
    }
    double value = 0.0;
    switch (kind_) {
      case MetricKind::kSpLoss:
      case MetricKind::kFitNets: {
        reference_->SetBatch(batch);
        Tensor ref_act = reference_->ForwardPrefix(frontier, batch.input);
        Tensor train_act = trainer.FrontierActivation();
        value = (kind_ == MetricKind::kSpLoss) ? SpLoss(train_act, ref_act)
                                               : FitNetsL2(train_act, ref_act);
        break;
      }
      case MetricKind::kGradNorm:
        value = StageGradientNorm(trainer.model().StageParams(frontier));
        break;
    }
    const float lr = trainer.config().lr_schedule->LrAt(iter);
    if (auto d = policy_.OnPlasticity(frontier, value, lr, iter)) {
      if (d->kind == FreezeDecision::Kind::kFreezeUpTo) {
        trainer.FreezeUpTo(d->stage, iter);
      }
    }
  }

  std::string Name() const override { return "metric-ablation"; }

 private:
  MetricKind kind_;
  FreezingPolicy policy_;
  EgeriaConfig cfg_;
  std::unique_ptr<ChainModel> reference_;
  int evals_since_refresh_ = 0;
};

int Main() {
  std::printf("== Ablation: plasticity metric (SP loss vs FitNets-L2 vs grad norm) ==\n");
  std::printf("Paper S4.2.1: activation-similarity metrics beat gradients; SP loss beats\n"
              "direct subtraction (FitNets / Skip-Conv style).\n\n");

  TrainResult base;
  {
    bench::Workload w = bench::MakeResNet56Workload(/*seed=*/3, 16);
    base = bench::RunSystem(w, "baseline");
  }
  Table table({"metric", "final acc", "delta", "train s", "speedup", "frozen"});
  table.AddRow({"none (baseline)", Table::Pct(base.final_metric.display), "-",
                Table::Num(base.total_train_seconds, 1), "1.00x", "0"});

  const struct {
    const char* label;
    MetricKind kind;
  } kinds[] = {{"SP loss (Egeria)", MetricKind::kSpLoss},
               {"FitNets L2", MetricKind::kFitNets},
               {"gradient norm", MetricKind::kGradNorm}};
  for (const auto& k : kinds) {
    bench::Workload w = bench::MakeResNet56Workload(3, 16);
    MetricAblationHook hook(k.kind, w.cfg.egeria, w.model->NumStages());
    TrainResult r = bench::RunSystem(w, "baseline", &hook);
    table.AddRow({k.label, Table::Pct(r.final_metric.display),
                  Table::Num((r.final_metric.display - base.final_metric.display) * 100, 2) + "pp",
                  Table::Num(r.total_train_seconds, 1),
                  Table::Num(base.total_train_seconds / r.total_train_seconds, 2) + "x",
                  std::to_string(r.final_frontier)});
  }
  table.Print();
  std::printf("\nRead: all metrics must keep baseline accuracy to be usable; the differences\n"
              "show up in when/how much they freeze. On instances that keep improving late,\n"
              "direct-subtraction and gradient metrics fire earlier and cost accuracy (see\n"
              "fig02/fig08); on this converged instance every metric is safe and the\n"
              "speedup tracks how much of the schedule ran frozen.\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
