// Figure 1: post-hoc layer convergence analysis with PWCCA.
//
// Paper: ResNet-56 on CIFAR-10, PWCCA of each layer module against the fully trained
// model; front modules converge (score plateaus near 0) tens of epochs before deep
// modules, and LR drops (100th/150th epoch) re-boost everything — the "freezable
// regions" motivating Egeria. Here: the scaled ResNet-56 workload with the same
// step-decay shape; the PWCCA-vs-final series must show front stages flattening
// earlier than deep stages and a visible reset at the LR milestones.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/workloads.h"
#include "src/metrics/pwcca.h"

namespace egeria {
namespace {

using bench::MakeResNet56Workload;

int Main() {
  std::printf("== Figure 1: PWCCA layer convergence (post hoc) ==\n");
  std::printf("Paper: front modules plateau early; LR drops re-boost all modules.\n\n");

  bench::Workload w = MakeResNet56Workload(/*seed=*/3, /*epochs=*/16);
  const int num_stages = w.model->NumStages();

  // Snapshot (float inference clone) at every epoch, then compare against final.
  std::vector<std::unique_ptr<ChainModel>> snapshots;
  InferenceFactory float_factory;

  TrainConfig cfg = w.cfg;
  cfg.enable_egeria = false;
  DataLoader loader(*w.train, cfg.batch_size, true, cfg.seed);
  Sgd opt(cfg.momentum, cfg.weight_decay);
  int64_t iter = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    loader.StartEpoch(epoch);
    for (int64_t b = 0; b < loader.NumBatches(); ++b) {
      ++iter;
      Batch batch = loader.GetBatch(b);
      w.model->SetBatch(batch);
      Tensor logits = w.model->ForwardFrom(0, batch.input);
      LossResult loss = TaskLoss(cfg.task, logits, batch);
      w.model->ZeroGrad();
      w.model->BackwardTo(0, loss.grad);
      opt.Step(w.model->ParamsFrom(0), cfg.lr_schedule->LrAt(iter));
    }
    snapshots.push_back(w.model->CloneForInference(float_factory));
  }

  // Probe batch for activation comparison.
  Batch probe = w.train->GetBatch({0, 1, 2, 3, 4, 5, 6, 7});
  ChainModel& final_model = *snapshots.back();
  final_model.SetBatch(probe);
  final_model.ForwardFrom(0, probe.input);

  std::vector<std::string> headers{"epoch", "lr"};
  for (int s = 0; s + 1 < num_stages; ++s) {
    headers.push_back("stage" + std::to_string(s));
  }
  Table table(headers);
  const int64_t ipe = loader.NumBatches();
  for (size_t e = 0; e < snapshots.size(); ++e) {
    ChainModel& snap = *snapshots[e];
    snap.SetBatch(probe);
    snap.ForwardFrom(0, probe.input);
    std::vector<std::string> row{std::to_string(e + 1),
                                 Table::Num(cfg.lr_schedule->LrAt(static_cast<int64_t>(e + 1) * ipe), 4)};
    for (int s = 0; s + 1 < num_stages; ++s) {
      Tensor a = ActivationsToSamples(snap.StageOutput(s));
      Tensor b = ActivationsToSamples(final_model.StageOutput(s));
      row.push_back(Table::Num(PwccaDistance(a, b), 3));
    }
    table.AddRow(row);
  }
  table.Print();

  // Shape check the paper makes: halfway through training, front stages are closer
  // to their final representation than deep stages.
  const size_t mid = snapshots.size() / 2;
  ChainModel& snap = *snapshots[mid];
  snap.SetBatch(probe);
  snap.ForwardFrom(0, probe.input);
  const double front = PwccaDistance(ActivationsToSamples(snap.StageOutput(0)),
                                     ActivationsToSamples(final_model.StageOutput(0)));
  const double deep =
      PwccaDistance(ActivationsToSamples(snap.StageOutput(num_stages - 2)),
                    ActivationsToSamples(final_model.StageOutput(num_stages - 2)));
  std::printf("\nmid-training PWCCA: front stage %.3f vs deep stage %.3f (%s)\n", front,
              deep, front < deep ? "front converges earlier, as in the paper" : "NOTE: ordering differs");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
