// System-overhead microbenchmarks (paper S6.5): reference-model generation
// (quantization) latency, SPSC queue throughput, activation-cache store/fetch, and
// one full controller-side plasticity evaluation.
#include <benchmark/benchmark.h>

#include "src/core/activation_cache.h"
#include "src/core/module_partitioner.h"
#include "src/core/spsc_queue.h"
#include "src/metrics/sp_loss.h"
#include "src/models/resnet.h"
#include "src/obs/trace.h"
#include "src/quant/quantized_modules.h"
#include "src/util/rng.h"

#include <filesystem>

namespace egeria {
namespace {

std::unique_ptr<StageChainModel> BenchModel() {
  Rng rng(5);
  CifarResNetConfig cfg;
  cfg.blocks_per_stage = 3;
  cfg.base_width = 8;
  return PartitionIntoChain("m", BuildCifarResNetBlocks(cfg, rng),
                            PartitionConfig{.target_modules = 6});
}

// "Generating and updating the reference model ... takes 0.5s-1.5s" on the paper's
// models; ours is proportionally smaller.
void BM_ReferenceQuantization(benchmark::State& state) {
  auto model = BenchModel();
  Int8Factory factory(QuantMode::kStatic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->CloneForInference(factory));
  }
}
BENCHMARK(BM_ReferenceQuantization);

void BM_FloatSnapshot(benchmark::State& state) {
  auto model = BenchModel();
  InferenceFactory factory;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->CloneForInference(factory));
  }
}
BENCHMARK(BM_FloatSnapshot);

void BM_PlasticityEvaluation(benchmark::State& state) {
  auto model = BenchModel();
  model->SetTraining(false);
  Int8Factory factory(QuantMode::kStatic);
  auto reference = model->CloneForInference(factory);
  Rng rng(6);
  Tensor input = Tensor::Randn({16, 3, 16, 16}, rng);
  Tensor train_act = model->ForwardPrefix(1, input);
  for (auto _ : state) {
    Tensor ref_act = reference->ForwardPrefix(1, input);
    benchmark::DoNotOptimize(SpLoss(train_act, ref_act));
  }
}
BENCHMARK(BM_PlasticityEvaluation);

void BM_SpscQueueRoundTrip(benchmark::State& state) {
  SpscQueue<int64_t> queue(64);
  int64_t i = 0;
  for (auto _ : state) {
    queue.TryPush(i++);
    benchmark::DoNotOptimize(queue.TryPop());
  }
}
BENCHMARK(BM_SpscQueueRoundTrip);

void BM_CacheStoreBatch(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "egeria_bench_cache_store").string();
  ActivationCache cache(dir, 256);
  cache.SetStage(0);
  Rng rng(7);
  Tensor act = Tensor::Randn({16, 8, 8, 8}, rng);
  int64_t id = 0;
  for (auto _ : state) {
    std::vector<int64_t> ids(16);
    for (auto& v : ids) {
      v = id++;
    }
    cache.StoreBatch(ids, act);
  }
  state.SetBytesProcessed(state.iterations() * act.NumEl() * sizeof(float));
}
BENCHMARK(BM_CacheStoreBatch);

// The tracer's disabled fast path: one relaxed atomic load + two register
// writes per EGERIA_TRACE_SCOPE. This is the overhead every instrumented hot
// path pays on untraced runs, so it must stay in the low-nanosecond range.
void BM_TraceScopeDisabled(benchmark::State& state) {
  trace::SetEnabled(false);
  for (auto _ : state) {
    EGERIA_TRACE_SCOPE("bench", "disabled");
  }
}
BENCHMARK(BM_TraceScopeDisabled);

// Enabled span: two clock reads + one uncontended per-thread mutex push. The
// buffer is reset each pause so the bench never hits the drop watermark.
void BM_TraceScopeEnabled(benchmark::State& state) {
  trace::SetEnabled(true);
  int since_reset = 0;
  for (auto _ : state) {
    EGERIA_TRACE_SCOPE("bench", "enabled");
    if (++since_reset == 32768) {
      state.PauseTiming();
      trace::ResetForTest();
      since_reset = 0;
      state.ResumeTiming();
    }
  }
  trace::SetEnabled(false);
  trace::ResetForTest();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_CacheFetchBatchFromMemory(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "egeria_bench_cache_fetch").string();
  ActivationCache cache(dir, 256);
  cache.SetStage(0);
  Rng rng(8);
  Tensor act = Tensor::Randn({16, 8, 8, 8}, rng);
  std::vector<int64_t> ids(16);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int64_t>(i);
  }
  cache.StoreBatch(ids, act);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.FetchBatch(ids));
  }
  state.SetBytesProcessed(state.iterations() * act.NumEl() * sizeof(float));
}
BENCHMARK(BM_CacheFetchBatchFromMemory);

}  // namespace
}  // namespace egeria
