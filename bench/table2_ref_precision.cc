// Table 2: impact of the reference model's precision.
//
// Paper (ResNet-56/CIFAR-10): final accuracy 92.1% (int8) / 92.0% (fp16) / 92.2%
// (fp32); CPU inference speed 3.59x / 1.69x / 1x; reference accuracy gap -0.6% /
// -0.2% / 0. int8 is the efficiency/fidelity sweet spot.
//
// Modes:
//   (default)  train at each precision and report accuracy + speed + ref gap.
//   --smoke    skip training: build each reference from the initialized model
//              and measure only the forward latency per precision. Emits
//              machine-parseable `TABLE2_SMOKE ...` lines for
//              scripts/check.sh's throughput trajectory.
#include <cstdio>
#include <cstring>

#include "bench/workloads.h"
#include "src/quant/quantized_modules.h"
#include "src/util/timer.h"

namespace egeria {
namespace {

double ReferenceAccuracy(ChainModel& reference, Dataset& val, const TaskSpec& task,
                         int64_t batches, int64_t batch_size) {
  DataLoader loader(val, batch_size, false, 1);
  std::vector<TaskMetric> parts;
  for (int64_t b = 0; b < std::min<int64_t>(batches, loader.NumBatches()); ++b) {
    Batch batch = loader.GetBatch(b);
    reference.SetBatch(batch);
    parts.push_back(EvaluateTask(task, reference.ForwardFrom(0, batch.input), batch));
  }
  return AggregateMetric(task, parts).display;
}

struct RefMeasurement {
  std::unique_ptr<ChainModel> reference;
  double quantize_seconds = 0.0;
};

// Clones `model` at `precision` (timing the quantization) and runs the two
// calibration forwards that freeze static-mode observers, so accuracy
// evaluation sees settled scales. Speed is measured separately by
// MeasureSpeeds below.
RefMeasurement BuildReference(ChainModel& model, Dataset& train,
                              Precision precision) {
  RefMeasurement out;
  auto factory = MakeInferenceFactory(precision, QuantMode::kStatic);
  WallTimer quant_timer;
  out.reference = model.CloneForInference(*factory);
  out.quantize_seconds = quant_timer.ElapsedSeconds();

  Batch probe =
      train.GetBatch({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  out.reference->SetBatch(probe);
  out.reference->ForwardFrom(0, probe.input);  // Calibration.
  out.reference->ForwardFrom(0, probe.input);  // Calibration (freezes observer).
  return out;
}

const Precision kPrecisions[] = {Precision::kInt8, Precision::kFloat16,
                                 Precision::kFloat32};

// Paper-geometry ResNet-56 (base width 16, 32x32 inputs) for the *speed*
// column. The training benches use a CPU-scaled 4-channel / 12x12 stand-in so
// epochs finish in seconds, but at those widths a conv's quantize pass cannot
// amortize over the output channels and every precision is overhead-bound —
// reference forward latency is only meaningful at the paper's layer shapes.
struct SpeedProbe {
  std::unique_ptr<ChainModel> model;
  std::unique_ptr<Dataset> data;
};

SpeedProbe MakeSpeedProbe() {
  SpeedProbe p;
  Rng rng(101);
  CifarResNetConfig mcfg;  // Defaults: 9 blocks/stage, width 16 = ResNet-56.
  p.model = PartitionIntoChain("resnet56.speed", BuildCifarResNetBlocks(mcfg, rng),
                               PartitionConfig{.target_modules = 7});
  p.model->SetTraining(false);
  SyntheticImageConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.num_samples = 16;
  dcfg.height = 32;
  dcfg.width = 32;
  p.data = std::make_unique<SyntheticImageDataset>(dcfg);
  return p;
}

// Measures the reference forward at each precision on the paper-geometry
// model; returns per-precision seconds (indexed like kPrecisions). The three
// references are built up front and timed in interleaved rounds (best round
// kept), so CPU frequency ramps and cache warm-up never bias one precision.
void MeasureSpeeds(double seconds[3], int rounds) {
  SpeedProbe probe = MakeSpeedProbe();
  Batch probe_batch = probe.data->GetBatch(
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  std::unique_ptr<ChainModel> refs[3];
  for (int pi = 0; pi < 3; ++pi) {
    auto factory = MakeInferenceFactory(kPrecisions[pi], QuantMode::kStatic);
    refs[pi] = probe.model->CloneForInference(*factory);
    refs[pi]->SetBatch(probe_batch);
    refs[pi]->ForwardFrom(0, probe_batch.input);  // Calibration.
    refs[pi]->ForwardFrom(0, probe_batch.input);  // Warmup / frozen observer.
    seconds[pi] = 1e30;
  }
  for (int round = 0; round < rounds; ++round) {
    for (int pi = 0; pi < 3; ++pi) {
      WallTimer timer;
      refs[pi]->ForwardFrom(0, probe_batch.input);
      refs[pi]->ForwardFrom(0, probe_batch.input);
      seconds[pi] = std::min(seconds[pi], timer.ElapsedSeconds() / 2);
    }
  }
}

int FastestIndex(const double seconds[3]) {
  int fastest = 0;
  for (int pi = 1; pi < 3; ++pi) {
    if (seconds[pi] < seconds[fastest]) {
      fastest = pi;
    }
  }
  return fastest;
}

int SmokeMain() {
  std::printf("== Table 2 smoke: reference forward latency per precision ==\n");
  double seconds[3] = {0, 0, 0};
  MeasureSpeeds(seconds, /*rounds=*/6);
  const double fp32_s = seconds[2];
  for (int pi = 0; pi < 3; ++pi) {
    std::printf("TABLE2_SMOKE precision=%s ref_fwd_ms=%.3f speedup_vs_fp32=%.2f\n",
                PrecisionName(kPrecisions[pi]).c_str(), seconds[pi] * 1e3,
                fp32_s / seconds[pi]);
  }
  std::printf("TABLE2_SMOKE fastest=%s\n",
              PrecisionName(kPrecisions[FastestIndex(seconds)]).c_str());
  return 0;
}

int Main() {
  std::printf("== Table 2: reference-model precision (int8 / fp16 / fp32) ==\n");
  std::printf("Paper: acc 92.1/92.0/92.2; speed 3.59x/1.69x/1x; ref gap -0.6/-0.2/0 pp.\n\n");

  Table table({"precision", "final acc", "ref fwd speed", "ref acc gap", "quantize s"});
  std::vector<std::string> rows[3];
  // Speed column on the paper-geometry model (see SpeedProbe above); accuracy
  // columns on the CPU-scaled trainable stand-in.
  double speeds[3] = {0, 0, 0};
  MeasureSpeeds(speeds, /*rounds=*/6);

  for (int pi = 0; pi < 3; ++pi) {
    bench::Workload w = bench::MakeResNet56Workload(/*seed=*/101, /*epochs=*/14);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.reference_precision = kPrecisions[pi];
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    TrainResult r = trainer.Run();

    // Build a reference at this precision from the trained model and measure
    // its quantization cost and accuracy gap.
    w.model->SetTraining(false);
    RefMeasurement m = BuildReference(*w.model, *w.train, kPrecisions[pi]);
    const double model_acc =
        ReferenceAccuracy(*w.model, *w.val, cfg.task, 6, cfg.batch_size);
    const double ref_acc =
        ReferenceAccuracy(*m.reference, *w.val, cfg.task, 6, cfg.batch_size);

    rows[pi] = {PrecisionName(kPrecisions[pi]), Table::Pct(r.final_metric.display),
                Table::Num(speeds[2] / speeds[pi], 2) + "x",
                Table::Num((ref_acc - model_acc) * 100, 2) + "pp",
                Table::Num(m.quantize_seconds * 1e3, 1) + "ms"};
    table.AddRow(rows[pi]);
  }
  table.Print();
  // With the packed dot4 int8 kernel (and the fp16 pack-convert path) the
  // quantized references out-run the fp32 GEMM again, recovering the paper's
  // Table 2 shape on CPU: int8 fastest, fp16 in between.
  std::printf("\nShape: %s is the fastest reference here (paper, on GPU: int8); final\n"
              "training accuracy unaffected by reference precision (the paper's sweet spot).\n",
              PrecisionName(kPrecisions[FastestIndex(speeds)]).c_str());
  return 0;
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return egeria::SmokeMain();
    }
  }
  return egeria::Main();
}
