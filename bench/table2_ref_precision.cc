// Table 2: impact of the reference model's precision.
//
// Paper (ResNet-56/CIFAR-10): final accuracy 92.1% (int8) / 92.0% (fp16) / 92.2%
// (fp32); CPU inference speed 3.59x / 1.69x / 1x; reference accuracy gap -0.6% /
// -0.2% / 0. int8 is the efficiency/fidelity sweet spot.
#include <cstdio>

#include "bench/workloads.h"
#include "src/quant/quantized_modules.h"
#include "src/util/timer.h"

namespace egeria {
namespace {

double ReferenceAccuracy(ChainModel& reference, Dataset& val, const TaskSpec& task,
                         int64_t batches, int64_t batch_size) {
  DataLoader loader(val, batch_size, false, 1);
  std::vector<TaskMetric> parts;
  for (int64_t b = 0; b < std::min<int64_t>(batches, loader.NumBatches()); ++b) {
    Batch batch = loader.GetBatch(b);
    reference.SetBatch(batch);
    parts.push_back(EvaluateTask(task, reference.ForwardFrom(0, batch.input), batch));
  }
  return AggregateMetric(task, parts).display;
}

int Main() {
  std::printf("== Table 2: reference-model precision (int8 / fp16 / fp32) ==\n");
  std::printf("Paper: acc 92.1/92.0/92.2; speed 3.59x/1.69x/1x; ref gap -0.6/-0.2/0 pp.\n\n");

  Table table({"precision", "final acc", "ref fwd speed", "ref acc gap", "quantize s"});
  double fp32_speed = 0.0;
  std::vector<std::string> rows[3];
  const Precision precisions[] = {Precision::kInt8, Precision::kFloat16,
                                  Precision::kFloat32};
  double speeds[3] = {0, 0, 0};

  for (int pi = 0; pi < 3; ++pi) {
    bench::Workload w = bench::MakeResNet56Workload(/*seed=*/101, /*epochs=*/14);
    TrainConfig cfg = w.cfg;
    cfg.enable_egeria = true;
    cfg.egeria.reference_precision = precisions[pi];
    Trainer trainer(*w.model, *w.train, *w.val, cfg);
    TrainResult r = trainer.Run();

    // Build a reference at this precision from the trained model and measure its
    // forward latency and accuracy gap.
    auto factory = MakeInferenceFactory(precisions[pi], QuantMode::kStatic);
    WallTimer quant_timer;
    auto reference = w.model->CloneForInference(*factory);
    const double quantize_s = quant_timer.ElapsedSeconds();

    Batch probe = w.train->GetBatch({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
    reference->SetBatch(probe);
    reference->ForwardFrom(0, probe.input);  // Calibration + warmup.
    WallTimer fwd_timer;
    const int kReps = 12;
    for (int i = 0; i < kReps; ++i) {
      reference->ForwardFrom(0, probe.input);
    }
    const double fwd_s = fwd_timer.ElapsedSeconds() / kReps;
    speeds[pi] = fwd_s;
    if (precisions[pi] == Precision::kFloat32) {
      fp32_speed = fwd_s;
    }

    w.model->SetTraining(false);
    const double model_acc =
        ReferenceAccuracy(*w.model, *w.val, cfg.task, 6, cfg.batch_size);
    const double ref_acc =
        ReferenceAccuracy(*reference, *w.val, cfg.task, 6, cfg.batch_size);

    rows[pi] = {PrecisionName(precisions[pi]), Table::Pct(r.final_metric.display), "",
                Table::Num((ref_acc - model_acc) * 100, 2) + "pp",
                Table::Num(quantize_s * 1e3, 1) + "ms"};
  }
  for (int pi = 0; pi < 3; ++pi) {
    rows[pi][2] = Table::Num(fp32_speed / speeds[pi], 2) + "x";
    table.AddRow(rows[pi]);
  }
  table.Print();
  // The paper (GPU) finds int8 the fastest reference. On this CPU backend the
  // packed fp32 GEMM runs at machine FMA peak, so whether int8 wins depends on
  // whether the int8 kernels vectorize comparably — report what was measured.
  int fastest = 0;
  for (int pi = 1; pi < 3; ++pi) {
    if (speeds[pi] < speeds[fastest]) {
      fastest = pi;
    }
  }
  std::printf("\nShape: %s is the fastest reference here (paper, on GPU: int8); final\n"
              "training accuracy unaffected by reference precision (the paper's sweet spot).\n",
              PrecisionName(precisions[fastest]).c_str());
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
