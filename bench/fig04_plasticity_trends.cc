// Figure 4: plasticity (SP loss vs a reference model) captures per-layer training
// progress without post-hoc knowledge.
//
// Paper: with a reference pre-trained for 50 epochs, the plasticity of ResNet-56's
// front modules drops to a low stable level within ~30 epochs while layer module 3
// stays high and unstable; trends match the PWCCA analysis of Fig. 1.
// Here: pre-train a reference for 1/4 of the schedule (int8-quantized, as Egeria
// generates it), then train a fresh model and record SP loss per stage.
#include <cstdio>

#include "bench/workloads.h"
#include "src/metrics/sp_loss.h"
#include "src/quant/quantized_modules.h"

namespace egeria {
namespace {

int Main() {
  std::printf("== Figure 4: plasticity trends per layer module ==\n");
  std::printf("Paper: front-module plasticity drops fast and stabilizes; deep modules stay\n"
              "higher/unstable until late.\n\n");

  // Reference: the same architecture pre-trained for a quarter of the schedule.
  bench::Workload ref_w = bench::MakeResNet56Workload(/*seed=*/31);
  {
    TrainConfig cfg = ref_w.cfg;
    cfg.epochs = std::max(2, ref_w.cfg.epochs / 4);
    cfg.enable_egeria = false;
    Trainer warmup(*ref_w.model, *ref_w.train, *ref_w.val, cfg);
    warmup.Run();
  }
  Int8Factory int8_factory(QuantMode::kStatic);
  auto reference = ref_w.model->CloneForInference(int8_factory);

  // Fresh training run; record SP loss per stage every half epoch.
  bench::Workload w = bench::MakeResNet56Workload(31);
  const int num_stages = w.model->NumStages();
  TrainConfig cfg = w.cfg;
  DataLoader loader(*w.train, cfg.batch_size, true, cfg.seed);
  Sgd opt(cfg.momentum, cfg.weight_decay);
  DataLoader val_loader(*w.val, cfg.batch_size, false, cfg.seed + 1);

  std::vector<std::string> headers{"epoch", "val acc"};
  for (int s = 0; s + 1 < num_stages; ++s) {
    headers.push_back("P(stage" + std::to_string(s) + ")");
  }
  Table table(headers);

  Batch probe = w.train->GetBatch({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  int64_t iter = 0;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    loader.StartEpoch(epoch);
    for (int64_t b = 0; b < loader.NumBatches(); ++b) {
      ++iter;
      Batch batch = loader.GetBatch(b);
      w.model->SetBatch(batch);
      Tensor logits = w.model->ForwardFrom(0, batch.input);
      LossResult loss = TaskLoss(cfg.task, logits, batch);
      w.model->ZeroGrad();
      w.model->BackwardTo(0, loss.grad);
      opt.Step(w.model->ParamsFrom(0), cfg.lr_schedule->LrAt(iter));
    }
    // Plasticity of every stage on the probe batch (Eq. 1, per stage).
    w.model->SetTraining(false);
    w.model->SetBatch(probe);
    w.model->ForwardFrom(0, probe.input);
    reference->SetBatch(probe);
    reference->ForwardFrom(0, probe.input);
    std::vector<double> plasticity(static_cast<size_t>(num_stages - 1));
    for (int s = 0; s + 1 < num_stages; ++s) {
      plasticity[static_cast<size_t>(s)] =
          SpLoss(w.model->StageOutput(s), reference->StageOutput(s));
    }
    // Validation accuracy.
    Batch vb = val_loader.GetBatch(0);
    w.model->SetBatch(vb);
    TaskMetric metric = EvaluateTask(cfg.task, w.model->ForwardFrom(0, vb.input), vb);
    w.model->SetTraining(true);

    std::vector<std::string> row{std::to_string(epoch + 1), Table::Pct(metric.display)};
    for (double p : plasticity) {
      row.push_back(Table::Num(p * 1e3, 3) + "e-3");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nRead vertically: front-stage columns settle to low stable values earlier\n"
              "than deep-stage columns (the paper's Fig. 4 shape).\n");
  return 0;
}

}  // namespace
}  // namespace egeria

int main() { return egeria::Main(); }
