// egeria_trace: merge per-rank trace files into one Perfetto-loadable
// timeline and summarize/reconcile the per-phase span totals.
//
//   egeria_trace [--out=merged.json] [--reconcile=rank_0.log]
//                [--tolerance-pct=5] trace_rank0.json [trace_rank1.json ...]
//
// Input files are the Chrome trace-event JSON emitted by trace::Flush — one
// event per line (the tracer guarantees that), with the per-process clock-sync
// stamp in otherData.clock_sync_us. The merge shifts every rank's timestamps
// by (sync_rank0 - sync_rank_r), so the per-process steady clocks land on one
// wall-aligned timeline (every rank stamps MarkSync right after the initial
// weight broadcast — the same global instant). A final global offset keeps all
// merged timestamps non-negative.
//
// The summary sums complete-event ("X") durations per rank per cat.name. With
// --reconcile=LOG, the rank-0 totals for trainer.data/fp/bp/opt/train must
// match the data_s/fp_s/bp_s/opt_s/train_s fields of the EGERIA_RESULT line
// in LOG within --tolerance-pct (default 5%, with a 10 ms absolute floor for
// sub-noise phases); any mismatch exits 1. This closes the loop between the
// trace, the metrics registry, and RankTrainResult — all three are fed by the
// same obs::ScopedPhase intervals, so a reconcile failure means clock or
// plumbing breakage, not legitimate skew.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct TraceEvent {
  char ph = 'X';
  int rank = 0;
  int tid = 0;
  double ts_us = 0.0;   // merged (shifted) timestamp
  double dur_us = 0.0;  // 'X' only
  std::string cat;
  std::string name;
  std::string args;  // raw JSON object, may be empty
};

struct RankFile {
  int rank = 0;
  double sync_us = -1.0;
  uint64_t dropped = 0;
  std::string label;
  std::vector<TraceEvent> events;               // ph 'X' or 'i'
  std::vector<std::pair<int, std::string>> threads;  // tid -> name
};

// ---- minimal line-wise JSON field extraction (format written by trace.cc) --

bool FindNumber(const std::string& line, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\":";
  const size_t p = line.find(pat);
  if (p == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + p + pat.size(), nullptr);
  return true;
}

bool FindString(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const size_t p = line.find(pat);
  if (p == std::string::npos) {
    return false;
  }
  const size_t start = p + pat.size();
  size_t end = start;
  while (end < line.size() && line[end] != '"') {
    if (line[end] == '\\') {
      ++end;
    }
    ++end;
  }
  *out = line.substr(start, end - start);
  return true;
}

// The args value is a complete JSON object with no nested objects (the tracer
// caps it at 96 preformatted chars), so the first '}' closes it.
bool FindArgs(const std::string& line, std::string* out) {
  const size_t p = line.find("\"args\":{");
  if (p == std::string::npos) {
    return false;
  }
  const size_t start = p + 7;
  const size_t end = line.find('}', start);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(start, end - start + 1);
  return true;
}

bool ParseRankFile(const std::string& path, RankFile* out, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    *error = path + ": cannot open";
    return false;
  }
  bool saw_other_data = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("\"otherData\":", 0) == 0) {
      double v = 0.0;
      if (FindNumber(line, "rank", &v)) {
        out->rank = static_cast<int>(v);
      }
      if (FindNumber(line, "clock_sync_us", &v)) {
        out->sync_us = v;
      }
      if (FindNumber(line, "dropped_events", &v)) {
        out->dropped = static_cast<uint64_t>(v);
      }
      FindString(line, "process_label", &out->label);
      saw_other_data = true;
      continue;
    }
    if (line.rfind("{\"ph\":", 0) != 0) {
      continue;  // header/footer lines
    }
    std::string ph;
    if (!FindString(line, "ph", &ph) || ph.empty()) {
      *error = path + ": malformed event line: " + line;
      return false;
    }
    if (ph[0] == 'M') {
      double tid = 0.0;
      std::string tname;
      // thread_name metadata rows carry the name inside args.
      if (FindNumber(line, "tid", &tid) && FindString(line, "name", &tname)) {
        std::string args;
        if (tname == "thread_name" && FindArgs(line, &args)) {
          std::string inner;
          if (FindString(args, "name", &inner)) {
            out->threads.emplace_back(static_cast<int>(tid), inner);
          }
        }
      }
      continue;
    }
    TraceEvent e;
    e.ph = ph[0];
    double v = 0.0;
    if (!FindNumber(line, "ts", &v)) {
      *error = path + ": event without ts: " + line;
      return false;
    }
    e.ts_us = v;
    if (FindNumber(line, "tid", &v)) {
      e.tid = static_cast<int>(v);
    }
    if (e.ph == 'X') {
      if (!FindNumber(line, "dur", &v)) {
        *error = path + ": complete event without dur: " + line;
        return false;
      }
      e.dur_us = v;
    }
    FindString(line, "cat", &e.cat);
    FindString(line, "name", &e.name);
    FindArgs(line, &e.args);
    out->events.push_back(std::move(e));
  }
  if (!saw_other_data) {
    *error = path + ": no otherData header (not an egeria trace?)";
    return false;
  }
  for (TraceEvent& e : out->events) {
    e.rank = out->rank;
  }
  return true;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

bool WriteMerged(const std::string& path, const std::vector<RankFile>& ranks,
                 uint64_t dropped_total) {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\n");
  out.append("\"otherData\":{\"merged_ranks\":")
      .append(std::to_string(ranks.size()));
  out.append(",\"dropped_events\":").append(std::to_string(dropped_total));
  out.append("},\n\"traceEvents\":[\n");
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out.append(",\n");
    }
    first = false;
  };
  char buf[64];
  for (const RankFile& rf : ranks) {
    comma();
    std::snprintf(buf, sizeof(buf), "%d", rf.rank);
    out.append("{\"ph\":\"M\",\"pid\":").append(buf);
    out.append(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"");
    AppendEscaped(&out, rf.label.empty()
                            ? "rank " + std::to_string(rf.rank)
                            : rf.label);
    out.append("\"}}");
    for (const auto& [tid, tname] : rf.threads) {
      comma();
      out.append("{\"ph\":\"M\",\"pid\":").append(buf);
      out.append(",\"tid\":").append(std::to_string(tid));
      out.append(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
      AppendEscaped(&out, tname);
      out.append("\"}}");
    }
  }
  for (const RankFile& rf : ranks) {
    for (const TraceEvent& e : rf.events) {
      comma();
      out.append("{\"ph\":\"");
      out.push_back(e.ph);
      out.append("\",\"pid\":").append(std::to_string(e.rank));
      out.append(",\"tid\":").append(std::to_string(e.tid));
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      out.append(",\"ts\":").append(buf);
      if (e.ph == 'X') {
        std::snprintf(buf, sizeof(buf), "%.3f", e.dur_us);
        out.append(",\"dur\":").append(buf);
      }
      if (e.ph == 'i') {
        out.append(",\"s\":\"t\"");
      }
      out.append(",\"cat\":\"");
      AppendEscaped(&out, e.cat);
      out.append("\",\"name\":\"");
      AppendEscaped(&out, e.name);
      out.push_back('"');
      if (!e.args.empty()) {
        out.append(",\"args\":").append(e.args);
      }
      out.push_back('}');
    }
  }
  out.append("\n]}\n");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  os.flush();
  return static_cast<bool>(os);
}

// EGERIA_RESULT key=value fields from a worker log (last such line wins).
std::map<std::string, std::string> ParseResultLine(const std::string& path) {
  std::map<std::string, std::string> kv;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("EGERIA_RESULT", 0) != 0) {
      continue;
    }
    kv.clear();
    std::istringstream fields(line);
    std::string field;
    fields >> field;  // the EGERIA_RESULT tag itself
    while (fields >> field) {
      const size_t eq = field.find('=');
      if (eq != std::string::npos) {
        kv[field.substr(0, eq)] = field.substr(eq + 1);
      }
    }
  }
  return kv;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string reconcile_log;
  double tolerance_pct = 5.0;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--out=", 6) == 0) {
      out_path = a + 6;
    } else if (std::strncmp(a, "--reconcile=", 12) == 0) {
      reconcile_log = a + 12;
    } else if (std::strncmp(a, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(a + 16);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "egeria_trace: unknown flag %s\n", a);
      return 2;
    } else {
      inputs.emplace_back(a);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: egeria_trace [--out=FILE] [--reconcile=RANK0_LOG] "
                 "[--tolerance-pct=P] trace_rank0.json [...]\n");
    return 2;
  }

  std::vector<RankFile> ranks;
  for (const std::string& path : inputs) {
    RankFile rf;
    std::string error;
    if (!ParseRankFile(path, &rf, &error)) {
      std::fprintf(stderr, "egeria_trace: %s\n", error.c_str());
      return 1;
    }
    ranks.push_back(std::move(rf));
  }
  std::sort(ranks.begin(), ranks.end(),
            [](const RankFile& a, const RankFile& b) { return a.rank < b.rank; });

  // Clock alignment: shift rank r by (sync_0 - sync_r) so the MarkSync
  // instants coincide, then lift everything to keep timestamps non-negative.
  const double sync0 = ranks[0].sync_us;
  bool aligned = sync0 >= 0.0;
  for (const RankFile& rf : ranks) {
    aligned = aligned && rf.sync_us >= 0.0;
  }
  if (!aligned && ranks.size() > 1) {
    std::fprintf(stderr,
                 "egeria_trace: warning: clock_sync_us missing in some inputs; "
                 "merging without cross-rank alignment\n");
  }
  double min_ts = 0.0;
  uint64_t dropped_total = 0;
  for (RankFile& rf : ranks) {
    const double shift = aligned ? sync0 - rf.sync_us : 0.0;
    dropped_total += rf.dropped;
    for (TraceEvent& e : rf.events) {
      e.ts_us += shift;
      min_ts = std::min(min_ts, e.ts_us);
    }
  }
  if (min_ts < 0.0) {
    for (RankFile& rf : ranks) {
      for (TraceEvent& e : rf.events) {
        e.ts_us -= min_ts;
      }
    }
  }

  if (!out_path.empty()) {
    if (!WriteMerged(out_path, ranks, dropped_total)) {
      std::fprintf(stderr, "egeria_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("merged %zu rank(s) -> %s\n", ranks.size(), out_path.c_str());
  }
  if (dropped_total > 0) {
    std::fprintf(stderr,
                 "egeria_trace: warning: %llu event(s) were dropped to buffer "
                 "overflow; totals are lower bounds\n",
                 static_cast<unsigned long long>(dropped_total));
  }

  // ---- per-phase summary: sum of complete-event durations per rank ----
  struct Total {
    double seconds = 0.0;
    int64_t count = 0;
  };
  std::map<std::pair<int, std::string>, Total> totals;
  for (const RankFile& rf : ranks) {
    for (const TraceEvent& e : rf.events) {
      if (e.ph != 'X') {
        continue;
      }
      Total& t = totals[{rf.rank, e.cat + "." + e.name}];
      t.seconds += e.dur_us * 1e-6;
      t.count += 1;
    }
  }
  std::printf("%-6s %-24s %12s %10s\n", "rank", "phase", "total_s", "count");
  for (const auto& [key, t] : totals) {
    std::printf("%-6d %-24s %12.6f %10lld\n", key.first, key.second.c_str(),
                t.seconds, static_cast<long long>(t.count));
  }

  // ---- reconciliation against the worker's EGERIA_RESULT line ----
  if (!reconcile_log.empty()) {
    const auto kv = ParseResultLine(reconcile_log);
    if (kv.empty()) {
      std::fprintf(stderr, "egeria_trace: no EGERIA_RESULT line in %s\n",
                   reconcile_log.c_str());
      return 1;
    }
    const int rank0 = ranks[0].rank;
    // trainer.opt is absent in overlap mode (the optimizer steps on the comm
    // thread inside comm.shard_step spans) — both sides then reconcile at ~0.
    const std::pair<const char*, const char*> phases[] = {
        {"trainer.data", "data_s"}, {"trainer.fp", "fp_s"},
        {"trainer.bp", "bp_s"},     {"trainer.opt", "opt_s"},
        {"trainer.train", "train_s"},
    };
    bool ok = true;
    for (const auto& [span_key, result_key] : phases) {
      const auto it = kv.find(result_key);
      if (it == kv.end()) {
        std::fprintf(stderr,
                     "egeria_trace: EGERIA_RESULT in %s has no %s field "
                     "(worker predates the tracing layer?)\n",
                     reconcile_log.c_str(), result_key);
        ok = false;
        continue;
      }
      const double expect = std::atof(it->second.c_str());
      const auto tit = totals.find({rank0, span_key});
      const double got = tit != totals.end() ? tit->second.seconds : 0.0;
      // Relative tolerance with a 10 ms absolute floor: phases near zero
      // (e.g. opt under overlap) must not fail on scheduler noise.
      const double tol = std::max(expect * tolerance_pct / 100.0, 0.010);
      const bool match = std::abs(got - expect) <= tol;
      std::printf("reconcile %-14s trace=%.6f result=%.6f tol=%.6f %s\n",
                  span_key, got, expect, tol, match ? "OK" : "MISMATCH");
      ok = ok && match;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "egeria_trace: reconciliation FAILED (trace totals "
                   "disagree with EGERIA_RESULT beyond %.1f%%)\n",
                   tolerance_pct);
      return 1;
    }
    std::printf("reconcile: all phases within %.1f%%\n", tolerance_pct);
  }
  return 0;
}
