// egeria_trace: merge per-rank trace files into one Perfetto-loadable
// timeline and summarize/reconcile the per-phase span totals.
//
//   egeria_trace [--out=merged.json] [--reconcile=rank_0.log]
//                [--tolerance-pct=5] [--diagnose] [--straggler-skew=2]
//                trace_rank0.json [trace_rank1.json ...]
//
// Input files are the Chrome trace-event JSON emitted by trace::Flush — one
// event per line (the tracer guarantees that), with the per-process clock-sync
// stamp in otherData.clock_sync_us. The merge shifts every rank's timestamps
// by (sync_rank0 - sync_rank_r), so the per-process steady clocks land on one
// wall-aligned timeline (every rank stamps MarkSync right after the initial
// weight broadcast — the same global instant). A final global offset keeps all
// merged timestamps non-negative.
//
// The summary sums complete-event ("X") durations per rank per cat.name. With
// --reconcile=LOG, the rank-0 totals for trainer.data/fp/bp/opt/train must
// match the data_s/fp_s/bp_s/opt_s/train_s fields of the EGERIA_RESULT line
// in LOG within --tolerance-pct (default 5%, with a 10 ms absolute floor for
// sub-noise phases); any mismatch exits 1. This closes the loop between the
// trace, the metrics registry, and RankTrainResult — all three are fed by the
// same obs::ScopedPhase intervals, so a reconcile failure means clock or
// plumbing breakage, not legitimate skew.
//
// --diagnose runs the bottleneck diagnosis engine over the merged timeline:
// a per-rank phase breakdown with the unattributed gap (time inside
// trainer.train covered by no phase span — where cross-rank waits like a
// frontier broadcast stalled behind a straggler land), a per-phase critical
// path (the slowest rank of each phase), measured overlap efficiency
// (per-round wire-transfer seconds split around the matching
// trainer.comm_wait block, mirroring the worker's own accounting:
// hidden vs exposed comm),
// a data-/compute-/comm-wait-bound classification naming the dominant phase
// and rank, and straggler detection (per-rank load = compute + gap; skew =
// max/median, reported when it exceeds --straggler-skew). Output is a human
// report plus one machine-readable `EGERIA_DIAGNOSIS {json}` line that
// scripts/bench_trajectory.py records as advisory metrics.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct TraceEvent {
  char ph = 'X';
  int rank = 0;
  int tid = 0;
  double ts_us = 0.0;   // merged (shifted) timestamp
  double dur_us = 0.0;  // 'X' only
  std::string cat;
  std::string name;
  std::string args;  // raw JSON object, may be empty
};

struct RankFile {
  int rank = 0;
  double sync_us = -1.0;
  uint64_t dropped = 0;
  std::string label;
  std::vector<TraceEvent> events;               // ph 'X' or 'i'
  std::vector<std::pair<int, std::string>> threads;  // tid -> name
};

// ---- minimal line-wise JSON field extraction (format written by trace.cc) --

bool FindNumber(const std::string& line, const char* key, double* out) {
  const std::string pat = std::string("\"") + key + "\":";
  const size_t p = line.find(pat);
  if (p == std::string::npos) {
    return false;
  }
  *out = std::strtod(line.c_str() + p + pat.size(), nullptr);
  return true;
}

bool FindString(const std::string& line, const char* key, std::string* out) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const size_t p = line.find(pat);
  if (p == std::string::npos) {
    return false;
  }
  const size_t start = p + pat.size();
  size_t end = start;
  while (end < line.size() && line[end] != '"') {
    if (line[end] == '\\') {
      ++end;
    }
    ++end;
  }
  *out = line.substr(start, end - start);
  return true;
}

// The args value is a complete JSON object with no nested objects (the tracer
// caps it at 96 preformatted chars), so the first '}' closes it.
bool FindArgs(const std::string& line, std::string* out) {
  const size_t p = line.find("\"args\":{");
  if (p == std::string::npos) {
    return false;
  }
  const size_t start = p + 7;
  const size_t end = line.find('}', start);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(start, end - start + 1);
  return true;
}

bool ParseRankFile(const std::string& path, RankFile* out, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    *error = path + ": cannot open";
    return false;
  }
  bool saw_other_data = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("\"otherData\":", 0) == 0) {
      double v = 0.0;
      if (FindNumber(line, "rank", &v)) {
        out->rank = static_cast<int>(v);
      }
      if (FindNumber(line, "clock_sync_us", &v)) {
        out->sync_us = v;
      }
      if (FindNumber(line, "dropped_events", &v)) {
        out->dropped = static_cast<uint64_t>(v);
      }
      FindString(line, "process_label", &out->label);
      saw_other_data = true;
      continue;
    }
    if (line.rfind("{\"ph\":", 0) != 0) {
      continue;  // header/footer lines
    }
    std::string ph;
    if (!FindString(line, "ph", &ph) || ph.empty()) {
      *error = path + ": malformed event line: " + line;
      return false;
    }
    if (ph[0] == 'M') {
      double tid = 0.0;
      std::string tname;
      // thread_name metadata rows carry the name inside args.
      if (FindNumber(line, "tid", &tid) && FindString(line, "name", &tname)) {
        std::string args;
        if (tname == "thread_name" && FindArgs(line, &args)) {
          std::string inner;
          if (FindString(args, "name", &inner)) {
            out->threads.emplace_back(static_cast<int>(tid), inner);
          }
        }
      }
      continue;
    }
    TraceEvent e;
    e.ph = ph[0];
    double v = 0.0;
    if (!FindNumber(line, "ts", &v)) {
      *error = path + ": event without ts: " + line;
      return false;
    }
    e.ts_us = v;
    if (FindNumber(line, "tid", &v)) {
      e.tid = static_cast<int>(v);
    }
    if (e.ph == 'X') {
      if (!FindNumber(line, "dur", &v)) {
        *error = path + ": complete event without dur: " + line;
        return false;
      }
      e.dur_us = v;
    }
    FindString(line, "cat", &e.cat);
    FindString(line, "name", &e.name);
    FindArgs(line, &e.args);
    out->events.push_back(std::move(e));
  }
  if (!saw_other_data) {
    *error = path + ": no otherData header (not an egeria trace?)";
    return false;
  }
  for (TraceEvent& e : out->events) {
    e.rank = out->rank;
  }
  return true;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
}

bool WriteMerged(const std::string& path, const std::vector<RankFile>& ranks,
                 uint64_t dropped_total) {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\n");
  out.append("\"otherData\":{\"merged_ranks\":")
      .append(std::to_string(ranks.size()));
  out.append(",\"dropped_events\":").append(std::to_string(dropped_total));
  out.append("},\n\"traceEvents\":[\n");
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out.append(",\n");
    }
    first = false;
  };
  char buf[64];
  for (const RankFile& rf : ranks) {
    comma();
    std::snprintf(buf, sizeof(buf), "%d", rf.rank);
    out.append("{\"ph\":\"M\",\"pid\":").append(buf);
    out.append(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"");
    AppendEscaped(&out, rf.label.empty()
                            ? "rank " + std::to_string(rf.rank)
                            : rf.label);
    out.append("\"}}");
    for (const auto& [tid, tname] : rf.threads) {
      comma();
      out.append("{\"ph\":\"M\",\"pid\":").append(buf);
      out.append(",\"tid\":").append(std::to_string(tid));
      out.append(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
      AppendEscaped(&out, tname);
      out.append("\"}}");
    }
  }
  for (const RankFile& rf : ranks) {
    for (const TraceEvent& e : rf.events) {
      comma();
      out.append("{\"ph\":\"");
      out.push_back(e.ph);
      out.append("\",\"pid\":").append(std::to_string(e.rank));
      out.append(",\"tid\":").append(std::to_string(e.tid));
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      out.append(",\"ts\":").append(buf);
      if (e.ph == 'X') {
        std::snprintf(buf, sizeof(buf), "%.3f", e.dur_us);
        out.append(",\"dur\":").append(buf);
      }
      if (e.ph == 'i') {
        out.append(",\"s\":\"t\"");
      }
      out.append(",\"cat\":\"");
      AppendEscaped(&out, e.cat);
      out.append("\",\"name\":\"");
      AppendEscaped(&out, e.name);
      out.push_back('"');
      if (!e.args.empty()) {
        out.append(",\"args\":").append(e.args);
      }
      out.push_back('}');
    }
  }
  out.append("\n]}\n");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  os.flush();
  return static_cast<bool>(os);
}

// ---- interval arithmetic for the overlap-efficiency measurement ----

// Sorts and merges in place; returns the union length. Working in merged
// unions (not raw span sums) is what keeps nested comm spans
// (reduce_scatter ⊃ shard_step) from being counted twice.
double MergeIntervals(std::vector<std::pair<double, double>>* iv) {
  if (iv->empty()) {
    return 0.0;
  }
  std::sort(iv->begin(), iv->end());
  std::vector<std::pair<double, double>> merged;
  merged.push_back((*iv)[0]);
  for (size_t i = 1; i < iv->size(); ++i) {
    if ((*iv)[i].first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, (*iv)[i].second);
    } else {
      merged.push_back((*iv)[i]);
    }
  }
  iv->swap(merged);
  double total = 0.0;
  for (const auto& [lo, hi] : *iv) {
    total += hi - lo;
  }
  return total;
}

// Total overlap between two merged (sorted, disjoint) interval lists.
double IntersectIntervals(const std::vector<std::pair<double, double>>& a,
                          const std::vector<std::pair<double, double>>& b) {
  double total = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

// EGERIA_RESULT key=value fields from a worker log (last such line wins).
std::map<std::string, std::string> ParseResultLine(const std::string& path) {
  std::map<std::string, std::string> kv;
  std::ifstream is(path);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("EGERIA_RESULT", 0) != 0) {
      continue;
    }
    kv.clear();
    std::istringstream fields(line);
    std::string field;
    fields >> field;  // the EGERIA_RESULT tag itself
    while (fields >> field) {
      const size_t eq = field.find('=');
      if (eq != std::string::npos) {
        kv[field.substr(0, eq)] = field.substr(eq + 1);
      }
    }
  }
  return kv;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string reconcile_log;
  double tolerance_pct = 5.0;
  bool diagnose = false;
  double straggler_skew_threshold = 2.0;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--out=", 6) == 0) {
      out_path = a + 6;
    } else if (std::strncmp(a, "--reconcile=", 12) == 0) {
      reconcile_log = a + 12;
    } else if (std::strncmp(a, "--tolerance-pct=", 16) == 0) {
      tolerance_pct = std::atof(a + 16);
    } else if (std::strcmp(a, "--diagnose") == 0) {
      diagnose = true;
    } else if (std::strncmp(a, "--straggler-skew=", 17) == 0) {
      straggler_skew_threshold = std::atof(a + 17);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "egeria_trace: unknown flag %s\n", a);
      return 2;
    } else {
      inputs.emplace_back(a);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: egeria_trace [--out=FILE] [--reconcile=RANK0_LOG] "
                 "[--tolerance-pct=P] [--diagnose] [--straggler-skew=S] "
                 "trace_rank0.json [...]\n");
    return 2;
  }

  std::vector<RankFile> ranks;
  for (const std::string& path : inputs) {
    RankFile rf;
    std::string error;
    if (!ParseRankFile(path, &rf, &error)) {
      std::fprintf(stderr, "egeria_trace: %s\n", error.c_str());
      return 1;
    }
    ranks.push_back(std::move(rf));
  }
  std::sort(ranks.begin(), ranks.end(),
            [](const RankFile& a, const RankFile& b) { return a.rank < b.rank; });

  // Clock alignment: shift rank r by (sync_0 - sync_r) so the MarkSync
  // instants coincide, then lift everything to keep timestamps non-negative.
  const double sync0 = ranks[0].sync_us;
  bool aligned = sync0 >= 0.0;
  for (const RankFile& rf : ranks) {
    aligned = aligned && rf.sync_us >= 0.0;
  }
  if (!aligned && ranks.size() > 1) {
    std::fprintf(stderr,
                 "egeria_trace: warning: clock_sync_us missing in some inputs; "
                 "merging without cross-rank alignment\n");
  }
  double min_ts = 0.0;
  uint64_t dropped_total = 0;
  for (RankFile& rf : ranks) {
    const double shift = aligned ? sync0 - rf.sync_us : 0.0;
    dropped_total += rf.dropped;
    for (TraceEvent& e : rf.events) {
      e.ts_us += shift;
      min_ts = std::min(min_ts, e.ts_us);
    }
  }
  if (min_ts < 0.0) {
    for (RankFile& rf : ranks) {
      for (TraceEvent& e : rf.events) {
        e.ts_us -= min_ts;
      }
    }
  }

  if (!out_path.empty()) {
    if (!WriteMerged(out_path, ranks, dropped_total)) {
      std::fprintf(stderr, "egeria_trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("merged %zu rank(s) -> %s\n", ranks.size(), out_path.c_str());
  }
  if (dropped_total > 0) {
    std::fprintf(stderr,
                 "egeria_trace: warning: %llu event(s) were dropped to buffer "
                 "overflow; totals are lower bounds\n",
                 static_cast<unsigned long long>(dropped_total));
  }

  // ---- per-phase summary: sum of complete-event durations per rank ----
  struct Total {
    double seconds = 0.0;
    int64_t count = 0;
  };
  std::map<std::pair<int, std::string>, Total> totals;
  for (const RankFile& rf : ranks) {
    for (const TraceEvent& e : rf.events) {
      if (e.ph != 'X') {
        continue;
      }
      Total& t = totals[{rf.rank, e.cat + "." + e.name}];
      t.seconds += e.dur_us * 1e-6;
      t.count += 1;
    }
  }
  std::printf("%-6s %-24s %12s %10s\n", "rank", "phase", "total_s", "count");
  for (const auto& [key, t] : totals) {
    std::printf("%-6d %-24s %12.6f %10lld\n", key.first, key.second.c_str(),
                t.seconds, static_cast<long long>(t.count));
  }

  // ---- reconciliation against the worker's EGERIA_RESULT line ----
  if (!reconcile_log.empty()) {
    const auto kv = ParseResultLine(reconcile_log);
    if (kv.empty()) {
      std::fprintf(stderr, "egeria_trace: no EGERIA_RESULT line in %s\n",
                   reconcile_log.c_str());
      return 1;
    }
    const int rank0 = ranks[0].rank;
    // trainer.opt is absent in overlap mode (the optimizer steps on the comm
    // thread inside comm.shard_step spans) — both sides then reconcile at ~0.
    const std::pair<const char*, const char*> phases[] = {
        {"trainer.data", "data_s"}, {"trainer.fp", "fp_s"},
        {"trainer.bp", "bp_s"},     {"trainer.opt", "opt_s"},
        {"trainer.train", "train_s"},
    };
    bool ok = true;
    for (const auto& [span_key, result_key] : phases) {
      const auto it = kv.find(result_key);
      if (it == kv.end()) {
        std::fprintf(stderr,
                     "egeria_trace: EGERIA_RESULT in %s has no %s field "
                     "(worker predates the tracing layer?)\n",
                     reconcile_log.c_str(), result_key);
        ok = false;
        continue;
      }
      const double expect = std::atof(it->second.c_str());
      const auto tit = totals.find({rank0, span_key});
      const double got = tit != totals.end() ? tit->second.seconds : 0.0;
      // Relative tolerance with a 10 ms absolute floor: phases near zero
      // (e.g. opt under overlap) must not fail on scheduler noise.
      const double tol = std::max(expect * tolerance_pct / 100.0, 0.010);
      const bool match = std::abs(got - expect) <= tol;
      std::printf("reconcile %-14s trace=%.6f result=%.6f tol=%.6f %s\n",
                  span_key, got, expect, tol, match ? "OK" : "MISMATCH");
      ok = ok && match;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "egeria_trace: reconciliation FAILED (trace totals "
                   "disagree with EGERIA_RESULT beyond %.1f%%)\n",
                   tolerance_pct);
      return 1;
    }
    std::printf("reconcile: all phases within %.1f%%\n", tolerance_pct);
  }

  // ---- bottleneck diagnosis over the merged timeline ----
  if (diagnose) {
    struct RankDiag {
      double data = 0.0, fp = 0.0, bp = 0.0, opt = 0.0;
      double comm_wait = 0.0, train = 0.0;
      double comm_union = 0.0, hidden = 0.0, exposed = 0.0;
      double compute() const { return fp + bp + opt; }
      // Train-loop time covered by no phase span: cross-rank waits outside
      // the instrumented phases (e.g. a frontier broadcast stalled behind a
      // straggler's injected delay) land here.
      double gap() const {
        return std::max(0.0, train - (data + compute() + comm_wait));
      }
      double load() const { return compute() + gap(); }
    };
    std::map<int, RankDiag> diag;
    for (const RankFile& rf : ranks) {
      RankDiag& d = diag[rf.rank];
      auto total = [&](const char* key) {
        const auto it = totals.find({rf.rank, key});
        return it != totals.end() ? it->second.seconds : 0.0;
      };
      d.data = total("trainer.data");
      d.fp = total("trainer.fp");
      d.bp = total("trainer.bp");
      d.opt = total("trainer.opt");
      d.comm_wait = total("trainer.comm_wait");
      d.train = total("trainer.train");
      // Overlap efficiency replays the worker's own per-round accounting
      // (overlap_reducer.cc FinishRound) from spans: for each backward
      // round, comm = wire-transfer seconds inside that round's comm.round
      // envelope (ring.reduce_scatter / ring.all_gather — exactly what the
      // worker's CommSeconds times), block = the matching trainer.comm_wait
      // span (the FinishRound wall block, readiness idle included); then
      // hidden = max(0, comm - block) and exposed = block, per round. The
      // comm.* lifecycle envelopes (round/bucket/reduce_scatter wrappers on
      // the comm thread) never count as wire time — they cover readiness
      // waits and would claim the whole backward window as "hidden". Runs
      // without the overlap reducer (no comm.round spans, e.g. the sync
      // star-reduce path) fall back to interval-intersecting wire spans
      // with backward spans.
      auto is_wire_span = [](const TraceEvent& e) {
        if (e.cat != "ring") {
          return false;
        }
        return e.name == "reduce_scatter" || e.name == "all_gather" ||
               e.name == "star_reduce";
      };
      std::vector<std::pair<double, double>> wire_spans;
      std::vector<std::pair<double, double>> round_iv;
      std::vector<std::pair<double, double>> wait_iv;
      std::vector<std::pair<double, double>> bp_iv;
      for (const TraceEvent& e : rf.events) {
        if (e.ph != 'X') {
          continue;
        }
        const double lo = e.ts_us * 1e-6;
        const double hi = (e.ts_us + e.dur_us) * 1e-6;
        if (is_wire_span(e)) {
          wire_spans.emplace_back(lo, hi);
        } else if (e.cat == "comm" && e.name == "round") {
          round_iv.emplace_back(lo, hi);
        } else if (e.cat == "trainer" && e.name == "comm_wait") {
          wait_iv.emplace_back(lo, hi);
        } else if (e.cat == "trainer" && e.name == "bp") {
          bp_iv.emplace_back(lo, hi);
        }
      }
      if (!round_iv.empty() && !wait_iv.empty()) {
        // Rounds and FinishRound blocks are both strictly sequential per
        // iteration, so sorting by start time pairs them index-wise.
        std::sort(round_iv.begin(), round_iv.end());
        std::sort(wait_iv.begin(), wait_iv.end());
        const size_t n = std::min(round_iv.size(), wait_iv.size());
        for (size_t i = 0; i < n; ++i) {
          double comm = 0.0;
          for (const auto& [lo, hi] : wire_spans) {
            const double mid = 0.5 * (lo + hi);
            if (mid >= round_iv[i].first && mid <= round_iv[i].second) {
              comm += hi - lo;
            }
          }
          const double block = wait_iv[i].second - wait_iv[i].first;
          d.hidden += std::max(0.0, comm - block);
          d.exposed += block;
          d.comm_union += comm;
        }
      } else {
        d.comm_union = MergeIntervals(&wire_spans);
        MergeIntervals(&bp_iv);
        d.hidden = IntersectIntervals(wire_spans, bp_iv);
        d.exposed = d.comm_union - d.hidden;
      }
    }

    std::printf("\n---- diagnosis ----\n");
    std::printf("%-6s %10s %10s %10s %10s %12s %10s %10s\n", "rank", "data_s",
                "fp_s", "bp_s", "opt_s", "comm_wait_s", "gap_s", "train_s");
    for (const auto& [rank, d] : diag) {
      std::printf("%-6d %10.3f %10.3f %10.3f %10.3f %12.3f %10.3f %10.3f\n",
                  rank, d.data, d.fp, d.bp, d.opt, d.comm_wait, d.gap(),
                  d.train);
    }

    // Per-phase critical path: the slowest rank of each phase bounds the
    // world (data-parallel ranks sync every iteration), so the sum of
    // per-phase maxima approximates the iteration-loop critical path.
    struct PhaseMax {
      const char* name;
      double seconds = 0.0;
      int rank = 0;
    };
    PhaseMax phase_max[] = {{"data"}, {"compute"}, {"comm_wait"}, {"gap"}};
    for (const auto& [rank, d] : diag) {
      const double vals[] = {d.data, d.compute(), d.comm_wait, d.gap()};
      for (int i = 0; i < 4; ++i) {
        if (vals[i] > phase_max[i].seconds) {
          phase_max[i].seconds = vals[i];
          phase_max[i].rank = rank;
        }
      }
    }
    double critical_path_s = 0.0;
    std::printf("critical path:");
    for (const PhaseMax& pm : phase_max) {
      critical_path_s += pm.seconds;
      std::printf(" %s=%.3fs(rank %d)", pm.name, pm.seconds, pm.rank);
    }
    std::printf(" total=%.3fs\n", critical_path_s);

    double hidden_total = 0.0;
    double exposed_total = 0.0;
    double wall_s = 0.0;
    for (const auto& [rank, d] : diag) {
      hidden_total += d.hidden;
      exposed_total += d.exposed;
      wall_s = std::max(wall_s, d.train);
    }
    const double comm_total = hidden_total + exposed_total;
    const double overlap_efficiency_pct =
        comm_total > 0.0 ? 100.0 * hidden_total / comm_total : 0.0;
    std::printf(
        "overlap: comm_hidden=%.3fs comm_exposed=%.3fs efficiency=%.1f%%\n",
        hidden_total, exposed_total, overlap_efficiency_pct);

    // Classification: which phase's slowest rank dominates the critical path.
    // data/compute name the slow rank directly; comm_wait is symptomatic (the
    // waiter is the victim), so the straggler analysis below names the cause.
    const PhaseMax* dominant = &phase_max[0];
    for (int i = 1; i < 3; ++i) {
      if (phase_max[i].seconds > dominant->seconds) {
        dominant = &phase_max[i];
      }
    }
    // The unattributed gap is a cross-rank wait just like comm_wait: fold it
    // into the comm-wait-bound class rather than inventing a fourth label.
    const char* classification;
    const char* dominant_phase = dominant->name;
    if (std::strcmp(dominant->name, "data") == 0) {
      classification = "data-bound";
    } else if (std::strcmp(dominant->name, "compute") == 0) {
      classification = "compute-bound";
    } else {
      classification = "comm-wait-bound";
    }
    if (phase_max[3].seconds > dominant->seconds) {  // gap dominates all
      classification = "comm-wait-bound";
      dominant_phase = "gap";
      dominant = &phase_max[3];
    }

    // Straggler: the rank whose own work (compute + unattributed stalls)
    // exceeds the median rank's by the skew threshold. comm_wait is excluded
    // from load — waiting on others is the OPPOSITE of straggling.
    std::vector<double> loads;
    int straggler_rank = -1;
    double max_load = 0.0;
    for (const auto& [rank, d] : diag) {
      loads.push_back(d.load());
      if (d.load() > max_load) {
        max_load = d.load();
        straggler_rank = rank;
      }
    }
    std::sort(loads.begin(), loads.end());
    const double median_load = loads[(loads.size() - 1) / 2];
    const double straggler_skew =
        max_load / std::max(median_load, 0.010);
    if (loads.size() < 2 || straggler_skew < straggler_skew_threshold) {
      straggler_rank = -1;
    }

    std::printf("classification: %s (dominant phase %s, %.3fs on rank %d)\n",
                classification, dominant_phase, dominant->seconds,
                dominant->rank);
    if (straggler_rank >= 0) {
      std::printf("straggler: rank %d (load skew %.2fx over the median)\n",
                  straggler_rank, straggler_skew);
    } else {
      std::printf("straggler: none (max load skew %.2fx, threshold %.2fx)\n",
                  straggler_skew, straggler_skew_threshold);
    }
    std::printf(
        "EGERIA_DIAGNOSIS {\"classification\":\"%s\","
        "\"dominant_phase\":\"%s\",\"dominant_rank\":%d,"
        "\"dominant_seconds\":%.6f,\"straggler_rank\":%d,"
        "\"straggler_skew\":%.4f,\"overlap_efficiency_pct\":%.2f,"
        "\"comm_hidden_s\":%.6f,\"comm_exposed_s\":%.6f,"
        "\"critical_path_s\":%.6f,\"wall_s\":%.6f,\"ranks\":%zu}\n",
        classification, dominant_phase, dominant->rank, dominant->seconds,
        straggler_rank, straggler_skew, overlap_efficiency_pct, hidden_total,
        exposed_total, critical_path_s, wall_s, diag.size());
  }
  return 0;
}
