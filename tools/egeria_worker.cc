// egeria_worker: one rank of a multi-process data-parallel world.
//
// Launched W times (by SpawnWorld, scripts/launch_dist.sh, or by hand) with a
// shared rendezvous file; each process wires itself into the TCP ring, runs
// the same per-rank training loop the in-process harness uses (TrainRank), and
// reports machine-readable results on stdout:
//
//   EGERIA_RESULT rank=.. world=.. params_hash=.. final_frontier=.. ...
//   EGERIA_RESHARD iter=.. frontier=.. payload_bytes=.. allreduce_s_per_iter=..
//
// The EGERIA_RESULT params_hash of every rank of a TCP world is bitwise-equal
// to the single-process sequential-reference run of the same workload — the
// reduction contract, across OS processes and a real wire.
//
// Flags:
//   --rank=R --world=W --rendezvous=PATH   (required; env EGERIA_RANK /
//       EGERIA_WORLD / EGERIA_RENDEZVOUS are fallbacks)
//   --workload=tiny|fig10   (default tiny; see src/distributed/dist_workload.h)
//   --epochs=N              (override the workload default)
//   --egeria=0|1            (enable the freezing controller; default 0)
//   --ckpt-dir=PATH         (checkpoint root; with a complete checkpoint
//       present the rank RESUMES from it — rerunning the same command after a
//       crash continues the run, even at a different --world: elastic restart)
//   --ckpt-interval=N       (snapshot every N iterations; default 0 = off)
//   --ckpt-keep=N           (complete checkpoints retained; default 2)
//   --stop-after=N          (stop cleanly after N iterations, writing a final
//       checkpoint — stages elastic-restart drills from the command line)
//   --connect-timeout=S --io-timeout=S
//   --fault=hang:I | exit:I (test-only: at iteration I this rank hangs
//       forever / exits 3; I=0 fires before the transport even connects)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/distributed/dist_trainer.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/transport/tcp_transport.h"

namespace egeria {
namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  *out = arg + prefix.size();
  return true;
}

int EnvOrDie(const char* flag, const char* env_name, const std::string& flag_value) {
  if (!flag_value.empty()) {
    return std::atoi(flag_value.c_str());
  }
  if (const char* env = std::getenv(env_name)) {
    return std::atoi(env);
  }
  std::fprintf(stderr, "egeria_worker: missing --%s / $%s\n", flag, env_name);
  std::exit(2);
}

[[noreturn]] void HangForever() {
  for (;;) {
    sleep(3600);
  }
}

int Main(int argc, char** argv) {
  std::string rank_s;
  std::string world_s;
  std::string rendezvous;
  std::string workload_name = "tiny";
  std::string epochs_s;
  std::string egeria_s = "0";
  std::string connect_timeout_s;
  std::string io_timeout_s;
  std::string fault;
  std::string ckpt_dir;
  std::string ckpt_interval_s;
  std::string ckpt_keep_s;
  std::string stop_after_s;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (FlagValue(a, "rank", &rank_s) || FlagValue(a, "world", &world_s) ||
        FlagValue(a, "rendezvous", &rendezvous) ||
        FlagValue(a, "workload", &workload_name) ||
        FlagValue(a, "epochs", &epochs_s) || FlagValue(a, "egeria", &egeria_s) ||
        FlagValue(a, "ckpt-dir", &ckpt_dir) ||
        FlagValue(a, "ckpt-interval", &ckpt_interval_s) ||
        FlagValue(a, "ckpt-keep", &ckpt_keep_s) ||
        FlagValue(a, "stop-after", &stop_after_s) ||
        FlagValue(a, "connect-timeout", &connect_timeout_s) ||
        FlagValue(a, "io-timeout", &io_timeout_s) || FlagValue(a, "fault", &fault)) {
      continue;
    }
    std::fprintf(stderr, "egeria_worker: unknown argument %s\n", a);
    return 2;
  }
  const int rank = EnvOrDie("rank", "EGERIA_RANK", rank_s);
  const int world = EnvOrDie("world", "EGERIA_WORLD", world_s);
  if (rendezvous.empty()) {
    if (const char* env = std::getenv("EGERIA_RENDEZVOUS")) {
      rendezvous = env;
    }
  }
  if (rendezvous.empty() && world > 1) {
    std::fprintf(stderr, "egeria_worker: missing --rendezvous / $EGERIA_RENDEZVOUS\n");
    return 2;
  }

  // Test-only fault injection: "<kind>:<iter>"; iter 0 = before the transport
  // connects, so peers see a silent (hang) or failed (exit) rank at wiring time.
  int64_t fault_iter = -1;
  bool fault_hang = false;
  if (!fault.empty()) {
    const size_t colon = fault.find(':');
    const std::string kind = fault.substr(0, colon);
    fault_iter = colon == std::string::npos ? 0 : std::atoll(fault.c_str() + colon + 1);
    fault_hang = kind == "hang";
    if (!fault_hang && kind != "exit") {
      std::fprintf(stderr, "egeria_worker: bad --fault %s\n", fault.c_str());
      return 2;
    }
    if (fault_iter <= 0) {
      if (fault_hang) {
        HangForever();
      }
      return 3;
    }
  }

  DistWorkload w = MakeDistWorkload(workload_name);
  w.cfg.world = world;
  if (!epochs_s.empty()) {
    w.cfg.epochs = std::atoi(epochs_s.c_str());
  }
  w.cfg.enable_egeria = std::atoi(egeria_s.c_str()) != 0;
  w.cfg.reducer = DistTrainConfig::Reducer::kRingSharded;
  w.cfg.ckpt.dir = ckpt_dir;
  if (!ckpt_interval_s.empty()) {
    w.cfg.ckpt.interval_iters = std::atoll(ckpt_interval_s.c_str());
  }
  if (!ckpt_keep_s.empty()) {
    w.cfg.ckpt.keep_last = std::atoi(ckpt_keep_s.c_str());
  }
  if (!stop_after_s.empty()) {
    w.cfg.stop_after_iters = std::atoll(stop_after_s.c_str());
  }
  if (fault_iter > 0) {
    const int64_t at = fault_iter;
    const bool hang = fault_hang;
    w.cfg.iteration_hook = [rank, at, hang](int r, int64_t iter) {
      if (r == rank && iter == at) {
        if (hang) {
          HangForever();
        }
        std::exit(3);
      }
    };
  }

  TcpTransportOptions topts;
  topts.rank = rank;
  topts.world = world;
  topts.rendezvous_file = rendezvous;
  if (!connect_timeout_s.empty()) {
    topts.connect_timeout_s = std::atof(connect_timeout_s.c_str());
  }
  if (!io_timeout_s.empty()) {
    topts.io_timeout_s = std::atof(io_timeout_s.c_str());
  }
  std::unique_ptr<Transport> transport = MakeTcpTransport(topts);

  RankTrainResult r =
      TrainRank(*transport, w.make_model, *w.train, *w.val, w.cfg, nullptr);

  for (const DistReshardEvent& ev : r.reshard_events) {
    std::printf("EGERIA_RESHARD iter=%lld frontier=%d active_elems=%lld "
                "payload_bytes=%lld opt_state_bytes=%lld allreduce_s_per_iter=%.6f\n",
                static_cast<long long>(ev.iter), ev.frontier,
                static_cast<long long>(ev.active_elems),
                static_cast<long long>(ev.payload_bytes_per_iter),
                static_cast<long long>(ev.opt_state_bytes_per_rank),
                ev.allreduce_seconds_per_iter);
  }
  std::printf("EGERIA_RESULT rank=%d world=%d workload=%s params_hash=%016llx "
              "final_frontier=%d iterations=%lld bytes_synced=%lld "
              "bytes_full_model=%lld wire_bytes=%lld allreduce_seconds=%.6f "
              "final_acc=%.4f resumed_from=%lld stopped_early=%d\n",
              rank, world, w.name.c_str(),
              static_cast<unsigned long long>(r.params_hash), r.final_frontier,
              static_cast<long long>(r.iterations),
              static_cast<long long>(r.bytes_synced),
              static_cast<long long>(r.bytes_full_model),
              static_cast<long long>(r.wire_bytes), r.allreduce_seconds,
              r.final_display, static_cast<long long>(r.resumed_from_iter),
              r.stopped_early ? 1 : 0);
  return 0;
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) { return egeria::Main(argc, argv); }
