// egeria_worker: one rank of a multi-process data-parallel world.
//
// Launched W times (by SpawnWorld, scripts/launch_dist.sh, or by hand) with a
// shared rendezvous file; each process wires itself into the TCP ring, runs
// the same per-rank training loop the in-process harness uses (TrainRank), and
// reports machine-readable results on stdout:
//
//   EGERIA_RESULT rank=.. world=.. params_hash=.. final_frontier=.. ...
//   EGERIA_RESHARD iter=.. frontier=.. payload_bytes=.. allreduce_s_per_iter=..
//
// The EGERIA_RESULT params_hash of every rank of a TCP world is bitwise-equal
// to the single-process sequential-reference run of the same workload — the
// reduction contract, across OS processes and a real wire.
//
// Failure protocol (see src/distributed/README.md "Failure model"): a rank
// whose training loop ends on a transport error prints
//
//   EGERIA_ABORT rank=.. code=.. reason=".."
//
// and exits 4. The launcher's fail-fast supervision then kills the survivors
// (who are themselves aborting after the heartbeat broadcast) and, under
// SpawnWorldWithRecovery, relaunches the world to resume from the latest
// complete checkpoint.
//
// Flags:
//   --rank=R --world=W --rendezvous=PATH   (required; env EGERIA_RANK /
//       EGERIA_WORLD / EGERIA_RENDEZVOUS are fallbacks)
//   --workload=tiny|fig10   (default tiny; see src/distributed/dist_workload.h)
//   --epochs=N              (override the workload default)
//   --egeria=0|1            (enable the freezing controller; default 0)
//   --ckpt-dir=PATH         (checkpoint root; with a complete checkpoint
//       present the rank RESUMES from it — rerunning the same command after a
//       crash continues the run, even at a different --world: elastic restart)
//   --ckpt-interval=N       (snapshot every N iterations; default 0 = off)
//   --ckpt-keep=N           (complete checkpoints retained; default 2)
//   --stop-after=N          (stop cleanly after N iterations, writing a final
//       checkpoint — stages elastic-restart drills from the command line)
//   --overlap=0|1           (overlap gradient communication with backward
//       compute via per-stage buckets; default 1. Bitwise-identical results
//       either way — 0 keeps the sequential round as the pin baseline. Every
//       rank of a world must agree.)
//   --async-ckpt=0|1        (background checkpoint writes with deferred
//       manifest commit; default 1. Persisted state is bitwise-identical.)
//   --connect-timeout=S --io-timeout=S
//   --hb-interval=S         (heartbeat failure-detector period; default 2.0,
//       0 disables. Every rank of a world must agree.)
//   --integrity=0|1         (frame checksums + sequence numbers; default 1.
//       Every rank of a world must agree.)
//   --fault=SPEC            (test-only deterministic fault injection: comma-
//       separated kind:iter entries with kinds
//       corrupt/truncate/delay/drop/dup/hang/exit, or a single seed:S entry;
//       see src/distributed/transport/fault_injection.h. hang:0 / exit:0 fire
//       before the transport even connects. An entry may carry a rank
//       qualifier, kind@rank:iter, so one launch command can fault a single
//       rank of the world. Malformed specs are a usage error, exit 2.)
//
// Env: EGERIA_TRACE=1 writes trace_rank<r>.json at exit; EGERIA_EXPORTER=1
// starts the live HTTP exporter (/metrics, /healthz, /trace — see
// src/obs/exporter.h) on an ephemeral loopback port published to
// $EGERIA_TRACE_DIR/obs_port_rank<r>.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/distributed/dist_trainer.h"
#include "src/distributed/dist_workload.h"
#include "src/distributed/transport/fault_injection.h"
#include "src/distributed/transport/integrity_transport.h"
#include "src/distributed/transport/tcp_transport.h"
#include "src/obs/exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace egeria {
namespace {

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  *out = arg + prefix.size();
  return true;
}

int EnvOrDie(const char* flag, const char* env_name, const std::string& flag_value) {
  if (!flag_value.empty()) {
    return std::atoi(flag_value.c_str());
  }
  if (const char* env = std::getenv(env_name)) {
    return std::atoi(env);
  }
  std::fprintf(stderr, "egeria_worker: missing --%s / $%s\n", flag, env_name);
  std::exit(2);
}

[[noreturn]] void HangForever() {
  for (;;) {
    sleep(3600);
  }
}

bool TruthyEnv(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return false;
  }
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0 || std::strcmp(v, "yes") == 0;
}

std::string TraceDir() {
  const char* env_dir = std::getenv("EGERIA_TRACE_DIR");
  return env_dir != nullptr && env_dir[0] != '\0' ? env_dir : ".";
}

// Flush per-rank observability artifacts: the trace (when EGERIA_TRACE is on)
// to trace_rank<r>.json under $EGERIA_TRACE_DIR (default: cwd), and a metrics
// snapshot alongside it. Called on BOTH the clean-exit and the EGERIA_ABORT
// path — an aborting rank's trace is precisely the one worth reading.
void FlushObservability(int rank) {
  const bool want_metrics = std::getenv("EGERIA_METRICS") != nullptr;
  if (!trace::Enabled() && !want_metrics) {
    return;
  }
  const std::string dir = TraceDir();
  if (trace::Enabled()) {
    const std::string path = dir + "/trace_rank" + std::to_string(rank) + ".json";
    if (trace::Flush(path)) {
      std::printf("EGERIA_TRACE rank=%d file=%s\n", rank, path.c_str());
    } else {
      std::fprintf(stderr, "egeria_worker: trace flush to %s failed\n",
                   path.c_str());
    }
  }
  const std::string mpath = dir + "/metrics_rank" + std::to_string(rank) + ".txt";
  if (FILE* f = std::fopen(mpath.c_str(), "w")) {
    const std::string snap = obs::SnapshotText();
    std::fwrite(snap.data(), 1, snap.size(), f);
    std::fclose(f);
  }
  std::fflush(stdout);
}

int Main(int argc, char** argv) {
  std::string rank_s;
  std::string world_s;
  std::string rendezvous;
  std::string workload_name = "tiny";
  std::string epochs_s;
  std::string egeria_s = "0";
  std::string connect_timeout_s;
  std::string io_timeout_s;
  std::string hb_interval_s;
  std::string integrity_s = "1";
  std::string fault;
  std::string ckpt_dir;
  std::string ckpt_interval_s;
  std::string ckpt_keep_s;
  std::string stop_after_s;
  std::string overlap_s = "1";
  std::string async_ckpt_s = "1";
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (FlagValue(a, "rank", &rank_s) || FlagValue(a, "world", &world_s) ||
        FlagValue(a, "rendezvous", &rendezvous) ||
        FlagValue(a, "workload", &workload_name) ||
        FlagValue(a, "epochs", &epochs_s) || FlagValue(a, "egeria", &egeria_s) ||
        FlagValue(a, "ckpt-dir", &ckpt_dir) ||
        FlagValue(a, "ckpt-interval", &ckpt_interval_s) ||
        FlagValue(a, "ckpt-keep", &ckpt_keep_s) ||
        FlagValue(a, "stop-after", &stop_after_s) ||
        FlagValue(a, "overlap", &overlap_s) ||
        FlagValue(a, "async-ckpt", &async_ckpt_s) ||
        FlagValue(a, "connect-timeout", &connect_timeout_s) ||
        FlagValue(a, "io-timeout", &io_timeout_s) ||
        FlagValue(a, "hb-interval", &hb_interval_s) ||
        FlagValue(a, "integrity", &integrity_s) || FlagValue(a, "fault", &fault)) {
      continue;
    }
    std::fprintf(stderr, "egeria_worker: unknown argument %s\n", a);
    return 2;
  }
  const int rank = EnvOrDie("rank", "EGERIA_RANK", rank_s);
  const int world = EnvOrDie("world", "EGERIA_WORLD", world_s);
  // One rank per process: tag every log line and trace event with the rank
  // before any subsystem starts threads.
  SetLogRankTag(rank);
  trace::InitFromEnv();
  trace::SetProcessRank(rank);
  trace::SetProcessLabel("egeria_worker rank " + std::to_string(rank));
  if (rendezvous.empty()) {
    if (const char* env = std::getenv("EGERIA_RENDEZVOUS")) {
      rendezvous = env;
    }
  }
  if (rendezvous.empty() && world > 1) {
    std::fprintf(stderr, "egeria_worker: missing --rendezvous / $EGERIA_RENDEZVOUS\n");
    return 2;
  }

  // Strictly validated fault plan: an unknown kind or malformed iteration is
  // a usage error (exit 2), never a silently clean run.
  FaultPlan plan;
  if (!fault.empty()) {
    std::string error;
    if (!FaultPlan::Parse(fault, world, rank, &plan, &error)) {
      std::fprintf(stderr, "egeria_worker: %s\n", error.c_str());
      return 2;
    }
  }
  // Pre-wiring process faults: peers see a silent (hang) or failed (exit)
  // rank at rendezvous time.
  for (const FaultEvent& ev : plan.events) {
    if (ev.iter <= 0) {
      if (ev.kind == FaultKind::kHang) {
        HangForever();
      }
      if (ev.kind == FaultKind::kExit) {
        return 3;
      }
    }
  }

  DistWorkload w = MakeDistWorkload(workload_name);
  w.cfg.world = world;
  if (!epochs_s.empty()) {
    w.cfg.epochs = std::atoi(epochs_s.c_str());
  }
  w.cfg.enable_egeria = std::atoi(egeria_s.c_str()) != 0;
  w.cfg.reducer = DistTrainConfig::Reducer::kRingSharded;
  w.cfg.ckpt.dir = ckpt_dir;
  if (!ckpt_interval_s.empty()) {
    w.cfg.ckpt.interval_iters = std::atoll(ckpt_interval_s.c_str());
  }
  if (!ckpt_keep_s.empty()) {
    w.cfg.ckpt.keep_last = std::atoi(ckpt_keep_s.c_str());
  }
  if (!stop_after_s.empty()) {
    w.cfg.stop_after_iters = std::atoll(stop_after_s.c_str());
  }
  w.cfg.overlap_comm = std::atoi(overlap_s.c_str()) != 0;
  w.cfg.ckpt.async_save = std::atoi(async_ckpt_s.c_str()) != 0;
  // TrainRank gets the already-wrapped transport; don't double-wrap.
  w.cfg.frame_integrity = false;

  TcpTransportOptions topts;
  topts.rank = rank;
  topts.world = world;
  topts.rendezvous_file = rendezvous;
  topts.heartbeat_interval_s =
      hb_interval_s.empty() ? 2.0 : std::atof(hb_interval_s.c_str());
  if (!connect_timeout_s.empty()) {
    topts.connect_timeout_s = std::atof(connect_timeout_s.c_str());
  }
  if (!io_timeout_s.empty()) {
    topts.io_timeout_s = std::atof(io_timeout_s.c_str());
  }
  // Production path: the TCP transport's native in-pump integrity (hashing
  // overlapped with the wire — see tcp_transport.h). A rank with a --fault
  // spec keeps the decorator stack instead: the injector must corrupt BELOW
  // the checksum to be caught, which only
  // IntegrityTransport(FaultInjectingTransport(raw)) can express. Both emit
  // bit-identical wire frames, so a world may mix faulted and clean ranks.
  const bool integrity = std::atoi(integrity_s.c_str()) != 0;
  const bool decorate = !fault.empty();
  topts.frame_integrity = integrity && !decorate;
  std::unique_ptr<Transport> base = MakeTcpTransport(topts);

  FaultInjectingTransport faulty(base.get(), plan);
  IntegrityTransport checked(&faulty);
  Transport& transport =
      decorate ? (integrity ? static_cast<Transport&>(checked)
                            : static_cast<Transport&>(faulty))
               : *base;

  // Optional live telemetry: $EGERIA_EXPORTER=1 starts the per-rank HTTP
  // exporter on an ephemeral loopback port, published to
  // $EGERIA_TRACE_DIR/obs_port_rank<r> (rendezvous-file pattern). The server
  // only reads the obs registry — no collectives, so the training result is
  // bitwise-unchanged whether or not anyone scrapes.
  std::unique_ptr<obs::Exporter> exporter;
  if (TruthyEnv("EGERIA_EXPORTER")) {
    obs::ExporterOptions eopts;
    eopts.rank = rank;
    eopts.port_file = TraceDir() + "/obs_port_rank" + std::to_string(rank);
    exporter = obs::Exporter::Start(eopts);
    if (exporter != nullptr) {
      std::printf("EGERIA_EXPORTER rank=%d port=%d\n", rank, exporter->Port());
      std::fflush(stdout);
    } else {
      std::fprintf(stderr, "egeria_worker: exporter failed to start (rank %d)\n",
                   rank);
    }
  }

  FaultInjectingTransport* faulty_ptr = &faulty;
  obs::Exporter* exporter_ptr = exporter.get();
  w.cfg.iteration_hook = [rank, faulty_ptr, exporter_ptr,
                          &plan](int r, int64_t iter) {
    if (r != rank) {
      return;
    }
    if (exporter_ptr != nullptr) {
      exporter_ptr->NoteIteration(iter);
    }
    faulty_ptr->BeginIteration(iter);
    for (const FaultEvent& ev : plan.events) {
      if (ev.iter != iter) {
        continue;
      }
      if (ev.kind == FaultKind::kHang) {
        HangForever();
      }
      if (ev.kind == FaultKind::kExit) {
        std::exit(3);
      }
    }
  };

  RankTrainResult r =
      TrainRank(transport, w.make_model, *w.train, *w.val, w.cfg, nullptr);
  if (!r.status.ok()) {
    trace::AddInstantF("worker", "abort", "{\"code\":\"%s\"}",
                       r.status.code_name());
    std::printf("EGERIA_ABORT rank=%d code=%s reason=\"%s\"\n", rank,
                r.status.code_name(), r.status.message.c_str());
    std::fflush(stdout);
    FlushObservability(rank);
    return 4;
  }

  for (const DistReshardEvent& ev : r.reshard_events) {
    std::printf("EGERIA_RESHARD iter=%lld frontier=%d active_elems=%lld "
                "payload_bytes=%lld opt_state_bytes=%lld allreduce_s_per_iter=%.6f "
                "comm_hidden_s_per_iter=%.6f comm_exposed_s_per_iter=%.6f\n",
                static_cast<long long>(ev.iter), ev.frontier,
                static_cast<long long>(ev.active_elems),
                static_cast<long long>(ev.payload_bytes_per_iter),
                static_cast<long long>(ev.opt_state_bytes_per_rank),
                ev.allreduce_seconds_per_iter, ev.comm_hidden_s_per_iter,
                ev.comm_exposed_s_per_iter);
  }
  std::printf("EGERIA_RESULT rank=%d world=%d workload=%s params_hash=%016llx "
              "final_frontier=%d iterations=%lld bytes_synced=%lld "
              "bytes_full_model=%lld wire_bytes=%lld allreduce_seconds=%.6f "
              "comm_hidden_seconds=%.6f comm_exposed_seconds=%.6f "
              "final_acc=%.4f resumed_from=%lld stopped_early=%d "
              "data_s=%.6f fp_s=%.6f bp_s=%.6f opt_s=%.6f train_s=%.6f\n",
              rank, world, w.name.c_str(),
              static_cast<unsigned long long>(r.params_hash), r.final_frontier,
              static_cast<long long>(r.iterations),
              static_cast<long long>(r.bytes_synced),
              static_cast<long long>(r.bytes_full_model),
              static_cast<long long>(r.wire_bytes), r.allreduce_seconds,
              r.comm_hidden_seconds, r.comm_exposed_seconds,
              r.final_display, static_cast<long long>(r.resumed_from_iter),
              r.stopped_early ? 1 : 0, r.data_seconds, r.fp_seconds,
              r.bp_seconds, r.opt_seconds, r.train_seconds);
  FlushObservability(rank);
  return 0;
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) { return egeria::Main(argc, argv); }
