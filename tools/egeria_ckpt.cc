// egeria_ckpt: checkpoint inspector for the src/ckpt/ fault-tolerance
// subsystem.
//
//   egeria_ckpt list <root>       all step_* checkpoints under <root> with
//                                 iter/kind/world/frontier and completeness
//   egeria_ckpt latest <root>     print the latest COMPLETE step dir
//                                 (exit 1 if none — scriptable)
//   egeria_ckpt show <step_dir>   manifest header, per-file checksums, and
//                                 every tensor in model.state (name, shape)
//   egeria_ckpt verify <step_dir> re-hash every listed file against the
//                                 manifest (exit 1 on any mismatch)
//
// "Complete" means: MANIFEST present, parseable, and every listed file's size
// and FNV-1a checksum match — the same test resume uses.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/tensor/serialize.h"

namespace egeria {
namespace {

namespace fs = std::filesystem;

int Usage() {
  std::fprintf(stderr,
               "usage: egeria_ckpt list <root> | latest <root> | show <step_dir> | "
               "verify <step_dir>\n");
  return 2;
}

std::string StatusOf(const std::string& step_dir) {
  const auto m = ReadManifest(step_dir);
  if (!m) {
    return "INCOMPLETE (no manifest)";
  }
  std::string error;
  if (!VerifyCheckpointFiles(*m, &error)) {
    return "CORRUPT (" + error + ")";
  }
  return "complete";
}

int List(const std::string& root) {
  std::vector<std::string> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory(ec) &&
        entry.path().filename().string().rfind("step_", 0) == 0) {
      steps.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "egeria_ckpt: cannot read %s: %s\n", root.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(steps.begin(), steps.end());
  std::printf("%-32s %10s %-8s %5s %8s %6s  %s\n", "step", "iter", "kind", "world",
              "frontier", "files", "status");
  for (const std::string& dir : steps) {
    const auto m = ReadManifest(dir);
    const std::string name = fs::path(dir).filename().string();
    if (!m) {
      std::printf("%-32s %10s %-8s %5s %8s %6s  %s\n", name.c_str(), "-", "-", "-",
                  "-", "-", "INCOMPLETE (no manifest)");
      continue;
    }
    std::printf("%-32s %10lld %-8s %5d %8d %6zu  %s\n", name.c_str(),
                static_cast<long long>(m->iter), m->kind.c_str(), m->world,
                m->frontier, m->files.size(), StatusOf(dir).c_str());
  }
  return 0;
}

int Latest(const std::string& root) {
  const auto m = FindLatestCheckpoint(root);
  if (!m) {
    std::fprintf(stderr, "egeria_ckpt: no complete checkpoint under %s\n",
                 root.c_str());
    return 1;
  }
  std::printf("%s\n", m->dir.c_str());
  return 0;
}

int Show(const std::string& step_dir) {
  const auto m = ReadManifest(step_dir);
  if (!m) {
    std::fprintf(stderr, "egeria_ckpt: %s has no parseable manifest\n",
                 step_dir.c_str());
    return 1;
  }
  std::printf("checkpoint   %s\n", step_dir.c_str());
  std::printf("kind         %s\n", m->kind.c_str());
  std::printf("iter         %lld\n", static_cast<long long>(m->iter));
  std::printf("world        %d\n", m->world);
  std::printf("frontier     %d (next %d)\n", m->frontier, m->next_frontier);
  std::printf("partition    frozen=%lld active=%lld elems\n",
              static_cast<long long>(m->frozen_elems),
              static_cast<long long>(m->active_elems));
  std::printf("status       %s\n", StatusOf(step_dir).c_str());
  std::printf("files:\n");
  for (const ManifestFile& f : m->files) {
    std::printf("  %-24s %12lld B  fnv=%016llx\n", f.name.c_str(),
                static_cast<long long>(f.bytes),
                static_cast<unsigned long long>(f.fnv));
  }
  Checkpoint state;
  if (m->HasFile("model.state") &&
      LoadCheckpoint(step_dir + "/model.state", state)) {
    int64_t total = 0;
    std::printf("model.state tensors:\n");
    for (const auto& [name, t] : state) {
      std::string shape = "[";
      for (int d = 0; d < t.Dim(); ++d) {
        shape += (d > 0 ? "," : "") + std::to_string(t.Size(d));
      }
      shape += "]";
      std::printf("  %-48s %-16s %10lld\n", name.c_str(), shape.c_str(),
                  static_cast<long long>(t.NumEl()));
      total += t.NumEl();
    }
    std::printf("  total elements: %lld\n", static_cast<long long>(total));
  }
  return 0;
}

int Verify(const std::string& step_dir) {
  const auto m = ReadManifest(step_dir);
  if (!m) {
    std::fprintf(stderr, "egeria_ckpt: %s has no parseable manifest\n",
                 step_dir.c_str());
    return 1;
  }
  std::string error;
  if (!VerifyCheckpointFiles(*m, &error)) {
    std::fprintf(stderr, "egeria_ckpt: VERIFY FAILED: %s\n", error.c_str());
    return 1;
  }
  std::printf("egeria_ckpt: %s verifies (%zu files)\n", step_dir.c_str(),
              m->files.size());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc != 3) {
    return Usage();
  }
  const std::string cmd = argv[1];
  const std::string arg = argv[2];
  if (cmd == "list") {
    return List(arg);
  }
  if (cmd == "latest") {
    return Latest(arg);
  }
  if (cmd == "show") {
    return Show(arg);
  }
  if (cmd == "verify") {
    return Verify(arg);
  }
  return Usage();
}

}  // namespace
}  // namespace egeria

int main(int argc, char** argv) { return egeria::Main(argc, argv); }
