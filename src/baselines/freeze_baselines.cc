#include "src/baselines/freeze_baselines.h"

#include <cmath>

#include "src/metrics/gradient_metrics.h"
#include "src/util/logging.h"

namespace egeria {

void StaticFreezeHook::OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) {
  (void)batch;
  if (done_) {
    return;
  }
  const int64_t target_iter = static_cast<int64_t>(epoch_) * trainer.IterationsPerEpoch();
  if (iter >= target_iter) {
    trainer.FreezeUpTo(stage_, iter);
    done_ = true;
  }
}

void AutoFreezeHook::OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) {
  (void)batch;
  if (iter % cfg_.eval_interval != 0) {
    return;
  }
  const int frontier = trainer.frontier();
  const int max_freezable = trainer.model().NumStages() - 1 - cfg_.protected_tail;
  if (frontier > max_freezable) {
    return;
  }
  if (tracked_stage_ != frontier) {
    tracked_stage_ = frontier;
    max_norm_ = 0.0;
    low_count_ = 0;
  }
  // Gradient norms are fresh: the hook runs right after the backward pass.
  const double norm = StageGradientNorm(trainer.model().StageParams(frontier));
  max_norm_ = std::max(max_norm_, norm);
  if (max_norm_ > 0.0 && norm < cfg_.threshold_frac * max_norm_) {
    ++low_count_;
  } else {
    low_count_ = 0;
  }
  if (low_count_ >= cfg_.window) {
    trainer.FreezeUpTo(frontier, iter);
  }
}

void SkipConvHook::OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) {
  (void)batch;
  if (iter % cfg_.eval_interval != 0) {
    return;
  }
  const int frontier = trainer.frontier();
  const int max_freezable = trainer.model().NumStages() - 1 - cfg_.protected_tail;
  if (frontier > max_freezable) {
    return;
  }
  if (tracked_stage_ != frontier) {
    tracked_stage_ = frontier;
    prev_activation_ = Tensor();
    first_gate_ = -1.0;
    low_count_ = 0;
  }
  Tensor act = trainer.FrontierActivation();
  if (!act.Defined()) {
    return;
  }
  if (prev_activation_.Defined() && prev_activation_.NumEl() == act.NumEl()) {
    const double gate = SkipConvGate(act, prev_activation_);
    if (first_gate_ < 0.0) {
      first_gate_ = gate;
    }
    if (first_gate_ > 0.0 && gate < cfg_.threshold_frac * first_gate_) {
      ++low_count_;
    } else {
      low_count_ = 0;
    }
    if (low_count_ >= cfg_.window) {
      trainer.FreezeUpTo(frontier, iter);
      return;
    }
  }
  prev_activation_ = act.Clone();
}

void FreezeOutHook::OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) {
  (void)batch;
  const int max_freezable = trainer.model().NumStages() - 1 - cfg_.protected_tail;
  const int frontier = trainer.frontier();
  if (frontier > max_freezable) {
    return;
  }
  const double total = static_cast<double>(trainer.TotalIterations());
  // Freeze time of module i: t_i = t_end * ((i+1)/M)^p with p = 3 (cubic) or 1.
  const double m = static_cast<double>(max_freezable + 1);
  const double frac = static_cast<double>(frontier + 1) / m;
  const double power = cfg_.cubic ? 3.0 : 1.0;
  const double t_i = cfg_.t_end_frac * total * std::pow(frac, power);
  if (static_cast<double>(iter) >= t_i) {
    trainer.FreezeUpTo(frontier, iter);
  }
}

}  // namespace egeria
