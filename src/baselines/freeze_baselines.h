// Freezing baselines the paper compares against (S2.3, S6.2, S7):
//
//  - StaticFreezeHook: transfer-learning style "fix layer k at epoch e" (Fig. 2).
//  - AutoFreezeHook: gradient-norm freezing in the spirit of AutoFreeze (Liu et
//    al. 2021): the frontmost active module freezes once its gradient norm stays
//    below a fraction of its historical maximum for `window` evaluations.
//  - SkipConvHook: uses the Skip-Convolutions input-norm gate on intermediate
//    activations between evaluation points as the convergence signal (S6.1: "we use
//    the input-norm gate of Skip-Conv, which applies to intermediate activation").
//  - FreezeOutHook: schedule-based progressive freezing (Brock et al.): module i
//    freezes at a predetermined fraction of total training, linear or cubic.
//
// All drive Trainer::FreezeUpTo through the shared FreezeHook interface, so they
// run in exactly the same loop as Egeria.
#ifndef EGERIA_SRC_BASELINES_FREEZE_BASELINES_H_
#define EGERIA_SRC_BASELINES_FREEZE_BASELINES_H_

#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/util/stats.h"

namespace egeria {

class StaticFreezeHook : public FreezeHook {
 public:
  // Freezes stages [0, stage] at the start of `epoch`.
  StaticFreezeHook(int epoch, int stage) : epoch_(epoch), stage_(stage) {}
  void OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) override;
  std::string Name() const override { return "static"; }

 private:
  int epoch_;
  int stage_;
  bool done_ = false;
};

struct AutoFreezeConfig {
  int64_t eval_interval = 50;
  int window = 5;
  // Freeze when grad norm < threshold_frac * historical max for `window` evals.
  double threshold_frac = 0.4;
  int protected_tail = 1;
};

class AutoFreezeHook : public FreezeHook {
 public:
  explicit AutoFreezeHook(const AutoFreezeConfig& cfg) : cfg_(cfg) {}
  void OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) override;
  std::string Name() const override { return "autofreeze"; }

 private:
  AutoFreezeConfig cfg_;
  int tracked_stage_ = -1;
  double max_norm_ = 0.0;
  int low_count_ = 0;
};

struct SkipConvConfig {
  int64_t eval_interval = 50;
  int window = 5;
  // Freeze when the input-norm gate < threshold_frac * its first reading.
  double threshold_frac = 0.3;
  int protected_tail = 1;
};

class SkipConvHook : public FreezeHook {
 public:
  explicit SkipConvHook(const SkipConvConfig& cfg) : cfg_(cfg) {}
  void OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) override;
  std::string Name() const override { return "skipconv"; }

 private:
  SkipConvConfig cfg_;
  int tracked_stage_ = -1;
  Tensor prev_activation_;
  double first_gate_ = -1.0;
  int low_count_ = 0;
};

struct FreezeOutConfig {
  // Fraction of total iterations by which every freezable module is frozen.
  double t_end_frac = 0.8;
  // Cubic schedule (FreezeOut's default) vs linear spacing of freeze times.
  bool cubic = true;
  int protected_tail = 1;
};

class FreezeOutHook : public FreezeHook {
 public:
  explicit FreezeOutHook(const FreezeOutConfig& cfg) : cfg_(cfg) {}
  void OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) override;
  std::string Name() const override { return "freezeout"; }

 private:
  FreezeOutConfig cfg_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_BASELINES_FREEZE_BASELINES_H_
