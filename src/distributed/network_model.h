// Analytic network model of the paper's testbed: nodes with multiple GPUs, NVLink-
// class intra-node bandwidth, 40 Gbps NICs on a leaf-spine fabric (S6.1). Gradient
// synchronization uses hierarchical ring all-reduce: intra-node ring, then a ring
// across nodes. Used by the Fig. 10 distributed-throughput simulation; absolute
// constants are configurable, the *shape* (who wins, where communication becomes the
// bottleneck) is what the reproduction preserves.
#ifndef EGERIA_SRC_DISTRIBUTED_NETWORK_MODEL_H_
#define EGERIA_SRC_DISTRIBUTED_NETWORK_MODEL_H_

#include <cstdint>

namespace egeria {

struct ClusterConfig {
  int num_nodes = 1;
  int gpus_per_node = 2;
  double intra_node_gbps = 128.0;  // NVLink-class
  double inter_node_gbps = 40.0;   // paper's CX-5 NICs
  double link_latency_s = 20e-6;

  int World() const { return num_nodes * gpus_per_node; }
};

class NetworkModel {
 public:
  explicit NetworkModel(const ClusterConfig& cfg) : cfg_(cfg) {}

  // Hierarchical ring all-reduce latency for `bytes` of gradient payload.
  double AllReduceSeconds(int64_t bytes) const;

  const ClusterConfig& config() const { return cfg_; }

 private:
  static double RingSeconds(int64_t bytes, int ring_size, double gbps, double latency);

  ClusterConfig cfg_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_NETWORK_MODEL_H_
