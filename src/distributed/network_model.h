// Analytic network model of the paper's testbed: nodes with multiple GPUs, NVLink-
// class intra-node bandwidth, 40 Gbps NICs on a leaf-spine fabric (S6.1). Gradient
// synchronization uses hierarchical ring all-reduce: intra-node ring, then a ring
// across nodes. Used by the Fig. 10 distributed-throughput simulation; absolute
// constants are configurable, the *shape* (who wins, where communication becomes the
// bottleneck) is what the reproduction preserves.
#ifndef EGERIA_SRC_DISTRIBUTED_NETWORK_MODEL_H_
#define EGERIA_SRC_DISTRIBUTED_NETWORK_MODEL_H_

#include <cstdint>

namespace egeria {

struct ClusterConfig {
  int num_nodes = 1;
  int gpus_per_node = 2;
  double intra_node_gbps = 128.0;  // NVLink-class
  double inter_node_gbps = 40.0;   // paper's CX-5 NICs
  double link_latency_s = 20e-6;

  int World() const { return num_nodes * gpus_per_node; }
};

class NetworkModel {
 public:
  explicit NetworkModel(const ClusterConfig& cfg) : cfg_(cfg) {}

  // Hierarchical ring all-reduce latency for `bytes` of gradient payload:
  // ReduceScatterSeconds + AllGatherSeconds.
  double AllReduceSeconds(int64_t bytes) const;

  // The two ring halves individually. Under ZeRO-1 sharding the halves carry
  // different tensors (gradients down, updated parameters back) and bracket the
  // owner's optimizer step, so schedulers can place them separately; each costs
  // (n-1)/n of the payload per link with n-1 latency hops per ring level.
  double ReduceScatterSeconds(int64_t bytes) const;
  double AllGatherSeconds(int64_t bytes) const;

  const ClusterConfig& config() const { return cfg_; }

 private:
  // One ring phase (reduce-scatter or all-gather): (n-1)/n bandwidth term plus
  // n-1 latency hops.
  static double RingPhaseSeconds(int64_t bytes, int ring_size, double gbps,
                                 double latency);

  ClusterConfig cfg_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_NETWORK_MODEL_H_
