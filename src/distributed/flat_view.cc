#include "src/distributed/flat_view.h"

#include <algorithm>
#include <cstring>

#include "src/util/logging.h"

namespace egeria {

FlatParamView::FlatParamView(const std::vector<Parameter*>& params, Field field) {
  spans_.reserve(params.size());
  for (Parameter* p : params) {
    Tensor& t = field == Field::kGrad ? p->grad : p->value;
    const int64_t n = t.NumEl();
    if (n == 0) {
      continue;
    }
    spans_.push_back({t.Data(), total_, n});
    total_ += n;
  }
}

size_t FlatParamView::FindSpan(int64_t off) const {
  // First span whose end is past `off`.
  size_t lo = 0;
  size_t hi = spans_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (spans_[mid].begin + spans_[mid].len <= off) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void FlatParamView::CopyOut(int64_t begin, int64_t end, float* dst) const {
  EGERIA_CHECK(begin >= 0 && begin <= end && end <= total_);
  ForEachSegment(begin, end, [&](const float* p, int64_t off, int64_t n) {
    std::memcpy(dst + (off - begin), p, static_cast<size_t>(n) * sizeof(float));
  });
}

void FlatParamView::CopyIn(int64_t begin, int64_t end, const float* src) {
  EGERIA_CHECK(begin >= 0 && begin <= end && end <= total_);
  ForEachSegment(begin, end, [&](float* p, int64_t off, int64_t n) {
    std::memcpy(p, src + (off - begin), static_cast<size_t>(n) * sizeof(float));
  });
}

void FlatParamView::AddTo(int64_t begin, int64_t end, float* acc) const {
  EGERIA_CHECK(begin >= 0 && begin <= end && end <= total_);
  ForEachSegment(begin, end, [&](const float* p, int64_t off, int64_t n) {
    float* a = acc + (off - begin);
    for (int64_t i = 0; i < n; ++i) {
      a[i] += p[i];
    }
  });
}

}  // namespace egeria
