#include "src/distributed/network_model.h"

namespace egeria {

double NetworkModel::RingSeconds(int64_t bytes, int ring_size, double gbps,
                                 double latency) {
  if (ring_size <= 1 || bytes <= 0) {
    return 0.0;
  }
  const double n = static_cast<double>(ring_size);
  const double bw_bytes_per_s = gbps * 1e9 / 8.0;
  // Reduce-scatter + all-gather: 2(n-1)/n of the payload crosses each link, with
  // 2(n-1) latency hops.
  return 2.0 * (n - 1.0) / n * static_cast<double>(bytes) / bw_bytes_per_s +
         2.0 * (n - 1.0) * latency;
}

double NetworkModel::AllReduceSeconds(int64_t bytes) const {
  if (cfg_.World() <= 1 || bytes <= 0) {
    return 0.0;
  }
  double total = 0.0;
  // Intra-node ring among local GPUs.
  total += RingSeconds(bytes, cfg_.gpus_per_node, cfg_.intra_node_gbps,
                       cfg_.link_latency_s);
  // Inter-node ring among node leaders (payload already locally reduced).
  total += RingSeconds(bytes, cfg_.num_nodes, cfg_.inter_node_gbps, cfg_.link_latency_s);
  return total;
}

}  // namespace egeria
