#include "src/distributed/network_model.h"

namespace egeria {

double NetworkModel::RingPhaseSeconds(int64_t bytes, int ring_size, double gbps,
                                      double latency) {
  if (ring_size <= 1 || bytes <= 0) {
    return 0.0;
  }
  const double n = static_cast<double>(ring_size);
  const double bw_bytes_per_s = gbps * 1e9 / 8.0;
  // One ring phase: (n-1)/n of the payload crosses each link, n-1 latency hops.
  return (n - 1.0) / n * static_cast<double>(bytes) / bw_bytes_per_s +
         (n - 1.0) * latency;
}

double NetworkModel::ReduceScatterSeconds(int64_t bytes) const {
  if (cfg_.World() <= 1 || bytes <= 0) {
    return 0.0;
  }
  // Intra-node ring among local GPUs, then an inter-node ring among node
  // leaders (payload already locally reduced).
  return RingPhaseSeconds(bytes, cfg_.gpus_per_node, cfg_.intra_node_gbps,
                          cfg_.link_latency_s) +
         RingPhaseSeconds(bytes, cfg_.num_nodes, cfg_.inter_node_gbps,
                          cfg_.link_latency_s);
}

double NetworkModel::AllGatherSeconds(int64_t bytes) const {
  // Symmetric to the reduce-scatter half (same payload, opposite direction).
  return ReduceScatterSeconds(bytes);
}

double NetworkModel::AllReduceSeconds(int64_t bytes) const {
  return ReduceScatterSeconds(bytes) + AllGatherSeconds(bytes);
}

}  // namespace egeria
