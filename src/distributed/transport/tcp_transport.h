// TCP socket Transport: each rank may live in its own OS process.
//
// Rendezvous (no fixed ports, so parallel CI jobs never collide):
//   1. Every rank binds a listener on 127.0.0.1 port 0 (kernel-chosen
//      ephemeral port).
//   2. Rank 0 publishes its listener port by atomically writing
//      "host port\n" to `rendezvous_file` (tmp + rename).
//   3. Ranks 1..W-1 poll the file, then connect-retry to rank 0 and send a
//      JOIN hello carrying their own listener port. These W-1 sockets persist
//      as the control plane (Barrier / Broadcast, star through rank 0).
//   4. Rank 0 replies to every joined rank with the full rank->port map.
//   5. Each rank connects to ring-next's listener (RING hello) and accepts
//      one connection from ring-prev, completing the data ring.
//
// Wire format: every message is a little-endian uint32 length prefix followed
// by that many payload bytes. RingExchange pumps its send (to next) and recv
// (from prev) sockets in one poll loop, so the full-duplex contract holds even
// when both directions exceed kernel socket buffers. TCP_NODELAY is set on all
// links (collective steps are latency-bound small frames).
//
// Every blocking operation carries a deadline; on expiry the endpoint fails a
// hard CHECK (the process exits nonzero and the launcher reports which rank
// gave up, instead of the world hanging forever).
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_

#include <memory>
#include <string>

#include "src/distributed/transport/transport.h"

namespace egeria {

struct TcpTransportOptions {
  int rank = 0;
  int world = 1;
  // File through which rank 0 publishes its ephemeral rendezvous port. Must
  // name a writable location shared by all ranks (same machine) and not exist
  // with stale contents (the launcher places it in a fresh temp dir).
  std::string rendezvous_file;
  // Deadline for the whole rendezvous + ring wiring phase.
  double connect_timeout_s = 30.0;
  // Per-collective deadline. EGERIA_TCP_TIMEOUT_S overrides when set.
  double io_timeout_s = 120.0;
};

// Blocks until the full world is wired (all ranks must construct their
// endpoints concurrently). Aborts with a diagnostic on timeout.
std::unique_ptr<Transport> MakeTcpTransport(const TcpTransportOptions& options);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_
