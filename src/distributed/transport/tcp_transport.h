// TCP socket Transport: each rank may live in its own OS process.
//
// Rendezvous (no fixed ports, so parallel CI jobs never collide):
//   1. Every rank binds a listener on 127.0.0.1 port 0 (kernel-chosen
//      ephemeral port).
//   2. Rank 0 publishes its listener port by atomically writing
//      "host port\n" to `rendezvous_file` (tmp + rename).
//   3. Ranks 1..W-1 poll the file, then connect-retry to rank 0 and send a
//      JOIN hello carrying their own listener port. These W-1 sockets persist
//      as the control plane (Barrier / Broadcast, star through rank 0).
//   4. Rank 0 replies to every joined rank with the full rank->port map.
//   5. Each rank connects to ring-next's listener (RING hello) and accepts
//      one connection from ring-prev, completing the data ring.
//   6. With the heartbeat enabled, each rank additionally connects a
//      dedicated HB link to rank 0 (HB hello) for the failure detector.
//
// Wire format: every message is a little-endian uint32 length prefix followed
// by that many payload bytes. RingExchange pumps its send (to next) and recv
// (from prev) sockets in one poll loop, so the full-duplex contract holds even
// when both directions exceed kernel socket buffers. TCP_NODELAY is set on all
// links (collective steps are latency-bound small frames).
//
// Failure model (see src/distributed/README.md "Failure model"): every
// steady-state collective returns a TransportStatus instead of aborting. A
// closed link is kPeerClosed, an expired per-collective deadline is kTimeout,
// a frame-size desync is kSequence. With heartbeat_interval_s > 0, rank 0
// runs a failure detector over the HB links: every rank beats twice per
// interval carrying its collective-progress counters, so a rank that stops
// making progress between collectives (wedged process, SIGSTOP, test-injected
// hang) is detected within ~2x the interval — far sooner than the coarse
// io_timeout_s deadline — and rank 0 broadcasts ABORT so every survivor's
// in-flight collective returns kAborted promptly and the world exits through
// the clean (no torn checkpoint) path. Construction-time wiring failures
// remain fatal CHECKs: there is nothing to recover yet.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_

#include <memory>
#include <string>

#include "src/distributed/transport/transport.h"

namespace egeria {

struct TcpTransportOptions {
  int rank = 0;
  int world = 1;
  // File through which rank 0 publishes its ephemeral rendezvous port. Must
  // name a writable location shared by all ranks (same machine) and not exist
  // with stale contents (the launcher places it in a fresh temp dir).
  std::string rendezvous_file;
  // Deadline for the whole rendezvous + ring wiring phase.
  double connect_timeout_s = 30.0;
  // Per-collective deadline. EGERIA_TCP_TIMEOUT_S overrides when set.
  double io_timeout_s = 120.0;
  // Heartbeat failure detector period; 0 disables (default — in-process
  // harnesses and benches don't want extra threads). EGERIA_HB_INTERVAL_S
  // overrides when set. Every rank of a world MUST agree on whether the
  // heartbeat is enabled: the setting changes the wiring handshake.
  // egeria_worker enables it by default (--hb-interval).
  double heartbeat_interval_s = 0.0;
  // Native frame integrity: every ring/broadcast frame carries the same
  // 8-byte [seq][kind][src] header + 8-byte FrameDigest64 trailer the
  // IntegrityTransport decorator emits (bit-identical wire format — the two
  // implementations interoperate within one world), but the hashing is
  // interleaved with the socket pump in bounded chunks — the sender hashes
  // just ahead of each gather-write so the digest trailer rides in the same
  // sendmsg as the last payload bytes, and the receiver hashes each chunk as
  // it arrives — so the digest work overlaps the wire and adds no blocking
  // boundaries. That is what keeps the integrity tax on the allreduce path
  // under the 2% budget; the decorator's whole-frame staging copies cost far
  // more on large frames and the decorator is kept only for inproc worlds
  // and for fault-injection stacks (the injector must sit BELOW the
  // checksum, which native verification cannot express). Every rank of a
  // world must agree on this setting: it changes the wire format.
  bool frame_integrity = false;
};

// Blocks until the full world is wired (all ranks must construct their
// endpoints concurrently). Aborts with a diagnostic on wiring timeout.
std::unique_ptr<Transport> MakeTcpTransport(const TcpTransportOptions& options);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_TCP_TRANSPORT_H_
