#include "src/distributed/transport/inproc_transport.h"

#include <cstring>

#include "src/util/logging.h"

namespace egeria {

void InprocTransportGroup::Shared::Abort(const TransportStatus& reason) {
  {
    std::lock_guard<std::mutex> lock(abort_mutex);
    if (abort_reason.ok()) {
      abort_reason = reason.ok()
                         ? TransportStatus::Error(TransportError::kAborted,
                                                  "inproc group aborted")
                         : reason;
    }
  }
  barrier.Abort();
}

TransportStatus InprocTransportGroup::Shared::AbortedStatus() {
  std::lock_guard<std::mutex> lock(abort_mutex);
  return abort_reason.ok() ? TransportStatus::Error(TransportError::kAborted,
                                                    "inproc group aborted")
                           : abort_reason;
}

class InprocTransportGroup::Endpoint : public Transport {
 public:
  Endpoint(Shared* shared, int rank) : shared_(shared), rank_(rank) {}

  int Rank() const override { return rank_; }
  int World() const override { return shared_->world; }

  TransportStatus RingExchange(const void* send_buf, int64_t send_bytes,
                               void* recv_buf, int64_t recv_bytes) override {
    EGERIA_CHECK(send_bytes >= 0 && recv_bytes >= 0);
    const int world = shared_->world;
    if (world == 1) {
      // Self-loop: the ring degenerates to a copy.
      if (send_bytes != recv_bytes) {
        return SizeMismatch(send_bytes, recv_bytes);
      }
      std::memcpy(recv_buf, send_buf, static_cast<size_t>(send_bytes));
      return TransportStatus::Ok();
    }
    auto& mine = shared_->outbox[static_cast<size_t>(rank_)];
    mine.resize(static_cast<size_t>(send_bytes));
    if (send_bytes > 0) {
      std::memcpy(mine.data(), send_buf, static_cast<size_t>(send_bytes));
    }
    if (!shared_->barrier.Wait()) {  // Every outbox holds this step's message.
      return shared_->AbortedStatus();
    }
    const auto& prev =
        shared_->outbox[static_cast<size_t>((rank_ - 1 + world) % world)];
    if (static_cast<int64_t>(prev.size()) != recv_bytes) {
      // Schedule desync (a truncated/mis-sized frame from the predecessor).
      // Poison the group: the peers would otherwise block at the next barrier
      // waiting for this rank.
      const TransportStatus st =
          SizeMismatch(static_cast<int64_t>(prev.size()), recv_bytes);
      shared_->Abort(st);
      return st;
    }
    if (recv_bytes > 0) {
      std::memcpy(recv_buf, prev.data(), static_cast<size_t>(recv_bytes));
    }
    if (!shared_->barrier.Wait()) {  // Every inbox consumed; outboxes reusable.
      return shared_->AbortedStatus();
    }
    return TransportStatus::Ok();
  }

  TransportStatus Barrier() override {
    if (shared_->world > 1 && !shared_->barrier.Wait()) {
      return shared_->AbortedStatus();
    }
    return TransportStatus::Ok();
  }

  TransportStatus Broadcast(const void* data, int64_t bytes,
                            std::vector<uint8_t>* out) override {
    if (shared_->world == 1) {
      const auto* p = static_cast<const uint8_t*>(data);
      out->assign(p, p + bytes);
      return TransportStatus::Ok();
    }
    if (rank_ == 0) {
      EGERIA_CHECK(bytes >= 0 && (bytes == 0 || data != nullptr));
      const auto* p = static_cast<const uint8_t*>(data);
      shared_->bcast.assign(p, p + bytes);
    }
    if (!shared_->barrier.Wait()) {  // Message posted.
      return shared_->AbortedStatus();
    }
    *out = shared_->bcast;
    if (!shared_->barrier.Wait()) {  // All copies taken; slot reusable.
      return shared_->AbortedStatus();
    }
    return TransportStatus::Ok();
  }

  void LocalAbort(const TransportStatus& reason) override {
    shared_->Abort(reason);
  }

 private:
  TransportStatus SizeMismatch(int64_t got, int64_t want) const {
    return TransportStatus::Error(
        TransportError::kSequence,
        "rank " + std::to_string(rank_) + ": ring frame size mismatch (got " +
            std::to_string(got) + " bytes, expected " + std::to_string(want) +
            "; truncated frame or schedule desync)");
  }

  Shared* shared_;
  int rank_;
};

InprocTransportGroup::InprocTransportGroup(int world) : shared_(world) {
  EGERIA_CHECK(world >= 1);
  for (int r = 0; r < world; ++r) {
    endpoints_.push_back(std::make_unique<Endpoint>(&shared_, r));
  }
}

InprocTransportGroup::~InprocTransportGroup() = default;

Transport& InprocTransportGroup::Get(int rank) {
  EGERIA_CHECK(rank >= 0 && rank < shared_.world);
  return *endpoints_[static_cast<size_t>(rank)];
}

}  // namespace egeria
