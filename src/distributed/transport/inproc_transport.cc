#include "src/distributed/transport/inproc_transport.h"

#include <cstring>

#include "src/util/logging.h"

namespace egeria {

class InprocTransportGroup::Endpoint : public Transport {
 public:
  Endpoint(Shared* shared, int rank) : shared_(shared), rank_(rank) {}

  int Rank() const override { return rank_; }
  int World() const override { return shared_->world; }

  void RingExchange(const void* send_buf, int64_t send_bytes, void* recv_buf,
                    int64_t recv_bytes) override {
    EGERIA_CHECK(send_bytes >= 0 && recv_bytes >= 0);
    const int world = shared_->world;
    if (world == 1) {
      // Self-loop: the ring degenerates to a copy.
      EGERIA_CHECK_MSG(send_bytes == recv_bytes, "self-exchange size mismatch");
      std::memcpy(recv_buf, send_buf, static_cast<size_t>(send_bytes));
      return;
    }
    auto& mine = shared_->outbox[static_cast<size_t>(rank_)];
    mine.resize(static_cast<size_t>(send_bytes));
    if (send_bytes > 0) {
      std::memcpy(mine.data(), send_buf, static_cast<size_t>(send_bytes));
    }
    shared_->barrier.Wait();  // Every outbox holds this step's message.
    const auto& prev =
        shared_->outbox[static_cast<size_t>((rank_ - 1 + world) % world)];
    EGERIA_CHECK_MSG(static_cast<int64_t>(prev.size()) == recv_bytes,
                     "ring frame size mismatch");
    if (recv_bytes > 0) {
      std::memcpy(recv_buf, prev.data(), static_cast<size_t>(recv_bytes));
    }
    shared_->barrier.Wait();  // Every inbox consumed; outboxes reusable.
  }

  void Barrier() override {
    if (shared_->world > 1) {
      shared_->barrier.Wait();
    }
  }

  std::vector<uint8_t> Broadcast(const void* data, int64_t bytes) override {
    if (shared_->world == 1) {
      const auto* p = static_cast<const uint8_t*>(data);
      return std::vector<uint8_t>(p, p + bytes);
    }
    if (rank_ == 0) {
      EGERIA_CHECK(bytes >= 0 && (bytes == 0 || data != nullptr));
      const auto* p = static_cast<const uint8_t*>(data);
      shared_->bcast.assign(p, p + bytes);
    }
    shared_->barrier.Wait();  // Message posted.
    std::vector<uint8_t> out = shared_->bcast;
    shared_->barrier.Wait();  // All copies taken; slot reusable.
    return out;
  }

 private:
  Shared* shared_;
  int rank_;
};

InprocTransportGroup::InprocTransportGroup(int world) : shared_(world) {
  EGERIA_CHECK(world >= 1);
  for (int r = 0; r < world; ++r) {
    endpoints_.push_back(std::make_unique<Endpoint>(&shared_, r));
  }
}

InprocTransportGroup::~InprocTransportGroup() = default;

Transport& InprocTransportGroup::Get(int rank) {
  EGERIA_CHECK(rank >= 0 && rank < shared_.world);
  return *endpoints_[static_cast<size_t>(rank)];
}

}  // namespace egeria
