#include "src/distributed/transport/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/util/logging.h"

namespace egeria {
namespace {

constexpr const char* kValidSpec =
    "valid forms: hang:I, exit:I, corrupt:I, truncate:I, delay:I, drop:I, "
    "dup:I (I = 1-based training iteration; <=0 for hang/exit fires before "
    "wiring), each optionally rank-qualified as kind@R:I so the same spec "
    "given to every rank faults only rank R, or a single seed:S";

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  size_t i = s[0] == '-' ? 1 : 0;
  if (i >= s.size()) {
    return false;
  }
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return false;
    }
    v = v * 10 + (s[i] - '0');
  }
  *out = s[0] == '-' ? -v : v;
  return true;
}

bool KindFromName(const std::string& name, FaultKind* out) {
  if (name == "corrupt") {
    *out = FaultKind::kCorrupt;
  } else if (name == "truncate") {
    *out = FaultKind::kTruncate;
  } else if (name == "delay") {
    *out = FaultKind::kDelay;
  } else if (name == "drop") {
    *out = FaultKind::kDrop;
  } else if (name == "dup") {
    *out = FaultKind::kDup;
  } else if (name == "hang") {
    *out = FaultKind::kHang;
  } else if (name == "exit") {
    *out = FaultKind::kExit;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDup:
      return "dup";
    case FaultKind::kHang:
      return "hang";
    case FaultKind::kExit:
      return "exit";
  }
  return "?";
}

bool FaultPlan::Parse(const std::string& spec, int world, int rank,
                      FaultPlan* out, std::string* error) {
  out->events.clear();
  if (spec.empty()) {
    return true;
  }
  std::vector<std::string> entries;
  size_t start = 0;
  for (;;) {
    const size_t comma = spec.find(',', start);
    entries.push_back(spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  for (const std::string& entry : entries) {
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      *error = "malformed fault entry '" + entry + "' (" + kValidSpec + ")";
      return false;
    }
    std::string name = entry.substr(0, colon);
    const std::string arg = entry.substr(colon + 1);
    // Optional rank qualifier: "delay@1:3" faults only rank 1. Every rank of
    // a world gets the same command line (scripts/launch_dist.sh cannot vary
    // per-rank args), so single-rank scenarios are expressed in the spec.
    int target_rank = -1;
    const size_t at = name.find('@');
    if (at != std::string::npos) {
      int64_t r = -1;
      if (!ParseInt64(name.substr(at + 1), &r) || r < 0 || r >= world) {
        *error = "bad rank qualifier in fault entry '" + entry +
                 "' (rank must be in [0," + std::to_string(world) + ")); " +
                 kValidSpec;
        return false;
      }
      target_rank = static_cast<int>(r);
      name = name.substr(0, at);
    }
    if (name == "seed") {
      if (target_rank >= 0) {
        *error = "seed:S already derives its own target rank; '" + entry +
                 "' cannot carry @rank";
        return false;
      }
      int64_t seed = 0;
      if (!ParseInt64(arg, &seed) || seed < 0) {
        *error = "malformed fault seed '" + arg + "' (" + kValidSpec + ")";
        return false;
      }
      if (entries.size() != 1) {
        *error = "seed:S cannot be combined with explicit fault entries";
        return false;
      }
      *out = FromSeed(static_cast<uint64_t>(seed), world, rank);
      return true;
    }
    FaultEvent ev;
    if (!KindFromName(name, &ev.kind)) {
      *error = "unknown fault kind '" + name + "' (" + kValidSpec + ")";
      return false;
    }
    if (!ParseInt64(arg, &ev.iter)) {
      *error = "malformed fault iteration '" + arg + "' in '" + entry + "' (" +
               kValidSpec + ")";
      return false;
    }
    if (ev.iter <= 0 && ev.kind != FaultKind::kHang &&
        ev.kind != FaultKind::kExit) {
      *error = "fault '" + entry + "' needs a positive iteration (" +
               kValidSpec + ")";
      return false;
    }
    // A rank-qualified entry still has to be VALID on every rank (above), but
    // only materializes as an event on the rank it names.
    if (target_rank >= 0 && target_rank != rank) {
      continue;
    }
    out->events.push_back(ev);
  }
  return true;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, int world, int rank) {
  EGERIA_CHECK(world >= 1 && rank >= 0 && rank < world);
  // hash of the raw seed first, so adjacent seeds produce unrelated scenarios
  uint64_t state = seed;
  const uint64_t r0 = SplitMix64(&state);
  const uint64_t r1 = SplitMix64(&state);
  const uint64_t r2 = SplitMix64(&state);
  static constexpr FaultKind kKinds[6] = {
      FaultKind::kCorrupt, FaultKind::kTruncate, FaultKind::kDelay,
      FaultKind::kDrop,    FaultKind::kHang,     FaultKind::kExit,
  };
  FaultPlan plan;
  const int target = static_cast<int>(r1 % static_cast<uint64_t>(world));
  if (target == rank) {
    FaultEvent ev;
    ev.kind = kKinds[r0 % 6];
    ev.iter = 2 + static_cast<int64_t>(r2 % 10);
    plan.events.push_back(ev);
  }
  return plan;
}

FaultInjectingTransport::FaultInjectingTransport(Transport* base,
                                                 FaultPlan plan)
    : base_(base), plan_(std::move(plan)) {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultKind::kDup) {
      capture_frames_ = true;
    }
  }
}

void FaultInjectingTransport::BeginIteration(int64_t iter) {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.iter != iter) {
      continue;
    }
    if (ev.kind == FaultKind::kHang || ev.kind == FaultKind::kExit) {
      continue;  // process-level; the worker's hook executes these
    }
    EGERIA_LOG(kWarn) << "fault injection: arming " << FaultKindName(ev.kind)
                      << " at iteration " << iter << " on rank "
                      << base_->Rank();
    armed_.push_back(ev);
  }
}

bool FaultInjectingTransport::TakeArmed(FaultKind kind) {
  for (size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].kind == kind) {
      armed_.erase(armed_.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

TransportStatus FaultInjectingTransport::FireGenericFaults() {
  for (size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].kind == FaultKind::kDelay) {
      const int ms = armed_[i].delay_ms;
      armed_.erase(armed_.begin() + static_cast<long>(i));
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      break;  // at most one delay per collective
    }
  }
  if (TakeArmed(FaultKind::kDrop)) {
    const TransportStatus st = TransportStatus::Error(
        TransportError::kPeerClosed,
        "rank " + std::to_string(base_->Rank()) +
            ": fault injection dropped the connection");
    base_->LocalAbort(st);
    if (failed_.ok()) {
      failed_ = st;
    }
    return st;
  }
  return TransportStatus::Ok();
}

TransportStatus FaultInjectingTransport::RingExchange(const void* send_buf,
                                                      int64_t send_bytes,
                                                      void* recv_buf,
                                                      int64_t recv_bytes) {
  if (!failed_.ok()) {
    return failed_;
  }
  TransportStatus st = FireGenericFaults();
  if (!st.ok()) {
    return st;
  }
  const auto* send_ptr = static_cast<const uint8_t*>(send_buf);
  int64_t wire_bytes = send_bytes;
  if (TakeArmed(FaultKind::kCorrupt) && send_bytes > 0) {
    scratch_.assign(send_ptr, send_ptr + send_bytes);
    // Flip a byte past the 8-byte integrity header (when framing is present
    // it lands in the payload or the digest trailer) so the corruption is the
    // checksum's to catch, not a header parse error.
    const int64_t off =
        send_bytes > 17 ? 16 + (send_bytes - 16) / 2 : send_bytes - 1;
    scratch_[static_cast<size_t>(off)] ^= 0x40;
    send_ptr = scratch_.data();
  } else if (TakeArmed(FaultKind::kTruncate)) {
    wire_bytes = send_bytes / 2;
  } else if (TakeArmed(FaultKind::kDup) && !last_frame_.empty()) {
    // Replay the previous frame, padded/cut to the current announced size so
    // the failure surfaces as a stale sequence number, not a size desync.
    scratch_.assign(static_cast<size_t>(send_bytes), 0);
    std::memcpy(scratch_.data(), last_frame_.data(),
                std::min(static_cast<size_t>(send_bytes), last_frame_.size()));
    send_ptr = scratch_.data();
  }
  if (capture_frames_ && send_ptr != scratch_.data() && send_bytes > 0) {
    last_frame_.assign(send_ptr, send_ptr + send_bytes);
  }
  st = base_->RingExchange(send_ptr, wire_bytes, recv_buf, recv_bytes);
  if (!st.ok() && failed_.ok()) {
    failed_ = st;
  }
  return st;
}

TransportStatus FaultInjectingTransport::Barrier() {
  if (!failed_.ok()) {
    return failed_;
  }
  TransportStatus st = FireGenericFaults();
  if (!st.ok()) {
    return st;
  }
  st = base_->Barrier();
  if (!st.ok() && failed_.ok()) {
    failed_ = st;
  }
  return st;
}

TransportStatus FaultInjectingTransport::Broadcast(const void* data,
                                                   int64_t bytes,
                                                   std::vector<uint8_t>* out) {
  if (!failed_.ok()) {
    return failed_;
  }
  TransportStatus st = FireGenericFaults();
  if (!st.ok()) {
    return st;
  }
  st = base_->Broadcast(data, bytes, out);
  if (!st.ok() && failed_.ok()) {
    failed_ = st;
  }
  return st;
}

}  // namespace egeria
