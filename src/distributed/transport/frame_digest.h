// Fast frame checksum for the transport integrity layer.
//
// Scalar FNV-1a (src/tensor/serialize.h) is one xor+multiply per BYTE on a
// serial dependency chain — fine for checkpoint files, but hashing every
// collective frame with it would cost more than the wire transfer it protects
// on localhost TCP. FrameDigest64 instead runs EIGHT independent lanes, one
// per 8-byte word of each 64-byte block, with a rotate-and-add lane update
//
//   lane = rotl(lane, 29) + word
//
// and combines the lane accumulators (plus the tail bytes and the length)
// with the plain Fnv1a64. The rotate-add update is a bijection of the lane
// state for any fixed input word, so a corrupted word injects a lane
// difference that provably survives every later block; the nonlinear FNV
// combine then avalanches it into the final value. Unlike a multiply-based
// lane mix (64-bit vector multiplies are slow or emulated on most x86), this
// compiles to one rotate plus one add per lane — with -march=native gcc
// vectorizes the whole 8-lane block update into two vector instructions —
// and measures ~5x the throughput of the previous FNV-lane mix on the same
// host, which is what keeps checksumming cheaper than the 2% frame-integrity
// budget on the fig10 TCP bench (bench/integrity_overhead.cc).
//
// The digest is defined over the frame's byte content in host order; like all
// transport payloads, endpoints must share an architecture.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_FRAME_DIGEST_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_FRAME_DIGEST_H_

#include <cstdint>
#include <cstring>

#include "src/tensor/serialize.h"

namespace egeria {

inline uint64_t FrameDigestRotl(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t FrameDigest64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t lane[8];
  for (int i = 0; i < 8; ++i) {
    // Distinct offsets so a block of identical words still feeds each lane a
    // different stream.
    lane[i] = kFnv64Offset + static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
  }
  size_t off = 0;
  for (; off + 64 <= len; off += 64) {
    for (int i = 0; i < 8; ++i) {
      uint64_t w;
      std::memcpy(&w, p + off + 8 * static_cast<size_t>(i), sizeof(w));
      lane[i] = FrameDigestRotl(lane[i], 29) + w;
    }
  }
  uint64_t acc = Fnv1a64(lane, sizeof(lane));
  if (off < len) {
    acc = Fnv1a64(p + off, len - off, acc);
  }
  const uint64_t n = static_cast<uint64_t>(len);
  return Fnv1a64(&n, sizeof(n), acc);
}

// Incremental FrameDigest64: feed bytes in any chunking and Finish() returns
// exactly what FrameDigest64 would return over the concatenation. This is what
// lets the TCP transport hash frames inside its socket pump — a chunk is
// hashed right after send()/recv() accepts it, so the digest work overlaps the
// wire instead of adding a serial whole-buffer pass before/after it.
class FrameDigestStream {
 public:
  FrameDigestStream() { Reset(); }

  void Reset() {
    for (int i = 0; i < 8; ++i) {
      lane_[i] = kFnv64Offset + static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
    }
    tail_len_ = 0;
    total_ = 0;
  }

  void Update(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    total_ += len;
    if (tail_len_ > 0) {
      const size_t take = len < 64 - tail_len_ ? len : 64 - tail_len_;
      std::memcpy(tail_ + tail_len_, p, take);
      tail_len_ += take;
      p += take;
      len -= take;
      if (tail_len_ < 64) {
        return;
      }
      Block(tail_);
      tail_len_ = 0;
    }
    for (; len >= 64; p += 64, len -= 64) {
      Block(p);
    }
    if (len > 0) {
      std::memcpy(tail_, p, len);
      tail_len_ = len;
    }
  }

  uint64_t Finish() const {
    uint64_t acc = Fnv1a64(lane_, sizeof(lane_));
    if (tail_len_ > 0) {
      acc = Fnv1a64(tail_, tail_len_, acc);
    }
    const uint64_t n = total_;
    return Fnv1a64(&n, sizeof(n), acc);
  }

 private:
  void Block(const uint8_t* p) {
    for (int i = 0; i < 8; ++i) {
      uint64_t w;
      std::memcpy(&w, p + 8 * static_cast<size_t>(i), sizeof(w));
      lane_[i] = FrameDigestRotl(lane_[i], 29) + w;
    }
  }

  uint64_t lane_[8];
  uint8_t tail_[64];
  size_t tail_len_ = 0;
  uint64_t total_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_FRAME_DIGEST_H_
