#include "src/distributed/transport/integrity_transport.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "src/distributed/transport/frame_digest.h"
#include "src/util/logging.h"

namespace egeria {
namespace {

constexpr uint16_t kKindRing = kIntegrityKindRing;
constexpr uint16_t kKindBcast = kIntegrityKindBcast;

void PutU32(uint32_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xFFU);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xFFU);
  out[2] = static_cast<uint8_t>((v >> 16) & 0xFFU);
  out[3] = static_cast<uint8_t>((v >> 24) & 0xFFU);
}

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) | (static_cast<uint32_t>(in[3]) << 24);
}

void PutU16(uint16_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xFFU);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xFFU);
}

uint16_t GetU16(const uint8_t* in) {
  return static_cast<uint16_t>(static_cast<uint16_t>(in[0]) |
                               (static_cast<uint16_t>(in[1]) << 8));
}

void PutU64(uint64_t v, uint8_t* out) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFULL), out);
  PutU32(static_cast<uint32_t>(v >> 32), out + 4);
}

uint64_t GetU64(const uint8_t* in) {
  return static_cast<uint64_t>(GetU32(in)) |
         (static_cast<uint64_t>(GetU32(in + 4)) << 32);
}

// Fills a complete frame around `payload`: 8-byte [seq][kind][src] header,
// payload bytes, 8-byte digest trailer. `frame` must hold
// kIntegrityOverheadBytes + payload_bytes.
void WriteFrame(uint32_t seq, uint16_t kind, uint16_t src_rank,
                const void* payload, size_t payload_bytes, uint8_t* frame) {
  PutU32(seq, frame);
  PutU16(kind, frame + 4);
  PutU16(src_rank, frame + 6);
  if (payload_bytes > 0) {
    std::memcpy(frame + kIntegrityHeaderBytes, payload, payload_bytes);
  }
  PutU64(FrameDigest64(payload, payload_bytes),
         frame + kIntegrityHeaderBytes + payload_bytes);
}

std::string Hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

TransportStatus IntegrityTransport::FailVerify(TransportStatus st) {
  if (failed_.ok()) {
    failed_ = st;
  }
  // Poison the backend so peers unwind with a typed error rather than waiting
  // on a rank that will never complete another collective.
  base_->LocalAbort(st);
  return st;
}

TransportStatus IntegrityTransport::RingExchange(const void* send_buf,
                                                 int64_t send_bytes,
                                                 void* recv_buf,
                                                 int64_t recv_bytes) {
  if (!failed_.ok()) {
    return failed_;
  }
  EGERIA_CHECK(send_bytes >= 0 && recv_bytes >= 0);
  const uint16_t src = static_cast<uint16_t>(Rank());
  const int prev_rank = (Rank() - 1 + World()) % World();
  send_frame_.resize(static_cast<size_t>(kIntegrityOverheadBytes + send_bytes));
  WriteFrame(ring_send_seq_, kKindRing, src, send_buf,
             static_cast<size_t>(send_bytes), send_frame_.data());
  ++ring_send_seq_;
  recv_frame_.resize(static_cast<size_t>(kIntegrityOverheadBytes + recv_bytes));
  TransportStatus st = base_->RingExchange(
      send_frame_.data(), static_cast<int64_t>(send_frame_.size()),
      recv_frame_.data(), static_cast<int64_t>(recv_frame_.size()));
  if (!st.ok()) {
    if (failed_.ok()) {
      failed_ = st;
    }
    return st;
  }
  const uint8_t* hdr = recv_frame_.data();
  const uint32_t seq = GetU32(hdr);
  const uint16_t kind = GetU16(hdr + 4);
  const uint16_t sender = GetU16(hdr + 6);
  const uint64_t claimed =
      GetU64(recv_frame_.data() + kIntegrityHeaderBytes + recv_bytes);
  if (kind != kKindRing || sender != static_cast<uint16_t>(prev_rank)) {
    return FailVerify(TransportStatus::Error(
        TransportError::kProtocol,
        "rank " + std::to_string(Rank()) + ": ring frame header invalid (kind " +
            std::to_string(kind) + ", sender " + std::to_string(sender) +
            ", expected ring frame from rank " + std::to_string(prev_rank) +
            ")"));
  }
  if (seq != ring_recv_seq_) {
    return FailVerify(TransportStatus::Error(
        TransportError::kSequence,
        "rank " + std::to_string(Rank()) + ": ring frame sequence mismatch "
            "(got seq " + std::to_string(seq) + ", expected " +
            std::to_string(ring_recv_seq_) +
            "; duplicated, replayed or dropped frame)"));
  }
  ++ring_recv_seq_;
  const uint64_t actual = FrameDigest64(recv_frame_.data() + kIntegrityHeaderBytes,
                                        static_cast<size_t>(recv_bytes));
  if (actual != claimed) {
    return FailVerify(TransportStatus::Error(
        TransportError::kChecksum,
        "rank " + std::to_string(Rank()) + ": ring frame checksum mismatch from "
            "rank " + std::to_string(prev_rank) + " (claimed " + Hex64(claimed) +
            ", computed " + Hex64(actual) + " over " +
            std::to_string(recv_bytes) + " bytes, seq " + std::to_string(seq) +
            "; corrupted in transit)"));
  }
  if (recv_bytes > 0) {
    std::memcpy(recv_buf, recv_frame_.data() + kIntegrityHeaderBytes,
                static_cast<size_t>(recv_bytes));
  }
  return TransportStatus::Ok();
}

TransportStatus IntegrityTransport::Broadcast(const void* data, int64_t bytes,
                                              std::vector<uint8_t>* out) {
  if (!failed_.ok()) {
    return failed_;
  }
  const uint32_t seq = bcast_seq_++;
  if (Rank() == 0) {
    EGERIA_CHECK(bytes >= 0 && (bytes == 0 || data != nullptr));
    send_frame_.resize(static_cast<size_t>(kIntegrityOverheadBytes + bytes));
    WriteFrame(seq, kKindBcast, 0, data, static_cast<size_t>(bytes),
               send_frame_.data());
    TransportStatus st = base_->Broadcast(
        send_frame_.data(), static_cast<int64_t>(send_frame_.size()),
        &recv_frame_);
    if (!st.ok()) {
      if (failed_.ok()) {
        failed_ = st;
      }
      return st;
    }
    const auto* p = static_cast<const uint8_t*>(data);
    out->assign(p, p + bytes);
    return TransportStatus::Ok();
  }
  TransportStatus st = base_->Broadcast(nullptr, 0, &recv_frame_);
  if (!st.ok()) {
    if (failed_.ok()) {
      failed_ = st;
    }
    return st;
  }
  if (static_cast<int64_t>(recv_frame_.size()) < kIntegrityOverheadBytes) {
    return FailVerify(TransportStatus::Error(
        TransportError::kProtocol,
        "rank " + std::to_string(Rank()) + ": broadcast frame short (" +
            std::to_string(recv_frame_.size()) +
            " bytes, need 16 bytes of integrity framing)"));
  }
  const uint8_t* hdr = recv_frame_.data();
  const uint32_t got_seq = GetU32(hdr);
  const uint16_t kind = GetU16(hdr + 4);
  const uint16_t sender = GetU16(hdr + 6);
  const size_t payload =
      recv_frame_.size() - static_cast<size_t>(kIntegrityOverheadBytes);
  const uint64_t claimed =
      GetU64(recv_frame_.data() + kIntegrityHeaderBytes + payload);
  if (kind != kKindBcast || sender != 0) {
    return FailVerify(TransportStatus::Error(
        TransportError::kProtocol,
        "rank " + std::to_string(Rank()) + ": broadcast frame header invalid "
            "(kind " + std::to_string(kind) + ", sender " +
            std::to_string(sender) + ")"));
  }
  if (got_seq != seq) {
    return FailVerify(TransportStatus::Error(
        TransportError::kSequence,
        "rank " + std::to_string(Rank()) + ": broadcast sequence mismatch (got "
            "seq " + std::to_string(got_seq) + ", expected " +
            std::to_string(seq) + ")"));
  }
  const uint64_t actual =
      FrameDigest64(recv_frame_.data() + kIntegrityHeaderBytes, payload);
  if (actual != claimed) {
    return FailVerify(TransportStatus::Error(
        TransportError::kChecksum,
        "rank " + std::to_string(Rank()) + ": broadcast checksum mismatch "
            "(claimed " + Hex64(claimed) + ", computed " + Hex64(actual) +
            " over " + std::to_string(payload) + " bytes, seq " +
            std::to_string(got_seq) + "; corrupted in transit)"));
  }
  out->assign(recv_frame_.begin() + kIntegrityHeaderBytes,
              recv_frame_.end() - kIntegrityTrailerBytes);
  return TransportStatus::Ok();
}

}  // namespace egeria
