// The one W-1-step ring circulation every collective in this repo runs on.
//
// At step s (s = 0..W-2), rank r sends the item of index (start - s) mod W to
// its ring successor while receiving the item of index (start - 1 - s) mod W
// from its predecessor; the payload forwarded at step s>0 is whatever the
// receive buffer holds after step s-1's `consume` (so a consume that folds
// in-place — the reduce-scatter — forwards the folded value, and a consume
// that only copies out — all-gather, shard migration — forwards verbatim).
//
// Reduce-scatter seeds with start = rank-1, all-gather and the reshard
// momentum migration with start = rank; the item-size schedule is any Span
// function all ranks agree on. Keeping the loop here means the index
// arithmetic and the step-(s-1)-recv == step-s-send size invariant live in
// exactly one place.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_RING_SCHEDULE_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_RING_SCHEDULE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/distributed/reduction_contract.h"
#include "src/distributed/transport/transport.h"

namespace egeria {

// span_of(index) -> Span of item `index` (identical on every rank).
// seed(buf, index, span)    fills buf with this rank's local copy of the item.
// consume(buf, index, span) handles the received item; may mutate buf in
//                           place, which is what gets forwarded next step.
// `sent_bytes` (nullable) accumulates the bytes this rank pushed onto its
// ring link. A transport error stops the circulation immediately — no consume
// runs for the failed step — and propagates to the caller.
template <class SpanFn, class SeedFn, class ConsumeFn>
TransportStatus RingCirculate(Transport& transport, int start, SpanFn&& span_of,
                              SeedFn&& seed, ConsumeFn&& consume,
                              int64_t* sent_bytes) {
  const int world = transport.World();
  if (world == 1) {
    return TransportStatus::Ok();
  }
  int64_t max_elems = 0;
  for (int i = 0; i < world; ++i) {
    max_elems = std::max<int64_t>(max_elems, span_of(i).size());
  }
  std::vector<float> send_buf(static_cast<size_t>(max_elems));
  std::vector<float> recv_buf(static_cast<size_t>(max_elems));
  for (int s = 0; s <= world - 2; ++s) {
    const int i_send = RingRank(start - s, world);
    const int i_recv = RingRank(start - 1 - s, world);
    const Span c_send = span_of(i_send);
    const Span c_recv = span_of(i_recv);
    if (s == 0) {
      seed(send_buf.data(), i_send, c_send);
    } else if (c_send.size() > 0) {
      // Step s-1's receive was this very item (index start-s): forward it.
      std::memcpy(send_buf.data(), recv_buf.data(),
                  static_cast<size_t>(c_send.size()) * sizeof(float));
    }
    TransportStatus st = transport.RingExchange(
        send_buf.data(), c_send.bytes(), recv_buf.data(), c_recv.bytes());
    if (!st.ok()) {
      return st;
    }
    consume(recv_buf.data(), i_recv, c_recv);
    if (sent_bytes != nullptr) {
      *sent_bytes += c_send.bytes();
    }
  }
  return TransportStatus::Ok();
}

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_RING_SCHEDULE_H_
