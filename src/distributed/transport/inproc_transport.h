// In-process (shared-memory) Transport: ranks are threads of one process.
//
// This backend reproduces the original thread-backed collectives — per-rank
// mailboxes published across a generation-counting barrier — behind the same
// byte-oriented interface the TCP backend implements, so the ring schedule and
// the contract arithmetic are shared verbatim between the two.
//
// Failure model: collectives here cannot lose or corrupt bytes on their own,
// but a layer above can fail one endpoint (integrity mismatch, injected
// fault, LocalAbort). Because every thread of the group meets at the shared
// barrier, one failed endpoint poisons the barrier so ALL ranks' collectives
// return a typed error promptly — never a deadlocked thread world. The first
// abort reason is preserved and echoed to every rank.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_INPROC_TRANSPORT_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_INPROC_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/distributed/thread_barrier.h"
#include "src/distributed/transport/transport.h"

namespace egeria {

// Owns `world` Transport endpoints sharing one mailbox set. Create the group
// on the coordinating thread, then hand Get(r) to rank r's thread. The group
// must outlive every endpoint use.
class InprocTransportGroup {
 public:
  explicit InprocTransportGroup(int world);
  ~InprocTransportGroup();

  InprocTransportGroup(const InprocTransportGroup&) = delete;
  InprocTransportGroup& operator=(const InprocTransportGroup&) = delete;

  Transport& Get(int rank);

 private:
  class Endpoint;

  struct Shared {
    explicit Shared(int world)
        : world(world), barrier(world), outbox(static_cast<size_t>(world)) {}

    // Poison the group with `reason` (first caller wins) and release every
    // thread blocked at the barrier.
    void Abort(const TransportStatus& reason);
    // The status a rank's collective should return after the group aborted.
    TransportStatus AbortedStatus();

    int world;
    ThreadBarrier barrier;
    std::vector<std::vector<uint8_t>> outbox;  // per-rank in-flight message
    std::vector<uint8_t> bcast;                // rank-0 control message slot
    std::mutex abort_mutex;
    TransportStatus abort_reason;  // valid once barrier.Aborted()
  };

  Shared shared_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_INPROC_TRANSPORT_H_
