#include "src/distributed/transport/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/distributed/transport/frame_digest.h"
#include "src/distributed/transport/integrity_transport.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace egeria {
namespace {

using Clock = std::chrono::steady_clock;
using Deadline = Clock::time_point;

constexpr uint32_t kHelloMagic = 0xE9E41A01U;
constexpr uint32_t kHelloJoin = 1;  // rank -> rank 0, carries listener port
constexpr uint32_t kHelloRing = 2;  // rank -> ring-next, data-plane link
constexpr uint32_t kHelloHb = 3;    // rank -> rank 0, heartbeat link

// A blocked collective re-checks the local abort flag at this cadence, so a
// coordinated abort interrupts it promptly even with a long io deadline.
constexpr int kAbortPollMs = 50;

// Heartbeat records: fixed 13 bytes, [u8 type][u32 a][u32 b][u32 c] LE.
// PING carries (ops_started, ops_completed, 0); BYE and ABORT ignore a/b/c.
// STATS piggybacks the obs layer's per-phase histograms on the same link:
// (phase_id, cumulative milliseconds, observation count), one record per
// phase per beat — the low-frequency control-plane feed rank 0's online
// straggler detector folds (see HbMonitorLoop).
constexpr uint8_t kHbPing = 1;
constexpr uint8_t kHbBye = 2;
constexpr uint8_t kHbAbort = 3;
constexpr uint8_t kHbStats = 4;
constexpr size_t kHbRecordBytes = 13;

// Phase ids for kHbStats, matching the trainer's dist.*_s histograms.
constexpr int kNumHbStatPhases = 5;
constexpr const char* kHbStatPhaseName[kNumHbStatPhases] = {
    "data", "fp", "bp", "opt", "comm_wait"};
constexpr const char* kHbStatPhaseMetric[kNumHbStatPhases] = {
    "dist.data_s", "dist.fp_s", "dist.bp_s", "dist.opt_s", "dist.comm_wait_s"};

// Straggler detection knobs. A phase only qualifies once its slowest rank
// has accumulated kStragglerMinSeconds (tiny absolute skews are noise), the
// median divisor is floored so a near-zero median cannot manufacture an
// infinite skew, and the default max/median threshold can be overridden via
// EGERIA_STRAGGLER_SKEW.
constexpr double kStragglerMinSeconds = 0.2;
constexpr double kStragglerMedianFloorS = 0.05;
constexpr double kStragglerDefaultSkew = 4.0;

double StragglerSkewThreshold() {
  if (const char* env = std::getenv("EGERIA_STRAGGLER_SKEW")) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return kStragglerDefaultSkew;
}

void EncodeU32(uint32_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xFFU);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xFFU);
  out[2] = static_cast<uint8_t>((v >> 16) & 0xFFU);
  out[3] = static_cast<uint8_t>((v >> 24) & 0xFFU);
}

uint32_t DecodeU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) | (static_cast<uint32_t>(in[3]) << 24);
}

void EncodeU16(uint16_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xFFU);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xFFU);
}

uint16_t DecodeU16(const uint8_t* in) {
  return static_cast<uint16_t>(static_cast<uint16_t>(in[0]) |
                               (static_cast<uint16_t>(in[1]) << 8));
}

void EncodeU64(uint64_t v, uint8_t* out) {
  EncodeU32(static_cast<uint32_t>(v & 0xFFFFFFFFULL), out);
  EncodeU32(static_cast<uint32_t>(v >> 32), out + 4);
}

uint64_t DecodeU64(const uint8_t* in) {
  return static_cast<uint64_t>(DecodeU32(in)) |
         (static_cast<uint64_t>(DecodeU32(in + 4)) << 32);
}

std::string Hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

int RemainingMs(Deadline deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
          .count();
  if (left <= 0) {
    return 0;
  }
  return static_cast<int>(left > 60'000 ? 60'000 : left);
}

bool Expired(Deadline deadline) { return Clock::now() >= deadline; }

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  EGERIA_CHECK_MSG(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(O_NONBLOCK) failed");
}

void SetNoDelay(int fd) {
  int one = 1;
  EGERIA_CHECK_MSG(
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0,
      "setsockopt(TCP_NODELAY) failed");
}

// ---- Wiring-phase I/O (construction only): failures abort. ----

// Waits for `events` on fd until the deadline; aborts with `what` on expiry.
void PollOne(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    struct pollfd p = {fd, events, 0};
    const int rc = poll(&p, 1, RemainingMs(deadline));
    if (rc > 0) {
      return;  // Ready (or error condition: the next read/write reports it).
    }
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    EGERIA_CHECK_MSG(!(rc == 0 && Expired(deadline)),
                     std::string("tcp transport timed out waiting to ") + what);
    EGERIA_CHECK_MSG(rc >= 0, std::string("poll failed while waiting to ") + what);
  }
}

void SendAllFd(int fd, const void* buf, size_t n, Deadline deadline) {
  const auto* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    EGERIA_CHECK_MSG(rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR),
                     "tcp send failed (peer gone?)");
    PollOne(fd, POLLOUT, deadline, "send");
  }
}

void RecvAllFd(int fd, void* buf, size_t n, Deadline deadline) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::recv(fd, p + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    EGERIA_CHECK_MSG(rc != 0, "tcp peer closed connection mid-message");
    EGERIA_CHECK_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR,
                     "tcp recv failed");
    PollOne(fd, POLLIN, deadline, "recv");
  }
}

struct Hello {
  uint32_t kind = 0;
  uint32_t rank = 0;
  uint32_t port = 0;
};

void SendHello(int fd, const Hello& h, Deadline deadline) {
  uint8_t wire[16];
  EncodeU32(kHelloMagic, wire);
  EncodeU32(h.kind, wire + 4);
  EncodeU32(h.rank, wire + 8);
  EncodeU32(h.port, wire + 12);
  SendAllFd(fd, wire, sizeof(wire), deadline);
}

Hello RecvHello(int fd, Deadline deadline) {
  uint8_t wire[16];
  RecvAllFd(fd, wire, sizeof(wire), deadline);
  EGERIA_CHECK_MSG(DecodeU32(wire) == kHelloMagic,
                   "bad hello magic (mixed worlds on one rendezvous file?)");
  return Hello{DecodeU32(wire + 4), DecodeU32(wire + 8), DecodeU32(wire + 12)};
}

// Listener on 127.0.0.1 with a kernel-chosen ephemeral port.
int ListenEphemeral(uint16_t* port_out) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EGERIA_CHECK_MSG(fd >= 0, "socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral: never collides across parallel jobs.
  EGERIA_CHECK_MSG(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                   "bind(127.0.0.1:0) failed");
  EGERIA_CHECK_MSG(listen(fd, 64) == 0, "listen() failed");
  socklen_t len = sizeof(addr);
  EGERIA_CHECK_MSG(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                   "getsockname() failed");
  *port_out = ntohs(addr.sin_port);
  return fd;
}

int AcceptWithDeadline(int listen_fd, Deadline deadline) {
  PollOne(listen_fd, POLLIN, deadline, "accept a rank connection");
  const int fd = accept(listen_fd, nullptr, nullptr);
  EGERIA_CHECK_MSG(fd >= 0, "accept() failed");
  SetNoDelay(fd);
  SetNonBlocking(fd);
  return fd;
}

// Connects to 127.0.0.1:`port` (rank `peer_rank`'s listener) with bounded
// attempts and exponential backoff + deterministic jitter — early attempts
// retry fast (the peer is usually milliseconds from listening), later ones
// back off so W ranks hammering one listener don't synchronize their retries.
// A wiring failure is fatal: the diagnostic names the peer and attempt count.
constexpr int kMaxConnectAttempts = 64;

int ConnectRetry(uint16_t port, int peer_rank, int my_rank, Deadline deadline) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int64_t backoff_us = 1'000;
  for (int attempt = 1;; ++attempt) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EGERIA_CHECK_MSG(fd >= 0, "socket() failed");
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      SetNonBlocking(fd);
      return fd;
    }
    const int err = errno;
    close(fd);
    EGERIA_CHECK_MSG(
        !(Expired(deadline) || attempt >= kMaxConnectAttempts),
        "tcp transport: rank " + std::to_string(my_rank) + " failed to connect to "
            "rank " + std::to_string(peer_rank) + " at 127.0.0.1:" +
            std::to_string(port) + " after " + std::to_string(attempt) +
            " attempts (last error: " + std::strerror(err) + ")");
    // Deterministic jitter (no global RNG): mix rank and attempt so parallel
    // ranks desynchronize identically across runs.
    uint64_t mix = (static_cast<uint64_t>(my_rank) << 32) ^
                   static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
    mix ^= mix >> 29;
    mix *= 0xBF58476D1CE4E5B9ULL;
    mix ^= mix >> 32;
    const int64_t jitter_us = static_cast<int64_t>(mix % static_cast<uint64_t>(backoff_us + 1));
    std::this_thread::sleep_for(std::chrono::microseconds(backoff_us + jitter_us));
    backoff_us = std::min<int64_t>(backoff_us * 2, 200'000);
  }
}

// Atomic publish: a reader never sees a half-written file.
void WriteRendezvousFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  EGERIA_CHECK_MSG(f != nullptr, "cannot write rendezvous file " + tmp);
  std::fprintf(f, "127.0.0.1 %u\n", static_cast<unsigned>(port));
  std::fclose(f);
  EGERIA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                   "cannot publish rendezvous file " + path);
}

uint16_t PollRendezvousFile(const std::string& path, Deadline deadline) {
  for (;;) {
    FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      char host[64];
      unsigned port = 0;
      const int n = std::fscanf(f, "%63s %u", host, &port);
      std::fclose(f);
      if (n == 2 && port > 0 && port <= 65535) {
        return static_cast<uint16_t>(port);
      }
    }
    EGERIA_CHECK_MSG(!Expired(deadline),
                     "tcp transport timed out waiting for rendezvous file " + path);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

double IoTimeoutSeconds(const TcpTransportOptions& options) {
  if (const char* env = std::getenv("EGERIA_TCP_TIMEOUT_S")) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return options.io_timeout_s;
}

double HeartbeatSeconds(const TcpTransportOptions& options) {
  if (const char* env = std::getenv("EGERIA_HB_INTERVAL_S")) {
    const double v = std::atof(env);
    if (v >= 0.0 && env[0] != '\0') {
      return v;
    }
  }
  return options.heartbeat_interval_s;
}

void EncodeHbRecord(uint8_t type, uint32_t a, uint32_t b, uint32_t c,
                    uint8_t* out) {
  out[0] = type;
  EncodeU32(a, out + 1);
  EncodeU32(b, out + 5);
  EncodeU32(c, out + 9);
}

std::string FmtSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", s);
  return buf;
}

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(const TcpTransportOptions& options)
      : rank_(options.rank),
        world_(options.world),
        io_timeout_s_(IoTimeoutSeconds(options)),
        hb_interval_s_(HeartbeatSeconds(options)),
        integrity_(options.frame_integrity) {
    EGERIA_CHECK(world_ >= 1 && rank_ >= 0 && rank_ < world_);
    if (world_ == 1) {
      return;
    }
    EGERIA_CHECK_MSG(!options.rendezvous_file.empty(),
                     "tcp transport needs a rendezvous file");
    const bool hb = hb_interval_s_ > 0.0;
    const Deadline deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options.connect_timeout_s));

    uint16_t my_port = 0;
    const int listen_fd = ListenEphemeral(&my_port);
    std::vector<uint16_t> ports(static_cast<size_t>(world_), 0);
    ports[0] = my_port;

    if (rank_ == 0) {
      WriteRendezvousFile(options.rendezvous_file, my_port);
      // Collect every rank's JOIN before publishing the port map, so no RING
      // or HB hello can reach this listener until all joins are accepted.
      ctrl_fds_.assign(static_cast<size_t>(world_), -1);
      for (int joined = 1; joined < world_; ++joined) {
        const int fd = AcceptWithDeadline(listen_fd, deadline);
        const Hello h = RecvHello(fd, deadline);
        EGERIA_CHECK_MSG(h.kind == kHelloJoin && h.rank > 0 &&
                             h.rank < static_cast<uint32_t>(world_) &&
                             ctrl_fds_[h.rank] < 0,
                         "unexpected join hello");
        ctrl_fds_[h.rank] = fd;
        ports[h.rank] = static_cast<uint16_t>(h.port);
      }
      std::vector<uint8_t> map(4 * static_cast<size_t>(world_));
      for (int r = 0; r < world_; ++r) {
        EncodeU32(ports[static_cast<size_t>(r)], map.data() + 4 * r);
      }
      for (int r = 1; r < world_; ++r) {
        SendAllFd(ctrl_fds_[static_cast<size_t>(r)], map.data(), map.size(), deadline);
      }
      // Ring-next link, then accept whatever arrives: the RING hello from
      // rank W-1 and (heartbeat on) one HB hello per rank, in any order.
      next_fd_ = ConnectRetry(ports[static_cast<size_t>(1 % world_)], 1 % world_,
                              rank_, deadline);
      SendHello(next_fd_, Hello{kHelloRing, 0, 0}, deadline);
      hb_fds_.assign(static_cast<size_t>(world_), -1);
      const int expect = 1 + (hb ? world_ - 1 : 0);
      for (int got = 0; got < expect; ++got) {
        const int fd = AcceptWithDeadline(listen_fd, deadline);
        const Hello h = RecvHello(fd, deadline);
        if (h.kind == kHelloRing) {
          EGERIA_CHECK_MSG(
              h.rank == static_cast<uint32_t>(world_ - 1) && prev_fd_ < 0,
              "ring hello from unexpected rank");
          prev_fd_ = fd;
        } else if (h.kind == kHelloHb && hb) {
          EGERIA_CHECK_MSG(h.rank > 0 && h.rank < static_cast<uint32_t>(world_) &&
                               hb_fds_[h.rank] < 0,
                           "heartbeat hello from unexpected rank");
          hb_fds_[h.rank] = fd;
        } else {
          EGERIA_CHECK_MSG(false,
                           "unexpected hello kind during ring wiring (heartbeat "
                           "setting mismatch across ranks?)");
        }
      }
    } else {
      const uint16_t root_port = PollRendezvousFile(options.rendezvous_file, deadline);
      ctrl_fd_ = ConnectRetry(root_port, 0, rank_, deadline);
      SendHello(ctrl_fd_, Hello{kHelloJoin, static_cast<uint32_t>(rank_), my_port},
                deadline);
      std::vector<uint8_t> map(4 * static_cast<size_t>(world_));
      RecvAllFd(ctrl_fd_, map.data(), map.size(), deadline);
      for (int r = 0; r < world_; ++r) {
        ports[static_cast<size_t>(r)] = static_cast<uint16_t>(DecodeU32(map.data() + 4 * r));
      }
      // Data ring: connect to next, accept from prev.
      const int next_rank = (rank_ + 1) % world_;
      next_fd_ = ConnectRetry(ports[static_cast<size_t>(next_rank)], next_rank,
                              rank_, deadline);
      SendHello(next_fd_, Hello{kHelloRing, static_cast<uint32_t>(rank_), 0}, deadline);
      prev_fd_ = AcceptWithDeadline(listen_fd, deadline);
      const Hello ring = RecvHello(prev_fd_, deadline);
      EGERIA_CHECK_MSG(ring.kind == kHelloRing &&
                           ring.rank == static_cast<uint32_t>((rank_ - 1 + world_) % world_),
                       "ring hello from unexpected rank");
      if (hb) {
        hb_fd_ = ConnectRetry(ports[0], 0, rank_, deadline);
        SendHello(hb_fd_, Hello{kHelloHb, static_cast<uint32_t>(rank_), 0}, deadline);
      }
    }
    close(listen_fd);
    if (hb) {
      hb_thread_ = std::thread([this] {
        if (rank_ == 0) {
          trace::SetThreadName("hb_monitor");
          HbMonitorLoop();
        } else {
          trace::SetThreadName("hb_sender");
          HbSenderLoop();
        }
      });
    }
  }

  ~TcpTransport() override {
    hb_stop_.store(true, std::memory_order_release);
    if (hb_thread_.joinable()) {
      hb_thread_.join();
    }
    for (int fd : {next_fd_, prev_fd_, ctrl_fd_, hb_fd_}) {
      if (fd >= 0) {
        close(fd);
      }
    }
    for (int fd : ctrl_fds_) {
      if (fd >= 0) {
        close(fd);
      }
    }
    for (int fd : hb_fds_) {
      if (fd >= 0) {
        close(fd);
      }
    }
  }

  int Rank() const override { return rank_; }
  int World() const override { return world_; }

  TransportStatus RingExchange(const void* send_buf, int64_t send_bytes,
                               void* recv_buf, int64_t recv_bytes) override {
    EGERIA_CHECK(send_bytes >= 0 && recv_bytes >= 0);
    if (!failed_.ok()) {
      return failed_;
    }
    const OpScope op(this);
    if (world_ == 1) {
      if (send_bytes != recv_bytes) {
        return Fail(TransportStatus::Error(
            TransportError::kSequence, "self-exchange size mismatch"));
      }
      std::memcpy(recv_buf, send_buf, static_cast<size_t>(send_bytes));
      return TransportStatus::Ok();
    }
    if (integrity_) {
      return RingExchangeFramed(send_buf, send_bytes, recv_buf, recv_bytes);
    }
    const Deadline deadline = IoDeadline();
    const int prev_rank = (rank_ - 1 + world_) % world_;
    uint8_t send_hdr[4];
    uint8_t recv_hdr[4];
    EncodeU32(static_cast<uint32_t>(send_bytes), send_hdr);
    const auto* sp = static_cast<const uint8_t*>(send_buf);
    auto* rp = static_cast<uint8_t*>(recv_buf);
    const size_t s_total = 4 + static_cast<size_t>(send_bytes);
    const size_t r_total = 4 + static_cast<size_t>(recv_bytes);
    size_t s_done = 0;
    size_t r_done = 0;
    bool hdr_checked = false;
    // One poll loop pumping both directions: a cycle of ranks all sending
    // large frames still drains because every rank also receives.
    while (s_done < s_total || r_done < r_total) {
      if (AbortRequested()) {
        return Fail(AbortReason());
      }
      struct pollfd fds[2];
      int n = 0;
      int si = -1;
      int ri = -1;
      if (s_done < s_total) {
        fds[n] = {next_fd_, POLLOUT, 0};
        si = n++;
      }
      if (r_done < r_total) {
        fds[n] = {prev_fd_, POLLIN, 0};
        ri = n++;
      }
      const int rc = poll(fds, static_cast<nfds_t>(n),
                          std::min(RemainingMs(deadline), kAbortPollMs));
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      if (rc < 0) {
        return Fail(TransportStatus::Error(TransportError::kIo,
                                           "poll failed in ring exchange"));
      }
      if (rc == 0) {
        if (Expired(deadline)) {
          return Fail(TimeoutStatus("ring exchange"));
        }
        continue;
      }
      if (si >= 0 && (fds[si].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        // Gather-write header and payload in one syscall: a separate 4-byte
        // header send would cost the receiver an extra blocking boundary (a
        // scheduler wakeup on a contended host) per frame.
        struct iovec iov[2];
        int iovn = 0;
        if (s_done < 4) {
          iov[iovn++] = {send_hdr + s_done, 4 - s_done};
        }
        if (send_bytes > 0) {
          const size_t sent = s_done > 4 ? s_done - 4 : 0;
          iov[iovn++] = {const_cast<uint8_t*>(sp) + sent,
                         static_cast<size_t>(send_bytes) - sent};
        }
        struct msghdr msg = {};
        msg.msg_iov = iov;
        msg.msg_iovlen = static_cast<size_t>(iovn);
        const ssize_t w = ::sendmsg(next_fd_, &msg, MSG_NOSIGNAL);
        if (w > 0) {
          s_done += static_cast<size_t>(w);
        } else if (!(w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                               errno == EINTR))) {
          return Fail(PeerClosedStatus("ring link to rank", (rank_ + 1) % world_,
                                       "send"));
        }
      }
      if (ri >= 0 && (fds[ri].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        struct iovec iov[2];
        int iovn = 0;
        if (r_done < 4) {
          iov[iovn++] = {recv_hdr + r_done, 4 - r_done};
        }
        if (recv_bytes > 0) {
          const size_t got = r_done > 4 ? r_done - 4 : 0;
          iov[iovn++] = {rp + got, static_cast<size_t>(recv_bytes) - got};
        }
        const ssize_t r = ::readv(prev_fd_, iov, iovn);
        if (r > 0) {
          r_done += static_cast<size_t>(r);
        } else if (r == 0) {
          return Fail(PeerClosedStatus("ring link from rank", prev_rank,
                                       r_done > 0 && r_done < r_total
                                           ? "closed mid-frame"
                                           : "closed"));
        } else if (!(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
          return Fail(PeerClosedStatus("ring link from rank", prev_rank, "recv"));
        }
        if (!hdr_checked && r_done >= 4) {
          const uint32_t announced = DecodeU32(recv_hdr);
          if (announced != static_cast<uint32_t>(recv_bytes)) {
            return Fail(TransportStatus::Error(
                TransportError::kSequence,
                "rank " + std::to_string(rank_) + ": ring frame size mismatch "
                    "from rank " + std::to_string(prev_rank) + " (announced " +
                    std::to_string(announced) + " bytes, expected " +
                    std::to_string(recv_bytes) +
                    "; truncated frame or schedule desync)"));
          }
          hdr_checked = true;
        }
      }
    }
    return TransportStatus::Ok();
  }

  TransportStatus Barrier() override {
    if (!failed_.ok()) {
      return failed_;
    }
    const OpScope op(this);
    if (world_ == 1) {
      return TransportStatus::Ok();
    }
    const Deadline deadline = IoDeadline();
    uint8_t token = 0;
    if (rank_ == 0) {
      for (int r = 1; r < world_; ++r) {
        TransportStatus st = RecvAllStatus(ctrl_fds_[static_cast<size_t>(r)],
                                           &token, 1, deadline, "barrier", r);
        if (!st.ok()) {
          return Fail(std::move(st));
        }
      }
      token = 1;
      for (int r = 1; r < world_; ++r) {
        TransportStatus st = SendAllStatus(ctrl_fds_[static_cast<size_t>(r)],
                                           &token, 1, deadline, "barrier", r);
        if (!st.ok()) {
          return Fail(std::move(st));
        }
      }
    } else {
      TransportStatus st = SendAllStatus(ctrl_fd_, &token, 1, deadline, "barrier", 0);
      if (!st.ok()) {
        return Fail(std::move(st));
      }
      st = RecvAllStatus(ctrl_fd_, &token, 1, deadline, "barrier", 0);
      if (!st.ok()) {
        return Fail(std::move(st));
      }
    }
    return TransportStatus::Ok();
  }

  TransportStatus Broadcast(const void* data, int64_t bytes,
                            std::vector<uint8_t>* out) override {
    if (!failed_.ok()) {
      return failed_;
    }
    const OpScope op(this);
    if (world_ == 1) {
      const auto* p = static_cast<const uint8_t*>(data);
      out->assign(p, p + bytes);
      return TransportStatus::Ok();
    }
    if (integrity_) {
      return BroadcastFramed(data, bytes, out);
    }
    const Deadline deadline = IoDeadline();
    if (rank_ == 0) {
      EGERIA_CHECK(bytes >= 0 && (bytes == 0 || data != nullptr));
      // Header and payload in one send per peer — same stall-avoidance as the
      // framed broadcast; these carry the per-iteration control messages.
      std::vector<uint8_t> frame(4 + static_cast<size_t>(bytes));
      EncodeU32(static_cast<uint32_t>(bytes), frame.data());
      if (bytes > 0) {
        std::memcpy(frame.data() + 4, data, static_cast<size_t>(bytes));
      }
      for (int r = 1; r < world_; ++r) {
        const int fd = ctrl_fds_[static_cast<size_t>(r)];
        TransportStatus st = SendAllStatus(fd, frame.data(), frame.size(),
                                           deadline, "broadcast", r);
        if (!st.ok()) {
          return Fail(std::move(st));
        }
      }
      const auto* p = static_cast<const uint8_t*>(data);
      out->assign(p, p + bytes);
      return TransportStatus::Ok();
    }
    uint8_t hdr[4];
    TransportStatus st = RecvAllStatus(ctrl_fd_, hdr, 4, deadline, "broadcast", 0);
    if (!st.ok()) {
      return Fail(std::move(st));
    }
    out->resize(DecodeU32(hdr));
    st = RecvAllStatus(ctrl_fd_, out->data(), out->size(), deadline, "broadcast", 0);
    if (!st.ok()) {
      return Fail(std::move(st));
    }
    return TransportStatus::Ok();
  }

  void LocalAbort(const TransportStatus& reason) override {
    {
      std::lock_guard<std::mutex> lock(abort_mutex_);
      if (abort_reason_.ok()) {
        abort_reason_ = reason.ok()
                            ? TransportStatus::Error(TransportError::kAborted,
                                                     "transport aborted")
                            : reason;
      }
    }
    abort_flag_.store(true, std::memory_order_release);
  }

 private:
  // Collective-progress accounting for the failure detector: a rank "in" an
  // op has started > completed; a rank between ops has started == completed.
  struct OpScope {
    explicit OpScope(TcpTransport* t) : t_(t) {
      t_->ops_started_.fetch_add(1, std::memory_order_relaxed);
    }
    ~OpScope() { t_->ops_completed_.fetch_add(1, std::memory_order_relaxed); }
    TcpTransport* t_;
  };

  Deadline IoDeadline() const {
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(io_timeout_s_));
  }

  bool AbortRequested() const {
    return abort_flag_.load(std::memory_order_acquire);
  }

  TransportStatus AbortReason() {
    std::lock_guard<std::mutex> lock(abort_mutex_);
    return abort_reason_.ok() ? TransportStatus::Error(TransportError::kAborted,
                                                       "transport aborted")
                              : abort_reason_;
  }

  // First failure wins and permanently fails the endpoint.
  TransportStatus Fail(TransportStatus st) {
    if (failed_.ok()) {
      failed_ = st;
    }
    return st;
  }

  TransportStatus TimeoutStatus(const char* what) const {
    return TransportStatus::Error(
        TransportError::kTimeout,
        "rank " + std::to_string(rank_) + ": tcp " + what + " timed out after " +
            FmtSeconds(io_timeout_s_) + "s (peer rank dead or stuck?)");
  }

  TransportStatus PeerClosedStatus(const char* link, int peer, const char* how) const {
    return TransportStatus::Error(
        TransportError::kPeerClosed,
        "rank " + std::to_string(rank_) + ": tcp " + link + " " +
            std::to_string(peer) + " " + how + " (peer crashed or exited)");
  }

  // ---- Native frame integrity (options.frame_integrity) ----
  //
  // Wire format — bit-identical to IntegrityTransport stacked on a raw TCP
  // transport, so the decorator and this native mode interoperate within one
  // world:
  //
  //   [u32 frame_len][u32 seq][u16 kind][u16 src]  payload  [u64 digest]
  //
  // The pump streams the payload straight from/to the caller's buffers (no
  // staging copies) and hashes it in bounded chunks interleaved with the
  // socket I/O, so on multi-MiB frames the digest work runs while the kernel
  // and the peer keep moving bytes instead of adding a serial whole-buffer
  // pass. The digest TRAILS the payload so the sender can compute it while
  // earlier payload bytes are already on the wire. Both directions use
  // scatter-gather syscalls (sendmsg/readv) spanning header, payload and
  // trailer: the 20 framing bytes ride in the same syscalls as the payload,
  // which matters more than it sounds — a separate 8-byte trailer recv would
  // cost the receiver an extra poll() round-trip (on a busy host, a scheduler
  // wakeup) per frame. Failure typing matches the decorator: frame-size
  // desync -> kSequence, wrong kind/sender -> kProtocol, stale sequence
  // number -> kSequence, digest mismatch -> kChecksum.
  TransportStatus RingExchangeFramed(const void* send_buf, int64_t send_bytes,
                                     void* recv_buf, int64_t recv_bytes) {
    const Deadline deadline = IoDeadline();
    const int prev_rank = (rank_ - 1 + world_) % world_;
    const auto* sp = static_cast<const uint8_t*>(send_buf);
    auto* rp = static_cast<uint8_t*>(recv_buf);

    // 12 fixed bytes ([len][seq][kind][src]) before the payload, 8 after.
    constexpr size_t kHdr = 12;
    constexpr size_t kTrl = static_cast<size_t>(kIntegrityTrailerBytes);
    uint8_t send_hdr[kHdr];
    uint8_t recv_hdr[kHdr];
    uint8_t send_trl[kTrl];
    uint8_t recv_trl[kTrl];
    EncodeU32(static_cast<uint32_t>(send_bytes + kIntegrityOverheadBytes),
              send_hdr);
    EncodeU32(ring_send_seq_, send_hdr + 4);
    EncodeU16(kIntegrityKindRing, send_hdr + 8);
    EncodeU16(static_cast<uint16_t>(rank_), send_hdr + 10);

    // Hash-ahead granularity: large enough that the trailer is ready by the
    // first sendmsg for typical frames (so the whole frame goes out in one
    // gather-write), small enough that multi-MiB frames still hash in stream
    // with the wire instead of in one serial prepass.
    constexpr size_t kHashAheadBytes = size_t{1} << 20;
    FrameDigestStream send_hash;
    FrameDigestStream recv_hash;
    const size_t s_payload_end = kHdr + static_cast<size_t>(send_bytes);
    const size_t r_payload_end = kHdr + static_cast<size_t>(recv_bytes);
    const size_t s_total = s_payload_end + kTrl;
    const size_t r_total = r_payload_end + kTrl;
    size_t s_done = 0;
    size_t r_done = 0;
    size_t s_hashed = 0;  // payload bytes fed to send_hash / recv_hash
    size_t r_hashed = 0;
    bool s_trl_ready = send_bytes == 0;
    if (s_trl_ready) {
      EncodeU64(send_hash.Finish(), send_trl);
    }
    bool r_hdr_checked = false;
    while (s_done < s_total || r_done < r_total) {
      if (AbortRequested()) {
        return Fail(AbortReason());
      }
      struct pollfd fds[2];
      int n = 0;
      int si = -1;
      int ri = -1;
      if (s_done < s_total) {
        fds[n] = {next_fd_, POLLOUT, 0};
        si = n++;
      }
      if (r_done < r_total) {
        fds[n] = {prev_fd_, POLLIN, 0};
        ri = n++;
      }
      const int rc = poll(fds, static_cast<nfds_t>(n),
                          std::min(RemainingMs(deadline), kAbortPollMs));
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      if (rc < 0) {
        return Fail(TransportStatus::Error(TransportError::kIo,
                                           "poll failed in ring exchange"));
      }
      if (rc == 0) {
        if (Expired(deadline)) {
          return Fail(TimeoutStatus("ring exchange"));
        }
        continue;
      }
      if (si >= 0 && (fds[si].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        // Hash ahead of the wire: digest the payload chunk we are about to
        // offer, so the trailer is ready to ride in the same gather-write as
        // the final payload bytes. Only hashed payload enters the iovec — a
        // send can never outrun the digest.
        if (s_hashed < static_cast<size_t>(send_bytes)) {
          const size_t take = std::min(
              static_cast<size_t>(send_bytes) - s_hashed, kHashAheadBytes);
          send_hash.Update(sp + s_hashed, take);
          s_hashed += take;
          if (s_hashed == static_cast<size_t>(send_bytes)) {
            EncodeU64(send_hash.Finish(), send_trl);
            s_trl_ready = true;
          }
        }
        struct iovec iov[3];
        int iovn = 0;
        if (s_done < kHdr) {
          iov[iovn++] = {send_hdr + s_done, kHdr - s_done};
        }
        const size_t sent_payload =
            s_done > kHdr ? std::min(s_done, s_payload_end) - kHdr : 0;
        if (sent_payload < s_hashed) {
          iov[iovn++] = {const_cast<uint8_t*>(sp) + sent_payload,
                         s_hashed - sent_payload};
        }
        if (s_trl_ready) {
          const size_t t_off =
              s_done > s_payload_end ? s_done - s_payload_end : 0;
          iov[iovn++] = {send_trl + t_off, kTrl - t_off};
        }
        struct msghdr msg = {};
        msg.msg_iov = iov;
        msg.msg_iovlen = static_cast<size_t>(iovn);
        const ssize_t w = ::sendmsg(next_fd_, &msg, MSG_NOSIGNAL);
        if (w > 0) {
          s_done += static_cast<size_t>(w);
        } else if (!(w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                               errno == EINTR))) {
          return Fail(PeerClosedStatus("ring link to rank", (rank_ + 1) % world_,
                                       "send"));
        }
      }
      if (ri >= 0 && (fds[ri].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        // Scatter-read the remainder of the frame — header, payload and
        // trailer fill in one syscall as the bytes arrive, never past the
        // frame boundary (the next frame's bytes stay in the kernel).
        struct iovec iov[3];
        int iovn = 0;
        if (r_done < kHdr) {
          iov[iovn++] = {recv_hdr + r_done, kHdr - r_done};
        }
        if (r_done < r_payload_end && recv_bytes > 0) {
          const size_t got = r_done > kHdr ? r_done - kHdr : 0;
          iov[iovn++] = {rp + got, static_cast<size_t>(recv_bytes) - got};
        }
        const size_t t_off = r_done > r_payload_end ? r_done - r_payload_end : 0;
        iov[iovn++] = {recv_trl + t_off, kTrl - t_off};
        const ssize_t r = ::readv(prev_fd_, iov, iovn);
        if (r > 0) {
          r_done += static_cast<size_t>(r);
        } else if (r == 0) {
          return Fail(PeerClosedStatus("ring link from rank", prev_rank,
                                       r_done > 0 && r_done < r_total
                                           ? "closed mid-frame"
                                           : "closed"));
        } else if (!(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
          return Fail(PeerClosedStatus("ring link from rank", prev_rank, "recv"));
        }
        if (!r_hdr_checked && r_done >= kHdr) {
          const uint32_t announced = DecodeU32(recv_hdr);
          if (announced !=
              static_cast<uint32_t>(recv_bytes + kIntegrityOverheadBytes)) {
            return Fail(TransportStatus::Error(
                TransportError::kSequence,
                "rank " + std::to_string(rank_) + ": ring frame size mismatch "
                    "from rank " + std::to_string(prev_rank) + " (announced " +
                    std::to_string(announced) + " frame bytes, expected " +
                    std::to_string(recv_bytes + kIntegrityOverheadBytes) +
                    "; truncated frame or schedule desync)"));
          }
          const uint16_t kind = DecodeU16(recv_hdr + 8);
          const uint16_t sender = DecodeU16(recv_hdr + 10);
          if (kind != kIntegrityKindRing ||
              sender != static_cast<uint16_t>(prev_rank)) {
            return Fail(TransportStatus::Error(
                TransportError::kProtocol,
                "rank " + std::to_string(rank_) + ": ring frame header invalid "
                    "(kind " + std::to_string(kind) + ", sender " +
                    std::to_string(sender) + ", expected ring frame from rank " +
                    std::to_string(prev_rank) + ")"));
          }
          const uint32_t seq = DecodeU32(recv_hdr + 4);
          if (seq != ring_recv_seq_) {
            return Fail(TransportStatus::Error(
                TransportError::kSequence,
                "rank " + std::to_string(rank_) + ": ring frame sequence "
                    "mismatch (got seq " + std::to_string(seq) + ", expected " +
                    std::to_string(ring_recv_seq_) +
                    "; duplicated, replayed or dropped frame)"));
          }
          r_hdr_checked = true;
        }
        const size_t got_payload =
            r_done > kHdr ? std::min(r_done, r_payload_end) - kHdr : 0;
        if (got_payload > r_hashed) {
          recv_hash.Update(rp + r_hashed, got_payload - r_hashed);
          r_hashed = got_payload;
        }
        if (r_done == r_total) {
          const uint64_t claimed = DecodeU64(recv_trl);
          const uint64_t actual = recv_hash.Finish();
          if (actual != claimed) {
            return Fail(TransportStatus::Error(
                TransportError::kChecksum,
                "rank " + std::to_string(rank_) + ": ring frame checksum "
                    "mismatch from rank " + std::to_string(prev_rank) +
                    " (claimed " + Hex64(claimed) + ", computed " +
                    Hex64(actual) + " over " + std::to_string(recv_bytes) +
                    " bytes, seq " + std::to_string(ring_recv_seq_) +
                    "; corrupted in transit)"));
          }
        }
      }
    }
    ++ring_send_seq_;
    ++ring_recv_seq_;
    return TransportStatus::Ok();
  }

  // Broadcast with native integrity framing over the control-plane star.
  // Broadcast payloads are small control messages, so the digest is one-shot
  // rather than streamed — overlap only pays on multi-MiB ring frames.
  TransportStatus BroadcastFramed(const void* data, int64_t bytes,
                                  std::vector<uint8_t>* out) {
    const Deadline deadline = IoDeadline();
    const uint32_t seq = bcast_seq_;
    uint8_t hdr[12];
    uint8_t trl[8];
    if (rank_ == 0) {
      EGERIA_CHECK(bytes >= 0 && (bytes == 0 || data != nullptr));
      EncodeU32(static_cast<uint32_t>(bytes + kIntegrityOverheadBytes), hdr);
      EncodeU32(seq, hdr + 4);
      EncodeU16(kIntegrityKindBcast, hdr + 8);
      EncodeU16(0, hdr + 10);
      EncodeU64(FrameDigest64(data, static_cast<size_t>(bytes)), trl);
      // One contiguous frame, one send per peer: broadcasts carry the
      // per-iteration freeze-frontier control message, so an extra blocking
      // boundary per frame would cost every iteration a scheduler round-trip
      // on a contended host. The staging copy is cheap at control-message
      // sizes and happens once for the startup weights broadcast.
      std::vector<uint8_t> frame(sizeof(hdr) + static_cast<size_t>(bytes) +
                                 sizeof(trl));
      std::memcpy(frame.data(), hdr, sizeof(hdr));
      if (bytes > 0) {
        std::memcpy(frame.data() + sizeof(hdr), data,
                    static_cast<size_t>(bytes));
      }
      std::memcpy(frame.data() + sizeof(hdr) + static_cast<size_t>(bytes), trl,
                  sizeof(trl));
      for (int r = 1; r < world_; ++r) {
        const int fd = ctrl_fds_[static_cast<size_t>(r)];
        TransportStatus st = SendAllStatus(fd, frame.data(), frame.size(),
                                           deadline, "broadcast", r);
        if (!st.ok()) {
          return Fail(std::move(st));
        }
      }
      const auto* p = static_cast<const uint8_t*>(data);
      out->assign(p, p + bytes);
      ++bcast_seq_;
      return TransportStatus::Ok();
    }
    TransportStatus st =
        RecvAllStatus(ctrl_fd_, hdr, sizeof(hdr), deadline, "broadcast", 0);
    if (!st.ok()) {
      return Fail(std::move(st));
    }
    const uint32_t frame_len = DecodeU32(hdr);
    if (frame_len < static_cast<uint32_t>(kIntegrityOverheadBytes)) {
      return Fail(TransportStatus::Error(
          TransportError::kProtocol,
          "rank " + std::to_string(rank_) + ": broadcast frame short (" +
              std::to_string(frame_len) +
              " bytes, need 16 bytes of integrity framing)"));
    }
    const uint16_t kind = DecodeU16(hdr + 8);
    const uint16_t sender = DecodeU16(hdr + 10);
    if (kind != kIntegrityKindBcast || sender != 0) {
      return Fail(TransportStatus::Error(
          TransportError::kProtocol,
          "rank " + std::to_string(rank_) + ": broadcast frame header invalid "
              "(kind " + std::to_string(kind) + ", sender " +
              std::to_string(sender) + ")"));
    }
    const uint32_t got_seq = DecodeU32(hdr + 4);
    if (got_seq != seq) {
      return Fail(TransportStatus::Error(
          TransportError::kSequence,
          "rank " + std::to_string(rank_) + ": broadcast sequence mismatch "
              "(got seq " + std::to_string(got_seq) + ", expected " +
              std::to_string(seq) + ")"));
    }
    // Payload and trailer in one blocking recv (they left rank 0 in one
    // send); a second boundary here would stall every per-iteration control
    // broadcast on another scheduler wakeup.
    const size_t payload =
        frame_len - static_cast<uint32_t>(kIntegrityOverheadBytes);
    std::vector<uint8_t> rest(payload + sizeof(trl));
    st = RecvAllStatus(ctrl_fd_, rest.data(), rest.size(), deadline,
                       "broadcast", 0);
    if (!st.ok()) {
      return Fail(std::move(st));
    }
    out->assign(rest.begin(), rest.end() - static_cast<long>(sizeof(trl)));
    const uint64_t claimed = DecodeU64(rest.data() + payload);
    const uint64_t actual = FrameDigest64(out->data(), out->size());
    if (actual != claimed) {
      return Fail(TransportStatus::Error(
          TransportError::kChecksum,
          "rank " + std::to_string(rank_) + ": broadcast checksum mismatch "
              "(claimed " + Hex64(claimed) + ", computed " + Hex64(actual) +
              " over " + std::to_string(out->size()) + " bytes, seq " +
              std::to_string(got_seq) + "; corrupted in transit)"));
    }
    ++bcast_seq_;
    return TransportStatus::Ok();
  }

  // ---- Steady-state I/O: status-returning, abort-aware. ----

  TransportStatus WaitReady(int fd, short events, Deadline deadline,
                            const char* what) {
    for (;;) {
      if (AbortRequested()) {
        return AbortReason();
      }
      struct pollfd p = {fd, events, 0};
      const int rc = poll(&p, 1, std::min(RemainingMs(deadline), kAbortPollMs));
      if (rc > 0) {
        return TransportStatus::Ok();
      }
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      if (rc < 0) {
        return TransportStatus::Error(
            TransportError::kIo, std::string("poll failed during ") + what);
      }
      if (Expired(deadline)) {
        return TimeoutStatus(what);
      }
    }
  }

  TransportStatus SendAllStatus(int fd, const void* buf, size_t n,
                                Deadline deadline, const char* what, int peer) {
    const auto* p = static_cast<const uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
      const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
      if (rc > 0) {
        done += static_cast<size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
        TransportStatus st = WaitReady(fd, POLLOUT, deadline, what);
        if (!st.ok()) {
          return st;
        }
        continue;
      }
      return PeerClosedStatus("control link to rank", peer, what);
    }
    return TransportStatus::Ok();
  }

  TransportStatus RecvAllStatus(int fd, void* buf, size_t n, Deadline deadline,
                                const char* what, int peer) {
    auto* p = static_cast<uint8_t*>(buf);
    size_t done = 0;
    while (done < n) {
      const ssize_t rc = ::recv(fd, p + done, n - done, 0);
      if (rc > 0) {
        done += static_cast<size_t>(rc);
        continue;
      }
      if (rc == 0) {
        return PeerClosedStatus("control link to rank", peer,
                                done > 0 ? "closed mid-message" : "closed");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        TransportStatus st = WaitReady(fd, POLLIN, deadline, what);
        if (!st.ok()) {
          return st;
        }
        continue;
      }
      return PeerClosedStatus("control link to rank", peer, what);
    }
    return TransportStatus::Ok();
  }

  // ---- Heartbeat failure detector ----

  // Non-blocking 13-byte record send with a short bounded wait; false = link
  // dead.
  bool SendHbRecord(int fd, uint8_t type, uint32_t a, uint32_t b, uint32_t c) {
    uint8_t rec[kHbRecordBytes];
    EncodeHbRecord(type, a, b, c, rec);
    size_t done = 0;
    const Deadline deadline =
        Clock::now() + std::chrono::milliseconds(500);
    while (done < sizeof(rec)) {
      const ssize_t rc = ::send(fd, rec + done, sizeof(rec) - done, MSG_NOSIGNAL);
      if (rc > 0) {
        done += static_cast<size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
        if (Expired(deadline)) {
          return false;
        }
        struct pollfd p = {fd, POLLOUT, 0};
        poll(&p, 1, 10);
        continue;
      }
      return false;
    }
    return true;
  }

  // Ranks 1..W-1: beat twice per interval carrying the progress counters;
  // watch the link for rank 0's ABORT; say BYE at clean teardown so the
  // monitor never mistakes completion for death.
  void HbSenderLoop() {
    const auto beat_period = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(hb_interval_s_ / 2.0));
    auto next_beat = Clock::now();
    std::vector<uint8_t> inbuf;
    for (;;) {
      if (hb_stop_.load(std::memory_order_acquire)) {
        SendHbRecord(hb_fd_, kHbBye, 0, 0, 0);
        return;
      }
      if (Clock::now() >= next_beat) {
        const uint32_t started = ops_started_.load(std::memory_order_relaxed);
        const uint32_t completed = ops_completed_.load(std::memory_order_relaxed);
        trace::AddInstantF("transport", "hb_ping",
                           "{\"started\":%u,\"completed\":%u}", started,
                           completed);
        if (!SendHbRecord(hb_fd_, kHbPing, started, completed, 0)) {
          LocalAbort(TransportStatus::Error(
              TransportError::kPeerClosed,
              "rank " + std::to_string(rank_) +
                  ": heartbeat link to rank 0 lost (rank 0 died?)"));
          return;
        }
        // Piggyback the per-phase cumulative histograms (65 bytes/beat) so
        // rank 0 can fold cross-rank skew online. Advisory: a failed send is
        // ignored — the next PING is what detects a dead link.
        for (int phase = 0; phase < kNumHbStatPhases; ++phase) {
          const double sum_s = obs::HistogramSum(kHbStatPhaseMetric[phase]);
          const int64_t n = obs::HistogramCount(kHbStatPhaseMetric[phase]);
          const double ms = sum_s * 1000.0;
          const uint32_t cum_ms =
              ms >= 4294967295.0 ? 4294967295U
                                 : static_cast<uint32_t>(ms < 0.0 ? 0.0 : ms);
          const uint32_t count =
              n > 4294967295LL ? 4294967295U : static_cast<uint32_t>(n);
          if (!SendHbRecord(hb_fd_, kHbStats, static_cast<uint32_t>(phase),
                            cum_ms, count)) {
            break;
          }
        }
        next_beat = Clock::now() + beat_period;
      }
      struct pollfd p = {hb_fd_, POLLIN, 0};
      const auto until_beat = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  next_beat - Clock::now())
                                  .count();
      poll(&p, 1, static_cast<int>(std::max<int64_t>(
                      1, std::min<int64_t>(kAbortPollMs, until_beat))));
      if ((p.revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        uint8_t chunk[64];
        const ssize_t rc = ::recv(hb_fd_, chunk, sizeof(chunk), 0);
        if (rc > 0) {
          inbuf.insert(inbuf.end(), chunk, chunk + rc);
          while (inbuf.size() >= kHbRecordBytes) {
            if (inbuf[0] == kHbAbort) {
              LocalAbort(TransportStatus::Error(
                  TransportError::kAborted,
                  "rank " + std::to_string(rank_) +
                      ": world abort broadcast by rank 0's failure detector"));
              return;
            }
            inbuf.erase(inbuf.begin(),
                        inbuf.begin() + static_cast<long>(kHbRecordBytes));
          }
        } else if (rc == 0 || !(errno == EAGAIN || errno == EWOULDBLOCK ||
                                errno == EINTR)) {
          if (!hb_stop_.load(std::memory_order_acquire)) {
            LocalAbort(TransportStatus::Error(
                TransportError::kPeerClosed,
                "rank " + std::to_string(rank_) +
                    ": heartbeat link to rank 0 closed (rank 0 died?)"));
          }
          return;
        }
      }
    }
  }

  // Rank 0: the failure detector. Rules, checked every interval/4:
  //  - a heartbeat link that closes without BYE => the rank's process died;
  //  - no beat for > 2x interval => the whole process is wedged (SIGSTOP,
  //    scheduler death) since even the sender thread stopped;
  //  - a rank idle BETWEEN collectives (started == completed) whose counter
  //    has not moved for > 1x interval while some other rank has entered a
  //    later collective => the main thread is hung (the injected-hang case;
  //    rank 0 watches its own counters by the same rule, so a hung rank 0 is
  //    caught by its own monitor thread).
  // On detection: send ABORT on every live heartbeat link and LocalAbort, so
  // every survivor's in-flight collective returns kAborted within
  // kAbortPollMs — total detection-to-abort latency bounded by ~2x interval,
  // far under the io deadline.
  void HbMonitorLoop() {
    struct PeerState {
      std::vector<uint8_t> buf;
      uint32_t started = 0;
      uint32_t completed = 0;
      uint32_t phase_ms[kNumHbStatPhases] = {};  // latest kHbStats fold input
      Clock::time_point last_beat;
      Clock::time_point started_changed;
      bool bye = false;
      bool closed = false;
    };
    const auto tick = std::chrono::milliseconds(std::max<int64_t>(
        10, static_cast<int64_t>(hb_interval_s_ * 1000.0 / 4.0)));
    const auto stale_after = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(hb_interval_s_ * 2.0));
    const auto hang_grace = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(hb_interval_s_));
    std::vector<PeerState> peers(static_cast<size_t>(world_));
    const auto t0 = Clock::now();
    for (auto& p : peers) {
      p.last_beat = t0;
      p.started_changed = t0;
    }
    // Online straggler detection state: last skew emitted per phase, so a
    // persistent straggler re-announces only as its skew keeps growing
    // (>1.25x) instead of once per tick.
    const double skew_threshold = StragglerSkewThreshold();
    double emitted_skew[kNumHbStatPhases] = {};

    auto abort_world = [&](const std::string& reason) {
      const TransportStatus st = TransportStatus::Error(
          TransportError::kAborted,
          "failure detector: " + reason + " — aborting world");
      EGERIA_LOG(kWarn) << st.message;
      trace::AddInstant("transport", "hb_abort_world");
      obs::GetCounter("transport.hb_aborts").Add(1);
      for (int r = 1; r < world_; ++r) {
        const int fd = hb_fds_[static_cast<size_t>(r)];
        if (fd >= 0 && !peers[static_cast<size_t>(r)].closed) {
          SendHbRecord(fd, kHbAbort, 0, 0, 0);
        }
      }
      LocalAbort(st);
    };

    while (!hb_stop_.load(std::memory_order_acquire)) {
      // Wait one tick, draining beats as they arrive.
      std::vector<struct pollfd> fds;
      std::vector<int> fd_rank;
      for (int r = 1; r < world_; ++r) {
        PeerState& p = peers[static_cast<size_t>(r)];
        if (!p.closed && !p.bye) {
          fds.push_back({hb_fds_[static_cast<size_t>(r)], POLLIN, 0});
          fd_rank.push_back(r);
        }
      }
      if (!fds.empty()) {
        poll(fds.data(), static_cast<nfds_t>(fds.size()),
             static_cast<int>(tick.count()));
      } else {
        std::this_thread::sleep_for(tick);
      }
      const auto now = Clock::now();
      for (size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
          continue;
        }
        PeerState& p = peers[static_cast<size_t>(fd_rank[i])];
        uint8_t chunk[256];
        const ssize_t rc = ::recv(fds[i].fd, chunk, sizeof(chunk), 0);
        if (rc > 0) {
          p.buf.insert(p.buf.end(), chunk, chunk + rc);
          while (p.buf.size() >= kHbRecordBytes) {
            const uint8_t type = p.buf[0];
            if (type == kHbPing) {
              const uint32_t started = DecodeU32(p.buf.data() + 1);
              p.completed = DecodeU32(p.buf.data() + 5);
              if (started != p.started) {
                p.started = started;
                p.started_changed = now;
              }
              p.last_beat = now;
            } else if (type == kHbStats) {
              const uint32_t phase = DecodeU32(p.buf.data() + 1);
              if (phase < static_cast<uint32_t>(kNumHbStatPhases)) {
                p.phase_ms[phase] = DecodeU32(p.buf.data() + 5);
              }
            } else if (type == kHbBye) {
              p.bye = true;
            }
            p.buf.erase(p.buf.begin(),
                        p.buf.begin() + static_cast<long>(kHbRecordBytes));
          }
        } else if (rc == 0 || !(errno == EAGAIN || errno == EWOULDBLOCK ||
                                errno == EINTR)) {
          p.closed = true;
        }
      }
      // Rank 0's own progress, by the same rules.
      {
        PeerState& self = peers[0];
        const uint32_t started = ops_started_.load(std::memory_order_relaxed);
        self.completed = ops_completed_.load(std::memory_order_relaxed);
        if (started != self.started) {
          self.started = started;
          self.started_changed = now;
        }
        self.last_beat = now;
        // Rank 0 reads its own phase histograms straight from the registry —
        // same fold inputs the other ranks ship as kHbStats records.
        for (int phase = 0; phase < kNumHbStatPhases; ++phase) {
          const double ms =
              obs::HistogramSum(kHbStatPhaseMetric[phase]) * 1000.0;
          self.phase_ms[phase] =
              ms >= 4294967295.0 ? 4294967295U
                                 : static_cast<uint32_t>(ms < 0.0 ? 0.0 : ms);
        }
      }
      // Cross-rank straggler fold: for every phase, skew = slowest rank over
      // the (lower-)median rank. data/fp/bp/opt name the argmax rank (it IS
      // slow); comm_wait inverts — the rank waiting LEAST is the one the
      // world is waiting for, so the argmin rank is named. Cheap enough to
      // run every tick; emission is growth-rate-limited.
      if (world_ > 1) {
        for (int phase = 0; phase < kNumHbStatPhases; ++phase) {
          std::vector<double> secs(static_cast<size_t>(world_));
          for (int r = 0; r < world_; ++r) {
            secs[static_cast<size_t>(r)] =
                static_cast<double>(
                    peers[static_cast<size_t>(r)].phase_ms[phase]) *
                1e-3;
          }
          std::vector<double> sorted = secs;
          std::sort(sorted.begin(), sorted.end());
          const double max_s = sorted.back();
          if (max_s < kStragglerMinSeconds) {
            continue;
          }
          const double median =
              sorted[static_cast<size_t>((world_ - 1) / 2)];
          const double skew =
              max_s / std::max(median, kStragglerMedianFloorS);
          if (skew < skew_threshold || skew < emitted_skew[phase] * 1.25) {
            continue;
          }
          emitted_skew[phase] = skew;
          const bool invert = phase == kNumHbStatPhases - 1;  // comm_wait
          int straggler = 0;
          for (int r = 1; r < world_; ++r) {
            const double v = secs[static_cast<size_t>(r)];
            const double best = secs[static_cast<size_t>(straggler)];
            if (invert ? v < best : v > best) {
              straggler = r;
            }
          }
          std::printf("EGERIA_STRAGGLER rank=%d phase=%s skew=%.2f\n",
                      straggler, kHbStatPhaseName[phase], skew);
          std::fflush(stdout);
          trace::AddInstantF("obs", "straggler",
                             "{\"rank\":%d,\"phase\":\"%s\",\"skew\":%.2f}",
                             straggler, kHbStatPhaseName[phase], skew);
          obs::GetCounter("obs.stragglers").Add(1);
        }
      }
      if (AbortRequested()) {
        return;
      }
      for (int r = 1; r < world_; ++r) {
        const PeerState& p = peers[static_cast<size_t>(r)];
        if (p.bye) {
          continue;
        }
        if (p.closed) {
          abort_world("rank " + std::to_string(r) +
                      "'s heartbeat link closed without BYE (process died)");
          return;
        }
        if (now - p.last_beat > stale_after) {
          abort_world("rank " + std::to_string(r) + " heartbeat stale (no beat for " +
                      FmtSeconds(2.0 * hb_interval_s_) + "s; process wedged?)");
          return;
        }
      }
      uint32_t max_started = 0;
      for (int r = 0; r < world_; ++r) {
        const PeerState& p = peers[static_cast<size_t>(r)];
        if (!p.bye && p.started > max_started) {
          max_started = p.started;
        }
      }
      for (int r = 0; r < world_; ++r) {
        const PeerState& p = peers[static_cast<size_t>(r)];
        if (p.bye || p.closed) {
          continue;
        }
        const bool idle = p.started == p.completed;
        const bool behind = p.started < max_started;
        if (idle && behind && now - p.started_changed > hang_grace) {
          abort_world("rank " + std::to_string(r) + " hung between collectives (no "
                      "progress for " + FmtSeconds(hb_interval_s_) +
                      "s at op " + std::to_string(p.started) + " while the world "
                      "reached op " + std::to_string(max_started) + ")");
          return;
        }
      }
    }
  }

  int rank_;
  int world_;
  double io_timeout_s_;
  double hb_interval_s_;
  bool integrity_;                  // native frame integrity (see tcp_transport.h)
  // Per-stream monotonic frame counters for native integrity; every rank of a
  // world advances them in lockstep because collectives are world-synchronous.
  uint32_t ring_send_seq_ = 0;
  uint32_t ring_recv_seq_ = 0;
  uint32_t bcast_seq_ = 0;
  int next_fd_ = -1;                // ring link to (rank+1)%W
  int prev_fd_ = -1;                // ring link from (rank-1+W)%W
  int ctrl_fd_ = -1;                // non-root: control link to rank 0
  std::vector<int> ctrl_fds_;       // rank 0: control links, indexed by rank
  int hb_fd_ = -1;                  // non-root: heartbeat link to rank 0
  std::vector<int> hb_fds_;         // rank 0: heartbeat links, indexed by rank

  TransportStatus failed_;          // first collective failure, sticky

  std::atomic<bool> abort_flag_{false};
  std::mutex abort_mutex_;
  TransportStatus abort_reason_;

  std::atomic<uint32_t> ops_started_{0};
  std::atomic<uint32_t> ops_completed_{0};
  std::atomic<bool> hb_stop_{false};
  std::thread hb_thread_;
};

}  // namespace

std::unique_ptr<Transport> MakeTcpTransport(const TcpTransportOptions& options) {
  return std::make_unique<TcpTransport>(options);
}

}  // namespace egeria
