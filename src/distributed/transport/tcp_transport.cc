#include "src/distributed/transport/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/util/logging.h"

namespace egeria {
namespace {

using Clock = std::chrono::steady_clock;
using Deadline = Clock::time_point;

constexpr uint32_t kHelloMagic = 0xE9E41A01U;
constexpr uint32_t kHelloJoin = 1;  // rank -> rank 0, carries listener port
constexpr uint32_t kHelloRing = 2;  // rank -> ring-next, data-plane link

void EncodeU32(uint32_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v & 0xFFU);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xFFU);
  out[2] = static_cast<uint8_t>((v >> 16) & 0xFFU);
  out[3] = static_cast<uint8_t>((v >> 24) & 0xFFU);
}

uint32_t DecodeU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) | (static_cast<uint32_t>(in[3]) << 24);
}

int RemainingMs(Deadline deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
          .count();
  if (left <= 0) {
    return 0;
  }
  return static_cast<int>(left > 60'000 ? 60'000 : left);
}

bool Expired(Deadline deadline) { return Clock::now() >= deadline; }

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  EGERIA_CHECK_MSG(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(O_NONBLOCK) failed");
}

void SetNoDelay(int fd) {
  int one = 1;
  EGERIA_CHECK_MSG(
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0,
      "setsockopt(TCP_NODELAY) failed");
}

// Waits for `events` on fd until the deadline; aborts with `what` on expiry.
void PollOne(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    struct pollfd p = {fd, events, 0};
    const int rc = poll(&p, 1, RemainingMs(deadline));
    if (rc > 0) {
      return;  // Ready (or error condition: the next read/write reports it).
    }
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    EGERIA_CHECK_MSG(!(rc == 0 && Expired(deadline)),
                     std::string("tcp transport timed out waiting to ") + what);
    EGERIA_CHECK_MSG(rc >= 0, std::string("poll failed while waiting to ") + what);
  }
}

void SendAllFd(int fd, const void* buf, size_t n, Deadline deadline) {
  const auto* p = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    EGERIA_CHECK_MSG(rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR),
                     "tcp send failed (peer gone?)");
    PollOne(fd, POLLOUT, deadline, "send");
  }
}

void RecvAllFd(int fd, void* buf, size_t n, Deadline deadline) {
  auto* p = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::recv(fd, p + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    EGERIA_CHECK_MSG(rc != 0, "tcp peer closed connection mid-message");
    EGERIA_CHECK_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR,
                     "tcp recv failed");
    PollOne(fd, POLLIN, deadline, "recv");
  }
}

struct Hello {
  uint32_t kind = 0;
  uint32_t rank = 0;
  uint32_t port = 0;
};

void SendHello(int fd, const Hello& h, Deadline deadline) {
  uint8_t wire[16];
  EncodeU32(kHelloMagic, wire);
  EncodeU32(h.kind, wire + 4);
  EncodeU32(h.rank, wire + 8);
  EncodeU32(h.port, wire + 12);
  SendAllFd(fd, wire, sizeof(wire), deadline);
}

Hello RecvHello(int fd, Deadline deadline) {
  uint8_t wire[16];
  RecvAllFd(fd, wire, sizeof(wire), deadline);
  EGERIA_CHECK_MSG(DecodeU32(wire) == kHelloMagic,
                   "bad hello magic (mixed worlds on one rendezvous file?)");
  return Hello{DecodeU32(wire + 4), DecodeU32(wire + 8), DecodeU32(wire + 12)};
}

// Listener on 127.0.0.1 with a kernel-chosen ephemeral port.
int ListenEphemeral(uint16_t* port_out) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EGERIA_CHECK_MSG(fd >= 0, "socket() failed");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral: never collides across parallel jobs.
  EGERIA_CHECK_MSG(bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                   "bind(127.0.0.1:0) failed");
  EGERIA_CHECK_MSG(listen(fd, 64) == 0, "listen() failed");
  socklen_t len = sizeof(addr);
  EGERIA_CHECK_MSG(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                   "getsockname() failed");
  *port_out = ntohs(addr.sin_port);
  return fd;
}

int AcceptWithDeadline(int listen_fd, Deadline deadline) {
  PollOne(listen_fd, POLLIN, deadline, "accept a rank connection");
  const int fd = accept(listen_fd, nullptr, nullptr);
  EGERIA_CHECK_MSG(fd >= 0, "accept() failed");
  SetNoDelay(fd);
  SetNonBlocking(fd);
  return fd;
}

int ConnectRetry(uint16_t port, Deadline deadline) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EGERIA_CHECK_MSG(fd >= 0, "socket() failed");
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      SetNonBlocking(fd);
      return fd;
    }
    close(fd);
    EGERIA_CHECK_MSG(!Expired(deadline),
                     "tcp transport timed out connecting to port " +
                         std::to_string(port));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// Atomic publish: a reader never sees a half-written file.
void WriteRendezvousFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  EGERIA_CHECK_MSG(f != nullptr, "cannot write rendezvous file " + tmp);
  std::fprintf(f, "127.0.0.1 %u\n", static_cast<unsigned>(port));
  std::fclose(f);
  EGERIA_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                   "cannot publish rendezvous file " + path);
}

uint16_t PollRendezvousFile(const std::string& path, Deadline deadline) {
  for (;;) {
    FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      char host[64];
      unsigned port = 0;
      const int n = std::fscanf(f, "%63s %u", host, &port);
      std::fclose(f);
      if (n == 2 && port > 0 && port <= 65535) {
        return static_cast<uint16_t>(port);
      }
    }
    EGERIA_CHECK_MSG(!Expired(deadline),
                     "tcp transport timed out waiting for rendezvous file " + path);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

double IoTimeoutSeconds(const TcpTransportOptions& options) {
  if (const char* env = std::getenv("EGERIA_TCP_TIMEOUT_S")) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return options.io_timeout_s;
}

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(const TcpTransportOptions& options)
      : rank_(options.rank),
        world_(options.world),
        io_timeout_s_(IoTimeoutSeconds(options)) {
    EGERIA_CHECK(world_ >= 1 && rank_ >= 0 && rank_ < world_);
    if (world_ == 1) {
      return;
    }
    EGERIA_CHECK_MSG(!options.rendezvous_file.empty(),
                     "tcp transport needs a rendezvous file");
    const Deadline deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options.connect_timeout_s));

    uint16_t my_port = 0;
    const int listen_fd = ListenEphemeral(&my_port);
    std::vector<uint16_t> ports(static_cast<size_t>(world_), 0);
    ports[0] = my_port;

    if (rank_ == 0) {
      WriteRendezvousFile(options.rendezvous_file, my_port);
      // Collect every rank's JOIN before publishing the port map, so no RING
      // hello can reach this listener until all joins are accepted.
      ctrl_fds_.assign(static_cast<size_t>(world_), -1);
      for (int joined = 1; joined < world_; ++joined) {
        const int fd = AcceptWithDeadline(listen_fd, deadline);
        const Hello h = RecvHello(fd, deadline);
        EGERIA_CHECK_MSG(h.kind == kHelloJoin && h.rank > 0 &&
                             h.rank < static_cast<uint32_t>(world_) &&
                             ctrl_fds_[h.rank] < 0,
                         "unexpected join hello");
        ctrl_fds_[h.rank] = fd;
        ports[h.rank] = static_cast<uint16_t>(h.port);
      }
      std::vector<uint8_t> map(4 * static_cast<size_t>(world_));
      for (int r = 0; r < world_; ++r) {
        EncodeU32(ports[static_cast<size_t>(r)], map.data() + 4 * r);
      }
      for (int r = 1; r < world_; ++r) {
        SendAllFd(ctrl_fds_[static_cast<size_t>(r)], map.data(), map.size(), deadline);
      }
    } else {
      const uint16_t root_port = PollRendezvousFile(options.rendezvous_file, deadline);
      ctrl_fd_ = ConnectRetry(root_port, deadline);
      SendHello(ctrl_fd_, Hello{kHelloJoin, static_cast<uint32_t>(rank_), my_port},
                deadline);
      std::vector<uint8_t> map(4 * static_cast<size_t>(world_));
      RecvAllFd(ctrl_fd_, map.data(), map.size(), deadline);
      for (int r = 0; r < world_; ++r) {
        ports[static_cast<size_t>(r)] = static_cast<uint16_t>(DecodeU32(map.data() + 4 * r));
      }
    }

    // Data ring: connect to next, accept from prev.
    next_fd_ = ConnectRetry(ports[static_cast<size_t>((rank_ + 1) % world_)], deadline);
    SendHello(next_fd_, Hello{kHelloRing, static_cast<uint32_t>(rank_), 0}, deadline);
    prev_fd_ = AcceptWithDeadline(listen_fd, deadline);
    const Hello ring = RecvHello(prev_fd_, deadline);
    EGERIA_CHECK_MSG(ring.kind == kHelloRing &&
                         ring.rank == static_cast<uint32_t>((rank_ - 1 + world_) % world_),
                     "ring hello from unexpected rank");
    close(listen_fd);
  }

  ~TcpTransport() override {
    for (int fd : {next_fd_, prev_fd_, ctrl_fd_}) {
      if (fd >= 0) {
        close(fd);
      }
    }
    for (int fd : ctrl_fds_) {
      if (fd >= 0) {
        close(fd);
      }
    }
  }

  int Rank() const override { return rank_; }
  int World() const override { return world_; }

  void RingExchange(const void* send_buf, int64_t send_bytes, void* recv_buf,
                    int64_t recv_bytes) override {
    EGERIA_CHECK(send_bytes >= 0 && recv_bytes >= 0);
    if (world_ == 1) {
      EGERIA_CHECK_MSG(send_bytes == recv_bytes, "self-exchange size mismatch");
      std::memcpy(recv_buf, send_buf, static_cast<size_t>(send_bytes));
      return;
    }
    const Deadline deadline = IoDeadline();
    uint8_t send_hdr[4];
    uint8_t recv_hdr[4];
    EncodeU32(static_cast<uint32_t>(send_bytes), send_hdr);
    const auto* sp = static_cast<const uint8_t*>(send_buf);
    auto* rp = static_cast<uint8_t*>(recv_buf);
    const size_t s_total = 4 + static_cast<size_t>(send_bytes);
    const size_t r_total = 4 + static_cast<size_t>(recv_bytes);
    size_t s_done = 0;
    size_t r_done = 0;
    bool hdr_checked = false;
    // One poll loop pumping both directions: a cycle of ranks all sending
    // large frames still drains because every rank also receives.
    while (s_done < s_total || r_done < r_total) {
      struct pollfd fds[2];
      int n = 0;
      int si = -1;
      int ri = -1;
      if (s_done < s_total) {
        fds[n] = {next_fd_, POLLOUT, 0};
        si = n++;
      }
      if (r_done < r_total) {
        fds[n] = {prev_fd_, POLLIN, 0};
        ri = n++;
      }
      const int rc = poll(fds, static_cast<nfds_t>(n), RemainingMs(deadline));
      if (rc < 0 && errno == EINTR) {
        continue;
      }
      EGERIA_CHECK_MSG(!(rc == 0 && Expired(deadline)),
                       "tcp ring exchange timed out (peer rank dead or stuck?)");
      EGERIA_CHECK_MSG(rc >= 0, "poll failed in ring exchange");
      if (si >= 0 && (fds[si].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
        const uint8_t* p = s_done < 4 ? send_hdr + s_done : sp + (s_done - 4);
        const size_t want = s_done < 4 ? 4 - s_done : s_total - s_done;
        const ssize_t w = ::send(next_fd_, p, want, MSG_NOSIGNAL);
        if (w > 0) {
          s_done += static_cast<size_t>(w);
        } else {
          EGERIA_CHECK_MSG(w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                                     errno == EINTR),
                           "tcp send failed in ring exchange (peer gone?)");
        }
      }
      if (ri >= 0 && (fds[ri].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        uint8_t* p = r_done < 4 ? recv_hdr + r_done : rp + (r_done - 4);
        const size_t want = r_done < 4 ? 4 - r_done : r_total - r_done;
        const ssize_t r = ::recv(prev_fd_, p, want, 0);
        if (r > 0) {
          r_done += static_cast<size_t>(r);
        } else {
          EGERIA_CHECK_MSG(r != 0, "tcp peer closed ring link mid-exchange");
          EGERIA_CHECK_MSG(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR,
                           "tcp recv failed in ring exchange");
        }
        if (!hdr_checked && r_done >= 4) {
          EGERIA_CHECK_MSG(DecodeU32(recv_hdr) == static_cast<uint32_t>(recv_bytes),
                           "ring frame size mismatch (schedule desync)");
          hdr_checked = true;
        }
      }
    }
  }

  void Barrier() override {
    if (world_ == 1) {
      return;
    }
    const Deadline deadline = IoDeadline();
    uint8_t token = 0;
    if (rank_ == 0) {
      for (int r = 1; r < world_; ++r) {
        RecvAllFd(ctrl_fds_[static_cast<size_t>(r)], &token, 1, deadline);
      }
      token = 1;
      for (int r = 1; r < world_; ++r) {
        SendAllFd(ctrl_fds_[static_cast<size_t>(r)], &token, 1, deadline);
      }
    } else {
      SendAllFd(ctrl_fd_, &token, 1, deadline);
      RecvAllFd(ctrl_fd_, &token, 1, deadline);
    }
  }

  std::vector<uint8_t> Broadcast(const void* data, int64_t bytes) override {
    if (world_ == 1) {
      const auto* p = static_cast<const uint8_t*>(data);
      return std::vector<uint8_t>(p, p + bytes);
    }
    const Deadline deadline = IoDeadline();
    if (rank_ == 0) {
      EGERIA_CHECK(bytes >= 0 && (bytes == 0 || data != nullptr));
      uint8_t hdr[4];
      EncodeU32(static_cast<uint32_t>(bytes), hdr);
      for (int r = 1; r < world_; ++r) {
        const int fd = ctrl_fds_[static_cast<size_t>(r)];
        SendAllFd(fd, hdr, 4, deadline);
        SendAllFd(fd, data, static_cast<size_t>(bytes), deadline);
      }
      const auto* p = static_cast<const uint8_t*>(data);
      return std::vector<uint8_t>(p, p + bytes);
    }
    uint8_t hdr[4];
    RecvAllFd(ctrl_fd_, hdr, 4, deadline);
    std::vector<uint8_t> out(DecodeU32(hdr));
    RecvAllFd(ctrl_fd_, out.data(), out.size(), deadline);
    return out;
  }

 private:
  Deadline IoDeadline() const {
    return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(io_timeout_s_));
  }

  int rank_;
  int world_;
  double io_timeout_s_;
  int next_fd_ = -1;                // ring link to (rank+1)%W
  int prev_fd_ = -1;                // ring link from (rank-1+W)%W
  int ctrl_fd_ = -1;                // non-root: control link to rank 0
  std::vector<int> ctrl_fds_;       // rank 0: control links, indexed by rank
};

}  // namespace

std::unique_ptr<Transport> MakeTcpTransport(const TcpTransportOptions& options) {
  return std::make_unique<TcpTransport>(options);
}

}  // namespace egeria
