// Byte-oriented transport abstraction for the ring collectives.
//
// A `Transport` is one rank's endpoint in a fixed world of `World()` ranks
// arranged in a ring. It exposes exactly the primitives the reduction-contract
// collectives need, and nothing about how bytes move:
//
//  - RingExchange: the ring step — send a buffer to rank (r+1)%W while
//    receiving one from rank (r-1+W)%W. Full-duplex by contract so a cycle of
//    blocking sends can never deadlock.
//  - Barrier: world-wide rendezvous (star through rank 0 on socket backends).
//  - Broadcast: small control-plane message from rank 0 to every rank (freeze
//    frontier decisions, initial weight sync, reshard coordination).
//
// Every collective returns a TransportStatus (transport_status.h): a dead,
// hung, or corrupting peer surfaces as a typed error value that propagates up
// to the training loop, never as a process abort. After a non-ok return the
// endpoint is permanently failed — further collectives return an error too —
// so callers unwind once and exit cleanly. LocalAbort lets a layer above
// (integrity verification, the heartbeat failure detector, fault injection)
// fail the endpoint deliberately, which also releases any peer threads
// blocked on this endpoint's participation (inproc backend).
//
// Two implementations:
//  - InprocTransportGroup (inproc_transport.h): ranks are threads in one
//    process; mailboxes + a generation barrier. Reproduces the original
//    thread-backed collectives.
//  - MakeTcpTransport (tcp_transport.h): ranks are OS processes (or threads)
//    connected over localhost TCP with length-prefixed frames.
// Plus two decorators sharing this interface: IntegrityTransport (checksums +
// sequence numbers on every frame) and FaultInjectingTransport (deterministic
// fault schedules for chaos testing).
//
// All payloads are raw bytes in host representation: endpoints must share an
// architecture (documented limitation; frame headers are little-endian on the
// wire so a mismatch fails loudly at hello time rather than corrupting data).
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "src/distributed/transport/transport_status.h"

namespace egeria {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int Rank() const = 0;
  virtual int World() const = 0;

  // One ring step: send `send_bytes` bytes to rank (Rank()+1)%World() while
  // receiving exactly `recv_bytes` bytes from rank (Rank()-1+W)%World().
  // Either side may be zero (empty contract chunks still exchange a frame so
  // the schedule stays in lockstep). Blocks until both directions complete or
  // the operation fails. Every rank of the world must call this collectively
  // with matching counts (receiver's recv_bytes == its predecessor's
  // send_bytes); a mismatch is a schedule desync and returns kSequence.
  virtual TransportStatus RingExchange(const void* send_buf, int64_t send_bytes,
                                       void* recv_buf, int64_t recv_bytes) = 0;

  // Blocks until every rank has entered the barrier (or the operation fails).
  virtual TransportStatus Barrier() = 0;

  // Control plane: rank 0's `bytes` bytes at `data` are delivered to every
  // rank; on success *out holds the message on all ranks (rank 0 included).
  // Non-root ranks' data/bytes arguments are ignored (pass nullptr, 0).
  // Collective.
  virtual TransportStatus Broadcast(const void* data, int64_t bytes,
                                    std::vector<uint8_t>* out) = 0;

  // Permanently fails this endpoint with `reason`: every in-flight and future
  // collective returns a non-ok status promptly instead of blocking until a
  // deadline. On the inproc backend this poisons the whole group (peer
  // threads blocked on this endpoint's participation are released with
  // kAborted); on TCP it fails only the local endpoint — peers observe the
  // closed sockets when this process/thread unwinds. Idempotent; the first
  // reason wins.
  virtual void LocalAbort(const TransportStatus& reason) = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_H_
