// Byte-oriented transport abstraction for the ring collectives.
//
// A `Transport` is one rank's endpoint in a fixed world of `World()` ranks
// arranged in a ring. It exposes exactly the primitives the reduction-contract
// collectives need, and nothing about how bytes move:
//
//  - RingExchange: the ring step — send a buffer to rank (r+1)%W while
//    receiving one from rank (r-1+W)%W. Full-duplex by contract so a cycle of
//    blocking sends can never deadlock.
//  - Barrier: world-wide rendezvous (star through rank 0 on socket backends).
//  - Broadcast: small control-plane message from rank 0 to every rank (freeze
//    frontier decisions, initial weight sync, reshard coordination).
//
// Two implementations:
//  - InprocTransportGroup (inproc_transport.h): ranks are threads in one
//    process; mailboxes + a generation barrier. Reproduces the original
//    thread-backed collectives.
//  - MakeTcpTransport (tcp_transport.h): ranks are OS processes (or threads)
//    connected over localhost TCP with length-prefixed frames.
//
// All payloads are raw bytes in host representation: endpoints must share an
// architecture (documented limitation; frame headers are little-endian on the
// wire so a mismatch fails loudly at hello time rather than corrupting data).
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <vector>

namespace egeria {

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int Rank() const = 0;
  virtual int World() const = 0;

  // One ring step: send `send_bytes` bytes to rank (Rank()+1)%World() while
  // receiving exactly `recv_bytes` bytes from rank (Rank()-1+W)%World().
  // Either side may be zero (empty contract chunks still exchange a frame so
  // the schedule stays in lockstep). Blocks until both directions complete.
  // Every rank of the world must call this collectively with matching counts
  // (receiver's recv_bytes == its predecessor's send_bytes).
  virtual void RingExchange(const void* send_buf, int64_t send_bytes,
                            void* recv_buf, int64_t recv_bytes) = 0;

  // Blocks until every rank has entered the barrier.
  virtual void Barrier() = 0;

  // Control plane: rank 0's `bytes` bytes at `data` are delivered to every
  // rank; returns the message on all ranks (rank 0 included). Non-root ranks'
  // arguments are ignored (pass nullptr, 0). Collective.
  virtual std::vector<uint8_t> Broadcast(const void* data, int64_t bytes) = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_H_
