// Frame-integrity decorator: checksums + sequence numbers over any Transport.
//
// Every RingExchange and Broadcast payload gains an 8-byte header and an
// 8-byte trailer (16 bytes of framing total, little-endian):
//
//   [u32 seq][u16 kind][u16 src_rank]  payload  [u64 digest]
//
// where `digest` is FrameDigest64 of the payload, `seq` is a per-stream
// monotonic counter (ring and broadcast streams count independently; every
// rank of a world advances them in lockstep because collectives are
// world-synchronous), and `kind`/`src_rank` pin the frame to its stream and
// sender. The digest TRAILS the payload so a streaming implementation can
// hash bytes as they cross the wire and emit/verify the digest last — that is
// exactly what the TCP transport's native `frame_integrity` mode does (same
// wire format, hashing overlapped with the socket pump; see tcp_transport.h).
// On receive the decorator verifies all four fields and maps failures to
// typed errors:
//
//   digest mismatch        -> kChecksum  (expected/got hex, bytes, seq)
//   seq mismatch           -> kSequence  (duplicate, replayed or skipped frame)
//   bad kind / wrong sender-> kProtocol
//
// A verification failure also calls LocalAbort on the base transport BEFORE
// returning, so peers sharing a poisonable backend (inproc group) or waiting
// on this rank's sockets unwind with a typed error instead of deadlocking.
// Corruption is never silently consumed.
//
// Stack order with fault injection: IntegrityTransport must wrap OUTSIDE the
// fault injector — IntegrityTransport(FaultInjectingTransport(backend)) — so
// injected corruption happens below the checksum and is caught by it.
//
// Barrier carries no payload and passes through. The decorator does not own
// the base transport.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_INTEGRITY_TRANSPORT_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_INTEGRITY_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "src/distributed/transport/transport.h"

namespace egeria {

// Framing bytes around every ring/broadcast payload: an 8-byte
// [seq][kind][src_rank] header before it and an 8-byte digest trailer after.
inline constexpr int64_t kIntegrityHeaderBytes = 8;
inline constexpr int64_t kIntegrityTrailerBytes = 8;
inline constexpr int64_t kIntegrityOverheadBytes =
    kIntegrityHeaderBytes + kIntegrityTrailerBytes;

// Stream tags in the frame header's `kind` field, shared with the TCP
// transport's native frame_integrity mode (identical wire format).
inline constexpr uint16_t kIntegrityKindRing = 1;
inline constexpr uint16_t kIntegrityKindBcast = 2;

class IntegrityTransport : public Transport {
 public:
  explicit IntegrityTransport(Transport* base) : base_(base) {}

  int Rank() const override { return base_->Rank(); }
  int World() const override { return base_->World(); }

  TransportStatus RingExchange(const void* send_buf, int64_t send_bytes,
                               void* recv_buf, int64_t recv_bytes) override;
  TransportStatus Barrier() override { return base_->Barrier(); }
  TransportStatus Broadcast(const void* data, int64_t bytes,
                            std::vector<uint8_t>* out) override;
  void LocalAbort(const TransportStatus& reason) override {
    base_->LocalAbort(reason);
  }

 private:
  // Latches the first verification failure, poisons the base transport, and
  // returns the status.
  TransportStatus FailVerify(TransportStatus st);

  Transport* base_;
  TransportStatus failed_;
  uint32_t ring_send_seq_ = 0;
  uint32_t ring_recv_seq_ = 0;
  uint32_t bcast_seq_ = 0;
  // Scratch frames reused across collectives to avoid per-step allocation.
  std::vector<uint8_t> send_frame_;
  std::vector<uint8_t> recv_frame_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_INTEGRITY_TRANSPORT_H_
