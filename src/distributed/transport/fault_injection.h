// Deterministic fault injection for the distributed runtime.
//
// FaultInjectingTransport is a Transport decorator that perturbs collectives
// according to a declarative, fully deterministic FaultPlan — no RNG at
// injection time, so a failing chaos seed replays bit-for-bit. Plans come
// from either an explicit spec ("corrupt:6,delay:9") or a seed
// ("seed:17"), which expands through a splitmix64 chain into one fault at a
// derived (kind, target rank, iteration).
//
// Kinds:
//   corrupt   flip one payload byte of the next ring frame (below the
//             integrity header) -> receiver reports kChecksum
//   truncate  send half the announced ring frame -> receiver reports
//             kSequence (size desync)
//   dup       resend the previous ring frame instead of the current one ->
//             receiver reports kSequence (stale sequence number)
//   delay     sleep ~400ms before the next collective — transient; the run
//             must still complete (exercises the hang detector's grace)
//   drop      fail the local endpoint as if the connection dropped ->
//             this rank sees kPeerClosed, peers see closed sockets / a
//             poisoned group
//   hang      process-level: the worker's iteration hook blocks forever
//             (exercises the heartbeat failure detector)
//   exit      process-level: the worker exits(3) mid-training
//             (exercises crash recovery)
//
// Transport-level faults arm at BeginIteration(i) (the trainer's iteration
// hook) and fire on the NEXT matching collective; corrupt/truncate/dup apply
// to ring frames only (broadcast is root-asymmetric), delay/drop to any
// collective. hang/exit are executed by the worker process itself, not here.
//
// Stack order: IntegrityTransport(FaultInjectingTransport(backend)) — faults
// inject BELOW the checksum layer, so corruption is detected, not trusted.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_FAULT_INJECTION_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/distributed/transport/transport.h"

namespace egeria {

enum class FaultKind : int {
  kCorrupt,
  kTruncate,
  kDelay,
  kDrop,
  kDup,
  kHang,
  kExit,
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDelay;
  // Training iteration (1-based) at which the fault arms. For hang/exit,
  // iter <= 0 means "before the transport is even wired" (worker-level).
  int64_t iter = 0;
  int delay_ms = 400;  // kDelay only; must stay under the hang-detector grace
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // Parses a worker --fault spec: comma-separated `kind:iter` entries with
  // kinds hang/exit/corrupt/truncate/delay/drop/dup, or a single `seed:S`
  // entry expanded via FromSeed (hence world/rank). An entry may carry a rank
  // qualifier — `kind@R:iter` — in which case it produces an event only when
  // R == rank; launchers that pass one identical spec to every rank can thus
  // fault a single rank (the straggler drills in scripts/check.sh do this).
  // Unknown kinds, malformed iterations, and out-of-range rank qualifiers are
  // rejected with a message listing the valid forms — never silently ignored.
  static bool Parse(const std::string& spec, int world, int rank,
                    FaultPlan* out, std::string* error);

  // Deterministically derives one fault from `seed`: a kind from
  // {corrupt, truncate, delay, drop, hang, exit}, a target rank, and an
  // iteration in [2, 11]. Every rank calls this with the same seed; only the
  // derived target rank receives a non-empty plan, so one seed fully
  // describes a world-wide chaos scenario.
  static FaultPlan FromSeed(uint64_t seed, int world, int rank);
};

// Decorator executing the transport-level faults of a plan. Process-level
// kinds (hang/exit) in the plan are ignored here; callers (egeria_worker)
// handle them in the iteration hook. Does not own the base transport.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(Transport* base, FaultPlan plan);

  // Called from the trainer's iteration hook; arms every plan event whose
  // iter matches. Events fire on the next matching collective.
  void BeginIteration(int64_t iter);

  int Rank() const override { return base_->Rank(); }
  int World() const override { return base_->World(); }

  TransportStatus RingExchange(const void* send_buf, int64_t send_bytes,
                               void* recv_buf, int64_t recv_bytes) override;
  TransportStatus Barrier() override;
  TransportStatus Broadcast(const void* data, int64_t bytes,
                            std::vector<uint8_t>* out) override;
  void LocalAbort(const TransportStatus& reason) override {
    base_->LocalAbort(reason);
  }

 private:
  // Fires any armed delay/drop (any collective). Returns non-ok if the
  // endpoint dropped.
  TransportStatus FireGenericFaults();
  bool TakeArmed(FaultKind kind);

  Transport* base_;
  FaultPlan plan_;
  std::vector<FaultEvent> armed_;
  bool capture_frames_ = false;        // plan contains a dup event
  std::vector<uint8_t> last_frame_;    // previous ring send, for dup
  std::vector<uint8_t> scratch_;
  TransportStatus failed_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_FAULT_INJECTION_H_
