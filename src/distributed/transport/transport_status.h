// Typed, recoverable transport errors.
//
// The transport layer used to abort the whole process on any anomaly
// (EGERIA_CHECK). That turned every infrastructure hiccup — a dead peer, a
// hung rank, a flipped byte — into an unattributable crash. Steady-state
// transport operations now return a TransportStatus instead: the error
// propagates as a value through the collectives (RingExchange/Barrier/
// Broadcast -> RingCirculate -> RingAllReducer / ShardedSgd::Reshard ->
// TrainRank), so a failure surfaces as a recoverable, diagnosable condition
// at the training loop, which exits cleanly (committing no torn checkpoint
// state) and lets the launcher restart the world from the last complete
// checkpoint.
//
// Hard EGERIA_CHECKs remain only for programmer errors (negative sizes,
// calling a collective out of contract) and for construction-time wiring
// failures, where the process has nothing to clean up yet.
#ifndef EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_STATUS_H_
#define EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_STATUS_H_

#include <string>
#include <utility>

namespace egeria {

enum class TransportError : int {
  kOk = 0,
  kPeerClosed,  // peer closed / reset a link (crash, clean exit, drop fault)
  kTimeout,     // deadline expired inside a blocking operation
  kChecksum,    // frame payload digest mismatch (corruption on the wire)
  kSequence,    // frame size or sequence-number desync (lost/dup/truncated)
  kProtocol,    // malformed frame (bad magic/kind/short header)
  kAborted,     // coordinated world abort (failure detector or LocalAbort)
  kIo,          // socket-level failure (send/recv/poll errno)
};

// Stable lowercase token for logs and EGERIA_ABORT key=value output.
inline const char* TransportErrorName(TransportError code) {
  switch (code) {
    case TransportError::kOk:
      return "ok";
    case TransportError::kPeerClosed:
      return "peer_closed";
    case TransportError::kTimeout:
      return "timeout";
    case TransportError::kChecksum:
      return "checksum";
    case TransportError::kSequence:
      return "sequence";
    case TransportError::kProtocol:
      return "protocol";
    case TransportError::kAborted:
      return "aborted";
    case TransportError::kIo:
      return "io";
  }
  return "unknown";
}

struct TransportStatus {
  TransportError code = TransportError::kOk;
  std::string message;

  bool ok() const { return code == TransportError::kOk; }
  const char* code_name() const { return TransportErrorName(code); }

  static TransportStatus Ok() { return TransportStatus{}; }
  static TransportStatus Error(TransportError code, std::string message) {
    return TransportStatus{code, std::move(message)};
  }
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_TRANSPORT_TRANSPORT_STATUS_H_
