#include "src/distributed/dist_trainer.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <tuple>

#include "src/core/controller.h"
#include "src/distributed/allreduce.h"
#include "src/distributed/flat_view.h"
#include "src/optim/optimizer.h"
#include "src/optim/sharded_optimizer.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

int64_t CountElems(const std::vector<Parameter*>& params) {
  int64_t n = 0;
  for (const Parameter* p : params) {
    n += p->value.NumEl();
  }
  return n;
}

uint64_t Fnv1a(const void* data, size_t len, uint64_t h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Shared freeze state broadcast from the controller (worker 0) to all workers.
//
// Rank 0 publishes decisions mid-iteration, racing with other ranks' start-of-
// iteration reads: a fast rank 0 can publish iteration i's decision before a slow
// rank has read the state for iteration i. The state is therefore a single packed
// word holding BOTH the frontier active now and the one scheduled for the next
// iteration, so every rank resolves the same frontier for the same iteration no
// matter when its read lands relative to the publish.
struct SharedFreezeState {
  // current:16 | pending:16 | apply_iter:32 (iteration at which pending activates).
  std::atomic<uint64_t> packed{0};

  static uint64_t Pack(int current, int pending, int64_t apply_iter) {
    return (static_cast<uint64_t>(static_cast<uint16_t>(current)) << 48) |
           (static_cast<uint64_t>(static_cast<uint16_t>(pending)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(apply_iter));
  }
  // Frontier in effect at iteration `iter`.
  static int ResolveAt(uint64_t packed, int64_t iter) {
    const int current = static_cast<int>(static_cast<uint16_t>(packed >> 48));
    const int pending = static_cast<int>(static_cast<uint16_t>(packed >> 32));
    const int64_t apply_iter = static_cast<int64_t>(static_cast<uint32_t>(packed));
    return iter >= apply_iter ? pending : current;
  }
};

}  // namespace

DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg) {
  EGERIA_CHECK(cfg.world >= 1);
  EGERIA_CHECK(cfg.lr_schedule != nullptr);

  // Build replicas and broadcast rank 0's weights.
  std::vector<std::unique_ptr<ChainModel>> replicas;
  for (int r = 0; r < cfg.world; ++r) {
    replicas.push_back(make_model());
  }
  for (int r = 1; r < cfg.world; ++r) {
    replicas[static_cast<size_t>(r)]->CopyStateFrom(*replicas[0]);
  }

  // One loader per rank over the same permutation; rank r consumes batches
  // r, r+world, r+2*world, ... (disjoint shards of each epoch).
  DataLoader loader(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
  const int64_t steps_per_epoch = loader.NumBatches() / cfg.world;
  EGERIA_CHECK_MSG(steps_per_epoch >= 1, "dataset too small for this world size");

  const bool sharded = cfg.reducer == DistTrainConfig::Reducer::kRingSharded;
  GradientAllReducer reducer(cfg.world);
  RingAllReducer ring(cfg.world);
  ShardedSgdGroup shard_group(cfg.world, cfg.momentum, cfg.weight_decay);
  std::vector<DistReshardEvent> reshard_events;  // written by rank 0 only
  SharedFreezeState freeze_state;
  std::unique_ptr<EgeriaController> controller;
  if (cfg.enable_egeria) {
    controller = std::make_unique<EgeriaController>(cfg.egeria, replicas[0]->NumStages(),
                                                    cfg.lr_schedule->IsAnnealing());
  }
  std::atomic<int64_t> bytes_synced{0};
  const int64_t full_bytes_per_iter =
      replicas[0]->TotalParamCount() * static_cast<int64_t>(sizeof(float));
  std::atomic<int64_t> full_bytes_total{0};

  auto worker_fn = [&](int rank) {
    ChainModel& model = *replicas[static_cast<size_t>(rank)];
    model.SetTraining(true);
    Sgd opt(cfg.momentum, cfg.weight_decay);
    int frontier = 0;
    int64_t iter = 0;
    bool knowledge_stage = !cfg.enable_egeria;

    const int64_t total_elems = model.TotalParamCount();
    int64_t shard_begin = 0;
    int64_t shard_end = 0;
    // Collective shard (re)partition over the active suffix at `frontier`.
    // Every rank resolves the same frontier for the same iteration (see
    // SharedFreezeState), so all ranks reach this in lockstep.
    auto reshard = [&](int at_frontier, int64_t at_iter) {
      const int64_t active = CountElems(model.ParamsFrom(at_frontier));
      std::tie(shard_begin, shard_end) =
          shard_group.Reshard(rank, total_elems - active, active);
      if (rank == 0) {
        DistReshardEvent ev;
        ev.iter = at_iter;
        ev.frontier = at_frontier;
        ev.active_elems = active;
        ev.payload_bytes_per_iter = active * static_cast<int64_t>(sizeof(float));
        // Chunk 0 is the largest contract chunk, and rank 0 owns it.
        ev.opt_state_bytes_per_rank = shard_group.StateBytes(0);
        reshard_events.push_back(ev);
      }
    };
    if (sharded) {
      reshard(frontier, 0);
    }

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
      // Every rank derives the same permutation (deterministic in (seed, epoch)).
      DataLoader local(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
      local.StartEpoch(epoch);
      for (int64_t s = 0; s < steps_per_epoch; ++s) {
        ++iter;
        const float lr = cfg.lr_schedule->LrAt(iter);

        // Apply the freeze state in effect for this iteration. ResolveAt makes the
        // read race-free: whether or not rank 0 has already published this
        // iteration's decision (scheduled for iter+1), every rank resolves the
        // same frontier for `iter`.
        const int new_frontier =
            SharedFreezeState::ResolveAt(freeze_state.packed.load(), iter);
        if (new_frontier != frontier) {
          for (int i = 0; i < model.NumStages(); ++i) {
            model.SetStageFrozen(i, i < new_frontier);
          }
          frontier = new_frontier;
          if (sharded) {
            // Frontier moved: drop the newly frozen prefix from the shard map
            // (and its optimizer state), repartition the survivors.
            reshard(frontier, iter);
          }
        }

        Batch batch = local.GetBatch(s * cfg.world + rank);
        model.SetBatch(batch);
        Tensor logits = model.ForwardFrom(0, batch.input);
        LossResult loss = TaskLoss(cfg.task, logits, batch);

        for (Parameter* p : model.ParamsFrom(frontier)) {
          p->grad.Zero_();
        }
        model.BackwardTo(frontier, loss.grad);

        // Controller duties on rank 0 only (logically centralized, Fig. 5). Runs
        // BEFORE this iteration's all-reduce barrier so that a published freeze
        // decision happens-before every rank's next iteration start — all ranks then
        // apply it at the same iteration boundary and keep identical active sets.
        if (rank == 0 && controller != nullptr) {
          if (!cfg.egeria.async_controller) {
            controller->RunPendingSync();
          }
          if (!knowledge_stage && iter >= cfg.egeria.eval_interval_n) {
            knowledge_stage = true;  // Simplified bootstrap: fixed warmup.
          }
          if (knowledge_stage && controller->WantsSnapshot()) {
            InferenceFactory float_factory;
            controller->SubmitSnapshot(model.CloneForInference(float_factory));
          }
          if (knowledge_stage && iter % cfg.egeria.eval_interval_n == 0 &&
              frontier < model.NumStages() - 1 - cfg.egeria.protected_tail + 1) {
            EvalRequest req;
            req.batch = batch;
            req.train_act = model.StageOutput(frontier);
            req.stage = frontier;
            req.lr = lr;
            req.iter = iter;
            controller->SubmitEval(std::move(req));
          }
          bool changed = false;
          int new_frontier = frontier;
          for (const FreezeDecision& d : controller->DrainDecisions()) {
            if (d.kind == FreezeDecision::Kind::kFreezeUpTo) {
              new_frontier = d.stage + 1;
            } else {
              new_frontier = 0;
            }
            changed = true;
          }
          if (auto d = controller->OnLr(lr, iter)) {
            new_frontier = (d->kind == FreezeDecision::Kind::kUnfreezeAll) ? 0 : new_frontier;
            changed = true;
          }
          if (changed) {
            // `frontier` is what every rank resolved for this iteration; the new
            // decision takes effect at iter+1 on all ranks simultaneously (the
            // all-reduce barrier below orders this publish before any rank's
            // iter+1 read).
            freeze_state.packed.store(
                SharedFreezeState::Pack(frontier, new_frontier, iter + 1));
          }
        }

        // Synchronize only active parameters — frozen stages are "excluded from
        // parameter synchronization" (paper S4.2.2, Fig. 10).
        const std::vector<Parameter*> active = model.ParamsFrom(frontier);
        if (sharded) {
          // ZeRO-1 round: ring reduce-scatter the gradients, owner applies the
          // optimizer update on its shard, ring all-gather the updated weights.
          FlatParamView grads(active, FlatParamView::Field::kGrad);
          const auto owned = ring.ReduceScatterAverage(rank, grads);
          EGERIA_CHECK(owned.first == shard_begin && owned.second == shard_end);
          FlatParamView values(active, FlatParamView::Field::kValue);
          shard_group.Step(rank, values, grads, shard_begin, shard_end, lr);
          ring.AllGather(rank, values);
        } else {
          reducer.AllReduce(rank, active);
        }
        if (rank == 0) {
          int64_t payload = 0;
          for (Parameter* p : active) {
            payload += p->grad.NumEl() * static_cast<int64_t>(sizeof(float));
          }
          bytes_synced.fetch_add(payload);
          full_bytes_total.fetch_add(full_bytes_per_iter);
        }
        if (!sharded) {
          opt.Step(active, lr);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < cfg.world; ++r) {
    threads.emplace_back(worker_fn, r);
  }
  for (auto& t : threads) {
    t.join();
  }

  DistTrainResult result;
  result.bytes_synced = bytes_synced.load();
  result.bytes_full_model = full_bytes_total.load();
  result.wire_bytes = ring.TotalWireBytes();
  result.reshard_events = std::move(reshard_events);
  result.final_frontier = SharedFreezeState::ResolveAt(
      freeze_state.packed.load(), std::numeric_limits<int64_t>::max());
  result.iterations = static_cast<int64_t>(cfg.epochs) * steps_per_epoch;

  // Replica consistency: synchronized SGD on averaged gradients must keep replicas
  // identical (up to float nondeterminism, which our sequential reduce avoids).
  result.replicas_consistent = true;
  auto params0 = replicas[0]->ParamsFrom(0);
  for (int r = 1; r < cfg.world && result.replicas_consistent; ++r) {
    auto pr = replicas[static_cast<size_t>(r)]->ParamsFrom(0);
    for (size_t i = 0; i < params0.size(); ++i) {
      const Tensor& a = params0[i]->value;
      const Tensor& b = pr[i]->value;
      for (int64_t j = 0; j < a.NumEl(); ++j) {
        if (std::abs(a.Data()[j] - b.Data()[j]) > 1e-6F) {
          result.replicas_consistent = false;
          break;
        }
      }
      if (!result.replicas_consistent) {
        break;
      }
    }
  }

  // Content hash of the trained weights, for cross-path equivalence tests
  // (ring-sharded vs sequential-reference must agree bitwise).
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (Parameter* p : params0) {
    hash = Fnv1a(p->value.Data(),
                 static_cast<size_t>(p->value.NumEl()) * sizeof(float), hash);
  }
  result.params_hash = hash;

  // Validate on replica 0.
  replicas[0]->SetTraining(false);
  DataLoader val_loader(val_data, cfg.batch_size, /*shuffle=*/false, cfg.seed + 1);
  std::vector<TaskMetric> parts;
  const int64_t nb = std::min<int64_t>(cfg.val_batches, val_loader.NumBatches());
  for (int64_t b = 0; b < nb; ++b) {
    Batch batch = val_loader.GetBatch(b);
    replicas[0]->SetBatch(batch);
    Tensor logits = replicas[0]->ForwardFrom(0, batch.input);
    parts.push_back(EvaluateTask(cfg.task, logits, batch));
  }
  const TaskMetric metric = AggregateMetric(cfg.task, parts);
  result.final_score = metric.score;
  result.final_display = metric.display;
  return result;
}

}  // namespace egeria
