#include "src/distributed/dist_trainer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <thread>
#include <tuple>
#include <unistd.h>

#include <fstream>

#include "src/ckpt/async_writer.h"
#include "src/ckpt/state_dict.h"
#include "src/ckpt/wire.h"
#include "src/core/controller.h"
#include "src/distributed/allreduce.h"
#include "src/distributed/flat_view.h"
#include "src/distributed/overlap_reducer.h"
#include "src/distributed/transport/inproc_transport.h"
#include "src/distributed/transport/integrity_transport.h"
#include "src/distributed/transport/tcp_transport.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/optim/optimizer.h"
#include "src/optim/sharded_optimizer.h"
#include "src/tensor/serialize.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

int64_t CountElems(const std::vector<Parameter*>& params) {
  int64_t n = 0;
  for (const Parameter* p : params) {
    n += p->value.NumEl();
  }
  return n;
}

uint64_t HashParams(const std::vector<Parameter*>& params) {
  uint64_t hash = kFnv64Offset;
  for (const Parameter* p : params) {
    hash = Fnv1a64(p->value.Data(),
                   static_cast<size_t>(p->value.NumEl()) * sizeof(float), hash);
  }
  return hash;
}

// The per-iteration control-plane message rank 0 broadcasts: the freeze
// frontier that takes effect from the NEXT iteration on. A fixed little
// serialized struct (not a shared atomic) so the decision crosses process
// boundaries; every rank applies it at the same iteration boundary, which is
// what keeps active sets — and therefore the reduction payload — identical
// across ranks.
struct FreezeMsg {
  int32_t next_frontier = 0;
};

TransportStatus ExchangeFrontier(Transport& transport, int rank, int32_t pending,
                                 int32_t* next_frontier) {
  FreezeMsg msg{pending};
  std::vector<uint8_t> wire;
  TransportStatus st = transport.Broadcast(
      rank == 0 ? &msg : nullptr, rank == 0 ? sizeof(msg) : 0, &wire);
  if (!st.ok()) {
    return st;
  }
  EGERIA_CHECK_MSG(wire.size() == sizeof(FreezeMsg), "bad freeze control message");
  std::memcpy(&msg, wire.data(), sizeof(msg));
  *next_frontier = msg.next_frontier;
  return st;
}

// ---- Distributed checkpoint files ----

constexpr uint32_t kShardMagic = 0x44534745;  // 'EGSD'
constexpr uint32_t kDistStateMagic = 0x44544745;  // 'EGTD'
constexpr uint32_t kDistStateVersion = 1;

std::string ShardFileName(int rank) {
  return "shard_r" + std::to_string(rank) + ".state";
}

// Per-replica buffer section (BatchNorm running statistics): never
// synchronized by training, so every rank persists its own.
std::string BuffersFileName(int rank) {
  return "buffers_r" + std::to_string(rank) + ".state";
}

bool WriteShardFile(const std::string& path, const ShardedSgd::ShardState& s) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  wire::Write(os, kShardMagic);
  wire::Write(os, kDistStateVersion);
  wire::Write(os, s.frozen_elems);
  wire::Write(os, s.active_elems);
  wire::Write(os, s.global_begin);
  wire::Write(os, s.global_end);
  wire::WriteFloats(os, s.velocity);
  return static_cast<bool>(os);
}

// Typed all-ranks checkpoint status, reduced around the ring (W-1 exchange
// steps): each rank contributes (error code, rank) for its local snapshot
// write; the reduction keeps the failing entry of the LOWEST rank, so every
// rank deterministically agrees on one culprit to report. Doubles as the
// rendezvous that guarantees every rank's files are fully written before
// rank 0 hashes them into the manifest. A manifest must never commit over a
// torn peer file: the torn bytes would checksum "valid" and poison every
// future resume of that step — which is why the rank-0 commit is strictly
// conditional on the reduced status being clean, never on rank 0's local
// write alone.
struct CkptStatusWire {
  int32_t code = 0;   // TransportError as int32; 0 == ok
  int32_t rank = -1;  // the rank reporting `code` (lowest failing rank wins)
};

TransportStatus AllRanksCkptStatus(Transport& transport, bool local_ok,
                                   CkptStatusWire* worst) {
  CkptStatusWire acc;
  if (!local_ok) {
    acc.code = static_cast<int32_t>(TransportError::kIo);
    acc.rank = transport.Rank();
  }
  for (int step = 0; step + 1 < transport.World(); ++step) {
    CkptStatusWire incoming;
    TransportStatus st =
        transport.RingExchange(&acc, sizeof(acc), &incoming, sizeof(incoming));
    if (!st.ok()) {
      return st;
    }
    if (incoming.code != 0 &&
        (acc.code == 0 || incoming.rank < acc.rank)) {
      acc = incoming;
    }
  }
  *worst = acc;
  return TransportStatus::Ok();
}

bool ReadShardFile(const std::string& path, ShardedSgd::ShardState& s) {
  std::ifstream is(path, std::ios::binary);
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!is || !wire::Read(is, magic) || magic != kShardMagic ||
      !wire::Read(is, version) || version != kDistStateVersion ||
      !wire::Read(is, s.frozen_elems) || !wire::Read(is, s.active_elems) ||
      !wire::Read(is, s.global_begin) || !wire::Read(is, s.global_end) ||
      !wire::ReadFloats(is, s.velocity) ||
      s.global_end - s.global_begin != static_cast<int64_t>(s.velocity.size())) {
    EGERIA_LOG(kError) << path << ": malformed optimizer shard";
    return false;
  }
  return true;
}

}  // namespace

// Propagates a transport error out of TrainRank: records the first error on
// the result (errors-as-values — a dead, hung or corrupting peer surfaces to
// the caller, never an abort), hands the model back, and returns. The typed
// error code also lands as an instant event on this rank's trace track, so a
// merged timeline shows WHERE in the phase structure the world came apart.
// Requires `result` and `model_owner` in scope.
#define EGERIA_RETURN_ON_TRANSPORT_ERROR(expr)                      \
  do {                                                              \
    TransportStatus st_ = (expr);                                   \
    if (!st_.ok()) {                                                \
      trace::AddInstantF("transport", "error", "{\"code\":\"%s\"}", \
                         st_.code_name());                          \
      obs::GetCounter("transport.errors").Add(1);                   \
      result.status = std::move(st_);                               \
      result.model = std::move(model_owner);                        \
      return result;                                                \
    }                                                               \
  } while (0)

RankTrainResult TrainRank(
    Transport& transport,
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg,
    GradientAllReducer* reference_reducer) {
  const int rank = transport.Rank();
  const int world = transport.World();
  EGERIA_CHECK(world >= 1 && cfg.world == world);
  EGERIA_CHECK(cfg.lr_schedule != nullptr);
  const bool sharded = cfg.reducer == DistTrainConfig::Reducer::kRingSharded;
  EGERIA_CHECK_MSG(sharded || reference_reducer != nullptr,
                   "sequential reference reducer requires in-process ranks");

  RankTrainResult result;
  result.rank = rank;

  // Observability: the in-process harness runs ranks as threads, so tracing
  // may already be initialized — InitFromEnv is idempotent and SetThreadName
  // is first-call-wins per thread. The multi-process worker additionally sets
  // the process rank/label before calling in (tools/egeria_worker.cc).
  trace::InitFromEnv();
  trace::SetThreadName(("rank" + std::to_string(rank)).c_str());
  obs::InstallDumpSignalHandler();
  obs::Histogram& data_hist = obs::GetHistogram("dist.data_s");
  obs::Histogram& fp_hist = obs::GetHistogram("dist.fp_s");
  obs::Histogram& bp_hist = obs::GetHistogram("dist.bp_s");
  obs::Histogram& opt_hist = obs::GetHistogram("dist.opt_s");
  obs::Histogram& comm_wait_hist = obs::GetHistogram("dist.comm_wait_s");
  obs::Counter& iter_counter = obs::GetCounter("dist.iterations");

  std::unique_ptr<ChainModel> model_owner = make_model();
  ChainModel& model = *model_owner;

  // Broadcast rank 0's initial weights so every replica starts bit-identical.
  {
    const std::vector<Parameter*> all = model.ParamsFrom(0);
    FlatParamView values(all, FlatParamView::Field::kValue);
    std::vector<uint8_t> buf;
    if (rank == 0) {
      buf.resize(static_cast<size_t>(values.NumEl()) * sizeof(float));
      values.CopyOut(0, values.NumEl(), reinterpret_cast<float*>(buf.data()));
    }
    std::vector<uint8_t> weights;
    EGERIA_RETURN_ON_TRANSPORT_ERROR(transport.Broadcast(
        buf.data(), static_cast<int64_t>(buf.size()), &weights));
    EGERIA_CHECK_MSG(static_cast<int64_t>(weights.size()) ==
                         values.NumEl() * static_cast<int64_t>(sizeof(float)),
                     "initial weight broadcast size mismatch (model divergence?)");
    if (rank != 0) {
      values.CopyIn(0, values.NumEl(), reinterpret_cast<const float*>(weights.data()));
    }
  }
  // The weight broadcast every rank just completed is the first collective of
  // the run — all ranks leave it within one propagation delay of each other,
  // so stamping the steady clock here gives tools/egeria_trace a common
  // instant to align per-process timelines on (no extra barrier traffic, so
  // fault-injection op counts are untouched).
  trace::MarkSync();

  // One loader per rank over the same permutation; rank r consumes batches
  // r, r+world, r+2*world, ... (disjoint shards of each epoch).
  DataLoader loader(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
  const int64_t steps_per_epoch = loader.NumBatches() / world;
  EGERIA_CHECK_MSG(steps_per_epoch >= 1, "dataset too small for this world size");

  RingAllReducer ring(transport);
  ShardedSgd shard_opt(cfg.momentum, cfg.weight_decay);
  std::unique_ptr<EgeriaController> controller;
  if (cfg.enable_egeria && rank == 0) {
    controller = std::make_unique<EgeriaController>(cfg.egeria, model.NumStages(),
                                                    cfg.lr_schedule->IsAnnealing());
  }

  model.SetTraining(true);
  Sgd opt(cfg.momentum, cfg.weight_decay);
  int frontier = 0;
  int32_t next_frontier = 0;
  int64_t iter = 0;
  bool knowledge_stage = !cfg.enable_egeria;
  const int64_t total_elems = model.TotalParamCount();
  const int64_t full_bytes_per_iter = total_elems * static_cast<int64_t>(sizeof(float));
  int64_t shard_begin = 0;
  int64_t shard_end = 0;
  double seg_comm_start = 0.0;  // ring.CommSeconds() at current segment start
  double seg_hidden_start = 0.0;   // overlap hidden-seconds at segment start
  double seg_exposed_start = 0.0;  // overlap exposed-seconds at segment start

  // Overlapped reducer (tentpole): a dedicated comm thread runs per-stage
  // bucket rounds while backward computes, fed by the model's stage-backward
  // observer. Constructed only on the ring-sharded path with overlap enabled;
  // the sequential round stays available as the bitwise pin baseline.
  const bool overlap = sharded && cfg.overlap_comm;
  std::optional<OverlapReducer> overlap_reducer;
  if (overlap) {
    overlap_reducer.emplace(transport, ring, shard_opt);
    model.SetStageBackwardObserver(
        [&ov = *overlap_reducer](int stage) { ov.NotifyStageReady(stage); });
  }
  // The observer closes over the stack-scoped reducer but the model outlives
  // this frame (it is handed back on the result), so detach it on every exit
  // path. Destroyed before overlap_reducer (declared after it), so no stray
  // notification can reach a dying reducer either.
  struct ObserverGuard {
    ChainModel& m;
    ~ObserverGuard() { m.SetStageBackwardObserver(nullptr); }
  } observer_guard{model};

  // Per-stage buckets over the flat active space at `at_frontier`: ParamsFrom
  // concatenates StageParams in stage order, so stage extents are contiguous
  // prefix sums. Frozen stages (< frontier) simply never appear — they have
  // left the bucket schedule along with the payload. Adjacent stages coalesce
  // until each bucket holds >= overlap_min_bucket_elems: the partition is
  // bitwise-free (ownership and fold order are fixed by the GLOBAL contract
  // chunks), and since backward runs deep to front, a merged bucket's grads
  // are all final when its FRONT-most stage — the bucket's label, whose
  // NotifyStageReady fires last among its members — completes backward.
  auto make_buckets = [&](int at_frontier) {
    std::vector<OverlapReducer::Bucket> buckets;
    int64_t offset = 0;
    for (int stage = at_frontier; stage < model.NumStages(); ++stage) {
      const int64_t n = model.StageParamCount(stage);
      buckets.push_back(OverlapReducer::Bucket{stage, offset, offset + n});
      offset += n;
    }
    const int64_t min_elems = cfg.overlap_min_bucket_elems;
    if (min_elems > 0) {
      std::vector<OverlapReducer::Bucket> merged;
      for (const OverlapReducer::Bucket& b : buckets) {
        // The open bucket absorbs deeper stages until full; its stage label
        // stays the front-most member, so readiness still means "every
        // member's backward is done" by the deep-to-front order.
        if (!merged.empty() && merged.back().end - merged.back().begin < min_elems) {
          merged.back().end = b.end;
        } else {
          merged.push_back(b);
        }
      }
      buckets = std::move(merged);
    }
    return buckets;
  };

  // Finalize the measured all-reduce seconds of the segment that just ended on
  // rank 0's timeline. A segment recorded at event iter E covers the collective
  // rounds of iterations max(E,1) .. next_start_iter-1 (iterations are numbered
  // from 1; the initial partition is recorded at E=0 but its first round runs
  // at iteration 1), so that is the round count to divide by.
  auto finalize_segment = [&](int64_t next_start_iter) {
    if (rank != 0 || result.reshard_events.empty()) {
      return;
    }
    DistReshardEvent& prev = result.reshard_events.back();
    const int64_t rounds = next_start_iter - std::max<int64_t>(prev.iter, 1);
    prev.allreduce_seconds_per_iter =
        rounds > 0
            ? (ring.CommSeconds() - seg_comm_start) / static_cast<double>(rounds)
            : 0.0;
    seg_comm_start = ring.CommSeconds();
    if (overlap_reducer.has_value() && rounds > 0) {
      prev.comm_hidden_s_per_iter =
          (overlap_reducer->TotalHiddenSeconds() - seg_hidden_start) /
          static_cast<double>(rounds);
      prev.comm_exposed_s_per_iter =
          (overlap_reducer->TotalExposedSeconds() - seg_exposed_start) /
          static_cast<double>(rounds);
    }
    if (overlap_reducer.has_value()) {
      seg_hidden_start = overlap_reducer->TotalHiddenSeconds();
      seg_exposed_start = overlap_reducer->TotalExposedSeconds();
    }
  };

  // Collective shard (re)partition over the active suffix at `at_frontier`.
  // Every rank applies the same frontier at the same iteration (the control
  // broadcast), so all ranks reach this in lockstep.
  auto reshard = [&](int at_frontier, int64_t at_iter) -> TransportStatus {
    EGERIA_TRACE_SCOPE("dist", "reshard");
    const int64_t active = CountElems(model.ParamsFrom(at_frontier));
    std::pair<int64_t, int64_t> shard{0, 0};
    TransportStatus st =
        shard_opt.Reshard(transport, total_elems - active, active, &shard);
    if (!st.ok()) {
      return st;
    }
    std::tie(shard_begin, shard_end) = shard;
    if (rank == 0) {
      finalize_segment(at_iter);
      DistReshardEvent ev;
      ev.iter = at_iter;
      ev.frontier = at_frontier;
      ev.active_elems = active;
      ev.payload_bytes_per_iter = active * static_cast<int64_t>(sizeof(float));
      // Chunk 0 is the largest contract chunk, and rank 0 owns it.
      ev.opt_state_bytes_per_rank = shard_opt.StateBytes();
      result.reshard_events.push_back(ev);
    }
    return TransportStatus::Ok();
  };
  // ---- Checkpoint plumbing ----
  // The save is split into CAPTURE and COMMIT so the file writes can overlap
  // compute (ckpt/async_writer.h):
  //   capture — at the checkpoint boundary, clone everything the snapshot
  //     needs (shard copy, buffer/model state dicts, controller + loop state
  //     serialized to strings) and hand the serialization job to the
  //     background writer. The live model trains on immediately; the captured
  //     bytes are bitwise what a synchronous save would have persisted.
  //   commit — at the NEXT iteration boundary (immediately for stop/final
  //     saves and when async_save is off), every rank waits for its local
  //     write, the typed per-rank status is ring-reduced, and rank 0 hashes
  //     the files into the manifest and commits ONLY if every rank reported
  //     clean. The trailing barrier keeps "latest complete checkpoint"
  //     well-defined for every rank before anyone can crash ahead.
  // A crash or transport error anywhere between capture and commit leaves the
  // step directory manifest-less — invisible to resume, swept by retention —
  // so an aborting world can never publish torn state.
  AsyncCheckpointWriter ckpt_writer;
  bool ckpt_pending = false;       // a captured snapshot awaits commit
  bool ckpt_capture_ok = true;     // capture-phase local failures (mkdir etc.)
  int64_t ckpt_pending_iter = -1;
  CkptManifest ckpt_manifest;      // rank 0: metadata fixed at capture time
  bool ckpt_has_controller = false;

  auto capture_checkpoint = [&](int64_t at_iter) {
    // Capture leg of capture→write→commit: the clone the background writer
    // serializes. Its span sits on the rank track; the write span it hands
    // off shows up on the ckpt_writer track, overlapping the next iterations.
    obs::ScopedPhase capture_phase("ckpt", "capture",
                                   &obs::GetHistogram("ckpt.capture_s"));
    const std::string step_dir = CheckpointStepDir(cfg.ckpt.dir, at_iter);
    bool ok = EnsureDir(step_dir);
    // Clone the snapshot: the background thread must never read live state.
    ShardedSgd::ShardState shard_state;
    if (sharded) {
      shard_state = shard_opt.ExportShard();
    }
    Checkpoint buffers = ExportModelBuffers(model);
    Checkpoint state;
    std::string dist_state_bytes;
    std::string controller_bytes;
    bool has_controller = false;
    if (rank == 0) {
      state = ExportModelState(model);
      if (!sharded) {
        // Sequential reference path: the replicated optimizer state is
        // identical on every rank; persist rank 0's alongside the weights.
        std::vector<Parameter*> params;
        std::vector<std::string> names;
        auto named = NamedParams(model);
        for (auto& [name, p] : named) {
          names.push_back(std::move(name));
          params.push_back(p);
        }
        opt.ExportState(params, names, state);
      }
      {
        std::ostringstream os(std::ios::binary);
        wire::Write(os, kDistStateMagic);
        wire::Write(os, kDistStateVersion);
        wire::Write(os, at_iter);
        wire::Write(os, static_cast<uint8_t>(knowledge_stage ? 1 : 0));
        dist_state_bytes = os.str();
      }
      if (controller != nullptr) {
        std::ostringstream os(std::ios::binary);
        controller->SaveState(os);
        ok = ok && static_cast<bool>(os);
        controller_bytes = os.str();
        has_controller = true;
      }
      ckpt_manifest = CkptManifest{};
      ckpt_manifest.kind = "dist";
      ckpt_manifest.iter = at_iter;
      ckpt_manifest.world = world;
      ckpt_manifest.frontier = frontier;
      ckpt_manifest.next_frontier = next_frontier;
      ckpt_manifest.dir = step_dir;
      const int64_t active = CountElems(model.ParamsFrom(frontier));
      ckpt_manifest.frozen_elems = total_elems - active;
      ckpt_manifest.active_elems = active;
    }
    auto write_job = [rank, sharded, step_dir, shard_state = std::move(shard_state),
                      buffers = std::move(buffers), state = std::move(state),
                      dist_state_bytes = std::move(dist_state_bytes),
                      controller_bytes = std::move(controller_bytes),
                      has_controller]() -> bool {
      bool wok = true;
      if (sharded) {
        wok = WriteShardFile(step_dir + "/" + ShardFileName(rank), shard_state);
      }
      wok = wok && SaveCheckpoint(step_dir + "/" + BuffersFileName(rank), buffers);
      if (rank == 0) {
        wok = wok && SaveCheckpoint(step_dir + "/model.state", state);
        {
          std::ofstream os(step_dir + "/dist.state",
                           std::ios::binary | std::ios::trunc);
          os.write(dist_state_bytes.data(),
                   static_cast<std::streamsize>(dist_state_bytes.size()));
          wok = wok && static_cast<bool>(os);
        }
        if (has_controller) {
          std::ofstream os(step_dir + "/controller.state",
                           std::ios::binary | std::ios::trunc);
          os.write(controller_bytes.data(),
                   static_cast<std::streamsize>(controller_bytes.size()));
          wok = wok && static_cast<bool>(os);
        }
      }
      return wok;
    };
    ckpt_capture_ok = ok;
    if (cfg.ckpt.async_save) {
      ckpt_writer.Submit(std::move(write_job));
    } else {
      ckpt_capture_ok = ok && write_job();
    }
    ckpt_pending = true;
    ckpt_pending_iter = at_iter;
    ckpt_has_controller = has_controller;
  };

  auto commit_checkpoint = [&]() -> TransportStatus {
    obs::ScopedPhase commit_phase("ckpt", "commit",
                                  &obs::GetHistogram("ckpt.commit_s"));
    ckpt_pending = false;
    bool local_ok = ckpt_capture_ok;
    if (cfg.ckpt.async_save) {
      local_ok = ckpt_writer.Wait() && local_ok;
    }
    CkptStatusWire worst;
    {
      TransportStatus st = AllRanksCkptStatus(transport, local_ok, &worst);
      if (!st.ok()) {
        return st;
      }
    }
    if (rank == 0) {
      if (worst.code != 0) {
        EGERIA_LOG(kError)
            << "distributed checkpoint at iter " << ckpt_pending_iter << ": rank "
            << worst.rank << " reported status "
            << TransportErrorName(static_cast<TransportError>(worst.code))
            << " writing its files; step abandoned (training continues from "
               "the previous checkpoint)";
      } else {
        CkptManifest m = ckpt_manifest;
        bool ok = AddManifestFile(m, "model.state") && AddManifestFile(m, "dist.state");
        if (ok && ckpt_has_controller) {
          ok = AddManifestFile(m, "controller.state");
        }
        for (int r = 0; r < world && ok; ++r) {
          ok = AddManifestFile(m, BuffersFileName(r));
          if (ok && sharded) {
            ok = AddManifestFile(m, ShardFileName(r));
          }
        }
        if (!ok || !CommitManifest(m)) {
          EGERIA_LOG(kError) << "distributed checkpoint at iter " << ckpt_pending_iter
                             << " failed; training continues uncheckpointed";
        } else {
          ApplyRetention(cfg.ckpt.dir, cfg.ckpt.keep_last);
        }
      }
    }
    return transport.Barrier();
  };

  // ---- Resume ----
  // Rank 0 picks the latest complete checkpoint and broadcasts its iteration,
  // so every rank restores the same step even if retention or a concurrent
  // writer could have raced a per-rank scan.
  int64_t resume_iter = -1;
  if (!cfg.ckpt.dir.empty() && cfg.ckpt.resume) {
    int64_t found = -1;
    if (rank == 0) {
      if (const auto m = FindLatestCheckpoint(cfg.ckpt.dir)) {
        if (m->kind == "dist") {
          found = m->iter;
        } else {
          EGERIA_LOG(kError) << m->dir << " is a '" << m->kind
                             << "' checkpoint; distributed resume ignores it";
        }
      }
    }
    std::vector<uint8_t> msg;
    EGERIA_RETURN_ON_TRANSPORT_ERROR(transport.Broadcast(
        rank == 0 ? &found : nullptr, rank == 0 ? sizeof(found) : 0, &msg));
    EGERIA_CHECK(msg.size() == sizeof(found));
    std::memcpy(&found, msg.data(), sizeof(found));
    resume_iter = found;
  }
  if (resume_iter >= 0) {
    const std::string step_dir = CheckpointStepDir(cfg.ckpt.dir, resume_iter);
    const auto m = ReadManifest(step_dir);
    EGERIA_CHECK_MSG(m.has_value(), "resume checkpoint vanished: " + step_dir);
    EGERIA_CHECK_MSG(m->frozen_elems + m->active_elems == total_elems,
                     "checkpoint was taken for a different model");
    iter = m->iter;
    frontier = m->frontier;
    next_frontier = m->next_frontier;
    for (int i = 0; i < model.NumStages(); ++i) {
      model.SetStageFrozen(i, i < frontier);
    }
    Checkpoint state;
    EGERIA_CHECK_MSG(LoadCheckpoint(step_dir + "/model.state", state) &&
                         LoadModelState(state, model),
                     "model state restore failed: " + step_dir);
    // Buffers (BatchNorm running stats) are per-replica: restore this rank's
    // own section, overriding the rank-0 copy model.state carries. Elastic
    // restart maps new ranks onto saved replicas round-robin — buffers have
    // no world-invariant owner, and both sides of the elastic hash pin use
    // this same convention.
    {
      const int saved_rank = rank % m->world;
      Checkpoint bufs;
      EGERIA_CHECK_MSG(
          LoadCheckpoint(step_dir + "/" + BuffersFileName(saved_rank), bufs) &&
              LoadModelBuffers(bufs, model),
          "replica buffer restore failed: " + step_dir);
    }
    {
      std::ifstream is(step_dir + "/dist.state", std::ios::binary);
      uint32_t magic = 0;
      uint32_t version = 0;
      int64_t saved_iter = 0;
      uint8_t ks = 0;
      EGERIA_CHECK_MSG(wire::Read(is, magic) && magic == kDistStateMagic &&
                           wire::Read(is, version) && version == kDistStateVersion &&
                           wire::Read(is, saved_iter) && saved_iter == m->iter &&
                           wire::Read(is, ks),
                       "malformed dist.state: " + step_dir);
      knowledge_stage = ks != 0;
    }
    if (sharded) {
      // Re-fold the saved momentum shards through the reduction-contract
      // partition at THIS world size — the saved world may differ (elastic
      // restart); every element's value is preserved, only ownership moves.
      std::vector<ShardedSgd::ShardState> saved(static_cast<size_t>(m->world));
      for (int r = 0; r < m->world; ++r) {
        EGERIA_CHECK_MSG(
            ReadShardFile(step_dir + "/" + ShardFileName(r),
                          saved[static_cast<size_t>(r)]),
            "optimizer shard restore failed: " + step_dir);
      }
      std::tie(shard_begin, shard_end) = shard_opt.RestoreShard(
          rank, world, m->frozen_elems, m->active_elems, saved);
    } else {
      std::vector<Parameter*> params;
      std::vector<std::string> names;
      auto named = NamedParams(model);
      for (auto& [name, p] : named) {
        names.push_back(std::move(name));
        params.push_back(p);
      }
      EGERIA_CHECK_MSG(opt.ImportState(params, names, state),
                       "replicated optimizer restore failed: " + step_dir);
    }
    if (rank == 0) {
      if (controller != nullptr) {
        EGERIA_CHECK_MSG(m->HasFile("controller.state"),
                         "Egeria enabled but checkpoint has no controller state");
        std::ifstream cs(step_dir + "/controller.state", std::ios::binary);
        InferenceFactory float_factory;
        EGERIA_CHECK_MSG(
            controller->RestoreState(cs,
                                     [&] { return model.CloneForInference(float_factory); }),
            "controller state restore failed: " + step_dir);
      }
      // Open the resumed segment on the reshard timeline.
      DistReshardEvent ev;
      ev.iter = iter;
      ev.frontier = frontier;
      ev.active_elems = m->active_elems;
      ev.payload_bytes_per_iter = m->active_elems * static_cast<int64_t>(sizeof(float));
      ev.opt_state_bytes_per_rank = shard_opt.StateBytes();
      result.reshard_events.push_back(ev);
      seg_comm_start = ring.CommSeconds();
    }
    result.resumed_from_iter = resume_iter;
    EGERIA_LOG(kInfo) << "rank " << rank << " resumed from " << step_dir << " (iter "
                      << iter << ", frontier " << frontier << ", saved world "
                      << m->world << ")";
  } else if (sharded) {
    EGERIA_RETURN_ON_TRANSPORT_ERROR(reshard(frontier, 0));
  }

  const int start_epoch = static_cast<int>(iter / steps_per_epoch);
  const int64_t start_step = iter % steps_per_epoch;
  bool stop = false;
  // Whole-loop wall time (epoch loop only, excludes setup/resume/validation):
  // recorded on the result at the natural end of the run and emitted as one
  // top-level trace span. Left 0.0 on transport-error exits.
  const int64_t train_start_ns = trace::NowNs();

  for (int epoch = start_epoch; epoch < cfg.epochs && !stop; ++epoch) {
    // Every rank derives the same permutation (deterministic in (seed, epoch)).
    DataLoader local(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
    local.StartEpoch(epoch);
    for (int64_t s = epoch == start_epoch ? start_step : 0; s < steps_per_epoch; ++s) {
      ++iter;
      if (cfg.iteration_hook) {
        cfg.iteration_hook(rank, iter);
      }
      const float lr = cfg.lr_schedule->LrAt(iter);

      // Commit the checkpoint captured at the previous boundary (async save):
      // its background write overlapped the last iteration's compute. A crash
      // before this point left the step manifest-less — invisible to resume.
      if (ckpt_pending) {
        EGERIA_RETURN_ON_TRANSPORT_ERROR(commit_checkpoint());
      }

      // Apply the frontier broadcast at the end of the previous iteration.
      if (next_frontier != frontier) {
        for (int i = 0; i < model.NumStages(); ++i) {
          model.SetStageFrozen(i, i < next_frontier);
        }
        frontier = next_frontier;
        if (sharded) {
          // Frontier moved: drop the newly frozen prefix from the shard map
          // (and its optimizer state), repartition the survivors.
          EGERIA_RETURN_ON_TRANSPORT_ERROR(reshard(frontier, iter));
        }
      }

      obs::ScopedPhase data_phase("trainer", "data", &data_hist,
                                  &result.data_seconds);
      Batch batch = local.GetBatch(s * world + rank);
      data_phase.Stop();

      obs::ScopedPhase fp_phase("trainer", "fp", &fp_hist, &result.fp_seconds);
      model.SetBatch(batch);
      Tensor logits = model.ForwardFrom(0, batch.input);
      LossResult loss = TaskLoss(cfg.task, logits, batch);
      fp_phase.Stop();

      // Controller duties on rank 0 only (logically centralized, Fig. 5). Runs
      // BEFORE this iteration's control broadcast so the decision reaches every
      // rank in time to be applied at the same iteration boundary — and before
      // backward, so the transport is free for the overlapped reducer's comm
      // thread from BeginRound to FinishRound. Everything the controller reads
      // (forward activations, pre-update weights, lr, iter) is untouched by
      // backward, so its inputs are bitwise the post-backward placement's.
      int32_t pending = static_cast<int32_t>(frontier);
      if (rank == 0 && controller != nullptr) {
        if (!cfg.egeria.async_controller) {
          controller->RunPendingSync();
        }
        if (!knowledge_stage && iter >= cfg.egeria.eval_interval_n) {
          knowledge_stage = true;  // Simplified bootstrap: fixed warmup.
        }
        if (knowledge_stage && controller->WantsSnapshot()) {
          InferenceFactory float_factory;
          controller->SubmitSnapshot(model.CloneForInference(float_factory));
        }
        if (knowledge_stage && iter % cfg.egeria.eval_interval_n == 0 &&
            frontier < model.NumStages() - 1 - cfg.egeria.protected_tail + 1) {
          EvalRequest req;
          req.batch = batch;
          req.train_act = model.StageOutput(frontier);
          req.stage = frontier;
          req.lr = lr;
          req.iter = iter;
          controller->SubmitEval(std::move(req));
        }
        for (const FreezeDecision& d : controller->DrainDecisions()) {
          pending = d.kind == FreezeDecision::Kind::kFreezeUpTo
                        ? static_cast<int32_t>(d.stage + 1)
                        : 0;
        }
        if (auto d = controller->OnLr(lr, iter)) {
          if (d->kind == FreezeDecision::Kind::kUnfreezeAll) {
            pending = 0;
          }
        }
      }

      // Control plane: the frontier taking effect at iter+1, serialized and
      // broadcast so it crosses process boundaries.
      EGERIA_RETURN_ON_TRANSPORT_ERROR(
          ExchangeFrontier(transport, rank, pending, &next_frontier));

      // Backward + synchronization of active parameters only — frozen stages
      // are "excluded from parameter synchronization" (paper S4.2.2, Fig. 10).
      const std::vector<Parameter*> active = model.ParamsFrom(frontier);
      for (Parameter* p : active) {
        p->grad.Zero_();
      }
      if (sharded) {
        FlatParamView grads(active, FlatParamView::Field::kGrad);
        FlatParamView values(active, FlatParamView::Field::kValue);
        if (overlap) {
          // Overlapped ZeRO-1 round: the comm thread reduces each stage's
          // bucket the moment that stage's backward hands it over; from
          // BeginRound to FinishRound the comm thread is the transport's only
          // user. Bitwise-identical to the sequential round below because
          // every bucket circulates global-contract-chunk ∩ bucket spans.
          overlap_reducer->BeginRound(&grads, &values, make_buckets(frontier),
                                      shard_begin, shard_end, lr);
          {
            obs::ScopedPhase bp_phase("trainer", "bp", &bp_hist,
                                      &result.bp_seconds);
            model.BackwardTo(frontier, loss.grad);
          }
          {
            // Comm exposed past the end of backward — the merged timeline
            // shows comm-thread bucket spans inside/around this wait. The
            // histogram is what the heartbeat stats frames ship to rank 0
            // for online straggler detection: a rank that never waits here
            // is the one everyone else is waiting FOR.
            obs::ScopedPhase wait_phase("trainer", "comm_wait",
                                        &comm_wait_hist);
            EGERIA_RETURN_ON_TRANSPORT_ERROR(overlap_reducer->FinishRound());
          }
        } else {
          // Sequential ZeRO-1 round (the pin baseline): ring reduce-scatter
          // the gradients, owner applies the optimizer update on its shard,
          // ring all-gather the updated weights.
          {
            obs::ScopedPhase bp_phase("trainer", "bp", &bp_hist,
                                      &result.bp_seconds);
            model.BackwardTo(frontier, loss.grad);
          }
          std::pair<int64_t, int64_t> owned{0, 0};
          EGERIA_RETURN_ON_TRANSPORT_ERROR(ring.ReduceScatterAverage(grads, &owned));
          EGERIA_CHECK(owned.first == shard_begin && owned.second == shard_end);
          {
            obs::ScopedPhase opt_phase("trainer", "opt", &opt_hist,
                                       &result.opt_seconds);
            shard_opt.Step(values, grads, shard_begin, shard_end, lr);
          }
          EGERIA_RETURN_ON_TRANSPORT_ERROR(ring.AllGather(values));
        }
      } else {
        {
          obs::ScopedPhase bp_phase("trainer", "bp", &bp_hist,
                                    &result.bp_seconds);
          model.BackwardTo(frontier, loss.grad);
        }
        EGERIA_TRACE_SCOPE("ring", "star_reduce");
        reference_reducer->AllReduce(rank, active);
      }
      int64_t payload = 0;
      for (Parameter* p : active) {
        payload += p->grad.NumEl() * static_cast<int64_t>(sizeof(float));
      }
      result.bytes_synced += payload;
      result.bytes_full_model += full_bytes_per_iter;
      if (!sharded) {
        obs::ScopedPhase opt_phase("trainer", "opt", &opt_hist,
                                   &result.opt_seconds);
        opt.Step(active, lr);
      }
      iter_counter.Add(1);
      obs::MaybeDumpOnSignal("dist_trainer");

      // --- Checkpoint + crash-drill stop (collective; every rank shares the
      // config, so the cadence is in lockstep) ---
      const bool at_interval =
          cfg.ckpt.enabled() && iter % cfg.ckpt.interval_iters == 0;
      const bool stopping = cfg.stop_after_iters >= 0 && iter >= cfg.stop_after_iters;
      if (at_interval || (stopping && cfg.ckpt.enabled())) {
        capture_checkpoint(iter);
      }
      // Async saves normally commit at the NEXT boundary; a stop (or async off)
      // flushes inline — nobody is around next iteration to commit for us.
      if (ckpt_pending && (stopping || !cfg.ckpt.async_save)) {
        EGERIA_RETURN_ON_TRANSPORT_ERROR(commit_checkpoint());
      }
      if (stopping) {
        result.stopped_early = true;
        stop = true;
        break;
      }
    }
  }
  // Natural run end with a capture still in flight: flush it.
  if (ckpt_pending) {
    EGERIA_RETURN_ON_TRANSPORT_ERROR(commit_checkpoint());
  }

  {
    const int64_t train_dur_ns = trace::NowNs() - train_start_ns;
    result.train_seconds = static_cast<double>(train_dur_ns) * 1e-9;
    obs::GetHistogram("dist.train_s").Observe(result.train_seconds);
    if (trace::Enabled()) {
      trace::AddComplete("trainer", "train", train_start_ns, train_dur_ns);
    }
  }

  finalize_segment(iter + 1);  // The last segment ran through iteration `iter`.
  result.final_frontier = frontier;
  result.iterations = iter;
  result.wire_bytes = ring.TotalWireBytes();
  result.allreduce_seconds = ring.CommSeconds();
  if (overlap_reducer.has_value()) {
    result.comm_hidden_seconds = overlap_reducer->TotalHiddenSeconds();
    result.comm_exposed_seconds = overlap_reducer->TotalExposedSeconds();
  }
  result.params_hash = HashParams(model.ParamsFrom(0));

  // Validate on rank 0's replica.
  if (rank == 0) {
    EGERIA_TRACE_SCOPE("trainer", "validate");
    model.SetTraining(false);
    DataLoader val_loader(val_data, cfg.batch_size, /*shuffle=*/false, cfg.seed + 1);
    std::vector<TaskMetric> parts;
    const int64_t nb = std::min<int64_t>(cfg.val_batches, val_loader.NumBatches());
    for (int64_t b = 0; b < nb; ++b) {
      Batch batch = val_loader.GetBatch(b);
      model.SetBatch(batch);
      Tensor logits = model.ForwardFrom(0, batch.input);
      parts.push_back(EvaluateTask(cfg.task, logits, batch));
    }
    const TaskMetric metric = AggregateMetric(cfg.task, parts);
    result.final_score = metric.score;
    result.final_display = metric.display;
  }

  result.model = std::move(model_owner);
  return result;
}

#undef EGERIA_RETURN_ON_TRANSPORT_ERROR

DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg) {
  EGERIA_CHECK(cfg.world >= 1);
  EGERIA_CHECK(cfg.lr_schedule != nullptr);
  const bool use_tcp = cfg.transport == DistTrainConfig::TransportKind::kTcp;

  GradientAllReducer reference(cfg.world);
  GradientAllReducer* reference_ptr =
      cfg.reducer == DistTrainConfig::Reducer::kSequentialReference ? &reference
                                                                    : nullptr;

  InprocTransportGroup inproc(cfg.world);
  std::string rendezvous_dir;
  if (use_tcp) {
    char tmpl[] = "/tmp/egeria-rdzv-XXXXXX";
    EGERIA_CHECK_MSG(mkdtemp(tmpl) != nullptr, "mkdtemp failed for tcp rendezvous");
    rendezvous_dir = tmpl;
  }

  std::vector<RankTrainResult> results(static_cast<size_t>(cfg.world));
  auto worker_fn = [&](int rank) {
    // Run with the frame-integrity layer unless the config opts out, so the
    // in-process harness exercises the exact decorator stack the multi-process
    // worker ships (integrity adds headers, not semantics: all bitwise pins
    // hold either way).
    auto run = [&](Transport& base) {
      if (cfg.frame_integrity) {
        IntegrityTransport checked(&base);
        results[static_cast<size_t>(rank)] =
            TrainRank(checked, make_model, train_data, val_data, cfg, reference_ptr);
      } else {
        results[static_cast<size_t>(rank)] =
            TrainRank(base, make_model, train_data, val_data, cfg, reference_ptr);
      }
    };
    if (use_tcp) {
      TcpTransportOptions opts;
      opts.rank = rank;
      opts.world = cfg.world;
      opts.rendezvous_file = rendezvous_dir + "/rendezvous";
      // Ranks are threads here, so wiring completes in milliseconds.
      std::unique_ptr<Transport> transport = MakeTcpTransport(opts);
      run(*transport);
    } else {
      run(inproc.Get(rank));
    }
  };
  std::vector<std::thread> threads;
  for (int r = 0; r < cfg.world; ++r) {
    threads.emplace_back(worker_fn, r);
  }
  for (auto& t : threads) {
    t.join();
  }
  if (!rendezvous_dir.empty()) {
    unlink((rendezvous_dir + "/rendezvous").c_str());
    rmdir(rendezvous_dir.c_str());
  }

  DistTrainResult result;
  const RankTrainResult& r0 = results[0];
  result.final_score = r0.final_score;
  result.final_display = r0.final_display;
  result.bytes_synced = r0.bytes_synced;
  result.bytes_full_model = r0.bytes_full_model;
  result.allreduce_seconds = r0.allreduce_seconds;
  result.comm_hidden_seconds = r0.comm_hidden_seconds;
  result.comm_exposed_seconds = r0.comm_exposed_seconds;
  result.final_frontier = r0.final_frontier;
  result.iterations = r0.iterations;
  result.params_hash = r0.params_hash;
  result.resumed_from_iter = r0.resumed_from_iter;
  result.stopped_early = r0.stopped_early;
  result.reshard_events = r0.reshard_events;
  result.status = r0.status;
  // Synchronized SGD on contract-reduced gradients keeps replicas bitwise
  // identical; the content hash makes that check transport-agnostic.
  result.replicas_consistent = true;
  for (const RankTrainResult& r : results) {
    result.wire_bytes += r.wire_bytes;
    if (r.params_hash != r0.params_hash) {
      result.replicas_consistent = false;
    }
    if (!r.status.ok()) {
      // Any failed rank invalidates the consistency claim; surface the first.
      result.replicas_consistent = false;
      if (result.status.ok()) {
        result.status = r.status;
      }
    }
  }
  return result;
}

}  // namespace egeria
