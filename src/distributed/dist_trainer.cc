#include "src/distributed/dist_trainer.h"

#include <atomic>
#include <cmath>
#include <thread>

#include "src/core/controller.h"
#include "src/distributed/allreduce.h"
#include "src/optim/optimizer.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

// Shared freeze state broadcast from the controller (worker 0) to all workers;
// applied at iteration boundaries so every rank keeps an identical active set.
struct SharedFreezeState {
  std::atomic<int> frontier{0};
  std::atomic<int64_t> version{0};
};

}  // namespace

DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg) {
  EGERIA_CHECK(cfg.world >= 1);
  EGERIA_CHECK(cfg.lr_schedule != nullptr);

  // Build replicas and broadcast rank 0's weights.
  std::vector<std::unique_ptr<ChainModel>> replicas;
  for (int r = 0; r < cfg.world; ++r) {
    replicas.push_back(make_model());
  }
  for (int r = 1; r < cfg.world; ++r) {
    replicas[static_cast<size_t>(r)]->CopyStateFrom(*replicas[0]);
  }

  // One loader per rank over the same permutation; rank r consumes batches
  // r, r+world, r+2*world, ... (disjoint shards of each epoch).
  DataLoader loader(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
  const int64_t steps_per_epoch = loader.NumBatches() / cfg.world;
  EGERIA_CHECK_MSG(steps_per_epoch >= 1, "dataset too small for this world size");

  GradientAllReducer reducer(cfg.world);
  SharedFreezeState freeze_state;
  std::unique_ptr<EgeriaController> controller;
  if (cfg.enable_egeria) {
    controller = std::make_unique<EgeriaController>(cfg.egeria, replicas[0]->NumStages(),
                                                    cfg.lr_schedule->IsAnnealing());
  }
  std::atomic<int64_t> bytes_synced{0};
  const int64_t full_bytes_per_iter =
      replicas[0]->TotalParamCount() * static_cast<int64_t>(sizeof(float));
  std::atomic<int64_t> full_bytes_total{0};

  auto worker_fn = [&](int rank) {
    ChainModel& model = *replicas[static_cast<size_t>(rank)];
    model.SetTraining(true);
    Sgd opt(cfg.momentum, cfg.weight_decay);
    int frontier = 0;
    int64_t local_version = 0;
    int64_t iter = 0;
    bool knowledge_stage = !cfg.enable_egeria;

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
      // Every rank derives the same permutation (deterministic in (seed, epoch)).
      DataLoader local(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
      local.StartEpoch(epoch);
      for (int64_t s = 0; s < steps_per_epoch; ++s) {
        ++iter;
        const float lr = cfg.lr_schedule->LrAt(iter);

        // Apply broadcast freeze state.
        if (freeze_state.version.load() != local_version) {
          local_version = freeze_state.version.load();
          const int new_frontier = freeze_state.frontier.load();
          for (int i = 0; i < model.NumStages(); ++i) {
            model.SetStageFrozen(i, i < new_frontier);
          }
          frontier = new_frontier;
        }

        Batch batch = local.GetBatch(s * cfg.world + rank);
        model.SetBatch(batch);
        Tensor logits = model.ForwardFrom(0, batch.input);
        LossResult loss = TaskLoss(cfg.task, logits, batch);

        for (Parameter* p : model.ParamsFrom(frontier)) {
          p->grad.Zero_();
        }
        model.BackwardTo(frontier, loss.grad);

        // Controller duties on rank 0 only (logically centralized, Fig. 5). Runs
        // BEFORE this iteration's all-reduce barrier so that a published freeze
        // decision happens-before every rank's next iteration start — all ranks then
        // apply it at the same iteration boundary and keep identical active sets.
        if (rank == 0 && controller != nullptr) {
          if (!cfg.egeria.async_controller) {
            controller->RunPendingSync();
          }
          if (!knowledge_stage && iter >= cfg.egeria.eval_interval_n) {
            knowledge_stage = true;  // Simplified bootstrap: fixed warmup.
          }
          if (knowledge_stage && controller->WantsSnapshot()) {
            InferenceFactory float_factory;
            controller->SubmitSnapshot(model.CloneForInference(float_factory));
          }
          if (knowledge_stage && iter % cfg.egeria.eval_interval_n == 0 &&
              frontier < model.NumStages() - 1 - cfg.egeria.protected_tail + 1) {
            EvalRequest req;
            req.batch = batch;
            req.train_act = model.StageOutput(frontier);
            req.stage = frontier;
            req.lr = lr;
            req.iter = iter;
            controller->SubmitEval(std::move(req));
          }
          bool changed = false;
          int new_frontier = frontier;
          for (const FreezeDecision& d : controller->DrainDecisions()) {
            if (d.kind == FreezeDecision::Kind::kFreezeUpTo) {
              new_frontier = d.stage + 1;
            } else {
              new_frontier = 0;
            }
            changed = true;
          }
          if (auto d = controller->OnLr(lr, iter)) {
            new_frontier = (d->kind == FreezeDecision::Kind::kUnfreezeAll) ? 0 : new_frontier;
            changed = true;
          }
          if (changed) {
            freeze_state.frontier.store(new_frontier);
            freeze_state.version.fetch_add(1);
          }
        }

        // Synchronize only active parameters — frozen stages are "excluded from
        // parameter synchronization" (paper S4.2.2, Fig. 10).
        const std::vector<Parameter*> active = model.ParamsFrom(frontier);
        reducer.AllReduce(rank, active);
        if (rank == 0) {
          int64_t payload = 0;
          for (Parameter* p : active) {
            payload += p->grad.NumEl() * static_cast<int64_t>(sizeof(float));
          }
          bytes_synced.fetch_add(payload);
          full_bytes_total.fetch_add(full_bytes_per_iter);
        }
        opt.Step(active, lr);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int r = 0; r < cfg.world; ++r) {
    threads.emplace_back(worker_fn, r);
  }
  for (auto& t : threads) {
    t.join();
  }

  DistTrainResult result;
  result.bytes_synced = bytes_synced.load();
  result.bytes_full_model = full_bytes_total.load();
  result.final_frontier = freeze_state.frontier.load();
  result.iterations = static_cast<int64_t>(cfg.epochs) * steps_per_epoch;

  // Replica consistency: synchronized SGD on averaged gradients must keep replicas
  // identical (up to float nondeterminism, which our sequential reduce avoids).
  result.replicas_consistent = true;
  auto params0 = replicas[0]->ParamsFrom(0);
  for (int r = 1; r < cfg.world && result.replicas_consistent; ++r) {
    auto pr = replicas[static_cast<size_t>(r)]->ParamsFrom(0);
    for (size_t i = 0; i < params0.size(); ++i) {
      const Tensor& a = params0[i]->value;
      const Tensor& b = pr[i]->value;
      for (int64_t j = 0; j < a.NumEl(); ++j) {
        if (std::abs(a.Data()[j] - b.Data()[j]) > 1e-6F) {
          result.replicas_consistent = false;
          break;
        }
      }
      if (!result.replicas_consistent) {
        break;
      }
    }
  }

  // Validate on replica 0.
  replicas[0]->SetTraining(false);
  DataLoader val_loader(val_data, cfg.batch_size, /*shuffle=*/false, cfg.seed + 1);
  std::vector<TaskMetric> parts;
  const int64_t nb = std::min<int64_t>(cfg.val_batches, val_loader.NumBatches());
  for (int64_t b = 0; b < nb; ++b) {
    Batch batch = val_loader.GetBatch(b);
    replicas[0]->SetBatch(batch);
    Tensor logits = replicas[0]->ForwardFrom(0, batch.input);
    parts.push_back(EvaluateTask(cfg.task, logits, batch));
  }
  const TaskMetric metric = AggregateMetric(cfg.task, parts);
  result.final_score = metric.score;
  result.final_display = metric.display;
  return result;
}

}  // namespace egeria
