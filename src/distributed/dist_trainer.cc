#include "src/distributed/dist_trainer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <tuple>
#include <unistd.h>

#include "src/core/controller.h"
#include "src/distributed/allreduce.h"
#include "src/distributed/flat_view.h"
#include "src/distributed/transport/inproc_transport.h"
#include "src/distributed/transport/tcp_transport.h"
#include "src/optim/optimizer.h"
#include "src/optim/sharded_optimizer.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

int64_t CountElems(const std::vector<Parameter*>& params) {
  int64_t n = 0;
  for (const Parameter* p : params) {
    n += p->value.NumEl();
  }
  return n;
}

uint64_t Fnv1a(const void* data, size_t len, uint64_t h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t HashParams(const std::vector<Parameter*>& params) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const Parameter* p : params) {
    hash = Fnv1a(p->value.Data(),
                 static_cast<size_t>(p->value.NumEl()) * sizeof(float), hash);
  }
  return hash;
}

// The per-iteration control-plane message rank 0 broadcasts: the freeze
// frontier that takes effect from the NEXT iteration on. A fixed little
// serialized struct (not a shared atomic) so the decision crosses process
// boundaries; every rank applies it at the same iteration boundary, which is
// what keeps active sets — and therefore the reduction payload — identical
// across ranks.
struct FreezeMsg {
  int32_t next_frontier = 0;
};

int32_t ExchangeFrontier(Transport& transport, int rank, int32_t pending) {
  FreezeMsg msg{pending};
  const std::vector<uint8_t> wire =
      transport.Broadcast(rank == 0 ? &msg : nullptr, rank == 0 ? sizeof(msg) : 0);
  EGERIA_CHECK_MSG(wire.size() == sizeof(FreezeMsg), "bad freeze control message");
  std::memcpy(&msg, wire.data(), sizeof(msg));
  return msg.next_frontier;
}

}  // namespace

RankTrainResult TrainRank(
    Transport& transport,
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg,
    GradientAllReducer* reference_reducer) {
  const int rank = transport.Rank();
  const int world = transport.World();
  EGERIA_CHECK(world >= 1 && cfg.world == world);
  EGERIA_CHECK(cfg.lr_schedule != nullptr);
  const bool sharded = cfg.reducer == DistTrainConfig::Reducer::kRingSharded;
  EGERIA_CHECK_MSG(sharded || reference_reducer != nullptr,
                   "sequential reference reducer requires in-process ranks");

  RankTrainResult result;
  result.rank = rank;
  std::unique_ptr<ChainModel> model_owner = make_model();
  ChainModel& model = *model_owner;

  // Broadcast rank 0's initial weights so every replica starts bit-identical.
  {
    const std::vector<Parameter*> all = model.ParamsFrom(0);
    FlatParamView values(all, FlatParamView::Field::kValue);
    std::vector<uint8_t> buf;
    if (rank == 0) {
      buf.resize(static_cast<size_t>(values.NumEl()) * sizeof(float));
      values.CopyOut(0, values.NumEl(), reinterpret_cast<float*>(buf.data()));
    }
    const std::vector<uint8_t> weights =
        transport.Broadcast(buf.data(), static_cast<int64_t>(buf.size()));
    EGERIA_CHECK_MSG(static_cast<int64_t>(weights.size()) ==
                         values.NumEl() * static_cast<int64_t>(sizeof(float)),
                     "initial weight broadcast size mismatch (model divergence?)");
    if (rank != 0) {
      values.CopyIn(0, values.NumEl(), reinterpret_cast<const float*>(weights.data()));
    }
  }

  // One loader per rank over the same permutation; rank r consumes batches
  // r, r+world, r+2*world, ... (disjoint shards of each epoch).
  DataLoader loader(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
  const int64_t steps_per_epoch = loader.NumBatches() / world;
  EGERIA_CHECK_MSG(steps_per_epoch >= 1, "dataset too small for this world size");

  RingAllReducer ring(transport);
  ShardedSgd shard_opt(cfg.momentum, cfg.weight_decay);
  std::unique_ptr<EgeriaController> controller;
  if (cfg.enable_egeria && rank == 0) {
    controller = std::make_unique<EgeriaController>(cfg.egeria, model.NumStages(),
                                                    cfg.lr_schedule->IsAnnealing());
  }

  model.SetTraining(true);
  Sgd opt(cfg.momentum, cfg.weight_decay);
  int frontier = 0;
  int32_t next_frontier = 0;
  int64_t iter = 0;
  bool knowledge_stage = !cfg.enable_egeria;
  const int64_t total_elems = model.TotalParamCount();
  const int64_t full_bytes_per_iter = total_elems * static_cast<int64_t>(sizeof(float));
  int64_t shard_begin = 0;
  int64_t shard_end = 0;
  double seg_comm_start = 0.0;  // ring.CommSeconds() at current segment start

  // Finalize the measured all-reduce seconds of the segment that just ended on
  // rank 0's timeline. A segment recorded at event iter E covers the collective
  // rounds of iterations max(E,1) .. next_start_iter-1 (iterations are numbered
  // from 1; the initial partition is recorded at E=0 but its first round runs
  // at iteration 1), so that is the round count to divide by.
  auto finalize_segment = [&](int64_t next_start_iter) {
    if (rank != 0 || result.reshard_events.empty()) {
      return;
    }
    DistReshardEvent& prev = result.reshard_events.back();
    const int64_t rounds = next_start_iter - std::max<int64_t>(prev.iter, 1);
    prev.allreduce_seconds_per_iter =
        rounds > 0
            ? (ring.CommSeconds() - seg_comm_start) / static_cast<double>(rounds)
            : 0.0;
    seg_comm_start = ring.CommSeconds();
  };

  // Collective shard (re)partition over the active suffix at `at_frontier`.
  // Every rank applies the same frontier at the same iteration (the control
  // broadcast), so all ranks reach this in lockstep.
  auto reshard = [&](int at_frontier, int64_t at_iter) {
    const int64_t active = CountElems(model.ParamsFrom(at_frontier));
    std::tie(shard_begin, shard_end) =
        shard_opt.Reshard(transport, total_elems - active, active);
    if (rank == 0) {
      finalize_segment(at_iter);
      DistReshardEvent ev;
      ev.iter = at_iter;
      ev.frontier = at_frontier;
      ev.active_elems = active;
      ev.payload_bytes_per_iter = active * static_cast<int64_t>(sizeof(float));
      // Chunk 0 is the largest contract chunk, and rank 0 owns it.
      ev.opt_state_bytes_per_rank = shard_opt.StateBytes();
      result.reshard_events.push_back(ev);
    }
  };
  if (sharded) {
    reshard(frontier, 0);
  }

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Every rank derives the same permutation (deterministic in (seed, epoch)).
    DataLoader local(train_data, cfg.batch_size, /*shuffle=*/true, cfg.seed);
    local.StartEpoch(epoch);
    for (int64_t s = 0; s < steps_per_epoch; ++s) {
      ++iter;
      if (cfg.iteration_hook) {
        cfg.iteration_hook(rank, iter);
      }
      const float lr = cfg.lr_schedule->LrAt(iter);

      // Apply the frontier broadcast at the end of the previous iteration.
      if (next_frontier != frontier) {
        for (int i = 0; i < model.NumStages(); ++i) {
          model.SetStageFrozen(i, i < next_frontier);
        }
        frontier = next_frontier;
        if (sharded) {
          // Frontier moved: drop the newly frozen prefix from the shard map
          // (and its optimizer state), repartition the survivors.
          reshard(frontier, iter);
        }
      }

      Batch batch = local.GetBatch(s * world + rank);
      model.SetBatch(batch);
      Tensor logits = model.ForwardFrom(0, batch.input);
      LossResult loss = TaskLoss(cfg.task, logits, batch);

      for (Parameter* p : model.ParamsFrom(frontier)) {
        p->grad.Zero_();
      }
      model.BackwardTo(frontier, loss.grad);

      // Controller duties on rank 0 only (logically centralized, Fig. 5). Runs
      // BEFORE this iteration's control broadcast so the decision reaches every
      // rank in time to be applied at the same iteration boundary.
      int32_t pending = static_cast<int32_t>(frontier);
      if (rank == 0 && controller != nullptr) {
        if (!cfg.egeria.async_controller) {
          controller->RunPendingSync();
        }
        if (!knowledge_stage && iter >= cfg.egeria.eval_interval_n) {
          knowledge_stage = true;  // Simplified bootstrap: fixed warmup.
        }
        if (knowledge_stage && controller->WantsSnapshot()) {
          InferenceFactory float_factory;
          controller->SubmitSnapshot(model.CloneForInference(float_factory));
        }
        if (knowledge_stage && iter % cfg.egeria.eval_interval_n == 0 &&
            frontier < model.NumStages() - 1 - cfg.egeria.protected_tail + 1) {
          EvalRequest req;
          req.batch = batch;
          req.train_act = model.StageOutput(frontier);
          req.stage = frontier;
          req.lr = lr;
          req.iter = iter;
          controller->SubmitEval(std::move(req));
        }
        for (const FreezeDecision& d : controller->DrainDecisions()) {
          pending = d.kind == FreezeDecision::Kind::kFreezeUpTo
                        ? static_cast<int32_t>(d.stage + 1)
                        : 0;
        }
        if (auto d = controller->OnLr(lr, iter)) {
          if (d->kind == FreezeDecision::Kind::kUnfreezeAll) {
            pending = 0;
          }
        }
      }

      // Control plane: the frontier taking effect at iter+1, serialized and
      // broadcast so it crosses process boundaries.
      next_frontier = ExchangeFrontier(transport, rank, pending);

      // Synchronize only active parameters — frozen stages are "excluded from
      // parameter synchronization" (paper S4.2.2, Fig. 10).
      const std::vector<Parameter*> active = model.ParamsFrom(frontier);
      if (sharded) {
        // ZeRO-1 round: ring reduce-scatter the gradients, owner applies the
        // optimizer update on its shard, ring all-gather the updated weights.
        FlatParamView grads(active, FlatParamView::Field::kGrad);
        const auto owned = ring.ReduceScatterAverage(grads);
        EGERIA_CHECK(owned.first == shard_begin && owned.second == shard_end);
        FlatParamView values(active, FlatParamView::Field::kValue);
        shard_opt.Step(values, grads, shard_begin, shard_end, lr);
        ring.AllGather(values);
      } else {
        reference_reducer->AllReduce(rank, active);
      }
      int64_t payload = 0;
      for (Parameter* p : active) {
        payload += p->grad.NumEl() * static_cast<int64_t>(sizeof(float));
      }
      result.bytes_synced += payload;
      result.bytes_full_model += full_bytes_per_iter;
      if (!sharded) {
        opt.Step(active, lr);
      }
    }
  }

  finalize_segment(iter + 1);  // The last segment ran through iteration `iter`.
  result.final_frontier = frontier;
  result.iterations = iter;
  result.wire_bytes = ring.TotalWireBytes();
  result.allreduce_seconds = ring.CommSeconds();
  result.params_hash = HashParams(model.ParamsFrom(0));

  // Validate on rank 0's replica.
  if (rank == 0) {
    model.SetTraining(false);
    DataLoader val_loader(val_data, cfg.batch_size, /*shuffle=*/false, cfg.seed + 1);
    std::vector<TaskMetric> parts;
    const int64_t nb = std::min<int64_t>(cfg.val_batches, val_loader.NumBatches());
    for (int64_t b = 0; b < nb; ++b) {
      Batch batch = val_loader.GetBatch(b);
      model.SetBatch(batch);
      Tensor logits = model.ForwardFrom(0, batch.input);
      parts.push_back(EvaluateTask(cfg.task, logits, batch));
    }
    const TaskMetric metric = AggregateMetric(cfg.task, parts);
    result.final_score = metric.score;
    result.final_display = metric.display;
  }

  result.model = std::move(model_owner);
  return result;
}

DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg) {
  EGERIA_CHECK(cfg.world >= 1);
  EGERIA_CHECK(cfg.lr_schedule != nullptr);
  const bool use_tcp = cfg.transport == DistTrainConfig::TransportKind::kTcp;

  GradientAllReducer reference(cfg.world);
  GradientAllReducer* reference_ptr =
      cfg.reducer == DistTrainConfig::Reducer::kSequentialReference ? &reference
                                                                    : nullptr;

  InprocTransportGroup inproc(cfg.world);
  std::string rendezvous_dir;
  if (use_tcp) {
    char tmpl[] = "/tmp/egeria-rdzv-XXXXXX";
    EGERIA_CHECK_MSG(mkdtemp(tmpl) != nullptr, "mkdtemp failed for tcp rendezvous");
    rendezvous_dir = tmpl;
  }

  std::vector<RankTrainResult> results(static_cast<size_t>(cfg.world));
  auto worker_fn = [&](int rank) {
    if (use_tcp) {
      TcpTransportOptions opts;
      opts.rank = rank;
      opts.world = cfg.world;
      opts.rendezvous_file = rendezvous_dir + "/rendezvous";
      // Ranks are threads here, so wiring completes in milliseconds.
      std::unique_ptr<Transport> transport = MakeTcpTransport(opts);
      results[static_cast<size_t>(rank)] =
          TrainRank(*transport, make_model, train_data, val_data, cfg, reference_ptr);
    } else {
      results[static_cast<size_t>(rank)] = TrainRank(
          inproc.Get(rank), make_model, train_data, val_data, cfg, reference_ptr);
    }
  };
  std::vector<std::thread> threads;
  for (int r = 0; r < cfg.world; ++r) {
    threads.emplace_back(worker_fn, r);
  }
  for (auto& t : threads) {
    t.join();
  }
  if (!rendezvous_dir.empty()) {
    unlink((rendezvous_dir + "/rendezvous").c_str());
    rmdir(rendezvous_dir.c_str());
  }

  DistTrainResult result;
  const RankTrainResult& r0 = results[0];
  result.final_score = r0.final_score;
  result.final_display = r0.final_display;
  result.bytes_synced = r0.bytes_synced;
  result.bytes_full_model = r0.bytes_full_model;
  result.allreduce_seconds = r0.allreduce_seconds;
  result.final_frontier = r0.final_frontier;
  result.iterations = r0.iterations;
  result.params_hash = r0.params_hash;
  result.reshard_events = r0.reshard_events;
  // Synchronized SGD on contract-reduced gradients keeps replicas bitwise
  // identical; the content hash makes that check transport-agnostic.
  result.replicas_consistent = true;
  for (const RankTrainResult& r : results) {
    result.wire_bytes += r.wire_bytes;
    if (r.params_hash != r0.params_hash) {
      result.replicas_consistent = false;
    }
  }
  return result;
}

}  // namespace egeria
