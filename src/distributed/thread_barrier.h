// Reusable generation-counting barrier for the thread-based collectives.
// The generation counter (not a bool flip) makes back-to-back barriers safe: a
// thread that races ahead into the next Wait cannot consume the previous
// generation's release.
//
// The barrier is abortable: Abort() releases every current waiter and makes
// all future Waits return immediately with `false`, so one rank failing a
// collective can unwind the whole thread world instead of leaving peers
// blocked forever. Callers that never abort (the sequential reference
// reducer) may ignore the return value.
#ifndef EGERIA_SRC_DISTRIBUTED_THREAD_BARRIER_H_
#define EGERIA_SRC_DISTRIBUTED_THREAD_BARRIER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace egeria {

class ThreadBarrier {
 public:
  explicit ThreadBarrier(int parties) : parties_(parties) {}

  // Blocks until `parties` threads have called Wait for this generation.
  // Returns true on a normal release, false if the barrier was aborted
  // (before or during the wait).
  bool Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) {
      return false;
    }
    const int64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen || aborted_; });
    }
    return !aborted_;
  }

  // Poisons the barrier: wakes every waiter and fails all future Waits.
  void Abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

  bool Aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

 private:
  int parties_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  int64_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_THREAD_BARRIER_H_
