// Reusable generation-counting barrier for the thread-based collectives.
// The generation counter (not a bool flip) makes back-to-back barriers safe: a
// thread that races ahead into the next Wait cannot consume the previous
// generation's release.
#ifndef EGERIA_SRC_DISTRIBUTED_THREAD_BARRIER_H_
#define EGERIA_SRC_DISTRIBUTED_THREAD_BARRIER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace egeria {

class ThreadBarrier {
 public:
  explicit ThreadBarrier(int parties) : parties_(parties) {}

  // Blocks until `parties` threads have called Wait for this generation.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const int64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  int parties_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  int64_t generation_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_THREAD_BARRIER_H_
