// Thread-based data-parallel training harness (the paper's Fig. 5 controller-worker
// layout at process scale): K workers hold model replicas, train on disjoint shards
// of each batch permutation, and synchronize gradients with a real all-reduce.
// Worker 0 co-locates the Egeria controller; freeze/unfreeze decisions are broadcast
// to all workers and applied at iteration boundaries, and frozen stages drop out of
// the synchronization payload (the Fig. 10 traffic saving).
//
// Default synchronization is a ring reduce-scatter/all-gather with ZeRO-1
// optimizer-state sharding: each rank owns one contract chunk of the flattened
// active-parameter space, applies the optimizer update for its shard, and the
// all-gather circulates updated parameters. The freeze frontier re-partitions
// shards, so frozen parameters leave both the ring payload and per-rank
// optimizer memory. The rank-0 star reduce survives as the sequential reference
// implementation that tests compare against bitwise.
#ifndef EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_
#define EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/core/task.h"
#include "src/data/dataloader.h"
#include "src/models/chain_model.h"
#include "src/optim/lr_scheduler.h"

namespace egeria {

struct DistTrainConfig {
  int world = 2;
  int epochs = 4;
  int64_t batch_size = 8;  // per worker
  TaskSpec task;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  std::shared_ptr<LrScheduler> lr_schedule;
  uint64_t seed = 42;
  int64_t val_batches = 4;

  // Gradient synchronization + optimizer layout. Both implement the same
  // reduction contract, so they produce bitwise-identical trained weights (on
  // monotone-freezing runs; see sharded_optimizer.h for the unfreeze caveat).
  enum class Reducer {
    kRingSharded,           // ring reduce-scatter/all-gather + ZeRO-1 shards
    kSequentialReference,   // rank-0 star reduce + fully replicated optimizer
  };
  Reducer reducer = Reducer::kRingSharded;

  bool enable_egeria = false;
  EgeriaConfig egeria;
};

// One entry per shard (re)partition in the ring-sharded path: the initial
// partition plus one per freeze-frontier move. Captures the Fig. 10 scaling
// argument: both the ring payload and per-rank optimizer state shrink as
// stages freeze.
struct DistReshardEvent {
  int64_t iter = 0;
  int frontier = 0;
  int64_t active_elems = 0;             // flattened active-parameter elements
  int64_t payload_bytes_per_iter = 0;   // ring payload at this frontier
  int64_t opt_state_bytes_per_rank = 0; // largest shard's velocity bytes
};

struct DistTrainResult {
  double final_score = 0.0;
  double final_display = 0.0;
  int64_t bytes_synced = 0;        // logical payload (sum of active grad bytes)
  int64_t bytes_full_model = 0;    // payload if nothing were frozen
  int64_t wire_bytes = 0;          // bytes that traversed ring links (0 for the
                                   // sequential reference path)
  int final_frontier = 0;
  int64_t iterations = 0;
  bool replicas_consistent = false;  // replicas bit-identical at the end
  uint64_t params_hash = 0;          // FNV-1a over replica 0's final weights
  std::vector<DistReshardEvent> reshard_events;  // ring-sharded path only
};

// `make_model` must build identical architectures (same seed) per call; replica 0's
// weights are broadcast before training.
DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_
