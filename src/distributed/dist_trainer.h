// Data-parallel training harness (the paper's Fig. 5 controller-worker layout
// at process scale): K workers hold model replicas, train on disjoint shards
// of each batch permutation, and synchronize gradients with a real all-reduce.
// Rank 0 co-locates the Egeria controller; freeze/unfreeze decisions travel as
// control-plane broadcast messages and are applied at iteration boundaries, and
// frozen stages drop out of the synchronization payload (the Fig. 10 traffic
// saving).
//
// The per-rank loop (TrainRank) runs over a byte-oriented Transport, so the
// same code serves two deployments:
//   - TrainDataParallel: the in-process harness — ranks are threads over an
//     InprocTransportGroup (or, for validation, TCP sockets between threads).
//   - tools/egeria_worker.cc: one rank per OS process over MakeTcpTransport,
//     launched by SpawnWorld / scripts/launch_dist.sh.
//
// Default synchronization is a ring reduce-scatter/all-gather with ZeRO-1
// optimizer-state sharding: each rank owns one contract chunk of the flattened
// active-parameter space, applies the optimizer update for its shard, and the
// all-gather circulates updated parameters. The freeze frontier re-partitions
// shards, so frozen parameters leave both the ring payload and per-rank
// optimizer memory. The rank-0 star reduce survives as the sequential reference
// implementation that tests compare against bitwise (in-process only: it reads
// peers' gradients through shared memory).
#ifndef EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_
#define EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/core/config.h"
#include "src/core/task.h"
#include "src/data/dataloader.h"
#include "src/distributed/transport/transport.h"
#include "src/models/chain_model.h"
#include "src/optim/lr_scheduler.h"

namespace egeria {

class GradientAllReducer;

struct DistTrainConfig {
  int world = 2;
  int epochs = 4;
  int64_t batch_size = 8;  // per worker
  TaskSpec task;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  std::shared_ptr<LrScheduler> lr_schedule;
  uint64_t seed = 42;
  int64_t val_batches = 4;

  // Gradient synchronization + optimizer layout. Both implement the same
  // reduction contract, so they produce bitwise-identical trained weights (on
  // monotone-freezing runs; see sharded_optimizer.h for the unfreeze caveat).
  enum class Reducer {
    kRingSharded,           // ring reduce-scatter/all-gather + ZeRO-1 shards
    kSequentialReference,   // rank-0 star reduce + fully replicated optimizer
  };
  Reducer reducer = Reducer::kRingSharded;

  // How the in-process harness (TrainDataParallel) wires its ranks together.
  // kTcp runs every collective over real localhost sockets — same arithmetic,
  // actual bytes on a wire — and requires reducer == kRingSharded.
  enum class TransportKind { kInproc, kTcp };
  TransportKind transport = TransportKind::kInproc;

  // Overlap gradient communication with backward compute (ring-sharded path
  // only): the active space is split into per-stage buckets and a dedicated
  // comm thread runs each stage's ring reduce-scatter/step/all-gather the
  // moment that stage's backward finishes, front-most ready bucket first
  // (overlap_reducer.h). Bitwise-identical to the post-backward round by the
  // reduction contract; false keeps the sequential round as the pin baseline.
  bool overlap_comm = true;

  // Coalesce adjacent per-stage buckets until each holds at least this many
  // elements. Every bucket pays fixed costs (one agreement round + per-hop
  // ring latency on clipped chunks), so models with many small stages lose
  // the overlap win to launch overhead. Coalescing is bitwise-free: the
  // bucket partition never changes element ownership or fold order (both
  // derive from the GLOBAL contract chunking), and backward runs deep to
  // front, so a merged bucket is complete exactly when its front-most stage's
  // backward finishes. 0 = one bucket per stage.
  int64_t overlap_min_bucket_elems = 16384;

  bool enable_egeria = false;
  EgeriaConfig egeria;

  // Fault tolerance: when ckpt.enabled(), every rank persists its ZeRO-1
  // momentum shard each interval, rank 0 commits the manifest (model state,
  // controller state, loop cursors) after a barrier, and a world started
  // against a directory holding a complete checkpoint resumes from it. The
  // saved world size need not match the resuming one: shards are re-folded
  // through the reduction-contract partition (elastic restart). Bitwise-resume
  // contract: resuming at the SAME world size reproduces the uninterrupted
  // run's final weights bit-for-bit; an elastic resume is bitwise-equal to any
  // other resume of the same checkpoint at the new world size (in-process or
  // multi-process).
  CheckpointOptions ckpt;

  // Stop every rank cleanly after this many iterations (a final checkpoint is
  // written when checkpointing is enabled); <0 runs to completion. All ranks
  // share the config, so the world stops in lockstep.
  int64_t stop_after_iters = -1;

  // Frame integrity: wrap every rank's transport in IntegrityTransport
  // (checksums + sequence numbers on all collective frames; see
  // transport/integrity_transport.h). Adds a 16-byte header per frame but no
  // semantics, so all bitwise pins hold with it on. The multi-process worker
  // has its own flag (egeria_worker --integrity).
  bool frame_integrity = true;

  // Test hook: invoked at the top of every iteration on every rank (fault
  // injection for the multi-process launcher tests). Null = no-op.
  std::function<void(int rank, int64_t iter)> iteration_hook;
};

// One entry per shard (re)partition in the ring-sharded path: the initial
// partition plus one per freeze-frontier move. Captures the Fig. 10 scaling
// argument: the ring payload, per-rank optimizer state, AND measured all-reduce
// seconds all shrink as stages freeze.
struct DistReshardEvent {
  int64_t iter = 0;
  int frontier = 0;
  int64_t active_elems = 0;             // flattened active-parameter elements
  int64_t payload_bytes_per_iter = 0;   // ring payload at this frontier
  int64_t opt_state_bytes_per_rank = 0; // rank 0's velocity shard bytes
  // Measured mean wall seconds rank 0 spent in ring collectives per iteration
  // while this frontier was in effect (i.e. over [iter, next event's iter)).
  double allreduce_seconds_per_iter = 0.0;
  // Overlap split of that comm time (overlap_comm only): the share hidden
  // behind backward compute vs exposed past the end of backward. hidden +
  // exposed ≈ allreduce + agreement traffic; hidden is the Fig. 10 win the
  // bucket schedule buys on a real wire.
  double comm_hidden_s_per_iter = 0.0;
  double comm_exposed_s_per_iter = 0.0;
};

// What one rank's training loop produces. rank 0 additionally validates and
// carries the reshard timeline.
struct RankTrainResult {
  int rank = 0;
  uint64_t params_hash = 0;        // FNV-1a over this rank's final weights
  int final_frontier = 0;
  int64_t iterations = 0;
  int64_t bytes_synced = 0;        // logical payload (sum of active grad bytes)
  int64_t bytes_full_model = 0;    // payload if nothing were frozen
  int64_t wire_bytes = 0;          // bytes this rank pushed onto its ring link
  double allreduce_seconds = 0.0;  // wall seconds in ring collectives
  double comm_hidden_seconds = 0.0;   // comm hidden behind backward (overlap)
  double comm_exposed_seconds = 0.0;  // comm exposed past backward (overlap)
  double final_score = 0.0;        // rank 0 only
  double final_display = 0.0;      // rank 0 only
  // Per-phase wall seconds for this rank's loop, measured by the same
  // obs::ScopedPhase intervals that emit the trace spans and feed the metrics
  // registry — tools/egeria_trace reconciles merged traces against these
  // (egeria_worker prints them on its EGERIA_RESULT line).
  double data_seconds = 0.0;
  double fp_seconds = 0.0;
  double bp_seconds = 0.0;
  double opt_seconds = 0.0;
  double train_seconds = 0.0;      // whole-loop wall time (epoch loop only)
  int64_t resumed_from_iter = -1;  // checkpoint iteration resumed from, -1 = fresh
  bool stopped_early = false;      // stop_after_iters ended the run
  // Why the loop ended: ok() for a clean run; otherwise the first transport
  // error this rank observed (peer death, corrupt frame, coordinated abort).
  // On error the model/metrics fields reflect the last completed iteration —
  // no partial collective output is ever consumed.
  TransportStatus status;
  std::vector<DistReshardEvent> reshard_events;  // rank 0, ring-sharded only
  std::unique_ptr<ChainModel> model;             // the trained replica
};

struct DistTrainResult {
  double final_score = 0.0;
  double final_display = 0.0;
  int64_t bytes_synced = 0;        // logical payload (sum of active grad bytes)
  int64_t bytes_full_model = 0;    // payload if nothing were frozen
  int64_t wire_bytes = 0;          // bytes that traversed ring links, summed
                                   // over ranks (0 for the sequential
                                   // reference path)
  double allreduce_seconds = 0.0;  // rank 0's measured collective seconds
  double comm_hidden_seconds = 0.0;   // rank 0's comm hidden behind backward
  double comm_exposed_seconds = 0.0;  // rank 0's comm exposed past backward
  int final_frontier = 0;
  int64_t iterations = 0;
  bool replicas_consistent = false;  // replicas bit-identical at the end
  uint64_t params_hash = 0;          // FNV-1a over replica 0's final weights
  int64_t resumed_from_iter = -1;    // rank 0's resume point (-1 = fresh start)
  bool stopped_early = false;
  // First non-ok rank status (any error forces replicas_consistent = false).
  TransportStatus status;
  std::vector<DistReshardEvent> reshard_events;  // ring-sharded path only
};

// One rank's full training loop over `transport`. Collective: every rank of
// the world must call this concurrently with an identical config and a
// deterministic `make_model` (same architecture AND same seed per call; rank
// 0's initial weights are additionally broadcast so replicas start
// bit-identical even if seeding diverges). `reference_reducer` must be non-null
// iff cfg.reducer == kSequentialReference (in-process threads only).
RankTrainResult TrainRank(
    Transport& transport,
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg,
    GradientAllReducer* reference_reducer = nullptr);

// In-process harness: spawns cfg.world rank threads over the configured
// transport and aggregates their RankTrainResults.
DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_
