// Thread-based data-parallel training harness (the paper's Fig. 5 controller-worker
// layout at process scale): K workers hold model replicas, train on disjoint shards
// of each batch permutation, and synchronize gradients with a real all-reduce.
// Worker 0 co-locates the Egeria controller; freeze/unfreeze decisions are broadcast
// to all workers and applied at iteration boundaries, and frozen stages drop out of
// the synchronization payload (the Fig. 10 traffic saving).
#ifndef EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_
#define EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/core/task.h"
#include "src/data/dataloader.h"
#include "src/models/chain_model.h"
#include "src/optim/lr_scheduler.h"

namespace egeria {

struct DistTrainConfig {
  int world = 2;
  int epochs = 4;
  int64_t batch_size = 8;  // per worker
  TaskSpec task;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  std::shared_ptr<LrScheduler> lr_schedule;
  uint64_t seed = 42;
  int64_t val_batches = 4;

  bool enable_egeria = false;
  EgeriaConfig egeria;
};

struct DistTrainResult {
  double final_score = 0.0;
  double final_display = 0.0;
  int64_t bytes_synced = 0;        // actual all-reduce payload
  int64_t bytes_full_model = 0;    // payload if nothing were frozen
  int final_frontier = 0;
  int64_t iterations = 0;
  bool replicas_consistent = false;  // replicas bit-identical at the end
};

// `make_model` must build identical architectures (same seed) per call; replica 0's
// weights are broadcast before training.
DistTrainResult TrainDataParallel(
    const std::function<std::unique_ptr<ChainModel>()>& make_model,
    const Dataset& train_data, const Dataset& val_data, const DistTrainConfig& cfg);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_DIST_TRAINER_H_
