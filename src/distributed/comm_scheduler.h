// Discrete-event simulation of one steady-state data-parallel training iteration
// under different communication schedules (Fig. 10):
//
//  - kFifo: the framework default — a gradient starts synchronizing when its stage's
//    backward completes (deep stages first), FIFO over a single logical link, and
//    the next iteration starts only once all gradients are reduced.
//  - kByteScheduler: priority scheduling + tensor partitioning (Peng et al., SOSP'19)
//    — ready gradients are partitioned into chunks and the link always serves the
//    highest-priority (front-most) stage next, letting the next iteration's forward
//    pass begin as soon as the stages it needs are synchronized.
//
// Egeria composes with either policy by zeroing the backward time and gradient bytes
// of the frozen prefix (and optionally its forward time, when the activation cache
// serves it).
#ifndef EGERIA_SRC_DISTRIBUTED_COMM_SCHEDULER_H_
#define EGERIA_SRC_DISTRIBUTED_COMM_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/distributed/network_model.h"

namespace egeria {

enum class CommPolicy { kFifo, kByteScheduler };

struct StageCost {
  double fp_seconds = 0.0;
  double bp_seconds = 0.0;
  int64_t grad_bytes = 0;
};

struct IterationTimeline {
  double iteration_seconds = 0.0;  // steady-state per-iteration time
  double comm_seconds = 0.0;       // total link busy time
  double exposed_comm_seconds = 0.0;  // communication not hidden behind compute
};

// `stages` ordered front (index 0) to back. Stages with index < frozen_prefix are
// frozen: no backward, no gradient traffic; their forward time is dropped as well
// when `prefix_fp_cached` is set (activation cache).
IterationTimeline SimulateIteration(const std::vector<StageCost>& stages,
                                    const NetworkModel& net, CommPolicy policy,
                                    int frozen_prefix = 0, bool prefix_fp_cached = false,
                                    int chunks_per_stage = 4);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_COMM_SCHEDULER_H_
