// The reduction contract: the single, documented accumulation order that every
// gradient reducer in this repo implements, so that the bandwidth-optimal ring
// and the obviously-correct sequential reference produce *bitwise-identical*
// fp32 results (the same guarantee the GEMM backend gives for its chunked dW
// reduction: fixed chunk partition, fixed fold order, no reassociation).
//
// Contract:
//   1. The flattened payload (active parameters concatenated in ParamsFrom
//      order) is split into `world` contiguous chunks; chunk sizes differ by at
//      most one element, with the remainder spread over the lowest-index chunks
//      (ChunkBegin/ChunkEnd below).
//   2. Chunk `c` is reduced as a left-to-right fold in *ring order* starting at
//      rank (c+1) mod world:
//        sum_c = ((g[(c+1)%W] + g[(c+2)%W]) + ...) + g[c]
//      i.e. the order in which a ring reduce-scatter naturally visits ranks,
//      ending at the chunk's owner, rank c.
//   3. Averaging is a separate elementwise multiply by 1/world AFTER the fold
//      (never fused into the adds, so no FMA contraction can change bits).
//
// Any reducer that follows 1-3 matches any other bitwise, regardless of
// transport (star, ring, tree-of-rings), which is what lets tests pin the ring
// implementation against the sequential reference at every world size.
#ifndef EGERIA_SRC_DISTRIBUTED_REDUCTION_CONTRACT_H_
#define EGERIA_SRC_DISTRIBUTED_REDUCTION_CONTRACT_H_

#include <algorithm>
#include <cstdint>

namespace egeria {

// First element of chunk `chunk` when `total` elements are split into `world`
// contiguous chunks (remainder spread over the first `total % world` chunks).
inline int64_t ChunkBegin(int64_t total, int world, int chunk) {
  const int64_t base = total / world;
  const int64_t rem = total % world;
  return static_cast<int64_t>(chunk) * base + std::min<int64_t>(chunk, rem);
}

inline int64_t ChunkEnd(int64_t total, int world, int chunk) {
  return ChunkBegin(total, world, chunk + 1);
}

inline int64_t ChunkSize(int64_t total, int world, int chunk) {
  return ChunkEnd(total, world, chunk) - ChunkBegin(total, world, chunk);
}

// The [begin, end) contract chunk as one value, so callers that need both
// bounds (every reducer and the sharded optimizer) don't recompute them by
// hand. `chunk` may be given modulo world (ring arithmetic tolerated).
struct Span {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
  int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(float)); }
};

inline Span ChunkSpan(int64_t total, int world, int chunk) {
  const int c = ((chunk % world) + world) % world;
  return {ChunkBegin(total, world, c), ChunkEnd(total, world, c)};
}

// Rank index modulo world, tolerant of negative arguments (ring arithmetic).
inline int RingRank(int r, int world) { return ((r % world) + world) % world; }

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_REDUCTION_CONTRACT_H_
