#include "src/distributed/allreduce.h"

#include "src/util/logging.h"

namespace egeria {

GradientAllReducer::GradientAllReducer(int world) : world_(world) {
  EGERIA_CHECK(world_ >= 1);
  param_lists_.resize(static_cast<size_t>(world_), nullptr);
}

void GradientAllReducer::Barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  const int64_t gen = generation_;
  if (++arrived_ == world_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
}

void GradientAllReducer::AllReduce(int rank, const std::vector<Parameter*>& params) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  if (world_ == 1) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    param_lists_[static_cast<size_t>(rank)] = &params;
  }
  Barrier();  // All ranks registered.
  if (rank == 0) {
    const auto& base = *param_lists_[0];
    const float inv = 1.0F / static_cast<float>(world_);
    int64_t bytes = 0;
    for (size_t p = 0; p < base.size(); ++p) {
      float* acc = base[p]->grad.Data();
      const int64_t n = base[p]->grad.NumEl();
      bytes += n * static_cast<int64_t>(sizeof(float));
      for (int r = 1; r < world_; ++r) {
        const auto& other = *param_lists_[static_cast<size_t>(r)];
        EGERIA_CHECK_MSG(other.size() == base.size(), "rank param list mismatch");
        const float* g = other[p]->grad.Data();
        for (int64_t i = 0; i < n; ++i) {
          acc[i] += g[i];
        }
      }
      for (int64_t i = 0; i < n; ++i) {
        acc[i] *= inv;
      }
      // Broadcast the averaged gradient back to every rank.
      for (int r = 1; r < world_; ++r) {
        const auto& other = *param_lists_[static_cast<size_t>(r)];
        std::copy(acc, acc + n, other[p]->grad.Data());
      }
    }
    bytes_reduced_.fetch_add(bytes);
  }
  Barrier();  // Averaged gradients visible to every rank.
}

}  // namespace egeria
