#include "src/distributed/allreduce.h"

#include <cstring>

#include "src/distributed/reduction_contract.h"
#include "src/distributed/transport/ring_schedule.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace egeria {

GradientAllReducer::GradientAllReducer(int world)
    : world_(world), barrier_(world) {
  EGERIA_CHECK(world_ >= 1);
  param_lists_.resize(static_cast<size_t>(world_), nullptr);
}

void GradientAllReducer::AllReduce(int rank, const std::vector<Parameter*>& params) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  if (world_ == 1) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    param_lists_[static_cast<size_t>(rank)] = &params;
  }
  barrier_.Wait();  // All ranks registered.
  if (rank == 0) {
    // Sequential reference implementation of the reduction contract: fold each
    // contract chunk in canonical ring order — (c+1)%W, (c+2)%W, ..., c — then
    // average in a separate elementwise pass and broadcast. Any transport that
    // honors the contract (the ring below) matches this bitwise.
    std::vector<FlatParamView> views;
    views.reserve(static_cast<size_t>(world_));
    for (int r = 0; r < world_; ++r) {
      const auto& list = *param_lists_[static_cast<size_t>(r)];
      EGERIA_CHECK_MSG(list.size() == param_lists_[0]->size(),
                       "rank param list mismatch");
      views.emplace_back(list, FlatParamView::Field::kGrad);
      EGERIA_CHECK(views.back().NumEl() == views[0].NumEl());
    }
    const int64_t total = views[0].NumEl();
    const float inv = 1.0F / static_cast<float>(world_);
    std::vector<float> buf(static_cast<size_t>(ChunkSpan(total, world_, 0).size()));
    for (int c = 0; c < world_; ++c) {
      const Span chunk = ChunkSpan(total, world_, c);
      if (chunk.size() == 0) {
        continue;
      }
      views[static_cast<size_t>(RingRank(c + 1, world_))].CopyOut(
          chunk.begin, chunk.end, buf.data());
      for (int k = 2; k <= world_; ++k) {
        views[static_cast<size_t>(RingRank(c + k, world_))].AddTo(
            chunk.begin, chunk.end, buf.data());
      }
      for (int64_t i = 0; i < chunk.size(); ++i) {
        buf[static_cast<size_t>(i)] *= inv;
      }
      for (int r = 0; r < world_; ++r) {
        views[static_cast<size_t>(r)].CopyIn(chunk.begin, chunk.end, buf.data());
      }
    }
    bytes_reduced_.fetch_add(total * static_cast<int64_t>(sizeof(float)));
  }
  barrier_.Wait();  // Averaged gradients visible to every rank.
}

namespace {

// The circulated item schedule of a range-restricted round: global contract
// chunk c clipped to the bucket [begin, end). Keeping the GLOBAL chunk bounds
// (rather than re-partitioning the sub-range) is what makes a union of bucket
// rounds bitwise-equal to one full-space round — every element keeps its chunk
// owner and its position in the fold.
Span ClippedChunkSpan(int64_t total, int world, int chunk, int64_t begin,
                      int64_t end) {
  Span s = ChunkSpan(total, world, chunk);
  s.begin = std::max(s.begin, begin);
  s.end = std::min(s.end, end);
  if (s.begin > s.end) {
    s.begin = s.end = 0;  // Disjoint: an empty (zero-byte) frame.
  }
  return s;
}

}  // namespace

RingAllReducer::RingAllReducer(Transport& transport) : transport_(transport) {}

TransportStatus RingAllReducer::ReduceScatterAverage(
    FlatParamView& view, std::pair<int64_t, int64_t>* owned) {
  if (owned != nullptr) {
    const Span own = ChunkSpan(view.NumEl(), transport_.World(), transport_.Rank());
    *owned = {own.begin, own.end};
  }
  return ReduceScatterAverageRange(view, 0, view.NumEl());
}

TransportStatus RingAllReducer::ReduceScatterAverageRange(FlatParamView& view,
                                                          int64_t begin,
                                                          int64_t end) {
  const int rank = transport_.Rank();
  const int world = transport_.World();
  const int64_t total = view.NumEl();
  if (world == 1) {
    return TransportStatus::Ok();
  }
  WallTimer timer;
  trace::Span span("ring", "reduce_scatter");
  if (span.active()) {
    span.SetArgs("{\"elems\":%lld}", static_cast<long long>(end - begin));
  }

  // Chunk c's partial sum enters the ring at rank (c+1)%W (initial value: that
  // rank's local chunk) and travels one hop per step, each visited rank folding
  // in its own local chunk; after W-1 hops the fully-folded chunk sits at its
  // owner, rank c. For rank r that schedule is a circulation starting at chunk
  // r-1, whose final receive is r's own chunk r; the in-place fold in `consume`
  // is what the circulation forwards.
  const TransportStatus st = RingCirculate(
      transport_, rank - 1,
      [&](int c) { return ClippedChunkSpan(total, world, c, begin, end); },
      [&](float* buf, int, const Span& s) { view.CopyOut(s.begin, s.end, buf); },
      [&](float* buf, int c, const Span& s) {
        // Ring-order fold step: incoming partial sum (left operand, preserved
        // per element) += this rank's local chunk.
        view.AddTo(s.begin, s.end, buf);
        if (c == rank) {
          // Final step: buf holds the contract fold for our own chunk. Average
          // in a separate pass (never fused into the adds) and land it.
          const float inv = 1.0F / static_cast<float>(world);
          for (int64_t i = 0; i < s.size(); ++i) {
            buf[static_cast<size_t>(i)] *= inv;
          }
          view.CopyIn(s.begin, s.end, buf);
        }
      },
      &wire_bytes_);
  comm_seconds_ += timer.ElapsedSeconds();
  if (!st.ok()) {
    return st;
  }
  payload_bytes_ += (end - begin) * static_cast<int64_t>(sizeof(float));
  return st;
}

TransportStatus RingAllReducer::AllGather(FlatParamView& view) {
  return AllGatherRange(view, 0, view.NumEl());
}

TransportStatus RingAllReducer::AllGatherRange(FlatParamView& view, int64_t begin,
                                               int64_t end) {
  const int world = transport_.World();
  if (world == 1) {
    return TransportStatus::Ok();
  }
  WallTimer timer;
  trace::Span span("ring", "all_gather");
  if (span.active()) {
    span.SetArgs("{\"elems\":%lld}", static_cast<long long>(end - begin));
  }
  const int64_t total = view.NumEl();

  // Rank r seeds the ring with its own chunk r; every step each rank forwards
  // the chunk it received last step, so after W-1 steps every rank has landed
  // every owner's (bit-exact, owner-computed-once) chunk.
  const TransportStatus st = RingCirculate(
      transport_, transport_.Rank(),
      [&](int c) { return ClippedChunkSpan(total, world, c, begin, end); },
      [&](float* buf, int, const Span& s) { view.CopyOut(s.begin, s.end, buf); },
      [&](const float* buf, int, const Span& s) { view.CopyIn(s.begin, s.end, buf); },
      &wire_bytes_);
  comm_seconds_ += timer.ElapsedSeconds();
  return st;
}

}  // namespace egeria
