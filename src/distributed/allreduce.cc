#include "src/distributed/allreduce.h"

#include <cstring>

#include "src/distributed/reduction_contract.h"
#include "src/util/logging.h"

namespace egeria {

GradientAllReducer::GradientAllReducer(int world)
    : world_(world), barrier_(world) {
  EGERIA_CHECK(world_ >= 1);
  param_lists_.resize(static_cast<size_t>(world_), nullptr);
}

void GradientAllReducer::AllReduce(int rank, const std::vector<Parameter*>& params) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  if (world_ == 1) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    param_lists_[static_cast<size_t>(rank)] = &params;
  }
  barrier_.Wait();  // All ranks registered.
  if (rank == 0) {
    // Sequential reference implementation of the reduction contract: fold each
    // contract chunk in canonical ring order — (c+1)%W, (c+2)%W, ..., c — then
    // average in a separate elementwise pass and broadcast. Any transport that
    // honors the contract (the ring below) matches this bitwise.
    std::vector<FlatParamView> views;
    views.reserve(static_cast<size_t>(world_));
    for (int r = 0; r < world_; ++r) {
      const auto& list = *param_lists_[static_cast<size_t>(r)];
      EGERIA_CHECK_MSG(list.size() == param_lists_[0]->size(),
                       "rank param list mismatch");
      views.emplace_back(list, FlatParamView::Field::kGrad);
      EGERIA_CHECK(views.back().NumEl() == views[0].NumEl());
    }
    const int64_t total = views[0].NumEl();
    const float inv = 1.0F / static_cast<float>(world_);
    std::vector<float> buf(static_cast<size_t>(ChunkSize(total, world_, 0)));
    for (int c = 0; c < world_; ++c) {
      const int64_t cb = ChunkBegin(total, world_, c);
      const int64_t ce = ChunkEnd(total, world_, c);
      const int64_t n = ce - cb;
      if (n == 0) {
        continue;
      }
      views[static_cast<size_t>(RingRank(c + 1, world_))].CopyOut(cb, ce, buf.data());
      for (int k = 2; k <= world_; ++k) {
        views[static_cast<size_t>(RingRank(c + k, world_))].AddTo(cb, ce, buf.data());
      }
      for (int64_t i = 0; i < n; ++i) {
        buf[static_cast<size_t>(i)] *= inv;
      }
      for (int r = 0; r < world_; ++r) {
        views[static_cast<size_t>(r)].CopyIn(cb, ce, buf.data());
      }
    }
    bytes_reduced_.fetch_add(total * static_cast<int64_t>(sizeof(float)));
  }
  barrier_.Wait();  // Averaged gradients visible to every rank.
}

RingAllReducer::RingAllReducer(int world) : world_(world), barrier_(world) {
  EGERIA_CHECK(world_ >= 1);
  flat_sizes_.resize(static_cast<size_t>(world_), 0);
  outbox_.resize(static_cast<size_t>(world_));
}

void RingAllReducer::Register(int rank, FlatParamView& view) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    flat_sizes_[static_cast<size_t>(rank)] = view.NumEl();
  }
  const int64_t max_chunk = ChunkSize(view.NumEl(), world_, 0);
  outbox_[static_cast<size_t>(rank)].resize(static_cast<size_t>(max_chunk));
  barrier_.Wait();  // All sizes registered, all outboxes sized.
  EGERIA_CHECK_MSG(flat_sizes_[0] == view.NumEl(), "rank flat size mismatch");
}

std::pair<int64_t, int64_t> RingAllReducer::ReduceScatterAverage(int rank,
                                                                 FlatParamView& view) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  const int64_t total = view.NumEl();
  const int64_t own_begin = ChunkBegin(total, world_, rank);
  const int64_t own_end = ChunkEnd(total, world_, rank);
  if (world_ == 1) {
    return {own_begin, own_end};
  }
  Register(rank, view);

  // Chunk c's partial sum enters the ring at rank (c+1)%W (initial value: that
  // rank's local chunk) and travels one hop per step, each visited rank folding
  // in its own local chunk; after W-1 hops the fully-folded chunk sits at its
  // owner, rank c. At step s rank r forwards chunk (r-1-s)%W and receives chunk
  // (r-2-s)%W, so the final receive (s = W-2) is rank r's own chunk r.
  std::vector<float> partial(static_cast<size_t>(ChunkSize(total, world_, 0)));
  float* outbox = outbox_[static_cast<size_t>(rank)].data();
  const float* inbox = outbox_[static_cast<size_t>(RingRank(rank - 1, world_))].data();
  int64_t sent_bytes = 0;
  for (int s = 0; s <= world_ - 2; ++s) {
    const int c_send = RingRank(rank - 1 - s, world_);
    const int64_t send_n = ChunkSize(total, world_, c_send);
    if (s == 0) {
      view.CopyOut(ChunkBegin(total, world_, c_send), ChunkEnd(total, world_, c_send),
                   outbox);
    } else if (send_n > 0) {
      std::memcpy(outbox, partial.data(), static_cast<size_t>(send_n) * sizeof(float));
    }
    sent_bytes += send_n * static_cast<int64_t>(sizeof(float));
    barrier_.Wait();  // Every outbox holds this step's message.
    const int c_recv = RingRank(rank - 2 - s, world_);
    const int64_t recv_n = ChunkSize(total, world_, c_recv);
    if (recv_n > 0) {
      std::memcpy(partial.data(), inbox, static_cast<size_t>(recv_n) * sizeof(float));
    }
    view.AddTo(ChunkBegin(total, world_, c_recv), ChunkEnd(total, world_, c_recv),
               partial.data());
    barrier_.Wait();  // Every inbox consumed; outboxes reusable.
  }

  // `partial` now holds the contract fold for chunk `rank`; average and land it.
  const float inv = 1.0F / static_cast<float>(world_);
  for (int64_t i = 0; i < own_end - own_begin; ++i) {
    partial[static_cast<size_t>(i)] *= inv;
  }
  view.CopyIn(own_begin, own_end, partial.data());

  wire_bytes_.fetch_add(sent_bytes);
  if (rank == 0) {
    payload_bytes_.fetch_add(total * static_cast<int64_t>(sizeof(float)));
  }
  return {own_begin, own_end};
}

void RingAllReducer::AllGather(int rank, FlatParamView& view) {
  EGERIA_CHECK(rank >= 0 && rank < world_);
  if (world_ == 1) {
    return;
  }
  Register(rank, view);
  const int64_t total = view.NumEl();

  // Rank r seeds the ring with its own chunk r; every step each rank forwards
  // the chunk it received last step, so after W-1 steps every rank has landed
  // every owner's (bit-exact, owner-computed-once) chunk.
  std::vector<float> recv(static_cast<size_t>(ChunkSize(total, world_, 0)));
  float* outbox = outbox_[static_cast<size_t>(rank)].data();
  const float* inbox = outbox_[static_cast<size_t>(RingRank(rank - 1, world_))].data();
  int64_t sent_bytes = 0;
  for (int s = 0; s <= world_ - 2; ++s) {
    const int c_send = RingRank(rank - s, world_);
    const int64_t send_n = ChunkSize(total, world_, c_send);
    if (s == 0) {
      view.CopyOut(ChunkBegin(total, world_, c_send), ChunkEnd(total, world_, c_send),
                   outbox);
    } else if (send_n > 0) {
      std::memcpy(outbox, recv.data(), static_cast<size_t>(send_n) * sizeof(float));
    }
    sent_bytes += send_n * static_cast<int64_t>(sizeof(float));
    barrier_.Wait();  // Every outbox holds this step's message.
    const int c_recv = RingRank(rank - 1 - s, world_);
    const int64_t recv_n = ChunkSize(total, world_, c_recv);
    if (recv_n > 0) {
      std::memcpy(recv.data(), inbox, static_cast<size_t>(recv_n) * sizeof(float));
    }
    view.CopyIn(ChunkBegin(total, world_, c_recv), ChunkEnd(total, world_, c_recv),
                recv.data());
    barrier_.Wait();  // Every inbox consumed; outboxes reusable.
  }
  wire_bytes_.fetch_add(sent_bytes);
}

}  // namespace egeria
