// Backward-overlapped bucketed gradient reducer: hides ring communication
// behind backward compute (the paper's Fig. 10 "composes with ByteScheduler"
// claim, made real on the byte Transport instead of simulated by
// comm_scheduler.cc).
//
// The active flat parameter space is partitioned into per-stage BUCKETS (one
// contiguous range per unfrozen stage, in ParamsFrom order; frozen stages have
// no bucket at all). The trainer's backward fires a per-stage observer the
// moment a stage's gradients are final; a dedicated comm thread then runs that
// stage's bucket through a range-restricted ring reduce-scatter -> owner-shard
// optimizer step -> ring all-gather while the main thread keeps computing the
// remaining (earlier) stages' backward.
//
// Bitwise contract. A bucket round circulates the intersection of the GLOBAL
// reduction-contract chunks with the bucket range (allreduce.h,
// ReduceScatterAverageRange), so every element keeps the chunk owner and fold
// order it has in the full-space round; buckets are disjoint and cover the
// space, so the union of bucket rounds is bitwise-equal to the sequential
// post-backward round — and hence to the sequential reference reducer —
// regardless of the order buckets are processed in.
//
// Scheduling. Ranks may reach readiness at different times, but every
// collective needs all ranks on the same bucket. Before each round the comm
// threads run a ring agreement: each rank circulates the index of its
// front-most (minimum stage) locally-ready unprocessed bucket and everyone
// takes the max. Backward readiness grows from the back of the model, so each
// rank's ready set is a suffix of the bucket order and the max-of-mins is
// ready (or imminently ready) on every rank — deadlock-free, and it
// implements exactly comm_scheduler.cc's ByteScheduler priority: among ready
// buckets, front stages go first (they gate the next iteration's forward).
// The choice only affects timing, never bits (buckets are disjoint).
//
// Threading. The comm thread is the transport's ONLY user from BeginRound
// until FinishRound returns; the trainer does all its other collectives
// (control broadcast, checkpoint rendezvous, reshard) outside that window.
// Bucket ranges are published under the mutex before backward writes later
// stages' gradients, and a bucket's values are written only after that
// stage's backward finished reading them — no data races by construction.
#ifndef EGERIA_SRC_DISTRIBUTED_OVERLAP_REDUCER_H_
#define EGERIA_SRC_DISTRIBUTED_OVERLAP_REDUCER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/distributed/allreduce.h"
#include "src/distributed/flat_view.h"
#include "src/distributed/transport/transport.h"
#include "src/optim/sharded_optimizer.h"

namespace egeria {

class OverlapReducer {
 public:
  // One per-stage slice of the ACTIVE flat space ([begin, end) are offsets
  // into the FlatParamView over ParamsFrom(frontier)). Buckets must be
  // disjoint, ascending, and identical across ranks (they derive from shared
  // model geometry + the broadcast frontier).
  struct Bucket {
    int stage = 0;
    int64_t begin = 0;
    int64_t end = 0;
  };

  // Per-round overlap accounting (all ranks measure; rank 0's is reported).
  struct RoundStats {
    double comm_seconds = 0.0;     // wall seconds inside ring collectives
    double exposed_seconds = 0.0;  // FinishRound block time (comm NOT hidden)
    double hidden_seconds = 0.0;   // max(0, comm - exposed): hidden behind bp
  };

  // `ring` and `opt` must outlive this reducer; the comm thread calls into
  // both. The thread is parked between rounds.
  OverlapReducer(Transport& transport, RingAllReducer& ring, ShardedSgd& opt);
  ~OverlapReducer();

  OverlapReducer(const OverlapReducer&) = delete;
  OverlapReducer& operator=(const OverlapReducer&) = delete;

  // Arms one overlapped round. `grads`/`values` must stay valid through
  // FinishRound; [shard_begin, shard_end) is this rank's optimizer shard in
  // active-space coordinates. Call immediately before BackwardTo; the
  // transport belongs to the comm thread until FinishRound returns.
  void BeginRound(FlatParamView* grads, FlatParamView* values,
                  std::vector<Bucket> buckets, int64_t shard_begin,
                  int64_t shard_end, float lr);

  // Marks `stage`'s bucket ready (wire this as the model's stage-backward
  // observer). Stages without a bucket (frozen, or no parameters) are
  // ignored. Cheap: one mutex hop + notify.
  void NotifyStageReady(int stage);

  // Blocks until every bucket's collectives completed (or the round aborted),
  // then returns the transport back to the caller. Returns the first
  // transport error of the round; on error the round is abandoned and the
  // views hold partial state that must not be consumed.
  TransportStatus FinishRound();

  const RoundStats& LastRound() const { return last_round_; }
  double TotalHiddenSeconds() const { return total_hidden_seconds_; }
  double TotalExposedSeconds() const { return total_exposed_seconds_; }

 private:
  void CommThreadMain();
  // One agreement + bucket round; returns false when the round is complete or
  // aborted.
  bool ProcessNextBucket();

  Transport& transport_;
  RingAllReducer& ring_;
  ShardedSgd& opt_;

  std::mutex mutex_;
  std::condition_variable cv_;       // comm thread waits: work / readiness
  std::condition_variable done_cv_;  // main thread waits: round completion
  bool shutdown_ = false;
  bool round_active_ = false;   // BeginRound .. FinishRound (API window)
  bool round_running_ = false;  // BeginRound .. comm thread drained/aborted

  // Round state (valid while round_active_).
  FlatParamView* grads_ = nullptr;
  FlatParamView* values_ = nullptr;
  std::vector<Bucket> buckets_;
  std::vector<bool> ready_;
  std::vector<bool> done_;
  int64_t shard_begin_ = 0;
  int64_t shard_end_ = 0;
  float lr_ = 0.0F;
  int remaining_ = 0;  // non-empty buckets still to process
  TransportStatus round_status_;
  double round_comm_start_ = 0.0;  // ring_.CommSeconds() at BeginRound

  RoundStats last_round_;
  double total_hidden_seconds_ = 0.0;
  double total_exposed_seconds_ = 0.0;

  std::thread comm_thread_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_OVERLAP_REDUCER_H_
