// Canonical data-parallel workloads shared by the in-process tests, the
// multi-process worker binary (tools/egeria_worker.cc), and the fig10 bench.
//
// Multi-process determinism hangs on every rank constructing EXACTLY the same
// model and datasets from nothing but a workload name: the factories here are
// fully seeded, so a worker process and an in-process reference run build
// bit-identical replicas, and their final-weights FNV hashes are comparable.
#ifndef EGERIA_SRC_DISTRIBUTED_DIST_WORKLOAD_H_
#define EGERIA_SRC_DISTRIBUTED_DIST_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>

#include "src/data/dataset.h"
#include "src/distributed/dist_trainer.h"
#include "src/models/chain_model.h"

namespace egeria {

struct DistWorkload {
  std::string name;
  std::function<std::unique_ptr<ChainModel>()> make_model;
  std::unique_ptr<Dataset> train;
  std::unique_ptr<Dataset> val;
  // Pre-filled config: task, lr schedule, batch size, epochs, and Egeria
  // controller settings (enable_egeria defaults to false; flip it to turn the
  // preconfigured controller on). world/transport are for the caller.
  DistTrainConfig cfg;
};

// Known names:
//  - "tiny":  3-stage CIFAR-style ResNet on 10x10 synthetic images; the test
//             workload (same geometry the in-process DistTrainer tests pin).
//  - "fig10": wider 4-stage ResNet with more samples — enough payload per
//             iteration that the measured all-reduce time is bandwidth- rather
//             than latency-shaped, for the fig10 --transport=tcp bench.
// Aborts on an unknown name.
DistWorkload MakeDistWorkload(const std::string& name);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_DIST_WORKLOAD_H_
