#include "src/distributed/comm_scheduler.h"

#include <algorithm>

#include "src/util/logging.h"

namespace egeria {

namespace {

struct Chunk {
  int stage = 0;       // priority: lower index (front layer) = higher priority
  double ready = 0.0;  // when its gradient is produced by BP
  double cost = 0.0;   // link occupancy
};

}  // namespace

IterationTimeline SimulateIteration(const std::vector<StageCost>& stages,
                                    const NetworkModel& net, CommPolicy policy,
                                    int frozen_prefix, bool prefix_fp_cached,
                                    int chunks_per_stage) {
  EGERIA_CHECK(!stages.empty());
  EGERIA_CHECK(frozen_prefix >= 0 &&
               frozen_prefix <= static_cast<int>(stages.size()));
  const int n = static_cast<int>(stages.size());

  // Forward: frozen prefix may be served from the activation cache.
  double fp_total = 0.0;
  std::vector<double> fp_time(stages.size(), 0.0);
  for (int i = 0; i < n; ++i) {
    const bool cached = prefix_fp_cached && i < frozen_prefix;
    fp_time[static_cast<size_t>(i)] = cached ? 0.0 : stages[static_cast<size_t>(i)].fp_seconds;
    fp_total += fp_time[static_cast<size_t>(i)];
  }

  // Backward: deep-to-front over active stages; gradient of stage i is ready when
  // its backward completes.
  double bp_total = 0.0;
  std::vector<double> grad_ready(stages.size(), 0.0);
  double t = fp_total;
  for (int i = n - 1; i >= frozen_prefix; --i) {
    t += stages[static_cast<size_t>(i)].bp_seconds;
    bp_total += stages[static_cast<size_t>(i)].bp_seconds;
    grad_ready[static_cast<size_t>(i)] = t;
  }
  const double bp_end = t;

  // Build the chunk list (FIFO: one chunk per stage; ByteScheduler: partitioned).
  const int chunks = (policy == CommPolicy::kByteScheduler)
                         ? std::max(1, chunks_per_stage)
                         : 1;
  std::vector<Chunk> pending;
  double comm_total = 0.0;
  for (int i = frozen_prefix; i < n; ++i) {
    const int64_t bytes = stages[static_cast<size_t>(i)].grad_bytes;
    if (bytes <= 0) {
      continue;
    }
    // Partitioned chunks pipeline over the ring, so the per-tensor latency is
    // amortized across chunks rather than paid per chunk. The cost is the two
    // ring phases explicitly: under ZeRO-1 sharding the reduce-scatter carries
    // gradients and the all-gather carries owner-updated parameters, but the
    // link occupancy is the same either way.
    const double chunk_cost =
        (net.ReduceScatterSeconds(bytes) + net.AllGatherSeconds(bytes)) / chunks;
    for (int c = 0; c < chunks; ++c) {
      pending.push_back({i, grad_ready[static_cast<size_t>(i)], chunk_cost});
      comm_total += chunk_cost;
    }
  }

  // Single logical link; when free it serves, among ready chunks, FIFO by readiness
  // (framework default) or the front-most stage (ByteScheduler priority).
  std::vector<double> sync_done(stages.size(), 0.0);
  double link_free = 0.0;
  std::vector<bool> done(pending.size(), false);
  for (size_t served = 0; served < pending.size(); ++served) {
    int best = -1;
    double earliest_ready = 0.0;
    for (size_t k = 0; k < pending.size(); ++k) {
      if (done[k]) {
        continue;
      }
      if (best == -1) {
        best = static_cast<int>(k);
        earliest_ready = pending[k].ready;
        continue;
      }
      const Chunk& cand = pending[k];
      const Chunk& cur = pending[static_cast<size_t>(best)];
      const double now = std::max(link_free, std::min(earliest_ready, cand.ready));
      const bool cand_ready = cand.ready <= now;
      const bool cur_ready = cur.ready <= now;
      bool better = false;
      if (policy == CommPolicy::kByteScheduler) {
        // Among chunks ready by `now`, prefer the front-most stage; otherwise the
        // earliest-ready chunk.
        if (cand_ready && cur_ready) {
          better = cand.stage < cur.stage;
        } else if (cand_ready != cur_ready) {
          better = cand_ready;
        } else {
          better = cand.ready < cur.ready;
        }
      } else {
        better = cand.ready < cur.ready;  // FIFO by gradient readiness.
      }
      if (better) {
        best = static_cast<int>(k);
        earliest_ready = pending[static_cast<size_t>(best)].ready;
      }
    }
    Chunk& c = pending[static_cast<size_t>(best)];
    done[static_cast<size_t>(best)] = true;
    const double start = std::max(link_free, c.ready);
    link_free = start + c.cost;
    sync_done[static_cast<size_t>(c.stage)] =
        std::max(sync_done[static_cast<size_t>(c.stage)], link_free);
  }
  const double all_comm_done = link_free;

  // Next iteration's forward chain determines the steady-state period.
  double nf_end;
  if (policy == CommPolicy::kFifo) {
    // Synchronous: next FP starts after every gradient is reduced.
    nf_end = std::max(bp_end, all_comm_done) + fp_total;
  } else {
    // Stage i of the next FP needs its parameters synchronized and the previous
    // stage's FP done; the GPU is busy until bp_end.
    double chain = bp_end;
    for (int i = 0; i < n; ++i) {
      const double need_sync = (i >= frozen_prefix) ? sync_done[static_cast<size_t>(i)] : 0.0;
      chain = std::max(chain, need_sync) + fp_time[static_cast<size_t>(i)];
    }
    nf_end = chain;
  }

  IterationTimeline out;
  out.iteration_seconds = nf_end - fp_total;
  out.comm_seconds = comm_total;
  out.exposed_comm_seconds =
      std::max(0.0, out.iteration_seconds - (fp_total + bp_total));
  return out;
}

}  // namespace egeria
