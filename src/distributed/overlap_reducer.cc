#include "src/distributed/overlap_reducer.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace egeria {

OverlapReducer::OverlapReducer(Transport& transport, RingAllReducer& ring,
                               ShardedSgd& opt)
    : transport_(transport), ring_(ring), opt_(opt) {
  comm_thread_ = std::thread([this] { CommThreadMain(); });
}

OverlapReducer::~OverlapReducer() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A round abandoned without FinishRound (the trainer unwound on an error
    // elsewhere) would leave the comm thread blocked on readiness forever.
    shutdown_ = true;
  }
  cv_.notify_all();
  comm_thread_.join();
}

void OverlapReducer::BeginRound(FlatParamView* grads, FlatParamView* values,
                                std::vector<Bucket> buckets, int64_t shard_begin,
                                int64_t shard_end, float lr) {
  std::lock_guard<std::mutex> lock(mutex_);
  EGERIA_CHECK_MSG(!round_active_, "OverlapReducer round already in flight");
  grads_ = grads;
  values_ = values;
  buckets_ = std::move(buckets);
  ready_.assign(buckets_.size(), false);
  done_.assign(buckets_.size(), false);
  shard_begin_ = shard_begin;
  shard_end_ = shard_end;
  lr_ = lr;
  remaining_ = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].end > buckets_[i].begin) {
      ++remaining_;
    } else {
      done_[i] = true;  // Zero-parameter stage: nothing to circulate.
    }
  }
  round_status_ = TransportStatus::Ok();
  round_comm_start_ = ring_.CommSeconds();
  last_round_ = RoundStats{};
  round_active_ = true;
  round_running_ = true;
  cv_.notify_all();
}

void OverlapReducer::NotifyStageReady(int stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!round_active_) {
    return;  // Backward outside a round (reference path, warmup probes).
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].stage == stage) {
      ready_[i] = true;
      cv_.notify_all();
      return;
    }
  }
}

TransportStatus OverlapReducer::FinishRound() {
  WallTimer exposed_timer;
  std::unique_lock<std::mutex> lock(mutex_);
  EGERIA_CHECK_MSG(round_active_, "FinishRound without BeginRound");
  done_cv_.wait(lock, [&] { return !round_running_; });
  round_active_ = false;
  last_round_.exposed_seconds = exposed_timer.ElapsedSeconds();
  last_round_.comm_seconds += ring_.CommSeconds() - round_comm_start_;
  last_round_.hidden_seconds =
      std::max(0.0, last_round_.comm_seconds - last_round_.exposed_seconds);
  total_hidden_seconds_ += last_round_.hidden_seconds;
  total_exposed_seconds_ += last_round_.exposed_seconds;
  return round_status_;
}

void OverlapReducer::CommThreadMain() {
  trace::SetThreadName("comm");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || round_running_; });
      if (shutdown_) {
        return;
      }
    }
    // One "round" span per backward pass on the comm-thread track; the bucket
    // spans inside it are what should visibly overlap the trainer's bp span
    // on the merged timeline.
    trace::Span round_span("comm", "round");
    while (ProcessNextBucket()) {
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      round_running_ = false;
    }
    done_cv_.notify_all();
  }
}

bool OverlapReducer::ProcessNextBucket() {
  int chosen = -1;
  bool forced = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      if (shutdown_ || remaining_ == 0 || !round_status_.ok()) {
        return true;
      }
      for (size_t i = 0; i < buckets_.size(); ++i) {
        if (ready_[i] && !done_[i]) {
          return true;
        }
      }
      return false;
    });
    if (shutdown_ || remaining_ == 0 || !round_status_.ok()) {
      return false;
    }
    // Front-most locally-ready unprocessed bucket (buckets are in stage
    // order): the ByteScheduler priority — front stages gate the next
    // iteration's forward, so they go first among what's ready.
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (ready_[i] && !done_[i]) {
        chosen = static_cast<int>(i);
        break;
      }
    }
    // One unprocessed bucket left: the choice is forced, and it is forced to
    // the SAME index on every rank (all ranks process the identical bucket
    // list in the identical agreed order, so their done sets match round for
    // round). Skip the agreement traffic — with coalesced schedules of 1-3
    // buckets this removes most of it.
    forced = remaining_ == 1;
  }

  WallTimer agree_timer;
  int32_t acc = chosen;
  if (!forced) {
    EGERIA_TRACE_SCOPE("comm", "bucket_agree");
    // Agreement round: circulate each rank's candidate, take the max. Ready
    // sets grow from the back of the bucket order (backward order), so the
    // max-of-mins is in (or about to enter) every rank's ready set — every
    // rank converges on the same bucket without any rank waiting on an
    // un-notified one indefinitely. Bits are unaffected by the choice
    // (disjoint buckets).
    for (int step = 0; step + 1 < transport_.World(); ++step) {
      int32_t incoming = 0;
      TransportStatus st =
          transport_.RingExchange(&acc, sizeof(acc), &incoming, sizeof(incoming));
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        round_status_ = std::move(st);
        return false;
      }
      acc = std::max(acc, incoming);
    }
  }

  Bucket bucket;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    last_round_.comm_seconds += agree_timer.ElapsedSeconds();
    chosen = acc;
    EGERIA_CHECK_MSG(chosen >= 0 && chosen < static_cast<int>(buckets_.size()) &&
                         !done_[static_cast<size_t>(chosen)],
                     "overlap bucket agreement desync");
    // The agreed bucket may still be in flight locally (a peer's backward ran
    // ahead); its notification is imminent — wait for it.
    cv_.wait(lock, [&] { return shutdown_ || ready_[static_cast<size_t>(chosen)]; });
    if (shutdown_) {
      return false;
    }
    bucket = buckets_[static_cast<size_t>(chosen)];
  }

  // The bucket's ZeRO-1 round, over global-contract chunk intersections:
  // reduce-scatter the bucket's gradients, step the shard∩bucket slice,
  // all-gather the updated values. Same arithmetic as the sequential round
  // restricted to [begin, end).
  trace::Span bucket_span("comm", "bucket");
  if (bucket_span.active()) {
    bucket_span.SetArgs("{\"stage\":%d,\"elems\":%lld}", bucket.stage,
                        static_cast<long long>(bucket.end - bucket.begin));
  }
  obs::GetCounter("comm.buckets").Add(1);
  TransportStatus st;
  {
    EGERIA_TRACE_SCOPE("comm", "reduce_scatter");
    st = ring_.ReduceScatterAverageRange(*grads_, bucket.begin, bucket.end);
  }
  if (st.ok()) {
    const int64_t sb = std::max(shard_begin_, bucket.begin);
    const int64_t se = std::min(shard_end_, bucket.end);
    if (sb < se) {
      EGERIA_TRACE_SCOPE("comm", "shard_step");
      opt_.Step(*values_, *grads_, sb, se, lr_);
    }
    EGERIA_TRACE_SCOPE("comm", "all_gather");
    st = ring_.AllGatherRange(*values_, bucket.begin, bucket.end);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!st.ok()) {
    round_status_ = std::move(st);
    return false;
  }
  done_[static_cast<size_t>(chosen)] = true;
  --remaining_;
  return remaining_ > 0;
}

}  // namespace egeria
