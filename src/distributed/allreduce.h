// Real (thread-based) gradient all-reduce for the data-parallel worker harness.
// Workers call AllReduce with their parameter lists in identical order; rank 0
// averages and every rank reads back the averaged gradients. Also counts payload
// bytes so tests can assert that frozen stages are excluded from synchronization.
#ifndef EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_
#define EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/nn/module.h"

namespace egeria {

class GradientAllReducer {
 public:
  explicit GradientAllReducer(int world);

  // Collective: blocks until all `world` ranks arrive; gradients are averaged
  // elementwise across ranks. Parameter lists must align across ranks.
  void AllReduce(int rank, const std::vector<Parameter*>& params);

  int64_t TotalBytesReduced() const { return bytes_reduced_.load(); }

 private:
  void Barrier();

  int world_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  int64_t generation_ = 0;
  std::vector<const std::vector<Parameter*>*> param_lists_;
  std::atomic<int64_t> bytes_reduced_{0};
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_
