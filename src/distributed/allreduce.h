// Thread-based gradient collectives for the data-parallel worker harness.
//
// Two implementations of the SAME reduction contract (reduction_contract.h):
//
//  - GradientAllReducer: the sequential reference. Rank 0 folds every chunk in
//    canonical ring order and broadcasts. Obviously correct, zero concurrency in
//    the arithmetic; tests pin the ring against it bitwise.
//  - RingAllReducer: bandwidth-optimal ring reduce-scatter + all-gather over
//    `world` contract chunks. Each link carries 2(W-1)/W of the payload instead
//    of the star reducer's 2(W-1). Exposed as two halves so the ZeRO-1 sharded
//    optimizer can run between them: reduce-scatter(grads) -> owner applies the
//    optimizer update on its shard -> all-gather(params).
//
// Both count payload bytes so tests can assert that frozen stages drop out of
// synchronization (the Fig. 10 traffic saving).
#ifndef EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_
#define EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/distributed/flat_view.h"
#include "src/distributed/thread_barrier.h"
#include "src/nn/module.h"

namespace egeria {

class GradientAllReducer {
 public:
  explicit GradientAllReducer(int world);

  // Collective: blocks until all `world` ranks arrive; gradients are averaged
  // elementwise across ranks per the reduction contract. Parameter lists must
  // align across ranks.
  void AllReduce(int rank, const std::vector<Parameter*>& params);

  int64_t TotalBytesReduced() const { return bytes_reduced_.load(); }

 private:
  int world_;
  std::mutex mutex_;
  ThreadBarrier barrier_;
  std::vector<const std::vector<Parameter*>*> param_lists_;
  std::atomic<int64_t> bytes_reduced_{0};
};

class RingAllReducer {
 public:
  explicit RingAllReducer(int world);

  // Collective ring reduce-scatter + average. On return, rank r's view holds
  // the contract-averaged result in chunk r of the flat space; the other chunks
  // are left with whatever partial state the ring deposited (callers own only
  // their chunk until the matching AllGather). Returns rank r's owned flat
  // range [begin, end).
  std::pair<int64_t, int64_t> ReduceScatterAverage(int rank, FlatParamView& view);

  // Collective ring all-gather: circulates each owner's chunk so every rank's
  // view ends bitwise-identical. The view may be a different field than the
  // reduce-scatter's (ZeRO-1 gathers updated parameter values, not gradients)
  // but must have the same flat size.
  void AllGather(int rank, FlatParamView& view);

  // Logical payload: flat bytes per reduce-scatter call (comparable to
  // GradientAllReducer::TotalBytesReduced).
  int64_t TotalBytesReduced() const { return payload_bytes_.load(); }
  // Bytes that actually traversed ring links (both phases): 2(W-1)/W of the
  // payload per full reduce-scatter + all-gather round.
  int64_t TotalWireBytes() const { return wire_bytes_.load(); }

 private:
  void Register(int rank, FlatParamView& view);

  int world_;
  std::mutex mutex_;
  ThreadBarrier barrier_;
  std::vector<int64_t> flat_sizes_;  // per-rank registered view size (checked equal)
  std::vector<std::vector<float>> outbox_;  // per-rank in-flight chunk
  std::atomic<int64_t> payload_bytes_{0};
  std::atomic<int64_t> wire_bytes_{0};
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_
