// Gradient collectives for the data-parallel worker harness.
//
// Two implementations of the SAME reduction contract (reduction_contract.h):
//
//  - GradientAllReducer: the sequential reference. Rank 0 folds every chunk in
//    canonical ring order and broadcasts. Obviously correct, zero concurrency in
//    the arithmetic; tests pin the ring against it bitwise. In-process only
//    (ranks must be threads sharing the parameter lists).
//  - RingAllReducer: bandwidth-optimal ring reduce-scatter + all-gather over
//    `world` contract chunks, executed over a byte-oriented Transport
//    (transport/transport.h) — the same schedule runs unchanged whether ranks
//    are threads (InprocTransportGroup) or OS processes (MakeTcpTransport).
//    Each link carries 2(W-1)/W of the payload instead of the star reducer's
//    2(W-1). Exposed as two halves so the ZeRO-1 sharded optimizer can run
//    between them: reduce-scatter(grads) -> owner applies the optimizer update
//    on its shard -> all-gather(params).
//
// Both count payload bytes so tests can assert that frozen stages drop out of
// synchronization (the Fig. 10 traffic saving); the ring additionally measures
// wall seconds spent inside collectives, which is what turns the paper's
// "frozen layers shrink network traffic" claim into a measured number once the
// transport is a real wire.
#ifndef EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_
#define EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/distributed/flat_view.h"
#include "src/distributed/thread_barrier.h"
#include "src/distributed/transport/transport.h"
#include "src/nn/module.h"

namespace egeria {

class GradientAllReducer {
 public:
  explicit GradientAllReducer(int world);

  // Collective: blocks until all `world` ranks arrive; gradients are averaged
  // elementwise across ranks per the reduction contract. Parameter lists must
  // align across ranks.
  void AllReduce(int rank, const std::vector<Parameter*>& params);

  int64_t TotalBytesReduced() const { return bytes_reduced_.load(); }

 private:
  int world_;
  std::mutex mutex_;
  ThreadBarrier barrier_;
  std::vector<const std::vector<Parameter*>*> param_lists_;
  std::atomic<int64_t> bytes_reduced_{0};
};

// One rank's endpoint of the ring collectives. Construct one per rank over
// that rank's Transport; all counters are per-rank (sum across ranks for
// world totals).
class RingAllReducer {
 public:
  explicit RingAllReducer(Transport& transport);

  // Collective ring reduce-scatter + average. On ok, this rank's view holds
  // the contract-averaged result in chunk Rank() of the flat space; the other
  // chunks are left with whatever partial state the ring deposited (callers
  // own only their chunk until the matching AllGather). `owned` (nullable)
  // receives the owned flat range [begin, end). On a transport error the view
  // holds partial fold state and must not be consumed.
  TransportStatus ReduceScatterAverage(FlatParamView& view,
                                       std::pair<int64_t, int64_t>* owned);

  // Collective ring all-gather: circulates each owner's chunk so every rank's
  // view ends bitwise-identical on ok. The view may be a different field than
  // the reduce-scatter's (ZeRO-1 gathers updated parameter values, not
  // gradients) but must have the same flat size.
  TransportStatus AllGather(FlatParamView& view);

  // Range-restricted halves for the backward-overlapped bucket schedule
  // (overlap_reducer.h). The circulated spans are the intersection of the
  // GLOBAL contract chunks of view.NumEl() with [begin, end) — NOT a fresh
  // contract over the sub-range — so every element keeps the exact chunk
  // assignment and fold order it has in the full-space round. The union of
  // disjoint bucket rounds covering [0, NumEl()) is therefore bitwise-equal to
  // one ReduceScatterAverage/AllGather pair, which is the whole overlap
  // correctness argument. All ranks must call with identical [begin, end).
  // Empty intersections still exchange zero-byte frames (ring stays in
  // lockstep). The full-space calls above are the [0, NumEl()) special case.
  TransportStatus ReduceScatterAverageRange(FlatParamView& view, int64_t begin,
                                            int64_t end);
  TransportStatus AllGatherRange(FlatParamView& view, int64_t begin, int64_t end);

  // Logical payload: flat bytes per reduce-scatter call (comparable to
  // GradientAllReducer::TotalBytesReduced).
  int64_t TotalBytesReduced() const { return payload_bytes_; }
  // Bytes this rank pushed onto its ring link (both phases). Summed across the
  // world this is 2(W-1) x payload per full reduce-scatter + all-gather round,
  // i.e. 2(W-1)/W of the payload per link.
  int64_t TotalWireBytes() const { return wire_bytes_; }
  // Wall seconds this rank spent inside ring collectives (includes peer skew:
  // time blocked waiting for neighbors).
  double CommSeconds() const { return comm_seconds_; }

 private:
  Transport& transport_;
  int64_t payload_bytes_ = 0;
  int64_t wire_bytes_ = 0;
  double comm_seconds_ = 0.0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_ALLREDUCE_H_
