// Zero-copy flat view over an ordered parameter list: maps the concatenated
// [param0, param1, ...] element space (grad or value field) onto the underlying
// tensor storage, so collectives and the sharded optimizer can address
// contiguous ranges of the flattened parameter space without materializing it.
#ifndef EGERIA_SRC_DISTRIBUTED_FLAT_VIEW_H_
#define EGERIA_SRC_DISTRIBUTED_FLAT_VIEW_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/nn/module.h"

namespace egeria {

class FlatParamView {
 public:
  enum class Field { kGrad, kValue };

  FlatParamView(const std::vector<Parameter*>& params, Field field);

  int64_t NumEl() const { return total_; }

  // dst[0..end-begin) = view[begin..end)
  void CopyOut(int64_t begin, int64_t end, float* dst) const;
  // view[begin..end) = src[0..end-begin)
  void CopyIn(int64_t begin, int64_t end, const float* src);
  // acc[i] += view[begin+i] — elementwise, left operand preserved per element
  // (the fold step of the reduction contract).
  void AddTo(int64_t begin, int64_t end, float* acc) const;

  // Invokes fn(ptr, global_offset, n) for each maximal contiguous segment of
  // [begin, end); `global_offset` is the flat index of ptr[0].
  template <class Fn>
  void ForEachSegment(int64_t begin, int64_t end, Fn&& fn) const {
    for (size_t s = FindSpan(begin); s < spans_.size(); ++s) {
      const Span& sp = spans_[s];
      if (sp.begin >= end) {
        break;
      }
      const int64_t lo = std::max(begin, sp.begin);
      const int64_t hi = std::min(end, sp.begin + sp.len);
      if (hi > lo) {
        fn(sp.ptr + (lo - sp.begin), lo, hi - lo);
      }
    }
  }

 private:
  struct Span {
    float* ptr = nullptr;
    int64_t begin = 0;  // flat offset of ptr[0]
    int64_t len = 0;
  };

  // Index of the span containing flat offset `off` (or the first span after it).
  size_t FindSpan(int64_t off) const;

  std::vector<Span> spans_;
  int64_t total_ = 0;
};

// Walks value/grad views built over the SAME parameter list in lockstep:
// fn(value_ptr, grad_ptr, global_offset, n) per contiguous segment of
// [begin, end). Both views must have identical span structure.
template <class Fn>
void ForEachAlignedSegment(FlatParamView& values, const FlatParamView& grads,
                           int64_t begin, int64_t end, Fn&& fn) {
  values.ForEachSegment(begin, end, [&](float* w, int64_t off, int64_t n) {
    grads.ForEachSegment(off, off + n, [&](float* g_as_mut, int64_t goff, int64_t gn) {
      fn(w + (goff - off), g_as_mut, goff, gn);
    });
  });
}

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_FLAT_VIEW_H_
