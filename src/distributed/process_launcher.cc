#include "src/distributed/process_launcher.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/ckpt/checkpoint.h"
#include "src/util/logging.h"

namespace egeria {
namespace {

using Clock = std::chrono::steady_clock;

void MakeDirs(const std::string& path) {
  std::string partial;
  std::istringstream parts(path);
  std::string piece;
  if (!path.empty() && path[0] == '/') {
    partial = "/";
  }
  while (std::getline(parts, piece, '/')) {
    if (piece.empty()) {
      continue;
    }
    partial += piece + "/";
    if (mkdir(partial.c_str(), 0755) != 0) {
      EGERIA_CHECK_MSG(errno == EEXIST, "cannot create log dir " + partial);
    }
  }
}

// Parses "KEY k1=v1 k2=v2 ..." lines with the given prefix from a log file.
std::vector<std::map<std::string, std::string>> ParseKvLines(
    const std::string& log_path, const std::string& prefix) {
  std::vector<std::map<std::string, std::string>> out;
  std::ifstream in(log_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix + " ", 0) != 0) {
      continue;
    }
    std::map<std::string, std::string> kv;
    std::istringstream tokens(line.substr(prefix.size() + 1));
    std::string tok;
    while (tokens >> tok) {
      const size_t eq = tok.find('=');
      if (eq != std::string::npos) {
        kv[tok.substr(0, eq)] = tok.substr(eq + 1);
      }
    }
    out.push_back(std::move(kv));
  }
  return out;
}

pid_t SpawnRank(const SpawnOptions& options, int rank, const std::string& rendezvous,
                const std::string& log_path) {
  std::vector<std::string> args;
  args.push_back(options.worker_binary);
  args.push_back("--rank=" + std::to_string(rank));
  args.push_back("--world=" + std::to_string(options.world));
  args.push_back("--rendezvous=" + rendezvous);
  for (const std::string& a : options.common_args) {
    args.push_back(a);
  }
  if (static_cast<size_t>(rank) < options.per_rank_args.size()) {
    for (const std::string& a : options.per_rank_args[static_cast<size_t>(rank)]) {
      args.push_back(a);
    }
  }

  const pid_t pid = fork();
  EGERIA_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    const int log_fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (log_fd >= 0) {
      dup2(log_fd, STDOUT_FILENO);
      dup2(log_fd, STDERR_FILENO);
      close(log_fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) {
      argv.push_back(a.data());
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    // Exec failed; the log carries the reason, the exit code flags it.
    std::fprintf(stderr, "execv(%s) failed: %s\n", argv[0], std::strerror(errno));
    _exit(127);
  }
  return pid;
}

}  // namespace

SpawnResult SpawnWorld(const SpawnOptions& options) {
  EGERIA_CHECK(options.world >= 1);
  EGERIA_CHECK(!options.worker_binary.empty());
  EGERIA_CHECK(!options.log_dir.empty());
  MakeDirs(options.log_dir);
  const std::string rendezvous = options.log_dir + "/rendezvous";
  unlink(rendezvous.c_str());  // Never rendezvous against stale contents.

  SpawnResult result;
  result.final_world = options.world;
  result.exit_codes.assign(static_cast<size_t>(options.world), -1);
  std::vector<pid_t> pids(static_cast<size_t>(options.world), -1);
  for (int r = 0; r < options.world; ++r) {
    const std::string log_path =
        options.log_dir + "/rank_" + std::to_string(r) + ".log";
    result.log_paths.push_back(log_path);
    pids[static_cast<size_t>(r)] = SpawnRank(options, r, rendezvous, log_path);
  }

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options.timeout_s));
  int live = options.world;
  int failed_rank = -1;

  auto kill_survivors = [&]() {
    for (int r = 0; r < options.world; ++r) {
      if (result.exit_codes[static_cast<size_t>(r)] == -1) {
        kill(pids[static_cast<size_t>(r)], SIGKILL);
      }
    }
    while (live > 0) {
      int status = 0;
      const pid_t pid = waitpid(-1, &status, 0);
      if (pid <= 0) {
        break;
      }
      for (int r = 0; r < options.world; ++r) {
        if (pids[static_cast<size_t>(r)] == pid) {
          // A rank that had already exited on its own keeps its real code;
          // ranks that died to our SIGKILL stay -1 (they never finished).
          if (WIFEXITED(status)) {
            result.exit_codes[static_cast<size_t>(r)] = WEXITSTATUS(status);
          }
          --live;
        }
      }
    }
  };

  while (live > 0) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid == 0) {
      if (Clock::now() >= deadline) {
        std::string stuck;
        for (int r = 0; r < options.world; ++r) {
          if (result.exit_codes[static_cast<size_t>(r)] == -1) {
            stuck += (stuck.empty() ? "" : ",") + std::to_string(r);
          }
        }
        kill_survivors();
        result.timed_out = true;
        result.error = "world timed out after " + std::to_string(options.timeout_s) +
                       "s; ranks still running: [" + stuck + "] (killed)";
        return result;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    EGERIA_CHECK_MSG(pid > 0, "waitpid failed");
    for (int r = 0; r < options.world; ++r) {
      if (pids[static_cast<size_t>(r)] != pid) {
        continue;
      }
      const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                                         : 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
      result.exit_codes[static_cast<size_t>(r)] = code;
      --live;
      if (code != 0 && failed_rank < 0) {
        failed_rank = r;
      }
    }
    if (failed_rank >= 0) {
      // Fail fast: the survivors would only block in their collectives until
      // the transport deadline; kill them and report the root cause.
      kill_survivors();
      result.error = "rank " + std::to_string(failed_rank) + " exited with code " +
                     std::to_string(result.exit_codes[static_cast<size_t>(failed_rank)]) +
                     " (world killed; see " +
                     result.log_paths[static_cast<size_t>(failed_rank)] + ")";
      return result;
    }
  }

  for (int r = 0; r < options.world; ++r) {
    const auto kvs = ParseKvLines(result.log_paths[static_cast<size_t>(r)],
                                  "EGERIA_RESULT");
    result.rank_results.push_back(kvs.empty() ? std::map<std::string, std::string>{}
                                              : kvs.back());
  }
  result.reshard_timeline = ParseKvLines(result.log_paths[0], "EGERIA_RESHARD");
  result.ok = true;
  return result;
}

SpawnResult SpawnWorldWithRecovery(const SpawnOptions& options,
                                   const RecoverySpec& recovery) {
  SpawnResult last;
  double backoff_s = recovery.backoff_initial_s;
  for (int attempt = 0; attempt <= recovery.max_restarts; ++attempt) {
    SpawnOptions cur = options;
    cur.log_dir = options.log_dir + "/attempt_" + std::to_string(attempt);
    if (attempt > 0) {
      if (recovery.restart_world > 0) {
        cur.world = recovery.restart_world;
      } else if (recovery.shrink_world_on_restart) {
        // Each restart models one permanently lost machine: W-1 per attempt,
        // never below a singleton world.
        cur.world = std::max(1, options.world - attempt);
      }
      if (recovery.drop_per_rank_args_on_restart) {
        cur.per_rank_args.clear();
      }
    }
    last = SpawnWorld(cur);
    last.attempts = attempt + 1;
    if (last.ok) {
      return last;
    }
    if (attempt == recovery.max_restarts) {
      break;
    }
    std::string resume = "from scratch (no complete checkpoint yet)";
    if (!recovery.ckpt_dir.empty()) {
      if (const auto m = FindLatestCheckpoint(recovery.ckpt_dir)) {
        resume = "from " + m->dir + " (iter " + std::to_string(m->iter) + ")";
      }
    }
    EGERIA_LOG(kWarn) << "world attempt " << attempt + 1 << " failed (" << last.error
                      << "); restarting " << resume << " after "
                      << backoff_s << "s backoff";
    if (backoff_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    }
    backoff_s = std::min(recovery.backoff_max_s,
                         backoff_s * recovery.backoff_multiplier);
  }
  last.error = "world failed after " + std::to_string(recovery.max_restarts + 1) +
               " attempt(s); last error: " + last.error;
  return last;
}

}  // namespace egeria
