#include "src/distributed/dist_workload.h"

#include "src/core/module_partitioner.h"
#include "src/data/synthetic_image.h"
#include "src/models/resnet.h"
#include "src/optim/lr_scheduler.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace egeria {

namespace {

// Egeria controller settings every dist workload shares: deterministic
// (synchronous) controller, short eval cadence so small runs still freeze.
void PresetEgeria(DistTrainConfig& cfg) {
  cfg.enable_egeria = false;
  cfg.egeria.async_controller = false;
  cfg.egeria.eval_interval_n = 4;
  cfg.egeria.window_w = 3;
  cfg.egeria.tolerance_coef = 0.4;
  cfg.egeria.enable_cache = false;
  cfg.egeria.ref_update_evals = 2;
}

}  // namespace

DistWorkload MakeDistWorkload(const std::string& name) {
  DistWorkload w;
  w.name = name;
  if (name == "tiny") {
    w.make_model = []() -> std::unique_ptr<ChainModel> {
      Rng rng(41);
      CifarResNetConfig mcfg;
      mcfg.blocks_per_stage = 1;
      mcfg.base_width = 4;
      mcfg.num_classes = 4;
      return PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                                PartitionConfig{.target_modules = 3});
    };
    SyntheticImageConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.num_samples = 128;
    dcfg.height = 10;
    dcfg.width = 10;
    dcfg.noise_std = 0.4F;
    w.train = std::make_unique<SyntheticImageDataset>(dcfg);
    auto vcfg = dcfg;
    vcfg.sample_salt = 999999;
    vcfg.num_samples = 32;
    w.val = std::make_unique<SyntheticImageDataset>(vcfg);
    w.cfg.epochs = 20;
    w.cfg.batch_size = 8;
    w.cfg.task.kind = TaskKind::kClassification;
    w.cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
    PresetEgeria(w.cfg);
    return w;
  }
  if (name == "fig10") {
    w.make_model = []() -> std::unique_ptr<ChainModel> {
      Rng rng(83);
      CifarResNetConfig mcfg;
      mcfg.blocks_per_stage = 1;
      mcfg.base_width = 20;
      mcfg.num_classes = 4;
      return PartitionIntoChain("r", BuildCifarResNetBlocks(mcfg, rng),
                                PartitionConfig{.target_modules = 4});
    };
    SyntheticImageConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.num_samples = 256;
    dcfg.height = 12;
    dcfg.width = 12;
    dcfg.noise_std = 0.5F;
    w.train = std::make_unique<SyntheticImageDataset>(dcfg);
    auto vcfg = dcfg;
    vcfg.sample_salt = 1000000;
    vcfg.num_samples = 64;
    w.val = std::make_unique<SyntheticImageDataset>(vcfg);
    w.cfg.epochs = 12;
    w.cfg.batch_size = 8;
    w.cfg.task.kind = TaskKind::kClassification;
    w.cfg.lr_schedule = std::make_shared<ConstantLr>(0.05F);
    PresetEgeria(w.cfg);
    return w;
  }
  EGERIA_CHECK_MSG(false, "unknown dist workload: " + name);
  return w;  // Unreached.
}

}  // namespace egeria
