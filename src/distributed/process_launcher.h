// Fork/exec launcher for multi-process worlds: spawns one egeria_worker
// process per rank, wires them to a fresh rendezvous file, redirects each
// rank's output to a per-rank log, and supervises the world to completion.
//
// Failure handling is the point of this helper: a rank that exits nonzero
// fails the world FAST (the survivors are killed instead of blocking in their
// collectives until the transport deadline), and a rank that wedges trips the
// overall timeout, after which everything is killed and a clean, attributable
// error string comes back — the launcher never hangs.
#ifndef EGERIA_SRC_DISTRIBUTED_PROCESS_LAUNCHER_H_
#define EGERIA_SRC_DISTRIBUTED_PROCESS_LAUNCHER_H_

#include <map>
#include <string>
#include <vector>

namespace egeria {

struct SpawnOptions {
  std::string worker_binary;
  int world = 2;
  // Appended to every rank's command line after the launcher-owned
  // --rank/--world/--rendezvous flags.
  std::vector<std::string> common_args;
  // Optional per-rank extras (fault injection in tests); may be shorter than
  // `world`.
  std::vector<std::vector<std::string>> per_rank_args;
  // Directory for rank_<r>.log files and the rendezvous file; created if
  // missing. Must be unique per spawn (parallel jobs must not share it).
  std::string log_dir;
  double timeout_s = 300.0;
};

struct SpawnResult {
  bool ok = false;
  bool timed_out = false;
  std::string error;               // empty iff ok
  std::vector<int> exit_codes;     // per rank; -1 = killed before exiting
  std::vector<std::string> log_paths;
  // key=value pairs parsed from each rank's "EGERIA_RESULT ..." log line.
  std::vector<std::map<std::string, std::string>> rank_results;
  // One map per "EGERIA_RESHARD ..." line in rank 0's log, in order.
  std::vector<std::map<std::string, std::string>> reshard_timeline;
  // Worlds launched in total (1 = no restart was needed). Only
  // SpawnWorldWithRecovery ever reports more than 1.
  int attempts = 1;
  // World size of the attempt this result describes (elastic restarts may
  // shrink it below SpawnOptions::world).
  int final_world = 0;
};

// Blocks until every rank exits, a rank fails, or the timeout expires.
SpawnResult SpawnWorld(const SpawnOptions& options);

// Fault-tolerant supervision on top of SpawnWorld. A crashed or wedged world
// is killed (SpawnWorld's fail-fast/timeout semantics) and relaunched up to
// `max_restarts` times; workers launched with --ckpt-dir pointing at
// `ckpt_dir` resume from the latest complete checkpoint on their own, so a
// restart continues the run rather than repeating it (with no checkpoint yet,
// the restart deterministically recomputes from scratch — same final state).
struct RecoverySpec {
  int max_restarts = 2;
  // Checkpoint root the workers write/resume from; used by the launcher only
  // to report the resume point. Pass it to the workers via --ckpt-dir in
  // SpawnOptions::common_args.
  std::string ckpt_dir;
  // Elastic restart: world size for relaunched attempts (0 = keep
  // options.world). The workers re-fold the saved optimizer shards through
  // the reduction-contract partition at the new size.
  int restart_world = 0;
  // Alternative elastic policy: each restart drops one rank (floor 1),
  // modeling a world that permanently lost a machine. Ignored when
  // restart_world > 0 pins the restart size explicitly.
  bool shrink_world_on_restart = false;
  // Per-rank extras (fault injection in tests) are one-shot: restarts drop
  // them so an injected crash cannot re-fire forever.
  bool drop_per_rank_args_on_restart = true;
  // Exponential backoff between attempts (sleep before each relaunch):
  // initial * multiplier^(attempt-1), capped at max. Keeps a crash-looping
  // world from hammering the machine while still restarting promptly.
  double backoff_initial_s = 0.5;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 30.0;
};

// Each attempt runs in <options.log_dir>/attempt_<n>. Returns the final
// attempt's result with `attempts` filled in.
SpawnResult SpawnWorldWithRecovery(const SpawnOptions& options,
                                   const RecoverySpec& recovery);

}  // namespace egeria

#endif  // EGERIA_SRC_DISTRIBUTED_PROCESS_LAUNCHER_H_
