// Per-rank embedded HTTP exporter: a tiny single-threaded HTTP/1.0 server on
// an ephemeral 127.0.0.1 port that makes a live rank scrapeable:
//
//   GET /metrics  Prometheus text format (0.0.4): every registry counter and
//                 gauge, plus each histogram as cumulative _bucket/_sum/_count
//                 series with derived p50/p90/p99 gauges.
//   GET /healthz  JSON liveness: rank, uptime, last iteration seen and how
//                 long ago; 503 once iterations have started and then stall
//                 past the staleness threshold.
//   GET /trace    Bounded span snapshot as Chrome trace JSON (non-clearing;
//                 append ?drain=1 to also clear the buffers, like SIGUSR2).
//
// The server runs on its own background thread and only READS the obs layer —
// it never touches the transport or emits collectives, so scraping a training
// run cannot perturb its op counts or its bitwise result (check.sh pins the
// training hash of a scraped run against an unscraped twin).
//
// The port is ephemeral (bind to port 0) and published via the same
// tmp+rename rendezvous-file pattern tcp_transport.cc uses, so scripts can
// poll `<trace_dir>/obs_port_rank<r>` instead of racing the bind. The socket
// accept/read/write paths reuse the transport's deadline idioms: poll with a
// short timeout re-checking a stop flag, bounded send/recv loops.
#ifndef EGERIA_SRC_OBS_EXPORTER_H_
#define EGERIA_SRC_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace egeria {
namespace obs {

struct ExporterOptions {
  int rank = 0;
  // When non-empty, the bound port is written here (tmp+rename, so readers
  // never observe a partial write).
  std::string port_file;
  // /healthz turns 503 when iterations have started and the most recent one
  // is older than this many seconds. <= 0 disables staleness checking.
  double stale_after_s = 30.0;
};

class Exporter {
 public:
  // Binds 127.0.0.1:0, publishes the port file, and starts the serve thread.
  // Returns nullptr if the socket could not be bound (exporter is optional
  // telemetry — callers log and continue).
  static std::unique_ptr<Exporter> Start(const ExporterOptions& options);

  ~Exporter();  // Stop() + join

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  int Port() const { return port_; }

  // Record training progress for /healthz. Lock-free; called once per
  // iteration from the trainer's iteration hook.
  void NoteIteration(int64_t iteration);

  // Idempotent shutdown: flips the stop flag and joins the serve thread.
  void Stop();

  // Rendered /metrics body, exposed for unit tests (no HTTP needed).
  static std::string RenderPrometheusText();

 private:
  Exporter() = default;
  void ServeLoop();
  std::string HandleRequest(const std::string& path, int* http_status);

  int listen_fd_ = -1;
  int port_ = 0;
  ExporterOptions options_;
  std::thread server_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> last_iteration_{-1};
  std::atomic<int64_t> last_iteration_ns_{0};
  int64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace egeria

#endif  // EGERIA_SRC_OBS_EXPORTER_H_
