// ScopedPhase: one measured interval feeding (a) a bespoke seconds
// accumulator (the TrainResult-style fields), (b) a registry histogram, and
// (c) a trace span — all from the same two clock reads. Using it for every
// trainer/dist-trainer phase is what makes the tools/egeria_trace
// reconciliation hold by construction: the trace spans, the metrics
// registry, and the printed seconds fields cannot drift apart because they
// are literally the same measurement.
#ifndef EGERIA_SRC_OBS_PHASE_H_
#define EGERIA_SRC_OBS_PHASE_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace egeria {
namespace obs {

class ScopedPhase {
 public:
  // Any of the three sinks may be null/skipped. `cat`/`name` must be string
  // literals (trace requirement); the trace span is only emitted when tracing
  // was enabled at construction.
  ScopedPhase(const char* cat, const char* name, Histogram* hist,
              double* accum_seconds = nullptr)
      : hist_(hist),
        accum_(accum_seconds),
        cat_(cat),
        name_(name),
        trace_on_(trace::Enabled()),
        start_ns_(trace::NowNs()) {}

  ~ScopedPhase() { Stop(); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  // Ends the interval early (idempotent); the destructor becomes a no-op.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    int64_t dur_ns = trace::NowNs() - start_ns_;
    double seconds = static_cast<double>(dur_ns) * 1e-9;
    if (hist_ != nullptr) hist_->Observe(seconds);
    if (accum_ != nullptr) *accum_ += seconds;
    if (trace_on_) trace::AddComplete(cat_, name_, start_ns_, dur_ns);
  }

 private:
  Histogram* hist_;
  double* accum_;
  const char* cat_;
  const char* name_;
  bool trace_on_;
  bool stopped_ = false;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace egeria

#endif  // EGERIA_SRC_OBS_PHASE_H_
