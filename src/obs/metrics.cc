#include "src/obs/metrics.h"

#include <csignal>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/obs/trace.h"

namespace egeria {
namespace obs {
namespace {

struct Registry {
  std::mutex mu;
  // std::map keeps snapshots sorted by name; unique_ptr keeps references
  // stable across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

volatile std::sig_atomic_t g_dump_requested = 0;
volatile std::sig_atomic_t g_trace_flush_requested = 0;

void DumpSignalHandler(int) { g_dump_requested = 1; }
void TraceFlushSignalHandler(int) { g_trace_flush_requested = 1; }

void FormatSeconds(char* buf, size_t cap, double s) {
  std::snprintf(buf, cap, "%.6f", s);
}

}  // namespace

void Histogram::Observe(double seconds) {
  int idx = BucketIndex(seconds);
  buckets_[idx + 1].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double ns = seconds * 1e9;
  int64_t add = 0;
  if (ns > 0) {
    add = ns >= static_cast<double>(std::numeric_limits<int64_t>::max())
              ? std::numeric_limits<int64_t>::max()
              : static_cast<int64_t>(ns);
  }
  if (add != 0) sum_ns_.fetch_add(add, std::memory_order_relaxed);
}

int64_t Histogram::BucketCount(int index) const {
  if (index < -1 || index > kNumBuckets) return 0;
  return buckets_[index + 1].load(std::memory_order_relaxed);
}

double Histogram::BucketUpperEdge(int index) {
  if (index < 0) return kFirstEdge;
  if (index >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return kFirstEdge * static_cast<double>(int64_t{1} << (index + 1));
}

int Histogram::BucketIndex(double seconds) {
  if (!(seconds >= kFirstEdge)) return -1;  // NaN/negative/zero → underflow
  // floor(log2(seconds / 1µs)); exact powers of two land in the bucket whose
  // lower edge they are.
  int idx = std::ilogb(seconds / kFirstEdge);
  if (idx >= kNumBuckets) return kNumBuckets;
  return idx;
}

double Histogram::Quantile(double q) const {
  if (!(q >= 0.0)) q = 0.0;  // NaN → 0
  if (q > 1.0) q = 1.0;
  const int64_t count = Count();
  if (count <= 0) return 0.0;
  // The q-quantile is the value at (fractional) position q·count in the
  // sorted sample; walk the cumulative counts to the bucket containing it and
  // interpolate linearly between the bucket's edges.
  const double target = q * static_cast<double>(count);
  int64_t cum = 0;
  for (int i = -1; i <= kNumBuckets; ++i) {
    const int64_t c = BucketCount(i);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      if (i >= kNumBuckets) {
        // Overflow bucket has no finite upper edge; saturate at the last
        // finite edge rather than inventing a value beyond the scale.
        return BucketUpperEdge(kNumBuckets - 1);
      }
      const double lo = (i < 0) ? 0.0 : kFirstEdge * std::ldexp(1.0, i);
      const double hi = BucketUpperEdge(i);
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac));
    }
    cum += c;
  }
  return BucketUpperEdge(kNumBuckets - 1);  // racing observes drained us dry
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

Counter& GetCounter(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.counters[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& GetGauge(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.gauges[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& GetHistogram(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto& slot = reg.histograms[name];
  if (!slot) slot.reset(new Histogram());
  return *slot;
}

int64_t CounterValue(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.counters.find(name);
  return it == reg.counters.end() ? 0 : it->second->Get();
}

double HistogramSum(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.histograms.find(name);
  return it == reg.histograms.end() ? 0.0 : it->second->Sum();
}

int64_t HistogramCount(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.histograms.find(name);
  return it == reg.histograms.end() ? 0 : it->second->Count();
}

std::string SnapshotText() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::ostringstream out;
  char num[64];
  for (const auto& kv : reg.counters) {
    out << "counter " << kv.first << " = " << kv.second->Get() << "\n";
  }
  for (const auto& kv : reg.gauges) {
    FormatSeconds(num, sizeof(num), kv.second->Get());
    out << "gauge " << kv.first << " = " << num << "\n";
  }
  for (const auto& kv : reg.histograms) {
    const Histogram& h = *kv.second;
    int64_t count = h.Count();
    FormatSeconds(num, sizeof(num), h.Sum());
    out << "histogram " << kv.first << " count=" << count << " sum_s=" << num;
    if (count > 0) {
      FormatSeconds(num, sizeof(num), h.Sum() / static_cast<double>(count));
      out << " mean_s=" << num;
      FormatSeconds(num, sizeof(num), h.Quantile(0.50));
      out << " p50_s=" << num;
      FormatSeconds(num, sizeof(num), h.Quantile(0.90));
      out << " p90_s=" << num;
      FormatSeconds(num, sizeof(num), h.Quantile(0.99));
      out << " p99_s=" << num;
      out << " buckets:";
      for (int i = -1; i <= Histogram::kNumBuckets; ++i) {
        int64_t c = h.BucketCount(i);
        if (c == 0) continue;
        double edge = Histogram::BucketUpperEdge(i);
        if (i >= Histogram::kNumBuckets) {
          std::snprintf(num, sizeof(num), " le_inf=%lld",
                        static_cast<long long>(c));
        } else {
          std::snprintf(num, sizeof(num), " le_%.6g=%lld", edge,
                        static_cast<long long>(c));
        }
        out << num;
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string SnapshotJson() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::ostringstream out;
  char num[64];
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& kv : reg.counters) {
    out << (first ? "" : ",") << "\"" << kv.first
        << "\":" << kv.second->Get();
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& kv : reg.gauges) {
    FormatSeconds(num, sizeof(num), kv.second->Get());
    out << (first ? "" : ",") << "\"" << kv.first << "\":" << num;
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& kv : reg.histograms) {
    const Histogram& h = *kv.second;
    FormatSeconds(num, sizeof(num), h.Sum());
    out << (first ? "" : ",") << "\"" << kv.first
        << "\":{\"count\":" << h.Count() << ",\"sum_s\":" << num;
    FormatSeconds(num, sizeof(num), h.Quantile(0.50));
    out << ",\"p50_s\":" << num;
    FormatSeconds(num, sizeof(num), h.Quantile(0.90));
    out << ",\"p90_s\":" << num;
    FormatSeconds(num, sizeof(num), h.Quantile(0.99));
    out << ",\"p99_s\":" << num;
    out << ",\"buckets\":[";
    bool bfirst = true;
    for (int i = -1; i <= Histogram::kNumBuckets; ++i) {
      int64_t c = h.BucketCount(i);
      if (c == 0) continue;
      double edge = Histogram::BucketUpperEdge(i);
      if (i >= Histogram::kNumBuckets) {
        std::snprintf(num, sizeof(num), "[\"inf\",%lld]",
                      static_cast<long long>(c));
      } else {
        std::snprintf(num, sizeof(num), "[%.6g,%lld]", edge,
                      static_cast<long long>(c));
      }
      out << (bfirst ? "" : ",") << num;
      bfirst = false;
    }
    out << "]}";
    first = false;
  }
  out << "}}";
  return out.str();
}

MetricsSnapshot SnapshotAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  MetricsSnapshot snap;
  snap.counters.reserve(reg.counters.size());
  for (const auto& kv : reg.counters) {
    snap.counters.emplace_back(kv.first, kv.second->Get());
  }
  snap.gauges.reserve(reg.gauges.size());
  for (const auto& kv : reg.gauges) {
    snap.gauges.emplace_back(kv.first, kv.second->Get());
  }
  snap.histograms.reserve(reg.histograms.size());
  for (const auto& kv : reg.histograms) {
    const Histogram& h = *kv.second;
    HistogramSnapshot hs;
    hs.name = kv.first;
    hs.count = h.Count();
    hs.sum_s = h.Sum();
    hs.p50_s = h.Quantile(0.50);
    hs.p90_s = h.Quantile(0.90);
    hs.p99_s = h.Quantile(0.99);
    for (int i = -1; i <= Histogram::kNumBuckets; ++i) {
      const int64_t c = h.BucketCount(i);
      if (c == 0) continue;
      hs.buckets.emplace_back(Histogram::BucketUpperEdge(i), c);
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void ResetAllForTest() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& kv : reg.counters) kv.second->Reset();
  for (auto& kv : reg.gauges) kv.second->Set(0.0);
  for (auto& kv : reg.histograms) kv.second->Reset();
}

void InstallDumpSignalHandler() {
#ifdef SIGUSR1
  std::signal(SIGUSR1, DumpSignalHandler);
#endif
#ifdef SIGUSR2
  std::signal(SIGUSR2, TraceFlushSignalHandler);
#endif
}

bool DumpRequested() {
  if (g_dump_requested == 0) return false;
  g_dump_requested = 0;
  return true;
}

bool TraceFlushRequested() {
  if (g_trace_flush_requested == 0) return false;
  g_trace_flush_requested = 0;
  return true;
}

void MaybeDumpOnSignal(const char* where) {
  if (DumpRequested()) {
    std::string snapshot = SnapshotText();
    std::fprintf(stderr,
                 "=== EGERIA METRICS (SIGUSR1, %s) ===\n%s=== end ===\n",
                 where, snapshot.c_str());
    std::fflush(stderr);
  }
  if (TraceFlushRequested()) {
    // SIGUSR2 = SIGUSR1 + flush (and clear) the trace ring, so a live run's
    // timeline so far can be pulled without stopping it.
    std::string snapshot = SnapshotText();
    const char* dir = std::getenv("EGERIA_TRACE_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    path += "/trace_rank" + std::to_string(trace::ProcessRank()) +
            ".sigusr2.json";
    const bool ok = trace::Flush(path);
    std::fprintf(stderr,
                 "=== EGERIA METRICS (SIGUSR2, %s) ===\n%strace_flush=%s %s\n"
                 "=== end ===\n",
                 where, snapshot.c_str(), ok ? "ok" : "FAILED", path.c_str());
    std::fflush(stderr);
  }
}

}  // namespace obs
}  // namespace egeria
