// Process-wide metrics registry: counters, gauges, and histograms with fixed
// log-scale (power-of-two) buckets, plus structured text/JSON snapshots dumped
// at end-of-run and on SIGUSR1.
//
// All instruments are lock-free on the update path (plain atomics; the
// histogram sum is integer nanoseconds so fetch_add works and totals are
// deterministic under concurrency). The registry itself takes a mutex only on
// name lookup — callers cache the returned reference, which is stable for the
// life of the process (instruments are never erased).
//
// Naming convention: "<subsystem>.<what>[_unit]", e.g. "trainer.fp_s",
// "gemm.calls", "cache.hits". Histograms observing durations use the "_s"
// suffix and observe seconds; Histogram::Sum() is then the total seconds
// spent in that phase, which is what tools/egeria_trace reconciles against
// the per-phase trace spans and TrainResult fields.
#ifndef EGERIA_SRC_OBS_METRICS_H_
#define EGERIA_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace egeria {
namespace obs {

class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Get() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed log-scale histogram for durations (seconds). Bucket i (0-based)
// covers [1µs·2^i, 1µs·2^(i+1)); 28 buckets span 1µs .. ~134s, with explicit
// underflow (< 1µs, including zero/negative) and overflow buckets. The sum is
// accumulated in integer nanoseconds so concurrent observes produce a
// deterministic total.
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;
  static constexpr double kFirstEdge = 1e-6;  // lower edge of bucket 0

  void Observe(double seconds);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  // Total observed seconds (from the nanosecond accumulator).
  double Sum() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  // index -1 = underflow, 0..kNumBuckets-1 = log buckets,
  // kNumBuckets = overflow.
  int64_t BucketCount(int index) const;
  // Upper edge of bucket `index` in seconds (underflow edge = kFirstEdge;
  // overflow edge = +inf).
  static double BucketUpperEdge(int index);
  // Bucket a value would land in (same index convention). Exposed for tests.
  static int BucketIndex(double seconds);

  // Estimated q-quantile (q in [0,1], clamped) by linear interpolation inside
  // the log bucket holding the q·count-th observation. Conventions:
  // count == 0 → 0.0; mass in the underflow bucket interpolates over
  // [0, kFirstEdge]; a quantile landing in the overflow bucket returns the
  // last finite edge (the estimate saturates rather than inventing a value).
  // Concurrent observes make the result approximate, never crashing.
  double Quantile(double q) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets + 2] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
};

// Named instrument lookup. Thread-safe; returned references are stable for
// the process lifetime. Counter/gauge/histogram namespaces are independent,
// but reusing one name across kinds is confusing — don't.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

// Current value of a named instrument without creating it (0 if absent).
// Used for the delta pattern: snapshot a histogram's sum before a run, read
// it again after, attribute the difference to that run.
int64_t CounterValue(const std::string& name);
double HistogramSum(const std::string& name);
int64_t HistogramCount(const std::string& name);

// Human-readable snapshot: one instrument per line, sorted by name.
// Histograms print count/total/mean/p50/p90/p99 plus the non-empty buckets.
std::string SnapshotText();
// Machine-readable snapshot: {"counters":{...},"gauges":{...},
// "histograms":{"name":{"count":N,"sum_s":S,"p50_s":…,"p90_s":…,"p99_s":…,
// "buckets":[[edge,count],...]}}}.
std::string SnapshotJson();

// Structured enumeration of every instrument for renderers that need more
// than a preformatted string (the Prometheus exporter). Values are read under
// the registry lock but each instrument is sampled independently, so a
// snapshot taken mid-run is approximate in the same way SnapshotText is.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  // (upper_edge_seconds, count) for every non-empty bucket, ascending;
  // +inf edge for the overflow bucket.
  std::vector<std::pair<double, int64_t>> buckets;
};
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};
MetricsSnapshot SnapshotAll();

// Zeroes every registered instrument. Tests only.
void ResetAllForTest();

// ------------------------------------------------- SIGUSR1/SIGUSR2 snapshot
// Signal handling is poll-based to stay async-signal-safe: the handlers only
// set flags; long-running loops call MaybeDumpOnSignal() once per iteration.
// SIGUSR1 dumps SnapshotText() to stderr. SIGUSR2 does the same AND flushes
// the trace ring to $EGERIA_TRACE_DIR/trace_rank<r>.sigusr2.json (clearing
// the buffers), so a live run's timeline can be captured without stopping it.
void InstallDumpSignalHandler();  // idempotent; installs both handlers
bool DumpRequested();             // test-and-clear the SIGUSR1 pending flag
bool TraceFlushRequested();       // test-and-clear the SIGUSR2 pending flag
void MaybeDumpOnSignal(const char* where);

}  // namespace obs
}  // namespace egeria

#endif  // EGERIA_SRC_OBS_METRICS_H_
