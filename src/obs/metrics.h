// Process-wide metrics registry: counters, gauges, and histograms with fixed
// log-scale (power-of-two) buckets, plus structured text/JSON snapshots dumped
// at end-of-run and on SIGUSR1.
//
// All instruments are lock-free on the update path (plain atomics; the
// histogram sum is integer nanoseconds so fetch_add works and totals are
// deterministic under concurrency). The registry itself takes a mutex only on
// name lookup — callers cache the returned reference, which is stable for the
// life of the process (instruments are never erased).
//
// Naming convention: "<subsystem>.<what>[_unit]", e.g. "trainer.fp_s",
// "gemm.calls", "cache.hits". Histograms observing durations use the "_s"
// suffix and observe seconds; Histogram::Sum() is then the total seconds
// spent in that phase, which is what tools/egeria_trace reconciles against
// the per-phase trace spans and TrainResult fields.
#ifndef EGERIA_SRC_OBS_METRICS_H_
#define EGERIA_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace egeria {
namespace obs {

class Counter {
 public:
  void Add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Get() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed log-scale histogram for durations (seconds). Bucket i (0-based)
// covers [1µs·2^i, 1µs·2^(i+1)); 28 buckets span 1µs .. ~134s, with explicit
// underflow (< 1µs, including zero/negative) and overflow buckets. The sum is
// accumulated in integer nanoseconds so concurrent observes produce a
// deterministic total.
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;
  static constexpr double kFirstEdge = 1e-6;  // lower edge of bucket 0

  void Observe(double seconds);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  // Total observed seconds (from the nanosecond accumulator).
  double Sum() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  // index -1 = underflow, 0..kNumBuckets-1 = log buckets,
  // kNumBuckets = overflow.
  int64_t BucketCount(int index) const;
  // Upper edge of bucket `index` in seconds (underflow edge = kFirstEdge;
  // overflow edge = +inf).
  static double BucketUpperEdge(int index);
  // Bucket a value would land in (same index convention). Exposed for tests.
  static int BucketIndex(double seconds);

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets + 2] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
};

// Named instrument lookup. Thread-safe; returned references are stable for
// the process lifetime. Counter/gauge/histogram namespaces are independent,
// but reusing one name across kinds is confusing — don't.
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name);

// Current value of a named instrument without creating it (0 if absent).
// Used for the delta pattern: snapshot a histogram's sum before a run, read
// it again after, attribute the difference to that run.
int64_t CounterValue(const std::string& name);
double HistogramSum(const std::string& name);
int64_t HistogramCount(const std::string& name);

// Human-readable snapshot: one instrument per line, sorted by name.
// Histograms print count/total/mean plus the non-empty buckets.
std::string SnapshotText();
// Machine-readable snapshot: {"counters":{...},"gauges":{...},
// "histograms":{"name":{"count":N,"sum_s":S,"buckets":[[edge,count],...]}}}.
std::string SnapshotJson();

// Zeroes every registered instrument. Tests only.
void ResetAllForTest();

// --------------------------------------------------------- SIGUSR1 snapshot
// Signal handling is poll-based to stay async-signal-safe: the handler only
// sets a flag; long-running loops call MaybeDumpOnSignal() once per
// iteration, which dumps SnapshotText() to stderr when the flag is set.
void InstallDumpSignalHandler();  // idempotent; installs SIGUSR1 handler
bool DumpRequested();             // test-and-clear the pending-dump flag
void MaybeDumpOnSignal(const char* where);

}  // namespace obs
}  // namespace egeria

#endif  // EGERIA_SRC_OBS_METRICS_H_
