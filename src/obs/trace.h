// Lock-light span tracer emitting Chrome trace-event / Perfetto-compatible
// JSON (see src/obs/README.md for the event taxonomy and how to view traces).
//
// Design constraints, in order:
//  1. Near-zero cost when disabled at runtime: every emit path starts with a
//     single relaxed atomic load (`Enabled()`); the EGERIA_TRACE_SCOPE macro
//     compiles to that load plus two register writes when tracing is off.
//  2. Thread-safe without a global hot lock: events land in a per-thread
//     buffer guarded by a per-buffer mutex. The mutex is uncontended on the
//     emit path (only Flush/Reset ever touch another thread's buffer), so
//     emits cost one uncontended lock — and, unlike a racy lock-free ring,
//     the scheme is trivially TSan-clean.
//  3. Bounded memory: each thread buffers at most kMaxEventsPerThread events;
//     overflow drops the event and counts the drop (reported in the flushed
//     file's otherData.dropped_events so a truncated trace is never mistaken
//     for a complete one).
//
// Category and name strings MUST be string literals (or otherwise outlive the
// final Flush): events store the pointers, not copies. Args are a small
// preformatted JSON object copied inline into the event.
//
// Cross-rank alignment: each rank calls MarkSync() immediately after a
// transport barrier; the steady-clock stamp is written to the trace file's
// otherData.clock_sync_us and tools/egeria_trace shifts each rank's events by
// (sync_rank0 - sync_rank_r) when merging, so one wall-aligned timeline comes
// out of per-process steady clocks.
#ifndef EGERIA_SRC_OBS_TRACE_H_
#define EGERIA_SRC_OBS_TRACE_H_

#include <cstdarg>
#include <cstdint>
#include <string>

namespace egeria {
namespace trace {

// ---------------------------------------------------------------- lifecycle

// True when tracing is on. Single relaxed atomic load; safe to call from any
// thread at any time.
bool Enabled();

// Turns tracing on/off at runtime. Spans opened while enabled still emit
// after a disable (their events are simply dropped by the buffer check);
// spans opened while disabled never emit.
void SetEnabled(bool on);

// Enables tracing iff EGERIA_TRACE is set to a truthy value ("1", "true",
// "on", "yes"; case-insensitive). Idempotent.
void InitFromEnv();

// ------------------------------------------------------------------ metadata

// The rank becomes the `pid` of every event this process emits, which is what
// groups one rank's tracks together after tools/egeria_trace merges per-rank
// files. Default 0. Set once, before threads start emitting.
void SetProcessRank(int rank);
int ProcessRank();

// Human-readable process label ("egeria_worker rank 1"); shows up as the
// process_name metadata row in Perfetto.
void SetProcessLabel(const std::string& label);

// Names the calling thread's track ("main", "comm", "ckpt_writer",
// "cache_prefetch"). First call wins; safe to call with tracing disabled.
void SetThreadName(const char* name);

// Records the current steady-clock time as this process's clock-sync point.
// Call immediately after a cross-rank barrier so every rank stamps the same
// global instant; the merge tool aligns timelines on these stamps.
void MarkSync();

// ------------------------------------------------------------------ emission

// Monotonic nanoseconds on the tracer's own clock (steady_clock relative to a
// process-start anchor). Usable even when tracing is disabled.
int64_t NowNs();

// Complete event ("ph":"X"): a span with explicit start and duration.
// `args_json`, when non-null, must be a complete JSON object ("{...}").
void AddComplete(const char* cat, const char* name, int64_t start_ns,
                 int64_t dur_ns, const char* args_json = nullptr);

// Same, but marked low priority: once a thread's buffer passes ~7/8 capacity
// these are dropped (and counted) while normal events keep landing. Use for
// high-volume detail (per-GEMM spans) so it can never crowd out the coarse
// phase spans that tools/egeria_trace reconciles against TrainResult.
void AddCompleteLowPrio(const char* cat, const char* name, int64_t start_ns,
                        int64_t dur_ns, const char* args_json = nullptr);

// Instant event ("ph":"i", thread-scoped) at the current time.
void AddInstant(const char* cat, const char* name,
                const char* args_json = nullptr);

// printf-style instant: formats the args JSON only when tracing is enabled.
// `fmt` must produce a complete JSON object.
void AddInstantF(const char* cat, const char* name, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

// ---------------------------------------------------------------- extraction

// Serializes every thread's buffered events (plus process/thread metadata and
// the clock-sync stamp) as Chrome trace-event JSON at `path`, then clears the
// buffers. One event per line — tools/egeria_trace relies on that. Returns
// false on I/O failure. Safe to call with tracing disabled (flushes whatever
// was buffered while it was enabled).
bool Flush(const std::string& path);

// Same serialization to a string (tests, in-memory inspection).
std::string FlushToString();

// Same serialization WITHOUT clearing the buffers: a read-only snapshot for
// live inspection (the /trace exporter endpoint scrapes this while the run
// keeps appending). Events emitted concurrently may or may not be included.
std::string SnapshotToString();

// Drops all buffered events and zeroes drop counters. Tests only.
void ResetForTest();

// Total events dropped to per-thread buffer overflow since the last flush.
uint64_t DroppedEvents();

// Number of events currently buffered across all threads (tests).
size_t BufferedEventCount();

// --------------------------------------------------------------------- spans

// RAII span: records the start time if tracing is enabled at construction and
// emits a complete event at destruction. SetArgs attaches a formatted JSON
// object (no-op when the span is inactive, so callers can format args
// unconditionally without paying when tracing is off — but prefer guarding
// expensive formatting with `active()`).
class Span {
 public:
  Span(const char* cat, const char* name) {
    if (Enabled()) {
      cat_ = cat;
      name_ = name;
      start_ns_ = NowNs();
    }
  }
  ~Span() {
    if (cat_ != nullptr) {
      AddComplete(cat_, name_, start_ns_, NowNs() - start_ns_,
                  args_[0] != '\0' ? args_ : nullptr);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return cat_ != nullptr; }
  // `fmt` must produce a complete JSON object; truncated to the inline cap.
  void SetArgs(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  char args_[96] = {0};
};

#define EGERIA_TRACE_CONCAT_INNER(a, b) a##b
#define EGERIA_TRACE_CONCAT(a, b) EGERIA_TRACE_CONCAT_INNER(a, b)

// Usage: EGERIA_TRACE_SCOPE("trainer", "fp");
#define EGERIA_TRACE_SCOPE(cat, name) \
  ::egeria::trace::Span EGERIA_TRACE_CONCAT(egeria_trace_span_, __LINE__)( \
      cat, name)

}  // namespace trace
}  // namespace egeria

#endif  // EGERIA_SRC_OBS_TRACE_H_
