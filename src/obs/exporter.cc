#include "src/obs/exporter.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace egeria {
namespace obs {
namespace {

// Accept loop wakes at this cadence to re-check the stop flag — the same
// bounded-poll idiom the transport uses for abort responsiveness.
constexpr int kAcceptPollMs = 200;
// Per-connection I/O deadline. A scraper that stalls longer is dropped.
constexpr int kIoTimeoutMs = 2000;
constexpr size_t kMaxRequestBytes = 8192;

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names use
// dots ("dist.fp_s"); map every non-conforming byte to '_' and prefix the
// exporter namespace.
std::string PromName(const std::string& name) {
  std::string out = "egeria_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// Bounded full-buffer send: poll for writability and retry until done or the
// deadline passes (mirrors the transport's SendAll deadline idiom).
bool SendAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  int waited_ms = 0;
  while (done < len) {
    const ssize_t rc = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      if (waited_ms >= kIoTimeoutMs) return false;
      struct pollfd p = {fd, POLLOUT, 0};
      ::poll(&p, 1, 50);
      waited_ms += 50;
      continue;
    }
    return false;
  }
  return true;
}

// tmp+rename publish so a polling reader never sees a partial port number —
// the rendezvous-file pattern from tcp_transport.cc.
bool WritePortFile(const std::string& path, int port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << port << "\n";
    out.flush();
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

std::unique_ptr<Exporter> Exporter::Start(const ExporterOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(fd);
    return nullptr;
  }

  std::unique_ptr<Exporter> e(new Exporter());
  e->listen_fd_ = fd;
  e->port_ = static_cast<int>(ntohs(addr.sin_port));
  e->options_ = options;
  e->start_ns_ = trace::NowNs();
  if (!options.port_file.empty() &&
      !WritePortFile(options.port_file, e->port_)) {
    ::close(fd);
    return nullptr;
  }
  e->server_ = std::thread(&Exporter::ServeLoop, e.get());
  return e;
}

Exporter::~Exporter() { Stop(); }

void Exporter::NoteIteration(int64_t iteration) {
  last_iteration_.store(iteration, std::memory_order_relaxed);
  last_iteration_ns_.store(trace::NowNs(), std::memory_order_relaxed);
}

void Exporter::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) {
    if (server_.joinable()) server_.join();
    return;
  }
  if (server_.joinable()) server_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::string Exporter::RenderPrometheusText() {
  const MetricsSnapshot snap = SnapshotAll();
  std::string out;
  out.reserve(4096);
  for (const auto& kv : snap.counters) {
    const std::string n = PromName(kv.first);
    out.append("# TYPE ").append(n).append(" counter\n");
    out.append(n).append(" ").append(std::to_string(kv.second)).push_back('\n');
  }
  for (const auto& kv : snap.gauges) {
    const std::string n = PromName(kv.first);
    out.append("# TYPE ").append(n).append(" gauge\n");
    out.append(n).append(" ");
    AppendDouble(&out, kv.second);
    out.push_back('\n');
  }
  for (const auto& h : snap.histograms) {
    const std::string n = PromName(h.name);
    out.append("# TYPE ").append(n).append(" histogram\n");
    int64_t cum = 0;
    for (const auto& bucket : h.buckets) {
      cum += bucket.second;
      if (std::isinf(bucket.first)) continue;  // folded into +Inf below
      out.append(n).append("_bucket{le=\"");
      AppendDouble(&out, bucket.first);
      out.append("\"} ").append(std::to_string(cum)).push_back('\n');
    }
    out.append(n).append("_bucket{le=\"+Inf\"} ")
        .append(std::to_string(h.count))
        .push_back('\n');
    out.append(n).append("_sum ");
    AppendDouble(&out, h.sum_s);
    out.push_back('\n');
    out.append(n).append("_count ").append(std::to_string(h.count)).push_back(
        '\n');
    // Derived quantiles as plain gauges (Prometheus histograms carry no
    // native quantile series; these come from the log-bucket interpolation).
    const struct {
      const char* suffix;
      double value;
    } qs[] = {{"_p50", h.p50_s}, {"_p90", h.p90_s}, {"_p99", h.p99_s}};
    for (const auto& q : qs) {
      const std::string qn = n + q.suffix;
      out.append("# TYPE ").append(qn).append(" gauge\n");
      out.append(qn).append(" ");
      AppendDouble(&out, q.value);
      out.push_back('\n');
    }
  }
  return out;
}

std::string Exporter::HandleRequest(const std::string& path,
                                    int* http_status) {
  *http_status = 200;
  if (path == "/metrics") {
    return RenderPrometheusText();
  }
  if (path == "/healthz") {
    const int64_t now_ns = trace::NowNs();
    const int64_t iter = last_iteration_.load(std::memory_order_relaxed);
    const double uptime_s =
        static_cast<double>(now_ns - start_ns_) * 1e-9;
    double since_s = -1.0;
    if (iter >= 0) {
      since_s = static_cast<double>(
                    now_ns - last_iteration_ns_.load(std::memory_order_relaxed)) *
                1e-9;
      if (options_.stale_after_s > 0.0 && since_s > options_.stale_after_s) {
        *http_status = 503;
      }
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"rank\":%d,\"status\":\"%s\",\"uptime_s\":%.3f,"
                  "\"last_iteration\":%lld,"
                  "\"seconds_since_last_iteration\":%.3f}\n",
                  options_.rank, *http_status == 200 ? "ok" : "stale",
                  uptime_s, static_cast<long long>(iter), since_s);
    return buf;
  }
  if (path == "/trace" || path.rfind("/trace?", 0) == 0) {
    const bool drain = path.find("drain=1") != std::string::npos;
    return drain ? trace::FlushToString() : trace::SnapshotToString();
  }
  *http_status = 404;
  return "not found\n";
}

void Exporter::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd p = {listen_fd_, POLLIN, 0};
    const int rc = ::poll(&p, 1, kAcceptPollMs);
    if (rc <= 0 || (p.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    struct timeval tv;
    tv.tv_sec = kIoTimeoutMs / 1000;
    tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    // Read until the end of the request headers, a size cap, or the timeout.
    std::string req;
    char chunk[1024];
    while (req.size() < kMaxRequestBytes &&
           req.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      req.append(chunk, static_cast<size_t>(n));
    }

    int status = 400;
    std::string body = "bad request\n";
    std::string content_type = "text/plain; charset=utf-8";
    const size_t sp1 = req.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                : req.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      const std::string method = req.substr(0, sp1);
      const std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
      if (method != "GET") {
        status = 405;
        body = "method not allowed\n";
      } else {
        body = HandleRequest(path, &status);
        if (path == "/metrics") {
          content_type = "text/plain; version=0.0.4; charset=utf-8";
        } else if (path == "/healthz" || path.rfind("/trace", 0) == 0) {
          content_type = "application/json";
        }
      }
    }

    const char* reason = status == 200   ? "OK"
                         : status == 404 ? "Not Found"
                         : status == 405 ? "Method Not Allowed"
                         : status == 503 ? "Service Unavailable"
                                         : "Bad Request";
    char header[256];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 %d %s\r\nContent-Type: %s\r\n"
                  "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                  status, reason, content_type.c_str(), body.size());
    if (SendAll(fd, header, std::strlen(header))) {
      SendAll(fd, body.data(), body.size());
    }
    ::close(fd);
  }
}

}  // namespace obs
}  // namespace egeria
