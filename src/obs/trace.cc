#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace egeria {
namespace trace {
namespace {

constexpr size_t kMaxEventsPerThread = 1 << 16;  // ~8.5 MB/thread worst case
constexpr size_t kArgsCap = 96;

struct Event {
  const char* cat;
  const char* name;
  int64_t ts_ns;
  int64_t dur_ns;  // complete events only
  char ph;         // 'X' or 'i'
  char args[kArgsCap];
};

struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::string name;  // thread_name metadata; empty until SetThreadName
  int tid = 0;
  uint64_t dropped = 0;
};

// Registry of every thread buffer ever created. Buffers are shared_ptr so a
// thread may exit (its thread_local reference dies) while Flush can still
// drain what it emitted. The registry only grows; threads are few and
// long-lived in this codebase (main, comm, ckpt_writer, prefetcher, pool).
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;  // tid 0 is reserved for process-scoped metadata rows
  std::string process_label;
};

std::atomic<bool> g_enabled{false};
std::atomic<int> g_rank{0};
std::atomic<int64_t> g_sync_ns{-1};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

int64_t SteadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// All timestamps are relative to this process-start anchor so the emitted
// microsecond values stay small and single-file traces start near t=0.
int64_t Anchor() {
  static const int64_t anchor = SteadyNs();
  return anchor;
}

ThreadBuffer* LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local = [] {
    auto buf = std::make_shared<ThreadBuffer>();
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    buf->tid = reg.next_tid++;
    reg.buffers.push_back(buf);
    return buf;
  }();
  return local.get();
}

// Low-priority events stop landing at this watermark so coarse phase spans
// always have headroom (see AddCompleteLowPrio in the header).
constexpr size_t kLowPrioLimit = kMaxEventsPerThread - (kMaxEventsPerThread / 8);

void Push(const char* cat, const char* name, char ph, int64_t ts_ns,
          int64_t dur_ns, const char* args_json, bool low_prio = false) {
  ThreadBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->events.size() >= (low_prio ? kLowPrioLimit : kMaxEventsPerThread)) {
    ++b->dropped;
    return;
  }
  b->events.emplace_back();
  Event& e = b->events.back();
  e.cat = cat;
  e.name = name;
  e.ph = ph;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.args[0] = '\0';
  if (args_json != nullptr) {
    std::snprintf(e.args, sizeof(e.args), "%s", args_json);
  }
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out->push_back(c);
  }
}

void AppendMicros(std::string* out, int64_t ns) {
  // Microseconds with fixed 3-decimal (nanosecond) precision, no locale.
  char buf[48];
  int64_t us = ns / 1000;
  int64_t frac = ns % 1000;
  if (frac < 0) {  // events before the anchor cannot happen, but be safe
    frac += 1000;
    us -= 1;
  }
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(us),
                static_cast<long long>(frac));
  out->append(buf);
}

// Serializes all buffers into Chrome trace-event JSON. One event per line:
// tools/egeria_trace parses the output line-wise with no JSON library.
std::string Serialize(bool clear_buffers) {
  Registry& reg = GetRegistry();
  int rank = g_rank.load(std::memory_order_relaxed);

  struct Drained {
    std::vector<Event> events;
    std::string name;
    int tid;
  };
  std::vector<Drained> drained;
  uint64_t dropped = 0;
  std::string label;
  {
    std::lock_guard<std::mutex> reg_lock(reg.mu);
    label = reg.process_label;
    drained.reserve(reg.buffers.size());
    for (auto& buf : reg.buffers) {
      std::lock_guard<std::mutex> lock(buf->mu);
      dropped += buf->dropped;
      Drained d;
      d.name = buf->name;
      d.tid = buf->tid;
      if (clear_buffers) {
        d.events = std::move(buf->events);
        buf->events.clear();
        buf->dropped = 0;
      } else {
        d.events = buf->events;
      }
      drained.push_back(std::move(d));
    }
  }
  if (label.empty()) {
    label = "egeria rank " + std::to_string(rank);
  }

  std::string out;
  size_t total = 0;
  for (const auto& d : drained) total += d.events.size();
  out.reserve(128 * (total + drained.size() + 2) + 512);

  out.append("{\"displayTimeUnit\":\"ms\",\n");
  int64_t sync = g_sync_ns.load(std::memory_order_relaxed);
  out.append("\"otherData\":{\"rank\":").append(std::to_string(rank));
  out.append(",\"clock_sync_us\":");
  if (sync >= 0) {
    AppendMicros(&out, sync - Anchor());
  } else {
    out.append("-1");
  }
  out.append(",\"dropped_events\":").append(std::to_string(dropped));
  out.append(",\"process_label\":\"");
  AppendEscaped(&out, label);
  out.append("\"},\n\"traceEvents\":[\n");

  char pidbuf[32];
  std::snprintf(pidbuf, sizeof(pidbuf), "%d", rank);
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) out.append(",\n");
    first = false;
  };

  comma();
  out.append("{\"ph\":\"M\",\"pid\":").append(pidbuf);
  out.append(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"");
  AppendEscaped(&out, label);
  out.append("\"}}");

  for (const auto& d : drained) {
    comma();
    out.append("{\"ph\":\"M\",\"pid\":").append(pidbuf);
    out.append(",\"tid\":").append(std::to_string(d.tid));
    out.append(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
    AppendEscaped(&out, d.name.empty() ? "thread_" + std::to_string(d.tid)
                                       : d.name);
    out.append("\"}}");
  }

  for (const auto& d : drained) {
    for (const Event& e : d.events) {
      comma();
      out.push_back('{');
      out.append("\"ph\":\"");
      out.push_back(e.ph);
      out.append("\",\"pid\":").append(pidbuf);
      out.append(",\"tid\":").append(std::to_string(d.tid));
      out.append(",\"ts\":");
      AppendMicros(&out, e.ts_ns);
      if (e.ph == 'X') {
        out.append(",\"dur\":");
        AppendMicros(&out, e.dur_ns);
      }
      if (e.ph == 'i') {
        out.append(",\"s\":\"t\"");
      }
      out.append(",\"cat\":\"").append(e.cat);
      out.append("\",\"name\":\"").append(e.name);
      out.push_back('"');
      if (e.args[0] != '\0') {
        out.append(",\"args\":").append(e.args);
      }
      out.push_back('}');
    }
  }
  out.append("\n]}\n");
  return out;
}

bool TruthyEnv(const char* value) {
  if (value == nullptr) return false;
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "on" || v == "yes";
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  Anchor();  // pin the time base before the first event
  g_enabled.store(on, std::memory_order_relaxed);
}

void InitFromEnv() {
  if (TruthyEnv(std::getenv("EGERIA_TRACE"))) SetEnabled(true);
}

void SetProcessRank(int rank) {
  g_rank.store(rank, std::memory_order_relaxed);
}

int ProcessRank() { return g_rank.load(std::memory_order_relaxed); }

void SetProcessLabel(const std::string& label) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.process_label = label;
}

void SetThreadName(const char* name) {
  ThreadBuffer* b = LocalBuffer();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->name.empty()) b->name = name;
}

void MarkSync() { g_sync_ns.store(SteadyNs(), std::memory_order_relaxed); }

int64_t NowNs() { return SteadyNs() - Anchor(); }

void AddComplete(const char* cat, const char* name, int64_t start_ns,
                 int64_t dur_ns, const char* args_json) {
  if (!Enabled()) return;
  Push(cat, name, 'X', start_ns, dur_ns, args_json);
}

void AddCompleteLowPrio(const char* cat, const char* name, int64_t start_ns,
                        int64_t dur_ns, const char* args_json) {
  if (!Enabled()) return;
  Push(cat, name, 'X', start_ns, dur_ns, args_json, /*low_prio=*/true);
}

void AddInstant(const char* cat, const char* name, const char* args_json) {
  if (!Enabled()) return;
  Push(cat, name, 'i', NowNs(), 0, args_json);
}

void AddInstantF(const char* cat, const char* name, const char* fmt, ...) {
  if (!Enabled()) return;
  char args[kArgsCap];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(args, sizeof(args), fmt, ap);
  va_end(ap);
  Push(cat, name, 'i', NowNs(), 0, args);
}

void Span::SetArgs(const char* fmt, ...) {
  if (cat_ == nullptr) return;
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(args_, sizeof(args_), fmt, ap);
  va_end(ap);
}

bool Flush(const std::string& path) {
  std::string json = Serialize(/*clear_buffers=*/true);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  return static_cast<bool>(out);
}

std::string FlushToString() { return Serialize(/*clear_buffers=*/true); }

std::string SnapshotToString() { return Serialize(/*clear_buffers=*/false); }

void ResetForTest() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

uint64_t DroppedEvents() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  uint64_t dropped = 0;
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    dropped += buf->dropped;
  }
  return dropped;
}

size_t BufferedEventCount() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  size_t n = 0;
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

}  // namespace trace
}  // namespace egeria
