// Ordered container of modules. Stages produced by the Egeria module partitioner are
// Sequentials, so freezing a stage freezes every layer inside it.
#ifndef EGERIA_SRC_NN_SEQUENTIAL_H_
#define EGERIA_SRC_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"

namespace egeria {

class Sequential : public Module {
 public:
  explicit Sequential(std::string name) : Module(std::move(name)) {}

  Sequential* Add(std::unique_ptr<Module> module);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Module*> Children() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  size_t size() const { return modules_.size(); }
  Module* at(size_t i) { return modules_[i].get(); }
  const Module* at(size_t i) const { return modules_[i].get(); }

  // Transfers ownership of all children (used by the partitioner to regroup layers).
  std::vector<std::unique_ptr<Module>> ReleaseModules();

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_SEQUENTIAL_H_
