#include "src/nn/init.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

Tensor KaimingNormal(std::vector<int64_t> shape, int64_t fan_in, Rng& rng) {
  EGERIA_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0F / static_cast<float>(fan_in));
  return Tensor::Randn(std::move(shape), rng, stddev);
}

Tensor XavierUniform(std::vector<int64_t> shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  EGERIA_CHECK(fan_in > 0 && fan_out > 0);
  const float bound = std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -bound, bound);
}

}  // namespace egeria
