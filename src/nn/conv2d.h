// 2-d convolution layers (NCHW), lowered to im2col + GEMM. DepthwiseConv2d is the
// per-channel variant used by MobileNetV2's inverted residual blocks.
#ifndef EGERIA_SRC_NN_CONV2D_H_
#define EGERIA_SRC_NN_CONV2D_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace egeria {

class Conv2d : public Module {
 public:
  Conv2d(std::string name, int64_t in_channels, int64_t out_channels, int64_t kernel,
         Rng& rng, int64_t stride = 1, int64_t pad = -1 /* -1 => same for stride 1 */,
         int64_t dilation = 1, bool bias = false);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  const ConvGeom& geom() const { return geom_; }
  bool has_bias() const { return has_bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Parameter& mutable_weight() { return weight_; }
  Parameter& mutable_bias() { return bias_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  ConvGeom geom_;
  bool has_bias_;
  Parameter weight_;  // [out_c, in_c*kh*kw] (GEMM layout)
  Parameter bias_;    // [out_c]
  Tensor cached_cols_;  // im2col of the last input, kept for Backward
  int64_t in_h_ = 0;
  int64_t in_w_ = 0;
  int64_t batch_ = 0;
};

// Depthwise 3x3-style convolution: each channel convolved with its own kernel.
class DepthwiseConv2d : public Module {
 public:
  DepthwiseConv2d(std::string name, int64_t channels, int64_t kernel, Rng& rng,
                  int64_t stride = 1, int64_t pad = -1);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  int64_t channels() const { return channels_; }
  const ConvGeom& geom() const { return geom_; }
  const Parameter& weight() const { return weight_; }
  Parameter& mutable_weight() { return weight_; }

 private:
  int64_t channels_;
  ConvGeom geom_;
  Parameter weight_;  // [c, kh*kw]
  Tensor cached_input_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_CONV2D_H_
