#include "src/nn/dropout.h"

#include "src/util/logging.h"

namespace egeria {

Dropout::Dropout(std::string name, float p, uint64_t seed)
    : Module(std::move(name)), p_(p), seed_(seed) {
  EGERIA_CHECK(p_ >= 0.0F && p_ < 1.0F);
}

Tensor Dropout::Forward(const Tensor& input) {
  if (!training_ || frozen_ || p_ == 0.0F) {
    return input;
  }
  if (step_ != last_step_) {
    calls_this_step_ = 0;
    last_step_ = step_;
  }
  // Stateless stream: key combines the step and the call index within the step.
  Rng rng = Rng::ForKey(seed_, (step_ << 8) | (calls_this_step_ & 0xFF));
  ++calls_this_step_;
  cached_mask_ = Tensor(input.Shape());
  const float keep_inv = 1.0F / (1.0F - p_);
  float* m = cached_mask_.Data();
  for (int64_t i = 0; i < cached_mask_.NumEl(); ++i) {
    m[i] = rng.NextBool(1.0 - static_cast<double>(p_)) ? keep_inv : 0.0F;
  }
  Tensor out = input.Clone();
  out.Mul_(cached_mask_);
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!training_ || frozen_ || p_ == 0.0F) {
    return grad_output;
  }
  EGERIA_CHECK_MSG(cached_mask_.Defined(), name_ + ": Backward without Forward");
  Tensor grad = grad_output.Clone();
  grad.Mul_(cached_mask_);
  return grad;
}

std::unique_ptr<Module> Dropout::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<Dropout>(name_, p_, seed_);
  m->SetTraining(false);
  return m;
}

}  // namespace egeria
