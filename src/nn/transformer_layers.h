// Pre-LN Transformer layers.
//
// The encoder layer is a plain Module (one input -> one output), so encoder stacks
// form a linear chain Egeria can freeze front-to-back — this is where the paper's
// "freezing the front encoders" speedup for Transformer-Base comes from (S6.2). The
// decoder layer takes (x, memory) and therefore lives outside the Module interface;
// the Transformer model routes its memory gradients explicitly.
#ifndef EGERIA_SRC_NN_TRANSFORMER_LAYERS_H_
#define EGERIA_SRC_NN_TRANSFORMER_LAYERS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/attention.h"
#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::string name, int64_t dim, int64_t heads, int64_t ffn_dim,
                          Rng& rng, float dropout_p = 0.0F);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::vector<Module*> Children() override;
  void SetTraining(bool training) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  explicit TransformerEncoderLayer(std::string name) : Module(std::move(name)) {}

  std::unique_ptr<Module> ln1_;
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<Module> ln2_;
  std::unique_ptr<Module> ffn_;
};

// Decoder layer with causal self-attention and cross-attention over encoder memory.
class TransformerDecoderLayer {
 public:
  TransformerDecoderLayer(std::string name, int64_t dim, int64_t heads, int64_t ffn_dim,
                          Rng& rng, float dropout_p = 0.0F);

  Tensor Forward(const Tensor& x, const Tensor& memory);
  // Returns {grad wrt x, grad wrt memory}.
  std::pair<Tensor, Tensor> Backward(const Tensor& grad_output);

  std::vector<Parameter*> Params();
  void SetTraining(bool training);
  // Propagates the frozen flag to sublayers (disables dropout in the frozen prefix).
  void SetFrozen(bool frozen);
  int64_t ParamCount();
  std::unique_ptr<TransformerDecoderLayer> CloneForInference(
      const InferenceFactory& factory) const;
  const std::string& name() const { return name_; }

 private:
  explicit TransformerDecoderLayer(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::unique_ptr<Module> ln1_;
  std::unique_ptr<MultiHeadAttention> self_attn_;
  std::unique_ptr<Module> ln2_;
  std::unique_ptr<MultiHeadAttention> cross_attn_;
  std::unique_ptr<Module> ln3_;
  std::unique_ptr<Module> ffn_;
};

// Builds the position-wise feed-forward Sequential (Linear-GeLU-Linear [+Dropout]).
std::unique_ptr<Module> MakeTransformerFfn(const std::string& name, int64_t dim,
                                           int64_t ffn_dim, Rng& rng, float dropout_p);

}  // namespace egeria

#endif  // EGERIA_SRC_NN_TRANSFORMER_LAYERS_H_
