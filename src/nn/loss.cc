#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

// Shared core: rows of logits [rows, classes] against integer labels; rows whose
// label is kIgnoreLabel contribute nothing.
LossResult RowwiseCrossEntropy(const Tensor& logits, int64_t rows, int64_t classes,
                               const std::vector<int>& labels, float label_smoothing) {
  EGERIA_CHECK(static_cast<int64_t>(labels.size()) == rows);
  Tensor logp = LogSoftmax(logits.Reshape({rows, classes}));
  LossResult out;
  out.grad = Tensor(logits.Shape());
  float* grad = out.grad.Data();
  const float* lp = logp.Data();
  int64_t active = 0;
  for (int64_t r = 0; r < rows; ++r) {
    if (labels[static_cast<size_t>(r)] != kIgnoreLabel) {
      ++active;
    }
  }
  if (active == 0) {
    return out;
  }
  const float inv = 1.0F / static_cast<float>(active);
  const float off_weight = label_smoothing / static_cast<float>(classes);
  const float on_weight = 1.0F - label_smoothing + off_weight;
  double total = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const int label = labels[static_cast<size_t>(r)];
    float* grow = grad + r * classes;
    if (label == kIgnoreLabel) {
      continue;
    }
    EGERIA_CHECK_MSG(label >= 0 && label < classes, "label out of range");
    const float* lrow = lp + r * classes;
    double row_loss = -on_weight * lrow[label];
    if (label_smoothing > 0.0F) {
      for (int64_t c = 0; c < classes; ++c) {
        if (c != label) {
          row_loss -= off_weight * lrow[c];
        }
      }
    }
    total += row_loss;
    // d(loss)/d(logit) = softmax - target distribution, scaled by 1/active.
    for (int64_t c = 0; c < classes; ++c) {
      const float p = std::exp(lrow[c]);
      const float target = (c == label) ? on_weight : off_weight;
      grow[c] = (p - target) * inv;
    }
  }
  out.loss = static_cast<float>(total) * inv;
  return out;
}

}  // namespace

LossResult SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                               float label_smoothing) {
  EGERIA_CHECK(logits.Dim() == 2);
  return RowwiseCrossEntropy(logits, logits.Size(0), logits.Size(1), labels,
                             label_smoothing);
}

LossResult SequenceCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                                float label_smoothing) {
  EGERIA_CHECK(logits.Dim() == 3);
  return RowwiseCrossEntropy(logits, logits.Size(0) * logits.Size(1), logits.Size(2),
                             labels, label_smoothing);
}

LossResult PixelwiseCrossEntropy(const Tensor& logits, const std::vector<int>& labels) {
  EGERIA_CHECK(logits.Dim() == 4);
  const int64_t b = logits.Size(0);
  const int64_t c = logits.Size(1);
  const int64_t h = logits.Size(2);
  const int64_t w = logits.Size(3);
  // Rearrange NCHW -> [b*h*w, c] rows for the shared core, then scatter back.
  Tensor rows({b * h * w, c});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = logits.Data() + (bi * c + ci) * h * w;
      for (int64_t i = 0; i < h * w; ++i) {
        rows.At(bi * h * w + i, ci) = plane[i];
      }
    }
  }
  LossResult rr = RowwiseCrossEntropy(rows, b * h * w, c, labels, 0.0F);
  LossResult out;
  out.loss = rr.loss;
  out.grad = Tensor(logits.Shape());
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      float* plane = out.grad.Data() + (bi * c + ci) * h * w;
      for (int64_t i = 0; i < h * w; ++i) {
        plane[i] = rr.grad.At(bi * h * w + i, ci);
      }
    }
  }
  return out;
}

LossResult SpanLoss(const Tensor& logits, const std::vector<std::pair<int, int>>& spans) {
  EGERIA_CHECK(logits.Dim() == 3 && logits.Size(2) == 2);
  const int64_t b = logits.Size(0);
  const int64_t t = logits.Size(1);
  EGERIA_CHECK(static_cast<int64_t>(spans.size()) == b);
  // Split into start/end logit matrices [b, t].
  Tensor start({b, t});
  Tensor end({b, t});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      start.At(bi, ti) = logits.At(bi, ti, 0);
      end.At(bi, ti) = logits.At(bi, ti, 1);
    }
  }
  std::vector<int> start_labels(static_cast<size_t>(b));
  std::vector<int> end_labels(static_cast<size_t>(b));
  for (int64_t bi = 0; bi < b; ++bi) {
    start_labels[static_cast<size_t>(bi)] = spans[static_cast<size_t>(bi)].first;
    end_labels[static_cast<size_t>(bi)] = spans[static_cast<size_t>(bi)].second;
  }
  LossResult ls = SoftmaxCrossEntropy(start, start_labels);
  LossResult le = SoftmaxCrossEntropy(end, end_labels);
  LossResult out;
  out.loss = 0.5F * (ls.loss + le.loss);
  out.grad = Tensor(logits.Shape());
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      out.grad.At(bi, ti, 0) = 0.5F * ls.grad.At(bi, ti);
      out.grad.At(bi, ti, 1) = 0.5F * le.grad.At(bi, ti);
    }
  }
  return out;
}

double TopOneAccuracy(const Tensor& logits, const std::vector<int>& labels) {
  EGERIA_CHECK(logits.Dim() == 2);
  const int64_t n = logits.Size(0);
  const int64_t c = logits.Size(1);
  EGERIA_CHECK(static_cast<int64_t>(labels.size()) == n);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.Data() + i * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) {
        best = j;
      }
    }
    if (best == labels[static_cast<size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double PixelAccuracy(const Tensor& logits, const std::vector<int>& labels) {
  EGERIA_CHECK(logits.Dim() == 4);
  const int64_t b = logits.Size(0);
  const int64_t c = logits.Size(1);
  const int64_t hw = logits.Size(2) * logits.Size(3);
  int64_t correct = 0;
  int64_t total = 0;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t i = 0; i < hw; ++i) {
      const int label = labels[static_cast<size_t>(bi * hw + i)];
      if (label == kIgnoreLabel) {
        continue;
      }
      int64_t best = 0;
      float best_v = logits.Data()[(bi * c) * hw + i];
      for (int64_t ci = 1; ci < c; ++ci) {
        const float v = logits.Data()[(bi * c + ci) * hw + i];
        if (v > best_v) {
          best_v = v;
          best = ci;
        }
      }
      if (best == label) {
        ++correct;
      }
      ++total;
    }
  }
  return (total > 0) ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double MeanIoU(const Tensor& logits, const std::vector<int>& labels, int num_classes) {
  EGERIA_CHECK(logits.Dim() == 4);
  const int64_t b = logits.Size(0);
  const int64_t c = logits.Size(1);
  const int64_t hw = logits.Size(2) * logits.Size(3);
  std::vector<int64_t> inter(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> uni(static_cast<size_t>(num_classes), 0);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t i = 0; i < hw; ++i) {
      const int label = labels[static_cast<size_t>(bi * hw + i)];
      if (label == kIgnoreLabel) {
        continue;
      }
      int64_t best = 0;
      float best_v = logits.Data()[(bi * c) * hw + i];
      for (int64_t ci = 1; ci < c; ++ci) {
        const float v = logits.Data()[(bi * c + ci) * hw + i];
        if (v > best_v) {
          best_v = v;
          best = ci;
        }
      }
      if (best == label) {
        ++inter[static_cast<size_t>(label)];
        ++uni[static_cast<size_t>(label)];
      } else {
        ++uni[static_cast<size_t>(label)];
        ++uni[static_cast<size_t>(best)];
      }
    }
  }
  double sum = 0.0;
  int present = 0;
  for (int k = 0; k < num_classes; ++k) {
    if (uni[static_cast<size_t>(k)] > 0) {
      sum += static_cast<double>(inter[static_cast<size_t>(k)]) /
             static_cast<double>(uni[static_cast<size_t>(k)]);
      ++present;
    }
  }
  return (present > 0) ? sum / present : 0.0;
}

double SequenceAccuracy(const Tensor& logits, const std::vector<int>& labels) {
  EGERIA_CHECK(logits.Dim() == 3);
  const int64_t rows = logits.Size(0) * logits.Size(1);
  const int64_t c = logits.Size(2);
  int64_t correct = 0;
  int64_t total = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int label = labels[static_cast<size_t>(r)];
    if (label == kIgnoreLabel) {
      continue;
    }
    const float* row = logits.Data() + r * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) {
        best = j;
      }
    }
    if (best == label) {
      ++correct;
    }
    ++total;
  }
  return (total > 0) ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

double Perplexity(const Tensor& logits, const std::vector<int>& labels) {
  EGERIA_CHECK(logits.Dim() == 3);
  const int64_t rows = logits.Size(0) * logits.Size(1);
  const int64_t c = logits.Size(2);
  Tensor logp = LogSoftmax(logits.Reshape({rows, c}));
  double total = 0.0;
  int64_t count = 0;
  for (int64_t r = 0; r < rows; ++r) {
    const int label = labels[static_cast<size_t>(r)];
    if (label == kIgnoreLabel) {
      continue;
    }
    total -= logp.At(r, label);
    ++count;
  }
  return (count > 0) ? std::exp(total / static_cast<double>(count)) : 1.0;
}

double SpanF1(const Tensor& logits, const std::vector<std::pair<int, int>>& spans) {
  EGERIA_CHECK(logits.Dim() == 3 && logits.Size(2) == 2);
  const int64_t b = logits.Size(0);
  const int64_t t = logits.Size(1);
  double f1_sum = 0.0;
  for (int64_t bi = 0; bi < b; ++bi) {
    int64_t ps = 0;
    int64_t pe = 0;
    float best_s = logits.At(bi, 0, 0);
    float best_e = logits.At(bi, 0, 1);
    for (int64_t ti = 1; ti < t; ++ti) {
      if (logits.At(bi, ti, 0) > best_s) {
        best_s = logits.At(bi, ti, 0);
        ps = ti;
      }
      if (logits.At(bi, ti, 1) > best_e) {
        best_e = logits.At(bi, ti, 1);
        pe = ti;
      }
    }
    if (pe < ps) {
      pe = ps;
    }
    const int64_t gs = spans[static_cast<size_t>(bi)].first;
    const int64_t ge = spans[static_cast<size_t>(bi)].second;
    const int64_t inter_lo = std::max(ps, gs);
    const int64_t inter_hi = std::min(pe, ge);
    const int64_t inter = std::max<int64_t>(0, inter_hi - inter_lo + 1);
    const int64_t pred_len = pe - ps + 1;
    const int64_t gold_len = ge - gs + 1;
    if (inter == 0) {
      continue;
    }
    const double precision = static_cast<double>(inter) / static_cast<double>(pred_len);
    const double recall = static_cast<double>(inter) / static_cast<double>(gold_len);
    f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  return f1_sum / static_cast<double>(b);
}

}  // namespace egeria
