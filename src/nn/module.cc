#include "src/nn/module.h"

#include "src/util/logging.h"

namespace egeria {

std::string PrecisionName(Precision p) {
  switch (p) {
    case Precision::kFloat32:
      return "float32";
    case Precision::kFloat16:
      return "float16";
    case Precision::kInt8:
      return "int8";
  }
  return "?";
}

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  CollectParams(out);
  return out;
}

void Module::CollectParams(std::vector<Parameter*>& out) {
  for (Parameter* p : LocalParams()) {
    out.push_back(p);
  }
  for (Module* child : Children()) {
    child->CollectParams(out);
  }
}

int64_t Module::ParamCount() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) {
    total += p->value.NumEl();
  }
  return total;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) {
    p->grad.Zero_();
  }
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (Module* child : Children()) {
    child->SetTraining(training);
  }
}

void Module::SetFrozen(bool frozen) {
  frozen_ = frozen;
  for (Module* child : Children()) {
    child->SetFrozen(frozen);
  }
}

void Module::CopyStateFrom(const Module& other) {
  // Default: copy local parameters positionally and recurse into children so that
  // overrides (e.g. BatchNorm's running statistics) are honored at every level.
  auto& src = const_cast<Module&>(other);
  CopyParamValues(LocalParams(), src.LocalParams());
  auto dst_children = Children();
  auto src_children = src.Children();
  EGERIA_CHECK_MSG(dst_children.size() == src_children.size(),
                   name_ + ": CopyStateFrom children mismatch");
  for (size_t i = 0; i < dst_children.size(); ++i) {
    dst_children[i]->CopyStateFrom(*src_children[i]);
  }
}

void CopyParamValues(const std::vector<Parameter*>& dst, const std::vector<Parameter*>& src) {
  EGERIA_CHECK_MSG(dst.size() == src.size(), "parameter list size mismatch");
  for (size_t i = 0; i < dst.size(); ++i) {
    EGERIA_CHECK_MSG(dst[i]->value.NumEl() == src[i]->value.NumEl(),
                     "parameter shape mismatch: " + dst[i]->name);
    dst[i]->value = src[i]->value.Clone();
  }
}

}  // namespace egeria
