// Multi-head scaled dot-product attention.
//
// Not a Module: attention takes two inputs (query stream and key/value stream), so the
// Transformer layer composites in src/nn/transformer_layers.h drive it directly and
// route the two returned input-gradients themselves.
#ifndef EGERIA_SRC_NN_ATTENTION_H_
#define EGERIA_SRC_NN_ATTENTION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

class MultiHeadAttention {
 public:
  MultiHeadAttention(std::string name, int64_t dim, int64_t heads, Rng& rng);

  // q_in [b, tq, d]; kv_in [b, tk, d]. With causal=true, position i attends only to
  // positions <= i (decoder self-attention).
  Tensor Forward(const Tensor& q_in, const Tensor& kv_in, bool causal);
  // Returns {grad wrt q_in, grad wrt kv_in}. For self-attention the caller adds them.
  std::pair<Tensor, Tensor> Backward(const Tensor& grad_output);

  std::vector<Parameter*> Params();
  void SetTraining(bool training);
  std::unique_ptr<MultiHeadAttention> CloneForInference(const InferenceFactory& factory) const;

  const std::string& name() const { return name_; }
  int64_t dim() const { return dim_; }
  int64_t heads() const { return heads_; }

 private:
  MultiHeadAttention(std::string name, int64_t dim, int64_t heads);

  std::string name_;
  int64_t dim_;
  int64_t heads_;
  int64_t dh_;
  std::unique_ptr<Module> q_proj_;
  std::unique_ptr<Module> k_proj_;
  std::unique_ptr<Module> v_proj_;
  std::unique_ptr<Module> o_proj_;

  // Backward caches.
  Tensor q_;  // [b*h, tq, dh]
  Tensor k_;  // [b*h, tk, dh]
  Tensor v_;  // [b*h, tk, dh]
  Tensor p_;  // softmax probabilities [b*h, tq, tk]
  int64_t batch_ = 0;
  int64_t tq_ = 0;
  int64_t tk_ = 0;
  bool training_ = true;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_ATTENTION_H_
