#include "src/nn/transformer_layers.h"

#include "src/nn/activations.h"
#include "src/nn/dropout.h"
#include "src/nn/layernorm.h"
#include "src/nn/linear.h"
#include "src/nn/sequential.h"
#include "src/util/logging.h"

namespace egeria {

std::unique_ptr<Module> MakeTransformerFfn(const std::string& name, int64_t dim,
                                           int64_t ffn_dim, Rng& rng, float dropout_p) {
  auto ffn = std::make_unique<Sequential>(name);
  ffn->Add(std::make_unique<Linear>(name + ".fc1", dim, ffn_dim, rng));
  ffn->Add(std::make_unique<GeLU>(name + ".gelu"));
  ffn->Add(std::make_unique<Linear>(name + ".fc2", ffn_dim, dim, rng));
  if (dropout_p > 0.0F) {
    ffn->Add(std::make_unique<Dropout>(name + ".drop", dropout_p));
  }
  return ffn;
}

TransformerEncoderLayer::TransformerEncoderLayer(std::string name, int64_t dim,
                                                 int64_t heads, int64_t ffn_dim, Rng& rng,
                                                 float dropout_p)
    : Module(std::move(name)) {
  ln1_ = std::make_unique<LayerNorm>(name_ + ".ln1", dim);
  attn_ = std::make_unique<MultiHeadAttention>(name_ + ".attn", dim, heads, rng);
  ln2_ = std::make_unique<LayerNorm>(name_ + ".ln2", dim);
  ffn_ = MakeTransformerFfn(name_ + ".ffn", dim, ffn_dim, rng, dropout_p);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& input) {
  // a = x + attn(ln1(x)); out = a + ffn(ln2(a)).
  Tensor norm1 = ln1_->Forward(input);
  Tensor a = attn_->Forward(norm1, norm1, /*causal=*/false);
  a.Add_(input);
  Tensor norm2 = ln2_->Forward(a);
  Tensor out = ffn_->Forward(norm2);
  out.Add_(a);
  return out;
}

Tensor TransformerEncoderLayer::Backward(const Tensor& grad_output) {
  // d_a = dout + ln2'(ffn'(dout)).
  Tensor da = ln2_->Backward(ffn_->Backward(grad_output));
  da.Add_(grad_output);
  auto [dq, dkv] = attn_->Backward(da);
  dq.Add_(dkv);
  Tensor dx = ln1_->Backward(dq);
  dx.Add_(da);
  return dx;
}

std::vector<Parameter*> TransformerEncoderLayer::LocalParams() { return attn_->Params(); }

std::vector<Module*> TransformerEncoderLayer::Children() {
  return {ln1_.get(), ln2_.get(), ffn_.get()};
}

void TransformerEncoderLayer::SetTraining(bool training) {
  Module::SetTraining(training);
  attn_->SetTraining(training);
}

std::unique_ptr<Module> TransformerEncoderLayer::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone = std::unique_ptr<TransformerEncoderLayer>(new TransformerEncoderLayer(name_));
  clone->ln1_ = ln1_->CloneForInference(factory);
  clone->attn_ = attn_->CloneForInference(factory);
  clone->ln2_ = ln2_->CloneForInference(factory);
  clone->ffn_ = ffn_->CloneForInference(factory);
  clone->SetTraining(false);
  return clone;
}

TransformerDecoderLayer::TransformerDecoderLayer(std::string name, int64_t dim,
                                                 int64_t heads, int64_t ffn_dim, Rng& rng,
                                                 float dropout_p)
    : name_(std::move(name)) {
  ln1_ = std::make_unique<LayerNorm>(name_ + ".ln1", dim);
  self_attn_ = std::make_unique<MultiHeadAttention>(name_ + ".self_attn", dim, heads, rng);
  ln2_ = std::make_unique<LayerNorm>(name_ + ".ln2", dim);
  cross_attn_ = std::make_unique<MultiHeadAttention>(name_ + ".cross_attn", dim, heads, rng);
  ln3_ = std::make_unique<LayerNorm>(name_ + ".ln3", dim);
  ffn_ = MakeTransformerFfn(name_ + ".ffn", dim, ffn_dim, rng, dropout_p);
}

Tensor TransformerDecoderLayer::Forward(const Tensor& x, const Tensor& memory) {
  Tensor norm1 = ln1_->Forward(x);
  Tensor a = self_attn_->Forward(norm1, norm1, /*causal=*/true);
  a.Add_(x);
  Tensor norm2 = ln2_->Forward(a);
  Tensor b = cross_attn_->Forward(norm2, memory, /*causal=*/false);
  b.Add_(a);
  Tensor norm3 = ln3_->Forward(b);
  Tensor out = ffn_->Forward(norm3);
  out.Add_(b);
  return out;
}

std::pair<Tensor, Tensor> TransformerDecoderLayer::Backward(const Tensor& grad_output) {
  Tensor db = ln3_->Backward(ffn_->Backward(grad_output));
  db.Add_(grad_output);
  auto [dq_cross, dmemory] = cross_attn_->Backward(db);
  Tensor da = ln2_->Backward(dq_cross);
  da.Add_(db);
  auto [dq_self, dkv_self] = self_attn_->Backward(da);
  dq_self.Add_(dkv_self);
  Tensor dx = ln1_->Backward(dq_self);
  dx.Add_(da);
  return {dx, dmemory};
}

std::vector<Parameter*> TransformerDecoderLayer::Params() {
  std::vector<Parameter*> out;
  for (Parameter* p : self_attn_->Params()) {
    out.push_back(p);
  }
  for (Parameter* p : cross_attn_->Params()) {
    out.push_back(p);
  }
  for (Module* m : {ln1_.get(), ln2_.get(), ln3_.get(), ffn_.get()}) {
    for (Parameter* p : m->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

void TransformerDecoderLayer::SetTraining(bool training) {
  self_attn_->SetTraining(training);
  cross_attn_->SetTraining(training);
  for (Module* m : {ln1_.get(), ln2_.get(), ln3_.get(), ffn_.get()}) {
    m->SetTraining(training);
  }
}

void TransformerDecoderLayer::SetFrozen(bool frozen) {
  for (Module* m : {ln1_.get(), ln2_.get(), ln3_.get(), ffn_.get()}) {
    m->SetFrozen(frozen);
  }
}

int64_t TransformerDecoderLayer::ParamCount() {
  int64_t total = 0;
  for (Parameter* p : Params()) {
    total += p->value.NumEl();
  }
  return total;
}

std::unique_ptr<TransformerDecoderLayer> TransformerDecoderLayer::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone =
      std::unique_ptr<TransformerDecoderLayer>(new TransformerDecoderLayer(name_));
  clone->ln1_ = ln1_->CloneForInference(factory);
  clone->self_attn_ = self_attn_->CloneForInference(factory);
  clone->ln2_ = ln2_->CloneForInference(factory);
  clone->cross_attn_ = cross_attn_->CloneForInference(factory);
  clone->ln3_ = ln3_->CloneForInference(factory);
  clone->ffn_ = ffn_->CloneForInference(factory);
  clone->SetTraining(false);
  return clone;
}

}  // namespace egeria
