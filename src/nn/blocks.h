// Composite convolutional blocks: the building "layer modules" Egeria freezes.
//  - BasicResidualBlock: 3x3-BN-ReLU-3x3-BN + identity/1x1 shortcut (ResNet-20/56).
//  - BottleneckBlock: 1x1-BN-ReLU, 3x3-BN-ReLU, 1x1-BN + shortcut (ResNet-50 style).
//  - InvertedResidual: expand-1x1, depthwise-3x3, project-1x1 (MobileNetV2).
//
// Members are held as Module pointers so that CloneForInference can substitute
// quantized kernels (int8/fp16) for the convolutions while keeping the residual
// wiring intact.
#ifndef EGERIA_SRC_NN_BLOCKS_H_
#define EGERIA_SRC_NN_BLOCKS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

class BasicResidualBlock : public Module {
 public:
  BasicResidualBlock(std::string name, int64_t in_channels, int64_t out_channels,
                     int64_t stride, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Module*> Children() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  explicit BasicResidualBlock(std::string name) : Module(std::move(name)) {}

  std::unique_ptr<Module> conv1_;
  std::unique_ptr<Module> bn1_;
  std::unique_ptr<Module> relu1_;
  std::unique_ptr<Module> conv2_;
  std::unique_ptr<Module> bn2_;
  std::unique_ptr<Module> down_conv_;  // nullptr when identity shortcut
  std::unique_ptr<Module> down_bn_;
  std::unique_ptr<Module> relu_out_;
};

class BottleneckBlock : public Module {
 public:
  // mid = out/4 as in ResNet-50.
  BottleneckBlock(std::string name, int64_t in_channels, int64_t out_channels,
                  int64_t stride, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Module*> Children() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  explicit BottleneckBlock(std::string name) : Module(std::move(name)) {}

  std::unique_ptr<Module> conv1_;
  std::unique_ptr<Module> bn1_;
  std::unique_ptr<Module> relu1_;
  std::unique_ptr<Module> conv2_;
  std::unique_ptr<Module> bn2_;
  std::unique_ptr<Module> relu2_;
  std::unique_ptr<Module> conv3_;
  std::unique_ptr<Module> bn3_;
  std::unique_ptr<Module> down_conv_;
  std::unique_ptr<Module> down_bn_;
  std::unique_ptr<Module> relu_out_;
};

class InvertedResidual : public Module {
 public:
  InvertedResidual(std::string name, int64_t in_channels, int64_t out_channels,
                   int64_t stride, int64_t expand_ratio, Rng& rng);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Module*> Children() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  explicit InvertedResidual(std::string name) : Module(std::move(name)) {}

  bool use_residual_ = false;
  std::unique_ptr<Module> expand_conv_;  // nullptr when expand_ratio == 1
  std::unique_ptr<Module> expand_bn_;
  std::unique_ptr<Module> expand_relu_;
  std::unique_ptr<Module> dw_conv_;
  std::unique_ptr<Module> dw_bn_;
  std::unique_ptr<Module> dw_relu_;
  std::unique_ptr<Module> project_conv_;
  std::unique_ptr<Module> project_bn_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_BLOCKS_H_
