// Layer normalization over the last dimension ([*, d] inputs), as used by the
// Transformer and BERT-style models (pre-LN blocks).
#ifndef EGERIA_SRC_NN_LAYERNORM_H_
#define EGERIA_SRC_NN_LAYERNORM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"

namespace egeria {

class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, int64_t dim, float eps = 1e-5F);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // one per row
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_LAYERNORM_H_
