#include "src/nn/activations.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

namespace {
constexpr float kGeluC = 0.7978845608028654F;  // sqrt(2/pi)
}  // namespace

Tensor ReLU::Forward(const Tensor& input) {
  if (training_) {
    cached_input_ = input;
  }
  Tensor out = input.Clone();
  float* p = out.Data();
  for (int64_t i = 0; i < out.NumEl(); ++i) {
    if (p[i] < 0.0F) {
      p[i] = 0.0F;
    }
  }
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_input_.Defined(), name_ + ": Backward without Forward");
  Tensor grad = grad_output.Clone();
  float* g = grad.Data();
  const float* x = cached_input_.Data();
  for (int64_t i = 0; i < grad.NumEl(); ++i) {
    if (x[i] <= 0.0F) {
      g[i] = 0.0F;
    }
  }
  return grad;
}

std::unique_ptr<Module> ReLU::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<ReLU>(name_);
  m->SetTraining(false);
  return m;
}

Tensor ReLU6::Forward(const Tensor& input) {
  if (training_) {
    cached_input_ = input;
  }
  Tensor out = input.Clone();
  float* p = out.Data();
  for (int64_t i = 0; i < out.NumEl(); ++i) {
    if (p[i] < 0.0F) {
      p[i] = 0.0F;
    } else if (p[i] > 6.0F) {
      p[i] = 6.0F;
    }
  }
  return out;
}

Tensor ReLU6::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_input_.Defined(), name_ + ": Backward without Forward");
  Tensor grad = grad_output.Clone();
  float* g = grad.Data();
  const float* x = cached_input_.Data();
  for (int64_t i = 0; i < grad.NumEl(); ++i) {
    if (x[i] <= 0.0F || x[i] >= 6.0F) {
      g[i] = 0.0F;
    }
  }
  return grad;
}

std::unique_ptr<Module> ReLU6::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<ReLU6>(name_);
  m->SetTraining(false);
  return m;
}

Tensor GeLU::Forward(const Tensor& input) {
  if (training_) {
    cached_input_ = input;
  }
  Tensor out = input.Clone();
  float* p = out.Data();
  for (int64_t i = 0; i < out.NumEl(); ++i) {
    const float x = p[i];
    const float t = std::tanh(kGeluC * (x + 0.044715F * x * x * x));
    p[i] = 0.5F * x * (1.0F + t);
  }
  return out;
}

Tensor GeLU::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_input_.Defined(), name_ + ": Backward without Forward");
  Tensor grad = grad_output.Clone();
  float* g = grad.Data();
  const float* xp = cached_input_.Data();
  for (int64_t i = 0; i < grad.NumEl(); ++i) {
    const float x = xp[i];
    const float u = kGeluC * (x + 0.044715F * x * x * x);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0F + 3.0F * 0.044715F * x * x);
    const float d = 0.5F * (1.0F + t) + 0.5F * x * (1.0F - t * t) * du;
    g[i] *= d;
  }
  return grad;
}

std::unique_ptr<Module> GeLU::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<GeLU>(name_);
  m->SetTraining(false);
  return m;
}

Tensor Sigmoid::Forward(const Tensor& input) {
  Tensor out = input.Clone();
  float* p = out.Data();
  for (int64_t i = 0; i < out.NumEl(); ++i) {
    p[i] = 1.0F / (1.0F + std::exp(-p[i]));
  }
  if (training_) {
    cached_output_ = out;
  }
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_output_.Defined(), name_ + ": Backward without Forward");
  Tensor grad = grad_output.Clone();
  float* g = grad.Data();
  const float* y = cached_output_.Data();
  for (int64_t i = 0; i < grad.NumEl(); ++i) {
    g[i] *= y[i] * (1.0F - y[i]);
  }
  return grad;
}

std::unique_ptr<Module> Sigmoid::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<Sigmoid>(name_);
  m->SetTraining(false);
  return m;
}

Tensor Tanh::Forward(const Tensor& input) {
  Tensor out = input.Clone();
  float* p = out.Data();
  for (int64_t i = 0; i < out.NumEl(); ++i) {
    p[i] = std::tanh(p[i]);
  }
  if (training_) {
    cached_output_ = out;
  }
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_output_.Defined(), name_ + ": Backward without Forward");
  Tensor grad = grad_output.Clone();
  float* g = grad.Data();
  const float* y = cached_output_.Data();
  for (int64_t i = 0; i < grad.NumEl(); ++i) {
    g[i] *= 1.0F - y[i] * y[i];
  }
  return grad;
}

std::unique_ptr<Module> Tanh::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<Tanh>(name_);
  m->SetTraining(false);
  return m;
}

}  // namespace egeria
