// Inverted dropout. The mask stream is deterministic given (seed, step), supporting
// the paper's "stateless random operations" requirement (S4.3): replays of the same
// step produce identical masks, and inference mode is a no-op.
#ifndef EGERIA_SRC_NN_DROPOUT_H_
#define EGERIA_SRC_NN_DROPOUT_H_

#include <memory>
#include <string>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

class Dropout : public Module {
 public:
  Dropout(std::string name, float p, uint64_t seed = 0x5eed);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  // Advances the mask stream; trainers call this once per iteration so replaying an
  // iteration reproduces the same mask.
  void SetStep(uint64_t step) { step_ = step; }
  float p() const { return p_; }

  // Mirrors Forward's no-op gate: masks are only drawn in training, unfrozen
  // mode with p > 0.
  bool ForwardIsStochastic() const override {
    return training_ && !frozen_ && p_ > 0.0F;
  }

 private:
  float p_;
  uint64_t seed_;
  uint64_t step_ = 0;
  uint64_t calls_this_step_ = 0;
  uint64_t last_step_ = ~0ULL;
  Tensor cached_mask_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_DROPOUT_H_
