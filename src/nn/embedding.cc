#include "src/nn/embedding.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim, Rng& rng,
                     bool scale_by_sqrt_dim, bool add_positional, int64_t max_len)
    : Module(std::move(name)),
      vocab_(vocab),
      dim_(dim),
      scale_(scale_by_sqrt_dim),
      positional_(add_positional) {
  weight_ = Parameter(name_ + ".weight",
                      Tensor::Randn({vocab, dim}, rng, 1.0F / std::sqrt(static_cast<float>(dim))));
  if (positional_) {
    pos_table_ = Tensor({max_len, dim});
    for (int64_t pos = 0; pos < max_len; ++pos) {
      for (int64_t i = 0; i < dim; ++i) {
        const double angle =
            static_cast<double>(pos) /
            std::pow(10000.0, 2.0 * static_cast<double>(i / 2) / static_cast<double>(dim));
        pos_table_.At(pos, i) =
            static_cast<float>((i % 2 == 0) ? std::sin(angle) : std::cos(angle));
      }
    }
  }
}

Tensor Embedding::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 2);
  const int64_t b = input.Size(0);
  const int64_t t = input.Size(1);
  if (training_) {
    cached_ids_ = input;
  }
  Tensor out({b, t, dim_});
  const float scale = scale_ ? std::sqrt(static_cast<float>(dim_)) : 1.0F;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      const int64_t id = static_cast<int64_t>(input.At(bi, ti));
      EGERIA_CHECK_MSG(id >= 0 && id < vocab_, name_ + ": token id out of range");
      const float* row = weight_.value.Data() + id * dim_;
      float* dst = out.Data() + (bi * t + ti) * dim_;
      for (int64_t i = 0; i < dim_; ++i) {
        dst[i] = row[i] * scale;
      }
      if (positional_) {
        EGERIA_CHECK(ti < pos_table_.Size(0));
        const float* pos = pos_table_.Data() + ti * dim_;
        for (int64_t i = 0; i < dim_; ++i) {
          dst[i] += pos[i];
        }
      }
    }
  }
  return out;
}

Tensor Embedding::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_ids_.Defined(), name_ + ": Backward without Forward");
  const int64_t b = cached_ids_.Size(0);
  const int64_t t = cached_ids_.Size(1);
  EGERIA_CHECK(grad_output.Size(0) == b && grad_output.Size(1) == t);
  const float scale = scale_ ? std::sqrt(static_cast<float>(dim_)) : 1.0F;
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      const int64_t id = static_cast<int64_t>(cached_ids_.At(bi, ti));
      const float* g = grad_output.Data() + (bi * t + ti) * dim_;
      float* dst = weight_.grad.Data() + id * dim_;
      for (int64_t i = 0; i < dim_; ++i) {
        dst[i] += g[i] * scale;
      }
    }
  }
  // Token ids are not differentiable; return an empty gradient.
  return Tensor();
}

std::vector<Parameter*> Embedding::LocalParams() { return {&weight_}; }

std::unique_ptr<Module> Embedding::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;  // Embedding lookups stay float in quantized references.
  Rng rng(0);
  auto clone = std::make_unique<Embedding>(name_, vocab_, dim_, rng, scale_, positional_,
                                           positional_ ? pos_table_.Size(0) : 512);
  clone->weight_.value = weight_.value.Clone();
  if (positional_) {
    clone->pos_table_ = pos_table_.Clone();
  }
  clone->SetTraining(false);
  return clone;
}

}  // namespace egeria
