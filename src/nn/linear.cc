#include "src/nn/linear.h"

#include "src/nn/init.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

Linear::Linear(std::string name, int64_t in_features, int64_t out_features, Rng& rng,
               bool bias)
    : Module(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  weight_ = Parameter(name_ + ".weight",
                      XavierUniform({out_features, in_features}, in_features, out_features, rng));
  if (has_bias_) {
    bias_ = Parameter(name_ + ".bias", Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& input) {
  EGERIA_CHECK_MSG(input.Size(-1) == in_features_, name_ + ": in_features mismatch");
  input_shape_ = input.Shape();
  const int64_t rows = input.NumEl() / in_features_;
  Tensor x = input.Reshape({rows, in_features_});
  if (training_) {
    cached_input_ = x;
  }
  Tensor y = MatMulTransB(x, weight_.value);
  if (has_bias_) {
    float* yp = y.Data();
    const float* bp = bias_.value.Data();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < out_features_; ++j) {
        yp[i * out_features_ + j] += bp[j];
      }
    }
  }
  std::vector<int64_t> out_shape = input_shape_;
  out_shape.back() = out_features_;
  return y.Reshape(std::move(out_shape));
}

Tensor Linear::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_input_.Defined(), name_ + ": Backward without Forward");
  const int64_t rows = grad_output.NumEl() / out_features_;
  EGERIA_CHECK(rows == cached_input_.Size(0));
  Tensor dy = grad_output.Reshape({rows, out_features_});
  // dW += dy^T x ; db += colsum(dy) ; dx = dy W.
  Gemm(dy.Data(), cached_input_.Data(), weight_.grad.Data(), out_features_, rows,
       in_features_, /*trans_a=*/true, /*trans_b=*/false, /*accumulate=*/true);
  if (has_bias_) {
    float* db = bias_.grad.Data();
    const float* dp = dy.Data();
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < out_features_; ++j) {
        db[j] += dp[i * out_features_ + j];
      }
    }
  }
  Tensor dx = MatMul(dy, weight_.value);
  return dx.Reshape(input_shape_);
}

std::vector<Parameter*> Linear::LocalParams() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) {
    params.push_back(&bias_);
  }
  return params;
}

std::unique_ptr<Module> Linear::CloneForInference(const InferenceFactory& factory) const {
  return factory.MakeLinear(*this);
}

}  // namespace egeria
