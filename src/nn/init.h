// Weight initialization schemes (He/Kaiming for conv+ReLU stacks, Xavier/Glorot for
// linear/attention layers), matching the defaults of the frameworks the paper uses.
#ifndef EGERIA_SRC_NN_INIT_H_
#define EGERIA_SRC_NN_INIT_H_

#include <cstdint>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace egeria {

// Gaussian with stddev sqrt(2 / fan_in).
Tensor KaimingNormal(std::vector<int64_t> shape, int64_t fan_in, Rng& rng);

// Uniform in +-sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(std::vector<int64_t> shape, int64_t fan_in, int64_t fan_out, Rng& rng);

}  // namespace egeria

#endif  // EGERIA_SRC_NN_INIT_H_
