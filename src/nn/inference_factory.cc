// Default (float32) InferenceFactory: produces plain deep copies of trainable layers.
// The int8 / fp16 factories in src/quant override these hooks.
//
// Also home of CloneAtPrecision, the frozen-layer forward substitution hook:
// it maps a precision tag to the matching factory so frozen-prefix stages (and
// reference models) run through the mixed-precision packed GEMM kernels.
#include <memory>

#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/quant/quantized_modules.h"
#include "src/util/rng.h"

namespace egeria {

std::unique_ptr<Module> InferenceFactory::MakeLinear(const Linear& src) const {
  Rng rng(0);  // Weights are overwritten below; init values are irrelevant.
  auto clone = std::make_unique<Linear>(src.name(), src.in_features(), src.out_features(),
                                        rng, src.has_bias());
  clone->mutable_weight().value = src.weight().value.Clone();
  if (src.has_bias()) {
    clone->mutable_bias().value = src.bias().value.Clone();
  }
  clone->SetTraining(false);
  return clone;
}

std::unique_ptr<Module> InferenceFactory::MakeConv2d(const Conv2d& src) const {
  Rng rng(0);
  auto clone = std::make_unique<Conv2d>(src.name(), src.in_channels(), src.out_channels(),
                                        src.geom().kernel_h, rng, src.geom().stride,
                                        src.geom().pad, src.geom().dilation, src.has_bias());
  clone->mutable_weight().value = src.weight().value.Clone();
  if (src.has_bias()) {
    clone->mutable_bias().value = src.bias().value.Clone();
  }
  clone->SetTraining(false);
  return clone;
}

std::unique_ptr<Module> InferenceFactory::MakeDepthwiseConv2d(
    const DepthwiseConv2d& src) const {
  Rng rng(0);
  auto clone = std::make_unique<DepthwiseConv2d>(src.name(), src.channels(),
                                                 src.geom().kernel_h, rng,
                                                 src.geom().stride, src.geom().pad);
  clone->mutable_weight().value = src.weight().value.Clone();
  clone->SetTraining(false);
  return clone;
}

std::unique_ptr<Module> CloneAtPrecision(const Module& stage, Precision p) {
  // Dynamic quantization mode: per-batch activation scales need no observer
  // calibration, which a frozen stage swapped mid-training could not get.
  const auto factory = MakeInferenceFactory(p, QuantMode::kDynamic);
  return stage.CloneForInference(*factory);
}

}  // namespace egeria
