// Batch normalization over NCHW feature maps.
//
// Freezing interaction (paper S4.3): when a BatchNorm layer is inside the frozen
// prefix, Egeria switches it to inference mode — "using the dataset statistics to
// normalize the input rather than the specific batch" — so that the layer's output
// depends only on its input and cached activations stay valid. SetFrozen(true) here
// does exactly that; the running statistics stop updating and Forward normalizes with
// them regardless of training mode.
#ifndef EGERIA_SRC_NN_BATCHNORM_H_
#define EGERIA_SRC_NN_BATCHNORM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/module.h"

namespace egeria {

class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::string name, int64_t channels, float momentum = 0.1F,
              float eps = 1e-5F);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::vector<std::pair<std::string, Tensor*>> LocalStateTensors() override {
    return {{"running_mean", &running_mean_}, {"running_var", &running_var_}};
  }
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;
  void CopyStateFrom(const Module& other) override;

  int64_t channels() const { return channels_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  bool UseBatchStats() const { return training_ && !frozen_; }

  int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Backward caches (batch-stats path).
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // [c]
  // Backward cache (running-stats path): inv_std from running_var.
  bool used_batch_stats_ = false;
  int64_t cached_b_ = 0;
  int64_t cached_h_ = 0;
  int64_t cached_w_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_BATCHNORM_H_
