// Token embedding lookup: input [b, t] of token ids (stored as floats) -> [b, t, d].
// Optionally scales by sqrt(d) (Transformer convention) and adds fixed sinusoidal
// positional encodings.
#ifndef EGERIA_SRC_NN_EMBEDDING_H_
#define EGERIA_SRC_NN_EMBEDDING_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

class Embedding : public Module {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, Rng& rng,
            bool scale_by_sqrt_dim = false, bool add_positional = false,
            int64_t max_len = 512);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }
  Parameter& mutable_weight() { return weight_; }

 private:
  int64_t vocab_;
  int64_t dim_;
  bool scale_;
  bool positional_;
  Parameter weight_;   // [vocab, dim]
  Tensor pos_table_;   // [max_len, dim]
  Tensor cached_ids_;  // [b, t]
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_EMBEDDING_H_
