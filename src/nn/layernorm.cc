#include "src/nn/layernorm.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

LayerNorm::LayerNorm(std::string name, int64_t dim, float eps)
    : Module(std::move(name)), dim_(dim), eps_(eps) {
  gamma_ = Parameter(name_ + ".gamma", Tensor::Ones({dim}));
  beta_ = Parameter(name_ + ".beta", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& input) {
  EGERIA_CHECK_MSG(input.Size(-1) == dim_, name_ + ": dim mismatch");
  const int64_t rows = input.NumEl() / dim_;
  Tensor out(input.Shape());
  cached_xhat_ = Tensor(input.Shape());
  cached_inv_std_ = Tensor({rows});
  const float* gp = gamma_.value.Data();
  const float* bp = beta_.value.Data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* x = input.Data() + r * dim_;
    float* xh = cached_xhat_.Data() + r * dim_;
    float* y = out.Data() + r * dim_;
    double mean = 0.0;
    for (int64_t i = 0; i < dim_; ++i) {
      mean += x[i];
    }
    mean /= static_cast<double>(dim_);
    double var = 0.0;
    for (int64_t i = 0; i < dim_; ++i) {
      const double d = x[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim_);
    const float inv_std = 1.0F / std::sqrt(static_cast<float>(var) + eps_);
    cached_inv_std_.At(r) = inv_std;
    for (int64_t i = 0; i < dim_; ++i) {
      const float xhat = (x[i] - static_cast<float>(mean)) * inv_std;
      xh[i] = xhat;
      y[i] = gp[i] * xhat + bp[i];
    }
  }
  return out;
}

Tensor LayerNorm::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_xhat_.Defined(), name_ + ": Backward without Forward");
  const int64_t rows = grad_output.NumEl() / dim_;
  EGERIA_CHECK(rows == cached_inv_std_.NumEl());
  Tensor grad_in(grad_output.Shape());
  const float* gp = gamma_.value.Data();
  float* dg = gamma_.grad.Data();
  float* db = beta_.grad.Data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* dy = grad_output.Data() + r * dim_;
    const float* xh = cached_xhat_.Data() + r * dim_;
    float* dx = grad_in.Data() + r * dim_;
    const float inv_std = cached_inv_std_.At(r);
    double sum_dyg = 0.0;
    double sum_dyg_xhat = 0.0;
    for (int64_t i = 0; i < dim_; ++i) {
      const double dyg = static_cast<double>(dy[i]) * gp[i];
      sum_dyg += dyg;
      sum_dyg_xhat += dyg * xh[i];
      dg[i] += dy[i] * xh[i];
      db[i] += dy[i];
    }
    const float mean_dyg = static_cast<float>(sum_dyg / static_cast<double>(dim_));
    const float mean_dyg_xhat = static_cast<float>(sum_dyg_xhat / static_cast<double>(dim_));
    for (int64_t i = 0; i < dim_; ++i) {
      dx[i] = inv_std * (dy[i] * gp[i] - mean_dyg - xh[i] * mean_dyg_xhat);
    }
  }
  return grad_in;
}

std::vector<Parameter*> LayerNorm::LocalParams() { return {&gamma_, &beta_}; }

std::unique_ptr<Module> LayerNorm::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto clone = std::make_unique<LayerNorm>(name_, dim_, eps_);
  clone->gamma_.value = gamma_.value.Clone();
  clone->beta_.value = beta_.value.Clone();
  clone->SetTraining(false);
  return clone;
}

}  // namespace egeria
