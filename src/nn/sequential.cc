#include "src/nn/sequential.h"

#include "src/util/logging.h"

namespace egeria {

Sequential* Sequential::Add(std::unique_ptr<Module> module) {
  EGERIA_CHECK(module != nullptr);
  modules_.push_back(std::move(module));
  return this;
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& m : modules_) {
    x = m->Forward(x);
  }
  return x;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Module*> Sequential::Children() {
  std::vector<Module*> out;
  out.reserve(modules_.size());
  for (auto& m : modules_) {
    out.push_back(m.get());
  }
  return out;
}

std::unique_ptr<Module> Sequential::CloneForInference(const InferenceFactory& factory) const {
  auto clone = std::make_unique<Sequential>(name_);
  for (const auto& m : modules_) {
    clone->Add(m->CloneForInference(factory));
  }
  clone->SetTraining(false);
  return clone;
}

std::vector<std::unique_ptr<Module>> Sequential::ReleaseModules() {
  return std::move(modules_);
}

}  // namespace egeria
