// Elementwise activation modules: ReLU, ReLU6 (MobileNetV2), GeLU (Transformers),
// Sigmoid and Tanh. Each caches what its derivative needs.
#ifndef EGERIA_SRC_NN_ACTIVATIONS_H_
#define EGERIA_SRC_NN_ACTIVATIONS_H_

#include <memory>
#include <string>

#include "src/nn/module.h"

namespace egeria {

class ReLU : public Module {
 public:
  explicit ReLU(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  Tensor cached_input_;
};

class ReLU6 : public Module {
 public:
  explicit ReLU6(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  Tensor cached_input_;
};

// GeLU with the tanh approximation (as used by BERT/Transformer implementations).
class GeLU : public Module {
 public:
  explicit GeLU(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  Tensor cached_input_;
};

class Sigmoid : public Module {
 public:
  explicit Sigmoid(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  Tensor cached_output_;
};

class Tanh : public Module {
 public:
  explicit Tanh(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  Tensor cached_output_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_ACTIVATIONS_H_
