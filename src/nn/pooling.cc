#include "src/nn/pooling.h"

#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

MaxPool2d::MaxPool2d(std::string name, int64_t kernel, int64_t stride)
    : Module(std::move(name)), kernel_(kernel), stride_(stride) {}

Tensor MaxPool2d::Forward(const Tensor& input) {
  in_h_ = input.Size(2);
  in_w_ = input.Size(3);
  auto [out, argmax] = MaxPool2dForward(input, kernel_, stride_);
  if (training_) {
    cached_argmax_ = argmax;
  }
  return out;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_argmax_.Defined(), name_ + ": Backward without Forward");
  return MaxPool2dBackward(grad_output, cached_argmax_, in_h_, in_w_);
}

std::unique_ptr<Module> MaxPool2d::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<MaxPool2d>(name_, kernel_, stride_);
  m->SetTraining(false);
  return m;
}

AvgPool2d::AvgPool2d(std::string name, int64_t kernel, int64_t stride)
    : Module(std::move(name)), kernel_(kernel), stride_(stride) {}

Tensor AvgPool2d::Forward(const Tensor& input) {
  in_h_ = input.Size(2);
  in_w_ = input.Size(3);
  return AvgPool2dForward(input, kernel_, stride_);
}

Tensor AvgPool2d::Backward(const Tensor& grad_output) {
  return AvgPool2dBackward(grad_output, kernel_, stride_, in_h_, in_w_);
}

std::unique_ptr<Module> AvgPool2d::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<AvgPool2d>(name_, kernel_, stride_);
  m->SetTraining(false);
  return m;
}

Tensor GlobalAvgPool::Forward(const Tensor& input) {
  in_h_ = input.Size(2);
  in_w_ = input.Size(3);
  return GlobalAvgPoolForward(input);
}

Tensor GlobalAvgPool::Backward(const Tensor& grad_output) {
  return GlobalAvgPoolBackward(grad_output, in_h_, in_w_);
}

std::unique_ptr<Module> GlobalAvgPool::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<GlobalAvgPool>(name_);
  m->SetTraining(false);
  return m;
}

Tensor Flatten::Forward(const Tensor& input) {
  input_shape_ = input.Shape();
  return input.Reshape({input.Size(0), -1});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshape(input_shape_);
}

std::unique_ptr<Module> Flatten::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<Flatten>(name_);
  m->SetTraining(false);
  return m;
}

Upsample::Upsample(std::string name, int64_t out_h, int64_t out_w)
    : Module(std::move(name)), out_h_(out_h), out_w_(out_w) {}

Tensor Upsample::Forward(const Tensor& input) {
  in_h_ = input.Size(2);
  in_w_ = input.Size(3);
  return BilinearUpsampleForward(input, out_h_, out_w_);
}

Tensor Upsample::Backward(const Tensor& grad_output) {
  return BilinearUpsampleBackward(grad_output, in_h_, in_w_);
}

std::unique_ptr<Module> Upsample::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;
  auto m = std::make_unique<Upsample>(name_, out_h_, out_w_);
  m->SetTraining(false);
  return m;
}

}  // namespace egeria
