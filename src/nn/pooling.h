// Pooling modules (max / average / global-average) over NCHW maps, plus Flatten and a
// bilinear Upsample module (DeepLab head).
#ifndef EGERIA_SRC_NN_POOLING_H_
#define EGERIA_SRC_NN_POOLING_H_

#include <memory>
#include <string>

#include "src/nn/module.h"

namespace egeria {

class MaxPool2d : public Module {
 public:
  MaxPool2d(std::string name, int64_t kernel, int64_t stride);
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  int64_t kernel_;
  int64_t stride_;
  Tensor cached_argmax_;
  int64_t in_h_ = 0;
  int64_t in_w_ = 0;
};

class AvgPool2d : public Module {
 public:
  AvgPool2d(std::string name, int64_t kernel, int64_t stride);
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  int64_t kernel_;
  int64_t stride_;
  int64_t in_h_ = 0;
  int64_t in_w_ = 0;
};

// [b,c,h,w] -> [b,c].
class GlobalAvgPool : public Module {
 public:
  explicit GlobalAvgPool(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  int64_t in_h_ = 0;
  int64_t in_w_ = 0;
};

// [b,c,h,w] -> [b, c*h*w].
class Flatten : public Module {
 public:
  explicit Flatten(std::string name) : Module(std::move(name)) {}
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  std::vector<int64_t> input_shape_;
};

// Bilinear upsample to a fixed output size.
class Upsample : public Module {
 public:
  Upsample(std::string name, int64_t out_h, int64_t out_w);
  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  int64_t out_h_;
  int64_t out_w_;
  int64_t in_h_ = 0;
  int64_t in_w_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_POOLING_H_
