// Layer-graph NN framework with explicit per-module Forward/Backward.
//
// Why not tape-based autograd: Egeria's mechanisms are all *layer-structural* — it
// hooks intermediate activations at module boundaries, stops backpropagation at the
// frontmost active module, excludes frozen parameters from the optimizer and from
// gradient synchronization, and swaps frozen BatchNorm layers to inference mode
// (paper S4.2-S4.3). An explicit layer chain exposes each of those hooks directly,
// which is exactly the role the paper's forward hooks / requires_grad plumbing plays
// in PyTorch.
//
// Contract: Forward(x) caches whatever Backward needs; Backward(grad_out) accumulates
// parameter gradients (into Parameter::grad) and returns the gradient w.r.t. the
// module input. Backward must be preceded by a matching Forward in training mode.
#ifndef EGERIA_SRC_NN_MODULE_H_
#define EGERIA_SRC_NN_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/tensor.h"

namespace egeria {

// Numeric precision for reference-model clones (paper S4.1.3, Table 2).
enum class Precision { kFloat32, kFloat16, kInt8 };

std::string PrecisionName(Precision p);

// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v) : name(std::move(n)), value(std::move(v)) {
    grad = Tensor::Zeros(value.Shape());
  }
};

class Module;

// Maps trainable layers to their inference-time replacements when cloning a model
// into a reference model. The base factory produces float32 copies; the int8/fp16
// factories in src/quant substitute quantized kernels for Linear/Conv layers.
class InferenceFactory {
 public:
  virtual ~InferenceFactory() = default;
  virtual std::unique_ptr<Module> MakeLinear(const class Linear& src) const;
  virtual std::unique_ptr<Module> MakeConv2d(const class Conv2d& src) const;
  virtual std::unique_ptr<Module> MakeDepthwiseConv2d(const class DepthwiseConv2d& src) const;
  virtual Precision precision() const { return Precision::kFloat32; }
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual Tensor Forward(const Tensor& input) = 0;
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  // Parameters owned directly by this module (not by children).
  virtual std::vector<Parameter*> LocalParams() { return {}; }
  // Non-parameter tensors that are part of the module's persistent training
  // state (BatchNorm running statistics). CopyStateFrom already replicates
  // them between live models; this hook is what lets the checkpoint subsystem
  // persist them to disk alongside parameters. Names must be stable and
  // unique within the module.
  virtual std::vector<std::pair<std::string, Tensor*>> LocalStateTensors() {
    return {};
  }
  // Direct submodules. Used for recursive traversal (params, modes).
  virtual std::vector<Module*> Children() { return {}; }

  // All parameters in the subtree, depth-first.
  std::vector<Parameter*> Parameters();
  int64_t ParamCount();
  void ZeroGrad();

  // Training vs inference mode (dropout, batchnorm). Recurses into children.
  virtual void SetTraining(bool training);
  bool training() const { return training_; }

  // Freezing marker. A frozen module's parameters are excluded from optimization and
  // synchronization; BatchNorm additionally switches to running statistics so that
  // frozen-prefix activations are input-deterministic (cache-compatible, S4.3).
  virtual void SetFrozen(bool frozen);
  bool frozen() const { return frozen_; }

  // True when Forward draws from a random stream in the module's CURRENT mode
  // (Dropout in training, unfrozen mode). The frozen-feature store refuses to
  // serve a prefix containing any such module: its boundary output is not a
  // pure function of the input. Freezing or eval mode turns the stochastic
  // layers here into no-ops, so a properly frozen prefix always reports false.
  virtual bool ForwardIsStochastic() const { return false; }

  // Builds an inference-only deep copy of this module with the factory deciding the
  // kernel for each leaf (float clone, int8, fp16). Used to generate the reference
  // model from a training snapshot (S4.1.3).
  virtual std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const = 0;

  // Copies parameter *values* (and normalization statistics) from a module with the
  // same architecture. Used to refresh reference snapshots and to replicate models
  // across data-parallel workers.
  virtual void CopyStateFrom(const Module& other);

  const std::string& name() const { return name_; }

 protected:
  void CollectParams(std::vector<Parameter*>& out);

  std::string name_;
  bool training_ = true;
  bool frozen_ = false;
};

// Copies values between identically-shaped parameter lists.
void CopyParamValues(const std::vector<Parameter*>& dst, const std::vector<Parameter*>& src);

// Builds an inference-only deep copy of `stage` at the given precision: fp32
// clones plainly; fp16/int8 substitute the reduced-precision kernels from
// src/quant (int8 with dynamic activation scales, so no calibration pass is
// required). Used for frozen-prefix forward substitution: a frozen stage's
// forward is input-deterministic (dropout off, BatchNorm on running stats) and
// its parameters no longer change, so it can run through the same
// half/quarter-bandwidth kernels as the reference model.
std::unique_ptr<Module> CloneAtPrecision(const Module& stage, Precision p);

}  // namespace egeria

#endif  // EGERIA_SRC_NN_MODULE_H_
