#include "src/nn/batchnorm.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

BatchNorm2d::BatchNorm2d(std::string name, int64_t channels, float momentum, float eps)
    : Module(std::move(name)), channels_(channels), momentum_(momentum), eps_(eps) {
  gamma_ = Parameter(name_ + ".gamma", Tensor::Ones({channels}));
  beta_ = Parameter(name_ + ".beta", Tensor::Zeros({channels}));
  running_mean_ = Tensor::Zeros({channels});
  running_var_ = Tensor::Ones({channels});
}

Tensor BatchNorm2d::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 4 && input.Size(1) == channels_);
  const int64_t b = input.Size(0);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  const int64_t hw = h * w;
  const int64_t count = b * hw;
  cached_b_ = b;
  cached_h_ = h;
  cached_w_ = w;

  Tensor out(input.Shape());
  used_batch_stats_ = UseBatchStats();
  cached_inv_std_ = Tensor({channels_});

  if (used_batch_stats_) {
    cached_xhat_ = Tensor(input.Shape());
    for (int64_t c = 0; c < channels_; ++c) {
      double mean = 0.0;
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* plane = input.Data() + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          mean += plane[i];
        }
      }
      mean /= static_cast<double>(count);
      double var = 0.0;
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* plane = input.Data() + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const double d = plane[i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      const float inv_std = 1.0F / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_.At(c) = inv_std;
      running_mean_.At(c) =
          (1.0F - momentum_) * running_mean_.At(c) + momentum_ * static_cast<float>(mean);
      running_var_.At(c) =
          (1.0F - momentum_) * running_var_.At(c) + momentum_ * static_cast<float>(var);
      const float g = gamma_.value.At(c);
      const float bt = beta_.value.At(c);
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* plane = input.Data() + (bi * channels_ + c) * hw;
        float* xh = cached_xhat_.Data() + (bi * channels_ + c) * hw;
        float* op = out.Data() + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          const float xhat = (plane[i] - static_cast<float>(mean)) * inv_std;
          xh[i] = xhat;
          op[i] = g * xhat + bt;
        }
      }
    }
  } else {
    // Inference / frozen path: running statistics. Output is a pure function of the
    // input, which makes frozen-prefix activations cacheable.
    for (int64_t c = 0; c < channels_; ++c) {
      const float mean = running_mean_.At(c);
      const float inv_std = 1.0F / std::sqrt(running_var_.At(c) + eps_);
      cached_inv_std_.At(c) = inv_std;
      const float g = gamma_.value.At(c);
      const float bt = beta_.value.At(c);
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* plane = input.Data() + (bi * channels_ + c) * hw;
        float* op = out.Data() + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          op[i] = g * (plane[i] - mean) * inv_std + bt;
        }
      }
    }
    if (training_) {
      // xhat is still needed if Backward gets called on a running-stats forward.
      cached_xhat_ = Tensor(input.Shape());
      for (int64_t c = 0; c < channels_; ++c) {
        const float mean = running_mean_.At(c);
        const float inv_std = cached_inv_std_.At(c);
        for (int64_t bi = 0; bi < b; ++bi) {
          const float* plane = input.Data() + (bi * channels_ + c) * hw;
          float* xh = cached_xhat_.Data() + (bi * channels_ + c) * hw;
          for (int64_t i = 0; i < hw; ++i) {
            xh[i] = (plane[i] - mean) * inv_std;
          }
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_xhat_.Defined(), name_ + ": Backward without Forward");
  const int64_t b = cached_b_;
  const int64_t hw = cached_h_ * cached_w_;
  const int64_t count = b * hw;
  Tensor grad_in(grad_output.Shape());

  for (int64_t c = 0; c < channels_; ++c) {
    const float inv_std = cached_inv_std_.At(c);
    const float g = gamma_.value.At(c);
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int64_t bi = 0; bi < b; ++bi) {
      const float* dy = grad_output.Data() + (bi * channels_ + c) * hw;
      const float* xh = cached_xhat_.Data() + (bi * channels_ + c) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad.At(c) += static_cast<float>(sum_dy_xhat);
    beta_.grad.At(c) += static_cast<float>(sum_dy);

    if (used_batch_stats_) {
      const float mean_dy = static_cast<float>(sum_dy / count);
      const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* dy = grad_output.Data() + (bi * channels_ + c) * hw;
        const float* xh = cached_xhat_.Data() + (bi * channels_ + c) * hw;
        float* dx = grad_in.Data() + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          dx[i] = g * inv_std * (dy[i] - mean_dy - xh[i] * mean_dy_xhat);
        }
      }
    } else {
      // Running-stats path: the normalization constants are independent of the batch,
      // so the layer is a per-channel affine map.
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* dy = grad_output.Data() + (bi * channels_ + c) * hw;
        float* dx = grad_in.Data() + (bi * channels_ + c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
          dx[i] = g * inv_std * dy[i];
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> BatchNorm2d::LocalParams() { return {&gamma_, &beta_}; }

std::unique_ptr<Module> BatchNorm2d::CloneForInference(const InferenceFactory& factory) const {
  (void)factory;  // BatchNorm stays float in every reference precision.
  auto clone = std::make_unique<BatchNorm2d>(name_, channels_, momentum_, eps_);
  clone->gamma_.value = gamma_.value.Clone();
  clone->beta_.value = beta_.value.Clone();
  clone->running_mean_ = running_mean_.Clone();
  clone->running_var_ = running_var_.Clone();
  clone->SetTraining(false);
  return clone;
}

void BatchNorm2d::CopyStateFrom(const Module& other) {
  const auto* src = dynamic_cast<const BatchNorm2d*>(&other);
  EGERIA_CHECK_MSG(src != nullptr, name_ + ": CopyStateFrom type mismatch");
  gamma_.value = src->gamma_.value.Clone();
  beta_.value = src->beta_.value.Clone();
  running_mean_ = src->running_mean_.Clone();
  running_var_ = src->running_var_.Clone();
}

}  // namespace egeria
