#include "src/nn/conv2d.h"

#include <vector>

#include "src/nn/init.h"
#include "src/tensor/compute_pool.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

ConvGeom MakeGeom(int64_t kernel, int64_t stride, int64_t pad, int64_t dilation) {
  ConvGeom g;
  g.kernel_h = kernel;
  g.kernel_w = kernel;
  g.stride = stride;
  g.pad = (pad >= 0) ? pad : dilation * (kernel - 1) / 2;
  g.dilation = dilation;
  return g;
}

}  // namespace

Conv2d::Conv2d(std::string name, int64_t in_channels, int64_t out_channels, int64_t kernel,
               Rng& rng, int64_t stride, int64_t pad, int64_t dilation, bool bias)
    : Module(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      geom_(MakeGeom(kernel, stride, pad, dilation)),
      has_bias_(bias) {
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = Parameter(name_ + ".weight", KaimingNormal({out_channels, fan_in}, fan_in, rng));
  if (has_bias_) {
    bias_ = Parameter(name_ + ".bias", Tensor::Zeros({out_channels}));
  }
}

Tensor Conv2d::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 4);
  EGERIA_CHECK_MSG(input.Size(1) == in_channels_, name_ + ": in_channels mismatch");
  batch_ = input.Size(0);
  in_h_ = input.Size(2);
  in_w_ = input.Size(3);
  const int64_t oh = geom_.OutH(in_h_);
  const int64_t ow = geom_.OutW(in_w_);
  Tensor cols = Im2Col(input, geom_);  // [b, ckk, ohow]
  if (training_) {
    cached_cols_ = cols;
  }
  const int64_t ckk = cols.Size(1);
  const int64_t ohow = oh * ow;
  Tensor out = Tensor::Uninitialized({batch_, out_channels_, oh, ow});
  const float* wp = weight_.value.Data();
  const float* colp = cols.Data();
  const float* bp = has_bias_ ? bias_.value.Data() : nullptr;
  float* op = out.Data();
  const auto run_item = [&](int64_t b) {
    float* oplane = op + b * out_channels_ * ohow;
    Gemm(wp, colp + b * ckk * ohow, oplane, out_channels_, ckk, ohow,
         /*trans_a=*/false, /*trans_b=*/false, /*accumulate=*/false);
    if (bp != nullptr) {
      for (int64_t c = 0; c < out_channels_; ++c) {
        float* plane = oplane + c * ohow;
        for (int64_t i = 0; i < ohow; ++i) {
          plane[i] += bp[c];
        }
      }
    }
  };
  // Batch items are independent; with few items, let each GEMM parallelize over
  // its own row blocks instead.
  if (batch_ >= ComputePoolThreads()) {
    ParallelFor(batch_, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t b = lo; b < hi; ++b) {
        run_item(b);
      }
    });
  } else {
    for (int64_t b = 0; b < batch_; ++b) {
      run_item(b);
    }
  }
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_cols_.Defined(), name_ + ": Backward without Forward");
  const int64_t oh = geom_.OutH(in_h_);
  const int64_t ow = geom_.OutW(in_w_);
  const int64_t ohow = oh * ow;
  const int64_t ckk = cached_cols_.Size(1);
  EGERIA_CHECK(grad_output.Size(0) == batch_ && grad_output.Size(1) == out_channels_ &&
               grad_output.Size(2) == oh && grad_output.Size(3) == ow);

  Tensor dcols = Tensor::Uninitialized({batch_, ckk, ohow});
  const float* dyp = grad_output.Data();
  const float* colp = cached_cols_.Data();
  const float* wp = weight_.value.Data();
  float* dcolp = dcols.Data();

  // Input gradient: dcols_b = W^T [ckk,oc] * dy_b [oc,ohow] — disjoint per item.
  const auto run_dcols = [&](int64_t b) {
    Gemm(wp, dyp + b * out_channels_ * ohow, dcolp + b * ckk * ohow, ckk,
         out_channels_, ohow, /*trans_a=*/true, /*trans_b=*/false,
         /*accumulate=*/false);
  };
  if (batch_ >= ComputePoolThreads()) {
    ParallelFor(batch_, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t b = lo; b < hi; ++b) {
        run_dcols(b);
      }
    });
  } else {
    for (int64_t b = 0; b < batch_; ++b) {
      run_dcols(b);
    }
  }

  // Weight/bias gradients sum over the batch. Each chunk of items accumulates
  // into private scratch; scratches fold into the parameter grads in chunk order,
  // so results are identical across runs at a fixed thread count.
  const int64_t nchunks = std::min<int64_t>(ComputePoolThreads(), batch_);
  const int64_t chunk = (batch_ + nchunks - 1) / nchunks;
  const int64_t dw_size = out_channels_ * ckk;
  std::vector<float> dw_scratch(static_cast<size_t>(nchunks * dw_size), 0.0F);
  std::vector<double> db_scratch(
      has_bias_ ? static_cast<size_t>(nchunks * out_channels_) : 0, 0.0);
  ParallelFor(nchunks, 1, [&](int64_t c_lo, int64_t c_hi) {
    for (int64_t ci = c_lo; ci < c_hi; ++ci) {
      float* dw = dw_scratch.data() + ci * dw_size;
      const int64_t b_end = std::min(batch_, (ci + 1) * chunk);
      for (int64_t b = ci * chunk; b < b_end; ++b) {
        const float* dy = dyp + b * out_channels_ * ohow;
        // dW_ci += dy_b [oc,ohow] * cols_b^T [ohow,ckk]; the chunk's first item
        // overwrites the scratch instead of accumulating into its zero-fill.
        Gemm(dy, colp + b * ckk * ohow, dw, out_channels_, ohow, ckk,
             /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/b != ci * chunk);
        if (has_bias_) {
          double* db = db_scratch.data() + ci * out_channels_;
          for (int64_t c = 0; c < out_channels_; ++c) {
            const float* plane = dy + c * ohow;
            double s = 0.0;
            for (int64_t i = 0; i < ohow; ++i) {
              s += plane[i];
            }
            db[c] += s;
          }
        }
      }
    }
  });
  float* dw_out = weight_.grad.Data();
  for (int64_t ci = 0; ci < nchunks; ++ci) {
    const float* dw = dw_scratch.data() + ci * dw_size;
    for (int64_t i = 0; i < dw_size; ++i) {
      dw_out[i] += dw[i];
    }
  }
  if (has_bias_) {
    float* db_out = bias_.grad.Data();
    for (int64_t ci = 0; ci < nchunks; ++ci) {
      const double* db = db_scratch.data() + ci * out_channels_;
      for (int64_t c = 0; c < out_channels_; ++c) {
        db_out[c] += static_cast<float>(db[c]);
      }
    }
  }
  return Col2Im(dcols, geom_, in_channels_, in_h_, in_w_);
}

std::vector<Parameter*> Conv2d::LocalParams() {
  std::vector<Parameter*> params{&weight_};
  if (has_bias_) {
    params.push_back(&bias_);
  }
  return params;
}

std::unique_ptr<Module> Conv2d::CloneForInference(const InferenceFactory& factory) const {
  return factory.MakeConv2d(*this);
}

DepthwiseConv2d::DepthwiseConv2d(std::string name, int64_t channels, int64_t kernel,
                                 Rng& rng, int64_t stride, int64_t pad)
    : Module(std::move(name)),
      channels_(channels),
      geom_(MakeGeom(kernel, stride, pad, /*dilation=*/1)) {
  const int64_t fan_in = kernel * kernel;
  weight_ = Parameter(name_ + ".weight", KaimingNormal({channels, fan_in}, fan_in, rng));
}

Tensor DepthwiseConv2d::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 4 && input.Size(1) == channels_);
  if (training_) {
    cached_input_ = input;
  }
  const int64_t b = input.Size(0);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  const int64_t oh = geom_.OutH(h);
  const int64_t ow = geom_.OutW(w);
  Tensor out({b, channels_, oh, ow});
  const int64_t k = geom_.kernel_h;
  // (batch, channel) planes are independent — shard the flattened pair index.
  ParallelFor(b * channels_, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t bc = lo; bc < hi; ++bc) {
      const int64_t bi = bc / channels_;
      const int64_t c = bc % channels_;
      const float* plane = input.Data() + (bi * channels_ + c) * h * w;
      const float* kern = weight_.value.Data() + c * k * k;
      float* oplane = out.Data() + (bi * channels_ + c) * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float s = 0.0F;
          for (int64_t ky = 0; ky < k; ++ky) {
            const int64_t iy = oy * geom_.stride - geom_.pad + ky;
            if (iy < 0 || iy >= h) {
              continue;
            }
            for (int64_t kx = 0; kx < k; ++kx) {
              const int64_t ix = ox * geom_.stride - geom_.pad + kx;
              if (ix < 0 || ix >= w) {
                continue;
              }
              s += kern[ky * k + kx] * plane[iy * w + ix];
            }
          }
          oplane[oy * ow + ox] = s;
        }
      }
    }
  });
  return out;
}

Tensor DepthwiseConv2d::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(cached_input_.Defined(), name_ + ": Backward without Forward");
  const int64_t b = cached_input_.Size(0);
  const int64_t h = cached_input_.Size(2);
  const int64_t w = cached_input_.Size(3);
  const int64_t oh = geom_.OutH(h);
  const int64_t ow = geom_.OutW(w);
  const int64_t k = geom_.kernel_h;
  Tensor grad_in({b, channels_, h, w});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* plane = cached_input_.Data() + (bi * channels_ + c) * h * w;
      const float* gplane = grad_output.Data() + (bi * channels_ + c) * oh * ow;
      const float* kern = weight_.value.Data() + c * k * k;
      float* dkern = weight_.grad.Data() + c * k * k;
      float* iplane = grad_in.Data() + (bi * channels_ + c) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = gplane[oy * ow + ox];
          if (g == 0.0F) {
            continue;
          }
          for (int64_t ky = 0; ky < k; ++ky) {
            const int64_t iy = oy * geom_.stride - geom_.pad + ky;
            if (iy < 0 || iy >= h) {
              continue;
            }
            for (int64_t kx = 0; kx < k; ++kx) {
              const int64_t ix = ox * geom_.stride - geom_.pad + kx;
              if (ix < 0 || ix >= w) {
                continue;
              }
              dkern[ky * k + kx] += g * plane[iy * w + ix];
              iplane[iy * w + ix] += g * kern[ky * k + kx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> DepthwiseConv2d::LocalParams() { return {&weight_}; }

std::unique_ptr<Module> DepthwiseConv2d::CloneForInference(
    const InferenceFactory& factory) const {
  return factory.MakeDepthwiseConv2d(*this);
}

}  // namespace egeria
