#include "src/nn/attention.h"

#include <algorithm>
#include <cmath>

#include "src/nn/linear.h"
#include "src/tensor/compute_pool.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

// [b, t, d] -> [b*h, t, dh].
Tensor SplitHeads(const Tensor& x, int64_t heads) {
  const int64_t b = x.Size(0);
  const int64_t t = x.Size(1);
  const int64_t d = x.Size(2);
  const int64_t dh = d / heads;
  Tensor y = SwapAxes12(x.Reshape({b, t, heads, dh}));  // [b, h, t, dh]
  return y.Reshape({b * heads, t, dh});
}

// [b*h, t, dh] -> [b, t, d].
Tensor MergeHeads(const Tensor& x, int64_t b, int64_t heads) {
  const int64_t t = x.Size(1);
  const int64_t dh = x.Size(2);
  Tensor y = SwapAxes12(x.Reshape({b, heads, t, dh}));  // [b, t, h, dh]
  return y.Reshape({b, t, heads * dh});
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(std::string name, int64_t dim, int64_t heads,
                                       Rng& rng)
    : name_(std::move(name)), dim_(dim), heads_(heads), dh_(dim / heads) {
  EGERIA_CHECK_MSG(dim % heads == 0, name_ + ": dim must divide heads");
  q_proj_ = std::make_unique<Linear>(name_ + ".q", dim, dim, rng);
  k_proj_ = std::make_unique<Linear>(name_ + ".k", dim, dim, rng);
  v_proj_ = std::make_unique<Linear>(name_ + ".v", dim, dim, rng);
  o_proj_ = std::make_unique<Linear>(name_ + ".o", dim, dim, rng);
}

MultiHeadAttention::MultiHeadAttention(std::string name, int64_t dim, int64_t heads)
    : name_(std::move(name)), dim_(dim), heads_(heads), dh_(dim / heads) {}

Tensor MultiHeadAttention::Forward(const Tensor& q_in, const Tensor& kv_in, bool causal) {
  EGERIA_CHECK(q_in.Dim() == 3 && kv_in.Dim() == 3);
  batch_ = q_in.Size(0);
  tq_ = q_in.Size(1);
  tk_ = kv_in.Size(1);

  Tensor q = SplitHeads(q_proj_->Forward(q_in), heads_);
  Tensor k = SplitHeads(k_proj_->Forward(kv_in), heads_);
  Tensor v = SplitHeads(v_proj_->Forward(kv_in), heads_);

  const float scale = 1.0F / std::sqrt(static_cast<float>(dh_));
  Tensor scores = BatchedMatMul(q, k, /*trans_b=*/true);
  scores.Scale_(scale);
  if (causal) {
    EGERIA_CHECK_MSG(tq_ == tk_, name_ + ": causal mask needs tq == tk");
    float* s = scores.Data();
    const int64_t bh = scores.Size(0);
    for (int64_t m = 0; m < bh; ++m) {
      for (int64_t i = 0; i < tq_; ++i) {
        for (int64_t j = i + 1; j < tk_; ++j) {
          s[(m * tq_ + i) * tk_ + j] = -1e9F;
        }
      }
    }
  }
  Tensor p = Softmax(scores);
  Tensor o = BatchedMatMul(p, v);  // [bh, tq, dh]

  if (training_) {
    q_ = q;
    k_ = k;
    v_ = v;
    p_ = p;
  }
  return o_proj_->Forward(MergeHeads(o, batch_, heads_));
}

std::pair<Tensor, Tensor> MultiHeadAttention::Backward(const Tensor& grad_output) {
  EGERIA_CHECK_MSG(p_.Defined(), name_ + ": Backward without Forward");
  const float scale = 1.0F / std::sqrt(static_cast<float>(dh_));

  Tensor do_merged = o_proj_->Backward(grad_output);           // [b, tq, d]
  Tensor dout = SplitHeads(do_merged, heads_);                 // [bh, tq, dh]
  Tensor dp = BatchedMatMul(dout, v_, /*trans_b=*/true);       // [bh, tq, tk]
  Tensor dv = BatchedMatMulTransA(p_, dout);                   // [bh, tk, dh]

  // Softmax backward row-wise: ds = p * (dp - sum(dp * p)); rows are independent.
  Tensor ds(dp.Shape());
  {
    const int64_t rows = dp.NumEl() / tk_;
    const float* pp = p_.Data();
    const float* dpp = dp.Data();
    float* dsp = ds.Data();
    ParallelFor(rows, 4096 / std::max<int64_t>(tk_, 1) + 1,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t r = lo; r < hi; ++r) {
                    const float* prow = pp + r * tk_;
                    const float* dprow = dpp + r * tk_;
                    float* dsrow = dsp + r * tk_;
                    double dot = 0.0;
                    for (int64_t j = 0; j < tk_; ++j) {
                      dot += static_cast<double>(prow[j]) * dprow[j];
                    }
                    for (int64_t j = 0; j < tk_; ++j) {
                      dsrow[j] = prow[j] * (dprow[j] - static_cast<float>(dot));
                    }
                  }
                });
  }
  ds.Scale_(scale);

  Tensor dq = BatchedMatMul(ds, k_);       // [bh, tq, dh]
  Tensor dk = BatchedMatMulTransA(ds, q_); // [bh, tk, dh]

  Tensor dq_in = q_proj_->Backward(MergeHeads(dq, batch_, heads_));
  Tensor dk_in = k_proj_->Backward(MergeHeads(dk, batch_, heads_));
  Tensor dv_in = v_proj_->Backward(MergeHeads(dv, batch_, heads_));
  dk_in.Add_(dv_in);
  return {dq_in, dk_in};
}

std::vector<Parameter*> MultiHeadAttention::Params() {
  std::vector<Parameter*> out;
  for (Module* m : {q_proj_.get(), k_proj_.get(), v_proj_.get(), o_proj_.get()}) {
    for (Parameter* p : m->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

void MultiHeadAttention::SetTraining(bool training) {
  training_ = training;
  for (Module* m : {q_proj_.get(), k_proj_.get(), v_proj_.get(), o_proj_.get()}) {
    m->SetTraining(training);
  }
}

std::unique_ptr<MultiHeadAttention> MultiHeadAttention::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone = std::unique_ptr<MultiHeadAttention>(
      new MultiHeadAttention(name_, dim_, heads_));
  clone->q_proj_ = q_proj_->CloneForInference(factory);
  clone->k_proj_ = k_proj_->CloneForInference(factory);
  clone->v_proj_ = v_proj_->CloneForInference(factory);
  clone->o_proj_ = o_proj_->CloneForInference(factory);
  clone->training_ = false;
  return clone;
}

}  // namespace egeria
