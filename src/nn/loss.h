// Task losses. Each returns the scalar loss and the gradient with respect to the
// logits, normalized by the number of contributing elements, ready to feed into
// Module::Backward / ChainModel::BackwardTo.
#ifndef EGERIA_SRC_NN_LOSS_H_
#define EGERIA_SRC_NN_LOSS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace egeria {

// Marks positions excluded from sequence losses (padding).
inline constexpr int kIgnoreLabel = -100;

struct LossResult {
  float loss = 0.0F;
  Tensor grad;  // same shape as the logits
};

// logits [n, classes]; labels size n. Optional label smoothing.
LossResult SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                               float label_smoothing = 0.0F);

// logits [b, t, vocab]; labels size b*t with kIgnoreLabel allowed.
LossResult SequenceCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                                float label_smoothing = 0.0F);

// logits [b, classes, h, w]; labels size b*h*w (per-pixel class ids, kIgnoreLabel ok).
LossResult PixelwiseCrossEntropy(const Tensor& logits, const std::vector<int>& labels);

// Span extraction (QA): logits [b, t, 2] (start/end); spans size b (start, end pairs).
LossResult SpanLoss(const Tensor& logits, const std::vector<std::pair<int, int>>& spans);

// Accuracy helpers used by validation loops.
double TopOneAccuracy(const Tensor& logits, const std::vector<int>& labels);
double PixelAccuracy(const Tensor& logits, const std::vector<int>& labels);
// Mean intersection-over-union over classes present in labels.
double MeanIoU(const Tensor& logits, const std::vector<int>& labels, int num_classes);
// Token-level prediction accuracy ignoring kIgnoreLabel.
double SequenceAccuracy(const Tensor& logits, const std::vector<int>& labels);
// exp(mean CE) over non-ignored positions.
double Perplexity(const Tensor& logits, const std::vector<int>& labels);
// Span overlap F1 (SQuAD-style, over token indices).
double SpanF1(const Tensor& logits, const std::vector<std::pair<int, int>>& spans);

}  // namespace egeria

#endif  // EGERIA_SRC_NN_LOSS_H_
