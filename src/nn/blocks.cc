#include "src/nn/blocks.h"

#include "src/nn/activations.h"
#include "src/nn/batchnorm.h"
#include "src/nn/conv2d.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

std::unique_ptr<Module> CloneOrNull(const std::unique_ptr<Module>& m,
                                    const InferenceFactory& factory) {
  return (m != nullptr) ? m->CloneForInference(factory) : nullptr;
}

}  // namespace

BasicResidualBlock::BasicResidualBlock(std::string name, int64_t in_channels,
                                       int64_t out_channels, int64_t stride, Rng& rng)
    : Module(std::move(name)) {
  conv1_ = std::make_unique<Conv2d>(name_ + ".conv1", in_channels, out_channels, 3, rng,
                                    stride);
  bn1_ = std::make_unique<BatchNorm2d>(name_ + ".bn1", out_channels);
  relu1_ = std::make_unique<ReLU>(name_ + ".relu1");
  conv2_ = std::make_unique<Conv2d>(name_ + ".conv2", out_channels, out_channels, 3, rng);
  bn2_ = std::make_unique<BatchNorm2d>(name_ + ".bn2", out_channels);
  relu_out_ = std::make_unique<ReLU>(name_ + ".relu_out");
  if (stride != 1 || in_channels != out_channels) {
    down_conv_ = std::make_unique<Conv2d>(name_ + ".down_conv", in_channels, out_channels,
                                          1, rng, stride, /*pad=*/0);
    down_bn_ = std::make_unique<BatchNorm2d>(name_ + ".down_bn", out_channels);
  }
}

Tensor BasicResidualBlock::Forward(const Tensor& input) {
  Tensor y =
      bn2_->Forward(conv2_->Forward(relu1_->Forward(bn1_->Forward(conv1_->Forward(input)))));
  Tensor shortcut =
      (down_conv_ != nullptr) ? down_bn_->Forward(down_conv_->Forward(input)) : input;
  y.Add_(shortcut);
  return relu_out_->Forward(y);
}

Tensor BasicResidualBlock::Backward(const Tensor& grad_output) {
  Tensor g = relu_out_->Backward(grad_output);
  Tensor g_main = conv1_->Backward(
      bn1_->Backward(relu1_->Backward(conv2_->Backward(bn2_->Backward(g)))));
  Tensor g_short =
      (down_conv_ != nullptr) ? down_conv_->Backward(down_bn_->Backward(g)) : g;
  g_main.Add_(g_short);
  return g_main;
}

std::vector<Module*> BasicResidualBlock::Children() {
  std::vector<Module*> out{conv1_.get(), bn1_.get(),  relu1_.get(),
                           conv2_.get(), bn2_.get(), relu_out_.get()};
  if (down_conv_ != nullptr) {
    out.push_back(down_conv_.get());
    out.push_back(down_bn_.get());
  }
  return out;
}

std::unique_ptr<Module> BasicResidualBlock::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone = std::unique_ptr<BasicResidualBlock>(new BasicResidualBlock(name_));
  clone->conv1_ = conv1_->CloneForInference(factory);
  clone->bn1_ = bn1_->CloneForInference(factory);
  clone->relu1_ = relu1_->CloneForInference(factory);
  clone->conv2_ = conv2_->CloneForInference(factory);
  clone->bn2_ = bn2_->CloneForInference(factory);
  clone->relu_out_ = relu_out_->CloneForInference(factory);
  clone->down_conv_ = CloneOrNull(down_conv_, factory);
  clone->down_bn_ = CloneOrNull(down_bn_, factory);
  clone->SetTraining(false);
  return clone;
}

BottleneckBlock::BottleneckBlock(std::string name, int64_t in_channels,
                                 int64_t out_channels, int64_t stride, Rng& rng)
    : Module(std::move(name)) {
  const int64_t mid = out_channels / 4;
  EGERIA_CHECK(mid > 0);
  conv1_ = std::make_unique<Conv2d>(name_ + ".conv1", in_channels, mid, 1, rng, 1, 0);
  bn1_ = std::make_unique<BatchNorm2d>(name_ + ".bn1", mid);
  relu1_ = std::make_unique<ReLU>(name_ + ".relu1");
  conv2_ = std::make_unique<Conv2d>(name_ + ".conv2", mid, mid, 3, rng, stride);
  bn2_ = std::make_unique<BatchNorm2d>(name_ + ".bn2", mid);
  relu2_ = std::make_unique<ReLU>(name_ + ".relu2");
  conv3_ = std::make_unique<Conv2d>(name_ + ".conv3", mid, out_channels, 1, rng, 1, 0);
  bn3_ = std::make_unique<BatchNorm2d>(name_ + ".bn3", out_channels);
  relu_out_ = std::make_unique<ReLU>(name_ + ".relu_out");
  if (stride != 1 || in_channels != out_channels) {
    down_conv_ = std::make_unique<Conv2d>(name_ + ".down_conv", in_channels, out_channels,
                                          1, rng, stride, 0);
    down_bn_ = std::make_unique<BatchNorm2d>(name_ + ".down_bn", out_channels);
  }
}

Tensor BottleneckBlock::Forward(const Tensor& input) {
  Tensor y = relu1_->Forward(bn1_->Forward(conv1_->Forward(input)));
  y = relu2_->Forward(bn2_->Forward(conv2_->Forward(y)));
  y = bn3_->Forward(conv3_->Forward(y));
  Tensor shortcut =
      (down_conv_ != nullptr) ? down_bn_->Forward(down_conv_->Forward(input)) : input;
  y.Add_(shortcut);
  return relu_out_->Forward(y);
}

Tensor BottleneckBlock::Backward(const Tensor& grad_output) {
  Tensor g = relu_out_->Backward(grad_output);
  Tensor g_main = conv3_->Backward(bn3_->Backward(g));
  g_main = relu2_->Backward(g_main);
  g_main = conv2_->Backward(bn2_->Backward(g_main));
  g_main = relu1_->Backward(g_main);
  g_main = conv1_->Backward(bn1_->Backward(g_main));
  Tensor g_short =
      (down_conv_ != nullptr) ? down_conv_->Backward(down_bn_->Backward(g)) : g;
  g_main.Add_(g_short);
  return g_main;
}

std::vector<Module*> BottleneckBlock::Children() {
  std::vector<Module*> out{conv1_.get(), bn1_.get(),  relu1_.get(), conv2_.get(),
                           bn2_.get(),   relu2_.get(), conv3_.get(), bn3_.get(),
                           relu_out_.get()};
  if (down_conv_ != nullptr) {
    out.push_back(down_conv_.get());
    out.push_back(down_bn_.get());
  }
  return out;
}

std::unique_ptr<Module> BottleneckBlock::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone = std::unique_ptr<BottleneckBlock>(new BottleneckBlock(name_));
  clone->conv1_ = conv1_->CloneForInference(factory);
  clone->bn1_ = bn1_->CloneForInference(factory);
  clone->relu1_ = relu1_->CloneForInference(factory);
  clone->conv2_ = conv2_->CloneForInference(factory);
  clone->bn2_ = bn2_->CloneForInference(factory);
  clone->relu2_ = relu2_->CloneForInference(factory);
  clone->conv3_ = conv3_->CloneForInference(factory);
  clone->bn3_ = bn3_->CloneForInference(factory);
  clone->relu_out_ = relu_out_->CloneForInference(factory);
  clone->down_conv_ = CloneOrNull(down_conv_, factory);
  clone->down_bn_ = CloneOrNull(down_bn_, factory);
  clone->SetTraining(false);
  return clone;
}

InvertedResidual::InvertedResidual(std::string name, int64_t in_channels,
                                   int64_t out_channels, int64_t stride,
                                   int64_t expand_ratio, Rng& rng)
    : Module(std::move(name)) {
  const int64_t hidden = in_channels * expand_ratio;
  use_residual_ = (stride == 1 && in_channels == out_channels);
  if (expand_ratio != 1) {
    expand_conv_ = std::make_unique<Conv2d>(name_ + ".expand", in_channels, hidden, 1, rng,
                                            1, 0);
    expand_bn_ = std::make_unique<BatchNorm2d>(name_ + ".expand_bn", hidden);
    expand_relu_ = std::make_unique<ReLU6>(name_ + ".expand_relu");
  }
  dw_conv_ = std::make_unique<DepthwiseConv2d>(name_ + ".dw", hidden, 3, rng, stride);
  dw_bn_ = std::make_unique<BatchNorm2d>(name_ + ".dw_bn", hidden);
  dw_relu_ = std::make_unique<ReLU6>(name_ + ".dw_relu");
  project_conv_ = std::make_unique<Conv2d>(name_ + ".project", hidden, out_channels, 1,
                                           rng, 1, 0);
  project_bn_ = std::make_unique<BatchNorm2d>(name_ + ".project_bn", out_channels);
}

Tensor InvertedResidual::Forward(const Tensor& input) {
  Tensor y = input;
  if (expand_conv_ != nullptr) {
    y = expand_relu_->Forward(expand_bn_->Forward(expand_conv_->Forward(y)));
  }
  y = dw_relu_->Forward(dw_bn_->Forward(dw_conv_->Forward(y)));
  y = project_bn_->Forward(project_conv_->Forward(y));
  if (use_residual_) {
    y.Add_(input);
  }
  return y;
}

Tensor InvertedResidual::Backward(const Tensor& grad_output) {
  Tensor g = project_conv_->Backward(project_bn_->Backward(grad_output));
  g = dw_relu_->Backward(g);
  g = dw_conv_->Backward(dw_bn_->Backward(g));
  if (expand_conv_ != nullptr) {
    g = expand_relu_->Backward(g);
    g = expand_conv_->Backward(expand_bn_->Backward(g));
  }
  if (use_residual_) {
    g = g.Add(grad_output);
  }
  return g;
}

std::vector<Module*> InvertedResidual::Children() {
  std::vector<Module*> out;
  if (expand_conv_ != nullptr) {
    out.push_back(expand_conv_.get());
    out.push_back(expand_bn_.get());
    out.push_back(expand_relu_.get());
  }
  out.push_back(dw_conv_.get());
  out.push_back(dw_bn_.get());
  out.push_back(dw_relu_.get());
  out.push_back(project_conv_.get());
  out.push_back(project_bn_.get());
  return out;
}

std::unique_ptr<Module> InvertedResidual::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone = std::unique_ptr<InvertedResidual>(new InvertedResidual(name_));
  clone->use_residual_ = use_residual_;
  clone->expand_conv_ = CloneOrNull(expand_conv_, factory);
  clone->expand_bn_ = CloneOrNull(expand_bn_, factory);
  clone->expand_relu_ = CloneOrNull(expand_relu_, factory);
  clone->dw_conv_ = dw_conv_->CloneForInference(factory);
  clone->dw_bn_ = dw_bn_->CloneForInference(factory);
  clone->dw_relu_ = dw_relu_->CloneForInference(factory);
  clone->project_conv_ = project_conv_->CloneForInference(factory);
  clone->project_bn_ = project_bn_->CloneForInference(factory);
  clone->SetTraining(false);
  return clone;
}

}  // namespace egeria
