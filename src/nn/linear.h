// Fully-connected layer: y = x W^T + b. Accepts [n, in] or [b, t, in] inputs (the
// leading dimensions are flattened for the matmul and restored afterwards).
#ifndef EGERIA_SRC_NN_LINEAR_H_
#define EGERIA_SRC_NN_LINEAR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

class Linear : public Module {
 public:
  Linear(std::string name, int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;

  std::vector<Parameter*> LocalParams() override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  bool has_bias() const { return has_bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Parameter& mutable_weight() { return weight_; }
  Parameter& mutable_bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor cached_input_;  // flattened [n, in]
  std::vector<int64_t> input_shape_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_NN_LINEAR_H_
