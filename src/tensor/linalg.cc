#include "src/tensor/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/logging.h"

namespace egeria {

void CenterColumns(Tensor& a) {
  EGERIA_CHECK(a.Dim() == 2);
  const int64_t n = a.Size(0);
  const int64_t p = a.Size(1);
  a.MakeUnique();
  float* d = a.Data();
  for (int64_t j = 0; j < p; ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      mean += d[i * p + j];
    }
    mean /= static_cast<double>(n);
    for (int64_t i = 0; i < n; ++i) {
      d[i * p + j] -= static_cast<float>(mean);
    }
  }
}

QrResult HouseholderQr(const Tensor& a) {
  EGERIA_CHECK(a.Dim() == 2);
  const int64_t n = a.Size(0);
  const int64_t p = a.Size(1);
  EGERIA_CHECK_MSG(n >= p, "HouseholderQr requires n >= p");

  // Work on a copy in double precision for stability.
  std::vector<double> r(static_cast<size_t>(n * p));
  for (int64_t i = 0; i < n * p; ++i) {
    r[static_cast<size_t>(i)] = a.Data()[i];
  }
  // Householder vectors stored per column.
  std::vector<std::vector<double>> vs;
  vs.reserve(static_cast<size_t>(p));

  for (int64_t k = 0; k < p; ++k) {
    // Build reflector for column k below the diagonal.
    double norm = 0.0;
    for (int64_t i = k; i < n; ++i) {
      norm += r[static_cast<size_t>(i * p + k)] * r[static_cast<size_t>(i * p + k)];
    }
    norm = std::sqrt(norm);
    std::vector<double> v(static_cast<size_t>(n), 0.0);
    const double akk = r[static_cast<size_t>(k * p + k)];
    const double alpha = (akk >= 0.0) ? -norm : norm;
    if (norm < 1e-14) {
      vs.push_back(std::move(v));  // Degenerate column: identity reflector.
      continue;
    }
    for (int64_t i = k; i < n; ++i) {
      v[static_cast<size_t>(i)] = r[static_cast<size_t>(i * p + k)];
    }
    v[static_cast<size_t>(k)] -= alpha;
    double vnorm = 0.0;
    for (int64_t i = k; i < n; ++i) {
      vnorm += v[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
    }
    vnorm = std::sqrt(vnorm);
    if (vnorm < 1e-14) {
      std::fill(v.begin(), v.end(), 0.0);
      vs.push_back(std::move(v));
      continue;
    }
    for (int64_t i = k; i < n; ++i) {
      v[static_cast<size_t>(i)] /= vnorm;
    }
    // Apply H = I - 2 v v^T to remaining columns of R.
    for (int64_t j = k; j < p; ++j) {
      double dot = 0.0;
      for (int64_t i = k; i < n; ++i) {
        dot += v[static_cast<size_t>(i)] * r[static_cast<size_t>(i * p + j)];
      }
      for (int64_t i = k; i < n; ++i) {
        r[static_cast<size_t>(i * p + j)] -= 2.0 * v[static_cast<size_t>(i)] * dot;
      }
    }
    vs.push_back(std::move(v));
  }

  // Form thin Q by applying reflectors (in reverse) to the first p identity columns.
  std::vector<double> q(static_cast<size_t>(n * p), 0.0);
  for (int64_t j = 0; j < p; ++j) {
    q[static_cast<size_t>(j * p + j)] = 1.0;
  }
  for (int64_t k = p - 1; k >= 0; --k) {
    const auto& v = vs[static_cast<size_t>(k)];
    for (int64_t j = 0; j < p; ++j) {
      double dot = 0.0;
      for (int64_t i = k; i < n; ++i) {
        dot += v[static_cast<size_t>(i)] * q[static_cast<size_t>(i * p + j)];
      }
      if (dot == 0.0) {
        continue;
      }
      for (int64_t i = k; i < n; ++i) {
        q[static_cast<size_t>(i * p + j)] -= 2.0 * v[static_cast<size_t>(i)] * dot;
      }
    }
  }

  QrResult out;
  out.q = Tensor({n, p});
  out.r = Tensor({p, p});
  for (int64_t i = 0; i < n * p; ++i) {
    out.q.Data()[i] = static_cast<float>(q[static_cast<size_t>(i)]);
  }
  for (int64_t i = 0; i < p; ++i) {
    for (int64_t j = 0; j < p; ++j) {
      out.r.At(i, j) = (j >= i) ? static_cast<float>(r[static_cast<size_t>(i * p + j)]) : 0.0F;
    }
  }
  return out;
}

SvdResult JacobiSvd(const Tensor& a) {
  EGERIA_CHECK(a.Dim() == 2);
  const int64_t m = a.Size(0);
  const int64_t n = a.Size(1);

  // Work matrix W = A (copied to double), V accumulates rotations. One-sided Jacobi
  // orthogonalizes the columns of W; afterwards W = U * diag(s), A = U diag(s) V^T.
  std::vector<double> w(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m * n; ++i) {
    w[static_cast<size_t>(i)] = a.Data()[i];
  }
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i * n + i)] = 1.0;
  }

  const int kMaxSweeps = 60;
  const double kTol = 1e-12;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool converged = true;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double app = 0.0;
        double aqq = 0.0;
        double apq = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          const double wp = w[static_cast<size_t>(i * n + p)];
          const double wq = w[static_cast<size_t>(i * n + q)];
          app += wp * wp;
          aqq += wq * wq;
          apq += wp * wq;
        }
        if (std::abs(apq) <= kTol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0) ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                      : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          const double wp = w[static_cast<size_t>(i * n + p)];
          const double wq = w[static_cast<size_t>(i * n + q)];
          w[static_cast<size_t>(i * n + p)] = c * wp - s * wq;
          w[static_cast<size_t>(i * n + q)] = s * wp + c * wq;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double vp = v[static_cast<size_t>(i * n + p)];
          const double vq = v[static_cast<size_t>(i * n + q)];
          v[static_cast<size_t>(i * n + p)] = c * vp - s * vq;
          v[static_cast<size_t>(i * n + q)] = s * vp + c * vq;
        }
      }
    }
    if (converged) {
      break;
    }
  }

  // Singular values = column norms of W; sort descending.
  const int64_t r = std::min(m, n);
  std::vector<double> norms(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double s2 = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      s2 += w[static_cast<size_t>(i * n + j)] * w[static_cast<size_t>(i * n + j)];
    }
    norms[static_cast<size_t>(j)] = std::sqrt(s2);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return norms[static_cast<size_t>(x)] > norms[static_cast<size_t>(y)]; });

  SvdResult out;
  out.u = Tensor({m, r});
  out.v = Tensor({n, r});
  out.s.resize(static_cast<size_t>(r));
  for (int64_t k = 0; k < r; ++k) {
    const int64_t j = order[static_cast<size_t>(k)];
    const double sv = norms[static_cast<size_t>(j)];
    out.s[static_cast<size_t>(k)] = static_cast<float>(sv);
    const double inv = (sv > 1e-14) ? 1.0 / sv : 0.0;
    for (int64_t i = 0; i < m; ++i) {
      out.u.At(i, k) = static_cast<float>(w[static_cast<size_t>(i * n + j)] * inv);
    }
    for (int64_t i = 0; i < n; ++i) {
      out.v.At(i, k) = static_cast<float>(v[static_cast<size_t>(i * n + j)]);
    }
  }
  return out;
}

}  // namespace egeria
