// Dense N-dimensional float32 tensor with shared, contiguous storage.
//
// This is the numeric substrate for the whole reproduction: the NN framework
// (src/nn), quantized inference (src/quant), and the similarity metrics (src/metrics)
// all operate on Tensor. Design choices:
//  - float32 only; quantized kernels keep their own int8 buffers and exchange Tensor
//    at module boundaries (that is where Egeria hooks activations).
//  - copy is cheap (shared storage); Clone() deep-copies. Reshape shares storage.
//  - no strided views: every tensor is contiguous, which keeps kernels simple and is
//    sufficient because all layouts used here are NCHW / [B,T,D] / [N,D].
#ifndef EGERIA_SRC_TENSOR_TENSOR_H_
#define EGERIA_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace egeria {

class Rng;

class Tensor {
 public:
  // Empty tensor (numel 0, no storage).
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  // Tensor with uninitialized contents — for kernel outputs that are fully
  // overwritten before being read (GEMM results, im2col buffers). Reading an
  // element before writing it is undefined.
  static Tensor Uninitialized(std::vector<int64_t> shape);
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> values);
  // Gaussian(0, stddev) init.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float stddev = 1.0F);
  // Uniform[lo, hi) init.
  static Tensor Rand(std::vector<int64_t> shape, Rng& rng, float lo = 0.0F, float hi = 1.0F);

  bool Defined() const { return storage_ != nullptr; }
  int64_t NumEl() const { return numel_; }
  int Dim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int64_t>& Shape() const { return shape_; }
  int64_t Size(int d) const;
  std::string ShapeStr() const;
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  float* Data();
  const float* Data() const;

  // Element access for up to 4-d tensors (row-major).
  float& At(int64_t i);
  float At(int64_t i) const;
  float& At(int64_t i, int64_t j);
  float At(int64_t i, int64_t j) const;
  float& At(int64_t i, int64_t j, int64_t k);
  float At(int64_t i, int64_t j, int64_t k) const;
  float& At(int64_t i, int64_t j, int64_t k, int64_t l);
  float At(int64_t i, int64_t j, int64_t k, int64_t l) const;

  // Deep copy.
  Tensor Clone() const;
  // New tensor sharing storage with a different shape (numel must match).
  Tensor Reshape(std::vector<int64_t> shape) const;
  // Ensures this tensor is the sole owner of its storage (copy-on-write helper).
  void MakeUnique();

  // In-place arithmetic. All shape-checked.
  Tensor& Add_(const Tensor& other);
  Tensor& Sub_(const Tensor& other);
  Tensor& Mul_(const Tensor& other);
  Tensor& AddScaled_(const Tensor& other, float alpha);  // this += alpha * other
  Tensor& Scale_(float alpha);
  Tensor& AddScalar_(float alpha);
  Tensor& Fill_(float value);
  Tensor& Zero_();

  // Out-of-place arithmetic.
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;
  Tensor Scale(float alpha) const;

  // Reductions.
  float Sum() const;
  float Mean() const;
  float AbsMax() const;
  float Min() const;
  float Max() const;
  float L2Norm() const;
  float Dot(const Tensor& other) const;

  // Debug helper: true if any element is NaN or Inf.
  bool HasNonFinite() const;

 private:
  // Raw array rather than std::vector so Uninitialized() can skip the zero-fill
  // (vector's resize value-initializes unconditionally).
  std::shared_ptr<float[]> storage_;
  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_TENSOR_H_
