#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/tensor/compute_pool.h"
#include "src/util/logging.h"

namespace egeria {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  EGERIA_CHECK(a.Dim() == 2 && b.Dim() == 2);
  const int64_t m = a.Size(0);
  const int64_t k = a.Size(1);
  const int64_t n = b.Size(1);
  EGERIA_CHECK_MSG(b.Size(0) == k, "MatMul inner dim mismatch");
  Tensor c = Tensor::Uninitialized({m, n});
  Gemm(a.Data(), b.Data(), c.Data(), m, k, n, /*trans_a=*/false, /*trans_b=*/false,
       /*accumulate=*/false);
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  EGERIA_CHECK(a.Dim() == 2 && b.Dim() == 2);
  const int64_t k = a.Size(0);
  const int64_t m = a.Size(1);
  const int64_t n = b.Size(1);
  EGERIA_CHECK_MSG(b.Size(0) == k, "MatMulTransA inner dim mismatch");
  Tensor c = Tensor::Uninitialized({m, n});
  Gemm(a.Data(), b.Data(), c.Data(), m, k, n, /*trans_a=*/true, /*trans_b=*/false,
       /*accumulate=*/false);
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  EGERIA_CHECK(a.Dim() == 2 && b.Dim() == 2);
  const int64_t m = a.Size(0);
  const int64_t k = a.Size(1);
  const int64_t n = b.Size(0);
  EGERIA_CHECK_MSG(b.Size(1) == k, "MatMulTransB inner dim mismatch");
  Tensor c = Tensor::Uninitialized({m, n});
  Gemm(a.Data(), b.Data(), c.Data(), m, k, n, /*trans_a=*/false, /*trans_b=*/true,
       /*accumulate=*/false);
  return c;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool trans_b) {
  EGERIA_CHECK(a.Dim() == 3 && b.Dim() == 3);
  const int64_t batch = a.Size(0);
  EGERIA_CHECK(b.Size(0) == batch);
  const int64_t m = a.Size(1);
  const int64_t k = a.Size(2);
  const int64_t n = trans_b ? b.Size(1) : b.Size(2);
  EGERIA_CHECK((trans_b ? b.Size(2) : b.Size(1)) == k);
  Tensor c = Tensor::Uninitialized({batch, m, n});
  BatchedGemm(a.Data(), b.Data(), c.Data(), batch, m, k, n, /*trans_a=*/false, trans_b,
              /*accumulate=*/false);
  return c;
}

Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b) {
  EGERIA_CHECK(a.Dim() == 3 && b.Dim() == 3);
  const int64_t batch = a.Size(0);
  EGERIA_CHECK(b.Size(0) == batch);
  const int64_t k = a.Size(1);
  const int64_t m = a.Size(2);
  const int64_t n = b.Size(2);
  EGERIA_CHECK(b.Size(1) == k);
  Tensor c = Tensor::Uninitialized({batch, m, n});
  BatchedGemm(a.Data(), b.Data(), c.Data(), batch, m, k, n, /*trans_a=*/true,
              /*trans_b=*/false, /*accumulate=*/false);
  return c;
}

namespace {

// One image [c,h,w] -> columns [c*kh*kw, oh*ow]; element type generic so the
// int8 quantized path can gather bytes.
template <class T>
void Im2ColItem(const T* img, int64_t c, int64_t h, int64_t w, const ConvGeom& g,
                T* col) {
  const int64_t oh = g.OutH(h);
  const int64_t ow = g.OutW(w);
  for (int64_t ci = 0; ci < c; ++ci) {
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
        const int64_t row = (ci * g.kernel_h + kh) * g.kernel_w + kw;
        T* dst = col + row * oh * ow;
        // stride 1 / dilation 1 (the dominant case): each output row is the
        // source row shifted by kw-pad — zeroed edges around one contiguous
        // copy. The generic gather below covers everything else.
        const bool contiguous = g.stride == 1 && g.dilation == 1;
        const int64_t shift = kw * g.dilation - g.pad;  // ix = ox + shift
        const int64_t ox_lo = contiguous ? std::min<int64_t>(ow, std::max<int64_t>(0, -shift)) : 0;
        const int64_t ox_hi = contiguous ? std::max<int64_t>(ox_lo, std::min<int64_t>(ow, w - shift)) : 0;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * g.stride - g.pad + kh * g.dilation;
          if (iy < 0 || iy >= h) {
            std::fill(dst + oy * ow, dst + (oy + 1) * ow, T{});
            continue;
          }
          const T* src_row = img + (ci * h + iy) * w;
          if (contiguous) {
            T* out_row = dst + oy * ow;
            std::fill(out_row, out_row + ox_lo, T{});
            std::memcpy(out_row + ox_lo, src_row + ox_lo + shift,
                        static_cast<size_t>(ox_hi - ox_lo) * sizeof(T));
            std::fill(out_row + ox_hi, out_row + ow, T{});
            continue;
          }
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * g.stride - g.pad + kw * g.dilation;
            dst[oy * ow + ox] = (ix >= 0 && ix < w) ? src_row[ix] : T{};
          }
        }
      }
    }
  }
}

}  // namespace

Tensor Im2Col(const Tensor& input, const ConvGeom& g) {
  EGERIA_CHECK(input.Dim() == 4);
  const int64_t b = input.Size(0);
  const int64_t c = input.Size(1);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  const int64_t oh = g.OutH(h);
  const int64_t ow = g.OutW(w);
  EGERIA_CHECK_MSG(oh > 0 && ow > 0, "Im2Col produced empty output");
  Tensor cols = Tensor::Uninitialized({b, c * g.kernel_h * g.kernel_w, oh * ow});
  const float* in = input.Data();
  float* out = cols.Data();
  const int64_t col_rows = c * g.kernel_h * g.kernel_w;
  // Batch items write disjoint column blocks, so the loop shards cleanly.
  ParallelFor(b, 1, [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t bi = b_lo; bi < b_hi; ++bi) {
      Im2ColItem(in + bi * c * h * w, c, h, w, g, out + bi * col_rows * oh * ow);
    }
  });
  return cols;
}

void Im2ColItemI8(const int8_t* img, int64_t c, int64_t h, int64_t w,
                  const ConvGeom& g, int8_t* out) {
  Im2ColItem(img, c, h, w, g, out);
}

Tensor Col2Im(const Tensor& cols, const ConvGeom& g, int64_t c, int64_t h, int64_t w) {
  EGERIA_CHECK(cols.Dim() == 3);
  const int64_t b = cols.Size(0);
  const int64_t oh = g.OutH(h);
  const int64_t ow = g.OutW(w);
  EGERIA_CHECK(cols.Size(1) == c * g.kernel_h * g.kernel_w);
  EGERIA_CHECK(cols.Size(2) == oh * ow);
  Tensor img({b, c, h, w});
  const float* in = cols.Data();
  float* out = img.Data();
  const int64_t col_rows = c * g.kernel_h * g.kernel_w;
  // The scatter-add is per-image: batch items never touch each other's planes.
  ParallelFor(b, 1, [&](int64_t b_lo, int64_t b_hi) {
  for (int64_t bi = b_lo; bi < b_hi; ++bi) {
    const float* col = in + bi * col_rows * oh * ow;
    float* dst_img = out + bi * c * h * w;
    for (int64_t ci = 0; ci < c; ++ci) {
      for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
        for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
          const int64_t row = (ci * g.kernel_h + kh) * g.kernel_w + kw;
          const float* src = col + row * oh * ow;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * g.stride - g.pad + kh * g.dilation;
            if (iy < 0 || iy >= h) {
              continue;
            }
            float* dst_row = dst_img + (ci * h + iy) * w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * g.stride - g.pad + kw * g.dilation;
              if (ix >= 0 && ix < w) {
                dst_row[ix] += src[oy * ow + ox];
              }
            }
          }
        }
      }
    }
  }
  });
  return img;
}

std::pair<Tensor, Tensor> MaxPool2dForward(const Tensor& input, int64_t kernel,
                                           int64_t stride) {
  EGERIA_CHECK(input.Dim() == 4);
  const int64_t b = input.Size(0);
  const int64_t c = input.Size(1);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  EGERIA_CHECK(oh > 0 && ow > 0);
  Tensor out({b, c, oh, ow});
  Tensor argmax({b, c, oh, ow});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = input.Data() + (bi * c + ci) * h * w;
      float* oplane = out.Data() + (bi * c + ci) * oh * ow;
      float* aplane = argmax.Data() + (bi * c + ci) * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            for (int64_t kx = 0; kx < kernel; ++kx) {
              const int64_t iy = oy * stride + ky;
              const int64_t ix = ox * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          oplane[oy * ow + ox] = best;
          aplane[oy * ow + ox] = static_cast<float>(best_idx);
        }
      }
    }
  }
  return {out, argmax};
}

Tensor MaxPool2dBackward(const Tensor& grad_out, const Tensor& argmax, int64_t in_h,
                         int64_t in_w) {
  EGERIA_CHECK(grad_out.Dim() == 4 && argmax.SameShape(grad_out));
  const int64_t b = grad_out.Size(0);
  const int64_t c = grad_out.Size(1);
  const int64_t oh = grad_out.Size(2);
  const int64_t ow = grad_out.Size(3);
  Tensor grad_in({b, c, in_h, in_w});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* gplane = grad_out.Data() + (bi * c + ci) * oh * ow;
      const float* aplane = argmax.Data() + (bi * c + ci) * oh * ow;
      float* iplane = grad_in.Data() + (bi * c + ci) * in_h * in_w;
      for (int64_t i = 0; i < oh * ow; ++i) {
        iplane[static_cast<int64_t>(aplane[i])] += gplane[i];
      }
    }
  }
  return grad_in;
}

Tensor AvgPool2dForward(const Tensor& input, int64_t kernel, int64_t stride) {
  EGERIA_CHECK(input.Dim() == 4);
  const int64_t b = input.Size(0);
  const int64_t c = input.Size(1);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  EGERIA_CHECK(oh > 0 && ow > 0);
  Tensor out({b, c, oh, ow});
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = input.Data() + (bi * c + ci) * h * w;
      float* oplane = out.Data() + (bi * c + ci) * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float s = 0.0F;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            for (int64_t kx = 0; kx < kernel; ++kx) {
              s += plane[(oy * stride + ky) * w + ox * stride + kx];
            }
          }
          oplane[oy * ow + ox] = s * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2dBackward(const Tensor& grad_out, int64_t kernel, int64_t stride,
                         int64_t in_h, int64_t in_w) {
  EGERIA_CHECK(grad_out.Dim() == 4);
  const int64_t b = grad_out.Size(0);
  const int64_t c = grad_out.Size(1);
  const int64_t oh = grad_out.Size(2);
  const int64_t ow = grad_out.Size(3);
  Tensor grad_in({b, c, in_h, in_w});
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* gplane = grad_out.Data() + (bi * c + ci) * oh * ow;
      float* iplane = grad_in.Data() + (bi * c + ci) * in_h * in_w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = gplane[oy * ow + ox] * inv;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            for (int64_t kx = 0; kx < kernel; ++kx) {
              iplane[(oy * stride + ky) * in_w + ox * stride + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPoolForward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 4);
  const int64_t b = input.Size(0);
  const int64_t c = input.Size(1);
  const int64_t hw = input.Size(2) * input.Size(3);
  Tensor out({b, c});
  const float inv = 1.0F / static_cast<float>(hw);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = input.Data() + (bi * c + ci) * hw;
      double s = 0.0;
      for (int64_t i = 0; i < hw; ++i) {
        s += plane[i];
      }
      out.At(bi, ci) = static_cast<float>(s) * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPoolBackward(const Tensor& grad_out, int64_t h, int64_t w) {
  EGERIA_CHECK(grad_out.Dim() == 2);
  const int64_t b = grad_out.Size(0);
  const int64_t c = grad_out.Size(1);
  Tensor grad_in({b, c, h, w});
  const float inv = 1.0F / static_cast<float>(h * w);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float g = grad_out.At(bi, ci) * inv;
      float* plane = grad_in.Data() + (bi * c + ci) * h * w;
      for (int64_t i = 0; i < h * w; ++i) {
        plane[i] = g;
      }
    }
  }
  return grad_in;
}

Tensor Softmax(const Tensor& logits) {
  EGERIA_CHECK(logits.Dim() >= 1);
  const int64_t n = logits.Size(-1);
  const int64_t rows = logits.NumEl() / n;
  Tensor out = logits.Clone();
  float* p = out.Data();
  // Rows are independent; the grain keeps per-chunk work above pool overhead.
  ParallelFor(rows, 4096 / std::max<int64_t>(n, 1) + 1, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = p + r * n;
      float mx = row[0];
      for (int64_t i = 1; i < n; ++i) {
        mx = std::max(mx, row[i]);
      }
      double sum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        row[i] = std::exp(row[i] - mx);
        sum += row[i];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (int64_t i = 0; i < n; ++i) {
        row[i] *= inv;
      }
    }
  });
  return out;
}

Tensor LogSoftmax(const Tensor& logits) {
  EGERIA_CHECK(logits.Dim() >= 1);
  const int64_t n = logits.Size(-1);
  const int64_t rows = logits.NumEl() / n;
  Tensor out = logits.Clone();
  float* p = out.Data();
  ParallelFor(rows, 4096 / std::max<int64_t>(n, 1) + 1, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = p + r * n;
      float mx = row[0];
      for (int64_t i = 1; i < n; ++i) {
        mx = std::max(mx, row[i]);
      }
      double sum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        sum += std::exp(static_cast<double>(row[i] - mx));
      }
      const float lse = mx + static_cast<float>(std::log(sum));
      for (int64_t i = 0; i < n; ++i) {
        row[i] -= lse;
      }
    }
  });
  return out;
}

Tensor Transpose2d(const Tensor& a) {
  EGERIA_CHECK(a.Dim() == 2);
  const int64_t m = a.Size(0);
  const int64_t n = a.Size(1);
  Tensor t({n, m});
  const float* ap = a.Data();
  float* tp = t.Data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      tp[j * m + i] = ap[i * n + j];
    }
  }
  return t;
}

Tensor SwapAxes12(const Tensor& a) {
  EGERIA_CHECK(a.Dim() == 4);
  const int64_t b = a.Size(0);
  const int64_t t = a.Size(1);
  const int64_t h = a.Size(2);
  const int64_t d = a.Size(3);
  Tensor out({b, h, t, d});
  const float* ap = a.Data();
  float* op = out.Data();
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ti = 0; ti < t; ++ti) {
      for (int64_t hi = 0; hi < h; ++hi) {
        const float* src = ap + ((bi * t + ti) * h + hi) * d;
        float* dst = op + ((bi * h + hi) * t + ti) * d;
        std::copy(src, src + d, dst);
      }
    }
  }
  return out;
}

Tensor BilinearUpsampleForward(const Tensor& input, int64_t out_h, int64_t out_w) {
  EGERIA_CHECK(input.Dim() == 4);
  const int64_t b = input.Size(0);
  const int64_t c = input.Size(1);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  Tensor out({b, c, out_h, out_w});
  const float scale_y = static_cast<float>(h) / static_cast<float>(out_h);
  const float scale_x = static_cast<float>(w) / static_cast<float>(out_w);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = input.Data() + (bi * c + ci) * h * w;
      float* oplane = out.Data() + (bi * c + ci) * out_h * out_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        float sy = (static_cast<float>(oy) + 0.5F) * scale_y - 0.5F;
        sy = std::max(0.0F, std::min(sy, static_cast<float>(h - 1)));
        const int64_t y0 = static_cast<int64_t>(sy);
        const int64_t y1 = std::min(y0 + 1, h - 1);
        const float fy = sy - static_cast<float>(y0);
        for (int64_t ox = 0; ox < out_w; ++ox) {
          float sx = (static_cast<float>(ox) + 0.5F) * scale_x - 0.5F;
          sx = std::max(0.0F, std::min(sx, static_cast<float>(w - 1)));
          const int64_t x0 = static_cast<int64_t>(sx);
          const int64_t x1 = std::min(x0 + 1, w - 1);
          const float fx = sx - static_cast<float>(x0);
          const float v = (1 - fy) * ((1 - fx) * plane[y0 * w + x0] + fx * plane[y0 * w + x1]) +
                          fy * ((1 - fx) * plane[y1 * w + x0] + fx * plane[y1 * w + x1]);
          oplane[oy * out_w + ox] = v;
        }
      }
    }
  }
  return out;
}

Tensor BilinearUpsampleBackward(const Tensor& grad_out, int64_t in_h, int64_t in_w) {
  EGERIA_CHECK(grad_out.Dim() == 4);
  const int64_t b = grad_out.Size(0);
  const int64_t c = grad_out.Size(1);
  const int64_t oh = grad_out.Size(2);
  const int64_t ow = grad_out.Size(3);
  Tensor grad_in({b, c, in_h, in_w});
  const float scale_y = static_cast<float>(in_h) / static_cast<float>(oh);
  const float scale_x = static_cast<float>(in_w) / static_cast<float>(ow);
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* gplane = grad_out.Data() + (bi * c + ci) * oh * ow;
      float* iplane = grad_in.Data() + (bi * c + ci) * in_h * in_w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        float sy = (static_cast<float>(oy) + 0.5F) * scale_y - 0.5F;
        sy = std::max(0.0F, std::min(sy, static_cast<float>(in_h - 1)));
        const int64_t y0 = static_cast<int64_t>(sy);
        const int64_t y1 = std::min(y0 + 1, in_h - 1);
        const float fy = sy - static_cast<float>(y0);
        for (int64_t ox = 0; ox < ow; ++ox) {
          float sx = (static_cast<float>(ox) + 0.5F) * scale_x - 0.5F;
          sx = std::max(0.0F, std::min(sx, static_cast<float>(in_w - 1)));
          const int64_t x0 = static_cast<int64_t>(sx);
          const int64_t x1 = std::min(x0 + 1, in_w - 1);
          const float fx = sx - static_cast<float>(x0);
          const float g = gplane[oy * ow + ox];
          iplane[y0 * in_w + x0] += (1 - fy) * (1 - fx) * g;
          iplane[y0 * in_w + x1] += (1 - fy) * fx * g;
          iplane[y1 * in_w + x0] += fy * (1 - fx) * g;
          iplane[y1 * in_w + x1] += fy * fx * g;
        }
      }
    }
  }
  return grad_in;
}

Tensor ConcatChannels(const std::vector<Tensor>& inputs) {
  EGERIA_CHECK(!inputs.empty());
  const int64_t b = inputs[0].Size(0);
  const int64_t h = inputs[0].Size(2);
  const int64_t w = inputs[0].Size(3);
  int64_t total_c = 0;
  for (const auto& t : inputs) {
    EGERIA_CHECK(t.Dim() == 4 && t.Size(0) == b && t.Size(2) == h && t.Size(3) == w);
    total_c += t.Size(1);
  }
  Tensor out({b, total_c, h, w});
  for (int64_t bi = 0; bi < b; ++bi) {
    int64_t c_off = 0;
    for (const auto& t : inputs) {
      const int64_t ci = t.Size(1);
      const float* src = t.Data() + bi * ci * h * w;
      float* dst = out.Data() + (bi * total_c + c_off) * h * w;
      std::copy(src, src + ci * h * w, dst);
      c_off += ci;
    }
  }
  return out;
}

std::vector<Tensor> SplitChannels(const Tensor& grad, const std::vector<int64_t>& channels) {
  EGERIA_CHECK(grad.Dim() == 4);
  const int64_t b = grad.Size(0);
  const int64_t h = grad.Size(2);
  const int64_t w = grad.Size(3);
  int64_t total_c = 0;
  for (int64_t c : channels) {
    total_c += c;
  }
  EGERIA_CHECK(total_c == grad.Size(1));
  std::vector<Tensor> outs;
  outs.reserve(channels.size());
  for (int64_t c : channels) {
    outs.emplace_back(std::vector<int64_t>{b, c, h, w});
  }
  for (int64_t bi = 0; bi < b; ++bi) {
    int64_t c_off = 0;
    for (size_t k = 0; k < channels.size(); ++k) {
      const int64_t ci = channels[k];
      const float* src = grad.Data() + (bi * total_c + c_off) * h * w;
      float* dst = outs[k].Data() + bi * ci * h * w;
      std::copy(src, src + ci * h * w, dst);
      c_off += ci;
    }
  }
  return outs;
}

}  // namespace egeria
