// Small-matrix linear algebra for PWCCA (Morcos et al., NeurIPS'18), the post-hoc
// convergence analysis the paper uses in Figures 1 and 4 comparisons.
//
// Sizes here are tiny (activation matrices are [n_samples, channels] with channels
// <= ~128), so textbook Householder QR and one-sided Jacobi SVD are accurate and fast
// enough; no blocking or pivoting is needed.
#ifndef EGERIA_SRC_TENSOR_LINALG_H_
#define EGERIA_SRC_TENSOR_LINALG_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace egeria {

// Subtracts the column mean from every column of a [n, p] matrix in place.
void CenterColumns(Tensor& a);

struct QrResult {
  Tensor q;  // [n, p], orthonormal columns (thin Q).
  Tensor r;  // [p, p], upper triangular.
};

// Thin Householder QR of a [n, p] matrix with n >= p.
QrResult HouseholderQr(const Tensor& a);

struct SvdResult {
  Tensor u;              // [m, r] left singular vectors.
  std::vector<float> s;  // r singular values, descending.
  Tensor v;              // [n, r] right singular vectors.
};

// One-sided Jacobi SVD of a [m, n] matrix; r = min(m, n). Iterates sweeps until all
// column pairs are numerically orthogonal.
SvdResult JacobiSvd(const Tensor& a);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_LINALG_H_
