// Process-wide compute thread pool for data-parallel kernel loops.
//
// The pool is created lazily on first use and sized by EGERIA_NUM_THREADS (default:
// hardware concurrency). It is distinct from the pools owned by the activation
// prefetcher / distributed harness: those carry coarse application tasks, this one
// carries fine-grained kernel row blocks, and sharing would let an application task
// block a kernel chunk behind it.
#ifndef EGERIA_SRC_TENSOR_COMPUTE_POOL_H_
#define EGERIA_SRC_TENSOR_COMPUTE_POOL_H_

#include <cstdint>
#include <functional>

namespace egeria {

// Number of threads the compute pool runs with (>= 1). Reads EGERIA_NUM_THREADS
// once on first call.
int ComputePoolThreads();

// Runs fn(begin, end) over a partition of [0, n), in parallel when the pool has
// more than one thread and the caller is not already inside a pool task (nested
// calls degrade to serial execution instead of deadlocking the pool).
//
// `grain` is the smallest chunk worth shipping to another thread; ranges are
// split into at most one chunk per thread and never smaller than `grain`.
// Chunks are disjoint, so writes to per-index data need no synchronization.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_COMPUTE_POOL_H_
