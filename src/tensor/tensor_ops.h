// Compute kernels shared by the NN layers and quantized inference.
//
// All matrices are row-major. Every matmul routes through the packed, blocked,
// multithreaded Gemm dispatch in src/tensor/gemm.h (layers call it directly for
// per-sample matmuls on subranges of batched tensors without materializing
// slices); convolution lowers to im2col + GEMM (the standard CPU formulation, and
// the one the int8 kernels mirror).
#ifndef EGERIA_SRC_TENSOR_TENSOR_OPS_H_
#define EGERIA_SRC_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <utility>

#include "src/tensor/gemm.h"
#include "src/tensor/tensor.h"

namespace egeria {

// C[m,n] = A[m,k] * B[k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// C[m,n] = A[k,m]^T * B[k,n].
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// C[m,n] = A[m,k] * B[n,k]^T.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

// Batched: C[b,m,n] = A[b,m,k] * B[b,k,n] (optionally transposing B's last two dims).
Tensor BatchedMatMul(const Tensor& a, const Tensor& b, bool trans_b = false);
// C[b,m,n] = A[b,k,m]^T * B[b,k,n].
Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b);

// Geometry of a 2-d convolution / pooling window.
struct ConvGeom {
  int64_t kernel_h = 3;
  int64_t kernel_w = 3;
  int64_t stride = 1;
  int64_t pad = 1;
  int64_t dilation = 1;

  int64_t OutH(int64_t h) const {
    return (h + 2 * pad - dilation * (kernel_h - 1) - 1) / stride + 1;
  }
  int64_t OutW(int64_t w) const {
    return (w + 2 * pad - dilation * (kernel_w - 1) - 1) / stride + 1;
  }
};

// input [b,c,h,w] -> columns [b, c*kh*kw, oh*ow].
Tensor Im2Col(const Tensor& input, const ConvGeom& geom);
// Single-item int8 im2col for the quantized conv path: gathers one image
// [c,h,w] into columns [c*kh*kw, oh*ow] with zero padding (code 0). Operating
// on pre-quantized bytes moves 4x less data than the float gather and lets the
// activation quantization run once over the image instead of once per im2col
// element (quantization commutes with the rearrangement, so results are
// identical).
void Im2ColItemI8(const int8_t* img, int64_t c, int64_t h, int64_t w,
                  const ConvGeom& geom, int8_t* out);
// columns [b, c*kh*kw, oh*ow] -> input-shaped gradient [b,c,h,w] (scatter-add).
Tensor Col2Im(const Tensor& cols, const ConvGeom& geom, int64_t c, int64_t h, int64_t w);

// Max pooling. Returns output and the flat argmax index per output element (into the
// input's h*w plane), which MaxPool2dBackward consumes.
std::pair<Tensor, Tensor> MaxPool2dForward(const Tensor& input, int64_t kernel,
                                           int64_t stride);
Tensor MaxPool2dBackward(const Tensor& grad_out, const Tensor& argmax, int64_t in_h,
                         int64_t in_w);

Tensor AvgPool2dForward(const Tensor& input, int64_t kernel, int64_t stride);
Tensor AvgPool2dBackward(const Tensor& grad_out, int64_t kernel, int64_t stride,
                         int64_t in_h, int64_t in_w);

// Global average pooling: [b,c,h,w] -> [b,c].
Tensor GlobalAvgPoolForward(const Tensor& input);
Tensor GlobalAvgPoolBackward(const Tensor& grad_out, int64_t h, int64_t w);

// Softmax / LogSoftmax along the last dimension.
Tensor Softmax(const Tensor& logits);
Tensor LogSoftmax(const Tensor& logits);

// [m,n] -> [n,m].
Tensor Transpose2d(const Tensor& a);

// [b,t,h,d] -> [b,h,t,d] and back (attention head split/merge).
Tensor SwapAxes12(const Tensor& a);

// Bilinear resize of [b,c,h,w] to (out_h, out_w) with align_corners=false semantics.
Tensor BilinearUpsampleForward(const Tensor& input, int64_t out_h, int64_t out_w);
Tensor BilinearUpsampleBackward(const Tensor& grad_out, int64_t in_h, int64_t in_w);

// Concatenate along channel dim: inputs all [b,ci,h,w] -> [b,sum(ci),h,w].
Tensor ConcatChannels(const std::vector<Tensor>& inputs);
// Split gradient of ConcatChannels back into per-input gradients.
std::vector<Tensor> SplitChannels(const Tensor& grad, const std::vector<int64_t>& channels);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_TENSOR_OPS_H_
