// Binary tensor (de)serialization.
//
// Used by (a) the activation cache, which spills frozen-layer activations to disk and
// prefetches them back (paper S4.3), (b) model checkpoints (the "pre-trained"
// model for the fine-tuning experiments and reference snapshots in tests), and
// (c) the fault-tolerance checkpoint subsystem (src/ckpt/), which layers named
// training-state snapshots on top of these primitives.
//
// Format v2 (little-endian, current writer):
//   u32 magic 'EGT2' | u32 version | u32 ndim | i64 dims[ndim]
//   | u64 fnv64(data) | f32 data[numel]
// Checkpoint (named tensor map) v2:
//   u32 magic 'EGC2' | u32 version | u64 count | count * { u32 name_len | bytes | tensor }
//
// Readers also accept the legacy v1 layouts ('EGTN' / 'EGCK': no version field,
// no checksum) so pre-existing spill files and checkpoints keep loading. All
// read paths are hardened: bad magic, absurd ndim/dims, truncation, and
// checksum mismatches produce a logged diagnostic and an undefined tensor /
// false return — never garbage data.
#ifndef EGERIA_SRC_TENSOR_SERIALIZE_H_
#define EGERIA_SRC_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "src/tensor/tensor.h"

namespace egeria {

// FNV-1a 64-bit, the repo's content-hash idiom (also used for the distributed
// params_hash pins and the checkpoint manifest's per-file checksums).
inline constexpr uint64_t kFnv64Offset = 0xCBF29CE484222325ULL;
uint64_t Fnv1a64(const void* data, size_t len, uint64_t h = kFnv64Offset);

void WriteTensor(std::ostream& os, const Tensor& t);
// Returns an undefined tensor (and logs a diagnostic naming `context`) on any
// malformed input: bad magic, ndim/dims out of range, truncation, checksum
// mismatch.
Tensor ReadTensor(std::istream& is, const std::string& context = "");

bool SaveTensorFile(const std::string& path, const Tensor& t);
// Returns an undefined tensor on failure.
Tensor LoadTensorFile(const std::string& path);

using Checkpoint = std::map<std::string, Tensor>;

bool SaveCheckpoint(const std::string& path, const Checkpoint& ckpt);
// Returns false (and leaves ckpt empty) on failure.
bool LoadCheckpoint(const std::string& path, Checkpoint& ckpt);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_SERIALIZE_H_
