// Binary tensor (de)serialization.
//
// Used by (a) the activation cache, which spills frozen-layer activations to disk and
// prefetches them back (paper S4.3), and (b) model checkpoints (the "pre-trained"
// model for the fine-tuning experiments and reference snapshots in tests).
//
// Format (little-endian):
//   u32 magic 'EGTN' | u32 ndim | i64 dims[ndim] | f32 data[numel]
// Checkpoint format:
//   u32 magic 'EGCK' | u64 count | count * { u32 name_len | bytes | tensor }
#ifndef EGERIA_SRC_TENSOR_SERIALIZE_H_
#define EGERIA_SRC_TENSOR_SERIALIZE_H_

#include <iosfwd>
#include <map>
#include <string>

#include "src/tensor/tensor.h"

namespace egeria {

void WriteTensor(std::ostream& os, const Tensor& t);
Tensor ReadTensor(std::istream& is);

bool SaveTensorFile(const std::string& path, const Tensor& t);
// Returns an undefined tensor on failure.
Tensor LoadTensorFile(const std::string& path);

using Checkpoint = std::map<std::string, Tensor>;

bool SaveCheckpoint(const std::string& path, const Checkpoint& ckpt);
// Returns false (and leaves ckpt empty) on failure.
bool LoadCheckpoint(const std::string& path, Checkpoint& ckpt);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_SERIALIZE_H_
