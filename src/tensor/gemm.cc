#include "src/tensor/gemm.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/compute_pool.h"
#include "src/util/logging.h"

#include "src/util/intrin_diag.h"

#if defined(__AVX512F__) || defined(__F16C__)
#include <immintrin.h>
#endif

#if defined(__GNUC__) || defined(__clang__)
#define EGERIA_RESTRICT __restrict__
#else
#define EGERIA_RESTRICT
#endif

namespace egeria {

namespace {

// Register tile: each microkernel invocation keeps an MR x NR fp32 (or int32)
// accumulator block live across the whole k loop. With AVX-512 (32 vector
// registers) a 14 x 32 tile uses 28 ZMM accumulators plus the A broadcast and
// two B loads; narrower register files get 6 x 16 (12 YMM accumulators on
// AVX2). Measured on the CI machine: 14 x 32 sustains ~120 GFLOP/s
// single-threaded at 256^3 vs ~21 for the naive i-k-j loop it replaced.
#if defined(__AVX512F__)
constexpr int64_t kMr = 14;
constexpr int64_t kNr = 32;
#else
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;
#endif
// Cache blocking: the packed A block (kMc x kKc floats = 168 KiB) targets L2, the
// packed B panel reused by one row of microkernels (kKc x kNr = 48 KiB) streams
// through L1/L2, and the packed B block (kKc x kNc <= 6 MiB) targets L3. kMc must
// be a multiple of both tile heights (112 = 8*14, 96 would break the 14-row tile).
// The int8 path reuses the same extents (its packed panels are 4x smaller, which
// only deepens the cache residency margins).
constexpr int64_t kKc = 384;
constexpr int64_t kMc = (112 / kMr) * kMr;  // 112 for the 14-row tile, 108 for 6.
constexpr int64_t kNc = 4096;

// Below this many multiply-adds, thread spawn/join overhead beats the speedup and
// the whole problem runs on the calling thread.
constexpr int64_t kParallelFlopThreshold = int64_t{1} << 19;

int64_t RoundUp(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

// k extent of an int8 panel in dot4 groups (k is zero-padded to a multiple of 4
// inside each packed k-block).
int64_t I8Groups(int64_t kc) { return (kc + 3) / 4; }

// Per-instantiation thread-local packing scratch (Slot 0: B, Slot 1: A). Each
// dtype path gets its own buffers so mixed-precision callers never thrash one
// another's capacity.
template <class TR, int kSlot>
std::vector<char>& PackScratch() {
  thread_local std::vector<char> buf;
  return buf;
}

// ------------------------------------------------------------- fp16 conversion
//
// gcc does not auto-vectorize _Float16 -> float conversion (each scalar cast
// costs a libcall-grade sequence: measured 0.6 Gelem/s scalar vs 9.3 with
// vcvtph2ps), so contiguous conversions go through explicit intrinsics.
// The NOWARN span covers the packing/microkernel helpers these intrinsics
// inline into; it ends before the traits/driver section.
EGERIA_BEGIN_INTRIN_NOWARN

inline void ConvertF16Row(const _Float16* EGERIA_RESTRICT src,
                          float* EGERIA_RESTRICT dst, int64_t n) {
  int64_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i,
                     _mm512_cvtph_ps(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(src + i))));
  }
#if defined(__AVX512BW__) && defined(__AVX512VL__)
  if (i < n) {
    // Masked tail: keeps short rows (e.g. the trans_a pack's MR-wide reads)
    // on the vcvtph2ps path instead of falling into scalar conversion.
    const __mmask16 m = static_cast<__mmask16>((1U << (n - i)) - 1U);
    _mm512_mask_storeu_ps(dst + i, m,
                          _mm512_cvtph_ps(_mm256_maskz_loadu_epi16(m, src + i)));
    i = n;
  }
#endif
#elif defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_cvtph_ps(_mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(src + i))));
  }
#endif
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

// -------------------------------------------------- fp32/fp16 -> fp32 packing
//
// A is packed into column-major MR-row panels: panel ib holds rows
// [ib*MR, ib*MR+MR) as ap[ib*kc*MR + p*MR + r], so the microkernel reads MR
// contiguous floats per k step. Short edge panels are zero-padded to MR, which
// keeps the microkernel branch-free; the store path clips the padding. B is
// packed the same way into NR-column panels. _Float16 sources are converted to
// fp32 here — panels are cache-resident and reused across the orthogonal
// extent, so the conversion cost is O(mk + kn) against O(mkn) compute while
// the operand itself streams from memory at half bandwidth.

template <class Src>
void PackAF(const Src* a, int64_t lda, bool trans_a, int64_t ic, int64_t pc,
            int64_t mc, int64_t kc, float* EGERIA_RESTRICT dst) {
  const int64_t panels = (mc + kMr - 1) / kMr;
  float staging[kKc];
  for (int64_t ib = 0; ib < panels; ++ib) {
    const int64_t i0 = ic + ib * kMr;
    const int64_t mr = std::min<int64_t>(kMr, ic + mc - i0);
    float* EGERIA_RESTRICT panel = dst + ib * kc * kMr;
    if (trans_a) {
      // A stored [k, m]: each k step reads mr contiguous values.
      for (int64_t p = 0; p < kc; ++p) {
        const Src* src = a + (pc + p) * lda + i0;
        float* out = panel + p * kMr;
        if constexpr (std::is_same_v<Src, float>) {
          for (int64_t r = 0; r < mr; ++r) {
            out[r] = src[r];
          }
        } else {
          ConvertF16Row(src, out, mr);  // Masked-tail vcvtph2ps, not scalar.
        }
        for (int64_t r = mr; r < kMr; ++r) {
          out[r] = 0.0F;
        }
      }
    } else {
      // A stored [m, k]: walk each row once, scattering with stride MR.
      for (int64_t r = 0; r < mr; ++r) {
        const Src* src = a + (i0 + r) * lda + pc;
        const float* row;
        if constexpr (std::is_same_v<Src, float>) {
          row = src;
        } else {
          ConvertF16Row(src, staging, kc);
          row = staging;
        }
        for (int64_t p = 0; p < kc; ++p) {
          panel[p * kMr + r] = row[p];
        }
      }
      for (int64_t r = mr; r < kMr; ++r) {
        for (int64_t p = 0; p < kc; ++p) {
          panel[p * kMr + r] = 0.0F;
        }
      }
    }
  }
}

template <class Src>
void PackBPanelF(const Src* b, int64_t ldb, bool trans_b, int64_t jc, int64_t pc,
                 int64_t nc, int64_t kc, int64_t jb, float* EGERIA_RESTRICT dst) {
  const int64_t j0 = jc + jb * kNr;
  const int64_t nr = std::min<int64_t>(kNr, jc + nc - j0);
  float* EGERIA_RESTRICT panel = dst + jb * kc * kNr;
  if (trans_b) {
    // B stored [n, k]: walk each column's row once, scattering with stride NR.
    float staging[kKc];
    for (int64_t j = 0; j < nr; ++j) {
      const Src* src = b + (j0 + j) * ldb + pc;
      const float* row;
      if constexpr (std::is_same_v<Src, float>) {
        row = src;
      } else {
        ConvertF16Row(src, staging, kc);
        row = staging;
      }
      for (int64_t p = 0; p < kc; ++p) {
        panel[p * kNr + j] = row[p];
      }
    }
    for (int64_t j = nr; j < kNr; ++j) {
      for (int64_t p = 0; p < kc; ++p) {
        panel[p * kNr + j] = 0.0F;
      }
    }
  } else {
    // B stored [k, n]: each k step copies nr contiguous values.
    for (int64_t p = 0; p < kc; ++p) {
      const Src* src = b + (pc + p) * ldb + j0;
      float* out = panel + p * kNr;
      if constexpr (std::is_same_v<Src, float>) {
        for (int64_t j = 0; j < nr; ++j) {
          out[j] = src[j];
        }
      } else {
        ConvertF16Row(src, out, nr);
      }
      for (int64_t j = nr; j < kNr; ++j) {
        out[j] = 0.0F;
      }
    }
  }
}

// ------------------------------------------------------------ fp32 microkernel

// acc[MR][NR] += A-panel * B-panel over kc steps. The accumulator array is small
// enough for the compiler to keep in vector registers; `#pragma omp simd` marks
// the NR loop as dependence-free so it vectorizes without intrinsics.
inline void MicroKernelAcc(int64_t kc, const float* EGERIA_RESTRICT ap,
                           const float* EGERIA_RESTRICT bp,
                           float acc[kMr][kNr]) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* EGERIA_RESTRICT arow = ap + p * kMr;
    const float* EGERIA_RESTRICT brow = bp + p * kNr;
    for (int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
#pragma omp simd
      for (int64_t j = 0; j < kNr; ++j) {
        acc[i][j] += av * brow[j];
      }
    }
  }
}

#if defined(__AVX512F__)
// Explicit-intrinsic tile: 14 rows x two 16-lane accumulators = 28 of the 32
// ZMM registers stay live across the whole k loop. This used to be left to the
// auto-vectorizer, which silently cost 4-5x when gcc's per-uarch tuning chose
// 256-bit vectors (-mprefer-vector-width=256 is the default on several AVX-512
// parts, gcc 12 on Sapphire Rapids included): at 256 bits the 448-float
// accumulator needs 56 vector registers, so the whole tile spilled to the
// stack and every k step paid 56 load+store round-trips. The arithmetic is
// bit-identical to the portable kernel above — same per-element fold order (p
// ascending), one fused multiply-add per element per step, matching the FMA
// contraction -O3 applies to the scalar loop.
template <bool kOverwrite>
void MicroKernelFullZmm(int64_t kc, const float* EGERIA_RESTRICT ap,
                        const float* EGERIA_RESTRICT bp,
                        float* EGERIA_RESTRICT c, int64_t ldc) {
  static_assert(kNr == 32, "ZMM tile assumes two 16-lane accumulators per row");
  __m512 acc[kMr][2];
  for (int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = _mm512_setzero_ps();
    acc[i][1] = _mm512_setzero_ps();
  }
  for (int64_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kNr);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kNr + 16);
    const float* arow = ap + p * kMr;
    for (int64_t i = 0; i < kMr; ++i) {
      const __m512 va = _mm512_set1_ps(arow[i]);
      acc[i][0] = _mm512_fmadd_ps(va, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(va, b1, acc[i][1]);
    }
  }
  for (int64_t i = 0; i < kMr; ++i) {
    float* crow = c + i * ldc;
    if (kOverwrite) {
      _mm512_storeu_ps(crow, acc[i][0]);
      _mm512_storeu_ps(crow + 16, acc[i][1]);
    } else {
      _mm512_storeu_ps(crow, _mm512_add_ps(_mm512_loadu_ps(crow), acc[i][0]));
      _mm512_storeu_ps(crow + 16,
                       _mm512_add_ps(_mm512_loadu_ps(crow + 16), acc[i][1]));
    }
  }
}
#endif

// Full MR x NR tile: store straight into C.
template <bool kOverwrite>
void MicroKernelFull(int64_t kc, const float* EGERIA_RESTRICT ap,
                     const float* EGERIA_RESTRICT bp, float* EGERIA_RESTRICT c,
                     int64_t ldc) {
#if defined(__AVX512F__)
  MicroKernelFullZmm<kOverwrite>(kc, ap, bp, c, ldc);
#else
  float acc[kMr][kNr] = {};
  MicroKernelAcc(kc, ap, bp, acc);
  for (int64_t i = 0; i < kMr; ++i) {
    float* crow = c + i * ldc;
#pragma omp simd
    for (int64_t j = 0; j < kNr; ++j) {
      crow[j] = kOverwrite ? acc[i][j] : crow[j] + acc[i][j];
    }
  }
#endif
}

// Edge tile: compute the full padded tile, store only the valid mr x nr corner.
void MicroKernelEdge(int64_t kc, const float* EGERIA_RESTRICT ap,
                     const float* EGERIA_RESTRICT bp, float* EGERIA_RESTRICT c,
                     int64_t ldc, int64_t mr, int64_t nr, bool overwrite) {
  float acc[kMr][kNr];
#if defined(__AVX512F__)
  MicroKernelFullZmm<true>(kc, ap, bp, &acc[0][0], kNr);
#else
  std::memset(acc, 0, sizeof(acc));
  MicroKernelAcc(kc, ap, bp, acc);
#endif
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr; ++j) {
      crow[j] = overwrite ? acc[i][j] : crow[j] + acc[i][j];
    }
  }
}

// One packed A block (mc x kc) times the packed B block (kc x nc) into C.
void BlockMultiplyF(const float* apack, const float* bpack, float* c, int64_t ldc,
                    int64_t mc, int64_t nc, int64_t kc, bool overwrite) {
  const int64_t mpanels = (mc + kMr - 1) / kMr;
  const int64_t npanels = (nc + kNr - 1) / kNr;
  for (int64_t ib = 0; ib < mpanels; ++ib) {
    const int64_t mr = std::min<int64_t>(kMr, mc - ib * kMr);
    const float* ap = apack + ib * kc * kMr;
    for (int64_t jb = 0; jb < npanels; ++jb) {
      const int64_t nr = std::min<int64_t>(kNr, nc - jb * kNr);
      const float* bp = bpack + jb * kc * kNr;
      float* ctile = c + ib * kMr * ldc + jb * kNr;
      if (mr == kMr && nr == kNr) {
        if (overwrite) {
          MicroKernelFull<true>(kc, ap, bp, ctile, ldc);
        } else {
          MicroKernelFull<false>(kc, ap, bp, ctile, ldc);
        }
      } else {
        MicroKernelEdge(kc, ap, bp, ctile, ldc, mr, nr, overwrite);
      }
    }
  }
}

// ----------------------------------------------------------------- int8 packing
//
// dot4 layout: k is grouped in fours so one 32-bit accumulator lane absorbs four
// 8-bit products per step (vpdpbusd shape). A panels hold [kc4][MR][4] as
// *uint8* with +128 bias (u8 = s8 XOR 0x80) because VNNI's vpdpbusd multiplies
// unsigned-by-signed; the bias is cancelled exactly by a compensation row
// appended to each B panel: comp[j] = -128 * sum_p b[p][j], which initializes
// every accumulator row. B panels hold [kc4][NR][4] signed. k positions past kc
// pack as a=+128 (i.e. 0) and b=0 so padded groups contribute nothing.

void PackAI8(const int8_t* a, int64_t lda, bool trans_a, int64_t ic, int64_t pc,
             int64_t mc, int64_t kc, uint8_t* EGERIA_RESTRICT dst) {
  const int64_t panels = (mc + kMr - 1) / kMr;
  const int64_t kc4 = I8Groups(kc);
  const int64_t full4 = kc / 4;  // complete groups needing no tail handling
  for (int64_t ib = 0; ib < panels; ++ib) {
    const int64_t i0 = ic + ib * kMr;
    const int64_t mr = std::min<int64_t>(kMr, ic + mc - i0);
    uint8_t* EGERIA_RESTRICT panel = dst + ib * kc4 * kMr * 4;
    if (!trans_a) {
      // A stored [m, k]: each row's dot4 groups are contiguous 4-byte words;
      // the +128 bias is a bytewise XOR 0x80, so whole words flip in one op.
      for (int64_t r = 0; r < mr; ++r) {
        const int8_t* src = a + (i0 + r) * lda + pc;
        for (int64_t p4 = 0; p4 < full4; ++p4) {
          uint32_t w;
          std::memcpy(&w, src + p4 * 4, 4);
          w ^= 0x80808080U;
          std::memcpy(panel + p4 * kMr * 4 + r * 4, &w, 4);
        }
        if (full4 < kc4) {
          uint8_t* out = panel + full4 * kMr * 4 + r * 4;
          for (int64_t q = 0; q < 4; ++q) {
            const int64_t p = full4 * 4 + q;
            out[q] = p < kc ? static_cast<uint8_t>(src[p]) ^ 0x80U : 0x80U;
          }
        }
      }
    } else {
      // A stored [k, m]: strided per element (no hot caller uses this layout).
      for (int64_t r = 0; r < mr; ++r) {
        for (int64_t p4 = 0; p4 < kc4; ++p4) {
          uint8_t* out = panel + p4 * kMr * 4 + r * 4;
          for (int64_t q = 0; q < 4; ++q) {
            const int64_t p = p4 * 4 + q;
            out[q] = p < kc
                         ? static_cast<uint8_t>(a[(pc + p) * lda + i0 + r]) ^ 0x80U
                         : 0x80U;
          }
        }
      }
    }
    // Rows past mr: bias value only (their C rows are clipped at store time,
    // but defined bytes keep the kernel's integer math bounded).
    for (int64_t p4 = 0; p4 < kc4; ++p4) {
      for (int64_t r = mr; r < kMr; ++r) {
        std::memset(panel + p4 * kMr * 4 + r * 4, 0x80, 4);
      }
    }
  }
}

// Byte strides of one packed int8 B panel: the dot4 body plus the int32
// compensation row appended at the end.
int64_t BPanelBytesI8(int64_t kc) {
  return I8Groups(kc) * kNr * 4 + kNr * static_cast<int64_t>(sizeof(int32_t));
}

#if defined(__AVX512VBMI__)
// Interleaves 4 consecutive k rows of 32 contiguous int8 columns into the dot4
// layout [j][q] with two byte-permutes. Index tables: output byte (j*4+q) pulls
// row q's column j; rows 0-1 live in the first source register, 2-3 in the
// second (bit 6 of the index selects the second source).
struct Dot4PermIdx {
  alignas(64) int8_t lo[64];
  alignas(64) int8_t hi[64];
  constexpr Dot4PermIdx() : lo(), hi() {
    for (int i = 0; i < 64; ++i) {
      const int q = i & 3;
      lo[i] = static_cast<int8_t>(q < 2 ? q * 32 + i / 4 : 64 + (q - 2) * 32 + i / 4);
      hi[i] = static_cast<int8_t>(lo[i] + 16);
    }
  }
};
constexpr Dot4PermIdx kDot4PermIdx;
#endif

void PackBPanelI8(const int8_t* b, int64_t ldb, bool trans_b, int64_t jc,
                  int64_t pc, int64_t nc, int64_t kc, int64_t jb,
                  char* EGERIA_RESTRICT dst_base) {
  const int64_t j0 = jc + jb * kNr;
  const int64_t nr = std::min<int64_t>(kNr, jc + nc - j0);
  const int64_t kc4 = I8Groups(kc);
  int8_t* EGERIA_RESTRICT panel =
      reinterpret_cast<int8_t*>(dst_base + jb * BPanelBytesI8(kc));
  if (trans_b) {
    // B stored [n, k]: each column's dot4 groups are contiguous 4-byte words
    // scattered with stride NR*4.
    for (int64_t j = 0; j < nr; ++j) {
      const int8_t* src = b + (j0 + j) * ldb + pc;
      const int64_t full4 = kc / 4;
      for (int64_t p4 = 0; p4 < full4; ++p4) {
        std::memcpy(panel + p4 * kNr * 4 + j * 4, src + p4 * 4, 4);
      }
      if (full4 < kc4) {
        int8_t* out = panel + full4 * kNr * 4 + j * 4;
        for (int64_t q = 0; q < 4; ++q) {
          const int64_t p = full4 * 4 + q;
          out[q] = p < kc ? src[p] : 0;
        }
      }
    }
    for (int64_t p4 = 0; p4 < kc4; ++p4) {
      for (int64_t j = nr; j < kNr; ++j) {
        std::memset(panel + p4 * kNr * 4 + j * 4, 0, 4);
      }
    }
  } else {
    // B stored [k, n]: transpose 4 k-rows at a time into the dot4 interleave.
    int64_t p4 = 0;
#if defined(__AVX512VBMI__)
    if (nr == kNr) {
      const __m512i idx_lo =
          _mm512_load_si512(reinterpret_cast<const void*>(kDot4PermIdx.lo));
      const __m512i idx_hi =
          _mm512_load_si512(reinterpret_cast<const void*>(kDot4PermIdx.hi));
      for (; (p4 + 1) * 4 <= kc; ++p4) {
        const int8_t* src = b + (pc + p4 * 4) * ldb + j0;
        const __m512i z01 = _mm512_inserti64x4(
            _mm512_castsi256_si512(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src))),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + ldb)), 1);
        const __m512i z23 = _mm512_inserti64x4(
            _mm512_castsi256_si512(_mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(src + 2 * ldb))),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 3 * ldb)),
            1);
        int8_t* out = panel + p4 * kNr * 4;
        _mm512_storeu_si512(out, _mm512_permutex2var_epi8(z01, idx_lo, z23));
        _mm512_storeu_si512(out + 64, _mm512_permutex2var_epi8(z01, idx_hi, z23));
      }
    }
#endif
    for (; p4 < kc4; ++p4) {
      int8_t* out = panel + p4 * kNr * 4;
      for (int64_t q = 0; q < 4; ++q) {
        const int64_t p = p4 * 4 + q;
        if (p < kc) {
          const int8_t* src = b + (pc + p) * ldb + j0;
          for (int64_t j = 0; j < nr; ++j) {
            out[j * 4 + q] = src[j];
          }
        } else {
          for (int64_t j = 0; j < nr; ++j) {
            out[j * 4 + q] = 0;
          }
        }
      }
      for (int64_t j = nr; j < kNr; ++j) {
        std::memset(out + j * 4, 0, 4);
      }
    }
  }
  // Compensation row: comp[j] = -128 * sum_p b[p][j], computed from the packed
  // bytes (padding is zero, so it never contributes).
  int32_t* comp = reinterpret_cast<int32_t*>(panel + kc4 * kNr * 4);
  int32_t sums[kNr * 4] = {};
  for (int64_t p4 = 0; p4 < kc4; ++p4) {
    const int8_t* blk = panel + p4 * kNr * 4;
#pragma omp simd
    for (int64_t t = 0; t < kNr * 4; ++t) {
      sums[t] += blk[t];
    }
  }
  for (int64_t j = 0; j < kNr; ++j) {
    comp[j] = -128 * (sums[j * 4] + sums[j * 4 + 1] + sums[j * 4 + 2] +
                      sums[j * 4 + 3]);
  }
}

// ------------------------------------------------------------ int8 microkernel

#if defined(__AVX512VNNI__)
// vpdpbusd tile: every 32-bit lane absorbs a 4-deep u8*s8 dot per step. The
// accumulators start from the compensation row, which cancels the +128 A bias.
// C is written through `cbuf` when clipping is needed (edge tiles).
template <bool kOverwrite>
void MicroI8FullVnni(int64_t kc4, const uint8_t* EGERIA_RESTRICT ap,
                     const int8_t* EGERIA_RESTRICT bp, const int32_t* comp,
                     int32_t* EGERIA_RESTRICT c, int64_t ldc) {
  static_assert(kNr == 32, "VNNI tile assumes two 16-lane accumulators per row");
  const __m512i comp0 = _mm512_loadu_si512(comp);
  const __m512i comp1 = _mm512_loadu_si512(comp + 16);
  __m512i acc[kMr][2];
  for (int64_t i = 0; i < kMr; ++i) {
    acc[i][0] = comp0;
    acc[i][1] = comp1;
  }
  for (int64_t p = 0; p < kc4; ++p) {
    const __m512i b0 = _mm512_loadu_si512(bp + p * kNr * 4);
    const __m512i b1 = _mm512_loadu_si512(bp + p * kNr * 4 + 64);
    const uint8_t* ablk = ap + p * kMr * 4;
    for (int64_t i = 0; i < kMr; ++i) {
      int32_t aword;
      std::memcpy(&aword, ablk + i * 4, 4);
      const __m512i va = _mm512_set1_epi32(aword);
      acc[i][0] = _mm512_dpbusd_epi32(acc[i][0], va, b0);
      acc[i][1] = _mm512_dpbusd_epi32(acc[i][1], va, b1);
    }
  }
  for (int64_t i = 0; i < kMr; ++i) {
    int32_t* crow = c + i * ldc;
    if (kOverwrite) {
      _mm512_storeu_si512(crow, acc[i][0]);
      _mm512_storeu_si512(crow + 16, acc[i][1]);
    } else {
      _mm512_storeu_si512(
          crow, _mm512_add_epi32(_mm512_loadu_si512(crow), acc[i][0]));
      _mm512_storeu_si512(
          crow + 16, _mm512_add_epi32(_mm512_loadu_si512(crow + 16), acc[i][1]));
    }
  }
}
#endif

// Portable dot4 tile (also the scalar reference for the VNNI path): same packed
// layout and compensation semantics, auto-vectorized widening arithmetic.
inline void MicroI8Acc(int64_t kc4, const uint8_t* EGERIA_RESTRICT ap,
                       const int8_t* EGERIA_RESTRICT bp, const int32_t* comp,
                       int32_t acc[kMr][kNr]) {
  for (int64_t i = 0; i < kMr; ++i) {
    for (int64_t j = 0; j < kNr; ++j) {
      acc[i][j] = comp[j];
    }
  }
  for (int64_t p = 0; p < kc4; ++p) {
    const uint8_t* ablk = ap + p * kMr * 4;
    const int8_t* bblk = bp + p * kNr * 4;
    for (int64_t i = 0; i < kMr; ++i) {
      const int32_t a0 = ablk[i * 4 + 0];
      const int32_t a1 = ablk[i * 4 + 1];
      const int32_t a2 = ablk[i * 4 + 2];
      const int32_t a3 = ablk[i * 4 + 3];
#pragma omp simd
      for (int64_t j = 0; j < kNr; ++j) {
        acc[i][j] += a0 * bblk[j * 4 + 0] + a1 * bblk[j * 4 + 1] +
                     a2 * bblk[j * 4 + 2] + a3 * bblk[j * 4 + 3];
      }
    }
  }
}

void MicroI8Edge(int64_t kc4, const uint8_t* ap, const int8_t* bp,
                 const int32_t* comp, int32_t* c, int64_t ldc, int64_t mr,
                 int64_t nr, bool overwrite) {
  int32_t acc[kMr][kNr];
#if defined(__AVX512VNNI__)
  MicroI8FullVnni<true>(kc4, ap, bp, comp, &acc[0][0], kNr);
#else
  MicroI8Acc(kc4, ap, bp, comp, acc);
#endif
  for (int64_t i = 0; i < mr; ++i) {
    int32_t* crow = c + i * ldc;
    for (int64_t j = 0; j < nr; ++j) {
      crow[j] = overwrite ? acc[i][j] : crow[j] + acc[i][j];
    }
  }
}

void BlockMultiplyI8(const uint8_t* apack, const char* bpack, int32_t* c,
                     int64_t ldc, int64_t mc, int64_t nc, int64_t kc,
                     bool overwrite) {
  const int64_t kc4 = I8Groups(kc);
  const int64_t mpanels = (mc + kMr - 1) / kMr;
  const int64_t npanels = (nc + kNr - 1) / kNr;
  for (int64_t ib = 0; ib < mpanels; ++ib) {
    const int64_t mr = std::min<int64_t>(kMr, mc - ib * kMr);
    const uint8_t* ap = apack + ib * kc4 * kMr * 4;
    for (int64_t jb = 0; jb < npanels; ++jb) {
      const int64_t nr = std::min<int64_t>(kNr, nc - jb * kNr);
      const int8_t* bp =
          reinterpret_cast<const int8_t*>(bpack + jb * BPanelBytesI8(kc));
      const int32_t* comp = reinterpret_cast<const int32_t*>(bp + kc4 * kNr * 4);
      int32_t* ctile = c + ib * kMr * ldc + jb * kNr;
      if (mr == kMr && nr == kNr) {
#if defined(__AVX512VNNI__)
        if (overwrite) {
          MicroI8FullVnni<true>(kc4, ap, bp, comp, ctile, ldc);
        } else {
          MicroI8FullVnni<false>(kc4, ap, bp, comp, ctile, ldc);
        }
#else
        int32_t acc[kMr][kNr];
        MicroI8Acc(kc4, ap, bp, comp, acc);
        for (int64_t i = 0; i < kMr; ++i) {
          int32_t* crow = ctile + i * ldc;
#pragma omp simd
          for (int64_t j = 0; j < kNr; ++j) {
            crow[j] = overwrite ? acc[i][j] : crow[j] + acc[i][j];
          }
        }
#endif
      } else {
        MicroI8Edge(kc4, ap, bp, comp, ctile, ldc, mr, nr, overwrite);
      }
    }
  }
}
EGERIA_END_INTRIN_NOWARN

// ------------------------------------------------------------- dtype traits
//
// Each trait binds a (SrcA, SrcB, Out) triple to its packing routines, packed
// panel strides, and block-multiply. The driver below owns blocking, scratch,
// and threading for all of them.

template <class SA, class SB>
struct FpTraits {
  using SrcA = SA;
  using SrcB = SB;
  using Out = float;
  static int64_t APanelBytes(int64_t kc) {
    return kc * kMr * static_cast<int64_t>(sizeof(float));
  }
  static int64_t BPanelBytes(int64_t kc) {
    return kc * kNr * static_cast<int64_t>(sizeof(float));
  }
  static void PackA(const SrcA* a, int64_t lda, bool trans_a, int64_t ic,
                    int64_t pc, int64_t mc, int64_t kc, char* dst) {
    PackAF<SrcA>(a, lda, trans_a, ic, pc, mc, kc, reinterpret_cast<float*>(dst));
  }
  static void PackBPanel(const SrcB* b, int64_t ldb, bool trans_b, int64_t jc,
                         int64_t pc, int64_t nc, int64_t kc, int64_t jb,
                         char* dst) {
    PackBPanelF<SrcB>(b, ldb, trans_b, jc, pc, nc, kc, jb,
                      reinterpret_cast<float*>(dst));
  }
  static void BlockMultiply(const char* apack, const char* bpack, Out* c,
                            int64_t ldc, int64_t mc, int64_t nc, int64_t kc,
                            bool overwrite) {
    BlockMultiplyF(reinterpret_cast<const float*>(apack),
                   reinterpret_cast<const float*>(bpack), c, ldc, mc, nc, kc,
                   overwrite);
  }
};

struct I8Traits {
  using SrcA = int8_t;
  using SrcB = int8_t;
  using Out = int32_t;
  static int64_t APanelBytes(int64_t kc) { return I8Groups(kc) * kMr * 4; }
  static int64_t BPanelBytes(int64_t kc) { return BPanelBytesI8(kc); }
  static void PackA(const SrcA* a, int64_t lda, bool trans_a, int64_t ic,
                    int64_t pc, int64_t mc, int64_t kc, char* dst) {
    PackAI8(a, lda, trans_a, ic, pc, mc, kc, reinterpret_cast<uint8_t*>(dst));
  }
  static void PackBPanel(const SrcB* b, int64_t ldb, bool trans_b, int64_t jc,
                         int64_t pc, int64_t nc, int64_t kc, int64_t jb,
                         char* dst) {
    PackBPanelI8(b, ldb, trans_b, jc, pc, nc, kc, jb, dst);
  }
  static void BlockMultiply(const char* apack, const char* bpack, Out* c,
                            int64_t ldc, int64_t mc, int64_t nc, int64_t kc,
                            bool overwrite) {
    BlockMultiplyI8(reinterpret_cast<const uint8_t*>(apack), bpack, c, ldc, mc,
                    nc, kc, overwrite);
  }
};

// ------------------------------------------------------------------- driver
//
// One Goto/BLIS block schedule for every dtype: jc (L3 B block) -> pc (k block,
// folded into C in fixed ascending order) -> parallel mc row blocks. Thread
// partitions own disjoint C tiles, so per-element arithmetic order — and hence
// the result, bitwise — is independent of the thread count.

template <class TR>
void GemmDriver(const typename TR::SrcA* a, const typename TR::SrcB* b,
                typename TR::Out* c, int64_t m, int64_t k, int64_t n,
                bool trans_a, bool trans_b, bool accumulate) {
  using Out = typename TR::Out;
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    if (!accumulate) {
      std::fill(c, c + m * n, Out{});
    }
    return;
  }
  const int64_t lda = trans_a ? m : k;
  const int64_t ldb = trans_b ? k : n;
  const bool parallel = 2 * m * n * k >= kParallelFlopThreshold;

  std::vector<char>& bpack = PackScratch<TR, 0>();
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      // The pc == 0 pass either overwrites C (accumulate=false) or adds to its
      // existing contents; every later pass accumulates partial products.
      const bool overwrite = pc == 0 && !accumulate;

      const int64_t npanels = (nc + kNr - 1) / kNr;
      const int64_t bstride = TR::BPanelBytes(kc);
      bpack.resize(static_cast<size_t>(npanels * bstride));
      char* bpack_data = bpack.data();
      const auto pack_b = [&](int64_t lo, int64_t hi) {
        for (int64_t jb = lo; jb < hi; ++jb) {
          TR::PackBPanel(b, ldb, trans_b, jc, pc, nc, kc, jb, bpack_data);
        }
      };
      if (parallel && nc * kc >= (int64_t{1} << 16)) {
        ParallelFor(npanels, 1, pack_b);
      } else {
        pack_b(0, npanels);
      }

      // Row-block height: kMc single-threaded (best packing reuse); when
      // parallel, shrink toward one block per thread — at kMr granularity — so
      // short-m problems (conv layers, small batches) still fan out.
      int64_t mc_step = kMc;
      if (parallel) {
        const int64_t threads = ComputePoolThreads();
        const int64_t want = RoundUp((m + threads - 1) / threads, kMr);
        mc_step = std::max<int64_t>(kMr, std::min(kMc, want));
      }
      const int64_t mblocks = (m + mc_step - 1) / mc_step;
      const auto run_blocks = [&](int64_t lo, int64_t hi) {
        std::vector<char>& apack = PackScratch<TR, 1>();
        apack.resize(static_cast<size_t>((RoundUp(mc_step, kMr) / kMr) *
                                         TR::APanelBytes(kc)));
        for (int64_t blk = lo; blk < hi; ++blk) {
          const int64_t ic = blk * mc_step;
          const int64_t mc = std::min(mc_step, m - ic);
          TR::PackA(a, lda, trans_a, ic, pc, mc, kc, apack.data());
          TR::BlockMultiply(apack.data(), bpack_data, c + ic * n + jc, n, mc, nc,
                            kc, overwrite);
        }
      };
      if (parallel && mblocks > 1) {
        ParallelFor(mblocks, 1, run_blocks);
      } else if (parallel) {
        // m fits one microkernel panel: fan out over B panels instead (each
        // writes a disjoint column tile of C).
        std::vector<char>& apack = PackScratch<TR, 1>();
        apack.resize(
            static_cast<size_t>((RoundUp(m, kMr) / kMr) * TR::APanelBytes(kc)));
        TR::PackA(a, lda, trans_a, 0, pc, m, kc, apack.data());
        const char* apack_data = apack.data();
        ParallelFor(npanels, 1, [&](int64_t lo, int64_t hi) {
          for (int64_t jb = lo; jb < hi; ++jb) {
            const int64_t nr = std::min<int64_t>(kNr, nc - jb * kNr);
            TR::BlockMultiply(apack_data, bpack_data + jb * bstride,
                              c + jc + jb * kNr, n, m, nr, kc, overwrite);
          }
        });
      } else {
        run_blocks(0, mblocks);
      }
    }
  }
}

// Dispatch-layer observability. Each typed entry point bumps an always-on
// per-dtype call counter (one relaxed atomic add; the reference is resolved
// once via a function-local static) and, when tracing is enabled and the
// problem is big enough to matter, emits a low-priority span with the shape
// as args. Low priority + the volume floor keep per-item conv GEMMs from
// flooding the per-thread buffers (see src/obs/trace.h).
constexpr int64_t kGemmTraceMinVolume = int64_t{1} << 20;  // m*k*n

class GemmTraceScope {
 public:
  GemmTraceScope(const char* dtype, int64_t m, int64_t k, int64_t n) {
    if (trace::Enabled() && m * k * n >= kGemmTraceMinVolume) {
      dtype_ = dtype;
      std::snprintf(args_, sizeof(args_),
                    "{\"m\":%lld,\"k\":%lld,\"n\":%lld}",
                    static_cast<long long>(m), static_cast<long long>(k),
                    static_cast<long long>(n));
      start_ns_ = trace::NowNs();
    }
  }
  ~GemmTraceScope() {
    if (dtype_ != nullptr) {
      trace::AddCompleteLowPrio("gemm", dtype_, start_ns_,
                                trace::NowNs() - start_ns_, args_);
    }
  }

 private:
  const char* dtype_ = nullptr;
  int64_t start_ns_ = 0;
  char args_[64];
};

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
          bool trans_a, bool trans_b, bool accumulate) {
  static obs::Counter& calls = obs::GetCounter("gemm.calls_fp32");
  calls.Add(1);
  GemmTraceScope span("fp32", m, k, n);
  GemmDriver<FpTraits<float, float>>(a, b, c, m, k, n, trans_a, trans_b, accumulate);
}

void Gemm(const _Float16* a, const _Float16* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  static obs::Counter& calls = obs::GetCounter("gemm.calls_fp16");
  calls.Add(1);
  GemmTraceScope span("fp16", m, k, n);
  GemmDriver<FpTraits<_Float16, _Float16>>(a, b, c, m, k, n, trans_a, trans_b,
                                           accumulate);
}

void Gemm(const float* a, const _Float16* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  static obs::Counter& calls = obs::GetCounter("gemm.calls_mixed");
  calls.Add(1);
  GemmTraceScope span("mixed_f32f16", m, k, n);
  GemmDriver<FpTraits<float, _Float16>>(a, b, c, m, k, n, trans_a, trans_b,
                                        accumulate);
}

void Gemm(const _Float16* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  static obs::Counter& calls = obs::GetCounter("gemm.calls_mixed");
  calls.Add(1);
  GemmTraceScope span("mixed_f16f32", m, k, n);
  GemmDriver<FpTraits<_Float16, float>>(a, b, c, m, k, n, trans_a, trans_b,
                                        accumulate);
}

void Gemm(const int8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  static obs::Counter& calls = obs::GetCounter("gemm.calls_int8");
  calls.Add(1);
  GemmTraceScope span("int8", m, k, n);
  GemmDriver<I8Traits>(a, b, c, m, k, n, trans_a, trans_b, accumulate);
}

void Gemm(GemmDtype a_dtype, GemmDtype b_dtype, const void* a, const void* b,
          void* c, int64_t m, int64_t k, int64_t n, bool trans_a, bool trans_b,
          bool accumulate) {
  if (a_dtype == GemmDtype::kI8 || b_dtype == GemmDtype::kI8) {
    EGERIA_CHECK_MSG(a_dtype == GemmDtype::kI8 && b_dtype == GemmDtype::kI8,
                     "Gemm: int8 cannot mix with float dtypes");
    Gemm(static_cast<const int8_t*>(a), static_cast<const int8_t*>(b),
         static_cast<int32_t*>(c), m, k, n, trans_a, trans_b, accumulate);
    return;
  }
  float* cf = static_cast<float*>(c);
  if (a_dtype == GemmDtype::kF32 && b_dtype == GemmDtype::kF32) {
    Gemm(static_cast<const float*>(a), static_cast<const float*>(b), cf, m, k, n,
         trans_a, trans_b, accumulate);
  } else if (a_dtype == GemmDtype::kF16 && b_dtype == GemmDtype::kF16) {
    Gemm(static_cast<const _Float16*>(a), static_cast<const _Float16*>(b), cf, m,
         k, n, trans_a, trans_b, accumulate);
  } else if (a_dtype == GemmDtype::kF32 && b_dtype == GemmDtype::kF16) {
    Gemm(static_cast<const float*>(a), static_cast<const _Float16*>(b), cf, m, k,
         n, trans_a, trans_b, accumulate);
  } else {
    Gemm(static_cast<const _Float16*>(a), static_cast<const float*>(b), cf, m, k,
         n, trans_a, trans_b, accumulate);
  }
}

void BatchedGemm(const float* a, const float* b, float* c, int64_t batch, int64_t m,
                 int64_t k, int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  if (batch <= 0) {
    return;
  }
  static obs::Counter& calls = obs::GetCounter("gemm.calls_batched");
  calls.Add(1);
  trace::Span span("gemm", "batched");
  if (span.active()) {
    span.SetArgs("{\"batch\":%lld,\"m\":%lld,\"k\":%lld,\"n\":%lld}",
                 static_cast<long long>(batch), static_cast<long long>(m),
                 static_cast<long long>(k), static_cast<long long>(n));
  }
  const int64_t a_stride = m * k;
  const int64_t b_stride = k * n;
  const int64_t c_stride = m * n;
  const auto run = [&](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      Gemm(a + bi * a_stride, b + bi * b_stride, c + bi * c_stride, m, k, n, trans_a,
           trans_b, accumulate);
    }
  };
  // Many small problems parallelize best across items (the nested Gemm then runs
  // serially); few large ones are better served by Gemm's internal row-block
  // parallelism.
  if (batch >= ComputePoolThreads()) {
    ParallelFor(batch, 1, run);
  } else {
    run(0, batch);
  }
}

}  // namespace egeria
