#include "src/tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/tensor/compute_pool.h"

#if defined(__GNUC__) || defined(__clang__)
#define EGERIA_RESTRICT __restrict__
#else
#define EGERIA_RESTRICT
#endif

namespace egeria {

namespace {

// Register tile: each microkernel invocation keeps an MR x NR fp32 accumulator
// block live across the whole k loop. With AVX-512 (32 vector registers) a
// 14 x 32 tile uses 28 ZMM accumulators plus the A broadcast and two B loads;
// narrower register files get 6 x 16 (12 YMM accumulators on AVX2). Measured on
// the CI machine: 14 x 32 sustains ~120 GFLOP/s single-threaded at 256^3 vs ~21
// for the naive i-k-j loop it replaced.
#if defined(__AVX512F__)
constexpr int64_t kMr = 14;
constexpr int64_t kNr = 32;
#else
constexpr int64_t kMr = 6;
constexpr int64_t kNr = 16;
#endif
// Cache blocking: the packed A block (kMc x kKc floats = 168 KiB) targets L2, the
// packed B panel reused by one row of microkernels (kKc x kNr = 48 KiB) streams
// through L1/L2, and the packed B block (kKc x kNc <= 6 MiB) targets L3. kMc must
// be a multiple of both tile heights (112 = 8*14, 96 would break the 14-row tile).
constexpr int64_t kKc = 384;
constexpr int64_t kMc = (112 / kMr) * kMr;  // 112 for the 14-row tile, 108 for 6.
constexpr int64_t kNc = 4096;

// Below this many multiply-adds, thread spawn/join overhead beats the speedup and
// the whole problem runs on the calling thread.
constexpr int64_t kParallelFlopThreshold = int64_t{1} << 19;

int64_t RoundUp(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

std::vector<float>& APackScratch() {
  thread_local std::vector<float> buf;
  return buf;
}

std::vector<float>& BPackScratch() {
  thread_local std::vector<float> buf;
  return buf;
}

// ---------------------------------------------------------------------- packing
//
// A is packed into column-major MR-row panels: panel ib holds rows
// [ib*MR, ib*MR+MR) as ap[ib*kc*MR + p*MR + r], so the microkernel reads MR
// contiguous floats per k step. Short edge panels are zero-padded to MR, which
// keeps the microkernel branch-free; the store path clips the padding. B is
// packed the same way into NR-column panels.

void PackA(const float* a, int64_t lda, bool trans_a, int64_t ic, int64_t pc,
           int64_t mc, int64_t kc, float* EGERIA_RESTRICT dst) {
  const int64_t panels = (mc + kMr - 1) / kMr;
  for (int64_t ib = 0; ib < panels; ++ib) {
    const int64_t i0 = ic + ib * kMr;
    const int64_t mr = std::min<int64_t>(kMr, ic + mc - i0);
    float* EGERIA_RESTRICT panel = dst + ib * kc * kMr;
    if (trans_a) {
      // A stored [k, m]: each k step reads mr contiguous floats.
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = a + (pc + p) * lda + i0;
        float* out = panel + p * kMr;
        for (int64_t r = 0; r < mr; ++r) {
          out[r] = src[r];
        }
        for (int64_t r = mr; r < kMr; ++r) {
          out[r] = 0.0F;
        }
      }
    } else {
      // A stored [m, k]: walk each row once, scattering with stride MR.
      for (int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + r) * lda + pc;
        for (int64_t p = 0; p < kc; ++p) {
          panel[p * kMr + r] = src[p];
        }
      }
      for (int64_t r = mr; r < kMr; ++r) {
        for (int64_t p = 0; p < kc; ++p) {
          panel[p * kMr + r] = 0.0F;
        }
      }
    }
  }
}

void PackBPanel(const float* b, int64_t ldb, bool trans_b, int64_t jc, int64_t pc,
                int64_t nc, int64_t kc, int64_t jb, float* EGERIA_RESTRICT dst) {
  const int64_t j0 = jc + jb * kNr;
  const int64_t nr = std::min<int64_t>(kNr, jc + nc - j0);
  float* EGERIA_RESTRICT panel = dst + jb * kc * kNr;
  if (trans_b) {
    // B stored [n, k]: walk each column's row once, scattering with stride NR.
    for (int64_t j = 0; j < nr; ++j) {
      const float* src = b + (j0 + j) * ldb + pc;
      for (int64_t p = 0; p < kc; ++p) {
        panel[p * kNr + j] = src[p];
      }
    }
    for (int64_t j = nr; j < kNr; ++j) {
      for (int64_t p = 0; p < kc; ++p) {
        panel[p * kNr + j] = 0.0F;
      }
    }
  } else {
    // B stored [k, n]: each k step copies nr contiguous floats.
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = b + (pc + p) * ldb + j0;
      float* out = panel + p * kNr;
      for (int64_t j = 0; j < nr; ++j) {
        out[j] = src[j];
      }
      for (int64_t j = nr; j < kNr; ++j) {
        out[j] = 0.0F;
      }
    }
  }
}

// ------------------------------------------------------------------ microkernel

// acc[MR][NR] += A-panel * B-panel over kc steps. The accumulator array is small
// enough for the compiler to keep in vector registers; `#pragma omp simd` marks
// the NR loop as dependence-free so it vectorizes without intrinsics.
inline void MicroKernelAcc(int64_t kc, const float* EGERIA_RESTRICT ap,
                           const float* EGERIA_RESTRICT bp,
                           float acc[kMr][kNr]) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* EGERIA_RESTRICT arow = ap + p * kMr;
    const float* EGERIA_RESTRICT brow = bp + p * kNr;
    for (int64_t i = 0; i < kMr; ++i) {
      const float av = arow[i];
#pragma omp simd
      for (int64_t j = 0; j < kNr; ++j) {
        acc[i][j] += av * brow[j];
      }
    }
  }
}

// Full MR x NR tile: store straight into C.
template <bool kOverwrite>
void MicroKernelFull(int64_t kc, const float* EGERIA_RESTRICT ap,
                     const float* EGERIA_RESTRICT bp, float* EGERIA_RESTRICT c,
                     int64_t ldc) {
  float acc[kMr][kNr] = {};
  MicroKernelAcc(kc, ap, bp, acc);
  for (int64_t i = 0; i < kMr; ++i) {
    float* crow = c + i * ldc;
#pragma omp simd
    for (int64_t j = 0; j < kNr; ++j) {
      crow[j] = kOverwrite ? acc[i][j] : crow[j] + acc[i][j];
    }
  }
}

// Edge tile: compute the full padded tile, store only the valid mr x nr corner.
void MicroKernelEdge(int64_t kc, const float* EGERIA_RESTRICT ap,
                     const float* EGERIA_RESTRICT bp, float* EGERIA_RESTRICT c,
                     int64_t ldc, int64_t mr, int64_t nr, bool overwrite) {
  float acc[kMr][kNr] = {};
  MicroKernelAcc(kc, ap, bp, acc);
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr; ++j) {
      crow[j] = overwrite ? acc[i][j] : crow[j] + acc[i][j];
    }
  }
}

// One packed A block (mc x kc) times the packed B block (kc x nc) into C.
void BlockMultiply(const float* apack, const float* bpack, float* c, int64_t ldc,
                   int64_t mc, int64_t nc, int64_t kc, bool overwrite) {
  const int64_t mpanels = (mc + kMr - 1) / kMr;
  const int64_t npanels = (nc + kNr - 1) / kNr;
  for (int64_t ib = 0; ib < mpanels; ++ib) {
    const int64_t mr = std::min<int64_t>(kMr, mc - ib * kMr);
    const float* ap = apack + ib * kc * kMr;
    for (int64_t jb = 0; jb < npanels; ++jb) {
      const int64_t nr = std::min<int64_t>(kNr, nc - jb * kNr);
      const float* bp = bpack + jb * kc * kNr;
      float* ctile = c + ib * kMr * ldc + jb * kNr;
      if (mr == kMr && nr == kNr) {
        if (overwrite) {
          MicroKernelFull<true>(kc, ap, bp, ctile, ldc);
        } else {
          MicroKernelFull<false>(kc, ap, bp, ctile, ldc);
        }
      } else {
        MicroKernelEdge(kc, ap, bp, ctile, ldc, mr, nr, overwrite);
      }
    }
  }
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
          bool trans_a, bool trans_b, bool accumulate) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0) {
    if (!accumulate) {
      std::fill(c, c + m * n, 0.0F);
    }
    return;
  }
  const int64_t lda = trans_a ? m : k;
  const int64_t ldb = trans_b ? k : n;
  const bool parallel = 2 * m * n * k >= kParallelFlopThreshold;

  std::vector<float>& bpack = BPackScratch();
  for (int64_t jc = 0; jc < n; jc += kNc) {
    const int64_t nc = std::min(kNc, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      // The pc == 0 pass either overwrites C (accumulate=false) or adds to its
      // existing contents; every later pass accumulates partial products.
      const bool overwrite = pc == 0 && !accumulate;

      const int64_t npanels = (nc + kNr - 1) / kNr;
      bpack.resize(static_cast<size_t>(RoundUp(nc, kNr) * kc));
      float* bpack_data = bpack.data();
      const auto pack_b = [&](int64_t lo, int64_t hi) {
        for (int64_t jb = lo; jb < hi; ++jb) {
          PackBPanel(b, ldb, trans_b, jc, pc, nc, kc, jb, bpack_data);
        }
      };
      if (parallel && nc * kc >= (int64_t{1} << 16)) {
        ParallelFor(npanels, 1, pack_b);
      } else {
        pack_b(0, npanels);
      }

      // Row-block height: kMc single-threaded (best packing reuse); when
      // parallel, shrink toward one block per thread — at kMr granularity — so
      // short-m problems (conv layers, small batches) still fan out.
      int64_t mc_step = kMc;
      if (parallel) {
        const int64_t threads = ComputePoolThreads();
        const int64_t want = RoundUp((m + threads - 1) / threads, kMr);
        mc_step = std::max<int64_t>(kMr, std::min(kMc, want));
      }
      const int64_t mblocks = (m + mc_step - 1) / mc_step;
      const auto run_blocks = [&](int64_t lo, int64_t hi) {
        std::vector<float>& apack = APackScratch();
        apack.resize(static_cast<size_t>(RoundUp(mc_step, kMr) * kc));
        for (int64_t blk = lo; blk < hi; ++blk) {
          const int64_t ic = blk * mc_step;
          const int64_t mc = std::min(mc_step, m - ic);
          PackA(a, lda, trans_a, ic, pc, mc, kc, apack.data());
          BlockMultiply(apack.data(), bpack_data, c + ic * n + jc, n, mc, nc, kc,
                        overwrite);
        }
      };
      if (parallel && mblocks > 1) {
        ParallelFor(mblocks, 1, run_blocks);
      } else if (parallel) {
        // m fits one microkernel panel: fan out over B panels instead (each
        // writes a disjoint column tile of C).
        std::vector<float>& apack = APackScratch();
        apack.resize(static_cast<size_t>(RoundUp(m, kMr) * kc));
        PackA(a, lda, trans_a, 0, pc, m, kc, apack.data());
        const float* apack_data = apack.data();
        ParallelFor(npanels, 1, [&](int64_t lo, int64_t hi) {
          for (int64_t jb = lo; jb < hi; ++jb) {
            const int64_t nr = std::min<int64_t>(kNr, nc - jb * kNr);
            BlockMultiply(apack_data, bpack_data + jb * kc * kNr, c + jc + jb * kNr,
                          n, m, nr, kc, overwrite);
          }
        });
      } else {
        run_blocks(0, mblocks);
      }
    }
  }
}

void BatchedGemm(const float* a, const float* b, float* c, int64_t batch, int64_t m,
                 int64_t k, int64_t n, bool trans_a, bool trans_b, bool accumulate) {
  if (batch <= 0) {
    return;
  }
  const int64_t a_stride = m * k;
  const int64_t b_stride = k * n;
  const int64_t c_stride = m * n;
  const auto run = [&](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      Gemm(a + bi * a_stride, b + bi * b_stride, c + bi * c_stride, m, k, n, trans_a,
           trans_b, accumulate);
    }
  };
  // Many small problems parallelize best across items (the nested Gemm then runs
  // serially); few large ones are better served by Gemm's internal row-block
  // parallelism.
  if (batch >= ComputePoolThreads()) {
    ParallelFor(batch, 1, run);
  } else {
    run(0, batch);
  }
}

}  // namespace egeria
