#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace egeria {

namespace {

int64_t ComputeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    EGERIA_CHECK_MSG(d >= 0, "negative dimension");
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(ComputeNumel(shape_)) {
  // new float[n]() value-initializes (zeros); Uninitialized() omits the ().
  storage_ = std::shared_ptr<float[]>(new float[static_cast<size_t>(numel_)]());
}

Tensor Tensor::Uninitialized(std::vector<int64_t> shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = ComputeNumel(t.shape_);
  t.storage_ = std::shared_ptr<float[]>(new float[static_cast<size_t>(t.numel_)]);
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  Tensor t(std::move(shape));
  t.Fill_(1.0F);
  return t;
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill_(value);
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> values) {
  Tensor t = Uninitialized(std::move(shape));
  EGERIA_CHECK_MSG(static_cast<int64_t>(values.size()) == t.numel_,
                   "FromVector size mismatch");
  std::copy(values.begin(), values.end(), t.Data());
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float stddev) {
  Tensor t = Uninitialized(std::move(shape));
  float* p = t.Data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = rng.NextGaussian() * stddev;
  }
  return t;
}

Tensor Tensor::Rand(std::vector<int64_t> shape, Rng& rng, float lo, float hi) {
  Tensor t = Uninitialized(std::move(shape));
  float* p = t.Data();
  for (int64_t i = 0; i < t.numel_; ++i) {
    p[i] = rng.NextUniform(lo, hi);
  }
  return t;
}

int64_t Tensor::Size(int d) const {
  if (d < 0) {
    d += Dim();
  }
  EGERIA_CHECK(d >= 0 && d < Dim());
  return shape_[static_cast<size_t>(d)];
}

std::string Tensor::ShapeStr() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

float* Tensor::Data() {
  EGERIA_CHECK_MSG(storage_ != nullptr, "Data() on undefined tensor");
  return storage_.get();
}

const float* Tensor::Data() const {
  EGERIA_CHECK_MSG(storage_ != nullptr, "Data() on undefined tensor");
  return storage_.get();
}

float& Tensor::At(int64_t i) { return Data()[i]; }
float Tensor::At(int64_t i) const { return Data()[i]; }

float& Tensor::At(int64_t i, int64_t j) { return Data()[i * shape_[1] + j]; }
float Tensor::At(int64_t i, int64_t j) const { return Data()[i * shape_[1] + j]; }

float& Tensor::At(int64_t i, int64_t j, int64_t k) {
  return Data()[(i * shape_[1] + j) * shape_[2] + k];
}
float Tensor::At(int64_t i, int64_t j, int64_t k) const {
  return Data()[(i * shape_[1] + j) * shape_[2] + k];
}

float& Tensor::At(int64_t i, int64_t j, int64_t k, int64_t l) {
  return Data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}
float Tensor::At(int64_t i, int64_t j, int64_t k, int64_t l) const {
  return Data()[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}

Tensor Tensor::Clone() const {
  if (!Defined()) {
    return Tensor();
  }
  Tensor t = Uninitialized(shape_);
  std::copy(Data(), Data() + numel_, t.Data());
  return t;
}

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  // Support a single -1 (inferred) dimension, matching common framework semantics.
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      EGERIA_CHECK_MSG(infer == -1, "multiple -1 dims in Reshape");
      infer = static_cast<int>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    EGERIA_CHECK(known > 0 && numel_ % known == 0);
    shape[static_cast<size_t>(infer)] = numel_ / known;
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = ComputeNumel(t.shape_);
  EGERIA_CHECK_MSG(t.numel_ == numel_, "Reshape numel mismatch");
  t.storage_ = storage_;
  return t;
}

void Tensor::MakeUnique() {
  if (storage_ != nullptr && storage_.use_count() > 1) {
    std::shared_ptr<float[]> copy(new float[static_cast<size_t>(numel_)]);
    std::copy(storage_.get(), storage_.get() + numel_, copy.get());
    storage_ = std::move(copy);
  }
}

Tensor& Tensor::Add_(const Tensor& other) { return AddScaled_(other, 1.0F); }

Tensor& Tensor::Sub_(const Tensor& other) { return AddScaled_(other, -1.0F); }

Tensor& Tensor::Mul_(const Tensor& other) {
  EGERIA_CHECK_MSG(numel_ == other.numel_, "Mul_ shape mismatch");
  float* p = Data();
  const float* q = other.Data();
  for (int64_t i = 0; i < numel_; ++i) {
    p[i] *= q[i];
  }
  return *this;
}

Tensor& Tensor::AddScaled_(const Tensor& other, float alpha) {
  EGERIA_CHECK_MSG(numel_ == other.numel_, "AddScaled_ shape mismatch");
  float* p = Data();
  const float* q = other.Data();
  for (int64_t i = 0; i < numel_; ++i) {
    p[i] += alpha * q[i];
  }
  return *this;
}

Tensor& Tensor::Scale_(float alpha) {
  float* p = Data();
  for (int64_t i = 0; i < numel_; ++i) {
    p[i] *= alpha;
  }
  return *this;
}

Tensor& Tensor::AddScalar_(float alpha) {
  float* p = Data();
  for (int64_t i = 0; i < numel_; ++i) {
    p[i] += alpha;
  }
  return *this;
}

Tensor& Tensor::Fill_(float value) {
  float* p = Data();
  for (int64_t i = 0; i < numel_; ++i) {
    p[i] = value;
  }
  return *this;
}

Tensor& Tensor::Zero_() { return Fill_(0.0F); }

Tensor Tensor::Add(const Tensor& other) const {
  Tensor t = Clone();
  t.Add_(other);
  return t;
}

Tensor Tensor::Sub(const Tensor& other) const {
  Tensor t = Clone();
  t.Sub_(other);
  return t;
}

Tensor Tensor::Mul(const Tensor& other) const {
  Tensor t = Clone();
  t.Mul_(other);
  return t;
}

Tensor Tensor::Scale(float alpha) const {
  Tensor t = Clone();
  t.Scale_(alpha);
  return t;
}

float Tensor::Sum() const {
  const float* p = Data();
  double s = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    s += p[i];
  }
  return static_cast<float>(s);
}

float Tensor::Mean() const {
  EGERIA_CHECK(numel_ > 0);
  return Sum() / static_cast<float>(numel_);
}

float Tensor::AbsMax() const {
  const float* p = Data();
  float m = 0.0F;
  for (int64_t i = 0; i < numel_; ++i) {
    const float a = std::abs(p[i]);
    if (a > m) {
      m = a;
    }
  }
  return m;
}

float Tensor::Min() const {
  EGERIA_CHECK(numel_ > 0);
  const float* p = Data();
  float m = p[0];
  for (int64_t i = 1; i < numel_; ++i) {
    if (p[i] < m) {
      m = p[i];
    }
  }
  return m;
}

float Tensor::Max() const {
  EGERIA_CHECK(numel_ > 0);
  const float* p = Data();
  float m = p[0];
  for (int64_t i = 1; i < numel_; ++i) {
    if (p[i] > m) {
      m = p[i];
    }
  }
  return m;
}

float Tensor::L2Norm() const {
  const float* p = Data();
  double s = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    s += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return static_cast<float>(std::sqrt(s));
}

float Tensor::Dot(const Tensor& other) const {
  EGERIA_CHECK_MSG(numel_ == other.numel_, "Dot shape mismatch");
  const float* p = Data();
  const float* q = other.Data();
  double s = 0.0;
  for (int64_t i = 0; i < numel_; ++i) {
    s += static_cast<double>(p[i]) * static_cast<double>(q[i]);
  }
  return static_cast<float>(s);
}

bool Tensor::HasNonFinite() const {
  if (!Defined()) {
    return false;
  }
  const float* p = Data();
  for (int64_t i = 0; i < numel_; ++i) {
    if (!std::isfinite(p[i])) {
      return true;
    }
  }
  return false;
}

}  // namespace egeria
