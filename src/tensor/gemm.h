// Packed, cache-blocked, multithreaded single-precision GEMM.
//
// One dispatch serves every matmul in the repo (dense layers, attention, im2col
// convolution, CCA metrics): C[m,n] (+)= op(A) * op(B) with row-major storage,
// where op transposes the operand's two dimensions. The implementation follows
// the classic Goto/BLIS decomposition — see src/tensor/README.md for the blocking
// parameters, packing layout, and threading model.
//
// Accumulation semantics are uniform across all transpose combinations: fp32
// microkernel accumulators, with k-blocks folded into C in a fixed order. Results
// are bitwise identical for any thread count (threads partition disjoint C row
// blocks; the arithmetic order per C element never depends on the partition).
#ifndef EGERIA_SRC_TENSOR_GEMM_H_
#define EGERIA_SRC_TENSOR_GEMM_H_

#include <cstdint>

namespace egeria {

// C[m,n] (+)= op(A)[m,k] * op(B)[k,n].
// A is stored row-major as [m,k] (or [k,m] when trans_a); B as [k,n] (or [n,k]
// when trans_b). When accumulate is false, C is overwritten (no prior zero-fill
// of C is needed); when true, the product is added to C's existing contents.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
          bool trans_a, bool trans_b, bool accumulate);

// Batched variant over `batch` independent problems laid out contiguously:
// C[bi] (+)= op(A[bi]) * op(B[bi]). Parallelizes across batch items (each item
// then runs a single-threaded Gemm), or within the single item when batch == 1.
void BatchedGemm(const float* a, const float* b, float* c, int64_t batch, int64_t m,
                 int64_t k, int64_t n, bool trans_a, bool trans_b, bool accumulate);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_GEMM_H_
