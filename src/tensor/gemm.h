// Packed, cache-blocked, multithreaded GEMM with mixed-precision dtype paths.
//
// One dispatch serves every matmul in the repo (dense layers, attention, im2col
// convolution, CCA metrics, quantized reference kernels): C[m,n] (+)= op(A) *
// op(B) with row-major storage, where op transposes the operand's two
// dimensions. All dtypes share one Goto/BLIS blocking and compute-pool
// threading model — see src/tensor/README.md for the blocking parameters,
// packing layouts, and accumulation rules.
//
// Three storage dtypes are supported, selected by overload (or dynamically via
// the GemmDtype-tagged entry point):
//   fp32         — float operands, fp32 accumulation (the training path).
//   fp16         — _Float16 storage for either or both operands; panels are
//                  converted to fp32 at pack time so the fp32 microkernel runs
//                  unchanged (fp32 accumulation, half the operand bandwidth).
//   int8         — int8 operands, exact int32 accumulation via a dot4
//                  (vpdpbusd/VNNI-style) microkernel; per-channel requantization
//                  belongs to the caller (src/quant).
//
// Accumulation semantics are uniform across transpose combinations and dtypes:
// fp32 (or int32) microkernel accumulators, with k-blocks folded into C in a
// fixed order. Results are bitwise identical for any thread count (threads
// partition disjoint C tiles; the arithmetic order per C element never depends
// on the partition).
#ifndef EGERIA_SRC_TENSOR_GEMM_H_
#define EGERIA_SRC_TENSOR_GEMM_H_

#include <cstdint>

namespace egeria {

// Storage dtype tag for the dynamic Gemm entry point.
enum class GemmDtype : uint8_t { kF32, kF16, kI8 };

// C[m,n] (+)= op(A)[m,k] * op(B)[k,n].
// A is stored row-major as [m,k] (or [k,m] when trans_a); B as [k,n] (or [n,k]
// when trans_b). When accumulate is false, C is overwritten (no prior zero-fill
// of C is needed); when true, the product is added to C's existing contents.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
          bool trans_a, bool trans_b, bool accumulate);

// fp16-storage variants: operands held as _Float16 stream at half bandwidth and
// are converted to fp32 panels during packing; accumulation is fp32. The mixed
// overloads cover the inference-kernel layouts (fp16 weights x fp32
// activations) without materializing a converted copy of either operand.
void Gemm(const _Float16* a, const _Float16* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate);
void Gemm(const float* a, const _Float16* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate);
void Gemm(const _Float16* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate);

// int8 variant: C[m,n] (+)= op(A) * op(B) with *exact* int32 accumulation
// (dot4 microkernel; results are integer-exact as long as the true value of
// every C element stays within int32, which holds for k < ~130k at full-range
// int8 inputs). Dequantization / per-channel rescale is the caller's job.
void Gemm(const int8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
          int64_t n, bool trans_a, bool trans_b, bool accumulate);

// Dynamic-dtype entry point: dispatches on the operand dtype tags. Supported
// combinations: (f32,f32) and any mix of f32/f16 write a float C; (i8,i8)
// writes an int32 C. Anything else CHECK-fails.
void Gemm(GemmDtype a_dtype, GemmDtype b_dtype, const void* a, const void* b,
          void* c, int64_t m, int64_t k, int64_t n, bool trans_a, bool trans_b,
          bool accumulate);

// Batched variant over `batch` independent problems laid out contiguously:
// C[bi] (+)= op(A[bi]) * op(B[bi]). Parallelizes across batch items (each item
// then runs a single-threaded Gemm), or within the single item when batch == 1.
void BatchedGemm(const float* a, const float* b, float* c, int64_t batch, int64_t m,
                 int64_t k, int64_t n, bool trans_a, bool trans_b, bool accumulate);

}  // namespace egeria

#endif  // EGERIA_SRC_TENSOR_GEMM_H_
