#include "src/tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "src/util/logging.h"

namespace egeria {

namespace {

constexpr uint32_t kTensorMagicV1 = 0x4E544745;      // 'EGTN' (no checksum)
constexpr uint32_t kTensorMagicV2 = 0x32544745;      // 'EGT2'
constexpr uint32_t kCheckpointMagicV1 = 0x4B434745;  // 'EGCK'
constexpr uint32_t kCheckpointMagicV2 = 0x32434745;  // 'EGC2'
constexpr uint32_t kFormatVersion = 2;

// Hard sanity caps for on-disk metadata. A header violating them is corrupt
// (or adversarial), not merely large: the biggest tensors in this repo are a
// few hundred MB, so 1 TiB of payload or a 2^32 extent is never legitimate.
constexpr uint32_t kMaxNdim = 8;
constexpr int64_t kMaxDimExtent = int64_t{1} << 32;
constexpr int64_t kMaxNumel = int64_t{1} << 38;  // 1 TiB of f32
constexpr uint32_t kMaxNameLen = 1U << 20;

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(is);
}

std::string Where(const std::string& context) {
  return context.empty() ? std::string("tensor stream") : context;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t len, uint64_t h) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void WriteTensor(std::ostream& os, const Tensor& t) {
  WritePod(os, kTensorMagicV2);
  WritePod(os, kFormatVersion);
  const uint32_t ndim = static_cast<uint32_t>(t.Dim());
  WritePod(os, ndim);
  for (int d = 0; d < t.Dim(); ++d) {
    WritePod(os, t.Size(d));
  }
  const size_t bytes = static_cast<size_t>(t.NumEl()) * sizeof(float);
  const uint64_t checksum = t.NumEl() > 0 ? Fnv1a64(t.Data(), bytes) : kFnv64Offset;
  WritePod(os, checksum);
  if (t.NumEl() > 0) {
    os.write(reinterpret_cast<const char*>(t.Data()),
             static_cast<std::streamsize>(bytes));
  }
}

Tensor ReadTensor(std::istream& is, const std::string& context) {
  uint32_t magic = 0;
  if (!ReadPod(is, magic)) {
    EGERIA_LOG(kError) << Where(context) << ": truncated before tensor magic";
    return Tensor();
  }
  if (magic != kTensorMagicV1 && magic != kTensorMagicV2) {
    EGERIA_LOG(kError) << Where(context) << ": bad tensor magic 0x" << std::hex << magic;
    return Tensor();
  }
  const bool v2 = magic == kTensorMagicV2;
  if (v2) {
    uint32_t version = 0;
    if (!ReadPod(is, version) || version < 2 || version > kFormatVersion) {
      EGERIA_LOG(kError) << Where(context) << ": unsupported tensor format version "
                         << version;
      return Tensor();
    }
  }
  uint32_t ndim = 0;
  if (!ReadPod(is, ndim) || ndim > kMaxNdim) {
    EGERIA_LOG(kError) << Where(context) << ": absurd ndim " << ndim;
    return Tensor();
  }
  std::vector<int64_t> shape(ndim);
  int64_t numel = 1;
  for (auto& d : shape) {
    if (!ReadPod(is, d) || d < 0 || d > kMaxDimExtent) {
      EGERIA_LOG(kError) << Where(context) << ": absurd/truncated dim " << d;
      return Tensor();
    }
    numel *= (d == 0 ? 1 : d);
    if (numel > kMaxNumel) {
      EGERIA_LOG(kError) << Where(context) << ": tensor payload exceeds sanity cap";
      return Tensor();
    }
  }
  uint64_t stored_checksum = 0;
  if (v2 && !ReadPod(is, stored_checksum)) {
    EGERIA_LOG(kError) << Where(context) << ": truncated before tensor checksum";
    return Tensor();
  }
  Tensor t(shape);
  if (t.NumEl() > 0) {
    const size_t bytes = static_cast<size_t>(t.NumEl()) * sizeof(float);
    is.read(reinterpret_cast<char*>(t.Data()), static_cast<std::streamsize>(bytes));
    if (!is) {
      EGERIA_LOG(kError) << Where(context) << ": truncated tensor data (expected "
                         << bytes << " bytes)";
      return Tensor();
    }
    if (v2) {
      const uint64_t actual = Fnv1a64(t.Data(), bytes);
      if (actual != stored_checksum) {
        EGERIA_LOG(kError) << Where(context) << ": tensor checksum mismatch (stored 0x"
                           << std::hex << stored_checksum << ", computed 0x" << actual
                           << ")";
        return Tensor();
      }
    }
  } else if (v2 && stored_checksum != kFnv64Offset) {
    EGERIA_LOG(kError) << Where(context) << ": empty tensor with nonzero checksum";
    return Tensor();
  }
  return t;
}

bool SaveTensorFile(const std::string& path, const Tensor& t) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  WriteTensor(os, t);
  return static_cast<bool>(os);
}

Tensor LoadTensorFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Tensor();
  }
  return ReadTensor(is, path);
}

bool SaveCheckpoint(const std::string& path, const Checkpoint& ckpt) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  WritePod(os, kCheckpointMagicV2);
  WritePod(os, kFormatVersion);
  WritePod(os, static_cast<uint64_t>(ckpt.size()));
  for (const auto& [name, tensor] : ckpt) {
    WritePod(os, static_cast<uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteTensor(os, tensor);
  }
  return static_cast<bool>(os);
}

bool LoadCheckpoint(const std::string& path, Checkpoint& ckpt) {
  ckpt.clear();
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    EGERIA_LOG(kError) << path << ": cannot open checkpoint";
    return false;
  }
  uint32_t magic = 0;
  if (!ReadPod(is, magic) ||
      (magic != kCheckpointMagicV1 && magic != kCheckpointMagicV2)) {
    EGERIA_LOG(kError) << path << ": bad checkpoint magic";
    return false;
  }
  if (magic == kCheckpointMagicV2) {
    uint32_t version = 0;
    if (!ReadPod(is, version) || version < 2 || version > kFormatVersion) {
      EGERIA_LOG(kError) << path << ": unsupported checkpoint format version " << version;
      return false;
    }
  }
  uint64_t count = 0;
  if (!ReadPod(is, count)) {
    EGERIA_LOG(kError) << path << ": truncated checkpoint header";
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!ReadPod(is, len) || len > kMaxNameLen) {
      EGERIA_LOG(kError) << path << ": absurd/truncated entry name length";
      ckpt.clear();
      return false;
    }
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    if (!is) {
      EGERIA_LOG(kError) << path << ": truncated entry name";
      ckpt.clear();
      return false;
    }
    Tensor t = ReadTensor(is, path + ":" + name);
    if (!t.Defined()) {
      ckpt.clear();
      return false;
    }
    ckpt.emplace(std::move(name), std::move(t));
  }
  return true;
}

}  // namespace egeria
