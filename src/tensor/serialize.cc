#include "src/tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "src/util/logging.h"

namespace egeria {

namespace {

constexpr uint32_t kTensorMagic = 0x4E544745;      // 'EGTN'
constexpr uint32_t kCheckpointMagic = 0x4B434745;  // 'EGCK'

template <typename T>
void WritePod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

void WriteTensor(std::ostream& os, const Tensor& t) {
  WritePod(os, kTensorMagic);
  const uint32_t ndim = static_cast<uint32_t>(t.Dim());
  WritePod(os, ndim);
  for (int d = 0; d < t.Dim(); ++d) {
    WritePod(os, t.Size(d));
  }
  if (t.NumEl() > 0) {
    os.write(reinterpret_cast<const char*>(t.Data()),
             static_cast<std::streamsize>(t.NumEl() * sizeof(float)));
  }
}

Tensor ReadTensor(std::istream& is) {
  uint32_t magic = 0;
  if (!ReadPod(is, magic) || magic != kTensorMagic) {
    return Tensor();
  }
  uint32_t ndim = 0;
  if (!ReadPod(is, ndim) || ndim > 8) {
    return Tensor();
  }
  std::vector<int64_t> shape(ndim);
  for (auto& d : shape) {
    if (!ReadPod(is, d) || d < 0) {
      return Tensor();
    }
  }
  Tensor t(shape);
  if (t.NumEl() > 0) {
    is.read(reinterpret_cast<char*>(t.Data()),
            static_cast<std::streamsize>(t.NumEl() * sizeof(float)));
    if (!is) {
      return Tensor();
    }
  }
  return t;
}

bool SaveTensorFile(const std::string& path, const Tensor& t) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  WriteTensor(os, t);
  return static_cast<bool>(os);
}

Tensor LoadTensorFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Tensor();
  }
  return ReadTensor(is);
}

bool SaveCheckpoint(const std::string& path, const Checkpoint& ckpt) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return false;
  }
  WritePod(os, kCheckpointMagic);
  WritePod(os, static_cast<uint64_t>(ckpt.size()));
  for (const auto& [name, tensor] : ckpt) {
    WritePod(os, static_cast<uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteTensor(os, tensor);
  }
  return static_cast<bool>(os);
}

bool LoadCheckpoint(const std::string& path, Checkpoint& ckpt) {
  ckpt.clear();
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return false;
  }
  uint32_t magic = 0;
  if (!ReadPod(is, magic) || magic != kCheckpointMagic) {
    return false;
  }
  uint64_t count = 0;
  if (!ReadPod(is, count)) {
    return false;
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!ReadPod(is, len) || len > (1U << 20)) {
      ckpt.clear();
      return false;
    }
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    if (!is) {
      ckpt.clear();
      return false;
    }
    Tensor t = ReadTensor(is);
    if (!t.Defined()) {
      ckpt.clear();
      return false;
    }
    ckpt.emplace(std::move(name), std::move(t));
  }
  return true;
}

}  // namespace egeria
