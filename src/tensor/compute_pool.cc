#include "src/tensor/compute_pool.h"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "src/util/thread_pool.h"

namespace egeria {

namespace {

// True while the current thread is executing a ParallelFor chunk; nested
// ParallelFor calls from such a thread run serially (shipping sub-chunks back to
// the pool the caller occupies can deadlock a small pool).
thread_local bool t_in_compute_chunk = false;

// RAII so the flag unwinds correctly if a chunk body throws.
struct ChunkFlagGuard {
  bool prev;
  ChunkFlagGuard() : prev(t_in_compute_chunk) { t_in_compute_chunk = true; }
  ~ChunkFlagGuard() { t_in_compute_chunk = prev; }
};

int ResolveThreadCount() {
  if (const char* env = std::getenv("EGERIA_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Leaked on purpose: kernel calls can race with static destruction at process
// exit (e.g. from detached helpers), and the OS reclaims the threads anyway.
ThreadPool* Pool() {
  static ThreadPool* pool = [] {
    const int threads = ComputePoolThreads();
    // The ParallelFor caller runs one chunk itself, so spawn threads-1 workers.
    return threads > 1 ? new ThreadPool(static_cast<size_t>(threads - 1)) : nullptr;
  }();
  return pool;
}

}  // namespace

int ComputePoolThreads() {
  static const int threads = ResolveThreadCount();
  return threads;
}

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  ThreadPool* pool = Pool();
  const int64_t max_chunks = pool == nullptr || t_in_compute_chunk
                                 ? 1
                                 : static_cast<int64_t>(ComputePoolThreads());
  const int64_t chunks = std::min(max_chunks, (n + grain - 1) / grain);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  // Fixed-size contiguous chunks: the partition depends only on (n, grain, thread
  // count), so runs at a fixed EGERIA_NUM_THREADS shard work identically.
  const int64_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(chunks - 1));
  for (int64_t c = 1; c < chunks; ++c) {
    const int64_t begin = c * chunk;
    const int64_t end = std::min(n, begin + chunk);
    if (begin >= end) {
      break;
    }
    futures.push_back(pool->Submit([&fn, begin, end] {
      ChunkFlagGuard guard;
      fn(begin, end);
    }));
  }
  // The calling thread takes the first chunk (and counts toward the pool size).
  // If it throws, still wait for every worker before unwinding — the workers
  // hold a reference to fn, which dies with this frame.
  std::exception_ptr caller_error;
  {
    ChunkFlagGuard guard;
    try {
      fn(0, std::min(n, chunk));
    } catch (...) {
      caller_error = std::current_exception();
    }
  }
  for (auto& f : futures) {
    f.wait();
  }
  if (caller_error) {
    std::rethrow_exception(caller_error);
  }
  for (auto& f : futures) {
    f.get();  // Rethrows the first worker exception, if any.
  }
}

}  // namespace egeria
