// Streaming statistics used by the freezing policy (paper S4.2.2, Algorithm 1):
//  - MovingAverage implements Equation 2 (window-W smoothing with a warmup ramp);
//  - WindowedLinearFit implements the "fit P_i with linear least-squares regression to
//    a straight line and analyze its slope" stationarity test;
//  - RunningStat provides mean/stddev for diagnostics and tests.
#ifndef EGERIA_SRC_UTIL_STATS_H_
#define EGERIA_SRC_UTIL_STATS_H_

#include <cstddef>
#include <deque>
#include <vector>

namespace egeria {

// Moving average over the last `window` values; while fewer than `window` values have
// been observed, averages everything seen so far (Equation 2's i < W branch).
class MovingAverage {
 public:
  explicit MovingAverage(size_t window);

  double Add(double value);  // Returns the smoothed value after inserting `value`.
  double Value() const;      // Current smoothed value (0 if empty).
  size_t Count() const { return total_count_; }
  size_t window() const { return window_; }
  void SetWindow(size_t window);  // Shrinks history if needed (used when halving W).
  void Reset();

  // Checkpoint support. The running sum_ is maintained incrementally
  // (add/subtract as values enter and leave the window), so restoring bitwise
  // requires persisting it verbatim — recomputing it from the history can
  // differ in the low bits and change downstream freeze decisions.
  const std::deque<double>& History() const { return values_; }
  double Sum() const { return sum_; }
  void Restore(std::deque<double> values, double sum, size_t total_count);

 private:
  size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
  size_t total_count_ = 0;
};

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  size_t n = 0;
};

// Ordinary least-squares fit of y over x = 0..n-1 for the last `window` samples.
class WindowedLinearFit {
 public:
  explicit WindowedLinearFit(size_t window);

  void Add(double value);
  // Fit over whatever history is available (up to `window` points). With fewer than 2
  // points the slope is 0.
  LinearFit Fit() const;
  size_t Count() const { return values_.size(); }
  void SetWindow(size_t window);
  void Reset();

  // Checkpoint support (the fit itself is a pure function of the history).
  const std::deque<double>& History() const { return values_; }
  void Restore(std::deque<double> values);

 private:
  size_t window_;
  std::deque<double> values_;
};

// One-shot OLS fit of y against x = 0..n-1.
LinearFit FitLine(const std::vector<double>& y);

// Welford online mean/variance.
class RunningStat {
 public:
  void Add(double value);
  size_t Count() const { return count_; }
  double Mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_UTIL_STATS_H_
