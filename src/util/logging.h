// Minimal logging and invariant-checking facilities used across the Egeria codebase.
//
// Logging is intentionally tiny: benches and examples print structured tables through
// util/table.h; this header only provides leveled diagnostics and hard CHECK macros.
#ifndef EGERIA_SRC_UTIL_LOGGING_H_
#define EGERIA_SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace egeria {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are discarded. Defaults to kInfo and can be
// overridden with the EGERIA_LOG_LEVEL environment variable — strictly parsed: the
// whole string must be an integer in 0-3, anything else keeps the default and warns
// once on the first log line (garbage used to silently map to kDebug via atoi).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Optional rank tag prepended to every subsequent log line ("[r1]"), so
// interleaved multi-process output stays attributable. Process-global: set it
// once per process (egeria_worker does, right after parsing --rank); in-process
// multi-rank harnesses (TrainDataParallel threads) must leave it unset.
void SetLogRankTag(int rank);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Sink that swallows the message when the level is below the global threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

[[noreturn]] void CheckFailed(const char* condition, const char* file, int line,
                              const std::string& message);

}  // namespace internal

#define EGERIA_LOG(level)                                                          \
  if (::egeria::LogLevel::level < ::egeria::GetLogLevel()) {                       \
  } else                                                                           \
    ::egeria::internal::LogMessage(::egeria::LogLevel::level, __FILE__, __LINE__).stream()

// Hard invariant check: aborts with a diagnostic on failure. Used for programmer
// errors (shape mismatches, protocol violations), never for recoverable conditions.
#define EGERIA_CHECK(cond)                                                         \
  if (cond) {                                                                      \
  } else                                                                           \
    ::egeria::internal::CheckFailed(#cond, __FILE__, __LINE__, "")

#define EGERIA_CHECK_MSG(cond, msg)                                                \
  if (cond) {                                                                      \
  } else                                                                           \
    ::egeria::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg))

}  // namespace egeria

#endif  // EGERIA_SRC_UTIL_LOGGING_H_
