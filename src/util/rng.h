// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis, shuffling,
// dropout, augmentation) flows through Rng so that experiments are reproducible and
// the activation cache can rely on stateless, sample-keyed randomness (paper S4.3:
// "stateless random operations ... deterministically keep the randomly augmented
// images the same across epochs").
#ifndef EGERIA_SRC_UTIL_RNG_H_
#define EGERIA_SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace egeria {

// SplitMix64: used to expand a single seed into well-distributed stream seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** PRNG. Fast, high quality, and trivially seedable per (stream, key) so
// that "stateless" randomness (e.g. augmentation keyed by sample id) is a fresh Rng.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853C49E6748FEA9BULL);

  // Derives an independent generator for a keyed substream (e.g. per sample id).
  static Rng ForKey(uint64_t seed, uint64_t key);

  uint64_t NextU64();
  // Uniform in [0, 1).
  double NextDouble();
  float NextFloat();
  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n);
  // Uniform in [lo, hi).
  float NextUniform(float lo, float hi);
  // Standard normal via Box-Muller (cached second value).
  float NextGaussian();
  bool NextBool(double p_true = 0.5);

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.size() < 2) {
      return;
    }
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0F;
};

}  // namespace egeria

#endif  // EGERIA_SRC_UTIL_RNG_H_
