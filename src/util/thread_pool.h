// Fixed-size thread pool used by the activation prefetcher and the data-parallel
// worker harness. Deliberately simple: a mutex-protected task queue is plenty for the
// coarse-grained tasks submitted here (file reads, per-worker training steps).
#ifndef EGERIA_SRC_UTIL_THREAD_POOL_H_
#define EGERIA_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace egeria {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  size_t NumThreads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace egeria

#endif  // EGERIA_SRC_UTIL_THREAD_POOL_H_
