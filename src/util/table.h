// ASCII table rendering for bench output. Every figure/table bench prints one or more
// of these so the regenerated rows/series can be compared against the paper.
#ifndef EGERIA_SRC_UTIL_TABLE_H_
#define EGERIA_SRC_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace egeria {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);
  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 3);
  static std::string Pct(double fraction, int precision = 1);  // 0.28 -> "28.0%"

  // Renders with aligned columns and a header rule.
  std::string Render() const;
  void Print() const;  // Render() to stdout.

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_UTIL_TABLE_H_
