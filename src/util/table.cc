#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/util/logging.h"

namespace egeria {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> row) {
  EGERIA_CHECK_MSG(row.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << row[i] << std::string(widths[i] - row[i].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t i = 0; i < headers_.size(); ++i) {
    os << std::string(widths[i] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void Table::Print() const { std::cout << Render() << std::flush; }

}  // namespace egeria
