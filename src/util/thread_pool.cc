#include "src/util/thread_pool.h"

#include "src/util/logging.h"

namespace egeria {

ThreadPool::ThreadPool(size_t num_threads) {
  EGERIA_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EGERIA_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // Shutdown with no pending work.
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace egeria
