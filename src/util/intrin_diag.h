// Scoped suppression for gcc's AVX-512 intrinsic false positives.
//
// gcc's AVX-512 intrinsic wrappers pass an undefined merge operand to their
// *_mask builtins, which trips -Wmaybe-uninitialized at every function the
// intrinsics inline into (gcc bug 105593). Not actionable in user code. Wrap
// only the intrinsic-using functions (and their inline destinations) in
// EGERIA_BEGIN/END_INTRIN_NOWARN so the warning stays live for surrounding
// code.
#ifndef EGERIA_SRC_UTIL_INTRIN_DIAG_H_
#define EGERIA_SRC_UTIL_INTRIN_DIAG_H_

#if defined(__GNUC__) && !defined(__clang__)
#define EGERIA_BEGIN_INTRIN_NOWARN \
  _Pragma("GCC diagnostic push")   \
  _Pragma("GCC diagnostic ignored \"-Wmaybe-uninitialized\"")
#define EGERIA_END_INTRIN_NOWARN _Pragma("GCC diagnostic pop")
#else
#define EGERIA_BEGIN_INTRIN_NOWARN
#define EGERIA_END_INTRIN_NOWARN
#endif

#endif  // EGERIA_SRC_UTIL_INTRIN_DIAG_H_
