#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace egeria {

MovingAverage::MovingAverage(size_t window) : window_(window) {
  EGERIA_CHECK(window_ >= 1);
}

double MovingAverage::Add(double value) {
  values_.push_back(value);
  sum_ += value;
  ++total_count_;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
  return Value();
}

double MovingAverage::Value() const {
  if (values_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(values_.size());
}

void MovingAverage::SetWindow(size_t window) {
  EGERIA_CHECK(window >= 1);
  window_ = window;
  while (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

void MovingAverage::Reset() {
  values_.clear();
  sum_ = 0.0;
  total_count_ = 0;
}

void MovingAverage::Restore(std::deque<double> values, double sum, size_t total_count) {
  EGERIA_CHECK(values.size() <= window_);
  values_ = std::move(values);
  sum_ = sum;
  total_count_ = total_count;
}

WindowedLinearFit::WindowedLinearFit(size_t window) : window_(window) {
  EGERIA_CHECK(window_ >= 2);
}

void WindowedLinearFit::Add(double value) {
  values_.push_back(value);
  if (values_.size() > window_) {
    values_.pop_front();
  }
}

LinearFit WindowedLinearFit::Fit() const {
  std::vector<double> y(values_.begin(), values_.end());
  return FitLine(y);
}

void WindowedLinearFit::SetWindow(size_t window) {
  EGERIA_CHECK(window >= 2);
  window_ = window;
  while (values_.size() > window_) {
    values_.pop_front();
  }
}

void WindowedLinearFit::Reset() { values_.clear(); }

void WindowedLinearFit::Restore(std::deque<double> values) {
  EGERIA_CHECK(values.size() <= window_);
  values_ = std::move(values);
}

LinearFit FitLine(const std::vector<double>& y) {
  LinearFit fit;
  fit.n = y.size();
  if (y.size() < 2) {
    fit.intercept = y.empty() ? 0.0 : y[0];
    return fit;
  }
  const double n = static_cast<double>(y.size());
  // x = 0..n-1, so sum_x and sum_xx have closed forms.
  const double sum_x = n * (n - 1.0) / 2.0;
  const double sum_xx = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
  double sum_y = 0.0;
  double sum_xy = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    sum_y += y[i];
    sum_xy += static_cast<double>(i) * y[i];
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  if (std::abs(denom) < 1e-12) {
    fit.intercept = sum_y / n;
    return fit;
  }
  fit.slope = (n * sum_xy - sum_x * sum_y) / denom;
  fit.intercept = (sum_y - fit.slope * sum_x) / n;
  return fit;
}

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

}  // namespace egeria
