// Wall-clock timing helpers. TTA numbers (Table 1) use WallTimer; the distributed
// benches use simulated time from src/distributed/network_model.h instead.
#ifndef EGERIA_SRC_UTIL_TIMER_H_
#define EGERIA_SRC_UTIL_TIMER_H_

#include <chrono>

namespace egeria {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across start/stop segments (e.g. per-phase breakdowns in Fig. 9).
class SegmentTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_ += timer_.ElapsedSeconds(); }
  double TotalSeconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_UTIL_TIMER_H_
