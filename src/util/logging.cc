#include "src/util/logging.h"

#include <atomic>
#include <cstdlib>

namespace egeria {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

int InitialLevelFromEnv() {
  const char* env = std::getenv("EGERIA_LOG_LEVEL");
  if (env == nullptr) {
    return static_cast<int>(LogLevel::kInfo);
  }
  int v = std::atoi(env);
  if (v < 0) {
    v = 0;
  }
  if (v > 3) {
    v = 3;
  }
  return v;
}

const bool g_env_init = [] {
  g_log_level.store(InitialLevelFromEnv());
  return true;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

void CheckFailed(const char* condition, const char* file, int line,
                 const std::string& message) {
  std::cerr << "[CHECK FAILED " << file << ":" << line << "] " << condition;
  if (!message.empty()) {
    std::cerr << " : " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal

}  // namespace egeria
