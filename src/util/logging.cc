#include "src/util/logging.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace egeria {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_log_rank{-1};  // -1 = no rank tag
// Set when EGERIA_LOG_LEVEL was present but unparsable; the first log line
// (whatever its level) prepends a one-time warning so the bad value is
// noticed without spamming every line.
std::atomic<bool> g_env_level_invalid{false};
std::atomic<bool> g_env_warned{false};

// Strict parse: the whole string must be a base-10 integer in [0, 3].
// Returns -1 on garbage, out-of-range values, or trailing junk ("2x", "").
int ParseLevelStrict(const char* env) {
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE) return -1;
  if (v < 0 || v > 3) return -1;
  return static_cast<int>(v);
}

int InitialLevelFromEnv() {
  const char* env = std::getenv("EGERIA_LOG_LEVEL");
  if (env == nullptr) {
    return static_cast<int>(LogLevel::kInfo);
  }
  int v = ParseLevelStrict(env);
  if (v < 0) {
    g_env_level_invalid.store(true, std::memory_order_relaxed);
    return static_cast<int>(LogLevel::kInfo);
  }
  return v;
}

const bool g_env_init = [] {
  g_log_level.store(InitialLevelFromEnv());
  return true;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Wall-clock "HH:MM:SS.mmm" — wall (not steady) time so log lines from
// different ranks on one host can be eyeballed against each other and against
// the merged trace timeline.
void FormatTimestamp(char* buf, size_t cap) {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_buf;
  localtime_r(&ts.tv_sec, &tm_buf);
  std::snprintf(buf, cap, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(ts.tv_nsec / 1000000));
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

void SetLogRankTag(int rank) { g_log_rank.store(rank); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  if (g_env_level_invalid.load(std::memory_order_relaxed) &&
      !g_env_warned.exchange(true, std::memory_order_relaxed)) {
    const char* env = std::getenv("EGERIA_LOG_LEVEL");
    stream_ << "[WARN logging.cc:0] invalid EGERIA_LOG_LEVEL=\""
            << (env != nullptr ? env : "") << "\" (want an integer 0-3); using "
            << static_cast<int>(GetLogLevel()) << "\n";
  }
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  char ts[32];
  FormatTimestamp(ts, sizeof(ts));
  stream_ << "[" << ts << " ";
  int rank = g_log_rank.load();
  if (rank >= 0) {
    stream_ << "r" << rank << " ";
  }
  stream_ << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
}

void CheckFailed(const char* condition, const char* file, int line,
                 const std::string& message) {
  std::cerr << "[CHECK FAILED " << file << ":" << line << "] " << condition;
  if (!message.empty()) {
    std::cerr << " : " << message;
  }
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal

}  // namespace egeria
