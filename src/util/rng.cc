#include "src/util/rng.h"

#include <cmath>

namespace egeria {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::ForKey(uint64_t seed, uint64_t key) {
  // Mix the key through SplitMix so nearby keys yield unrelated streams.
  uint64_t sm = seed ^ (key * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  uint64_t mixed = SplitMix64(sm);
  return Rng(mixed ^ Rotl(seed, 17));
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

float Rng::NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24F; }

uint64_t Rng::NextBelow(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  // Rejection-free Lemire reduction is overkill here; modulo bias is negligible for
  // the small n used in data pipelines, but use multiply-shift to avoid it anyway.
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * static_cast<__uint128_t>(n);
  return static_cast<uint64_t>(m >> 64);
}

float Rng::NextUniform(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

float Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  float u1 = NextFloat();
  float u2 = NextFloat();
  if (u1 < 1e-12F) {
    u1 = 1e-12F;
  }
  const float r = std::sqrt(-2.0F * std::log(u1));
  const float theta = 6.2831853071795864F * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

}  // namespace egeria
