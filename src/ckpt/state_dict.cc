#include "src/ckpt/state_dict.h"

#include <cstring>

#include "src/util/logging.h"

namespace egeria {

namespace {

// Depth-first walk collecting LocalStateTensors with positional names.
void CollectBuffers(Module& m, const std::string& prefix, int& ordinal,
                    std::vector<StateEntry>& out) {
  for (auto& [tag, tensor] : m.LocalStateTensors()) {
    out.emplace_back(prefix + "." + std::to_string(ordinal) + "." + tag, tensor);
  }
  if (!m.LocalStateTensors().empty()) {
    ++ordinal;
  }
  for (Module* child : m.Children()) {
    CollectBuffers(*child, prefix, ordinal, out);
  }
}

}  // namespace

std::vector<StateEntry> CollectModelState(ChainModel& model) {
  std::vector<StateEntry> out;
  for (const auto& [name, param] : NamedParams(model)) {
    out.emplace_back(name, &param->value);
  }
  auto buffers = CollectModelBuffers(model);
  for (StateEntry& e : buffers) {
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<StateEntry> CollectModelBuffers(ChainModel& model) {
  std::vector<StateEntry> out;
  for (int i = 0; i < model.NumStages(); ++i) {
    int ordinal = 0;
    const std::string prefix = "b" + std::to_string(i);
    for (Module* m : model.StageModules(i)) {
      CollectBuffers(*m, prefix, ordinal, out);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Parameter*>> NamedParams(ChainModel& model) {
  std::vector<std::pair<std::string, Parameter*>> out;
  for (int i = 0; i < model.NumStages(); ++i) {
    int j = 0;
    for (Parameter* p : model.StageParams(i)) {
      std::string key = "p" + std::to_string(i) + "." + std::to_string(j);
      if (!p->name.empty()) {
        key += ":" + p->name;
      }
      out.emplace_back(std::move(key), p);
      ++j;
    }
  }
  return out;
}

Checkpoint ExportModelState(ChainModel& model) {
  Checkpoint ckpt;
  for (const auto& [name, tensor] : CollectModelState(model)) {
    ckpt.emplace(name, tensor->Clone());
  }
  return ckpt;
}

bool SaveModelState(const std::string& path, ChainModel& model) {
  return SaveCheckpoint(path, ExportModelState(model));
}

bool LoadModelState(const Checkpoint& ckpt, ChainModel& model) {
  for (auto& [name, tensor] : CollectModelState(model)) {
    const auto it = ckpt.find(name);
    if (it == ckpt.end()) {
      EGERIA_LOG(kError) << "state dict missing entry " << name;
      return false;
    }
    if (it->second.NumEl() != tensor->NumEl()) {
      EGERIA_LOG(kError) << "state dict entry " << name << " has " << it->second.NumEl()
                         << " elements, model expects " << tensor->NumEl();
      return false;
    }
    // Preserve the live tensor's shape (stored shape already matched by count);
    // raw byte copy keeps the restore bitwise.
    std::memcpy(tensor->Data(), it->second.Data(),
                static_cast<size_t>(tensor->NumEl()) * sizeof(float));
  }
  return true;
}

bool LoadModelStateFile(const std::string& path, ChainModel& model) {
  Checkpoint ckpt;
  if (!LoadCheckpoint(path, ckpt)) {
    return false;
  }
  return LoadModelState(ckpt, model);
}

Checkpoint ExportModelBuffers(ChainModel& model) {
  Checkpoint ckpt;
  for (const auto& [name, tensor] : CollectModelBuffers(model)) {
    ckpt.emplace(name, tensor->Clone());
  }
  return ckpt;
}

bool LoadModelBuffers(const Checkpoint& ckpt, ChainModel& model) {
  for (auto& [name, tensor] : CollectModelBuffers(model)) {
    const auto it = ckpt.find(name);
    if (it == ckpt.end() || it->second.NumEl() != tensor->NumEl()) {
      EGERIA_LOG(kError) << "buffer section missing/misshapen entry " << name;
      return false;
    }
    std::memcpy(tensor->Data(), it->second.Data(),
                static_cast<size_t>(tensor->NumEl()) * sizeof(float));
  }
  return true;
}

uint64_t HashModelState(ChainModel& model) {
  uint64_t h = kFnv64Offset;
  for (const auto& [name, tensor] : CollectModelState(model)) {
    h = Fnv1a64(tensor->Data(), static_cast<size_t>(tensor->NumEl()) * sizeof(float), h);
  }
  return h;
}

}  // namespace egeria
