#include "src/ckpt/async_writer.h"

#include <utility>

namespace egeria {

AsyncCheckpointWriter::AsyncCheckpointWriter() {
  thread_ = std::thread([this] { Run(); });
}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void AsyncCheckpointWriter::Submit(std::function<bool()> write) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !pending_ && !running_; });
  pending_ = std::move(write);
  cv_.notify_all();
}

bool AsyncCheckpointWriter::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !pending_ && !running_; });
  return last_ok_;
}

void AsyncCheckpointWriter::Run() {
  for (;;) {
    std::function<bool()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || pending_; });
      if (!pending_) {  // Shutdown with an empty queue: drained.
        return;
      }
      job = std::move(pending_);
      pending_ = nullptr;
      running_ = true;
    }
    const bool ok = job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_ = false;
      last_ok_ = ok;
    }
    cv_.notify_all();
  }
}

}  // namespace egeria
