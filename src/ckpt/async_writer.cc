#include "src/ckpt/async_writer.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"

namespace egeria {

AsyncCheckpointWriter::AsyncCheckpointWriter() {
  thread_ = std::thread([this] { Run(); });
}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void AsyncCheckpointWriter::Submit(std::function<bool()> write) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !pending_ && !running_; });
  pending_ = std::move(write);
  cv_.notify_all();
}

bool AsyncCheckpointWriter::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !pending_ && !running_; });
  return last_ok_;
}

void AsyncCheckpointWriter::Run() {
  trace::SetThreadName("ckpt_writer");
  for (;;) {
    std::function<bool()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || pending_; });
      if (!pending_) {  // Shutdown with an empty queue: drained.
        return;
      }
      job = std::move(pending_);
      pending_ = nullptr;
      running_ = true;
    }
    bool ok = false;
    {
      // The write leg of capture→write→commit, on its own track: visible
      // overlap with the training iterations that proceed meanwhile.
      obs::ScopedPhase write_phase("ckpt", "write",
                                   &obs::GetHistogram("ckpt.write_s"));
      ok = job();
    }
    if (!ok) obs::GetCounter("ckpt.write_failures").Add(1);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_ = false;
      last_ok_ = ok;
    }
    cv_.notify_all();
  }
}

}  // namespace egeria
