// Tiny POD-stream helpers for the checkpoint subsystem's binary state blobs
// (freezing-policy state, controller state, trainer cursors, optimizer
// shards). Little-endian host representation, same as the tensor serializer
// and the TCP transport frames: checkpoints are host-local artifacts, and a
// cross-architecture restore fails loudly at the magic/size checks.
#ifndef EGERIA_SRC_CKPT_WIRE_H_
#define EGERIA_SRC_CKPT_WIRE_H_

#include <cstdint>
#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace egeria {
namespace wire {

template <typename T>
void Write(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool Read(std::istream& is, T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(is);
}

inline void WriteString(std::ostream& os, const std::string& s) {
  Write(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool ReadString(std::istream& is, std::string& s, uint32_t max_len = 1U << 20) {
  uint32_t len = 0;
  if (!Read(is, len) || len > max_len) {
    return false;
  }
  s.assign(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  return static_cast<bool>(is);
}

inline void WriteDoubles(std::ostream& os, const std::deque<double>& v) {
  Write(os, static_cast<uint64_t>(v.size()));
  for (double d : v) {
    Write(os, d);
  }
}

inline bool ReadDoubles(std::istream& is, std::deque<double>& v,
                        uint64_t max_count = 1ULL << 24) {
  uint64_t n = 0;
  if (!Read(is, n) || n > max_count) {
    return false;
  }
  v.clear();
  for (uint64_t i = 0; i < n; ++i) {
    double d = 0.0;
    if (!Read(is, d)) {
      return false;
    }
    v.push_back(d);
  }
  return true;
}

inline void WriteFloats(std::ostream& os, const std::vector<float>& v) {
  Write(os, static_cast<uint64_t>(v.size()));
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
  }
}

inline bool ReadFloats(std::istream& is, std::vector<float>& v,
                       uint64_t max_count = 1ULL << 34) {
  uint64_t n = 0;
  if (!Read(is, n) || n > max_count) {
    return false;
  }
  v.assign(static_cast<size_t>(n), 0.0F);
  if (n > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  return static_cast<bool>(is);
}

}  // namespace wire
}  // namespace egeria

#endif  // EGERIA_SRC_CKPT_WIRE_H_
