#include "src/ckpt/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/tensor/serialize.h"
#include "src/util/logging.h"

namespace egeria {

namespace fs = std::filesystem;

namespace {

constexpr const char kManifestName[] = "MANIFEST";
constexpr const char kStepPrefix[] = "step_";

// Parses the iteration out of a "step_<iter>" directory name; -1 if not one.
int64_t StepIterOf(const std::string& dir_name) {
  const size_t prefix_len = sizeof(kStepPrefix) - 1;
  if (dir_name.rfind(kStepPrefix, 0) != 0 || dir_name.size() <= prefix_len) {
    return -1;
  }
  int64_t iter = 0;
  for (size_t i = prefix_len; i < dir_name.size(); ++i) {
    if (dir_name[i] < '0' || dir_name[i] > '9') {
      return -1;
    }
    iter = iter * 10 + (dir_name[i] - '0');
  }
  return iter;
}

// All step_* entries under root, as (iter, path), unsorted.
std::vector<std::pair<int64_t, std::string>> ListSteps(const std::string& root) {
  std::vector<std::pair<int64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory(ec)) {
      continue;
    }
    const int64_t iter = StepIterOf(entry.path().filename().string());
    if (iter >= 0) {
      out.emplace_back(iter, entry.path().string());
    }
  }
  return out;
}

}  // namespace

bool CkptManifest::HasFile(const std::string& name) const {
  for (const ManifestFile& f : files) {
    if (f.name == name) {
      return true;
    }
  }
  return false;
}

std::string CheckpointStepDir(const std::string& root, int64_t iter) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%09lld", kStepPrefix,
                static_cast<long long>(iter));
  return root + "/" + buf;
}

bool EnsureDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    EGERIA_LOG(kError) << "cannot create directory " << path << ": " << ec.message();
    return false;
  }
  return true;
}

std::optional<ManifestFile> HashFile(const std::string& dir, const std::string& name) {
  std::ifstream is(dir + "/" + name, std::ios::binary);
  if (!is) {
    return std::nullopt;
  }
  ManifestFile f;
  f.name = name;
  f.fnv = kFnv64Offset;
  char buf[1 << 16];
  while (is) {
    is.read(buf, sizeof(buf));
    const std::streamsize got = is.gcount();
    if (got > 0) {
      f.fnv = Fnv1a64(buf, static_cast<size_t>(got), f.fnv);
      f.bytes += got;
    }
  }
  return f;
}

bool AddManifestFile(CkptManifest& m, const std::string& name) {
  const auto f = HashFile(m.dir, name);
  if (!f) {
    EGERIA_LOG(kError) << "checkpoint " << m.dir << ": cannot hash " << name;
    return false;
  }
  m.files.push_back(*f);
  return true;
}

bool CommitManifest(const CkptManifest& m) {
  const std::string tmp = m.dir + "/" + kManifestName + ".tmp";
  const std::string final_path = m.dir + "/" + kManifestName;
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      EGERIA_LOG(kError) << "cannot write " << tmp;
      return false;
    }
    os << "EGERIA-CKPT " << m.version << "\n";
    os << "kind " << m.kind << "\n";
    os << "iter " << m.iter << "\n";
    os << "world " << m.world << "\n";
    os << "frontier " << m.frontier << "\n";
    os << "next_frontier " << m.next_frontier << "\n";
    os << "frozen_elems " << m.frozen_elems << "\n";
    os << "active_elems " << m.active_elems << "\n";
    char hex[32];
    for (const ManifestFile& f : m.files) {
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(f.fnv));
      os << "file " << f.name << " " << f.bytes << " " << hex << "\n";
    }
    os.flush();
    if (!os) {
      EGERIA_LOG(kError) << "failed writing " << tmp;
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);  // The atomic commit point.
  if (ec) {
    EGERIA_LOG(kError) << "cannot commit manifest " << final_path << ": " << ec.message();
    return false;
  }
  return true;
}

std::optional<CkptManifest> ReadManifest(const std::string& step_dir) {
  std::ifstream is(step_dir + "/" + kManifestName);
  if (!is) {
    return std::nullopt;  // Incomplete checkpoint; not an error.
  }
  CkptManifest m;
  m.dir = step_dir;
  std::string line;
  bool header_seen = false;
  while (std::getline(is, line)) {
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) {
      continue;
    }
    if (key == "EGERIA-CKPT") {
      tokens >> m.version;
      header_seen = true;
    } else if (key == "kind") {
      tokens >> m.kind;
    } else if (key == "iter") {
      tokens >> m.iter;
    } else if (key == "world") {
      tokens >> m.world;
    } else if (key == "frontier") {
      tokens >> m.frontier;
    } else if (key == "next_frontier") {
      tokens >> m.next_frontier;
    } else if (key == "frozen_elems") {
      tokens >> m.frozen_elems;
    } else if (key == "active_elems") {
      tokens >> m.active_elems;
    } else if (key == "file") {
      ManifestFile f;
      std::string hex;
      if (!(tokens >> f.name >> f.bytes >> hex)) {
        EGERIA_LOG(kError) << step_dir << ": malformed manifest file line: " << line;
        return std::nullopt;
      }
      f.fnv = std::strtoull(hex.c_str(), nullptr, 16);
      m.files.push_back(std::move(f));
    }
    // Unknown keys are skipped: future versions may append fields.
  }
  if (!header_seen || m.version < 1 || m.world < 1 || m.iter < 0) {
    EGERIA_LOG(kError) << step_dir << ": malformed manifest header";
    return std::nullopt;
  }
  return m;
}

bool VerifyCheckpointFiles(const CkptManifest& m, std::string* error) {
  for (const ManifestFile& f : m.files) {
    const auto actual = HashFile(m.dir, f.name);
    if (!actual) {
      if (error != nullptr) {
        *error = m.dir + "/" + f.name + ": missing or unreadable";
      }
      return false;
    }
    if (actual->bytes != f.bytes || actual->fnv != f.fnv) {
      if (error != nullptr) {
        *error = m.dir + "/" + f.name + ": size/checksum mismatch (manifest " +
                 std::to_string(f.bytes) + "B, on disk " +
                 std::to_string(actual->bytes) + "B)";
      }
      return false;
    }
  }
  return true;
}

std::optional<CkptManifest> FindLatestCheckpoint(const std::string& root) {
  auto steps = ListSteps(root);
  std::sort(steps.begin(), steps.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [iter, path] : steps) {
    auto m = ReadManifest(path);
    if (!m) {
      continue;
    }
    std::string error;
    if (!VerifyCheckpointFiles(*m, &error)) {
      EGERIA_LOG(kWarn) << "checkpoint " << path << " fails verification (" << error
                        << "); trying an older one";
      continue;
    }
    return m;
  }
  return std::nullopt;
}

void ApplyRetention(const std::string& root, int keep_last) {
  if (keep_last < 1) {
    keep_last = 1;
  }
  auto steps = ListSteps(root);
  std::sort(steps.begin(), steps.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  int complete_kept = 0;
  int64_t newest_complete = -1;
  std::error_code ec;
  for (const auto& [iter, path] : steps) {
    const bool complete = fs::exists(path + "/" + kManifestName, ec);
    if (complete) {
      if (newest_complete < 0) {
        newest_complete = iter;
      }
      if (++complete_kept <= keep_last) {
        continue;
      }
      fs::remove_all(path, ec);
    } else if (newest_complete >= 0 && iter < newest_complete) {
      // Incomplete debris older than a complete checkpoint: a crashed write.
      // Incomplete dirs NEWER than the latest complete step may be a write in
      // progress by concurrent ranks — leave those alone.
      fs::remove_all(path, ec);
    }
  }
}

}  // namespace egeria
