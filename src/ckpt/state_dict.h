// Named training-state enumeration for ChainModels.
//
// A state dict is the ordered list of every tensor that defines a model's
// training state: all parameters (in the canonical StageParams order the
// distributed flat views also use) plus non-parameter buffers reachable
// through StageModules (BatchNorm running statistics via
// Module::LocalStateTensors). Names are positional and therefore stable for a
// fixed architecture:
//   p<stage>.<index>[:<param name>]   parameter values
//   b<stage>.<ordinal>.<tag>          module state buffers (DFS order)
// The human-readable parameter name is a suffix of the key for inspectability
// (tools/egeria_ckpt) but positional prefixes are what guarantee uniqueness.
//
// Bitwise contract: Save followed by Load on an identically-architected model
// reproduces every tensor bit-for-bit (serialization is raw f32 bytes), which
// is what checkpoint/resume's bitwise-resume guarantee is built on.
#ifndef EGERIA_SRC_CKPT_STATE_DICT_H_
#define EGERIA_SRC_CKPT_STATE_DICT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/models/chain_model.h"
#include "src/tensor/serialize.h"

namespace egeria {

using StateEntry = std::pair<std::string, Tensor*>;

// Every state tensor of `model`, in deterministic order. Pointers alias the
// live model; no copies are made.
std::vector<StateEntry> CollectModelState(ChainModel& model);

// The buffer-only subset (b<stage>.* entries). Buffers are PER-REPLICA state
// in data-parallel training: BatchNorm running statistics are a function of
// each rank's local batch history and are never synchronized (they also do
// not feed the training forward, which normalizes with batch statistics — so
// replicas stay weight-consistent while their buffers differ). Distributed
// checkpoints therefore persist one buffer section per rank alongside the
// shared weights.
std::vector<StateEntry> CollectModelBuffers(ChainModel& model);

// Name -> parameter pointer for the model's full parameter list, using the
// same p<stage>.<index> keys as CollectModelState. The optimizer serializers
// key their per-parameter state by these names.
std::vector<std::pair<std::string, Parameter*>> NamedParams(ChainModel& model);

// Snapshot the model's state dict into a named tensor map (values cloned).
Checkpoint ExportModelState(ChainModel& model);

// Writes the state dict as a Checkpoint file (v2, per-tensor checksums).
bool SaveModelState(const std::string& path, ChainModel& model);

// Strict restore: every state-dict entry must be present with a matching
// element count; extra entries in the file are ignored (they may be optimizer
// state sections sharing the file). Logs and returns false on any mismatch or
// read failure, leaving the model partially updated only on mismatch-free
// prefixes (callers treat false as fatal).
bool LoadModelState(const Checkpoint& ckpt, ChainModel& model);
bool LoadModelStateFile(const std::string& path, ChainModel& model);

// Buffer-section counterparts (save/restore of one replica's b<stage>.*
// entries only).
Checkpoint ExportModelBuffers(ChainModel& model);
bool LoadModelBuffers(const Checkpoint& ckpt, ChainModel& model);

// FNV-1a over the state dict's raw bytes in enumeration order — the same
// fingerprint idiom as the distributed params_hash, extended to buffers.
uint64_t HashModelState(ChainModel& model);

}  // namespace egeria

#endif  // EGERIA_SRC_CKPT_STATE_DICT_H_
