// Background checkpoint writer: takes snapshot-write jobs off the training
// hot path (the "hide it behind compute" idea of the overlapped reducer,
// applied to fault tolerance).
//
// Protocol (dist_trainer.cc's deferred-commit save):
//   1. At a checkpoint boundary the trainer CAPTURES its state in memory —
//      ExportModelState/ExportModelBuffers clone tensors, ExportShard copies
//      the velocity shard — so the live model may keep training immediately.
//   2. The captured snapshot is Submit()ted; this thread serializes it to the
//      step directory while the next iteration computes (the double buffer:
//      live state in the model, frozen state in the job).
//   3. At the NEXT collective boundary every rank Wait()s for its local write,
//      reduces the typed per-rank status, and only then does rank 0 hash the
//      files into a manifest and commit. A crash in between leaves the step
//      manifest-less — invisible to resume — exactly like the synchronous
//      path's abort-before-commit guarantee.
//
// One job may be in flight at a time; Submit blocks until the previous job
// drained (with per-iteration commits this never actually blocks). The
// destructor drains the queue, so a thrown-away writer cannot leave a torn
// file growing in the background.
#ifndef EGERIA_SRC_CKPT_ASYNC_WRITER_H_
#define EGERIA_SRC_CKPT_ASYNC_WRITER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace egeria {

class AsyncCheckpointWriter {
 public:
  AsyncCheckpointWriter();
  ~AsyncCheckpointWriter();

  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  // Hands `write` to the background thread. `write` owns its captured
  // snapshot and returns whether every file landed intact. Blocks only if a
  // previous job is still writing.
  void Submit(std::function<bool()> write);

  // Blocks until no job is pending or running; returns the most recent job's
  // result (true when no job ever ran).
  bool Wait();

 private:
  void Run();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::function<bool()> pending_;  // empty = no job queued
  bool running_ = false;
  bool last_ok_ = true;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CKPT_ASYNC_WRITER_H_
