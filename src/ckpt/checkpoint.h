// Versioned training-state checkpoints with an atomic manifest commit.
//
// On-disk layout (one root directory per run):
//   <root>/step_000000056/          one complete snapshot at iteration 56
//     model.state                   model state dict (+ rank-0 optimizer state)
//     trainer.state                 loop cursors (iter, frontier, bootstrap, ...)
//     controller.state              freezing policy + reference snapshot (Egeria)
//     shard_r0.state ...            per-rank ZeRO-1 momentum shards (distributed)
//     MANIFEST                      commit record: header kv + per-file checksums
//
// Commit protocol: every data file is written first (each writer owns its
// file; distributed ranks write their shard, then barrier), and only then is
// MANIFEST written to MANIFEST.tmp and atomically renamed into place by the
// committing writer (rank 0). A step directory WITHOUT a MANIFEST is by
// definition incomplete — a crash at any point leaves either a complete older
// checkpoint or an incomplete directory that discovery ignores and retention
// sweeps. Readers additionally verify every listed file's size and FNV-1a
// checksum before trusting a checkpoint, so a torn or bit-flipped file
// demotes the whole step to "incomplete" rather than feeding garbage into a
// resume.
//
// Retention: keep the newest `keep_last` complete checkpoints; older complete
// steps and incomplete debris older than the newest complete step are
// deleted. Incomplete directories NEWER than the latest complete checkpoint
// are left alone (they may be a write in progress by concurrent ranks).
#ifndef EGERIA_SRC_CKPT_CHECKPOINT_H_
#define EGERIA_SRC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace egeria {

// Shared knob block embedded in TrainConfig / DistTrainConfig.
struct CheckpointOptions {
  std::string dir;             // empty = checkpointing disabled
  int64_t interval_iters = 0;  // snapshot every N iterations (0 = never)
  int keep_last = 2;           // complete checkpoints retained
  // Resume from the latest complete checkpoint in `dir` when one exists
  // (auto-restart: rerunning the same command continues the run).
  bool resume = true;

  // Distributed path: capture the snapshot in memory at the checkpoint
  // boundary, serialize it on a background thread (ckpt/async_writer.h), and
  // defer the collective manifest commit to the next iteration boundary — the
  // write overlaps one iteration of compute. The snapshot is cloned at
  // capture time, so the persisted state is bitwise the synchronous path's.
  // false = write and commit inline (the pre-overlap behavior). The
  // single-process trainer always saves inline (its snapshots are off the
  // iteration path already).
  bool async_save = true;

  bool enabled() const { return !dir.empty() && interval_iters > 0; }
};

struct ManifestFile {
  std::string name;   // file name within the step directory
  int64_t bytes = 0;
  uint64_t fnv = 0;   // FNV-1a 64 over the file contents
};

struct CkptManifest {
  int version = 1;
  std::string kind;        // "trainer" (single-process) | "dist"
  int64_t iter = 0;        // iterations completed when the snapshot was taken
  int world = 1;           // world size that wrote it (1 for trainer)
  int frontier = 0;
  int next_frontier = 0;   // dist: the frontier broadcast for iter+1
  int64_t frozen_elems = 0;   // dist: flat partition the shards were taken under
  int64_t active_elems = 0;
  std::vector<ManifestFile> files;
  std::string dir;         // step directory (filled by readers/writers)

  bool HasFile(const std::string& name) const;
};

// <root>/step_<iter, zero-padded>; creates nothing.
std::string CheckpointStepDir(const std::string& root, int64_t iter);

// mkdir -p. Returns false on failure (logged).
bool EnsureDir(const std::string& path);

// FNV-1a 64 of a file's contents; nullopt if unreadable.
std::optional<ManifestFile> HashFile(const std::string& dir, const std::string& name);

// Hashes `name` inside m.dir and appends it to m.files. False if unreadable.
bool AddManifestFile(CkptManifest& m, const std::string& name);

// Writes m.dir/MANIFEST.tmp and renames it to MANIFEST (the commit point).
bool CommitManifest(const CkptManifest& m);

// Parses <step_dir>/MANIFEST. nullopt (logged) if absent or malformed.
std::optional<CkptManifest> ReadManifest(const std::string& step_dir);

// Re-hashes every listed file; false + error description on any mismatch.
bool VerifyCheckpointFiles(const CkptManifest& m, std::string* error);

// Newest step with a parseable manifest whose files all verify.
std::optional<CkptManifest> FindLatestCheckpoint(const std::string& root);

// Enforces keep-last-N (see file header for the exact rule).
void ApplyRetention(const std::string& root, int keep_last);

}  // namespace egeria

#endif  // EGERIA_SRC_CKPT_CHECKPOINT_H_
