// Similarity-Preserving loss (Tung & Mori, ICCV'19) — the plasticity metric.
//
// Given activations A_T, A_R of the training and reference models for the same
// mini-batch (Eq. 1: P_i = SP_loss(A_T, A_R)):
//   1. reshape each to [b, -1];
//   2. G = A A^T (pairwise similarity of the b samples), row-L2-normalized;
//   3. SP = ||G_T - G_R||_F^2 / b^2.
// The paper chooses SP over gradients/PWCCA because the b x b similarity structure
// captures semantic agreement between models and is cheap (S4.2.1).
#ifndef EGERIA_SRC_METRICS_SP_LOSS_H_
#define EGERIA_SRC_METRICS_SP_LOSS_H_

#include "src/tensor/tensor.h"

namespace egeria {

// Row-normalized batch similarity matrix [b, b] of activations (any rank >= 2; the
// first dimension is the batch).
Tensor BatchSimilarityMatrix(const Tensor& activations);

// SP loss between two activation tensors with the same batch size (feature shapes
// may differ — similarity matrices are always [b, b]).
double SpLoss(const Tensor& a_train, const Tensor& a_ref);

// FitNets-style direct difference: mean squared elementwise distance. The Skip-Conv
// comparison baseline works "by directly subtracting two tensors" (paper S6.2).
double FitNetsL2(const Tensor& a_train, const Tensor& a_ref);

}  // namespace egeria

#endif  // EGERIA_SRC_METRICS_SP_LOSS_H_
