#include "src/metrics/sp_loss.h"

#include <cmath>

#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

Tensor BatchSimilarityMatrix(const Tensor& activations) {
  EGERIA_CHECK(activations.Dim() >= 2);
  const int64_t b = activations.Size(0);
  Tensor flat = activations.Reshape({b, -1});
  Tensor g = MatMulTransB(flat, flat);  // [b, b]
  // Row L2 normalization.
  for (int64_t i = 0; i < b; ++i) {
    double norm = 0.0;
    for (int64_t j = 0; j < b; ++j) {
      norm += static_cast<double>(g.At(i, j)) * g.At(i, j);
    }
    norm = std::sqrt(norm);
    const float inv = (norm > 1e-12) ? static_cast<float>(1.0 / norm) : 0.0F;
    for (int64_t j = 0; j < b; ++j) {
      g.At(i, j) *= inv;
    }
  }
  return g;
}

double SpLoss(const Tensor& a_train, const Tensor& a_ref) {
  EGERIA_CHECK_MSG(a_train.Size(0) == a_ref.Size(0), "SP loss batch mismatch");
  const int64_t b = a_train.Size(0);
  Tensor gt = BatchSimilarityMatrix(a_train);
  Tensor gr = BatchSimilarityMatrix(a_ref);
  double sum = 0.0;
  for (int64_t i = 0; i < b * b; ++i) {
    const double d = static_cast<double>(gt.Data()[i]) - gr.Data()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(b * b);
}

double FitNetsL2(const Tensor& a_train, const Tensor& a_ref) {
  EGERIA_CHECK_MSG(a_train.NumEl() == a_ref.NumEl(), "FitNets shape mismatch");
  double sum = 0.0;
  for (int64_t i = 0; i < a_train.NumEl(); ++i) {
    const double d = static_cast<double>(a_train.Data()[i]) - a_ref.Data()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(a_train.NumEl());
}

}  // namespace egeria
