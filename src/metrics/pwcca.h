// Projection-weighted CCA (Morcos, Raghu & Bengio, NeurIPS'18).
//
// The paper uses PWCCA as the *post hoc* layer convergence analysis (Figures 1, 4):
// comparing a layer's activations against a fully-trained model's, a low PWCCA
// distance (0-1) means the layer has converged toward its final representation.
// Egeria itself uses SP loss online; PWCCA appears in the Fig. 1 bench and in the
// correctness comparison (similar trend, ~10x higher cost — see bench/micro_kernels).
#ifndef EGERIA_SRC_METRICS_PWCCA_H_
#define EGERIA_SRC_METRICS_PWCCA_H_

#include "src/tensor/tensor.h"

namespace egeria {

// PWCCA *distance* in [0, 1]: 1 - sum(w_i rho_i) / sum(w_i), where rho are canonical
// correlations of X and Y and w are projection weights of X's data onto the
// canonical directions. X, Y: [n, p] and [n, q] activation matrices (rows = samples;
// for conv maps use [b*h*w, c]). Requires n > max(p, q).
double PwccaDistance(const Tensor& x, const Tensor& y);

// Reshapes conv activations [b,c,h,w] to [b*h*w, c] (the standard CCA layout).
Tensor ActivationsToSamples(const Tensor& a);

}  // namespace egeria

#endif  // EGERIA_SRC_METRICS_PWCCA_H_
