// Gradient- and activation-based freezing metrics used by the comparison baselines.
//
//  - GradientNormMetric: AutoFreeze-style (Liu et al.) per-stage gradient-norm
//    change rate; a stage freezes when its norm has stabilized relative to history.
//  - SkipConvGate: the input-norm gate of Skip-Convolutions (Habibian et al.)
//    applied to intermediate activations between evaluation points: the normalized
//    L1 change ||A_t - A_{t-1}||_1 / numel.
#ifndef EGERIA_SRC_METRICS_GRADIENT_METRICS_H_
#define EGERIA_SRC_METRICS_GRADIENT_METRICS_H_

#include <vector>

#include "src/nn/module.h"
#include "src/tensor/tensor.h"

namespace egeria {

// L2 norm over all parameter gradients of a stage.
double StageGradientNorm(const std::vector<Parameter*>& params);

// Skip-Conv input-norm gate between consecutive activation snapshots.
double SkipConvGate(const Tensor& current, const Tensor& previous);

}  // namespace egeria

#endif  // EGERIA_SRC_METRICS_GRADIENT_METRICS_H_
