#include "src/metrics/gradient_metrics.h"

#include <cmath>

#include "src/util/logging.h"

namespace egeria {

double StageGradientNorm(const std::vector<Parameter*>& params) {
  double sum = 0.0;
  for (const Parameter* p : params) {
    const float* g = p->grad.Data();
    for (int64_t i = 0; i < p->grad.NumEl(); ++i) {
      sum += static_cast<double>(g[i]) * g[i];
    }
  }
  return std::sqrt(sum);
}

double SkipConvGate(const Tensor& current, const Tensor& previous) {
  EGERIA_CHECK_MSG(current.NumEl() == previous.NumEl(), "SkipConvGate shape mismatch");
  double sum = 0.0;
  for (int64_t i = 0; i < current.NumEl(); ++i) {
    sum += std::abs(static_cast<double>(current.Data()[i]) - previous.Data()[i]);
  }
  return sum / static_cast<double>(current.NumEl());
}

}  // namespace egeria
