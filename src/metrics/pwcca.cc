#include "src/metrics/pwcca.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/linalg.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

Tensor ActivationsToSamples(const Tensor& a) {
  if (a.Dim() == 2) {
    return a;
  }
  if (a.Dim() == 3) {  // [b, t, d] -> [b*t, d]
    return a.Reshape({a.Size(0) * a.Size(1), a.Size(2)});
  }
  EGERIA_CHECK(a.Dim() == 4);
  const int64_t b = a.Size(0);
  const int64_t c = a.Size(1);
  const int64_t hw = a.Size(2) * a.Size(3);
  Tensor out({b * hw, c});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = a.Data() + (bi * c + ci) * hw;
      for (int64_t i = 0; i < hw; ++i) {
        out.At(bi * hw + i, ci) = plane[i];
      }
    }
  }
  return out;
}

double PwccaDistance(const Tensor& x_in, const Tensor& y_in) {
  EGERIA_CHECK(x_in.Dim() == 2 && y_in.Dim() == 2);
  EGERIA_CHECK_MSG(x_in.Size(0) == y_in.Size(0), "PWCCA sample-count mismatch");
  const int64_t n = x_in.Size(0);
  const int64_t p = x_in.Size(1);
  const int64_t q = y_in.Size(1);
  EGERIA_CHECK_MSG(n > std::max(p, q), "PWCCA requires more samples than features");

  Tensor x = x_in.Clone();
  Tensor y = y_in.Clone();
  CenterColumns(x);
  CenterColumns(y);

  // CCA via QR + SVD: X = Qx Rx, Y = Qy Ry; svd(Qx^T Qy) = U S V^T gives canonical
  // correlations S and canonical directions U in Qx coordinates.
  QrResult qx = HouseholderQr(x);
  QrResult qy = HouseholderQr(y);
  Tensor m = MatMulTransA(qx.q, qy.q);  // [p, q]
  SvdResult svd = JacobiSvd(m);
  const int64_t r = static_cast<int64_t>(svd.s.size());

  // Canonical variables of X: H = Qx U  [n, r].
  Tensor h = MatMul(qx.q, svd.u);

  // Projection weights: w_i = sum_j |<h_i, x_col_j>| — how much of X's data the i-th
  // canonical direction explains. The r*p dot products are one GEMM: H^T X [r, p].
  Tensor proj = MatMulTransA(h, x);
  std::vector<double> weights(static_cast<size_t>(r), 0.0);
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < p; ++j) {
      weights[static_cast<size_t>(i)] += std::abs(static_cast<double>(proj.At(i, j)));
    }
  }
  double wsum = 0.0;
  double corr = 0.0;
  for (int64_t i = 0; i < r; ++i) {
    const double rho = std::clamp(static_cast<double>(svd.s[static_cast<size_t>(i)]), 0.0, 1.0);
    wsum += weights[static_cast<size_t>(i)];
    corr += weights[static_cast<size_t>(i)] * rho;
  }
  if (wsum < 1e-12) {
    return 1.0;
  }
  return 1.0 - corr / wsum;
}

}  // namespace egeria
