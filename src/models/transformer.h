// Encoder-decoder Transformer (Vaswani et al.) as a ChainModel.
//
// Stage layout (the paper's Table 1 lists Transformer-Base as "12 building layer
// modules: 6 encoders & 6 decoders"):
//   stage 0                 : source embedding (+positional)
//   stages 1 .. E           : encoder layers (boundary = encoder hidden state)
//   stages E+1 .. E+D       : decoder layers (stage E+1 also owns the target
//                             embedding; boundary = decoder hidden state)
//   stage E+D+1             : output projection to vocabulary logits
//
// Freezing semantics: the frontmost-active pointer sweeps embeddings -> encoders ->
// decoders. While the frontier is at or before the encoder memory, cross-attention
// memory gradients from every decoder layer are accumulated and propagated into the
// active encoder suffix. Once the frontier enters the decoder region all encoders
// are frozen, so memory gradients are provably unused and skipped.
//
// Forward skipping (activation cache) is supported up to the encoder memory boundary
// (MaxForwardSkipStage): frozen decoder layers still run forward because each active
// decoder layer needs both the decoder stream and the memory. This matches the
// paper's observation that FP caching contributes less for language models (Fig. 9).
#ifndef EGERIA_SRC_MODELS_TRANSFORMER_H_
#define EGERIA_SRC_MODELS_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/models/chain_model.h"
#include "src/nn/transformer_layers.h"
#include "src/util/rng.h"

namespace egeria {

struct TransformerConfig {
  int64_t vocab = 64;
  int64_t dim = 32;
  int64_t heads = 4;
  int64_t ffn_dim = 64;
  int num_encoder_layers = 6;
  int num_decoder_layers = 6;
  int64_t max_len = 64;
  float dropout = 0.0F;
};

class TransformerChainModel : public ChainModel {
 public:
  TransformerChainModel(std::string name, const TransformerConfig& cfg, Rng& rng);

  int NumStages() const override { return 2 + num_enc_ + num_dec_; }
  std::string StageName(int i) const override;
  int64_t StageParamCount(int i) override;
  std::vector<Parameter*> StageParams(int i) override;
  std::vector<Module*> StageModules(int i) override;

  void SetBatch(const Batch& batch) override;
  Tensor ForwardFrom(int start, const Tensor& input) override;
  void BackwardTo(int stop, const Tensor& grad_output) override;
  Tensor StageOutput(int i) const override;
  Tensor ForwardPrefix(int end_stage, const Tensor& input) override;
  int MaxForwardSkipStage() const override { return num_enc_ + 1; }

  void SetStageFrozen(int i, bool frozen) override;
  void SetTraining(bool training) override;
  void ZeroGrad() override;

  std::unique_ptr<ChainModel> CloneForInference(const InferenceFactory& factory) const override;
  void CopyStateFrom(ChainModel& other) override;

  const TransformerConfig& config() const { return cfg_; }

 private:
  TransformerChainModel(std::string name, const TransformerConfig& cfg);

  // Stage index helpers.
  int EncStage(int layer) const { return 1 + layer; }
  int DecStage(int layer) const { return 1 + num_enc_ + layer; }
  int ProjStage() const { return 1 + num_enc_ + num_dec_; }

  std::string name_;
  TransformerConfig cfg_;
  int num_enc_;
  int num_dec_;

  std::unique_ptr<Module> src_embed_;
  std::unique_ptr<Module> tgt_embed_;
  std::vector<std::unique_ptr<Module>> encoders_;
  std::vector<std::unique_ptr<TransformerDecoderLayer>> decoders_;
  std::unique_ptr<Module> out_proj_;

  Batch batch_;
  Tensor memory_;
  std::vector<Tensor> stage_outputs_;
  int last_start_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_MODELS_TRANSFORMER_H_
