// ResNet family builders.
//
// Models are returned as flat block lists (stem, each residual block, head); the
// Egeria module partitioner (src/core/module_partitioner.h) groups consecutive blocks
// into parameter-balanced layer modules, mirroring the paper's Figure 11 split of
// ResNet-56 into 7 modules. Widths are configurable so benches can pick CPU-scale
// variants that keep the paper's depth/stage structure.
#ifndef EGERIA_SRC_MODELS_RESNET_H_
#define EGERIA_SRC_MODELS_RESNET_H_

#include <memory>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

struct CifarResNetConfig {
  int blocks_per_stage = 9;  // 9 -> ResNet-56 (6n+2), 3 -> ResNet-20
  int64_t base_width = 16;
  int64_t in_channels = 3;
  int64_t num_classes = 10;
};

// CIFAR-style ResNet: stem conv, 3 stages of BasicResidualBlocks with widths
// {w, 2w, 4w} (stride 2 between stages), global pool + linear head.
std::vector<std::unique_ptr<Module>> BuildCifarResNetBlocks(const CifarResNetConfig& cfg,
                                                            Rng& rng);

struct BottleneckResNetConfig {
  std::vector<int> stage_blocks{3, 4, 6, 3};  // ResNet-50 structure
  int64_t base_width = 16;                    // stage output widths: 4w, 8w, 16w, 32w
  int64_t in_channels = 3;
  int64_t num_classes = 10;
};

// ImageNet-style bottleneck ResNet (ResNet-50 structure at reduced width).
std::vector<std::unique_ptr<Module>> BuildBottleneckResNetBlocks(
    const BottleneckResNetConfig& cfg, Rng& rng);

}  // namespace egeria

#endif  // EGERIA_SRC_MODELS_RESNET_H_
