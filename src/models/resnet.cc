#include "src/models/resnet.h"

#include <string>

#include "src/nn/activations.h"
#include "src/nn/batchnorm.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/pooling.h"
#include "src/nn/sequential.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

std::unique_ptr<Module> MakeStem(int64_t in_channels, int64_t width, Rng& rng) {
  auto stem = std::make_unique<Sequential>("stem");
  stem->Add(std::make_unique<Conv2d>("stem.conv", in_channels, width, 3, rng));
  stem->Add(std::make_unique<BatchNorm2d>("stem.bn", width));
  stem->Add(std::make_unique<ReLU>("stem.relu"));
  return stem;
}

std::unique_ptr<Module> MakeClassifierHead(int64_t width, int64_t classes, Rng& rng) {
  auto head = std::make_unique<Sequential>("head");
  head->Add(std::make_unique<GlobalAvgPool>("head.pool"));
  head->Add(std::make_unique<Linear>("head.fc", width, classes, rng));
  return head;
}

}  // namespace

std::vector<std::unique_ptr<Module>> BuildCifarResNetBlocks(const CifarResNetConfig& cfg,
                                                            Rng& rng) {
  EGERIA_CHECK(cfg.blocks_per_stage >= 1);
  std::vector<std::unique_ptr<Module>> blocks;
  blocks.push_back(MakeStem(cfg.in_channels, cfg.base_width, rng));
  int64_t in_c = cfg.base_width;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out_c = cfg.base_width << stage;
    for (int b = 0; b < cfg.blocks_per_stage; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string name =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      blocks.push_back(
          std::make_unique<BasicResidualBlock>(name, in_c, out_c, stride, rng));
      in_c = out_c;
    }
  }
  blocks.push_back(MakeClassifierHead(in_c, cfg.num_classes, rng));
  return blocks;
}

std::vector<std::unique_ptr<Module>> BuildBottleneckResNetBlocks(
    const BottleneckResNetConfig& cfg, Rng& rng) {
  EGERIA_CHECK(!cfg.stage_blocks.empty());
  std::vector<std::unique_ptr<Module>> blocks;
  blocks.push_back(MakeStem(cfg.in_channels, cfg.base_width, rng));
  int64_t in_c = cfg.base_width;
  for (size_t stage = 0; stage < cfg.stage_blocks.size(); ++stage) {
    const int64_t out_c = (cfg.base_width * 4) << stage;
    for (int b = 0; b < cfg.stage_blocks[stage]; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      const std::string name =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(b);
      blocks.push_back(std::make_unique<BottleneckBlock>(name, in_c, out_c, stride, rng));
      in_c = out_c;
    }
  }
  blocks.push_back(MakeClassifierHead(in_c, cfg.num_classes, rng));
  return blocks;
}

}  // namespace egeria
