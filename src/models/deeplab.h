// DeepLabv3-lite for semantic segmentation: a ResNet backbone followed by an
// ASPP-style multi-dilation head and a bilinear upsample back to input resolution.
// Mirrors the paper's DeepLabv3 structure (backbone feature extractor + DeepLab head
// as the final layer modules, Table 1: "49 residual blocks and DeepLab head").
#ifndef EGERIA_SRC_MODELS_DEEPLAB_H_
#define EGERIA_SRC_MODELS_DEEPLAB_H_

#include <memory>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

struct DeepLabConfig {
  int backbone_blocks_per_stage = 3;
  int64_t base_width = 8;
  int64_t in_channels = 3;
  int64_t num_classes = 5;
  int64_t output_h = 16;  // input spatial size (head upsamples back to it)
  int64_t output_w = 16;
};

// Returns [stem, backbone blocks..., aspp head, classifier+upsample].
std::vector<std::unique_ptr<Module>> BuildDeepLabBlocks(const DeepLabConfig& cfg, Rng& rng);

}  // namespace egeria

#endif  // EGERIA_SRC_MODELS_DEEPLAB_H_
