#include "src/models/deeplab.h"

#include <string>

#include "src/nn/activations.h"
#include "src/nn/batchnorm.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/pooling.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

// ASPP-lite: parallel 1x1 / 3x3(d=2) / 3x3(d=4) branches, channel concat, 1x1 fuse.
class AsppLite : public Module {
 public:
  AsppLite(std::string name, int64_t in_channels, int64_t branch_channels, Rng& rng)
      : Module(std::move(name)), branch_c_(branch_channels) {
    b1_ = MakeBranch(name_ + ".b1", in_channels, 1, 1, rng);
    b2_ = MakeBranch(name_ + ".b2", in_channels, 3, 2, rng);
    b3_ = MakeBranch(name_ + ".b3", in_channels, 3, 4, rng);
    auto fuse = std::make_unique<Sequential>(name_ + ".fuse");
    fuse->Add(std::make_unique<Conv2d>(name_ + ".fuse.conv", 3 * branch_channels,
                                       branch_channels, 1, rng, 1, 0));
    fuse->Add(std::make_unique<BatchNorm2d>(name_ + ".fuse.bn", branch_channels));
    fuse->Add(std::make_unique<ReLU>(name_ + ".fuse.relu"));
    fuse_ = std::move(fuse);
  }

  Tensor Forward(const Tensor& input) override {
    Tensor y1 = b1_->Forward(input);
    Tensor y2 = b2_->Forward(input);
    Tensor y3 = b3_->Forward(input);
    return fuse_->Forward(ConcatChannels({y1, y2, y3}));
  }

  Tensor Backward(const Tensor& grad_output) override {
    Tensor g = fuse_->Backward(grad_output);
    std::vector<Tensor> parts = SplitChannels(g, {branch_c_, branch_c_, branch_c_});
    Tensor dx = b1_->Backward(parts[0]);
    dx.Add_(b2_->Backward(parts[1]));
    dx.Add_(b3_->Backward(parts[2]));
    return dx;
  }

  std::vector<Module*> Children() override {
    return {b1_.get(), b2_.get(), b3_.get(), fuse_.get()};
  }

  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override {
    auto clone = std::unique_ptr<AsppLite>(new AsppLite(name_, branch_c_));
    clone->b1_ = b1_->CloneForInference(factory);
    clone->b2_ = b2_->CloneForInference(factory);
    clone->b3_ = b3_->CloneForInference(factory);
    clone->fuse_ = fuse_->CloneForInference(factory);
    clone->SetTraining(false);
    return clone;
  }

 private:
  AsppLite(std::string name, int64_t branch_channels)
      : Module(std::move(name)), branch_c_(branch_channels) {}

  static std::unique_ptr<Module> MakeBranch(const std::string& name, int64_t in_c,
                                            int64_t kernel, int64_t dilation, Rng& rng) {
    auto seq = std::make_unique<Sequential>(name);
    seq->Add(std::make_unique<Conv2d>(name + ".conv", in_c, /*out=*/in_c, kernel, rng, 1,
                                      /*pad=*/-1, dilation));
    seq->Add(std::make_unique<BatchNorm2d>(name + ".bn", in_c));
    seq->Add(std::make_unique<ReLU>(name + ".relu"));
    return seq;
  }

  int64_t branch_c_;
  std::unique_ptr<Module> b1_;
  std::unique_ptr<Module> b2_;
  std::unique_ptr<Module> b3_;
  std::unique_ptr<Module> fuse_;
};

}  // namespace

std::vector<std::unique_ptr<Module>> BuildDeepLabBlocks(const DeepLabConfig& cfg, Rng& rng) {
  std::vector<std::unique_ptr<Module>> blocks;
  auto stem = std::make_unique<Sequential>("stem");
  stem->Add(std::make_unique<Conv2d>("stem.conv", cfg.in_channels, cfg.base_width, 3, rng));
  stem->Add(std::make_unique<BatchNorm2d>("stem.bn", cfg.base_width));
  stem->Add(std::make_unique<ReLU>("stem.relu"));
  blocks.push_back(std::move(stem));

  // Backbone: 3 stages; only stage 2 downsamples so that the head sees output stride
  // 2 (DeepLab keeps a dense feature map via dilation instead of stride).
  int64_t in_c = cfg.base_width;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out_c = cfg.base_width << stage;
    for (int b = 0; b < cfg.backbone_blocks_per_stage; ++b) {
      const int64_t stride = (stage == 1 && b == 0) ? 2 : 1;
      const std::string name =
          "backbone" + std::to_string(stage + 1) + "." + std::to_string(b);
      blocks.push_back(
          std::make_unique<BasicResidualBlock>(name, in_c, out_c, stride, rng));
      in_c = out_c;
    }
  }

  blocks.push_back(std::make_unique<AsppLite>("aspp", in_c, in_c, rng));

  auto classifier = std::make_unique<Sequential>("classifier");
  classifier->Add(std::make_unique<Conv2d>("classifier.conv", in_c, cfg.num_classes, 1,
                                           rng, 1, 0, 1, /*bias=*/true));
  classifier->Add(std::make_unique<Upsample>("classifier.up", cfg.output_h, cfg.output_w));
  blocks.push_back(std::move(classifier));
  return blocks;
}

}  // namespace egeria
