// MobileNetV2 (Sandler et al.) at configurable width: stem conv, a chain of inverted
// residual blocks following the standard (t, c, n, s) table, and a pooled classifier.
// The paper freezes its 17 inverted residual blocks as layer modules (Table 1).
#ifndef EGERIA_SRC_MODELS_MOBILENETV2_H_
#define EGERIA_SRC_MODELS_MOBILENETV2_H_

#include <memory>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

struct MobileNetV2Config {
  // Divides the standard channel table (32,16,24,...,320) by this factor.
  int64_t channel_divisor = 8;
  int64_t in_channels = 3;
  int64_t num_classes = 10;
};

std::vector<std::unique_ptr<Module>> BuildMobileNetV2Blocks(const MobileNetV2Config& cfg,
                                                            Rng& rng);

}  // namespace egeria

#endif  // EGERIA_SRC_MODELS_MOBILENETV2_H_
