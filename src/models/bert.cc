#include "src/models/bert.h"

#include <string>

#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/transformer_layers.h"

namespace egeria {

std::vector<std::unique_ptr<Module>> BuildBertBlocks(const BertConfig& cfg, Rng& rng) {
  std::vector<std::unique_ptr<Module>> blocks;
  blocks.push_back(std::make_unique<Embedding>("embed", cfg.vocab, cfg.dim, rng,
                                               /*scale=*/false, /*positional=*/true,
                                               cfg.max_len));
  for (int i = 0; i < cfg.num_layers; ++i) {
    blocks.push_back(std::make_unique<TransformerEncoderLayer>(
        "enc" + std::to_string(i), cfg.dim, cfg.heads, cfg.ffn_dim, rng, cfg.dropout));
  }
  blocks.push_back(std::make_unique<Linear>("span_head", cfg.dim, 2, rng));
  return blocks;
}

}  // namespace egeria
