#include "src/models/chain_model.h"

#include "src/util/logging.h"

namespace egeria {

std::vector<Parameter*> ChainModel::ParamsFrom(int first_stage) {
  std::vector<Parameter*> out;
  for (int i = first_stage; i < NumStages(); ++i) {
    for (Parameter* p : StageParams(i)) {
      out.push_back(p);
    }
  }
  return out;
}

int64_t ChainModel::TotalParamCount() {
  int64_t total = 0;
  for (int i = 0; i < NumStages(); ++i) {
    total += StageParamCount(i);
  }
  return total;
}

namespace {

bool SubtreeIsStochastic(Module* m) {
  if (m->ForwardIsStochastic()) {
    return true;
  }
  for (Module* child : m->Children()) {
    if (SubtreeIsStochastic(child)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool ChainModel::PrefixForwardDeterministic(int frontier) {
  for (int i = 0; i < frontier && i < NumStages(); ++i) {
    for (Module* m : StageModules(i)) {
      if (SubtreeIsStochastic(m)) {
        return false;
      }
    }
  }
  return true;
}

StageChainModel::StageChainModel(std::string name,
                                 std::vector<std::unique_ptr<Module>> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  EGERIA_CHECK_MSG(!stages_.empty(), name_ + ": empty chain");
  forward_subs_.resize(stages_.size());
  forward_sub_precision_.resize(stages_.size(), Precision::kFloat32);
  stage_outputs_.resize(stages_.size());
}

Module* StageChainModel::ForwardStage(int i) const {
  Module* sub = forward_subs_[static_cast<size_t>(i)].get();
  return sub != nullptr ? sub : stages_[static_cast<size_t>(i)].get();
}

std::string StageChainModel::StageName(int i) const {
  return stages_[static_cast<size_t>(i)]->name();
}

int64_t StageChainModel::StageParamCount(int i) {
  return stages_[static_cast<size_t>(i)]->ParamCount();
}

std::vector<Parameter*> StageChainModel::StageParams(int i) {
  return stages_[static_cast<size_t>(i)]->Parameters();
}

Tensor StageChainModel::ForwardFrom(int start, const Tensor& input) {
  EGERIA_CHECK(start >= 0 && start < NumStages());
  last_start_ = start;
  Tensor x = input;
  for (int i = start; i < NumStages(); ++i) {
    x = ForwardStage(i)->Forward(x);
    stage_outputs_[static_cast<size_t>(i)] = x;
  }
  return x;
}

void StageChainModel::BackwardTo(int stop, const Tensor& grad_output) {
  EGERIA_CHECK(stop >= 0 && stop <= NumStages());
  EGERIA_CHECK_MSG(stop >= last_start_, name_ + ": BackwardTo below last ForwardFrom start");
  Tensor g = grad_output;
  for (int i = NumStages() - 1; i >= stop; --i) {
    EGERIA_CHECK_MSG(forward_subs_[static_cast<size_t>(i)] == nullptr,
                     name_ + ": backward through a reduced-precision frozen stage");
    g = stages_[static_cast<size_t>(i)]->Backward(g);
    NotifyStageBackward(i);
  }
}

Tensor StageChainModel::StageOutput(int i) const {
  EGERIA_CHECK(i >= 0 && i < NumStages());
  return stage_outputs_[static_cast<size_t>(i)];
}

Tensor StageChainModel::ForwardPrefix(int end_stage, const Tensor& input) {
  EGERIA_CHECK(end_stage >= 0 && end_stage < NumStages());
  Tensor x = input;
  for (int i = 0; i <= end_stage; ++i) {
    x = ForwardStage(i)->Forward(x);
    stage_outputs_[static_cast<size_t>(i)] = x;
  }
  return x;
}

void StageChainModel::SetStageFrozen(int i, bool frozen) {
  stages_[static_cast<size_t>(i)]->SetFrozen(frozen);
}

bool StageChainModel::SetStageForwardPrecision(int i, Precision p) {
  EGERIA_CHECK(i >= 0 && i < NumStages());
  const auto si = static_cast<size_t>(i);
  if (p == Precision::kFloat32) {
    forward_subs_[si].reset();
    forward_sub_precision_[si] = Precision::kFloat32;
    return true;
  }
  if (forward_subs_[si] != nullptr && forward_sub_precision_[si] == p) {
    return true;  // Frozen parameters are fixed; the existing clone is current.
  }
  forward_subs_[si] = CloneAtPrecision(*stages_[si], p);
  forward_sub_precision_[si] = p;
  return true;
}

void StageChainModel::SetTraining(bool training) {
  for (auto& s : stages_) {
    s->SetTraining(training);
  }
}

void StageChainModel::ZeroGrad() {
  for (auto& s : stages_) {
    s->ZeroGrad();
  }
}

std::unique_ptr<ChainModel> StageChainModel::CloneForInference(
    const InferenceFactory& factory) const {
  std::vector<std::unique_ptr<Module>> clones;
  clones.reserve(stages_.size());
  for (const auto& s : stages_) {
    clones.push_back(s->CloneForInference(factory));
  }
  auto model = std::make_unique<StageChainModel>(name_ + ".ref", std::move(clones));
  model->SetTraining(false);
  return model;
}

void StageChainModel::CopyStateFrom(ChainModel& other) {
  auto* src = dynamic_cast<StageChainModel*>(&other);
  EGERIA_CHECK_MSG(src != nullptr, name_ + ": CopyStateFrom type mismatch");
  EGERIA_CHECK(src->NumStages() == NumStages());
  for (int i = 0; i < NumStages(); ++i) {
    stages_[static_cast<size_t>(i)]->CopyStateFrom(*src->stages_[static_cast<size_t>(i)]);
    // Any installed forward substitute now shadows stale parameters; re-clone.
    if (forward_subs_[static_cast<size_t>(i)] != nullptr) {
      forward_subs_[static_cast<size_t>(i)] = CloneAtPrecision(
          *stages_[static_cast<size_t>(i)], forward_sub_precision_[static_cast<size_t>(i)]);
    }
  }
}

}  // namespace egeria
