// BERT-style encoder for span-extraction QA (the paper's fine-tuning task, Table 1:
// "12 Transformer blocks" on SQuAD). Encoder-only, so it is a plain linear chain:
// [embedding, encoder layers..., span head] hosted by StageChainModel.
#ifndef EGERIA_SRC_MODELS_BERT_H_
#define EGERIA_SRC_MODELS_BERT_H_

#include <memory>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace egeria {

struct BertConfig {
  int64_t vocab = 64;
  int64_t dim = 32;
  int64_t heads = 4;
  int64_t ffn_dim = 64;
  int num_layers = 12;
  int64_t max_len = 64;
  float dropout = 0.0F;
};

// Returns [embed, enc0 .. encN-1, span_head]; span_head maps [b,t,d] -> [b,t,2].
std::vector<std::unique_ptr<Module>> BuildBertBlocks(const BertConfig& cfg, Rng& rng);

}  // namespace egeria

#endif  // EGERIA_SRC_MODELS_BERT_H_
