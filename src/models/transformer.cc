#include "src/models/transformer.h"

#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/util/logging.h"

namespace egeria {

TransformerChainModel::TransformerChainModel(std::string name, const TransformerConfig& cfg,
                                             Rng& rng)
    : name_(std::move(name)),
      cfg_(cfg),
      num_enc_(cfg.num_encoder_layers),
      num_dec_(cfg.num_decoder_layers) {
  EGERIA_CHECK(num_enc_ >= 1 && num_dec_ >= 1);
  src_embed_ = std::make_unique<Embedding>(name_ + ".src_embed", cfg.vocab, cfg.dim, rng,
                                           /*scale=*/true, /*positional=*/true, cfg.max_len);
  tgt_embed_ = std::make_unique<Embedding>(name_ + ".tgt_embed", cfg.vocab, cfg.dim, rng,
                                           /*scale=*/true, /*positional=*/true, cfg.max_len);
  for (int i = 0; i < num_enc_; ++i) {
    encoders_.push_back(std::make_unique<TransformerEncoderLayer>(
        name_ + ".enc" + std::to_string(i), cfg.dim, cfg.heads, cfg.ffn_dim, rng,
        cfg.dropout));
  }
  for (int i = 0; i < num_dec_; ++i) {
    decoders_.push_back(std::make_unique<TransformerDecoderLayer>(
        name_ + ".dec" + std::to_string(i), cfg.dim, cfg.heads, cfg.ffn_dim, rng,
        cfg.dropout));
  }
  out_proj_ = std::make_unique<Linear>(name_ + ".out_proj", cfg.dim, cfg.vocab, rng);
  stage_outputs_.resize(static_cast<size_t>(NumStages()));
}

TransformerChainModel::TransformerChainModel(std::string name, const TransformerConfig& cfg)
    : name_(std::move(name)),
      cfg_(cfg),
      num_enc_(cfg.num_encoder_layers),
      num_dec_(cfg.num_decoder_layers) {
  stage_outputs_.resize(static_cast<size_t>(NumStages()));
}

std::string TransformerChainModel::StageName(int i) const {
  if (i == 0) {
    return name_ + ".src_embed";
  }
  if (i <= num_enc_) {
    return encoders_[static_cast<size_t>(i - 1)]->name();
  }
  if (i < ProjStage()) {
    return decoders_[static_cast<size_t>(i - num_enc_ - 1)]->name();
  }
  return name_ + ".out_proj";
}

int64_t TransformerChainModel::StageParamCount(int i) {
  int64_t total = 0;
  for (Parameter* p : StageParams(i)) {
    total += p->value.NumEl();
  }
  return total;
}

std::vector<Parameter*> TransformerChainModel::StageParams(int i) {
  if (i == 0) {
    return src_embed_->Parameters();
  }
  if (i <= num_enc_) {
    return encoders_[static_cast<size_t>(i - 1)]->Parameters();
  }
  if (i < ProjStage()) {
    const int layer = i - num_enc_ - 1;
    std::vector<Parameter*> out = decoders_[static_cast<size_t>(layer)]->Params();
    if (layer == 0) {
      // The first decoder stage owns the target embedding.
      for (Parameter* p : tgt_embed_->Parameters()) {
        out.push_back(p);
      }
    }
    return out;
  }
  return out_proj_->Parameters();
}

std::vector<Module*> TransformerChainModel::StageModules(int i) {
  // StageModules feeds the checkpoint subsystem's non-parameter-buffer
  // traversal. TransformerDecoderLayer lives outside the Module interface, but
  // its sublayers (LayerNorm, attention, FFN) are parameter-only — there are
  // no buffers to miss, so decoder stages expose just their Module-typed parts
  // (the target embedding on the first decoder stage).
  if (i == 0) {
    return {src_embed_.get()};
  }
  if (i <= num_enc_) {
    return {encoders_[static_cast<size_t>(i - 1)].get()};
  }
  if (i < ProjStage()) {
    const int layer = i - num_enc_ - 1;
    if (layer == 0) {
      return {tgt_embed_.get()};
    }
    return {};
  }
  return {out_proj_.get()};
}

void TransformerChainModel::SetBatch(const Batch& batch) {
  EGERIA_CHECK_MSG(batch.target_input.Defined(),
                   name_ + ": seq2seq batch requires target_input");
  batch_ = batch;
}

Tensor TransformerChainModel::ForwardFrom(int start, const Tensor& input) {
  EGERIA_CHECK(start >= 0 && start <= MaxForwardSkipStage());
  last_start_ = start;

  // Encoder side.
  if (start <= num_enc_) {
    Tensor x;
    if (start == 0) {
      x = src_embed_->Forward(input);
      stage_outputs_[0] = x;
    } else {
      x = input;  // Cached boundary activation entering encoder layer `start`.
    }
    for (int i = std::max(start, 1); i <= num_enc_; ++i) {
      x = encoders_[static_cast<size_t>(i - 1)]->Forward(x);
      stage_outputs_[static_cast<size_t>(i)] = x;
    }
    memory_ = x;
  } else {
    // start == num_enc_ + 1: the cached tensor is the encoder memory itself.
    memory_ = input;
    stage_outputs_[static_cast<size_t>(num_enc_)] = memory_;
  }

  // Decoder side: every decoder layer runs forward (each needs the memory).
  Tensor t = tgt_embed_->Forward(batch_.target_input);
  for (int j = 0; j < num_dec_; ++j) {
    t = decoders_[static_cast<size_t>(j)]->Forward(t, memory_);
    stage_outputs_[static_cast<size_t>(DecStage(j))] = t;
  }
  Tensor logits = out_proj_->Forward(t);
  stage_outputs_[static_cast<size_t>(ProjStage())] = logits;
  return logits;
}

void TransformerChainModel::BackwardTo(int stop, const Tensor& grad_output) {
  EGERIA_CHECK(stop >= 0 && stop <= NumStages());
  if (stop > ProjStage()) {
    return;
  }
  Tensor g = out_proj_->Backward(grad_output);
  NotifyStageBackward(ProjStage());

  Tensor dmemory;
  for (int j = num_dec_ - 1; j >= 0; --j) {
    if (DecStage(j) < stop) {
      // Frozen decoder prefix: no backward below this point. Encoders are frozen too
      // (the frontier is monotone), so accumulated memory gradients are not needed.
      return;
    }
    auto [dx, dmem] = decoders_[static_cast<size_t>(j)]->Backward(g);
    g = dx;
    if (dmemory.Defined()) {
      dmemory.Add_(dmem);
    } else {
      dmemory = dmem;
    }
    if (j > 0) {
      NotifyStageBackward(DecStage(j));
    }
  }
  tgt_embed_->Backward(g);  // Owned by decoder stage 0, which is active here.
  // Decoder stage 0's gradients are final only once its target embedding ran.
  NotifyStageBackward(DecStage(0));

  // Encoder side.
  if (stop > num_enc_) {
    return;
  }
  EGERIA_CHECK_MSG(stop >= last_start_, name_ + ": BackwardTo below ForwardFrom start");
  Tensor ge = dmemory;
  for (int i = num_enc_; i >= std::max(stop, 1); --i) {
    ge = encoders_[static_cast<size_t>(i - 1)]->Backward(ge);
    NotifyStageBackward(i);
  }
  if (stop == 0) {
    src_embed_->Backward(ge);
    NotifyStageBackward(0);
  }
}

Tensor TransformerChainModel::StageOutput(int i) const {
  EGERIA_CHECK(i >= 0 && i < NumStages());
  return stage_outputs_[static_cast<size_t>(i)];
}

Tensor TransformerChainModel::ForwardPrefix(int end_stage, const Tensor& input) {
  EGERIA_CHECK(end_stage >= 0 && end_stage < NumStages());
  Tensor x = src_embed_->Forward(input);
  stage_outputs_[0] = x;
  for (int i = 1; i <= std::min(end_stage, num_enc_); ++i) {
    x = encoders_[static_cast<size_t>(i - 1)]->Forward(x);
    stage_outputs_[static_cast<size_t>(i)] = x;
  }
  if (end_stage <= num_enc_) {
    return x;
  }
  memory_ = x;
  Tensor t = tgt_embed_->Forward(batch_.target_input);
  for (int j = 0; j < num_dec_; ++j) {
    if (DecStage(j) > end_stage) {
      break;
    }
    t = decoders_[static_cast<size_t>(j)]->Forward(t, memory_);
    stage_outputs_[static_cast<size_t>(DecStage(j))] = t;
  }
  if (end_stage == ProjStage()) {
    t = out_proj_->Forward(t);
    stage_outputs_[static_cast<size_t>(ProjStage())] = t;
  }
  return t;
}

void TransformerChainModel::SetStageFrozen(int i, bool frozen) {
  if (i == 0) {
    src_embed_->SetFrozen(frozen);
  } else if (i <= num_enc_) {
    encoders_[static_cast<size_t>(i - 1)]->SetFrozen(frozen);
  } else if (i < ProjStage()) {
    const int layer = i - num_enc_ - 1;
    decoders_[static_cast<size_t>(layer)]->SetFrozen(frozen);
    if (layer == 0) {
      tgt_embed_->SetFrozen(frozen);
    }
  } else {
    out_proj_->SetFrozen(frozen);
  }
}

void TransformerChainModel::SetTraining(bool training) {
  src_embed_->SetTraining(training);
  tgt_embed_->SetTraining(training);
  for (auto& e : encoders_) {
    e->SetTraining(training);
  }
  for (auto& d : decoders_) {
    d->SetTraining(training);
  }
  out_proj_->SetTraining(training);
}

void TransformerChainModel::ZeroGrad() {
  for (int i = 0; i < NumStages(); ++i) {
    for (Parameter* p : StageParams(i)) {
      p->grad.Zero_();
    }
  }
}

std::unique_ptr<ChainModel> TransformerChainModel::CloneForInference(
    const InferenceFactory& factory) const {
  auto clone = std::unique_ptr<TransformerChainModel>(
      new TransformerChainModel(name_ + ".ref", cfg_));
  clone->src_embed_ = src_embed_->CloneForInference(factory);
  clone->tgt_embed_ = tgt_embed_->CloneForInference(factory);
  for (const auto& e : encoders_) {
    clone->encoders_.push_back(e->CloneForInference(factory));
  }
  for (const auto& d : decoders_) {
    clone->decoders_.push_back(d->CloneForInference(factory));
  }
  clone->out_proj_ = out_proj_->CloneForInference(factory);
  return clone;
}

void TransformerChainModel::CopyStateFrom(ChainModel& other) {
  auto* src = dynamic_cast<TransformerChainModel*>(&other);
  EGERIA_CHECK_MSG(src != nullptr, name_ + ": CopyStateFrom type mismatch");
  src_embed_->CopyStateFrom(*src->src_embed_);
  tgt_embed_->CopyStateFrom(*src->tgt_embed_);
  for (int i = 0; i < num_enc_; ++i) {
    encoders_[static_cast<size_t>(i)]->CopyStateFrom(*src->encoders_[static_cast<size_t>(i)]);
  }
  for (int i = 0; i < num_dec_; ++i) {
    CopyParamValues(decoders_[static_cast<size_t>(i)]->Params(),
                    src->decoders_[static_cast<size_t>(i)]->Params());
  }
  out_proj_->CopyStateFrom(*src->out_proj_);
}

}  // namespace egeria
