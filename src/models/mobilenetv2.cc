#include "src/models/mobilenetv2.h"

#include <algorithm>
#include <string>

#include "src/nn/activations.h"
#include "src/nn/batchnorm.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/pooling.h"
#include "src/nn/sequential.h"
#include "src/util/logging.h"

namespace egeria {

namespace {

struct IrSpec {
  int64_t expand;
  int64_t channels;
  int repeats;
  int64_t stride;
};

// Standard MobileNetV2 table. Strides of the deepest downsampling stages are kept at
// 1 here because the CPU-scale inputs (16-32 px) cannot absorb 32x total reduction.
constexpr IrSpec kTable[] = {
    {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 1}, {6, 64, 2, 2},
    {6, 96, 2, 1}, {6, 160, 2, 1}, {6, 320, 1, 1},
};

int64_t Scaled(int64_t c, int64_t divisor) { return std::max<int64_t>(2, c / divisor); }

}  // namespace

std::vector<std::unique_ptr<Module>> BuildMobileNetV2Blocks(const MobileNetV2Config& cfg,
                                                            Rng& rng) {
  std::vector<std::unique_ptr<Module>> blocks;
  const int64_t stem_c = Scaled(32, cfg.channel_divisor);
  auto stem = std::make_unique<Sequential>("stem");
  stem->Add(std::make_unique<Conv2d>("stem.conv", cfg.in_channels, stem_c, 3, rng));
  stem->Add(std::make_unique<BatchNorm2d>("stem.bn", stem_c));
  stem->Add(std::make_unique<ReLU6>("stem.relu"));
  blocks.push_back(std::move(stem));

  int64_t in_c = stem_c;
  int block_id = 0;
  for (const IrSpec& spec : kTable) {
    const int64_t out_c = Scaled(spec.channels, cfg.channel_divisor);
    for (int r = 0; r < spec.repeats; ++r) {
      const int64_t stride = (r == 0) ? spec.stride : 1;
      blocks.push_back(std::make_unique<InvertedResidual>(
          "ir" + std::to_string(block_id), in_c, out_c, stride, spec.expand, rng));
      in_c = out_c;
      ++block_id;
    }
  }

  const int64_t last_c = Scaled(1280, cfg.channel_divisor);
  auto head = std::make_unique<Sequential>("head");
  head->Add(std::make_unique<Conv2d>("head.conv", in_c, last_c, 1, rng, 1, 0));
  head->Add(std::make_unique<BatchNorm2d>("head.bn", last_c));
  head->Add(std::make_unique<ReLU6>("head.relu"));
  head->Add(std::make_unique<GlobalAvgPool>("head.pool"));
  head->Add(std::make_unique<Linear>("head.fc", last_c, cfg.num_classes, rng));
  blocks.push_back(std::move(head));
  return blocks;
}

}  // namespace egeria
