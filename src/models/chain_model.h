// ChainModel: the stage-chain abstraction Egeria operates on.
//
// A chain model is an ordered list of *stages* (the paper's "layer modules"): stage i
// consumes the boundary activation produced by stage i-1. This is the structure that
// makes every Egeria mechanism expressible:
//   - plasticity is evaluated on StageOutput(l) of the frontmost active stage l
//     against the reference model's same boundary (Eq. 1);
//   - freezing stage l means BackwardTo(l+1, ...) — no gradients below — and
//     excluding ParamsFrom(l+1)'s complement from the optimizer and synchronization;
//   - forward skipping replays a cached boundary activation via ForwardFrom(l+1, act).
//
// StageChainModel covers linear chains (ResNets, MobileNetV2, DeepLab, BERT-style
// encoders). The encoder-decoder Transformer has its own implementation that routes
// cross-attention memory gradients (src/models/transformer.h).
#ifndef EGERIA_SRC_MODELS_CHAIN_MODEL_H_
#define EGERIA_SRC_MODELS_CHAIN_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/data/batch.h"
#include "src/nn/module.h"

namespace egeria {

class ChainModel {
 public:
  virtual ~ChainModel() = default;

  virtual int NumStages() const = 0;
  virtual std::string StageName(int i) const = 0;
  virtual int64_t StageParamCount(int i) = 0;
  virtual std::vector<Parameter*> StageParams(int i) = 0;

  // The training modules making up stage i, in a stable order (most stages are
  // one module; the Transformer's first decoder stage also owns the target
  // embedding). The checkpoint subsystem traverses these to reach state that
  // is not a Parameter (BatchNorm running statistics). Default: none — such a
  // model checkpoints parameters only.
  virtual std::vector<Module*> StageModules(int i) {
    (void)i;
    return {};
  }

  // Parameters of stages [first_stage, NumStages). The active set under freezing.
  std::vector<Parameter*> ParamsFrom(int first_stage);
  int64_t TotalParamCount();

  // True when no module of stages [0, frontier) is stochastic in its current
  // mode (Module::ForwardIsStochastic, checked recursively). The frozen-
  // feature store consults this before serving: a train-mode Dropout in the
  // prefix would make cached boundary activations replay stale masks, so it
  // forces a recompute. A frontier frozen through FreezeUpTo always passes —
  // SetFrozen turns the prefix's stochastic layers into no-ops.
  bool PrefixForwardDeterministic(int frontier);

  // Provides task context (labels, decoder input tokens). Called once per batch
  // before ForwardFrom.
  virtual void SetBatch(const Batch& batch) { (void)batch; }

  // Runs stages [start, NumStages) and returns the model output (logits). For
  // start == 0, `input` is the raw batch input; otherwise it is the cached boundary
  // activation that feeds stage `start`. Boundary activations of executed stages are
  // recorded and readable via StageOutput.
  virtual Tensor ForwardFrom(int start, const Tensor& input) = 0;

  // Backpropagates from the output, stopping before stage `stop`: stages < stop see
  // no backward work at all (the frozen prefix). stop == 0 is full backprop.
  virtual void BackwardTo(int stop, const Tensor& grad_output) = 0;

  // Observer fired during BackwardTo, once per visited stage, at the moment
  // EVERY parameter gradient of that stage is final for the pass (a stage that
  // owns auxiliary modules — the Transformer's first decoder stage and its
  // target embedding — fires only after all of them). Stages are reported in
  // the model's own backward order (deepest first). The overlapped gradient
  // reducer hangs its per-stage bucket schedule off this. Null = no-op.
  using StageBackwardObserver = std::function<void(int stage)>;
  void SetStageBackwardObserver(StageBackwardObserver observer) {
    stage_backward_observer_ = std::move(observer);
  }

  // Boundary activation recorded by the last ForwardFrom (output of stage i).
  virtual Tensor StageOutput(int i) const = 0;

  // Runs only stages [0, end_stage] and returns the boundary activation of
  // end_stage. This is what the reference model executes for plasticity evaluation —
  // the controller never needs stages beyond the frontier. Default: full forward.
  virtual Tensor ForwardPrefix(int end_stage, const Tensor& input) {
    ForwardFrom(0, input);
    return StageOutput(end_stage);
  }

  // Exclusive upper bound on stages whose *output* can seed ForwardFrom. Linear
  // chains allow every boundary; the Transformer allows boundaries up to (and
  // including) the encoder memory.
  virtual int MaxForwardSkipStage() const { return NumStages() - 1; }

  virtual void SetStageFrozen(int i, bool frozen) = 0;
  virtual void SetTraining(bool training) = 0;
  virtual void ZeroGrad() = 0;

  // Substitutes stage i's *forward* with a reduced-precision inference clone
  // (paper-consistent with the quantized reference model: a frozen stage's
  // forward is input-deterministic and its parameters fixed, so it can run at
  // fp16/int8 bandwidth). kFloat32 restores the training module. Returns false
  // when the model does not support substitution (the default); callers fall
  // back to full-precision forwards.
  virtual bool SetStageForwardPrecision(int i, Precision p) {
    (void)i;
    return p == Precision::kFloat32;
  }

  // Inference-only deep copy (the reference model), with the factory choosing kernel
  // precision. The clone supports SetBatch/ForwardFrom/StageOutput only.
  virtual std::unique_ptr<ChainModel> CloneForInference(const InferenceFactory& factory) const = 0;

  // Copies parameter values and normalization statistics from an identically
  // structured model (data-parallel replicas, checkpoint restore).
  virtual void CopyStateFrom(ChainModel& other) = 0;

 protected:
  void NotifyStageBackward(int stage) {
    if (stage_backward_observer_) {
      stage_backward_observer_(stage);
    }
  }

 private:
  StageBackwardObserver stage_backward_observer_;
};

// ChainModel over an explicit list of single-input modules.
class StageChainModel : public ChainModel {
 public:
  StageChainModel(std::string name, std::vector<std::unique_ptr<Module>> stages);

  int NumStages() const override { return static_cast<int>(stages_.size()); }
  std::string StageName(int i) const override;
  int64_t StageParamCount(int i) override;
  std::vector<Parameter*> StageParams(int i) override;
  std::vector<Module*> StageModules(int i) override {
    return {stages_[static_cast<size_t>(i)].get()};
  }

  Tensor ForwardFrom(int start, const Tensor& input) override;
  void BackwardTo(int stop, const Tensor& grad_output) override;
  Tensor StageOutput(int i) const override;
  Tensor ForwardPrefix(int end_stage, const Tensor& input) override;

  void SetStageFrozen(int i, bool frozen) override;
  void SetTraining(bool training) override;
  void ZeroGrad() override;
  bool SetStageForwardPrecision(int i, Precision p) override;

  std::unique_ptr<ChainModel> CloneForInference(const InferenceFactory& factory) const override;
  void CopyStateFrom(ChainModel& other) override;

  const std::string& name() const { return name_; }
  Module* stage(int i) { return stages_[static_cast<size_t>(i)].get(); }

 private:
  // The module that runs stage i's forward: the substitute when one is
  // installed, the training module otherwise.
  Module* ForwardStage(int i) const;

  std::string name_;
  std::vector<std::unique_ptr<Module>> stages_;
  // Reduced-precision forward substitutes, indexed by stage; null = none.
  std::vector<std::unique_ptr<Module>> forward_subs_;
  std::vector<Precision> forward_sub_precision_;
  std::vector<Tensor> stage_outputs_;
  int last_start_ = 0;
};

}  // namespace egeria

#endif  // EGERIA_SRC_MODELS_CHAIN_MODEL_H_
