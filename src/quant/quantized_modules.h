// Inference-only quantized layer kernels, substituted for Linear/Conv2d by the
// int8 / fp16 InferenceFactories when generating the reference model.
//
// Quantization modes (paper S5): *dynamic* computes the activation scale per batch
// (used for NLP models), *static* self-calibrates a MinMaxObserver over the first few
// forward passes and then freezes the scale (used for conv nets).
#ifndef EGERIA_SRC_QUANT_QUANTIZED_MODULES_H_
#define EGERIA_SRC_QUANT_QUANTIZED_MODULES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/quant/quantize.h"

namespace egeria {

enum class QuantMode { kDynamic, kStatic };

// Number of forward passes used for observer calibration in static mode.
inline constexpr int kStaticCalibrationBatches = 2;

// Static-mode self-calibration state (observer range + remaining calibration
// batches). Checkpoints persist this for every quantized module of the
// reference model: a reference rebuilt from a snapshot mid-calibration must
// continue with the same scales, or post-restore plasticity readings — and
// therefore freeze decisions — drift off the uninterrupted run.
struct QuantCalibrationState {
  float max_abs = 0.0F;
  bool observed = false;
  int calibration_left = kStaticCalibrationBatches;
};

class QuantLinear : public Module {
 public:
  QuantLinear(const Linear& src, QuantMode mode);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;  // CHECK-fails: inference only
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  QuantCalibrationState calibration() const {
    return {observer_.MaxAbs(), observer_.Calibrated(), calibration_left_};
  }
  void RestoreCalibration(const QuantCalibrationState& s) {
    observer_.Restore(s.max_abs, s.observed);
    calibration_left_ = s.calibration_left;
  }

 private:
  float InputScale(const float* x, int64_t n);

  int64_t in_features_;
  int64_t out_features_;
  QuantizedWeights weights_;
  Tensor bias_;  // float, undefined if absent
  QuantMode mode_;
  MinMaxObserver observer_;
  int calibration_left_ = kStaticCalibrationBatches;
};

class QuantConv2d : public Module {
 public:
  QuantConv2d(const Conv2d& src, QuantMode mode);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

  QuantCalibrationState calibration() const {
    return {observer_.MaxAbs(), observer_.Calibrated(), calibration_left_};
  }
  void RestoreCalibration(const QuantCalibrationState& s) {
    observer_.Restore(s.max_abs, s.observed);
    calibration_left_ = s.calibration_left;
  }

 private:
  float InputScale(const float* x, int64_t n);

  int64_t in_channels_;
  int64_t out_channels_;
  ConvGeom geom_;
  QuantizedWeights weights_;  // [out_c, in_c*kh*kw]
  Tensor bias_;
  QuantMode mode_;
  MinMaxObserver observer_;
  int calibration_left_ = kStaticCalibrationBatches;
};

// fp16 storage emulation via _Float16: halves weight memory traffic; compute in f32.
class Fp16Linear : public Module {
 public:
  explicit Fp16Linear(const Linear& src);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  int64_t in_features_;
  int64_t out_features_;
  std::vector<_Float16> weights_;  // [out, in]
  Tensor bias_;
};

class Fp16Conv2d : public Module {
 public:
  explicit Fp16Conv2d(const Conv2d& src);

  Tensor Forward(const Tensor& input) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Module> CloneForInference(const InferenceFactory& factory) const override;

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  ConvGeom geom_;
  std::vector<_Float16> weights_;  // [out_c, ckk]
  Tensor bias_;
};

// Factories plugged into Module::CloneForInference.
class Int8Factory : public InferenceFactory {
 public:
  explicit Int8Factory(QuantMode mode) : mode_(mode) {}
  std::unique_ptr<Module> MakeLinear(const Linear& src) const override;
  std::unique_ptr<Module> MakeConv2d(const Conv2d& src) const override;
  Precision precision() const override { return Precision::kInt8; }

 private:
  QuantMode mode_;
};

class Fp16Factory : public InferenceFactory {
 public:
  std::unique_ptr<Module> MakeLinear(const Linear& src) const override;
  std::unique_ptr<Module> MakeConv2d(const Conv2d& src) const override;
  Precision precision() const override { return Precision::kFloat16; }
};

// Factory selection for a reference precision; mode applies to int8 only.
std::unique_ptr<InferenceFactory> MakeInferenceFactory(Precision precision, QuantMode mode);

}  // namespace egeria

#endif  // EGERIA_SRC_QUANT_QUANTIZED_MODULES_H_
