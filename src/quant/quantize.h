// Affine quantization primitives (paper S4.1.3).
//
// The reference model is an int8 post-training quantization of a training snapshot:
// symmetric per-output-channel weight quantization, per-tensor activation
// quantization (dynamic per-batch absmax, or frozen after observer calibration for
// the static mode used on conv nets), int8 x int8 -> int32 kernels, float
// dequantized outputs at module boundaries (where activations are hooked).
#ifndef EGERIA_SRC_QUANT_QUANTIZE_H_
#define EGERIA_SRC_QUANT_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace egeria {

// Per-output-channel symmetric int8 weights for a [rows, cols] matrix.
struct QuantizedWeights {
  std::vector<int8_t> data;   // [rows, cols] row-major
  std::vector<float> scales;  // one per row: w_float = w_int8 * scale
  int64_t rows = 0;
  int64_t cols = 0;
};

QuantizedWeights QuantizeWeightsPerChannel(const Tensor& w);

// Symmetric per-tensor activation scale: absmax / 127 (0-safe).
float ActivationScale(const float* x, int64_t n);

// x_q = clamp(round(x / scale), -127, 127).
void QuantizeActivations(const float* x, int8_t* out, int64_t n, float scale);

// C[m, n] = (Aq[m, k] * Wq[n, k]^T) dequantized with a_scale * w_scale[row] + bias.
// This is the int8 kernel behind QuantLinear (and QuantConv2d via im2col).
void Int8GemmTransB(const int8_t* a, float a_scale, const QuantizedWeights& w,
                    const float* bias /* nullable */, float* c, int64_t m);

// C[rows_w, n] = Wq[rows_w, k] * Bq[k, n], dequantized. Used by QuantConv2d where
// B is the quantized im2col matrix.
void Int8GemmWeightLhs(const QuantizedWeights& w, const int8_t* b, float b_scale,
                       const float* bias /* nullable */, float* c, int64_t n);

// Tracks the running max |activation| across calibration batches (static mode).
class MinMaxObserver {
 public:
  void Observe(const float* x, int64_t n);
  bool Calibrated() const { return observed_; }
  float Scale() const;

  // Checkpoint support: the observed range IS the calibration, so restoring
  // it bit-for-bit reproduces every post-restore quantized forward.
  float MaxAbs() const { return max_abs_; }
  void Restore(float max_abs, bool observed) {
    max_abs_ = max_abs;
    observed_ = observed;
  }

 private:
  float max_abs_ = 0.0F;
  bool observed_ = false;
};

// Fake-quantization helper: quantize + dequantize a tensor in place (used by tests to
// bound int8 round-trip error and by the fp16 path via conversion).
void FakeQuantizeInt8(Tensor& t);

}  // namespace egeria

#endif  // EGERIA_SRC_QUANT_QUANTIZE_H_
