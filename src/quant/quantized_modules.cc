#include "src/quant/quantized_modules.h"

#include "src/tensor/compute_pool.h"
#include "src/tensor/gemm.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/logging.h"

namespace egeria {

QuantLinear::QuantLinear(const Linear& src, QuantMode mode)
    : Module(src.name() + ".int8"),
      in_features_(src.in_features()),
      out_features_(src.out_features()),
      weights_(QuantizeWeightsPerChannel(src.weight().value)),
      mode_(mode) {
  if (src.has_bias()) {
    bias_ = src.bias().value.Clone();
  }
  training_ = false;
}

float QuantLinear::InputScale(const float* x, int64_t n) {
  if (mode_ == QuantMode::kDynamic) {
    return ActivationScale(x, n);
  }
  if (calibration_left_ > 0) {
    observer_.Observe(x, n);
    --calibration_left_;
  }
  return observer_.Scale();
}

Tensor QuantLinear::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Size(-1) == in_features_);
  const int64_t rows = input.NumEl() / in_features_;
  std::vector<int8_t> xq(static_cast<size_t>(rows * in_features_));
  const float scale = InputScale(input.Data(), input.NumEl());
  QuantizeActivations(input.Data(), xq.data(), input.NumEl(), scale);
  std::vector<int64_t> out_shape = input.Shape();
  out_shape.back() = out_features_;
  Tensor out = Tensor::Uninitialized(out_shape);
  Int8GemmTransB(xq.data(), scale, weights_, bias_.Defined() ? bias_.Data() : nullptr,
                 out.Data(), rows);
  return out;
}

Tensor QuantLinear::Backward(const Tensor&) {
  EGERIA_CHECK_MSG(false, name_ + ": quantized modules are inference-only");
  return Tensor();
}

std::unique_ptr<Module> QuantLinear::CloneForInference(const InferenceFactory&) const {
  EGERIA_CHECK_MSG(false, name_ + ": cannot re-clone a quantized module");
  return nullptr;
}

QuantConv2d::QuantConv2d(const Conv2d& src, QuantMode mode)
    : Module(src.name() + ".int8"),
      in_channels_(src.in_channels()),
      out_channels_(src.out_channels()),
      geom_(src.geom()),
      weights_(QuantizeWeightsPerChannel(src.weight().value)),
      mode_(mode) {
  if (src.has_bias()) {
    bias_ = src.bias().value.Clone();
  }
  training_ = false;
}

float QuantConv2d::InputScale(const float* x, int64_t n) {
  if (mode_ == QuantMode::kDynamic) {
    return ActivationScale(x, n);
  }
  if (calibration_left_ > 0) {
    observer_.Observe(x, n);
    --calibration_left_;
  }
  return observer_.Scale();
}

Tensor QuantConv2d::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 4 && input.Size(1) == in_channels_);
  const int64_t b = input.Size(0);
  const int64_t h = input.Size(2);
  const int64_t w = input.Size(3);
  const int64_t oh = geom_.OutH(h);
  const int64_t ow = geom_.OutW(w);
  const int64_t ohow = oh * ow;
  const int64_t chw = in_channels_ * h * w;
  const int64_t ckk = in_channels_ * geom_.kernel_h * geom_.kernel_w;
  // Quantize the *input image* once, then gather bytes: quantization commutes
  // with im2col's rearrangement (zero padding maps to code 0 exactly), and the
  // gather moves 1-byte elements instead of expanding kh*kw-fold in float.
  const float scale = InputScale(input.Data(), input.NumEl());
  std::vector<int8_t> xq(static_cast<size_t>(input.NumEl()));
  QuantizeActivations(input.Data(), xq.data(), input.NumEl(), scale);
  // Every output element is written by the int8 kernel — skip the zero-fill.
  Tensor out = Tensor::Uninitialized({b, out_channels_, oh, ow});
  const float* biasp = bias_.Defined() ? bias_.Data() : nullptr;
  float* outp = out.Data();
  // Batch items are independent; each chunk gathers into its own scratch. With
  // fewer items than threads, run items serially so the int8 kernel's internal
  // row parallelism can use the whole pool instead.
  const auto run_items = [&](int64_t lo, int64_t hi) {
    std::vector<int8_t> colq(static_cast<size_t>(ckk * ohow));
    for (int64_t bi = lo; bi < hi; ++bi) {
      Im2ColItemI8(xq.data() + bi * chw, in_channels_, h, w, geom_, colq.data());
      Int8GemmWeightLhs(weights_, colq.data(), scale, biasp,
                        outp + bi * out_channels_ * ohow, ohow);
    }
  };
  if (b >= ComputePoolThreads()) {
    ParallelFor(b, 1, run_items);
  } else {
    run_items(0, b);
  }
  return out;
}

Tensor QuantConv2d::Backward(const Tensor&) {
  EGERIA_CHECK_MSG(false, name_ + ": quantized modules are inference-only");
  return Tensor();
}

std::unique_ptr<Module> QuantConv2d::CloneForInference(const InferenceFactory&) const {
  EGERIA_CHECK_MSG(false, name_ + ": cannot re-clone a quantized module");
  return nullptr;
}

Fp16Linear::Fp16Linear(const Linear& src)
    : Module(src.name() + ".fp16"),
      in_features_(src.in_features()),
      out_features_(src.out_features()) {
  const float* w = src.weight().value.Data();
  weights_.resize(static_cast<size_t>(in_features_ * out_features_));
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = static_cast<_Float16>(w[i]);
  }
  if (src.has_bias()) {
    bias_ = src.bias().value.Clone();
  }
  training_ = false;
}

Tensor Fp16Linear::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Size(-1) == in_features_);
  const int64_t rows = input.NumEl() / in_features_;
  std::vector<int64_t> out_shape = input.Shape();
  out_shape.back() = out_features_;
  Tensor out = Tensor::Uninitialized(out_shape);
  const float* biasp = bias_.Defined() ? bias_.Data() : nullptr;
  float* y = out.Data();
  // Mixed-dtype packed GEMM: fp32 activations x fp16-stored weights, fp32
  // accumulation (the weight matrix — the bandwidth-dominant operand at
  // inference batch sizes — streams at half width).
  Gemm(input.Data(), weights_.data(), y, rows, in_features_, out_features_,
       /*trans_a=*/false, /*trans_b=*/true, /*accumulate=*/false);
  if (biasp != nullptr) {
    for (int64_t i = 0; i < rows; ++i) {
      float* yrow = y + i * out_features_;
#pragma omp simd
      for (int64_t j = 0; j < out_features_; ++j) {
        yrow[j] += biasp[j];
      }
    }
  }
  return out;
}

Tensor Fp16Linear::Backward(const Tensor&) {
  EGERIA_CHECK_MSG(false, name_ + ": fp16 modules are inference-only");
  return Tensor();
}

std::unique_ptr<Module> Fp16Linear::CloneForInference(const InferenceFactory&) const {
  EGERIA_CHECK_MSG(false, name_ + ": cannot re-clone an fp16 module");
  return nullptr;
}

Fp16Conv2d::Fp16Conv2d(const Conv2d& src)
    : Module(src.name() + ".fp16"),
      in_channels_(src.in_channels()),
      out_channels_(src.out_channels()),
      geom_(src.geom()) {
  const Tensor& w = src.weight().value;
  weights_.resize(static_cast<size_t>(w.NumEl()));
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = static_cast<_Float16>(w.Data()[i]);
  }
  if (src.has_bias()) {
    bias_ = src.bias().value.Clone();
  }
  training_ = false;
}

Tensor Fp16Conv2d::Forward(const Tensor& input) {
  EGERIA_CHECK(input.Dim() == 4 && input.Size(1) == in_channels_);
  const int64_t b = input.Size(0);
  const int64_t oh = geom_.OutH(input.Size(2));
  const int64_t ow = geom_.OutW(input.Size(3));
  const int64_t ohow = oh * ow;
  Tensor cols = Im2Col(input, geom_);
  const int64_t ckk = cols.Size(1);
  Tensor out = Tensor::Uninitialized({b, out_channels_, oh, ow});
  const float* colsp = cols.Data();
  const float* biasp = bias_.Defined() ? bias_.Data() : nullptr;
  const _Float16* wp = weights_.data();
  float* outp = out.Data();
  // Mixed-dtype packed GEMM per batch item: fp16-stored weights x fp32 im2col
  // columns, fp32 accumulation. With fewer items than threads, run items
  // serially so the GEMM's internal parallelism can use the whole pool.
  const auto run_items = [&](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      float* obase = outp + bi * out_channels_ * ohow;
      Gemm(wp, colsp + bi * ckk * ohow, obase, out_channels_, ckk, ohow,
           /*trans_a=*/false, /*trans_b=*/false, /*accumulate=*/false);
      if (biasp != nullptr) {
        for (int64_t oc = 0; oc < out_channels_; ++oc) {
          float* orow = obase + oc * ohow;
          const float add = biasp[oc];
#pragma omp simd
          for (int64_t j = 0; j < ohow; ++j) {
            orow[j] += add;
          }
        }
      }
    }
  };
  if (b >= ComputePoolThreads()) {
    ParallelFor(b, 1, run_items);
  } else {
    run_items(0, b);
  }
  return out;
}

Tensor Fp16Conv2d::Backward(const Tensor&) {
  EGERIA_CHECK_MSG(false, name_ + ": fp16 modules are inference-only");
  return Tensor();
}

std::unique_ptr<Module> Fp16Conv2d::CloneForInference(const InferenceFactory&) const {
  EGERIA_CHECK_MSG(false, name_ + ": cannot re-clone an fp16 module");
  return nullptr;
}

std::unique_ptr<Module> Int8Factory::MakeLinear(const Linear& src) const {
  return std::make_unique<QuantLinear>(src, mode_);
}

std::unique_ptr<Module> Int8Factory::MakeConv2d(const Conv2d& src) const {
  return std::make_unique<QuantConv2d>(src, mode_);
}

std::unique_ptr<Module> Fp16Factory::MakeLinear(const Linear& src) const {
  return std::make_unique<Fp16Linear>(src);
}

std::unique_ptr<Module> Fp16Factory::MakeConv2d(const Conv2d& src) const {
  return std::make_unique<Fp16Conv2d>(src);
}

std::unique_ptr<InferenceFactory> MakeInferenceFactory(Precision precision, QuantMode mode) {
  switch (precision) {
    case Precision::kInt8:
      return std::make_unique<Int8Factory>(mode);
    case Precision::kFloat16:
      return std::make_unique<Fp16Factory>();
    case Precision::kFloat32:
      return std::make_unique<InferenceFactory>();
  }
  return std::make_unique<InferenceFactory>();
}

}  // namespace egeria
