#include "src/quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/compute_pool.h"
#include "src/tensor/gemm.h"
#include "src/util/logging.h"

#include "src/util/intrin_diag.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace egeria {

QuantizedWeights QuantizeWeightsPerChannel(const Tensor& w) {
  EGERIA_CHECK(w.Dim() == 2);
  QuantizedWeights q;
  q.rows = w.Size(0);
  q.cols = w.Size(1);
  q.data.resize(static_cast<size_t>(q.rows * q.cols));
  q.scales.resize(static_cast<size_t>(q.rows));
  const float* src = w.Data();
  for (int64_t r = 0; r < q.rows; ++r) {
    float max_abs = 0.0F;
    for (int64_t c = 0; c < q.cols; ++c) {
      max_abs = std::max(max_abs, std::abs(src[r * q.cols + c]));
    }
    const float scale = (max_abs > 0.0F) ? max_abs / 127.0F : 1.0F;
    q.scales[static_cast<size_t>(r)] = scale;
    const float inv = 1.0F / scale;
    for (int64_t c = 0; c < q.cols; ++c) {
      const float v = std::round(src[r * q.cols + c] * inv);
      q.data[static_cast<size_t>(r * q.cols + c)] =
          static_cast<int8_t>(std::clamp(v, -127.0F, 127.0F));
    }
  }
  return q;
}

float ActivationScale(const float* x, int64_t n) {
  float max_abs = 0.0F;
#pragma omp simd reduction(max : max_abs)
  for (int64_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::abs(x[i]));
  }
  return (max_abs > 0.0F) ? max_abs / 127.0F : 1.0F;
}

// Rounds half away from zero via clamp, sign-copied +-0.5, truncate. Note this
// can differ from std::round (still used by QuantizeWeightsPerChannel) by one
// code when |x|*inv sits within 1 ulp of a midpoint: the +-0.5 addition itself
// rounds, so e.g. 0.5f - 2^-25 lands on 1.0f and truncates to 1 where
// std::round gives 0. Vector body and scalar tail implement the identical
// formulation, so results never depend on the element's index.
EGERIA_BEGIN_INTRIN_NOWARN
void QuantizeActivations(const float* x, int8_t* out, int64_t n, float scale) {
  const float inv = 1.0F / scale;
  int64_t i = 0;
#if defined(__AVX512F__)
  // Clamp, round (see the function comment), narrow to int8. The narrowing
  // store is what gcc's auto-vectorizer refuses (measured 0.12 Gelem/s scalar
  // vs ~5 with vpmovsdb); this pass feeds the dot4 GEMM of the quantized conv
  // path, so it must keep pace with it.
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512 lo = _mm512_set1_ps(-127.0F);
  const __m512 hi = _mm512_set1_ps(127.0F);
  const __m512 half = _mm512_set1_ps(0.5F);
  const __m512 signmask = _mm512_set1_ps(-0.0F);
  for (; i + 16 <= n; i += 16) {
    __m512 v = _mm512_mul_ps(_mm512_loadu_ps(x + i), vinv);
    // vmin/vmaxps return the *second* operand on NaN; keeping the bound second
    // sends NaN to +127, exactly like the scalar std::min/std::max tail below.
    v = _mm512_max_ps(_mm512_min_ps(v, hi), lo);
    v = _mm512_add_ps(v, _mm512_or_ps(half, _mm512_and_ps(v, signmask)));
    const __m512i q = _mm512_cvttps_epi32(v);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm512_cvtsepi32_epi8(q));
  }
#endif
  for (; i < n; ++i) {
    float v = x[i] * inv;
    v = std::max(-127.0F, std::min(127.0F, v));
    v += v >= 0.0F ? 0.5F : -0.5F;
    out[i] = static_cast<int8_t>(static_cast<int32_t>(v));
  }
}
EGERIA_END_INTRIN_NOWARN

namespace {

// int32 accumulator scratch shared by the requantizing kernels below; thread-
// local so nested callers (e.g. the conv path's batch-parallel loop) never
// alias. The kernels tile their C-row range so the scratch stays near
// kAccScratchInts (4 MiB) per thread — exceeded only when a single output row
// is wider than the cap (chunking cannot go below one row).
constexpr int64_t kAccScratchInts = int64_t{1} << 20;

std::vector<int32_t>& AccScratch() {
  thread_local std::vector<int32_t> buf;
  return buf;
}

int64_t AccRowChunk(int64_t rows, int64_t n) {
  return std::min(rows, std::max<int64_t>(1, kAccScratchInts / std::max<int64_t>(n, 1)));
}

}  // namespace

void Int8GemmTransB(const int8_t* a, float a_scale, const QuantizedWeights& w,
                    const float* bias, float* c, int64_t m) {
  const int64_t k = w.cols;
  const int64_t n = w.rows;
  // Exact int32 product through the packed dot4 GEMM, then a per-column
  // (per-output-channel) requantization pass, tiled over C row blocks so the
  // scratch stays bounded (one tile in practice; multi-tile only for outputs
  // past ~1M elements, where the repeated B pack is well amortized).
  const int64_t chunk = AccRowChunk(m, n);
  std::vector<int32_t>& acc = AccScratch();
  acc.resize(static_cast<size_t>(chunk * n));
  const float* wscales = w.scales.data();
  for (int64_t m0 = 0; m0 < m; m0 += chunk) {
    const int64_t rows = std::min(chunk, m - m0);
    Gemm(a + m0 * k, w.data.data(), acc.data(), rows, k, n, /*trans_a=*/false,
         /*trans_b=*/true, /*accumulate=*/false);
    const int32_t* accp = acc.data();
    ParallelFor(rows, 8192 / std::max<int64_t>(n, 1) + 1,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t i = lo; i < hi; ++i) {
                    const int32_t* arow = accp + i * n;
                    float* crow = c + (m0 + i) * n;
                    if (bias != nullptr) {
#pragma omp simd
                      for (int64_t j = 0; j < n; ++j) {
                        crow[j] =
                            static_cast<float>(arow[j]) * a_scale * wscales[j] +
                            bias[j];
                      }
                    } else {
#pragma omp simd
                      for (int64_t j = 0; j < n; ++j) {
                        crow[j] = static_cast<float>(arow[j]) * a_scale * wscales[j];
                      }
                    }
                  }
                });
  }
}

void Int8GemmWeightLhs(const QuantizedWeights& w, const int8_t* b, float b_scale,
                       const float* bias, float* c, int64_t n) {
  const int64_t k = w.cols;
  // Exact int32 product through the packed dot4 GEMM, then a per-row
  // (per-output-channel) requantization pass; tiled like Int8GemmTransB.
  const int64_t chunk = AccRowChunk(w.rows, n);
  std::vector<int32_t>& acc = AccScratch();
  acc.resize(static_cast<size_t>(chunk * n));
  const float* wscales = w.scales.data();
  for (int64_t r0 = 0; r0 < w.rows; r0 += chunk) {
    const int64_t rows = std::min(chunk, w.rows - r0);
    Gemm(w.data.data() + r0 * k, b, acc.data(), rows, k, n, /*trans_a=*/false,
         /*trans_b=*/false, /*accumulate=*/false);
    const int32_t* accp = acc.data();
    ParallelFor(rows, 8192 / std::max<int64_t>(n, 1) + 1,
                [&](int64_t lo, int64_t hi) {
                  for (int64_t r = lo; r < hi; ++r) {
                    const float deq = b_scale * wscales[r0 + r];
                    const float add = (bias != nullptr) ? bias[r0 + r] : 0.0F;
                    const int32_t* arow = accp + r * n;
                    float* crow = c + (r0 + r) * n;
#pragma omp simd
                    for (int64_t j = 0; j < n; ++j) {
                      crow[j] = static_cast<float>(arow[j]) * deq + add;
                    }
                  }
                });
  }
}

void MinMaxObserver::Observe(const float* x, int64_t n) {
  float max_abs = max_abs_;
#pragma omp simd reduction(max : max_abs)
  for (int64_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::abs(x[i]));
  }
  max_abs_ = max_abs;
  observed_ = true;
}

float MinMaxObserver::Scale() const {
  EGERIA_CHECK_MSG(observed_, "observer not calibrated");
  return (max_abs_ > 0.0F) ? max_abs_ / 127.0F : 1.0F;
}

void FakeQuantizeInt8(Tensor& t) {
  t.MakeUnique();
  const float scale = ActivationScale(t.Data(), t.NumEl());
  float* p = t.Data();
  for (int64_t i = 0; i < t.NumEl(); ++i) {
    const float q = std::clamp(std::round(p[i] / scale), -127.0F, 127.0F);
    p[i] = q * scale;
  }
}

}  // namespace egeria
