#include "src/quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/compute_pool.h"
#include "src/util/logging.h"

namespace egeria {

QuantizedWeights QuantizeWeightsPerChannel(const Tensor& w) {
  EGERIA_CHECK(w.Dim() == 2);
  QuantizedWeights q;
  q.rows = w.Size(0);
  q.cols = w.Size(1);
  q.data.resize(static_cast<size_t>(q.rows * q.cols));
  q.scales.resize(static_cast<size_t>(q.rows));
  const float* src = w.Data();
  for (int64_t r = 0; r < q.rows; ++r) {
    float max_abs = 0.0F;
    for (int64_t c = 0; c < q.cols; ++c) {
      max_abs = std::max(max_abs, std::abs(src[r * q.cols + c]));
    }
    const float scale = (max_abs > 0.0F) ? max_abs / 127.0F : 1.0F;
    q.scales[static_cast<size_t>(r)] = scale;
    const float inv = 1.0F / scale;
    for (int64_t c = 0; c < q.cols; ++c) {
      const float v = std::round(src[r * q.cols + c] * inv);
      q.data[static_cast<size_t>(r * q.cols + c)] =
          static_cast<int8_t>(std::clamp(v, -127.0F, 127.0F));
    }
  }
  return q;
}

float ActivationScale(const float* x, int64_t n) {
  float max_abs = 0.0F;
  for (int64_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::abs(x[i]));
  }
  return (max_abs > 0.0F) ? max_abs / 127.0F : 1.0F;
}

void QuantizeActivations(const float* x, int8_t* out, int64_t n, float scale) {
  const float inv = 1.0F / scale;
  for (int64_t i = 0; i < n; ++i) {
    const float v = std::round(x[i] * inv);
    out[i] = static_cast<int8_t>(std::clamp(v, -127.0F, 127.0F));
  }
}

void Int8GemmTransB(const int8_t* a, float a_scale, const QuantizedWeights& w,
                    const float* bias, float* c, int64_t m) {
  const int64_t k = w.cols;
  const int64_t n = w.rows;
  const int8_t* wdata = w.data.data();
  const float* wscales = w.scales.data();
  // Rows of A are independent; both operands stream contiguously over k, so each
  // dot product is a straight simd reduction.
  ParallelFor(m, 8192 / std::max<int64_t>(k * n, 1) + 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int8_t* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const int8_t* wrow = wdata + j * k;
        int32_t acc = 0;
#pragma omp simd reduction(+ : acc)
        for (int64_t p = 0; p < k; ++p) {
          acc += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(wrow[p]);
        }
        float v = static_cast<float>(acc) * a_scale * wscales[j];
        if (bias != nullptr) {
          v += bias[j];
        }
        crow[j] = v;
      }
    }
  });
}

void Int8GemmWeightLhs(const QuantizedWeights& w, const int8_t* b, float b_scale,
                       const float* bias, float* c, int64_t n) {
  const int64_t k = w.cols;
  const int8_t* wdata = w.data.data();
  const float* wscales = w.scales.data();
  // Output rows are independent; each worker keeps a private int32 accumulator
  // row. The inner loop stays dense — no zero-skip branch, which pessimized the
  // common dense case and blocked vectorization.
  ParallelFor(w.rows, 2, [&](int64_t lo, int64_t hi) {
    std::vector<int32_t> acc(static_cast<size_t>(n));
    for (int64_t r = lo; r < hi; ++r) {
      std::fill(acc.begin(), acc.end(), 0);
      const int8_t* wrow = wdata + r * k;
      int32_t* accp = acc.data();
      for (int64_t p = 0; p < k; ++p) {
        const int32_t wv = wrow[p];
        const int8_t* brow = b + p * n;
#pragma omp simd
        for (int64_t j = 0; j < n; ++j) {
          accp[j] += wv * static_cast<int32_t>(brow[j]);
        }
      }
      const float deq = b_scale * wscales[r];
      const float add = (bias != nullptr) ? bias[r] : 0.0F;
      float* crow = c + r * n;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] = static_cast<float>(accp[j]) * deq + add;
      }
    }
  });
}

void MinMaxObserver::Observe(const float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    max_abs_ = std::max(max_abs_, std::abs(x[i]));
  }
  observed_ = true;
}

float MinMaxObserver::Scale() const {
  EGERIA_CHECK_MSG(observed_, "observer not calibrated");
  return (max_abs_ > 0.0F) ? max_abs_ / 127.0F : 1.0F;
}

void FakeQuantizeInt8(Tensor& t) {
  t.MakeUnique();
  const float scale = ActivationScale(t.Data(), t.NumEl());
  float* p = t.Data();
  for (int64_t i = 0; i < t.NumEl(); ++i) {
    const float q = std::clamp(std::round(p[i] / scale), -127.0F, 127.0F);
    p[i] = q * scale;
  }
}

}  // namespace egeria
