// Bounded single-producer/single-consumer queue.
//
// The paper's controller-worker runtime communicates through three SPSC queues
// (Fig. 6): the input queue (IQ), the training-output queue (TOQ) and the
// reference-output queue (ROQ). The worker must never block on a full queue — a
// plasticity evaluation is simply dropped if the controller is behind (the process
// is periodic and non-time-critical) — so pushes are try-only; the consumer side
// offers a timed blocking pop.
#ifndef EGERIA_SRC_CORE_SPSC_QUEUE_H_
#define EGERIA_SRC_CORE_SPSC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace egeria {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity) : capacity_(capacity) {}

  // Non-blocking; returns false when full (producer drops the item).
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocking pop with timeout; nullopt on timeout.
  std::optional<T> PopFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [this] { return !items_.empty(); })) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_SPSC_QUEUE_H_
