// The Egeria controller (paper S4.1, Figs. 5-6).
//
// The controller owns the reference model's life cycle (generation by quantizing
// training snapshots, periodic refresh), runs reference forward passes, computes
// plasticity (SP loss between the worker's hooked activation and the reference's),
// and drives the freezing policy. In async mode it runs on its own thread — the
// paper's CPU-side, non-blocking evaluation — fed through SPSC queues:
//   IQ+TOQ  -> EvalRequest { batch, A_T at frontier, stage, lr, iter }
//   ROQ     -> computed internally (A_R from the reference forward)
//   DQ      -> FreezeDecision back to the worker
// The worker never blocks: submissions are try-push (a dropped evaluation is just a
// skipped periodic sample), and decisions are drained opportunistically each
// iteration. Synchronous mode runs the same code inline for deterministic tests.
#ifndef EGERIA_SRC_CORE_CONTROLLER_H_
#define EGERIA_SRC_CORE_CONTROLLER_H_

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/config.h"
#include "src/core/freezing_policy.h"
#include "src/core/spsc_queue.h"
#include "src/data/batch.h"
#include "src/models/chain_model.h"

namespace egeria {

struct EvalRequest {
  Batch batch;       // the mini-batch (IQ)
  Tensor train_act;  // A_T hooked at the frontier stage (TOQ)
  int stage = 0;
  float lr = 0.0F;
  int64_t iter = 0;
};

// One plasticity sample, kept for introspection (Fig. 4 / Fig. 12 benches, tests).
struct PlasticityRecord {
  int64_t iter = 0;
  int stage = 0;
  double raw = 0.0;
};

class EgeriaController {
 public:
  EgeriaController(const EgeriaConfig& cfg, int num_stages, bool lr_annealing);
  ~EgeriaController();

  EgeriaController(const EgeriaController&) = delete;
  EgeriaController& operator=(const EgeriaController&) = delete;

  // ---- Worker-side API ----

  // Hands over a float snapshot of the training model; the controller quantizes it
  // into the reference (paper: snapshot moved off-GPU, then int8 PTQ on CPU).
  void SubmitSnapshot(std::unique_ptr<ChainModel> snapshot);

  // True when the controller wants a fresh snapshot (initial generation was done and
  // ref_update_evals evaluations have elapsed since the last refresh).
  bool WantsSnapshot() const { return wants_snapshot_.load(); }

  // Non-blocking; false if the controller is congested (the evaluation is skipped).
  bool SubmitEval(EvalRequest req);

  // Decisions produced since the last drain (freeze + unfreeze).
  std::vector<FreezeDecision> DrainDecisions();

  // LR-based unfreeze check; cheap, called by the worker every iteration.
  std::optional<FreezeDecision> OnLr(float lr, int64_t iter);

  // Synchronous mode only: process all queued snapshots/evals inline.
  void RunPendingSync();

  bool HasReference() const { return has_reference_.load(); }
  int64_t EvalsDone() const { return evals_done_.load(); }
  double EvalSeconds() const;
  std::vector<PlasticityRecord> PlasticityHistory() const;
  int Frontier() const;

  // Generation time of the last reference build (Table 2 / S6.5 overhead).
  double LastQuantizeSeconds() const { return last_quantize_seconds_.load(); }

  // ---- Checkpoint support ----
  // Serializes the full decision state: the freezing policy, refresh
  // bookkeeping, plasticity history, undrained freeze decisions, and — when a
  // reference exists — the float snapshot the current reference was quantized
  // from (quantization is deterministic, so the reference is rebuilt
  // bit-identically on restore).
  //
  // Synchronous controllers (async_controller=false) round-trip bitwise: the
  // save first runs the pending snapshot/eval work inline — exactly the
  // computation the next iteration's RunPendingSync would have done, moved
  // across an iteration boundary where nothing else computes — then persists
  // the resulting decisions (re-enqueueing them, so a save not followed by a
  // crash changes nothing). In async mode queued evaluations are not captured
  // (dropping an eval is legal by design, but bitwise resume is then not
  // guaranteed). Call RestoreState before submitting any work.
  void SaveState(std::ostream& os);
  // `make_snapshot` must produce a model structurally identical to the
  // snapshots the trainer submits (a float CloneForInference of the training
  // model); saved weights are loaded into it before the reference rebuild.
  // Returns false (and logs) on a malformed or mismatched blob.
  bool RestoreState(std::istream& is,
                    const std::function<std::unique_ptr<ChainModel>()>& make_snapshot);

 private:
  void ControllerLoop();
  void BuildReference(std::unique_ptr<ChainModel> snapshot);
  void ProcessEval(EvalRequest& req);

  EgeriaConfig cfg_;
  std::unique_ptr<InferenceFactory> factory_;

  mutable std::mutex policy_mutex_;
  FreezingPolicy policy_;

  // Serializes the controller thread's reference lifecycle (BuildReference
  // reassigns reference_/ref_snapshot_, ProcessEval mutates observer state and
  // the refresh counter) against SaveState walking those structures from the
  // training thread. Uncontended in synchronous mode; in async mode it is
  // what makes a mid-training checkpoint safe (a queued eval may still be
  // dropped — async saves are best-effort, not bitwise).
  mutable std::mutex reference_mutex_;
  std::unique_ptr<ChainModel> reference_;
  // The float snapshot reference_ was quantized from, retained so checkpoints
  // can persist (and deterministically rebuild) the reference.
  std::unique_ptr<ChainModel> ref_snapshot_;
  std::atomic<bool> has_reference_{false};
  std::atomic<bool> wants_snapshot_{true};  // initial generation
  std::atomic<int64_t> evals_done_{0};
  std::atomic<double> last_quantize_seconds_{0.0};
  int64_t evals_since_refresh_ = 0;

  SpscQueue<EvalRequest> eval_queue_;
  SpscQueue<std::unique_ptr<ChainModel>> snapshot_queue_;
  SpscQueue<FreezeDecision> decision_queue_;

  mutable std::mutex history_mutex_;
  std::vector<PlasticityRecord> history_;
  double eval_seconds_ = 0.0;

  std::atomic<bool> stopping_{false};
  std::thread thread_;  // joinable only in async mode
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_CONTROLLER_H_
