// The Egeria training loop (paper Fig. 3).
//
// Life cycle: (1) bootstrapping stage — no freezing; the trainer monitors the
// training-loss change rate and enters the knowledge-guided stage once it falls
// below the configured threshold (the "critical period" guard). (2) knowledge-guided
// stage — the controller holds a quantized reference model; every n iterations the
// worker submits the mini-batch and the frontier activation for asynchronous
// plasticity evaluation; freeze/unfreeze decisions are drained and applied at
// iteration boundaries. Frozen stages are excluded from backward computation,
// parameter updates (and synchronization, in the distributed wrapper), and — when
// the cache is enabled — from forward computation via cached boundary activations.
//
// The same Trainer also hosts the comparison baselines through FreezeHook (static
// freezing, AutoFreeze, Skip-Conv gate, FreezeOut), so every system shares one loop.
#ifndef EGERIA_SRC_CORE_TRAINER_H_
#define EGERIA_SRC_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/core/activation_cache.h"
#include "src/core/config.h"
#include "src/core/controller.h"
#include "src/core/task.h"
#include "src/data/dataloader.h"
#include "src/models/chain_model.h"
#include "src/optim/lr_scheduler.h"
#include "src/optim/optimizer.h"

namespace egeria {

struct TrainConfig {
  int epochs = 20;
  int64_t batch_size = 16;
  TaskSpec task;

  enum class Optim { kSgd, kAdam };
  Optim optimizer = Optim::kSgd;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  std::shared_ptr<LrScheduler> lr_schedule;  // required

  // Higher-better target (see TaskMetric::score). TTA is the cumulative training
  // time at the first epoch whose validation score reaches it.
  double target_score = std::numeric_limits<double>::infinity();
  int64_t val_batches = 8;
  int64_t train_samples_limit = -1;  // subsample the train set (quick benches)
  uint64_t seed = 42;
  bool verbose = false;

  // Free momentum/Adam state for stages the moment they freeze (the optimizer-
  // state half of freezing's memory saving). Parameters re-activated by a later
  // unfreeze restart from zero state, matching the ZeRO-1 sharded path.
  bool release_frozen_optimizer_state = true;

  bool enable_egeria = false;
  EgeriaConfig egeria;

  // Fault tolerance: when checkpoint.enabled(), Run() snapshots the full
  // training state (model + BN stats, optimizer state, freeze frontier,
  // controller/policy state, loop cursors) every interval_iters iterations and
  // — if the directory already holds a complete checkpoint — resumes from the
  // latest one instead of starting over. Bitwise-resume contract: with a
  // deterministic configuration (synchronous controller), a run checkpointed
  // at iteration k and resumed produces final weights bit-identical to the
  // uninterrupted run. Timing fields of TrainResult (TTA, per-epoch seconds)
  // cover only the resumed segment.
  CheckpointOptions checkpoint;

  // Stop cleanly after this many iterations (a final checkpoint is written if
  // checkpointing is enabled); <0 runs to completion. Crash-drill hook for
  // resume tests and benches.
  int64_t stop_after_iters = -1;
};

struct FreezeEvent {
  int64_t iter = 0;
  int epoch = 0;
  bool unfreeze = false;
  int frontier_after = 0;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  TaskMetric val;
  double train_seconds = 0.0;      // this epoch, excluding validation
  double cum_train_seconds = 0.0;  // since start, excluding validation
  int frontier = 0;
  float lr = 0.0F;
  // Frozen-prefix forward accounting for this epoch: seconds actually spent
  // computing the frozen prefix (miss/populate iterations only when the
  // feature store serves) and the number of iterations served from the store.
  double frozen_fp_seconds = 0.0;
  int64_t fp_skips = 0;
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  std::vector<FreezeEvent> freeze_events;
  std::vector<std::pair<int64_t, int>> frontier_timeline;  // (iter, frontier)

  double total_train_seconds = 0.0;
  double tta_seconds = -1.0;  // <0: target never reached
  bool reached_target = false;
  TaskMetric final_metric;
  TaskMetric best_metric;

  // Breakdown (Fig. 9) and overhead accounting (S6.5).
  double fp_seconds = 0.0;
  double bp_seconds = 0.0;
  double opt_seconds = 0.0;
  double cache_seconds = 0.0;
  double data_seconds = 0.0;
  int64_t iterations = 0;
  int64_t fp_skip_count = 0;
  // Forward seconds spent inside the frozen prefix (only measurable while the
  // frontier is within MaxForwardSkipStage; zero before any freeze). With the
  // feature store on, this collapses to the populate pass — the fig09 smoke's
  // frozen_forward_saved_s metric is the off/on difference.
  double frozen_fp_seconds = 0.0;
  // Iterations where the store was enabled but declined to serve (epoch-varying
  // augmentation signature, or a stochastic module in the prefix).
  int64_t cache_declined_iters = 0;
  int64_t evals_submitted = 0;
  int64_t bootstrap_end_iter = -1;
  CacheStats cache;
  std::vector<PlasticityRecord> plasticity;
  int final_frontier = 0;
  double last_ref_quantize_seconds = 0.0;

  // Checkpoint/restore bookkeeping: iteration the run resumed from (-1 = fresh
  // start) and whether stop_after_iters ended the run before cfg.epochs.
  int64_t resumed_from_iter = -1;
  bool stopped_early = false;
};

class Trainer;

// Baseline freezing policies plug in here; called once per iteration after the
// backward pass (gradients of active stages are available).
class FreezeHook {
 public:
  virtual ~FreezeHook() = default;
  virtual void OnIteration(Trainer& trainer, const Batch& batch, int64_t iter) = 0;
  virtual std::string Name() const = 0;
};

// Notified whenever the freeze frontier moves (FreezeUpTo / UnfreezeAll).
// This is the single-process form of the distributed freeze->reshard protocol:
// the ZeRO-1 shard map, activation cache, and optimizer state all key off the
// frontier, so anything that partitions work by active parameters subscribes
// here instead of polling.
using FrontierObserver =
    std::function<void(int old_frontier, int new_frontier, int64_t iter)>;

class Trainer {
 public:
  Trainer(ChainModel& model, const Dataset& train_data, const Dataset& val_data,
          TrainConfig cfg);
  ~Trainer();

  void SetFreezeHook(FreezeHook* hook) { hook_ = hook; }
  void SetFrontierObserver(FrontierObserver observer) {
    frontier_observer_ = std::move(observer);
  }

  TrainResult Run();

  // ---- API for freezing policies / hooks ----
  void FreezeUpTo(int stage, int64_t iter);
  void UnfreezeAll(int64_t iter);
  int frontier() const { return frontier_; }
  ChainModel& model() { return model_; }
  const TrainConfig& config() const { return cfg_; }
  int64_t IterationsPerEpoch() const;
  int64_t TotalIterations() const;
  // Output of the frontmost active stage in the current iteration's forward pass.
  Tensor FrontierActivation() const;
  // Resident optimizer-state bytes (shrinks when freezing releases the frozen
  // prefix's state; see TrainConfig::release_frozen_optimizer_state).
  int64_t OptimizerStateBytes() const { return optimizer_->StateBytes(); }

  // Runs validation (val_batches batches) in inference mode and restores training
  // mode. Also used standalone by benches.
  TaskMetric Validate();

 private:
  void ApplyDecision(const FreezeDecision& d);
  void MaybeSubmitEval(const Batch& batch, float lr, int64_t iter);
  void UpdateBootstrap(double loss, int64_t iter);
  std::unique_ptr<Optimizer> MakeOptimizer() const;
  // Writes a complete checkpoint for `iter` completed iterations (manifest
  // committed last) and applies retention. Logged best-effort: a failed save
  // never aborts training.
  void SaveTrainingCheckpoint(int64_t iter);
  // Restores the latest complete checkpoint; returns the iteration to resume
  // after, or -1 when there is nothing (or nothing usable) to resume from.
  int64_t TryResume();
  // FNV hash over the frozen prefix's parameter values (stages [0, frontier_)).
  // Recomputed whenever the frontier moves or weights are restored; together
  // with the augmentation signature it forms the feature store's generation
  // token, so stale boundary activations can never be served.
  uint64_t FrozenPrefixHash();
  // Generation token for ActivationCache::SetKey: mix of the frozen-prefix
  // parameter hash and the epoch-stable augmentation signature. Never 0 (0 is
  // the cache's legacy unkeyed mode).
  uint64_t CacheGeneration() const;

  ChainModel& model_;
  const Dataset& train_data_;
  const Dataset& val_data_;
  TrainConfig cfg_;

  DataLoader loader_;
  DataLoader val_loader_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<EgeriaController> controller_;
  std::unique_ptr<ActivationCache> cache_;
  FreezeHook* hook_ = nullptr;
  FrontierObserver frontier_observer_;

  int frontier_ = 0;
  // Feature-store keying state: hash of the frozen prefix's parameters, the
  // current epoch's augmentation signature, and whether the dataset declared
  // this epoch's stream cacheable (signature stable across epochs).
  uint64_t frozen_prefix_hash_ = 0;
  uint64_t aug_signature_ = 0;
  bool store_cacheable_ = true;
  // Precision the frozen prefix's forward ACTUALLY runs at. Differs from
  // cfg_.egeria.frozen_prefix_precision when the model rejects forward
  // substitution (e.g. the encoder-decoder Transformer) — the cache key must
  // reflect the bits that were really computed.
  Precision prefix_precision_ = Precision::kFloat32;
  bool knowledge_stage_ = false;
  double bootstrap_prev_avg_ = -1.0;
  double bootstrap_window_sum_ = 0.0;
  int64_t bootstrap_window_count_ = 0;

  TrainResult result_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_TRAINER_H_
