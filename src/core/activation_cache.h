// Persistent frozen-feature store with prefetching (paper S4.3, Fig. 7, and
// "Rethinking the Potential of Layer Freezing": frozen layers do no forward
// compute at all once their boundary outputs are cached per sample).
//
// When the frozen prefix covers stages [0, l), the boundary activation of stage l-1
// is a pure function of the (deterministically augmented) input sample, so it is
// stored to disk keyed by sample id, and upcoming batches — known in advance from
// the data loader — are prefetched into the in-memory table. The in-memory table
// keeps only the most recent few mini-batches ("the cache only stores the recent
// five mini-batches for minimal memory usage").
//
// The store tracks exactly one composite key at a time:
//
//   (spill format version, boundary stage, prefix precision, generation)
//
// The first three are encoded in every spill filename
// (v<fmt>_s<stage>_p<prec>_<sample id>.egt); `generation` is a caller-computed
// validity token (the Trainer mixes the frozen-prefix parameter hash with the
// data layer's augmentation signature) recorded in a store manifest. SetKey with
// a changed component invalidates; SetKey on a fresh instance whose directory
// already holds a manifest matching the full key ADOPTS the surviving spill
// files instead of sweeping them — this is what lets the store survive a crash
// and serve again after checkpoint resume. generation == 0 means "unkeyed"
// (legacy SetStage semantics): never adopt, always sweep on key change.
//
// Disk capacity: stores beyond max_disk_bytes evict the oldest entries of the
// current key (FIFO). An evicted sample is forgotten entirely (memory + disk)
// and simply misses again later. Corrupt spill files — partial writes from a
// crash, bit rot — degrade to misses via the checksummed reader, never to
// garbage activations.
#ifndef EGERIA_SRC_CORE_ACTIVATION_CACHE_H_
#define EGERIA_SRC_CORE_ACTIVATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/tensor.h"
#include "src/util/thread_pool.h"

namespace egeria {

struct CacheStats {
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
  int64_t misses = 0;
  int64_t stores = 0;
  int64_t bytes_written = 0;
  int64_t bytes_read = 0;
  int64_t prefetch_loads = 0;
  int64_t evictions = 0;  // disk entries dropped to stay under max_disk_bytes
  int64_t adopted = 0;    // spill files adopted from a previous incarnation
};

class ActivationCache {
 public:
  // Filename/manifest schema version. Bump on any incompatible change to the
  // spill layout; old files then never match the expected prefix and are swept.
  static constexpr uint32_t kSpillFormatVersion = 1;

  // `dir`: on-disk location (created if absent). `memory_entries`: max per-sample
  // slices kept in RAM. `max_disk_bytes`: storage budget (paper: "users can set
  // the storage limit"). `persistent`: keep the directory on destruction so a
  // later incarnation (crash restart, checkpoint resume) can adopt it.
  ActivationCache(std::string dir, int64_t memory_entries,
                  int64_t max_disk_bytes = int64_t{4} << 30, bool persistent = false);
  ~ActivationCache();

  // Declares the composite key being cached. A changed key invalidates
  // everything — except that a nonzero `generation` matching the directory's
  // manifest adopts the surviving spill files (crash/resume continuity).
  // Calling with the current key is a cheap no-op (safe per iteration).
  void SetKey(int stage, Precision precision, uint64_t generation);

  // Legacy single-axis key: SetKey(stage, kFloat32, 0) — fp32, unkeyed, never
  // adopts. Kept for benches and the PR 5 hygiene pins.
  void SetStage(int stage) { SetKey(stage, Precision::kFloat32, 0); }
  int stage() const;
  uint64_t generation() const;

  // Drops all cached state under the current key (prefix weights changed).
  void Clear();

  // True if every id is available (memory or disk).
  bool HasAll(const std::vector<int64_t>& ids) const;

  // Assembles the batch activation [b, ...] from per-sample slices; undefined tensor
  // if any slice is missing.
  Tensor FetchBatch(const std::vector<int64_t>& ids);

  // Splits [b, ...] into per-sample slices, stores to memory + disk (evicting
  // oldest entries past the disk budget).
  void StoreBatch(const std::vector<int64_t>& ids, const Tensor& activations);

  // Schedules background loads of ids from disk into memory.
  void PrefetchAsync(const std::vector<int64_t>& ids);

  CacheStats Stats() const;

 private:
  std::string PathForLocked(int64_t id) const;
  void InsertMemoryLocked(int64_t id, Tensor slice);
  // Drops oldest disk entries until `incoming_bytes` fits; false if it cannot.
  bool EvictForLocked(int64_t incoming_bytes);
  void SweepDirectory();
  // Registers every manifest-matching spill file already in the directory.
  void AdoptDirectory();
  bool ManifestMatches() const;
  void WriteManifest() const;

  std::string dir_;
  int64_t memory_entries_;
  int64_t max_disk_bytes_;
  bool persistent_;
  int stage_ = -1;
  Precision precision_ = Precision::kFloat32;
  uint64_t generation_ = 0;
  bool configured_ = false;

  mutable std::mutex mutex_;
  std::unordered_map<int64_t, Tensor> memory_;
  std::deque<int64_t> insertion_order_;
  std::unordered_map<int64_t, int64_t> on_disk_;  // id -> spill bytes
  std::deque<int64_t> disk_order_;                // FIFO eviction order
  int64_t disk_bytes_ = 0;
  CacheStats stats_;
  // Bumped on every key change / Clear; in-flight prefetches and disk fetches
  // compare against their snapshot so a stale load never lands under a new key.
  std::atomic<uint64_t> key_epoch_{0};
  std::unique_ptr<ThreadPool> prefetcher_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_ACTIVATION_CACHE_H_
