// Disk-backed activation cache with prefetching (paper S4.3, Fig. 7).
//
// When the frozen prefix covers stages [0, l), the boundary activation of stage l-1
// is a pure function of the (deterministically augmented) input sample, so it is
// stored to disk keyed by sample id, and upcoming batches — known in advance from
// the data loader — are prefetched into the in-memory table. The in-memory table
// keeps only the most recent few mini-batches ("the cache only stores the recent
// five mini-batches for minimal memory usage").
//
// The cache tracks exactly one boundary stage at a time: advancing the frontier or
// unfreezing changes what must be cached, so SetStage / Clear invalidate.
#ifndef EGERIA_SRC_CORE_ACTIVATION_CACHE_H_
#define EGERIA_SRC_CORE_ACTIVATION_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/thread_pool.h"

namespace egeria {

struct CacheStats {
  int64_t memory_hits = 0;
  int64_t disk_hits = 0;
  int64_t misses = 0;
  int64_t stores = 0;
  int64_t bytes_written = 0;
  int64_t prefetch_loads = 0;
};

class ActivationCache {
 public:
  // `dir`: on-disk location (created if absent). `memory_entries`: max per-sample
  // slices kept in RAM. `max_disk_bytes`: storage budget; stores are dropped beyond
  // it (paper: "users can set the storage limit").
  ActivationCache(std::string dir, int64_t memory_entries,
                  int64_t max_disk_bytes = int64_t{4} << 30);
  ~ActivationCache();

  // Declares which stage boundary is being cached; changing it clears everything.
  void SetStage(int stage);
  int stage() const { return stage_; }

  // Drops all cached state (frozen prefix changed / unfreeze).
  void Clear();

  // True if every id is available (memory or disk).
  bool HasAll(const std::vector<int64_t>& ids) const;

  // Assembles the batch activation [b, ...] from per-sample slices; undefined tensor
  // if any slice is missing.
  Tensor FetchBatch(const std::vector<int64_t>& ids);

  // Splits [b, ...] into per-sample slices, stores to memory + disk.
  void StoreBatch(const std::vector<int64_t>& ids, const Tensor& activations);

  // Schedules background loads of ids from disk into memory.
  void PrefetchAsync(const std::vector<int64_t>& ids);

  CacheStats Stats() const;

 private:
  std::string PathFor(int64_t id) const;
  void InsertMemoryLocked(int64_t id, Tensor slice);

  std::string dir_;
  int64_t memory_entries_;
  int64_t max_disk_bytes_;
  int stage_ = -1;

  mutable std::mutex mutex_;
  std::unordered_map<int64_t, Tensor> memory_;
  std::deque<int64_t> insertion_order_;
  std::unordered_set<int64_t> on_disk_;
  CacheStats stats_;
  std::unique_ptr<ThreadPool> prefetcher_;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_ACTIVATION_CACHE_H_
