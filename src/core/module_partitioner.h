// Layer-module partitioner (paper S4.2.1 and Figure 11).
//
// Egeria freezes *layer modules* — groups of consecutive layers — rather than single
// layers: modules have coherent training progress and small individual layers are too
// noisy under SGD. The paper parses the model by structure and parameter size: light
// front stages are evaluated as a whole while heavy deep stages are split into
// similar-sized modules (ResNet-56: layer1 5% and layer2 20% whole; layer3 75% split
// five ways, with 3.7-3.8 separate because the last module is never frozen).
//
// This partitioner reproduces that policy: greedy grouping of the block list into
// `target_modules` contiguous groups of roughly equal parameter mass, with the head
// block always kept in the final (never-frozen) module. A name-pattern override pins
// blocks whose name contains the pattern to module boundaries (the paper's regex
// granularity config).
#ifndef EGERIA_SRC_CORE_MODULE_PARTITIONER_H_
#define EGERIA_SRC_CORE_MODULE_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/models/chain_model.h"
#include "src/nn/module.h"

namespace egeria {

struct PartitionConfig {
  int target_modules = 7;
  // Any block whose name contains this substring starts a new module (the paper's
  // layer-granularity regex option). Empty disables.
  std::string boundary_pattern;
};

struct PartitionSummary {
  std::vector<std::string> module_names;
  std::vector<int64_t> module_params;
  std::vector<int> blocks_per_module;
};

// Groups `blocks` into a StageChainModel according to `cfg`. `summary` (optional)
// receives the resulting layout for logging / Fig. 11 rendering.
std::unique_ptr<StageChainModel> PartitionIntoChain(
    const std::string& model_name, std::vector<std::unique_ptr<Module>> blocks,
    const PartitionConfig& cfg, PartitionSummary* summary = nullptr);

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_MODULE_PARTITIONER_H_
