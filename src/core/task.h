// Task plumbing: maps (logits, batch) to loss/gradient and validation metrics for
// the four evaluation task families (Table 1): image classification, semantic
// segmentation, machine translation, question answering.
#ifndef EGERIA_SRC_CORE_TASK_H_
#define EGERIA_SRC_CORE_TASK_H_

#include <string>

#include "src/data/batch.h"
#include "src/nn/loss.h"

namespace egeria {

enum class TaskKind { kClassification, kSegmentation, kTranslation, kQa };

struct TaskSpec {
  TaskKind kind = TaskKind::kClassification;
  float label_smoothing = 0.0F;
  int num_classes = 10;  // segmentation mIoU
};

LossResult TaskLoss(const TaskSpec& spec, const Tensor& logits, const Batch& batch);

// Validation metric in two forms: `score` is higher-better (perplexity is negated)
// so target-accuracy comparisons are uniform; `display` is the paper-facing value
// (accuracy fraction, mIoU, perplexity, span F1).
struct TaskMetric {
  double score = 0.0;
  double display = 0.0;
  std::string unit;
};

TaskMetric EvaluateTask(const TaskSpec& spec, const Tensor& logits, const Batch& batch);

// Aggregates display metrics across batches and rebuilds the score.
TaskMetric AggregateMetric(const TaskSpec& spec, const std::vector<TaskMetric>& parts);

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_TASK_H_
