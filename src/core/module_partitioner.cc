#include "src/core/module_partitioner.h"

#include <algorithm>

#include "src/nn/sequential.h"
#include "src/util/logging.h"

namespace egeria {

std::unique_ptr<StageChainModel> PartitionIntoChain(
    const std::string& model_name, std::vector<std::unique_ptr<Module>> blocks,
    const PartitionConfig& cfg, PartitionSummary* summary) {
  EGERIA_CHECK(!blocks.empty());
  const int target = std::max(1, std::min<int>(cfg.target_modules,
                                               static_cast<int>(blocks.size())));

  std::vector<int64_t> masses;
  masses.reserve(blocks.size());
  int64_t total = 0;
  for (auto& b : blocks) {
    masses.push_back(b->ParamCount());
    total += masses.back();
  }

  // Greedy mass-balanced cut points. The final block (the head / loss-adjacent
  // module) always terminates the last group, which Egeria never freezes
  // (Algorithm 1 asserts l is not the last layer).
  const double per_module = static_cast<double>(total) / target;
  std::vector<size_t> cut_after;  // indices i such that a module ends at block i
  double acc = 0.0;
  int remaining_modules = target;
  int64_t remaining_mass = total;
  for (size_t i = 0; i + 1 < blocks.size(); ++i) {
    acc += static_cast<double>(masses[i]);
    remaining_mass -= masses[i];
    const bool pattern_cut =
        !cfg.boundary_pattern.empty() &&
        blocks[i + 1]->name().find(cfg.boundary_pattern) != std::string::npos;
    const bool mass_cut = acc >= per_module * 0.9 && remaining_modules > 1;
    // Never leave more modules to form than blocks remaining.
    const bool forced_cut =
        static_cast<size_t>(remaining_modules - 1) >= blocks.size() - i - 1;
    if (((mass_cut || pattern_cut) &&
         remaining_mass > 0 /* head still pending */) ||
        forced_cut) {
      cut_after.push_back(i);
      acc = 0.0;
      --remaining_modules;
      if (remaining_modules == 1) {
        break;
      }
    }
  }

  std::vector<std::unique_ptr<Module>> stages;
  PartitionSummary local;
  size_t block_idx = 0;
  size_t cut_idx = 0;
  while (block_idx < blocks.size()) {
    const size_t group_end = (cut_idx < cut_after.size()) ? cut_after[cut_idx] + 1
                                                          : blocks.size();
    ++cut_idx;
    const std::string first = blocks[block_idx]->name();
    const std::string last = blocks[group_end - 1]->name();
    const std::string stage_name = (group_end - block_idx == 1)
                                       ? first
                                       : first + ".." + last;
    auto stage = std::make_unique<Sequential>(stage_name);
    int64_t stage_mass = 0;
    int count = 0;
    for (size_t i = block_idx; i < group_end; ++i) {
      stage_mass += masses[i];
      stage->Add(std::move(blocks[i]));
      ++count;
    }
    local.module_names.push_back(stage_name);
    local.module_params.push_back(stage_mass);
    local.blocks_per_module.push_back(count);
    stages.push_back(std::move(stage));
    block_idx = group_end;
  }

  if (summary != nullptr) {
    *summary = local;
  }
  return std::make_unique<StageChainModel>(model_name, std::move(stages));
}

}  // namespace egeria
