// Egeria configuration (paper S4.2.2 "Hyperparameters guideline").
#ifndef EGERIA_SRC_CORE_CONFIG_H_
#define EGERIA_SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/nn/module.h"
#include "src/quant/quantized_modules.h"

namespace egeria {

struct EgeriaConfig {
  // n: plasticity evaluation interval in iterations (also the bootstrap-monitor
  // interval). Paper guideline: total_iters / (W*2) / num_modules / 1.75.
  int64_t eval_interval_n = 50;

  // W: number of consecutive low-slope evaluations required to freeze; also the
  // moving-average / linear-fit window and history buffer length.
  int window_w = 10;

  // T: per-module slope tolerance = tolerance_coef * max |slope| over the module's
  // first 3 readings (paper: 20%).
  double tolerance_coef = 0.2;

  // Bootstrapping stage ends when the training-loss change rate drops below this
  // (paper: "permissively set to 10%").
  double bootstrap_change_rate = 0.10;

  // Upper bound on the bootstrapping stage, in iterations; the knowledge-guided
  // stage starts no later than this even if the loss is still moving. <0 disables
  // the cap (pure change-rate criterion).
  int64_t max_bootstrap_iters = -1;

  // Unfreeze-all triggers when lr <= unfreeze_lr_factor * lr_at_first_freeze under an
  // annealing schedule ("LR has dropped over a factor of 10", S4.2.2).
  double unfreeze_lr_factor = 0.1;

  // W is multiplied by this after each unfreeze ("halve the counter and history
  // buffer W for refreezing").
  double refreeze_window_factor = 0.5;

  // Reference model precision and quantization mode (int8 static for conv nets,
  // int8 dynamic for NLP models; fp16/fp32 fallbacks, S4.1.3 and Table 2).
  Precision reference_precision = Precision::kInt8;
  QuantMode quant_mode = QuantMode::kStatic;

  // Forward precision for frozen-prefix stages (single-process Trainer only;
  // the distributed harness does not apply it). A frozen stage's forward is
  // input-deterministic and its parameters fixed, so it can run through the
  // same reduced-precision kernels as the reference model; kFloat16 halves the
  // frozen prefix's weight bandwidth on cache-miss iterations. kFloat32 (the
  // default) keeps the exact pre-freeze forward. Also ignored by models that
  // do not support forward substitution (e.g. the encoder-decoder Transformer).
  Precision frozen_prefix_precision = Precision::kFloat32;

  // Update the reference model from a fresh snapshot every this many plasticity
  // evaluations (the paper's periodic update). Both extremes misbehave: a stale
  // reference amplifies SGD fluctuations (paper S4.1.3), while refreshing every
  // 1-2 evals makes plasticity collapse to quantization noise — falsely stationary
  // while the model still improves — causing premature freezes (EXPERIMENTS.md).
  // ~2x window_w is a good default.
  int ref_update_evals = 10;

  // Run the controller on its own thread with SPSC queues (the paper's
  // non-blocking CPU-side evaluation). Tests use synchronous mode for determinism.
  bool async_controller = true;

  // Forward-pass skipping via the persistent frozen-feature store (S4.3).
  // cache_dir empty: with checkpointing enabled the store lives under
  // <checkpoint.dir>/feature_store and survives crash/resume (adopted back by
  // its generation-keyed manifest); otherwise an ephemeral per-process temp
  // directory is used. A non-empty cache_dir is always treated as persistent.
  bool enable_cache = true;
  std::string cache_dir;
  int64_t cache_memory_batches = 5;  // "the cache only stores the recent five
                                     // mini-batches" in memory
  int64_t cache_max_disk_bytes = int64_t{4} << 30;  // spill budget (FIFO evict)
  int64_t prefetch_batches = 2;

  // Never freeze the last `protected_tail` stages (the head / loss module).
  int protected_tail = 1;
};

}  // namespace egeria

#endif  // EGERIA_SRC_CORE_CONFIG_H_
