#include "src/core/controller.h"

#include <functional>
#include <utility>

#include "src/ckpt/state_dict.h"
#include "src/ckpt/wire.h"
#include "src/metrics/sp_loss.h"
#include "src/quant/quantized_modules.h"
#include "src/tensor/serialize.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace egeria {

namespace {
constexpr size_t kEvalQueueCap = 4;
constexpr size_t kSnapshotQueueCap = 2;
constexpr size_t kDecisionQueueCap = 64;
}  // namespace

EgeriaController::EgeriaController(const EgeriaConfig& cfg, int num_stages,
                                   bool lr_annealing)
    : cfg_(cfg),
      factory_(MakeInferenceFactory(cfg.reference_precision, cfg.quant_mode)),
      policy_(cfg, num_stages, lr_annealing),
      eval_queue_(kEvalQueueCap),
      snapshot_queue_(kSnapshotQueueCap),
      decision_queue_(kDecisionQueueCap) {
  if (cfg_.async_controller) {
    thread_ = std::thread([this] { ControllerLoop(); });
  }
}

EgeriaController::~EgeriaController() {
  stopping_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void EgeriaController::SubmitSnapshot(std::unique_ptr<ChainModel> snapshot) {
  wants_snapshot_.store(false);
  if (!snapshot_queue_.TryPush(std::move(snapshot))) {
    // A refresh is already pending; this snapshot is redundant.
  }
}

bool EgeriaController::SubmitEval(EvalRequest req) {
  return eval_queue_.TryPush(std::move(req));
}

std::vector<FreezeDecision> EgeriaController::DrainDecisions() {
  std::vector<FreezeDecision> out;
  while (auto d = decision_queue_.TryPop()) {
    out.push_back(*d);
  }
  return out;
}

std::optional<FreezeDecision> EgeriaController::OnLr(float lr, int64_t iter) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  return policy_.OnLr(lr, iter);
}

void EgeriaController::RunPendingSync() {
  EGERIA_CHECK_MSG(!cfg_.async_controller, "RunPendingSync in async mode");
  while (auto snap = snapshot_queue_.TryPop()) {
    BuildReference(std::move(*snap));
  }
  while (auto req = eval_queue_.TryPop()) {
    ProcessEval(*req);
  }
}

double EgeriaController::EvalSeconds() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return eval_seconds_;
}

std::vector<PlasticityRecord> EgeriaController::PlasticityHistory() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return history_;
}

int EgeriaController::Frontier() const {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  return policy_.frontier();
}

void EgeriaController::ControllerLoop() {
  while (!stopping_.load()) {
    if (auto snap = snapshot_queue_.TryPop()) {
      BuildReference(std::move(*snap));
      continue;
    }
    if (auto req = eval_queue_.PopFor(std::chrono::milliseconds(5))) {
      ProcessEval(*req);
    }
  }
}

void EgeriaController::BuildReference(std::unique_ptr<ChainModel> snapshot) {
  WallTimer timer;
  std::unique_ptr<ChainModel> reference = snapshot->CloneForInference(*factory_);
  {
    std::lock_guard<std::mutex> lock(reference_mutex_);
    reference_ = std::move(reference);
    ref_snapshot_ = std::move(snapshot);
    evals_since_refresh_ = 0;
  }
  last_quantize_seconds_.store(timer.ElapsedSeconds());
  has_reference_.store(true);
}

namespace {
constexpr uint32_t kControllerMagic = 0x4F434745;  // 'EGCO'
constexpr uint32_t kControllerVersion = 1;

// DFS over the model's stage modules, visiting every quantized leaf of the
// reference model in a deterministic order. Rebuilding the reference from the
// saved snapshot reproduces the int8 weights bit-for-bit (quantization is a
// pure function of the floats), but NOT the static-mode activation
// calibration, which accrues across evaluation forwards — so that state is
// carried explicitly.
template <class Fn>
void ForEachQuantModule(ChainModel& model, Fn&& fn) {
  std::function<void(Module*)> visit = [&](Module* m) {
    if (auto* ql = dynamic_cast<QuantLinear*>(m)) {
      fn(ql);
    } else if (auto* qc = dynamic_cast<QuantConv2d*>(m)) {
      fn(qc);
    }
    for (Module* child : m->Children()) {
      visit(child);
    }
  };
  for (int i = 0; i < model.NumStages(); ++i) {
    for (Module* m : model.StageModules(i)) {
      visit(m);
    }
  }
}

}  // namespace

void EgeriaController::SaveState(std::ostream& os) {
  // Sync mode: fold queued snapshot/eval work into the saved state (see
  // header). Decisions it produces are drained, persisted, and re-enqueued.
  std::vector<FreezeDecision> pending;
  if (!cfg_.async_controller) {
    RunPendingSync();
    pending = DrainDecisions();
    for (const FreezeDecision& d : pending) {
      decision_queue_.TryPush(d);
    }
  }
  wire::Write(os, kControllerMagic);
  wire::Write(os, kControllerVersion);
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    policy_.SaveState(os);
  }
  wire::Write(os, static_cast<uint32_t>(pending.size()));
  for (const FreezeDecision& d : pending) {
    wire::Write(os, static_cast<uint8_t>(d.kind == FreezeDecision::Kind::kFreezeUpTo));
    wire::Write(os, static_cast<int32_t>(d.stage));
    wire::Write(os, d.iter);
  }
  {
    std::lock_guard<std::mutex> lock(reference_mutex_);
    wire::Write(os, static_cast<int64_t>(evals_since_refresh_));
  }
  wire::Write(os, evals_done_.load());
  wire::Write(os, static_cast<uint8_t>(wants_snapshot_.load() ? 1 : 0));
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    wire::Write(os, static_cast<uint64_t>(history_.size()));
    for (const PlasticityRecord& r : history_) {
      wire::Write(os, r.iter);
      wire::Write(os, static_cast<int32_t>(r.stage));
      wire::Write(os, r.raw);
    }
    wire::Write(os, eval_seconds_);
  }
  std::lock_guard<std::mutex> ref_lock(reference_mutex_);
  const bool has_ref = has_reference_.load() && ref_snapshot_ != nullptr;
  wire::Write(os, static_cast<uint8_t>(has_ref ? 1 : 0));
  if (has_ref) {
    const Checkpoint snap = ExportModelState(*ref_snapshot_);
    wire::Write(os, static_cast<uint64_t>(snap.size()));
    for (const auto& [name, tensor] : snap) {
      wire::WriteString(os, name);
      WriteTensor(os, tensor);
    }
    // Static-quant calibration state of the live reference, in DFS order.
    std::vector<QuantCalibrationState> calib;
    ForEachQuantModule(*reference_, [&](auto* q) { calib.push_back(q->calibration()); });
    wire::Write(os, static_cast<uint32_t>(calib.size()));
    for (const QuantCalibrationState& c : calib) {
      wire::Write(os, c.max_abs);
      wire::Write(os, static_cast<uint8_t>(c.observed ? 1 : 0));
      wire::Write(os, static_cast<int32_t>(c.calibration_left));
    }
  }
}

bool EgeriaController::RestoreState(
    std::istream& is,
    const std::function<std::unique_ptr<ChainModel>()>& make_snapshot) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!wire::Read(is, magic) || magic != kControllerMagic || !wire::Read(is, version) ||
      version != kControllerVersion) {
    EGERIA_LOG(kError) << "controller state: bad header";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    if (!policy_.LoadState(is)) {
      return false;
    }
  }
  uint32_t pending_count = 0;
  if (!wire::Read(is, pending_count) || pending_count > 1024) {
    EGERIA_LOG(kError) << "controller state: bad pending-decision count";
    return false;
  }
  std::vector<FreezeDecision> pending(pending_count);
  for (FreezeDecision& d : pending) {
    uint8_t is_freeze = 0;
    int32_t stage = 0;
    if (!wire::Read(is, is_freeze) || !wire::Read(is, stage) || !wire::Read(is, d.iter)) {
      EGERIA_LOG(kError) << "controller state: truncated pending decision";
      return false;
    }
    d.kind = is_freeze != 0 ? FreezeDecision::Kind::kFreezeUpTo
                            : FreezeDecision::Kind::kUnfreezeAll;
    d.stage = stage;
  }
  int64_t evals_since_refresh = 0;
  int64_t evals_done = 0;
  uint8_t wants_snapshot = 0;
  if (!wire::Read(is, evals_since_refresh) || !wire::Read(is, evals_done) ||
      !wire::Read(is, wants_snapshot)) {
    EGERIA_LOG(kError) << "controller state: truncated counters";
    return false;
  }
  uint64_t history_count = 0;
  if (!wire::Read(is, history_count) || history_count > (1ULL << 32)) {
    EGERIA_LOG(kError) << "controller state: bad history count";
    return false;
  }
  std::vector<PlasticityRecord> history;
  history.reserve(static_cast<size_t>(history_count));
  for (uint64_t i = 0; i < history_count; ++i) {
    PlasticityRecord r;
    int32_t stage = 0;
    if (!wire::Read(is, r.iter) || !wire::Read(is, stage) || !wire::Read(is, r.raw)) {
      EGERIA_LOG(kError) << "controller state: truncated history";
      return false;
    }
    r.stage = stage;
    history.push_back(r);
  }
  double eval_seconds = 0.0;
  uint8_t has_ref = 0;
  if (!wire::Read(is, eval_seconds) || !wire::Read(is, has_ref)) {
    EGERIA_LOG(kError) << "controller state: truncated tail";
    return false;
  }
  if (has_ref != 0) {
    uint64_t count = 0;
    if (!wire::Read(is, count) || count > (1ULL << 24)) {
      EGERIA_LOG(kError) << "controller state: bad snapshot entry count";
      return false;
    }
    Checkpoint snap;
    for (uint64_t i = 0; i < count; ++i) {
      std::string name;
      if (!wire::ReadString(is, name)) {
        EGERIA_LOG(kError) << "controller state: truncated snapshot name";
        return false;
      }
      Tensor t = ReadTensor(is, "controller snapshot:" + name);
      if (!t.Defined()) {
        return false;
      }
      snap.emplace(std::move(name), std::move(t));
    }
    std::unique_ptr<ChainModel> model = make_snapshot();
    if (model == nullptr || !LoadModelState(snap, *model)) {
      EGERIA_LOG(kError) << "controller state: reference snapshot restore failed";
      return false;
    }
    uint32_t calib_count = 0;
    if (!wire::Read(is, calib_count) || calib_count > (1U << 24)) {
      EGERIA_LOG(kError) << "controller state: bad calibration count";
      return false;
    }
    std::vector<QuantCalibrationState> calib(calib_count);
    for (QuantCalibrationState& c : calib) {
      uint8_t observed = 0;
      int32_t left = 0;
      if (!wire::Read(is, c.max_abs) || !wire::Read(is, observed) ||
          !wire::Read(is, left)) {
        EGERIA_LOG(kError) << "controller state: truncated calibration record";
        return false;
      }
      c.observed = observed != 0;
      c.calibration_left = left;
    }
    BuildReference(std::move(model));
    size_t idx = 0;
    bool calib_ok = true;
    {
      std::lock_guard<std::mutex> lock(reference_mutex_);
      ForEachQuantModule(*reference_, [&](auto* q) {
        if (idx < calib.size()) {
          q->RestoreCalibration(calib[idx]);
        } else {
          calib_ok = false;
        }
        ++idx;
      });
    }
    if (!calib_ok || idx != calib.size()) {
      EGERIA_LOG(kError) << "controller state: calibration record count mismatch ("
                         << calib.size() << " saved, " << idx << " modules)";
      return false;
    }
  }
  {
    // BuildReference reset the refresh counter; the saved values win.
    std::lock_guard<std::mutex> lock(reference_mutex_);
    evals_since_refresh_ = evals_since_refresh;
  }
  evals_done_.store(evals_done);
  wants_snapshot_.store(wants_snapshot != 0);
  for (const FreezeDecision& d : pending) {
    decision_queue_.TryPush(d);
  }
  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    history_ = std::move(history);
    eval_seconds_ = eval_seconds;
  }
  return true;
}

void EgeriaController::ProcessEval(EvalRequest& req) {
  WallTimer timer;
  Tensor a_ref;
  {
    std::lock_guard<std::mutex> lock(reference_mutex_);
    if (reference_ == nullptr) {
      return;  // Reference still being generated; drop this periodic sample.
    }
    // The controller's own forward pass plays the ROQ role (Fig. 6): A_R at
    // the same boundary, elicited by the same mini-batch.
    reference_->SetBatch(req.batch);
    a_ref = reference_->ForwardPrefix(req.stage, req.batch.input);
  }
  const double plasticity = SpLoss(req.train_act, a_ref);  // Equation 1.

  std::optional<FreezeDecision> decision;
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    decision = policy_.OnPlasticity(req.stage, plasticity, req.lr, req.iter);
  }
  if (decision) {
    decision_queue_.TryPush(*decision);
  }

  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    history_.push_back({req.iter, req.stage, plasticity});
    eval_seconds_ += timer.ElapsedSeconds();
  }
  evals_done_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(reference_mutex_);
    if (++evals_since_refresh_ >= cfg_.ref_update_evals) {
      evals_since_refresh_ = 0;
      wants_snapshot_.store(true);
    }
  }
}

}  // namespace egeria
