#include "src/core/controller.h"

#include "src/metrics/sp_loss.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace egeria {

namespace {
constexpr size_t kEvalQueueCap = 4;
constexpr size_t kSnapshotQueueCap = 2;
constexpr size_t kDecisionQueueCap = 64;
}  // namespace

EgeriaController::EgeriaController(const EgeriaConfig& cfg, int num_stages,
                                   bool lr_annealing)
    : cfg_(cfg),
      factory_(MakeInferenceFactory(cfg.reference_precision, cfg.quant_mode)),
      policy_(cfg, num_stages, lr_annealing),
      eval_queue_(kEvalQueueCap),
      snapshot_queue_(kSnapshotQueueCap),
      decision_queue_(kDecisionQueueCap) {
  if (cfg_.async_controller) {
    thread_ = std::thread([this] { ControllerLoop(); });
  }
}

EgeriaController::~EgeriaController() {
  stopping_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void EgeriaController::SubmitSnapshot(std::unique_ptr<ChainModel> snapshot) {
  wants_snapshot_.store(false);
  if (!snapshot_queue_.TryPush(std::move(snapshot))) {
    // A refresh is already pending; this snapshot is redundant.
  }
}

bool EgeriaController::SubmitEval(EvalRequest req) {
  return eval_queue_.TryPush(std::move(req));
}

std::vector<FreezeDecision> EgeriaController::DrainDecisions() {
  std::vector<FreezeDecision> out;
  while (auto d = decision_queue_.TryPop()) {
    out.push_back(*d);
  }
  return out;
}

std::optional<FreezeDecision> EgeriaController::OnLr(float lr, int64_t iter) {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  return policy_.OnLr(lr, iter);
}

void EgeriaController::RunPendingSync() {
  EGERIA_CHECK_MSG(!cfg_.async_controller, "RunPendingSync in async mode");
  while (auto snap = snapshot_queue_.TryPop()) {
    BuildReference(std::move(*snap));
  }
  while (auto req = eval_queue_.TryPop()) {
    ProcessEval(*req);
  }
}

double EgeriaController::EvalSeconds() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return eval_seconds_;
}

std::vector<PlasticityRecord> EgeriaController::PlasticityHistory() const {
  std::lock_guard<std::mutex> lock(history_mutex_);
  return history_;
}

int EgeriaController::Frontier() const {
  std::lock_guard<std::mutex> lock(policy_mutex_);
  return policy_.frontier();
}

void EgeriaController::ControllerLoop() {
  while (!stopping_.load()) {
    if (auto snap = snapshot_queue_.TryPop()) {
      BuildReference(std::move(*snap));
      continue;
    }
    if (auto req = eval_queue_.PopFor(std::chrono::milliseconds(5))) {
      ProcessEval(*req);
    }
  }
}

void EgeriaController::BuildReference(std::unique_ptr<ChainModel> snapshot) {
  WallTimer timer;
  reference_ = snapshot->CloneForInference(*factory_);
  last_quantize_seconds_.store(timer.ElapsedSeconds());
  has_reference_.store(true);
  evals_since_refresh_ = 0;
}

void EgeriaController::ProcessEval(EvalRequest& req) {
  if (reference_ == nullptr) {
    return;  // Reference still being generated; drop this periodic sample.
  }
  WallTimer timer;
  // The controller's own forward pass plays the ROQ role (Fig. 6): A_R at the same
  // boundary, elicited by the same mini-batch.
  reference_->SetBatch(req.batch);
  Tensor a_ref = reference_->ForwardPrefix(req.stage, req.batch.input);
  const double plasticity = SpLoss(req.train_act, a_ref);  // Equation 1.

  std::optional<FreezeDecision> decision;
  {
    std::lock_guard<std::mutex> lock(policy_mutex_);
    decision = policy_.OnPlasticity(req.stage, plasticity, req.lr, req.iter);
  }
  if (decision) {
    decision_queue_.TryPush(*decision);
  }

  {
    std::lock_guard<std::mutex> lock(history_mutex_);
    history_.push_back({req.iter, req.stage, plasticity});
    eval_seconds_ += timer.ElapsedSeconds();
  }
  evals_done_.fetch_add(1);
  if (++evals_since_refresh_ >= cfg_.ref_update_evals) {
    evals_since_refresh_ = 0;
    wants_snapshot_.store(true);
  }
}

}  // namespace egeria
