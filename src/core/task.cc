#include "src/core/task.h"

#include "src/util/logging.h"

namespace egeria {

LossResult TaskLoss(const TaskSpec& spec, const Tensor& logits, const Batch& batch) {
  switch (spec.kind) {
    case TaskKind::kClassification:
      return SoftmaxCrossEntropy(logits, batch.labels, spec.label_smoothing);
    case TaskKind::kSegmentation:
      return PixelwiseCrossEntropy(logits, batch.labels);
    case TaskKind::kTranslation:
      return SequenceCrossEntropy(logits, batch.labels, spec.label_smoothing);
    case TaskKind::kQa:
      return SpanLoss(logits, batch.spans);
  }
  EGERIA_CHECK_MSG(false, "unknown task");
  return {};
}

TaskMetric EvaluateTask(const TaskSpec& spec, const Tensor& logits, const Batch& batch) {
  TaskMetric m;
  switch (spec.kind) {
    case TaskKind::kClassification:
      m.display = TopOneAccuracy(logits, batch.labels);
      m.score = m.display;
      m.unit = "acc";
      return m;
    case TaskKind::kSegmentation:
      m.display = MeanIoU(logits, batch.labels, spec.num_classes);
      m.score = m.display;
      m.unit = "mIoU";
      return m;
    case TaskKind::kTranslation:
      m.display = Perplexity(logits, batch.labels);
      m.score = -m.display;
      m.unit = "ppl";
      return m;
    case TaskKind::kQa:
      m.display = SpanF1(logits, batch.spans);
      m.score = m.display;
      m.unit = "F1";
      return m;
  }
  EGERIA_CHECK_MSG(false, "unknown task");
  return m;
}

TaskMetric AggregateMetric(const TaskSpec& spec, const std::vector<TaskMetric>& parts) {
  TaskMetric out;
  EGERIA_CHECK(!parts.empty());
  double sum = 0.0;
  for (const auto& p : parts) {
    sum += p.display;
  }
  out.display = sum / static_cast<double>(parts.size());
  out.unit = parts.front().unit;
  out.score = (spec.kind == TaskKind::kTranslation) ? -out.display : out.display;
  return out;
}

}  // namespace egeria
