#include "src/core/activation_cache.h"

#include <filesystem>

#include "src/tensor/serialize.h"
#include "src/util/logging.h"

namespace egeria {

namespace fs = std::filesystem;

ActivationCache::ActivationCache(std::string dir, int64_t memory_entries,
                                 int64_t max_disk_bytes)
    : dir_(std::move(dir)),
      memory_entries_(memory_entries),
      max_disk_bytes_(max_disk_bytes) {
  EGERIA_CHECK(memory_entries_ >= 1);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  EGERIA_CHECK_MSG(!ec, "cannot create cache dir " + dir_);
  prefetcher_ = std::make_unique<ThreadPool>(1);
}

ActivationCache::~ActivationCache() {
  prefetcher_.reset();  // Join before removing files.
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

std::string ActivationCache::PathFor(int64_t id) const {
  return dir_ + "/s" + std::to_string(stage_) + "_" + std::to_string(id) + ".egt";
}

void ActivationCache::SetStage(int stage) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stage == stage_) {
      return;
    }
    stage_ = stage;
    memory_.clear();
    insertion_order_.clear();
    on_disk_.clear();
    stats_.bytes_written = 0;
  }
  // Sweep EVERY spill file, not just the ids tracked in on_disk_: after a
  // crash-restart the directory can hold spills from a previous incarnation
  // (possibly a different frontier) that this instance never recorded. They
  // are stale the moment the boundary stage changes, and an untracked
  // same-stage leftover would only shadow the bytes-written accounting, so a
  // stage change clears the directory outright. Concurrent prefetch loads of
  // removed files degrade to misses via the hardened reader.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file(ec)) {
      fs::remove(entry.path(), ec);
    }
  }
}

void ActivationCache::Clear() {
  const int s = stage_;
  SetStage(-1);
  SetStage(s);
}

bool ActivationCache::HasAll(const std::vector<int64_t>& ids) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int64_t id : ids) {
    if (memory_.count(id) == 0 && on_disk_.count(id) == 0) {
      return false;
    }
  }
  return true;
}

void ActivationCache::InsertMemoryLocked(int64_t id, Tensor slice) {
  if (memory_.count(id) != 0) {
    return;
  }
  memory_.emplace(id, std::move(slice));
  insertion_order_.push_back(id);
  while (static_cast<int64_t>(memory_.size()) > memory_entries_) {
    memory_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

Tensor ActivationCache::FetchBatch(const std::vector<int64_t>& ids) {
  std::vector<Tensor> slices(ids.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < ids.size(); ++i) {
      auto it = memory_.find(ids[i]);
      if (it != memory_.end()) {
        slices[i] = it->second;
        ++stats_.memory_hits;
      } else if (on_disk_.count(ids[i]) == 0) {
        ++stats_.misses;
        return Tensor();
      }
    }
  }
  // Disk fallback outside the lock.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!slices[i].Defined()) {
      slices[i] = LoadTensorFile(PathFor(ids[i]));
      if (!slices[i].Defined()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return Tensor();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_hits;
      InsertMemoryLocked(ids[i], slices[i]);
    }
  }
  // Assemble [b, ...] from slices shaped [1, ...].
  std::vector<int64_t> shape = slices[0].Shape();
  shape[0] = static_cast<int64_t>(ids.size());
  Tensor out(shape);
  const int64_t per = slices[0].NumEl();
  for (size_t i = 0; i < slices.size(); ++i) {
    EGERIA_CHECK(slices[i].NumEl() == per);
    std::copy(slices[i].Data(), slices[i].Data() + per,
              out.Data() + static_cast<int64_t>(i) * per);
  }
  return out;
}

void ActivationCache::StoreBatch(const std::vector<int64_t>& ids, const Tensor& activations) {
  EGERIA_CHECK(activations.Dim() >= 2);
  EGERIA_CHECK(activations.Size(0) == static_cast<int64_t>(ids.size()));
  std::vector<int64_t> slice_shape = activations.Shape();
  slice_shape[0] = 1;
  const int64_t per = activations.NumEl() / activations.Size(0);
  for (size_t i = 0; i < ids.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (on_disk_.count(ids[i]) != 0) {
        continue;  // Already persisted this epoch cycle.
      }
      if (stats_.bytes_written + per * static_cast<int64_t>(sizeof(float)) >
          max_disk_bytes_) {
        return;  // Storage budget exhausted; stop caching new samples.
      }
    }
    Tensor slice(slice_shape);
    std::copy(activations.Data() + static_cast<int64_t>(i) * per,
              activations.Data() + static_cast<int64_t>(i + 1) * per, slice.Data());
    const bool ok = SaveTensorFile(PathFor(ids[i]), slice);
    std::lock_guard<std::mutex> lock(mutex_);
    if (ok) {
      on_disk_.insert(ids[i]);
      stats_.bytes_written += per * static_cast<int64_t>(sizeof(float));
      ++stats_.stores;
      InsertMemoryLocked(ids[i], std::move(slice));
    }
  }
}

void ActivationCache::PrefetchAsync(const std::vector<int64_t>& ids) {
  std::vector<int64_t> to_load;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t id : ids) {
      if (memory_.count(id) == 0 && on_disk_.count(id) != 0) {
        to_load.push_back(id);
      }
    }
  }
  if (to_load.empty()) {
    return;
  }
  const int expected_stage = stage_;
  prefetcher_->Submit([this, to_load, expected_stage] {
    for (int64_t id : to_load) {
      if (stage_ != expected_stage) {
        return;  // Frontier moved; these paths are stale.
      }
      Tensor slice = LoadTensorFile(PathFor(id));
      if (!slice.Defined()) {
        continue;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.prefetch_loads;
      InsertMemoryLocked(id, std::move(slice));
    }
  });
}

CacheStats ActivationCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace egeria
