#include "src/core/activation_cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/serialize.h"
#include "src/util/logging.h"

namespace egeria {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "store.manifest";

int PrecisionIndex(Precision p) {
  switch (p) {
    case Precision::kFloat32:
      return 0;
    case Precision::kFloat16:
      return 1;
    case Precision::kInt8:
      return 2;
  }
  return 0;
}

}  // namespace

ActivationCache::ActivationCache(std::string dir, int64_t memory_entries,
                                 int64_t max_disk_bytes, bool persistent)
    : dir_(std::move(dir)),
      memory_entries_(memory_entries),
      max_disk_bytes_(max_disk_bytes),
      persistent_(persistent) {
  EGERIA_CHECK(memory_entries_ >= 1);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  EGERIA_CHECK_MSG(!ec, "cannot create cache dir " + dir_);
  prefetcher_ = std::make_unique<ThreadPool>(1);
}

ActivationCache::~ActivationCache() {
  prefetcher_.reset();  // Join before touching files.
  if (!persistent_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
}

std::string ActivationCache::PathForLocked(int64_t id) const {
  return dir_ + "/v" + std::to_string(kSpillFormatVersion) + "_s" +
         std::to_string(stage_) + "_p" + std::to_string(PrecisionIndex(precision_)) +
         "_" + std::to_string(id) + ".egt";
}

int ActivationCache::stage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stage_;
}

uint64_t ActivationCache::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

bool ActivationCache::ManifestMatches() const {
  std::ifstream is(dir_ + "/" + kManifestName);
  if (!is) {
    return false;
  }
  std::string tag;
  uint32_t version = 0;
  int stage = -2;
  int precision = -1;
  uint64_t generation = 0;
  is >> tag >> version >> stage >> precision >> generation;
  return static_cast<bool>(is) && tag == "egeria-feature-store" &&
         version == kSpillFormatVersion && stage == stage_ &&
         precision == PrecisionIndex(precision_) && generation == generation_;
}

void ActivationCache::WriteManifest() const {
  // tmp + rename so a crash mid-write never leaves a manifest that validates a
  // half-swept directory.
  const std::string tmp = dir_ + "/" + kManifestName + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    os << "egeria-feature-store " << kSpillFormatVersion << " " << stage_ << " "
       << PrecisionIndex(precision_) << " " << generation_ << "\n";
    if (!os) {
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, dir_ + "/" + kManifestName, ec);
}

void ActivationCache::SweepDirectory() {
  // Sweep EVERY file, not just tracked ids: after a crash-restart the directory
  // can hold spills from a previous incarnation (possibly a different key) that
  // this instance never recorded. Concurrent prefetch loads of removed files
  // degrade to misses via the hardened reader.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file(ec)) {
      fs::remove(entry.path(), ec);
    }
  }
}

void ActivationCache::AdoptDirectory() {
  const std::string prefix = "v" + std::to_string(kSpillFormatVersion) + "_s" +
                             std::to_string(stage_) + "_p" +
                             std::to_string(PrecisionIndex(precision_)) + "_";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name == kManifestName) {
      continue;
    }
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + 4 ||
        name.compare(name.size() - 4, 4, ".egt") != 0) {
      fs::remove(entry.path(), ec);  // Different key or foreign file: stale.
      continue;
    }
    const std::string id_str = name.substr(prefix.size(), name.size() - prefix.size() - 4);
    char* end = nullptr;
    const int64_t id = std::strtoll(id_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      fs::remove(entry.path(), ec);
      continue;
    }
    const int64_t bytes = static_cast<int64_t>(entry.file_size(ec));
    if (ec || on_disk_.count(id) != 0) {
      continue;
    }
    // A corrupt adopted file is only discovered at load time, where the
    // checksummed reader turns it into a miss; adopting it here costs nothing.
    on_disk_.emplace(id, bytes);
    disk_order_.push_back(id);
    disk_bytes_ += bytes;
    ++stats_.adopted;
  }
}

void ActivationCache::SetKey(int stage, Precision precision, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (configured_ && stage == stage_ && precision == precision_ &&
      generation == generation_) {
    return;  // Per-iteration fast path.
  }
  configured_ = true;
  stage_ = stage;
  precision_ = precision;
  generation_ = generation;
  key_epoch_.fetch_add(1, std::memory_order_release);
  memory_.clear();
  insertion_order_.clear();
  on_disk_.clear();
  disk_order_.clear();
  disk_bytes_ = 0;
  stats_.bytes_written = 0;
  if (generation_ != 0 && ManifestMatches()) {
    AdoptDirectory();
  } else {
    SweepDirectory();
    if (generation_ != 0) {
      WriteManifest();
    }
  }
}

void ActivationCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  key_epoch_.fetch_add(1, std::memory_order_release);
  memory_.clear();
  insertion_order_.clear();
  on_disk_.clear();
  disk_order_.clear();
  disk_bytes_ = 0;
  stats_.bytes_written = 0;
  SweepDirectory();
  if (generation_ != 0) {
    WriteManifest();
  }
}

bool ActivationCache::HasAll(const std::vector<int64_t>& ids) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int64_t id : ids) {
    if (memory_.count(id) == 0 && on_disk_.count(id) == 0) {
      return false;
    }
  }
  return true;
}

void ActivationCache::InsertMemoryLocked(int64_t id, Tensor slice) {
  if (memory_.count(id) != 0) {
    return;
  }
  memory_.emplace(id, std::move(slice));
  insertion_order_.push_back(id);
  while (static_cast<int64_t>(memory_.size()) > memory_entries_) {
    memory_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

bool ActivationCache::EvictForLocked(int64_t incoming_bytes) {
  if (incoming_bytes > max_disk_bytes_) {
    return false;  // A single slice can never fit.
  }
  std::error_code ec;
  while (disk_bytes_ + incoming_bytes > max_disk_bytes_ && !disk_order_.empty()) {
    const int64_t victim = disk_order_.front();
    disk_order_.pop_front();
    auto it = on_disk_.find(victim);
    if (it == on_disk_.end()) {
      continue;
    }
    disk_bytes_ -= it->second;
    on_disk_.erase(it);
    // Evicted = forgotten entirely: the memory copy must go too, or HasAll
    // would keep promising a sample whose backing store is gone.
    if (memory_.erase(victim) != 0) {
      for (auto oit = insertion_order_.begin(); oit != insertion_order_.end(); ++oit) {
        if (*oit == victim) {
          insertion_order_.erase(oit);
          break;
        }
      }
    }
    fs::remove(PathForLocked(victim), ec);
    ++stats_.evictions;
  }
  return disk_bytes_ + incoming_bytes <= max_disk_bytes_;
}

Tensor ActivationCache::FetchBatch(const std::vector<int64_t>& ids) {
  std::vector<Tensor> slices(ids.size());
  std::vector<std::string> disk_paths(ids.size());
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = key_epoch_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < ids.size(); ++i) {
      auto it = memory_.find(ids[i]);
      if (it != memory_.end()) {
        slices[i] = it->second;
        ++stats_.memory_hits;
      } else if (on_disk_.count(ids[i]) == 0) {
        ++stats_.misses;
        obs::GetCounter("cache.fetch_misses").Add(1);
        return Tensor();
      } else {
        disk_paths[i] = PathForLocked(ids[i]);
      }
    }
  }
  // Disk fallback outside the lock.
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!slices[i].Defined()) {
      slices[i] = LoadTensorFile(disk_paths[i]);
      std::lock_guard<std::mutex> lock(mutex_);
      if (!slices[i].Defined() ||
          key_epoch_.load(std::memory_order_relaxed) != epoch) {
        ++stats_.misses;  // Corrupt spill or key changed mid-fetch: a miss.
        obs::GetCounter("cache.fetch_misses").Add(1);
        return Tensor();
      }
      ++stats_.disk_hits;
      stats_.bytes_read += slices[i].NumEl() * static_cast<int64_t>(sizeof(float));
      InsertMemoryLocked(ids[i], slices[i]);
    }
  }
  obs::GetCounter("cache.fetch_hits").Add(1);
  // Assemble [b, ...] from slices shaped [1, ...].
  std::vector<int64_t> shape = slices[0].Shape();
  shape[0] = static_cast<int64_t>(ids.size());
  Tensor out(shape);
  const int64_t per = slices[0].NumEl();
  for (size_t i = 0; i < slices.size(); ++i) {
    EGERIA_CHECK(slices[i].NumEl() == per);
    std::copy(slices[i].Data(), slices[i].Data() + per,
              out.Data() + static_cast<int64_t>(i) * per);
  }
  return out;
}

void ActivationCache::StoreBatch(const std::vector<int64_t>& ids, const Tensor& activations) {
  EGERIA_CHECK(activations.Dim() >= 2);
  EGERIA_CHECK(activations.Size(0) == static_cast<int64_t>(ids.size()));
  std::vector<int64_t> slice_shape = activations.Shape();
  slice_shape[0] = 1;
  const int64_t per = activations.NumEl() / activations.Size(0);
  const int64_t slice_bytes = per * static_cast<int64_t>(sizeof(float));
  for (size_t i = 0; i < ids.size(); ++i) {
    std::string path;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (on_disk_.count(ids[i]) != 0) {
        continue;  // Already persisted under this key.
      }
      if (!EvictForLocked(slice_bytes)) {
        return;  // One slice exceeds the whole budget; nothing can be stored.
      }
      path = PathForLocked(ids[i]);
    }
    Tensor slice(slice_shape);
    std::copy(activations.Data() + static_cast<int64_t>(i) * per,
              activations.Data() + static_cast<int64_t>(i + 1) * per, slice.Data());
    const bool ok = SaveTensorFile(path, slice);
    std::lock_guard<std::mutex> lock(mutex_);
    if (ok && on_disk_.count(ids[i]) == 0) {
      on_disk_.emplace(ids[i], slice_bytes);
      disk_order_.push_back(ids[i]);
      disk_bytes_ += slice_bytes;
      stats_.bytes_written += slice_bytes;
      ++stats_.stores;
      InsertMemoryLocked(ids[i], std::move(slice));
    }
  }
}

void ActivationCache::PrefetchAsync(const std::vector<int64_t>& ids) {
  std::vector<std::pair<int64_t, std::string>> to_load;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = key_epoch_.load(std::memory_order_relaxed);
    for (int64_t id : ids) {
      if (memory_.count(id) == 0 && on_disk_.count(id) != 0) {
        to_load.emplace_back(id, PathForLocked(id));
      }
    }
  }
  if (to_load.empty()) {
    return;
  }
  prefetcher_->Submit([this, to_load = std::move(to_load), epoch] {
    // The store's dataloader-lookahead: loads upcoming spills on the
    // single-thread pool racing SetKey/Clear/FetchBatch.
    trace::SetThreadName("cache_prefetch");
    trace::Span span("cache", "prefetch");
    if (span.active()) {
      span.SetArgs("{\"spills\":%zu}", to_load.size());
    }
    obs::GetCounter("cache.prefetch_jobs").Add(1);
    for (const auto& [id, path] : to_load) {
      if (key_epoch_.load(std::memory_order_acquire) != epoch) {
        return;  // Key moved; these paths are stale.
      }
      Tensor slice = LoadTensorFile(path);
      if (!slice.Defined()) {
        continue;
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (key_epoch_.load(std::memory_order_relaxed) != epoch) {
        return;
      }
      ++stats_.prefetch_loads;
      InsertMemoryLocked(id, std::move(slice));
    }
  });
}

CacheStats ActivationCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace egeria
